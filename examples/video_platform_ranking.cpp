// Short-video platform scenario (the paper's Kuaishou motivation): users,
// videos and authors interact under click / like / comment / download.
// Compares HybridGNN against GATNE (the paper's strongest baseline) on
// held-out link prediction, demonstrating the inter-relationship uplift on a
// graph where relations are strongly correlated.
//
//   ./video_platform_ranking [scale]

#include <cstdio>
#include <cstdlib>

#include "baselines/registry.h"
#include "data/profiles.h"
#include "data/split.h"
#include "eval/evaluator.h"

using namespace hybridgnn;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.12;

  auto ds = MakeDataset("kuaishou", scale, /*seed=*/77);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  std::printf("kuaishou-like graph: %zu nodes, %zu edges, %zu node types, "
              "%zu relations\n",
              ds->graph.num_nodes(), ds->graph.num_edges(),
              ds->graph.num_node_types(), ds->graph.num_relations());

  Rng rng(3);
  auto split = SplitEdges(ds->graph, SplitOptions{}, rng);
  if (!split.ok()) {
    std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
    return 1;
  }

  ModelBudget budget;
  budget.effort = 0.6;
  budget.num_walks = 5;
  budget.walk_length = 8;
  budget.window = 3;
  budget.max_pairs_per_epoch = 12000;

  std::printf("\n%-12s %8s %8s %8s\n", "model", "ROC-AUC", "PR-AUC", "F1");
  for (const char* name : {"GATNE", "HybridGNN"}) {
    auto model = CreateModel(name, ds->schemes, /*seed=*/9, budget);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    Status st = (*model)->Fit(split->train_graph);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, st.ToString().c_str());
      return 1;
    }
    Rng eval_rng(4);
    EvalOptions opts;
    opts.max_ranking_queries = 50;
    LinkPredictionResult r = EvaluateLinkPrediction(
        **model, ds->graph, *split, opts, eval_rng);
    std::printf("%-12s %8.2f %8.2f %8.2f\n", name, r.roc_auc, r.pr_auc,
                r.f1);
  }
  std::printf("\nHybridGNN's randomized inter-relationship exploration lets "
              "sparse relations\n(download, comment) borrow evidence from "
              "dense ones (click), which GATNE's\nper-relation neighbor "
              "aggregation cannot do.\n");
  return 0;
}
