// E-commerce scenario (the paper's Taobao motivation): users interact with
// items under four behaviors — page_view, add_to_cart, purchase,
// item_favoring. HybridGNN learns a *separate* embedding per behavior, so a
// "what will they purchase" ranking differs from "what will they view".
//
//   ./ecommerce_recommendations [scale]
//
// Prints the top-5 item recommendations for a sample user under every
// behavior, plus the metapath-level attention distribution (which
// aggregation flow the model relied on — intra-relationship metapaths or
// randomized inter-relationship exploration).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/hybrid_gnn.h"
#include "data/profiles.h"
#include "data/split.h"

using namespace hybridgnn;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.15;

  auto ds = MakeDataset("taobao", scale, /*seed=*/2024);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  const MultiplexHeteroGraph& g = ds->graph;
  std::printf("taobao-like graph: %zu nodes, %zu edges, %zu behaviors\n",
              g.num_nodes(), g.num_edges(), g.num_relations());

  Rng rng(1);
  auto split = SplitEdges(g, SplitOptions{}, rng);
  if (!split.ok()) {
    std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
    return 1;
  }

  HybridGnnConfig config;
  config.base_dim = 64;
  config.edge_dim = 8;
  config.hidden_dim = 16;
  config.epochs = 3;
  config.max_pairs_per_epoch = 12000;
  config.corpus.num_walks_per_node = 6;
  config.corpus.walk_length = 8;
  config.corpus.window = 3;
  config.seed = 5;
  HybridGnn model(config, ds->schemes);
  Status st = model.Fit(split->train_graph);
  if (!st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Pick the busiest user for a readable demo.
  NodeTypeId user_type = g.FindNodeType("user");
  NodeTypeId item_type = g.FindNodeType("item");
  NodeId who = g.NodesOfType(user_type)[0];
  for (NodeId u : g.NodesOfType(user_type)) {
    if (g.TotalDegree(u) > g.TotalDegree(who)) who = u;
  }
  std::printf("\nrecommendations for user %u (degree %zu):\n", who,
              g.TotalDegree(who));

  for (RelationId r = 0; r < g.num_relations(); ++r) {
    std::vector<std::pair<double, NodeId>> scored;
    for (NodeId item : g.NodesOfType(item_type)) {
      if (split->train_graph.HasEdge(who, item, r)) continue;
      scored.emplace_back(model.Score(who, item, r), item);
    }
    std::partial_sort(scored.begin(),
                      scored.begin() + std::min<size_t>(5, scored.size()),
                      scored.end(), std::greater<>());
    std::printf("  %-14s top-5:", g.relation_name(r).c_str());
    for (size_t i = 0; i < 5 && i < scored.size(); ++i) {
      const bool hit = g.HasEdge(who, scored[i].second, r);
      std::printf(" %u%s", scored[i].second, hit ? "*" : "");
    }
    std::printf("   (* = held-out true interaction)\n");

    std::vector<double> attn = model.MetapathAttentionScores(who, r);
    std::vector<std::string> labels = model.FlowLabels(who, r);
    std::printf("    attention:");
    for (size_t i = 0; i < attn.size(); ++i) {
      std::printf(" %s=%.2f", labels[i].c_str(), attn[i]);
    }
    std::printf("\n");
  }
  return 0;
}
