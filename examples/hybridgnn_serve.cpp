// Online top-K recommendation server: train a model (or load a frozen
// `.hgc` checkpoint) and answer queries from stdin through the micro-
// batching RecommendService.
//
//   hybridgnn_serve --graph g.txt [--model HybridGNN] [--seed N]
//                   [--load ckpt.hgc] [--save ckpt.hgc] [--copy 1]
//                   [--quantize fp16|int8]
//                   [--ann 1] [--ef-search 64] [--over-fetch 4]
//                   [--k 10] [--cosine 1] [--threads N]
//                   [--window-ms 1.0] [--max-batch 64]
//                   [--deadline-ms 0] [--max-queue 0] [--cache 0]
//                   [--stream deltas.hgd] [--stream-batch 64]
//                   [--stream-khops 1] [--stream-lr 0.05]
//                   [--metrics-out metrics.json]
//
// --quantize converts the (loaded or freshly trained) fp32 store to a
// compressed serving copy scanned in place by the dequant-and-score
// kernels: fp16 halves memory traffic, int8 quarters it at a small
// recall cost (see DESIGN.md section 15). With --save the checkpoint is
// written after conversion, so the file on disk is a v2 quantized `.hgc`.
// Incompatible with --stream (the live refresher trains on fp32 rows).
//
// --ann builds an HNSW index per relation at startup (and rebuilds or
// incrementally patches it on every streaming publish) so each query
// searches a sublinear candidate pool instead of scanning the whole
// table; the pool is re-ranked through the exact scoring kernels, so
// result semantics are unchanged (see DESIGN.md section 17). --ef-search
// is the search beam width / pool floor, --over-fetch multiplies k into
// the pool so exclusion filters don't starve the top-k. HYBRIDGNN_ANN=
// on|off overrides --ann at runtime; small tables always take the exact
// scan.
//
// --deadline-ms / --max-queue / --cache are the admission controls:
// default per-request deadline, load-shedding queue cap, and warm
// result-cache capacity (entries), all off (0) by default.
//
// --metrics-out dumps the process-wide observability registry (counters,
// gauges, serve/request_latency stage histogram) as JSON on exit.
//
// With --load pointing at an existing checkpoint the model is NOT retrained
// — the tables come straight off the file (zero-copy mmap unless --copy 1).
// Otherwise the model trains on the full graph and, with --save, freezes
// its tables to the given path for the next run.
//
// --stream turns on the online path: the file (binary .hgd or the text
// format, see stream/delta_log.h) is loaded as a queue of timestamped graph
// deltas, serving goes through a LiveEmbeddingStore, and the `ingest`
// command applies the next batch — incremental refresh + atomic store swap,
// so the very next query scores against the updated embeddings with the
// streamed edges excluded from results.
//
// Query loop (stdin, one query per line):
//   <node-id> <relation-name-or-id> [k]   top-k recommendations
//   ingest [n]                            apply next n deltas (--stream)
//   metrics                               print serving counters/latency
//   quit                                  exit (EOF works too)

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "baselines/registry.h"
#include "common/string_util.h"
#include "graph/graph_io.h"
#include "graph/metapath.h"
#include "obs/metrics.h"
#include "serve/checkpoint.h"
#include "serve/service.h"
#include "serve/store_model.h"
#include "stream/refresher.h"

using namespace hybridgnn;

namespace {

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      flags[argv[i] + 2] = argv[i + 1];
    }
  }
  return flags;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

/// Serving-side candidate typing: recommend nodes of the type the query
/// node actually links to under this relation (e.g. a user querying `click`
/// gets items, not other users). Falls back to "all rows" for isolated
/// nodes.
NodeTypeId InferCandidateType(const MultiplexHeteroGraph& g, NodeId node,
                              RelationId rel) {
  if (node >= g.num_nodes() || rel >= g.num_relations()) {
    return kInvalidNodeType;
  }
  auto nbrs = g.Neighbors(node, rel);
  return nbrs.empty() ? kInvalidNodeType : g.node_type(nbrs.front());
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = ParseFlags(argc, argv);
  if (!flags.count("graph")) {
    std::fprintf(stderr,
                 "usage: %s --graph <file> [--model NAME] [--load ckpt.hgc] "
                 "[--save ckpt.hgc] [--copy 1] [--quantize fp16|int8] "
                 "[--ann 1] [--ef-search N] [--over-fetch N] "
                 "[--k N] [--cosine 1] "
                 "[--threads N] [--window-ms F] [--max-batch N] "
                 "[--deadline-ms F] [--max-queue N] [--cache N] [--seed N] "
                 "[--stream deltas.hgd] [--stream-batch N] "
                 "[--stream-khops N] [--stream-lr F] [--metrics-out FILE]\n",
                 argv[0]);
    return 2;
  }
  auto graph = LoadGraph(flags["graph"]);
  if (!graph.ok()) return Fail(graph.status());

  // --- obtain an EmbeddingStore: load a checkpoint, or train + freeze ---
  std::shared_ptr<const EmbeddingStore> store;
  if (flags.count("load")) {
    const LoadMode mode = flags.count("copy") && flags["copy"] != "0"
                              ? LoadMode::kCopy
                              : LoadMode::kMmap;
    auto loaded = LoadCheckpoint(flags["load"], mode);
    if (!loaded.ok()) return Fail(loaded.status());
    store = std::make_shared<EmbeddingStore>(std::move(loaded).value());
    std::printf("loaded %s: model=%s, %zu relations, %zu nodes, dim=%zu%s\n",
                flags["load"].c_str(), store->model_name().c_str(),
                store->num_relations(), store->num_nodes(), store->dim(),
                store->mmapped() ? " (mmap, zero-copy)" : " (copied)");
  } else {
    const std::string model_name =
        flags.count("model") ? flags["model"] : "HybridGNN";
    const uint64_t seed =
        flags.count("seed") ? ParseInt64(flags["seed"]).value_or(1) : 1;
    std::vector<MetapathScheme> schemes =
        DefaultSchemes(*graph, /*max_schemes_per_relation=*/2);
    auto model = CreateModel(model_name, schemes, seed, ModelBudget{});
    if (!model.ok()) return Fail(model.status());
    std::printf("training %s on %zu nodes / %zu edges...\n",
                model_name.c_str(), graph->num_nodes(), graph->num_edges());
    Status st = (*model)->Fit(*graph);
    if (!st.ok()) return Fail(st);
    auto built = BuildStore(**model, *graph);
    if (!built.ok()) return Fail(built.status());
    store = std::make_shared<EmbeddingStore>(std::move(built).value());
  }

  // --- optional quantization of the serving copy ---
  if (flags.count("quantize") && flags["quantize"] != "fp32") {
    if (flags.count("stream")) {
      return Fail(Status::InvalidArgument(
          "--quantize is incompatible with --stream: the incremental "
          "refresher trains on fp32 staging rows"));
    }
    auto dtype = ParseStoreDType(flags["quantize"]);
    if (!dtype.ok()) return Fail(dtype.status());
    auto quantized = EmbeddingStore::Quantized(*store, *dtype);
    if (!quantized.ok()) return Fail(quantized.status());
    store = std::make_shared<EmbeddingStore>(std::move(quantized).value());
    std::printf("quantized store to %s (%zux less table memory)\n",
                StoreDTypeName(*dtype),
                4 / StoreDTypeBytes(*dtype));
  }
  if (flags.count("save")) {
    Status ws = WriteCheckpoint(*store, flags["save"]);
    if (!ws.ok()) return Fail(ws);
    std::printf("froze embeddings (%s) to %s\n",
                StoreDTypeName(store->dtype()), flags["save"].c_str());
  }

  // --- retrieval engine + micro-batching service ---
  TopKOptions topk;
  topk.cosine = flags.count("cosine") && flags["cosine"] != "0";
  topk.ann = flags.count("ann") && flags["ann"] != "0";
  if (flags.count("ef-search")) {
    topk.ef_search =
        static_cast<size_t>(ParseInt64(flags["ef-search"]).value_or(64));
  }
  if (flags.count("over-fetch")) {
    topk.over_fetch =
        static_cast<size_t>(ParseInt64(flags["over-fetch"]).value_or(4));
  }
  if (flags.count("threads")) {
    topk.num_threads =
        static_cast<size_t>(ParseInt64(flags["threads"]).value_or(0));
  }
  TopKRecommender recommender(store.get(), &*graph, topk);
  if (recommender.ann_enabled()) {
    size_t indexed = 0, index_bytes = 0;
    for (const auto& index : recommender.ann_indexes()) {
      if (index != nullptr) {
        ++indexed;
        index_bytes += index->MemoryBytes();
      }
    }
    std::printf(
        "ann: indexed %zu/%zu relations (%.1f MiB adjacency, ef_search=%zu, "
        "over_fetch=%zu)\n",
        indexed, store->num_relations(),
        static_cast<double>(index_bytes) / (1024.0 * 1024.0), topk.ef_search,
        topk.over_fetch);
  }
  ServiceOptions service_options;
  service_options.num_threads = topk.num_threads;
  if (flags.count("window-ms")) {
    service_options.batch_window_ms =
        ParseDouble(flags["window-ms"]).value_or(1.0);
  }
  if (flags.count("max-batch")) {
    service_options.max_batch_size =
        static_cast<size_t>(ParseInt64(flags["max-batch"]).value_or(64));
  }
  if (flags.count("deadline-ms")) {
    service_options.default_deadline_ms =
        ParseDouble(flags["deadline-ms"]).value_or(0.0);
  }
  if (flags.count("max-queue")) {
    service_options.max_queue_depth =
        static_cast<size_t>(ParseInt64(flags["max-queue"]).value_or(0));
  }
  if (flags.count("cache")) {
    service_options.result_cache_capacity =
        static_cast<size_t>(ParseInt64(flags["cache"]).value_or(0));
  }

  // --- optional streaming path: delta queue + live store + refresher ---
  std::vector<GraphDelta> delta_queue;
  size_t delta_cursor = 0;
  size_t stream_batch = 64;
  std::unique_ptr<DynamicGraphOverlay> overlay;
  std::unique_ptr<LiveEmbeddingStore> live;
  std::unique_ptr<IncrementalRefresher> refresher;
  if (flags.count("stream")) {
    auto deltas = LoadDeltaLog(flags["stream"], *graph);
    if (!deltas.ok()) return Fail(deltas.status());
    delta_queue = std::move(deltas).value();
    if (flags.count("stream-batch")) {
      stream_batch =
          static_cast<size_t>(ParseInt64(flags["stream-batch"]).value_or(64));
    }
    overlay = std::make_unique<DynamicGraphOverlay>(&*graph);
    auto created = LiveEmbeddingStore::Create(*store, &*graph, topk);
    if (!created.ok()) return Fail(created.status());
    live = std::move(created).value();
    RefreshOptions refresh;
    if (flags.count("stream-khops")) {
      refresh.k_hops =
          static_cast<size_t>(ParseInt64(flags["stream-khops"]).value_or(1));
    }
    if (flags.count("stream-lr")) {
      refresh.learning_rate = static_cast<float>(
          ParseDouble(flags["stream-lr"]).value_or(0.05));
    }
    refresher =
        std::make_unique<IncrementalRefresher>(overlay.get(), live.get(),
                                               refresh);
    std::printf("streaming: %zu deltas queued from %s (batch %zu)\n",
                delta_queue.size(), flags["stream"].c_str(), stream_batch);
  }

  // Live mode serves through the swap-on-publish store; static mode keeps
  // the frozen recommender.
  std::unique_ptr<RecommendService> service;
  if (live != nullptr) {
    service = std::make_unique<RecommendService>(live.get(), service_options);
  } else {
    service =
        std::make_unique<RecommendService>(&recommender, service_options);
  }
  const size_t default_k =
      flags.count("k")
          ? static_cast<size_t>(ParseInt64(flags["k"]).value_or(10))
          : 10;

  std::printf("ready — '<node> <relation> [k]', 'metrics', 'quit'\n");
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line == "quit" || line == "exit") break;
    if (line == "metrics") {
      std::printf("%s\n", service->metrics().ToString().c_str());
      continue;
    }
    if (line.rfind("ingest", 0) == 0) {
      if (refresher == nullptr) {
        std::printf("? no --stream file loaded\n");
        continue;
      }
      std::istringstream in(line);
      std::string cmd;
      in >> cmd;
      // Optional count: a failed extraction zeroes the target (C++11), so
      // parse into a temporary to keep the --stream-batch default on bare
      // `ingest`.
      size_t n = stream_batch;
      if (size_t parsed = 0; in >> parsed) n = parsed;
      n = std::min(n, delta_queue.size() - delta_cursor);
      if (n == 0) {
        std::printf("stream drained (%zu deltas applied)\n", delta_cursor);
        continue;
      }
      auto stats = refresher->IngestBatch(
          std::span<const GraphDelta>(delta_queue.data() + delta_cursor, n));
      if (!stats.ok()) {
        std::printf("! %s\n", stats.status().ToString().c_str());
        continue;
      }
      delta_cursor += n;
      std::printf(
          "ingested %zu deltas (+%zu edges, +%zu nodes, %zu dupes) in "
          "%.2f ms: %zu dirty nodes, %zu pairs trained, store v%llu "
          "(%zu queued)\n",
          n, stats->edges_added, stats->nodes_added,
          stats->duplicates_ignored, stats->elapsed_ms, stats->dirty_nodes,
          stats->pairs_trained,
          static_cast<unsigned long long>(stats->published_version),
          delta_queue.size() - delta_cursor);
      continue;
    }
    std::istringstream in(line);
    uint64_t node = 0;
    std::string rel_token;
    size_t k = default_k;
    if (!(in >> node >> rel_token)) {
      std::printf("? expected: <node-id> <relation-name-or-id> [k]\n");
      continue;
    }
    if (size_t parsed = 0; in >> parsed) k = parsed;
    RelationId rel = store->FindRelation(rel_token);
    if (rel == kInvalidRelation) {
      auto parsed = ParseInt64(rel_token);
      if (parsed.ok() && *parsed >= 0 &&
          static_cast<size_t>(*parsed) < store->num_relations()) {
        rel = static_cast<RelationId>(*parsed);
      } else {
        std::printf("? unknown relation '%s'\n", rel_token.c_str());
        continue;
      }
    }
    TopKQuery q;
    q.node = static_cast<NodeId>(node);
    q.rel = rel;
    q.k = k;
    q.candidate_type = InferCandidateType(*graph, q.node, rel);
    RecommendResponse resp = service->Call(q);
    if (!resp.status.ok()) {
      std::printf("! %s\n", resp.status.ToString().c_str());
      continue;
    }
    std::printf("top-%zu for node %llu under '%s' (%.3f ms):\n", q.k,
                static_cast<unsigned long long>(node),
                store->relation_name(rel).c_str(), resp.latency_ms);
    for (size_t i = 0; i < resp.items.size(); ++i) {
      std::printf("  %2zu. node %-8u score %.6f\n", i + 1,
                  resp.items[i].node, resp.items[i].score);
    }
  }

  std::printf("final %s\n", service->metrics().ToString().c_str());
  if (flags.count("metrics-out")) {
    Status st = obs::WriteJsonFile(obs::GlobalRegistry(), flags["metrics-out"]);
    if (!st.ok()) return Fail(st);
    std::printf("wrote metrics to %s\n", flags["metrics-out"].c_str());
  }
  return 0;
}
