// Demonstrates persistence: generate a dataset profile, save it to the text
// format, reload it, verify integrity, and print its statistics — the
// workflow for bringing your own edge lists into the library.
//
//   ./graph_io_roundtrip [profile] [path]

#include <cstdio>
#include <string>

#include "data/profiles.h"
#include "graph/graph_io.h"
#include "graph/stats.h"

using namespace hybridgnn;

int main(int argc, char** argv) {
  const std::string profile = argc > 1 ? argv[1] : "amazon";
  const std::string path =
      argc > 2 ? argv[2] : "/tmp/hybridgnn_" + profile + ".graph";

  auto ds = MakeDataset(profile, 0.2, /*seed=*/42);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  Status st = SaveGraph(ds->graph, path);
  if (!st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved %s profile to %s\n", profile.c_str(), path.c_str());

  auto loaded = LoadGraph(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  if (loaded->num_nodes() != ds->graph.num_nodes() ||
      loaded->num_edges() != ds->graph.num_edges()) {
    std::fprintf(stderr, "round trip mismatch!\n");
    return 1;
  }
  std::printf("reload OK — statistics:\n%s",
              FormatStats(*loaded, ComputeStats(*loaded)).c_str());
  return 0;
}
