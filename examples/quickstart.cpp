// Quickstart: build a tiny multiplex heterogeneous graph by hand, train
// HybridGNN on it, and print relationship-specific recommendations.
//
//   ./quickstart
//
// This walks the whole public API surface: GraphBuilder -> MetapathScheme ->
// HybridGnn -> Embedding/Score.

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "core/hybrid_gnn.h"
#include "graph/graph.h"
#include "graph/metapath.h"

using namespace hybridgnn;

int main() {
  // 1. Build a toy short-video graph: users, videos, two relationships.
  GraphBuilder builder;
  NodeTypeId user = builder.AddNodeType("user").value();
  NodeTypeId video = builder.AddNodeType("video").value();
  RelationId click = builder.AddRelation("click").value();
  RelationId like = builder.AddRelation("like").value();

  constexpr size_t kUsers = 8, kVideos = 6;
  NodeId first_user = builder.AddNodes(user, kUsers).value();
  NodeId first_video = builder.AddNodes(video, kVideos).value();

  // Two taste communities: users 0-3 interact with videos 0-2,
  // users 4-7 with videos 3-5; likes are a sparse subset of clicks.
  auto U = [&](size_t i) { return first_user + static_cast<NodeId>(i); };
  auto V = [&](size_t i) { return first_video + static_cast<NodeId>(i); };
  for (size_t u = 0; u < kUsers; ++u) {
    const size_t base = u < 4 ? 0 : 3;
    for (size_t dv = 0; dv < 3; ++dv) {
      if ((u + dv) % 3 != 2) {
        HYBRIDGNN_CHECK_OK(builder.AddEdge(U(u), V(base + dv), click));
      }
      if ((u + dv) % 4 == 0) {
        HYBRIDGNN_CHECK_OK(builder.AddEdge(U(u), V(base + dv), like));
      }
    }
  }
  MultiplexHeteroGraph graph = builder.Build().value();
  std::printf("graph: %zu nodes, %zu edges, %zu relations\n",
              graph.num_nodes(), graph.num_edges(), graph.num_relations());

  // 2. Declare the metapath schemes HybridGNN should aggregate along.
  std::vector<MetapathScheme> schemes;
  for (RelationId r = 0; r < graph.num_relations(); ++r) {
    schemes.push_back(MetapathScheme::ParseIntra(graph, "U-V-U", r).value());
    schemes.push_back(MetapathScheme::ParseIntra(graph, "V-U-V", r).value());
  }

  // 3. Train.
  HybridGnnConfig config;
  config.base_dim = 32;
  config.edge_dim = 8;
  config.hidden_dim = 8;
  config.epochs = 4;
  config.corpus.num_walks_per_node = 10;
  config.corpus.walk_length = 6;
  config.corpus.window = 2;
  config.seed = 7;
  HybridGnn model(config, schemes);
  Status st = model.Fit(graph);
  if (!st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("trained; final epoch loss %.4f\n", model.last_epoch_loss());

  // 4. Recommend: score unseen videos for user 0 under each relationship.
  for (RelationId r = 0; r < graph.num_relations(); ++r) {
    std::printf("user 0, relationship '%s':\n",
                graph.relation_name(r).c_str());
    for (size_t v = 0; v < kVideos; ++v) {
      const bool seen = graph.HasEdge(U(0), V(v), r);
      std::printf("  video %zu  score %+7.3f%s\n", v,
                  model.Score(U(0), V(v), r), seen ? "  (seen)" : "");
    }
  }
  return 0;
}
