// Command-line front end: train HybridGNN (or any baseline) on a graph file
// and evaluate link prediction, or export embeddings.
//
//   hybridgnn_cli train --graph g.txt --model HybridGNN [--seed N]
//                       [--scale-epochs X] [--hard-negatives F]
//                       [--save ckpt.hgc | --load ckpt.hgc]
//                       [--metrics-out metrics.json]
//   hybridgnn_cli embed --graph g.txt --model DeepWalk --out emb.tsv
//                       [--save ckpt.hgc | --load ckpt.hgc]
//                       [--metrics-out metrics.json]
//   hybridgnn_cli stats --graph g.txt
//
// --metrics-out dumps the process-wide observability registry
// (obs/metrics.h) — stage timers such as sampling/walk_corpus and
// core/sgns_epoch, plus counters — as JSON after the command finishes.
//
// --save freezes the fitted model's embedding tables to a `.hgc` checkpoint
// (serve/checkpoint.h); --load skips training entirely and evaluates or
// exports the frozen tables instead. A loaded checkpoint reproduces the
// saved model's link-prediction metrics bit-identically for dot-decoder
// models (see serve/store_model.h for the R-GCN caveat).
//
// The graph file format is the one written by SaveGraph (see
// graph/graph_io.h); `examples/graph_io_roundtrip` produces samples.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include <memory>

#include "baselines/registry.h"
#include "common/string_util.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "graph/graph_io.h"
#include "graph/metapath.h"
#include "graph/stats.h"
#include "obs/metrics.h"
#include "serve/checkpoint.h"
#include "serve/store_model.h"

using namespace hybridgnn;

namespace {

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      flags[argv[i] + 2] = argv[i + 1];
    }
  }
  return flags;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

/// Dumps the global metric registry if --metrics-out was given; returns the
/// intended process exit code so callers can `return Finish(flags, 0);`.
int Finish(std::map<std::string, std::string>& flags, int code) {
  if (flags.count("metrics-out")) {
    Status st = obs::WriteJsonFile(obs::GlobalRegistry(), flags["metrics-out"]);
    if (!st.ok()) return Fail(st);
    std::fprintf(stderr, "wrote metrics to %s\n",
                 flags["metrics-out"].c_str());
  }
  return code;
}

/// Produces a ready-to-query model: with --load, the frozen tables of an
/// `.hgc` checkpoint (no training); otherwise trains `model_name` on
/// `fit_graph` and, with --save, freezes the result for the next run.
StatusOr<std::unique_ptr<EmbeddingModel>> ObtainModel(
    std::map<std::string, std::string>& flags, const std::string& model_name,
    const std::vector<MetapathScheme>& schemes, uint64_t seed,
    const ModelBudget& budget, const MultiplexHeteroGraph& fit_graph) {
  if (flags.count("load")) {
    auto loaded = LoadCheckpoint(flags["load"], LoadMode::kMmap);
    if (!loaded.ok()) return loaded.status();
    auto store = std::make_shared<EmbeddingStore>(std::move(loaded).value());
    std::fprintf(stderr, "loaded %s (model=%s, dim=%zu), skipping training\n",
                 flags["load"].c_str(), store->model_name().c_str(),
                 store->dim());
    return std::unique_ptr<EmbeddingModel>(
        std::make_unique<StoreBackedModel>(std::move(store)));
  }
  auto model = CreateModel(model_name, schemes, seed, budget);
  if (!model.ok()) return model.status();
  Status st = (*model)->Fit(fit_graph);
  if (!st.ok()) return st;
  if (flags.count("save")) {
    Status ws = SaveCheckpoint(**model, fit_graph, flags["save"]);
    if (!ws.ok()) return ws;
    std::fprintf(stderr, "froze embeddings to %s\n", flags["save"].c_str());
  }
  return std::move(model).value();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <train|embed|stats> --graph <file> "
                 "[--model NAME] [--seed N] [--out FILE] "
                 "[--hard-negatives F] [--metrics-out FILE]\n",
                 argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  auto flags = ParseFlags(argc, argv);
  if (!flags.count("graph")) {
    std::fprintf(stderr, "--graph is required\n");
    return 2;
  }
  auto graph = LoadGraph(flags["graph"]);
  if (!graph.ok()) return Fail(graph.status());

  if (cmd == "stats") {
    std::printf("%s", FormatStats(*graph, ComputeStats(*graph)).c_str());
    return 0;
  }

  const std::string model_name =
      flags.count("model") ? flags["model"] : "HybridGNN";
  const uint64_t seed =
      flags.count("seed") ? ParseInt64(flags["seed"]).value_or(1) : 1;
  ModelBudget budget;  // library defaults; tune via the flags below
  if (flags.count("scale-epochs")) {
    budget.effort = ParseDouble(flags["scale-epochs"]).value_or(1.0);
  }
  std::vector<MetapathScheme> schemes =
      DefaultSchemes(*graph, /*max_schemes_per_relation=*/2);

  if (cmd == "embed") {
    auto model = ObtainModel(flags, model_name, schemes, seed, budget,
                             *graph);
    if (!model.ok()) return Fail(model.status());
    const std::string out_path =
        flags.count("out") ? flags["out"] : "embeddings.tsv";
    std::ofstream out(out_path);
    if (!out) return Fail(Status::IoError("cannot write " + out_path));
    for (NodeId v = 0; v < graph->num_nodes(); ++v) {
      for (RelationId r = 0; r < graph->num_relations(); ++r) {
        Tensor e = (*model)->Embedding(v, r);
        out << v << '\t' << graph->relation_name(r);
        for (size_t j = 0; j < e.cols(); ++j) out << '\t' << e.At(0, j);
        out << '\n';
      }
    }
    std::printf("wrote %zu x %zu embeddings to %s\n",
                graph->num_nodes(), graph->num_relations(),
                out_path.c_str());
    return Finish(flags, 0);
  }

  if (cmd == "train") {
    Rng rng(seed ^ 0x5117);
    SplitOptions options;
    if (flags.count("hard-negatives")) {
      options.hard_negative_fraction =
          ParseDouble(flags["hard-negatives"]).value_or(0.5);
    }
    auto split = SplitEdges(*graph, options, rng);
    if (!split.ok()) return Fail(split.status());
    // --save/--load freeze/restore the tables the model produces on the
    // *training* graph, so a reloaded checkpoint reproduces this run's
    // evaluation exactly (the split is deterministic in --seed).
    auto model = ObtainModel(flags, model_name, schemes, seed, budget,
                             split->train_graph);
    if (!model.ok()) return Fail(model.status());
    Rng eval_rng(seed ^ 0xE7A1);
    EvalOptions opts;
    LinkPredictionResult r = EvaluateLinkPrediction(
        **model, *graph, *split, opts, eval_rng);
    std::printf("%-12s ROC-AUC %.2f  PR-AUC %.2f  F1 %.2f  PR@10 %.4f  "
                "HR@10 %.4f\n",
                model_name.c_str(), r.roc_auc, r.pr_auc, r.f1, r.pr_at_k,
                r.hr_at_k);
    return Finish(flags, 0);
  }

  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
