#!/usr/bin/env bash
# One-shot CI gate: configure + build + full ctest suite, then the
# ThreadSanitizer and AddressSanitizer sweeps, then the micro_autograd
# allocation gate (steady-state training steps must stay allocation-free).
# Exits non-zero on the first failing stage, so `scripts/ci_check.sh &&
# git push` is a safe habit.
#
# Usage: scripts/ci_check.sh [build-dir]   (default: build)
# The sanitizer stages use their own build trees (build-tsan, build-asan);
# all three trees are incremental across runs.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "=== ci_check: configure + build ($BUILD_DIR) ==="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "=== ci_check: ctest ==="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "=== ci_check: ThreadSanitizer sweep ==="
scripts/tsan_check.sh

echo "=== ci_check: AddressSanitizer sweep ==="
scripts/asan_check.sh

echo "=== ci_check: allocation-free training-step gate ==="
cmake --build "$BUILD_DIR" -j "$(nproc)" --target micro_autograd
"$BUILD_DIR/bench/micro_autograd" --gate

echo "=== ci_check: compiled-plan replay gate (speedup + zero allocs) ==="
# The plan differential and IR-golden suites (plan_test, plan_ir_test) ran
# in the ctest stage above; this gate adds the perf contract: compiled
# replay >= 1.3x arena-eager ns/step with zero allocations per step.
cmake --build "$BUILD_DIR" -j "$(nproc)" --target micro_plan
"$BUILD_DIR/bench/micro_plan" --gate

echo "=== ci_check: frontier aggregation speedup gate ==="
cmake --build "$BUILD_DIR" -j "$(nproc)" --target micro_aggregate
"$BUILD_DIR/bench/micro_aggregate" --gate

echo "=== ci_check: streaming refresh gate (speedup + freshness) ==="
cmake --build "$BUILD_DIR" -j "$(nproc)" --target micro_stream
"$BUILD_DIR/bench/micro_stream" --gate

echo "=== ci_check: quantized serving gate (int8 speedup + recall, overload p99) ==="
cmake --build "$BUILD_DIR" -j "$(nproc)" --target micro_serve_qps
"$BUILD_DIR/bench/micro_serve_qps" --gate

echo "=== ci_check: ANN retrieval gate (single-query speedup + recall@10) ==="
cmake --build "$BUILD_DIR" -j "$(nproc)" --target micro_ann
"$BUILD_DIR/bench/micro_ann" --gate

echo "=== ci_check: all stages passed ==="
