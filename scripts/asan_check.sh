#!/usr/bin/env bash
# Builds the full tier-1 test suite under AddressSanitizer + UBSan and runs
# it through ctest. Any report (heap overflow, use-after-free, UB) fails the
# script; a clean exit means the suite is ASan/UBSan-clean. The full suite
# includes arena_test, so tensor-pool recycling and tape-arena rewinds get
# ASan coverage (stale-buffer reads would surface here, not in release).
#
# Usage: scripts/asan_check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DHYBRIDGNN_ASAN=ON \
  -DHYBRIDGNN_BUILD_BENCHMARKS=OFF \
  -DHYBRIDGNN_BUILD_EXAMPLES=OFF

cmake --build "$BUILD_DIR" -j "$(nproc)"

ASAN_OPTIONS="halt_on_error=1:detect_leaks=0" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
