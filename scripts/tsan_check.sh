#!/usr/bin/env bash
# Builds the concurrency-sensitive tests under ThreadSanitizer and runs them.
#
# The Hogwild SGD loops (sgns.cc, line.cc) intentionally race on embedding
# rows; those update functions carry HYBRIDGNN_NO_SANITIZE_THREAD, so any
# report from this script is an unintended data race and must be fixed.
#
# Usage: scripts/tsan_check.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DHYBRIDGNN_TSAN=ON \
  -DHYBRIDGNN_BUILD_BENCHMARKS=OFF \
  -DHYBRIDGNN_BUILD_EXAMPLES=OFF

# Only the tests exercising the parallel pipeline — full suite under TSan is
# slow and the rest is single-threaded. serve_test covers the concurrent
# RecommendService (multi-client Submit + dispatcher + scoring pool);
# service_stress_test hammers the same service with producer threads while
# cross-checking every response against a direct recommender call.
# arena_test exercises the tape arena + tensor pool from concurrent workers
# backpropagating over shared parameters (visit marks, buffer migration);
# sparse_aggregate_test adds the frontier gather/segment-reduce backward
# under the same multi-worker grad-sink pattern. live_store_test drives
# concurrent ingest-publish against reader threads pinning snapshots
# (the RCU-style swap in LiveEmbeddingStore); stream_test rides along for
# the refresher's single-writer contract. plan_test records and replays
# compiled steps from concurrent minibatch workers (per-worker PlanCache +
# shared obs counters), so the trace/replay path gets TSan coverage too.
# ann_test's ConcurrentSearchDuringPublish races reader threads traversing a
# published HNSW index against the writer patching/rebuilding its successor.
TESTS=(threadpool_test sampling_test determinism_test serve_test obs_test
       service_stress_test arena_test sparse_aggregate_test
       stream_test live_store_test ann_test plan_test)
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TESTS[@]}"

status=0
for t in "${TESTS[@]}"; do
  echo "=== TSan: $t ==="
  TSAN_OPTIONS="halt_on_error=1" "$BUILD_DIR/tests/$t" || status=$?
done
exit "$status"
