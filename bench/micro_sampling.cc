// Micro-benchmarks of the sampling substrate: alias tables, walks,
// randomized inter-relationship exploration, corpus generation.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "data/profiles.h"
#include "sampling/alias.h"
#include "sampling/corpus.h"
#include "sampling/exploration.h"
#include "sampling/negative_sampler.h"
#include "sampling/walker.h"

namespace hybridgnn {
namespace {

const Dataset& KuaishouDataset() {
  static const Dataset* ds = [] {
    auto d = MakeDataset("kuaishou", 0.2, 42);
    HYBRIDGNN_CHECK(d.ok());
    return new Dataset(std::move(d).value());
  }();
  return *ds;
}

void BM_AliasTableBuild(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> weights(state.range(0));
  for (auto& w : weights) w = rng.UniformDouble() + 0.01;
  for (auto _ : state) {
    AliasTable t(weights);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * weights.size());
}
BENCHMARK(BM_AliasTableBuild)->Arg(1000)->Arg(100000);

void BM_AliasTableSample(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> weights(100000);
  for (auto& w : weights) w = rng.UniformDouble() + 0.01;
  AliasTable t(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasTableSample);

void BM_MetapathWalk(benchmark::State& state) {
  const auto& ds = KuaishouDataset();
  Rng rng(3);
  const auto& scheme = ds.schemes.front();
  NodeId start = ds.graph.NodesOfType(scheme.source_type()).front();
  for (auto _ : state) {
    auto walk = MetapathWalk(ds.graph, scheme, start, 10, rng);
    benchmark::DoNotOptimize(walk);
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_MetapathWalk);

void BM_ExplorationWalk(benchmark::State& state) {
  const auto& ds = KuaishouDataset();
  Rng rng(4);
  for (auto _ : state) {
    auto walk = ExplorationWalk(ds.graph, 0, 10, rng);
    benchmark::DoNotOptimize(walk);
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_ExplorationWalk);

void BM_ExplorationNeighbors(benchmark::State& state) {
  const auto& ds = KuaishouDataset();
  Rng rng(5);
  for (auto _ : state) {
    auto levels = ExplorationNeighbors(ds.graph, 0, state.range(0), 6, rng);
    benchmark::DoNotOptimize(levels);
  }
}
BENCHMARK(BM_ExplorationNeighbors)->Arg(1)->Arg(2)->Arg(3);

void BM_NegativeSampling(benchmark::State& state) {
  const auto& ds = KuaishouDataset();
  NegativeSampler sampler(ds.graph);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.SampleLike(0, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NegativeSampling);

void BM_MetapathCorpus(benchmark::State& state) {
  const auto& ds = KuaishouDataset();
  CorpusOptions options;
  options.num_walks_per_node = 1;
  options.walk_length = 6;
  options.window = 2;
  Rng rng(7);
  for (auto _ : state) {
    WalkCorpus corpus =
        BuildMetapathCorpus(ds.graph, ds.schemes, options, rng);
    benchmark::DoNotOptimize(corpus.pairs.size());
  }
}
BENCHMARK(BM_MetapathCorpus);

}  // namespace
}  // namespace hybridgnn

#define HYBRIDGNN_BENCH_NAME "micro_sampling"
#include "gbench_json_main.h"
