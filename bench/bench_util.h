#ifndef HYBRIDGNN_BENCH_BENCH_UTIL_H_
#define HYBRIDGNN_BENCH_BENCH_UTIL_H_

// Shared plumbing for the table/figure reproduction harnesses. Every bench
// accepts environment overrides:
//   HYBRIDGNN_BENCH_SCALE   dataset scale multiplier   (default 0.15)
//   HYBRIDGNN_BENCH_EFFORT  training effort multiplier (default 1.0)
//   HYBRIDGNN_BENCH_SEEDS   repeated runs per cell     (default 2;
//                           >= 3 enables the paper's t-test columns)
// Defaults are sized so the whole bench suite finishes in minutes on a
// laptop CPU; raise scale/effort/seeds to approach the paper's protocol.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "core/hybrid_gnn.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/timer.h"
#include "data/profiles.h"
#include "data/split.h"
#include "eval/evaluator.h"

namespace hybridgnn::bench {

struct BenchEnv {
  double scale;
  double effort;
  size_t seeds;
};

inline BenchEnv GetBenchEnv() {
  BenchEnv e;
  e.scale = GetEnvDouble("HYBRIDGNN_BENCH_SCALE", 0.15);
  e.effort = GetEnvDouble("HYBRIDGNN_BENCH_EFFORT", 1.0);
  e.seeds = static_cast<size_t>(GetEnvInt("HYBRIDGNN_BENCH_SEEDS", 2));
  if (e.seeds == 0) e.seeds = 1;
  return e;
}

inline ModelBudget MakeBudget(double effort) {
  ModelBudget b;
  b.effort = effort;
  b.num_walks = 6;
  b.walk_length = 8;
  b.window = 3;
  b.max_pairs_per_epoch = 20000;
  return b;
}

struct Prepared {
  Dataset dataset;
  LinkSplit split;
};

/// Generates the profile graph and its 85/5/10 split, deterministic in seed.
inline Prepared Prepare(const std::string& profile, double scale,
                        uint64_t seed) {
  auto ds = MakeDataset(profile, scale, seed);
  HYBRIDGNN_CHECK(ds.ok()) << ds.status().ToString();
  Rng rng(seed ^ 0x5117);
  auto split = SplitEdges(ds->graph, SplitOptions{}, rng);
  HYBRIDGNN_CHECK(split.ok()) << split.status().ToString();
  return Prepared{std::move(ds).value(), std::move(split).value()};
}

/// Trains `model_name` on the prepared split and evaluates it.
inline LinkPredictionResult RunModel(const std::string& model_name,
                                     const Prepared& prep, uint64_t seed,
                                     const ModelBudget& budget) {
  auto model = CreateModel(model_name, prep.dataset.schemes, seed, budget);
  HYBRIDGNN_CHECK(model.ok()) << model.status().ToString();
  // num_threads = 0 defers to HYBRIDGNN_THREADS, so `HYBRIDGNN_THREADS=4
  // ./table3_...` parallelizes training without touching per-model configs.
  FitOptions fit_opts;
  Status st = (*model)->Fit(prep.split.train_graph, fit_opts);
  HYBRIDGNN_CHECK(st.ok()) << model_name << ": " << st.ToString();
  Rng eval_rng(seed ^ 0xE7A1);
  EvalOptions opts;
  opts.max_ranking_queries = 120;
  return EvaluateLinkPrediction(**model, prep.dataset.graph, prep.split,
                                opts, eval_rng);
}

/// HybridGNN config mirroring the registry's defaults under `budget`,
/// exposed so ablation/sensitivity benches can tweak individual knobs.
inline HybridGnnConfig HybridConfigFromBudget(const ModelBudget& budget,
                                              uint64_t seed) {
  HybridGnnConfig c;
  c.corpus.num_walks_per_node = budget.num_walks;
  c.corpus.walk_length = budget.walk_length;
  c.corpus.window = budget.window;
  c.epochs = std::max<size_t>(
      1, static_cast<size_t>(10 * budget.effort + 0.5));
  c.max_pairs_per_epoch = budget.max_pairs_per_epoch;
  c.seed = seed;
  return c;
}

/// Trains a HybridGNN with an explicit config and evaluates it.
inline LinkPredictionResult RunHybrid(const HybridGnnConfig& config,
                                      const Prepared& prep) {
  HybridGnn model(config, prep.dataset.schemes);
  FitOptions fit_opts;  // num_threads = 0 -> HYBRIDGNN_THREADS
  Status st = model.Fit(prep.split.train_graph, fit_opts);
  HYBRIDGNN_CHECK(st.ok()) << st.ToString();
  Rng eval_rng(config.seed ^ 0xE7A1);
  EvalOptions opts;
  opts.max_ranking_queries = 120;
  return EvaluateLinkPrediction(model, prep.dataset.graph, prep.split, opts,
                                eval_rng);
}

inline void PrintHeaderBanner(const char* what) {
  BenchEnv env = GetBenchEnv();
  std::printf("=== %s ===\n", what);
  std::printf("(synthetic stand-ins; scale=%.2f effort=%.2f seeds=%zu — see "
              "EXPERIMENTS.md)\n\n",
              env.scale, env.effort, env.seeds);
}

}  // namespace hybridgnn::bench

#endif  // HYBRIDGNN_BENCH_BENCH_UTIL_H_
