// Machine-readable baselines for the hand-rolled micro benches: collects
// per-stage timings/throughput and writes bench-out/BENCH_<name>.json
// under the binary's working directory, so successive runs can be diffed
// by tooling (see README "Bench baselines") without the files littering
// the repo root. The google-benchmark micro benches emit the same path
// through benchmark's own JSONReporter instead (gbench_json_main.h).
#ifndef HYBRIDGNN_BENCH_BENCH_JSON_H_
#define HYBRIDGNN_BENCH_BENCH_JSON_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

namespace hybridgnn::bench {

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name)
      : name_(std::move(bench_name)) {}

  /// One timed stage at a given worker-thread count. `throughput` is
  /// items/s in whatever unit the stage reports (walks, pairs, queries);
  /// pass 0 when a rate is not meaningful.
  void AddStage(const std::string& stage, size_t threads, double ms,
                double throughput) {
    stages_.push_back(StageRow{stage, threads, ms, throughput});
  }

  /// FNV-style content hash of the bench's result. Stored as hex so a
  /// baseline diff shows thread-count invariance at a glance.
  void set_result_hash(uint64_t h) {
    result_hash_ = h;
    has_hash_ = true;
  }

  /// Writes bench-out/BENCH_<name>.json (creating the directory).
  /// Best-effort: bench binaries must not fail their run over an
  /// unwritable baseline file.
  void Write() const {
    std::error_code ec;
    std::filesystem::create_directories("bench-out", ec);
    const std::string path = "bench-out/BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n";
    out << "  \"bench\": \"" << name_ << "\",\n";
    out << "  \"hardware_threads\": "
        << std::thread::hardware_concurrency() << ",\n";
    if (has_hash_) {
      char hex[32];
      std::snprintf(hex, sizeof(hex), "%016" PRIx64, result_hash_);
      out << "  \"result_hash\": \"" << hex << "\",\n";
    }
    out << "  \"stages\": [\n";
    for (size_t i = 0; i < stages_.size(); ++i) {
      const StageRow& s = stages_[i];
      char row[256];
      std::snprintf(row, sizeof(row),
                    "    {\"stage\": \"%s\", \"threads\": %zu, "
                    "\"ms\": %.6g, \"throughput\": %.6g}",
                    s.stage.c_str(), s.threads, s.ms, s.throughput);
      out << row << (i + 1 < stages_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::printf("wrote %s (%zu stage rows)\n", path.c_str(), stages_.size());
  }

 private:
  struct StageRow {
    std::string stage;
    size_t threads;
    double ms;
    double throughput;
  };

  std::string name_;
  std::vector<StageRow> stages_;
  uint64_t result_hash_ = 0;
  bool has_hash_ = false;
};

}  // namespace hybridgnn::bench

#endif  // HYBRIDGNN_BENCH_BENCH_JSON_H_
