// Reproduces Table IV: link prediction on Taobao and Kuaishou
// (|O|>=2 and |R|>=2 — the fully multiplex-heterogeneous case where all of
// HybridGNN's modules engage).

#include "bench_util.h"
#include "eval/metrics.h"
#include "eval/stats_test.h"

using namespace hybridgnn;
using namespace hybridgnn::bench;

namespace {

void RunDataset(const std::string& profile, const BenchEnv& env) {
  std::printf("--- %s ---\n", profile.c_str());
  std::printf("%-12s %8s %8s %8s %8s %8s\n", "model", "ROC-AUC", "PR-AUC",
              "F1", "PR@10", "HR@10");
  ModelBudget budget = MakeBudget(env.effort);
  std::vector<double> hybrid_auc, best_baseline_auc;
  std::string best_baseline;
  double best_auc = -1.0;
  for (const auto& model : AllModelNames()) {
    std::vector<double> roc, pr, f1, prk, hrk;
    for (size_t s = 0; s < env.seeds; ++s) {
      Prepared prep = Prepare(profile, env.scale, 200 + s);
      LinkPredictionResult r = RunModel(model, prep, 2000 + s, budget);
      roc.push_back(r.roc_auc);
      pr.push_back(r.pr_auc);
      f1.push_back(r.f1);
      prk.push_back(r.pr_at_k);
      hrk.push_back(r.hr_at_k);
    }
    std::printf("%-12s %8.2f %8.2f %8.2f %8.4f %8.4f\n", model.c_str(),
                Mean(roc), Mean(pr), Mean(f1), Mean(prk), Mean(hrk));
    if (model == "HybridGNN") {
      hybrid_auc = roc;
    } else if (Mean(roc) > best_auc) {
      best_auc = Mean(roc);
      best_baseline = model;
      best_baseline_auc = roc;
    }
  }
  if (env.seeds >= 3 && !hybrid_auc.empty()) {
    TTestResult t = WelchTTest(hybrid_auc, best_baseline_auc);
    std::printf("t-test HybridGNN vs %s (ROC-AUC): t=%.2f p=%.4f%s\n",
                best_baseline.c_str(), t.t_statistic, t.p_value,
                t.p_value < 0.01 ? "  (*)" : "");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PrintHeaderBanner("Table IV: overall link prediction (Taobao / Kuaishou)");
  BenchEnv env = GetBenchEnv();
  for (const char* profile : {"taobao", "kuaishou"}) {
    RunDataset(profile, env);
  }
  return 0;
}
