// Micro benchmark for compiled execution plans (src/plan): a node-tower
// shaped step (segmented gather -> segment mean -> elementwise chain ->
// rowwise-dot BCE head -> backward) run eagerly under the tape arena versus
// recorded once and replayed with bound inputs. Dimensions are deliberately
// tiny so per-step graph construction — exactly what replay eliminates —
// dominates the kernel time. Reports ns/step and allocations per replayed
// step, and writes BENCH_micro_plan.json.
//
//   micro_plan [--steps N] [--gate]
//
// --gate exits non-zero unless compiled replay is at least 1.3x faster than
// arena-eager ns/step AND a warmed replay performs zero heap allocations;
// ci_check.sh runs this after the micro_autograd gate.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "graph/frontier.h"
#include "nn/embedding.h"
#include "nn/sparse.h"
#include "plan/plan.h"
#include "tensor/autograd.h"
#include "tensor/pool.h"

// ----- Allocation counting -----
//
// Same global operator new/delete overrides as micro_autograd: every heap
// allocation in the process is visible, tensor buffers included.

namespace {
std::atomic<uint64_t> g_alloc_calls{0};
std::atomic<uint64_t> g_alloc_bytes{0};

void CountAlloc(size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
}
}  // namespace

void* operator new(size_t size) {
  CountAlloc(size);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) {
  CountAlloc(size);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(size_t size, std::align_val_t align) {
  CountAlloc(size);
  if (void* p = std::aligned_alloc(static_cast<size_t>(align),
                                   (size + static_cast<size_t>(align) - 1) &
                                       ~(static_cast<size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hybridgnn {
namespace {

constexpr size_t kNodes = 64;
constexpr size_t kDim = 8;
constexpr size_t kBatch = 4;
constexpr size_t kFanout = 4;
// One tower per relation, each ending in a fusable elementwise chain: the
// eager path pays per-op tape construction and kernel dispatch for every
// link, the compiled path replays one fused EwChain op per tower. Scale and
// Relu keep the chain on the vectorizable fused fast path, so the bench
// isolates framework overhead rather than transcendental kernel time.
constexpr size_t kRels = 4;
constexpr size_t kChainLinks = 4;  // Scale+Relu pairs per tower (8 stages)
// Input batches are pre-generated and rotated through the timed loop so the
// replay path touches no Rng and performs no allocation per step.
constexpr size_t kRotations = 16;

struct Model {
  EmbeddingTable table;
  EmbeddingTable ctx;
  Model(Rng& rng) : table(kNodes, kDim, rng), ctx(kNodes, kDim, rng) {}
};

/// One pre-generated step input: a fixed-structure frontier per relation
/// (kBatch segments of exactly kFanout indices), the center ids, and the
/// labels.
struct StepData {
  MinibatchFrontier frontiers[kRels];
  std::vector<int32_t> centers;
  std::vector<float> labels;
};

std::vector<StepData> MakeRotations(uint64_t seed) {
  Rng rng(seed);
  std::vector<StepData> rot(kRotations);
  for (StepData& d : rot) {
    for (size_t r = 0; r < kRels; ++r) {
      for (size_t b = 0; b < kBatch; ++b) {
        for (size_t f = 0; f < kFanout; ++f) {
          d.frontiers[r].indices.push_back(
              static_cast<int32_t>(rng.UniformUint64(kNodes)));
        }
        d.frontiers[r].CloseSegment();
      }
    }
    for (size_t b = 0; b < kBatch; ++b) {
      d.centers.push_back(static_cast<int32_t>(rng.UniformUint64(kNodes)));
      d.labels.push_back(static_cast<float>(b % 2));
    }
  }
  return rot;
}

/// One relation's aggregation tower: segmented gather + segment mean over
/// the frontier, pushed through a fusable elementwise chain.
ag::Var Tower(const Model& m, const MinibatchFrontier& f) {
  ag::Var x = SegmentMean(GatherRowsSegmented(m.table.table(), f), f);
  for (size_t i = 0; i < kChainLinks; ++i) {
    x = ag::Relu(ag::Scale(x, 1.1f));
  }
  return x;
}

/// The step graph: one tower per relation summed into the center row, a
/// final mixing chain, scored against a context gather. Shapes are
/// identical across rotations, so one recorded plan serves every step.
ag::Var BuildStep(const Model& m, const StepData& d) {
  ag::Var acc = ag::GatherRows(m.table.table(), d.centers);
  for (size_t r = 0; r < kRels; ++r) {
    acc = ag::Add(acc, Tower(m, d.frontiers[r]));
  }
  ag::Var mixed = ag::Relu(ag::Scale(acc, 0.5f));
  ag::Var ctxv = ag::GatherRows(m.ctx.table(), d.centers);
  ag::Var logits = ag::RowwiseDot(mixed, ctxv);
  return ag::BceWithLogits(logits, d.labels);
}

void ZeroGrads(const Model& m) {
  for (const auto& p : m.table.parameters()) p->ZeroGrad();
  for (const auto& p : m.ctx.parameters()) p->ZeroGrad();
}

uint32_t LossBits(const ag::Var& loss) {
  uint32_t bits;
  std::memcpy(&bits, &loss->value.At(0, 0), sizeof(bits));
  return bits;
}

struct ModeResult {
  double ns_per_step = 0.0;
  double allocs_per_step = 0.0;
  std::vector<uint32_t> loss_bits;
};

ModeResult RunEager(const std::vector<StepData>& rot, size_t steps) {
  pool::PoolScope pool_scope(true);
  Rng model_rng(0xC0DE);
  Model model(model_rng);
  ModeResult r;
  r.loss_bits.reserve(steps);
  for (size_t s = 0; s < 10; ++s) {
    ag::TapeScope tape;
    ag::Var loss = BuildStep(model, rot[s % kRotations]);
    ag::Backward(loss);
    ZeroGrads(model);
  }
  const uint64_t allocs_before = g_alloc_calls.load();
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t s = 0; s < steps; ++s) {
    ag::TapeScope tape;
    ag::Var loss = BuildStep(model, rot[s % kRotations]);
    ag::Backward(loss);
    r.loss_bits.push_back(LossBits(loss));
    ZeroGrads(model);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double inv_steps = 1.0 / static_cast<double>(steps);
  r.ns_per_step =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() *
      inv_steps;
  r.allocs_per_step =
      static_cast<double>(g_alloc_calls.load() - allocs_before) * inv_steps;
  return r;
}

ModeResult RunCompiled(const std::vector<StepData>& rot, size_t steps) {
  pool::PoolScope pool_scope(true);
  Rng model_rng(0xC0DE);
  Model model(model_rng);
  ModeResult r;
  r.loss_bits.reserve(steps);

  std::unique_ptr<plan::CompiledStep> step;
  {
    ag::TapeScope tape;
    plan::Recorder rec;
    ag::Var loss = BuildStep(model, rot[0]);
    step = rec.Finalize(loss);
    if (step == nullptr) {
      std::fprintf(stderr, "FATAL: plan trace poisoned: %s\n",
                   rec.poison_reason().c_str());
      return r;  // empty loss_bits; Main treats that as failure
    }
  }
  ZeroGrads(model);

  // Bind order mirrors BuildStep's op creation order: the center gather,
  // then per relation the segmented gather (indices + indptr) and segment
  // mean (indptr), then the context gather and the BCE labels. All spans
  // point into the pre-generated rotation, so a replayed step owns no
  // storage of its own.
  plan::StepInputs in;
  auto replay = [&](const StepData& d) {
    in.i32.clear();
    in.szs.clear();
    in.f32.clear();
    in.i32.push_back(d.centers);
    for (size_t r = 0; r < kRels; ++r) {
      in.i32.push_back(d.frontiers[r].indices);
      in.szs.push_back(d.frontiers[r].indptr);
      in.szs.push_back(d.frontiers[r].indptr);
    }
    in.i32.push_back(d.centers);
    in.f32.push_back(d.labels);
    ag::TapeScope tape;
    ag::Var loss = step->ReplayTrain(in);
    ag::Backward(loss);
    return LossBits(loss);
  };

  for (size_t s = 0; s < 10; ++s) {
    replay(rot[s % kRotations]);
    ZeroGrads(model);
  }
  const uint64_t allocs_before = g_alloc_calls.load();
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t s = 0; s < steps; ++s) {
    r.loss_bits.push_back(replay(rot[s % kRotations]));
    ZeroGrads(model);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double inv_steps = 1.0 / static_cast<double>(steps);
  r.ns_per_step =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() *
      inv_steps;
  r.allocs_per_step =
      static_cast<double>(g_alloc_calls.load() - allocs_before) * inv_steps;
  return r;
}


int Main(int argc, char** argv) {
  size_t steps = 2000;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--steps" && i + 1 < argc) {
      steps = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--gate") {
      gate = true;
    } else {
      std::fprintf(stderr, "usage: %s [--steps N] [--gate]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<StepData> rot = MakeRotations(0xF1A7);
  ModeResult eager = RunEager(rot, steps);
  ModeResult compiled = RunCompiled(rot, steps);

  if (compiled.loss_bits.empty()) return 1;  // trace poisoned
  if (compiled.loss_bits != eager.loss_bits) {
    std::fprintf(stderr,
                 "FATAL: compiled replay diverged from eager (loss bits)\n");
    return 1;
  }

  const double speedup = compiled.ns_per_step > 0.0
                             ? eager.ns_per_step / compiled.ns_per_step
                             : 0.0;
  std::printf("micro_plan: %zu steps, batch %zu, fanout %zu, dim %zu\n",
              steps, kBatch, kFanout, kDim);
  std::printf("  eager   : %8.0f ns/step  %6.2f allocs/step\n",
              eager.ns_per_step, eager.allocs_per_step);
  std::printf("  compiled: %8.0f ns/step  %6.2f allocs/step\n",
              compiled.ns_per_step, compiled.allocs_per_step);
  std::printf("  speedup %.2fx (gate >= 1.3), replay allocs %.2f (gate 0)\n",
              speedup, compiled.allocs_per_step);

  bench::BenchReport report("micro_plan");
  report.AddStage("eager_ns_per_step", 1, eager.ns_per_step * 1e-6, 0.0);
  report.AddStage("compiled_ns_per_step", 1, compiled.ns_per_step * 1e-6,
                  0.0);
  report.AddStage("compiled_allocs_per_step", 1, 0.0,
                  compiled.allocs_per_step);
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (uint32_t bits : compiled.loss_bits) {
    hash = (hash ^ bits) * 1099511628211ull;
  }
  report.set_result_hash(hash);
  report.Write();

  if (gate) {
    bool ok = true;
    if (speedup < 1.3) {
      std::fprintf(stderr,
                   "GATE FAILED: compiled replay is %.2fx arena-eager "
                   "(need >= 1.3x)\n",
                   speedup);
      ok = false;
    }
    if (compiled.allocs_per_step != 0.0) {
      std::fprintf(stderr,
                   "GATE FAILED: %.2f allocations per replayed step "
                   "(need 0)\n",
                   compiled.allocs_per_step);
      ok = false;
    }
    if (!ok) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hybridgnn

int main(int argc, char** argv) { return hybridgnn::Main(argc, argv); }
