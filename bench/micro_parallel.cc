// Parallel-pipeline throughput: walk-corpus generation, Hogwild SGNS, and
// batched evaluation at 1/2/4/8 worker threads on the Taobao profile.
// Reports walks/s and pairs/s plus speedup over the 1-thread row, and
// verifies that the parallel corpus is invariant to the thread count
// (content hash equality across all rows with threads > 1).
//
// Note: speedups only materialize with as many physical cores as workers;
// on a single-core host all rows collapse to ~1x (scheduling overhead
// included), which is expected.
#include <cstdio>

#include "baselines/deepwalk.h"
#include "bench_json.h"
#include "bench_util.h"
#include "common/timer.h"
#include "sampling/corpus.h"
#include "sampling/negative_sampler.h"
#include "sampling/sgns.h"

namespace hybridgnn::bench {
namespace {

uint64_t HashCorpus(const WalkCorpus& corpus) {
  // FNV-1a over walk contents and pair triples.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  for (const auto& walk : corpus.walks) {
    mix(walk.size());
    for (NodeId v : walk) mix(v);
  }
  for (const auto& p : corpus.pairs) {
    mix(p.center);
    mix(p.context);
    mix(p.rel);
  }
  return h;
}

void Run() {
  BenchEnv env = GetBenchEnv();
  PrintHeaderBanner("parallel pipeline throughput (walks / SGNS / eval)");
  Prepared prep = Prepare("taobao", env.scale, /*seed=*/17);
  const MultiplexHeteroGraph& g = prep.split.train_graph;
  std::printf("graph: %zu nodes, %zu edges, %zu relations\n\n",
              g.num_nodes(), g.edges().size(), g.num_relations());

  CorpusOptions co;
  co.num_walks_per_node = 6;
  co.walk_length = 8;
  co.window = 3;

  NegativeSampler sampler(g);
  BenchReport report("micro_parallel");
  const size_t threads_axis[] = {1, 2, 4, 8};

  std::printf("%-8s %12s %12s %12s %10s %10s\n", "threads", "corpus_ms",
              "walks/s", "sgns_ms", "pairs/s", "eval_ms");
  double corpus_base = 0.0, sgns_base = 0.0, eval_base = 0.0;
  uint64_t parallel_hash = 0;
  bool hash_ok = true;
  for (size_t threads : threads_axis) {
    // --- corpus ---
    co.num_threads = threads;
    Rng rng(1234);
    Timer t;
    WalkCorpus corpus =
        BuildMetapathCorpus(g, prep.dataset.schemes, co, rng);
    const double corpus_ms = t.ElapsedMillis();
    if (threads > 1) {
      const uint64_t h = HashCorpus(corpus);
      if (parallel_hash == 0) {
        parallel_hash = h;
      } else if (h != parallel_hash) {
        hash_ok = false;
      }
    }
    // --- SGNS ---
    SgnsOptions so;
    so.dim = 64;
    so.epochs = 1;
    so.max_pairs_per_epoch = 0;
    so.num_threads = threads;
    Rng srng(55);
    SgnsEmbedder emb(g.num_nodes(), so.dim, srng);
    t.Reset();
    emb.Train(corpus.pairs, sampler, so, srng);
    const double sgns_ms = t.ElapsedMillis();
    // --- evaluation (batched scoring + parallel query ranking) ---
    EvalOptions eo;
    eo.max_ranking_queries = 60;
    eo.num_threads = threads;
    DeepWalk::Options dwo;
    dwo.sgns.dim = 64;
    DeepWalk scorer(dwo);
    FitOptions fit_opts;
    fit_opts.num_threads = threads;
    HYBRIDGNN_CHECK(scorer.Fit(g, fit_opts).ok());
    Rng erng(88);
    t.Reset();
    (void)EvaluateLinkPrediction(scorer, prep.dataset.graph, prep.split, eo,
                                 erng);
    const double eval_ms = t.ElapsedMillis();

    if (threads == 1) {
      corpus_base = corpus_ms;
      sgns_base = sgns_ms;
      eval_base = eval_ms;
    }
    const double walks_per_s =
        corpus_ms > 0 ? 1e3 * corpus.walks.size() / corpus_ms : 0;
    const double pairs_per_s =
        sgns_ms > 0 ? 1e3 * corpus.pairs.size() / sgns_ms : 0;
    report.AddStage("corpus", threads, corpus_ms, walks_per_s);
    report.AddStage("sgns", threads, sgns_ms, pairs_per_s);
    report.AddStage("eval", threads, eval_ms, 0.0);
    std::printf("%-8zu %9.1f ms %12.0f %9.1f ms %10.0f %7.1f ms\n", threads,
                corpus_ms, walks_per_s, sgns_ms, pairs_per_s, eval_ms);
    if (threads != 1) {
      std::printf("%-8s %9.2fx %12s %9.2fx %10s %7.2fx\n", "",
                  corpus_ms > 0 ? corpus_base / corpus_ms : 0.0, "",
                  sgns_ms > 0 ? sgns_base / sgns_ms : 0.0, "",
                  eval_ms > 0 ? eval_base / eval_ms : 0.0);
    }
  }
  std::printf("\nparallel corpus thread-count invariance: %s\n",
              hash_ok ? "OK (identical for all thread counts > 1)"
                      : "FAILED — corpora differ across thread counts!");
  HYBRIDGNN_CHECK(hash_ok);
  report.set_result_hash(parallel_hash);
  report.Write();
}

}  // namespace
}  // namespace hybridgnn::bench

int main() {
  hybridgnn::bench::Run();
  return 0;
}
