// Reproduces Table V: effect of the randomized inter-relationship
// exploration depth L in {1, 2, 3} on Amazon, YouTube, IMDb and Taobao
// (ROC-AUC and F1 per cell). The paper finds deeper is not always better,
// with L=2 best on complex graphs.

#include "bench_util.h"
#include "eval/metrics.h"

using namespace hybridgnn;
using namespace hybridgnn::bench;

int main() {
  PrintHeaderBanner("Table V: randomized exploration depth L (ROC-AUC / F1)");
  BenchEnv env = GetBenchEnv();
  ModelBudget budget = MakeBudget(env.effort);
  const std::vector<std::string> profiles = {"amazon", "youtube", "imdb",
                                             "taobao"};
  std::printf("%-18s", "Depth");
  for (const auto& p : profiles) std::printf(" %14s", p.c_str());
  std::printf("\n");
  for (size_t depth = 1; depth <= 3; ++depth) {
    std::printf("HybridGNN (L=%zu)  ", depth);
    for (const auto& profile : profiles) {
      std::vector<double> roc, f1;
      for (size_t s = 0; s < env.seeds; ++s) {
        Prepared prep = Prepare(profile, env.scale, 300 + s);
        HybridGnnConfig c = HybridConfigFromBudget(budget, 3000 + s);
        c.exploration_depth = depth;
        LinkPredictionResult r = RunHybrid(c, prep);
        roc.push_back(r.roc_auc);
        f1.push_back(r.f1);
      }
      std::printf("  %6.2f/%6.2f", Mean(roc), Mean(f1));
    }
    std::printf("\n");
  }
  return 0;
}
