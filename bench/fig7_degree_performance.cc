// Reproduces Fig. 7: PR@10 of node clusters of different degrees on the
// Taobao dataset, reported per relationship (page_view, item_favoring,
// purchase, add_to_cart). The paper's shape: recommendation quality rises
// with node degree under every relationship.

#include "bench_util.h"

using namespace hybridgnn;
using namespace hybridgnn::bench;

int main() {
  PrintHeaderBanner(
      "Fig. 7: PR@10 by degree cluster per relationship (Taobao)");
  BenchEnv env = GetBenchEnv();
  ModelBudget budget = MakeBudget(env.effort);
  Prepared prep = Prepare("taobao", env.scale, 900);

  HybridGnnConfig config = HybridConfigFromBudget(budget, 9000);
  HybridGnn model(config, prep.dataset.schemes);
  HYBRIDGNN_CHECK_OK(model.Fit(prep.split.train_graph));

  const MultiplexHeteroGraph& g = prep.dataset.graph;
  size_t max_degree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_degree = std::max(max_degree, g.TotalDegree(v));
  }
  std::vector<size_t> edges = {1, std::max<size_t>(2, max_degree / 4),
                               std::max<size_t>(3, max_degree / 2),
                               std::max<size_t>(4, 3 * max_degree / 4),
                               max_degree + 1};
  std::printf("degree buckets:");
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    std::printf(" [%zu,%zu)", edges[i], edges[i + 1]);
  }
  std::printf("\n\n%-16s %8s %8s %8s %8s\n", "relationship", "b1", "b2",
              "b3", "b4");
  EvalOptions eval_options;
  eval_options.max_ranking_queries = 400;
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    Rng rng(901 + r);
    std::vector<double> pr = PrAtKByDegreeForRelation(
        model, g, prep.split, r, edges, 10, eval_options, rng);
    std::printf("%-16s", g.relation_name(r).c_str());
    for (double p : pr) std::printf(" %8.4f", p);
    std::printf("\n");
  }
  return 0;
}
