// Microbenchmark for the runtime-dispatched kernel layer (src/kernels):
// times Dot, Axpy, Scale, SgnsUpdateStep, and ScoreBlock on the scalar and
// (when the host supports it) AVX2 backends across the dims that matter for
// SGNS training and top-K serving. Reports per-kernel throughput and the
// avx2-over-scalar speedup; the acceptance bar is >= 2x for Dot and
// ScoreBlock at dim >= 128 on AVX2 hardware.
//
// Writes BENCH_micro_kernels.json (stage rows are "<kernel>_d<dim>_<backend>",
// with the dim recorded in the `threads` column since kernels are
// single-threaded) plus a result hash over the accumulated outputs so a
// baseline diff catches silent numeric divergence between backends.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "kernels/kernels.h"

namespace hybridgnn::bench {
namespace {

namespace k = ::hybridgnn::kernels;

constexpr size_t kDims[] = {8, 32, 64, 128, 256, 512};
constexpr size_t kScoreRows = 256;  // matches serve/topk.cc's block size

struct Workload {
  std::vector<float> a, b, c;      // dim-sized operand rows
  std::vector<float> table;        // kScoreRows x dim candidate block
  std::vector<double> scores;      // kScoreRows outputs
};

Workload MakeWorkload(size_t dim, Rng& rng) {
  Workload w;
  w.a.resize(dim);
  w.b.resize(dim);
  w.c.resize(dim);
  w.table.resize(kScoreRows * dim);
  w.scores.resize(kScoreRows);
  for (auto* v : {&w.a, &w.b, &w.c}) {
    for (auto& x : *v) x = rng.UniformFloat(-1.0f, 1.0f);
  }
  for (auto& x : w.table) x = rng.UniformFloat(-1.0f, 1.0f);
  return w;
}

/// Calibrated so each (kernel, dim, backend) cell runs ~10-40 ms.
size_t RepsFor(size_t dim) { return 40'000'000 / (dim + 8); }

struct CellResult {
  double ms;
  double flops_per_s;
  double sink;  // accumulated output, defeats dead-code elimination
};

template <typename Body>
CellResult TimeCell(size_t reps, size_t flops_per_rep, Body body) {
  double sink = 0.0;
  // Warmup resolves dispatch and faults pages in.
  for (size_t i = 0; i < 16; ++i) sink += body();
  Timer t;
  for (size_t i = 0; i < reps; ++i) sink += body();
  const double ms = t.ElapsedMillis();
  const double flops =
      static_cast<double>(reps) * static_cast<double>(flops_per_rep);
  return {ms, ms > 0 ? flops / (ms * 1e-3) : 0.0, sink};
}

uint64_t MixHash(uint64_t h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  h ^= bits;
  h *= 1099511628211ULL;
  return h;
}

void Run() {
  std::printf("=== kernel layer microbench (scalar vs avx2 dispatch) ===\n");
  std::printf("active backend: %s, avx2 available: %s\n\n",
              k::BackendName(k::ActiveBackend()),
              k::Avx2Available() ? "yes" : "no");

  std::vector<k::Backend> backends = {k::Backend::kScalar};
  if (k::Avx2Available()) backends.push_back(k::Backend::kAvx2);

  BenchReport report("micro_kernels");
  uint64_t hash = 1469598103934665603ULL;
  Rng rng(4242);

  struct Kernel {
    const char* name;
    size_t flops_factor;  // per element of dim
  };
  const Kernel kernels[] = {
      {"dot", 2}, {"axpy", 2}, {"scale", 1},
      {"sgns_update", 6},       // dot + two axpy-like row updates
      {"score_block", 2 * kScoreRows},
  };

  std::printf("%-14s %6s %10s %14s %14s %9s\n", "kernel", "dim", "backend",
              "ms", "gflops", "speedup");
  for (const Kernel& kern : kernels) {
    for (size_t dim : kDims) {
      Workload w = MakeWorkload(dim, rng);
      double scalar_ms = 0.0;
      for (k::Backend backend : backends) {
        k::ScopedBackend guard(backend);
        const std::string kname(kern.name);
        size_t reps = RepsFor(dim);
        if (kname == "score_block") reps /= kScoreRows;
        if (reps == 0) reps = 1;
        CellResult cell{};
        if (kname == "dot") {
          cell = TimeCell(reps, 2 * dim, [&] {
            return static_cast<double>(k::Dot(w.a.data(), w.b.data(), dim));
          });
        } else if (kname == "axpy") {
          cell = TimeCell(reps, 2 * dim, [&] {
            k::Axpy(1e-7f, w.a.data(), w.c.data(), dim);
            return static_cast<double>(w.c[0]);
          });
        } else if (kname == "scale") {
          cell = TimeCell(reps, dim, [&] {
            // Alternating factors keep the data from draining to zero.
            k::Scale(0.5f, w.c.data(), dim);
            k::Scale(2.0f, w.c.data(), dim);
            return static_cast<double>(w.c[0]);
          });
        } else if (kname == "sgns_update") {
          cell = TimeCell(reps, 6 * dim, [&] {
            std::fill(w.c.begin(), w.c.end(), 0.0f);
            return static_cast<double>(k::SgnsUpdateStep(
                w.a.data(), w.b.data(), w.c.data(), dim, 1.0f, 1e-4f));
          });
        } else {
          cell = TimeCell(reps, 2 * dim * kScoreRows, [&] {
            k::ScoreBlock(w.a.data(), w.table.data(), kScoreRows, dim,
                          w.scores.data());
            return w.scores[0] + w.scores[kScoreRows - 1];
          });
        }
        hash = MixHash(hash, cell.sink);
        double speedup = 0.0;
        if (backend == k::Backend::kScalar) {
          scalar_ms = cell.ms;
        } else if (cell.ms > 0) {
          speedup = scalar_ms / cell.ms;
        }
        const std::string stage = kname + "_d" + std::to_string(dim) + "_" +
                                  k::BackendName(backend);
        report.AddStage(stage, dim, cell.ms, cell.flops_per_s);
        std::printf("%-14s %6zu %10s %11.1f ms %11.2f %8.2fx\n", kern.name,
                    dim, k::BackendName(backend), cell.ms,
                    cell.flops_per_s / 1e9,
                    backend == k::Backend::kScalar ? 1.0 : speedup);
        if (k::Avx2Available() && backend == k::Backend::kAvx2 &&
            dim >= 128 && (kname == "dot" || kname == "score_block")) {
          // The acceptance bar for the SIMD layer; a regression here means
          // the dispatch or the vector body quietly degraded.
          HYBRIDGNN_CHECK(speedup >= 2.0)
              << kern.name << " dim " << dim << " avx2 speedup " << speedup
              << "x is below the 2x bar";
        }
      }
    }
    std::printf("\n");
  }

  report.set_result_hash(hash);
  report.Write();
}

}  // namespace
}  // namespace hybridgnn::bench

int main() {
  hybridgnn::bench::Run();
  return 0;
}
