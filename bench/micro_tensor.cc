// Micro-benchmarks of the tensor/autograd substrate: gemm, softmax,
// attention forward+backward, Adam steps.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/attention.h"
#include "tensor/autograd.h"
#include "tensor/init.h"
#include "tensor/optimizer.h"
#include "tensor/tensor_ops.h"

namespace hybridgnn {
namespace {

Tensor RandomTensor(size_t r, size_t c, uint64_t seed) {
  Rng rng(seed);
  Tensor t(r, c);
  UniformInit(t, rng, -1, 1);
  return t;
}

void BM_MatMul(benchmark::State& state) {
  const size_t n = state.range(0);
  Tensor a = RandomTensor(n, n, 1);
  Tensor b = RandomTensor(n, n, 2);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_SoftmaxRows(benchmark::State& state) {
  Tensor a = RandomTensor(256, 256, 3);
  for (auto _ : state) {
    Tensor s = SoftmaxRows(a);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_SoftmaxRows);

void BM_AttentionForwardBackward(benchmark::State& state) {
  Rng rng(4);
  SelfAttention attn(16, 16, rng);
  Tensor h = RandomTensor(8, 16, 5);
  for (auto _ : state) {
    ag::Var out = attn.Forward(ag::Constant(h));
    ag::Var loss = ag::MeanAll(out);
    ag::Backward(loss);
    for (const auto& p : attn.parameters()) p->ZeroGrad();
    benchmark::DoNotOptimize(loss->value.At(0, 0));
  }
}
BENCHMARK(BM_AttentionForwardBackward);

void BM_SgnsLossBackward(benchmark::State& state) {
  ag::Var pos = ag::Param(RandomTensor(256, 1, 6));
  ag::Var neg = ag::Param(RandomTensor(1280, 1, 7));
  for (auto _ : state) {
    ag::Var loss = ag::SgnsLoss(pos, neg);
    ag::Backward(loss);
    pos->ZeroGrad();
    neg->ZeroGrad();
    benchmark::DoNotOptimize(loss->value.At(0, 0));
  }
}
BENCHMARK(BM_SgnsLossBackward);

void BM_AdamStep(benchmark::State& state) {
  ag::Var p = ag::Param(RandomTensor(1000, 128, 8));
  Adam opt(1e-3f);
  opt.AddParameter(p);
  p->AccumulateGrad(RandomTensor(1000, 128, 9));
  for (auto _ : state) {
    opt.Step();
  }
  state.SetItemsProcessed(state.iterations() * p->value.size());
}
BENCHMARK(BM_AdamStep);

void BM_GatherScatter(benchmark::State& state) {
  ag::Var table = ag::Param(RandomTensor(10000, 64, 10));
  std::vector<int32_t> idx;
  Rng rng(11);
  for (int i = 0; i < 512; ++i) {
    idx.push_back(static_cast<int32_t>(rng.UniformUint64(10000)));
  }
  for (auto _ : state) {
    ag::Var rows = ag::GatherRows(table, idx);
    ag::Var loss = ag::MeanAll(rows);
    ag::Backward(loss);
    table->ZeroGrad();
    benchmark::DoNotOptimize(loss->value.At(0, 0));
  }
}
BENCHMARK(BM_GatherScatter);

}  // namespace
}  // namespace hybridgnn

#define HYBRIDGNN_BENCH_NAME "micro_tensor"
#include "gbench_json_main.h"
