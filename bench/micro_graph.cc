// Micro-benchmarks of the graph substrate: construction, neighbor access,
// edge lookup, relation-subset extraction.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "data/profiles.h"
#include "graph/graph.h"
#include "graph/stats.h"

namespace hybridgnn {
namespace {

const Dataset& TaobaoDataset() {
  static const Dataset* ds = [] {
    auto d = MakeDataset("taobao", 0.3, 42);
    HYBRIDGNN_CHECK(d.ok());
    return new Dataset(std::move(d).value());
  }();
  return *ds;
}

void BM_GraphBuild(benchmark::State& state) {
  const auto& src = TaobaoDataset().graph;
  for (auto _ : state) {
    GraphBuilder b;
    for (NodeTypeId t = 0; t < src.num_node_types(); ++t) {
      benchmark::DoNotOptimize(b.AddNodeType(src.node_type_name(t)));
    }
    for (RelationId r = 0; r < src.num_relations(); ++r) {
      benchmark::DoNotOptimize(b.AddRelation(src.relation_name(r)));
    }
    for (NodeId v = 0; v < src.num_nodes(); ++v) {
      benchmark::DoNotOptimize(b.AddNode(src.node_type(v)));
    }
    for (const auto& e : src.edges()) {
      benchmark::DoNotOptimize(b.AddEdge(e.src, e.dst, e.rel));
    }
    auto g = b.Build();
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * src.num_edges());
}
BENCHMARK(BM_GraphBuild);

void BM_NeighborScan(benchmark::State& state) {
  const auto& g = TaobaoDataset().graph;
  size_t sum = 0;
  for (auto _ : state) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (RelationId r = 0; r < g.num_relations(); ++r) {
        for (NodeId u : g.Neighbors(v, r)) sum += u;
      }
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 2);
}
BENCHMARK(BM_NeighborScan);

void BM_HasEdge(benchmark::State& state) {
  const auto& g = TaobaoDataset().graph;
  const auto& edges = g.edges();
  size_t i = 0;
  for (auto _ : state) {
    const auto& e = edges[i++ % edges.size()];
    benchmark::DoNotOptimize(g.HasEdge(e.src, e.dst, e.rel));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HasEdge);

void BM_ExtractRelationSubset(benchmark::State& state) {
  const auto& g = TaobaoDataset().graph;
  for (auto _ : state) {
    auto sub = g.ExtractRelationSubset({0, 1});
    benchmark::DoNotOptimize(sub);
  }
}
BENCHMARK(BM_ExtractRelationSubset);

void BM_ComputeStats(benchmark::State& state) {
  const auto& g = TaobaoDataset().graph;
  for (auto _ : state) {
    GraphStats s = ComputeStats(g);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ComputeStats);

}  // namespace
}  // namespace hybridgnn

#define HYBRIDGNN_BENCH_NAME "micro_graph"
#include "gbench_json_main.h"
