// Micro benchmark for the ANN retrieval layer (DESIGN.md section 17):
//
//   build:  HNSW construction time over one embedding table (plus the
//           incremental-patch time for a small dirty set);
//   query:  single-query latency of the exact blocked scan vs the ANN
//           search + exact re-rank path, same TopKRecommender semantics,
//           plus recall@10 of ANN against the exact ranking.
//
// Reports build ms, per-query latency for both paths, speedup, recall@10,
// and writes bench-out/BENCH_micro_ann.json.
//
//   micro_ann [--rows N] [--dim N] [--queries N] [--ef N] [--m N] [--gate]
//
// --gate exits non-zero unless, at >= 200k rows, the ANN path answers a
// single query >= 5x faster than the exact scan with recall@10 >= 0.95
// (ci_check.sh runs it with --gate). The gate measures the end-to-end
// recommender (filters, heap, re-rank included), not the bare index.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "serve/ann/ann_index.h"
#include "serve/embedding_store.h"
#include "serve/topk.h"
#include "tensor/tensor.h"

namespace hybridgnn {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
             .count() *
         1e-9;
}

EmbeddingStore MakeStore(size_t rows, size_t dim) {
  Rng rng(0xA22);
  std::vector<NodeId> identity(rows);
  for (NodeId v = 0; v < rows; ++v) identity[v] = v;
  EmbeddingStore::TableInit t;
  t.name = "click";
  t.row_to_node = identity;
  t.data = Tensor(rows, dim);
  for (size_t i = 0; i < t.data.size(); ++i) {
    t.data.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
  }
  std::vector<EmbeddingStore::TableInit> tables;
  tables.push_back(std::move(t));
  auto store = EmbeddingStore::FromTables("bench", rows, std::move(tables));
  if (!store.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", store.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(store).value();
}

std::vector<TopKQuery> MakeQueries(size_t n, size_t rows) {
  Rng rng(0xC0FFEE);
  std::vector<TopKQuery> queries(n);
  for (auto& q : queries) {
    q.node = static_cast<NodeId>(rng.UniformUint64(rows));
    q.rel = 0;
    q.k = 10;
  }
  return queries;
}

/// Mean single-query latency (seconds) of `rec` over `queries`, one call at
/// a time (the serving-relevant number: tail latency of an individual
/// request, not batch throughput), repeated until ~min_seconds. The first
/// pass's ranked ids are kept for the recall comparison.
struct QueryResult {
  double mean_latency_s = 0.0;
  std::vector<std::vector<NodeId>> topk;
};

QueryResult MeasureQueries(const TopKRecommender& rec,
                           const std::vector<TopKQuery>& queries,
                           double min_seconds) {
  QueryResult result;
  for (const auto& q : queries) {
    auto r = rec.Recommend(q);
    if (!r.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    std::vector<NodeId> ids;
    ids.reserve(r->size());
    for (const Recommendation& rr : *r) ids.push_back(rr.node);
    result.topk.push_back(std::move(ids));
  }
  size_t calls = 0;
  const auto t0 = Clock::now();
  do {
    for (const auto& q : queries) {
      auto r = rec.Recommend(q);
      if (!r.ok()) std::exit(1);
      ++calls;
    }
  } while (SecondsSince(t0) < min_seconds);
  result.mean_latency_s = SecondsSince(t0) / static_cast<double>(calls);
  return result;
}

double RecallAt10(const std::vector<std::vector<NodeId>>& exact,
                  const std::vector<std::vector<NodeId>>& approx) {
  double total = 0.0;
  for (size_t i = 0; i < exact.size(); ++i) {
    size_t hits = 0;
    for (NodeId v : approx[i]) {
      if (std::find(exact[i].begin(), exact[i].end(), v) != exact[i].end()) {
        ++hits;
      }
    }
    total += static_cast<double>(hits) /
             static_cast<double>(std::max<size_t>(1, exact[i].size()));
  }
  return exact.empty() ? 0.0 : total / static_cast<double>(exact.size());
}

int Main(int argc, char** argv) {
  size_t rows = 200000;
  size_t dim = 64;
  size_t num_queries = 32;
  size_t ef_search = 384;
  size_t M = 24;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rows" && i + 1 < argc) {
      rows = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--dim" && i + 1 < argc) {
      dim = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--queries" && i + 1 < argc) {
      num_queries =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--ef" && i + 1 < argc) {
      ef_search = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--m" && i + 1 < argc) {
      M = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--gate") {
      gate = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--rows N] [--dim N] [--queries N] [--ef N] "
                   "[--m N] [--gate]\n",
                   argv[0]);
      return 2;
    }
  }

  EmbeddingStore store = MakeStore(rows, dim);
  std::printf("micro_ann: %zu rows x %zu dim (fp32 table %.1f MB)\n", rows,
              dim, rows * dim * 4.0 / (1024.0 * 1024.0));

  TopKOptions exact_opts;
  exact_opts.num_threads = 1;
  TopKRecommender exact(&store, nullptr, exact_opts);

  TopKOptions ann_opts = exact_opts;
  ann_opts.ann = true;
  ann_opts.ef_search = ef_search;
  // Denser graph than the library default (M=16): uniform random vectors
  // are the structureless worst case for graph ANN, and at 200k rows M=16
  // cannot reach 0.95 recall@10 inside the 5x latency budget (measured:
  // 0.94 at ef=512 and ~4.6x at ef=768). M=24 at ef=384 clears both bars
  // with margin; both knobs stay overridable for exploration.
  ann_opts.ann_build.M = M;
  const auto t_build = Clock::now();
  TopKRecommender approx(&store, nullptr, ann_opts);
  const double build_ms = SecondsSince(t_build) * 1000.0;
  if (!approx.ann_enabled() || approx.ann_indexes()[0] == nullptr) {
    std::fprintf(stderr,
                 "FATAL: ANN did not enable (HYBRIDGNN_ANN=off in the "
                 "environment, or rows below ann_min_rows?)\n");
    return 1;
  }
  const AnnIndex& index = *approx.ann_indexes()[0];
  std::printf("  hnsw build      : %9.0f ms (M=%zu, efC=%zu, %.1f MB "
              "adjacency, max level %d)\n",
              build_ms, index.options().M, index.options().ef_construction,
              index.MemoryBytes() / (1024.0 * 1024.0), index.max_level());

  // Incremental patch cost for a 0.1% dirty set (the streaming-publish
  // path), vs the full rebuild above.
  {
    std::vector<uint32_t> dirty;
    for (uint32_t r = 0; r < rows / 1000; ++r) {
      dirty.push_back(r * 997 % static_cast<uint32_t>(rows));
    }
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    const auto t_patch = Clock::now();
    auto patched = AnnIndex::Patched(index, store, 0, dirty);
    const double patch_ms = SecondsSince(t_patch) * 1000.0;
    if (!patched.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   patched.status().ToString().c_str());
      return 1;
    }
    std::printf("  publish patch   : %9.1f ms for %zu dirty rows (%.0fx "
                "cheaper than rebuild)\n",
                patch_ms, dirty.size(),
                patch_ms > 0.0 ? build_ms / patch_ms : 0.0);
  }

  const auto queries = MakeQueries(num_queries, rows);
  const double kMinSeconds = 0.5;
  QueryResult exact_run = MeasureQueries(exact, queries, kMinSeconds);
  QueryResult ann_run = MeasureQueries(approx, queries, kMinSeconds);

  const double recall = RecallAt10(exact_run.topk, ann_run.topk);
  const double speedup = ann_run.mean_latency_s > 0.0
                             ? exact_run.mean_latency_s /
                                   ann_run.mean_latency_s
                             : 0.0;
  std::printf("  exact scan      : %9.3f ms/query\n",
              exact_run.mean_latency_s * 1000.0);
  std::printf("  ann + re-rank   : %9.3f ms/query (%.1fx, ef_search=%zu, "
              "recall@10 %.4f; gate >= 5x at >= 0.95)\n",
              ann_run.mean_latency_s * 1000.0, speedup, ef_search, recall);

  uint64_t hash = index.ContentHash();
  {
    uint64_t bits;
    std::memcpy(&bits, &recall, sizeof(bits));
    hash = (hash ^ bits) * 1099511628211ull;
  }

  bench::BenchReport report("micro_ann");
  report.AddStage("build_ms", 1, build_ms, 0.0);
  report.AddStage("exact_query_ms", 1, exact_run.mean_latency_s * 1000.0,
                  0.0);
  report.AddStage("ann_query_ms", 1, ann_run.mean_latency_s * 1000.0, 0.0);
  report.AddStage("ann_speedup", 1, 0.0, speedup);
  report.AddStage("recall_at_10", 1, 0.0, recall);
  report.set_result_hash(hash);
  report.Write();

  if (gate) {
    if (rows < 200000) {
      std::fprintf(stderr,
                   "GATE FAILED: the ANN gate is defined at >= 200k rows "
                   "(got %zu) — a small table's exact scan is already "
                   "fast, making the speedup bar meaningless\n",
                   rows);
      return 1;
    }
    if (recall < 0.95) {
      std::fprintf(stderr,
                   "GATE FAILED: ANN recall@10 %.4f vs the exact scan "
                   "(required >= 0.95)\n",
                   recall);
      return 1;
    }
    if (speedup < 5.0) {
      std::fprintf(stderr,
                   "GATE FAILED: ANN single-query speedup %.2fx over the "
                   "exact scan (required >= 5x)\n",
                   speedup);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace hybridgnn

int main(int argc, char** argv) { return hybridgnn::Main(argc, argv); }
