// Reproduces Table VIII: PR@10 by node-degree cluster on IMDb, GATNE vs
// HybridGNN. The paper reports HybridGNN's margin growing with degree
// (0.96% at the lowest bucket up to 50% at the highest).

#include "bench_util.h"

using namespace hybridgnn;
using namespace hybridgnn::bench;

int main() {
  PrintHeaderBanner("Table VIII: PR@10 by degree cluster (IMDb)");
  BenchEnv env = GetBenchEnv();
  ModelBudget budget = MakeBudget(env.effort);
  Prepared prep = Prepare("imdb", env.scale, 600);

  // Degree buckets scaled from the paper's [1,20,39,58,76] to this graph.
  size_t max_degree = 0;
  for (NodeId v = 0; v < prep.dataset.graph.num_nodes(); ++v) {
    max_degree = std::max(max_degree, prep.dataset.graph.TotalDegree(v));
  }
  std::vector<size_t> edges = {1, std::max<size_t>(2, max_degree / 4),
                               std::max<size_t>(3, max_degree / 2),
                               std::max<size_t>(4, 3 * max_degree / 4),
                               max_degree + 1};
  std::printf("buckets (total degree):");
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    std::printf(" [%zu,%zu)", edges[i], edges[i + 1]);
  }
  std::printf("\n%-12s %8s %8s %8s %8s\n", "model", "b1", "b2", "b3", "b4");

  std::vector<double> gatne_pr, hybrid_pr;
  for (const char* name : {"GATNE", "HybridGNN"}) {
    auto model = CreateModel(name, prep.dataset.schemes, 6000, budget);
    HYBRIDGNN_CHECK(model.ok());
    HYBRIDGNN_CHECK_OK((*model)->Fit(prep.split.train_graph));
    Rng rng(601);
    EvalOptions eval_options;
    eval_options.max_ranking_queries = 400;
    std::vector<double> pr = PrAtKByDegree(**model, prep.dataset.graph,
                                           prep.split, edges, 10,
                                           eval_options, rng);
    std::printf("%-12s", name);
    for (double p : pr) std::printf(" %8.4f", p);
    std::printf("\n");
    if (std::string(name) == "GATNE") {
      gatne_pr = pr;
    } else {
      hybrid_pr = pr;
    }
  }
  std::printf("%-12s", "improvement");
  for (size_t b = 0; b < gatne_pr.size(); ++b) {
    if (gatne_pr[b] > 1e-9) {
      std::printf(" %7.2f%%",
                  100.0 * (hybrid_pr[b] - gatne_pr[b]) / gatne_pr[b]);
    } else {
      std::printf(" %8s", "n/a");
    }
  }
  std::printf("\n");
  return 0;
}
