// Micro benchmark for the batched CSR sparse-aggregation engine: one
// minibatch of sampled neighborhoods aggregated (forward + backward) two
// ways —
//
//   reference: the pre-redesign per-node composition, one GatherRows +
//              MeanRows autograd op pair per (node, level), concatenated
//              for a single loss;
//   frontier:  the redesigned path, one MinibatchFrontier covering the
//              whole batch, one GatherRowsSegmented + one SegmentMean.
//
// Both paths draw identical index streams and, on the scalar backend, are
// bit-identical in the loss — the startup cross-check enforces that before
// any timing. Reports ns/batch for each path and the speedup, and writes
// BENCH_micro_aggregate.json.
//
//   micro_aggregate [--steps N] [--gate]
//
// --gate exits non-zero unless the frontier path is >= 2x faster than the
// per-node reference; like micro_kernels, the gate is enforced only when
// the AVX2 dispatch path is available (ci_check.sh runs it there).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "graph/frontier.h"
#include "kernels/kernels.h"
#include "nn/sparse.h"
#include "tensor/autograd.h"
#include "tensor/init.h"
#include "tensor/pool.h"

namespace hybridgnn {
namespace {

constexpr size_t kTableRows = 2048;
constexpr size_t kDim = 32;
constexpr size_t kBatch = 64;
// Per-node level sizes, deepest first (fanout 8, two hops + the center).
constexpr size_t kLevelSizes[] = {64, 8, 1};
constexpr size_t kLevels = 3;

ag::Var MakeTable() {
  Rng rng(0xC0DE);
  Tensor t(kTableRows, kDim);
  UniformInit(t, rng, -0.8f, 0.8f);
  return ag::Param(std::move(t));
}

/// Pre-redesign graph: one dense gather + mean per (node, level).
uint32_t StepReference(const ag::Var& table, uint64_t seed) {
  Rng rng(seed);
  static thread_local std::vector<ag::Var> means;
  static thread_local std::vector<int32_t> ids;
  for (size_t b = 0; b < kBatch; ++b) {
    for (size_t l = 0; l < kLevels; ++l) {
      ids.clear();
      for (size_t i = 0; i < kLevelSizes[l]; ++i) {
        ids.push_back(static_cast<int32_t>(rng.UniformUint64(kTableRows)));
      }
      means.push_back(ag::MeanRows(
          ag::GatherRows(table, std::span<const int32_t>(ids))));
    }
  }
  ag::Var loss = ag::SumAll(ag::ConcatRows(means));
  ag::Backward(loss);
  means.clear();
  uint32_t bits;
  std::memcpy(&bits, &loss->value.At(0, 0), sizeof(bits));
  return bits;
}

/// Redesigned graph: the whole batch is one frontier (kBatch * kLevels
/// segments), aggregated by one fused gather and one segment reduction.
uint32_t StepFrontier(const ag::Var& table, uint64_t seed) {
  Rng rng(seed);
  static thread_local MinibatchFrontier f;
  f.Clear();
  for (size_t b = 0; b < kBatch; ++b) {
    for (size_t l = 0; l < kLevels; ++l) {
      for (size_t i = 0; i < kLevelSizes[l]; ++i) {
        f.indices.push_back(
            static_cast<int32_t>(rng.UniformUint64(kTableRows)));
      }
      f.CloseSegment();
    }
  }
  ag::Var loss = ag::SumAll(SegmentMean(GatherRowsSegmented(table, f), f));
  ag::Backward(loss);
  uint32_t bits;
  std::memcpy(&bits, &loss->value.At(0, 0), sizeof(bits));
  return bits;
}

double TimeSteps(uint32_t (*step)(const ag::Var&, uint64_t),
                 const ag::Var& table, size_t steps) {
  for (size_t s = 0; s < 5; ++s) {  // warmup: pool free lists + tape arena
    ag::TapeScope tape;
    step(table, s);
    table->ZeroGrad();
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t s = 0; s < steps; ++s) {
    ag::TapeScope tape;
    step(table, 1000 + s);
    table->ZeroGrad();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
             .count() /
         static_cast<double>(steps);
}

int Main(int argc, char** argv) {
  size_t steps = 200;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--steps" && i + 1 < argc) {
      steps = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--gate") {
      gate = true;
    } else {
      std::fprintf(stderr, "usage: %s [--steps N] [--gate]\n", argv[0]);
      return 2;
    }
  }

  pool::PoolScope pool_scope(true);
  ag::Var table = MakeTable();

  // Correctness first: on the scalar backend both paths are bit-identical
  // (the segment ops' contract); a mismatch means the engine is broken and
  // any timing would be meaningless.
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  {
    kernels::ScopedBackend scalar(kernels::Backend::kScalar);
    for (size_t s = 0; s < 8; ++s) {
      uint32_t ref, fro;
      {
        ag::TapeScope tape;
        ref = StepReference(table, 77 + s);
        table->ZeroGrad();
      }
      {
        ag::TapeScope tape;
        fro = StepFrontier(table, 77 + s);
        table->ZeroGrad();
      }
      if (ref != fro) {
        std::fprintf(stderr,
                     "FATAL: frontier path diverged from per-node reference "
                     "(loss bits, step %zu)\n",
                     s);
        return 1;
      }
      hash = (hash ^ fro) * 1099511628211ull;
    }
  }

  const double ref_ns = TimeSteps(StepReference, table, steps);
  const double frontier_ns = TimeSteps(StepFrontier, table, steps);
  const double speedup = frontier_ns > 0.0 ? ref_ns / frontier_ns : 0.0;

  std::printf(
      "micro_aggregate: %zu steps, batch %zu, levels %zu (%zu rows/node), "
      "dim %zu, avx2 %s\n",
      steps, kBatch, kLevels, kLevelSizes[0] + kLevelSizes[1] + kLevelSizes[2],
      kDim, kernels::Avx2Available() ? "yes" : "no");
  std::printf("  per-node reference: %10.0f ns/batch\n", ref_ns);
  std::printf("  frontier engine   : %10.0f ns/batch\n", frontier_ns);
  std::printf("  speedup %.2fx (gate >= 2.0x)\n", speedup);

  bench::BenchReport report("micro_aggregate");
  report.AddStage("per_node_ns_per_batch", 1, ref_ns * 1e-6, 0.0);
  report.AddStage("frontier_ns_per_batch", 1, frontier_ns * 1e-6, 0.0);
  report.AddStage("speedup", 1, 0.0, speedup);
  report.set_result_hash(hash);
  report.Write();

  if (gate && kernels::Avx2Available() && speedup < 2.0) {
    std::fprintf(stderr,
                 "GATE FAILED: frontier aggregation is %.2fx the per-node "
                 "path (required >= 2x)\n",
                 speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hybridgnn

int main(int argc, char** argv) { return hybridgnn::Main(argc, argv); }
