// Reproduces Fig. 5: hyper-parameter sensitivity of HybridGNN on four
// datasets — (a) base embedding dimension d_m, (b) edge embedding dimension
// d_e, (c) number of negatives n. Prints one ROC-AUC series per dataset for
// each sweep, the same data the paper plots.

#include <functional>

#include "bench_util.h"
#include "eval/metrics.h"

using namespace hybridgnn;
using namespace hybridgnn::bench;

namespace {

void Sweep(const char* title, const std::vector<size_t>& values,
           const std::function<void(HybridGnnConfig&, size_t)>& apply,
           const BenchEnv& env, const ModelBudget& budget) {
  const std::vector<std::string> profiles = {"amazon", "youtube", "imdb",
                                             "taobao"};
  std::printf("--- %s ---\n%-10s", title, "value");
  for (const auto& p : profiles) std::printf(" %9s", p.c_str());
  std::printf("\n");
  for (size_t value : values) {
    std::printf("%-10zu", value);
    for (const auto& profile : profiles) {
      std::vector<double> roc;
      const size_t sweep_seeds = 1;  // 48 cells; one seed keeps runtime sane
      for (size_t s = 0; s < sweep_seeds; ++s) {
        Prepared prep = Prepare(profile, env.scale, 700 + s);
        HybridGnnConfig c = HybridConfigFromBudget(budget, 7000 + s);
        apply(c, value);
        roc.push_back(RunHybrid(c, prep).roc_auc);
      }
      std::printf(" %9.2f", Mean(roc));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PrintHeaderBanner("Fig. 5: hyper-parameter sensitivity (ROC-AUC)");
  BenchEnv env = GetBenchEnv();
  // Half effort: 48 sweep cells.
  ModelBudget budget = MakeBudget(env.effort * 0.5);
  Sweep("(a) base embedding dimension d_m", {64, 128, 256, 512},
        [](HybridGnnConfig& c, size_t v) { c.base_dim = v; }, env, budget);
  Sweep("(b) edge embedding dimension d_e", {2, 8, 16, 64},
        [](HybridGnnConfig& c, size_t v) { c.edge_dim = v; }, env, budget);
  Sweep("(c) number of negative samples n", {1, 3, 5, 7},
        [](HybridGnnConfig& c, size_t v) { c.num_negatives = v; }, env,
        budget);
  return 0;
}
