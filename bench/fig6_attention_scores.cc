// Reproduces Fig. 6: distribution of metapath-level attention scores under
// each relationship on Taobao and Kuaishou. For every relationship we
// average, over a node sample, the attention mass each aggregation flow
// (each intra-relationship metapath scheme plus the randomized
// inter-relationship exploration flow) receives.

#include <map>

#include "bench_util.h"

using namespace hybridgnn;
using namespace hybridgnn::bench;

namespace {

void RunDataset(const std::string& profile, const BenchEnv& env,
                const ModelBudget& budget) {
  std::printf("--- %s ---\n", profile.c_str());
  Prepared prep = Prepare(profile, env.scale, 800);
  HybridGnnConfig config = HybridConfigFromBudget(budget, 8000);
  HybridGnn model(config, prep.dataset.schemes);
  HYBRIDGNN_CHECK_OK(model.Fit(prep.split.train_graph));

  const MultiplexHeteroGraph& g = prep.dataset.graph;
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    // Average attention per flow label over a sample of active nodes.
    std::map<std::string, double> sums;
    std::map<std::string, size_t> counts;
    size_t sampled = 0;
    for (NodeId v = 0; v < g.num_nodes() && sampled < 80; ++v) {
      if (g.Degree(v, r) == 0) continue;
      std::vector<std::string> labels = model.FlowLabels(v, r);
      if (labels.size() < 2) continue;
      std::vector<double> scores = model.MetapathAttentionScores(v, r);
      for (size_t i = 0; i < labels.size(); ++i) {
        sums[labels[i]] += scores[i];
        ++counts[labels[i]];
      }
      ++sampled;
    }
    std::printf("  relationship %-14s:", g.relation_name(r).c_str());
    for (const auto& [label, total] : sums) {
      std::printf(" %s=%.3f", label.c_str(),
                  total / static_cast<double>(counts[label]));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PrintHeaderBanner(
      "Fig. 6: metapath-level attention per relationship (mean over nodes)");
  BenchEnv env = GetBenchEnv();
  ModelBudget budget = MakeBudget(env.effort);
  RunDataset("taobao", env, budget);
  RunDataset("kuaishou", env, budget);
  return 0;
}
