// Micro benchmark for the autograd hot loop: a HybridGNN-shaped minibatch
// (embedding gathers -> aggregation -> attention -> BCE head -> backward)
// run in heap mode (tensor pool off, no tape) against arena mode (pool on,
// TapeScope per step). Reports ns/step and operator-new calls per step, and
// writes BENCH_micro_autograd.json.
//
//   micro_autograd [--steps N] [--gate]
//
// --gate exits non-zero unless steady-state arena allocations/step are at
// most 1% of the heap baseline (the PR's allocation-free-steps contract);
// ci_check.sh runs this after the sanitizer sweeps.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "nn/aggregator.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "plan/plan.h"
#include "tensor/autograd.h"
#include "tensor/pool.h"

// ----- Allocation counting -----
//
// Global operator new/delete overrides: every heap allocation in the
// process, tensor buffers included (the pool allocates through aligned
// operator new precisely so it is visible here). Counters are relaxed
// atomics; the bench is effectively single-threaded.

namespace {
std::atomic<uint64_t> g_alloc_calls{0};
std::atomic<uint64_t> g_alloc_bytes{0};

void CountAlloc(size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
}
}  // namespace

void* operator new(size_t size) {
  CountAlloc(size);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) {
  CountAlloc(size);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(size_t size, std::align_val_t align) {
  CountAlloc(size);
  if (void* p = std::aligned_alloc(static_cast<size_t>(align),
                                   (size + static_cast<size_t>(align) - 1) &
                                       ~(static_cast<size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hybridgnn {
namespace {

constexpr size_t kNodes = 512;
constexpr size_t kDim = 32;
constexpr size_t kBatch = 24;
constexpr size_t kFanout = 8;

/// The model pieces shared by both modes. Parameters are heap-resident
/// (ag::Param), exactly as in HybridGnn::Fit.
struct Model {
  EmbeddingTable table;
  MeanAggregator agg;
  SelfAttention attn;
  Model(Rng& rng)
      : table(kNodes, kDim, rng),
        agg(kDim, rng),
        attn(kDim, kDim, rng, /*identity_values=*/true) {}
};

/// One minibatch step: per "edge", gather a center row and a sampled
/// neighborhood, aggregate, stack, attend, score with a rowwise dot, and
/// backprop a BCE loss. Mirrors the per-batch graph shape of the trainer.
/// Returns the loss bits so modes can be cross-checked exactly.
ag::Var BuildStep(const Model& m, uint64_t step_seed) {
  Rng rng(step_seed);
  // Reused scratch so the arena mode's steady state is genuinely
  // allocation-free (the Vars are cleared before the caller's TapeScope
  // rewinds).
  static thread_local std::vector<ag::Var> reps;
  static thread_local std::vector<float> labels;
  static thread_local std::vector<int32_t> nbrs;
  for (size_t b = 0; b < kBatch; ++b) {
    const int32_t center[1] = {
        static_cast<int32_t>(rng.UniformUint64(kNodes))};
    nbrs.clear();
    for (size_t f = 0; f < kFanout; ++f) {
      nbrs.push_back(static_cast<int32_t>(rng.UniformUint64(kNodes)));
    }
    ag::Var self =
        ag::GatherRows(m.table.table(), std::span<const int32_t>(center, 1));
    ag::Var neigh = ag::MeanRows(
        ag::GatherRows(m.table.table(), std::span<const int32_t>(nbrs)));
    reps.push_back(
        m.agg.Forward(MinibatchFrontier::IdentityRow(), self, neigh));
    labels.push_back(static_cast<float>(b % 2));
  }
  ag::Var stack = ag::ConcatRows(reps);       // [kBatch, kDim]
  ag::Var mixed = m.attn.Forward(stack);      // [kBatch, kDim]
  ag::Var logits = ag::RowwiseDot(stack, mixed);
  ag::Var loss = ag::BceWithLogits(logits, labels);
  reps.clear();
  labels.clear();
  return loss;
}

uint32_t Step(const Model& m, uint64_t step_seed) {
  ag::Var loss = BuildStep(m, step_seed);
  ag::Backward(loss);
  uint32_t bits;
  std::memcpy(&bits, &loss->value.At(0, 0), sizeof(bits));
  return bits;
}

void ZeroGrads(const Model& m) {
  for (const auto& p : m.table.parameters()) p->ZeroGrad();
  for (const auto& p : m.agg.parameters()) p->ZeroGrad();
  for (const auto& p : m.attn.parameters()) p->ZeroGrad();
}

struct ModeResult {
  double ns_per_step = 0.0;
  double allocs_per_step = 0.0;
  double alloc_bytes_per_step = 0.0;
  std::vector<uint32_t> loss_bits;
};

ModeResult RunMode(bool arena, size_t steps) {
  pool::PoolScope pool_scope(arena);
  Rng model_rng(0xC0DE);
  Model model(model_rng);
  ModeResult r;
  r.loss_bits.reserve(steps);
  // Warmup: fill the pool free lists and grow the tape arena to its high
  //-water mark so the timed region measures the steady state of both modes.
  for (size_t s = 0; s < 10; ++s) {
    if (arena) {
      ag::TapeScope tape;
      Step(model, s);
    } else {
      Step(model, s);
    }
    ZeroGrads(model);
  }
  const uint64_t allocs_before = g_alloc_calls.load();
  const uint64_t bytes_before = g_alloc_bytes.load();
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t s = 0; s < steps; ++s) {
    if (arena) {
      ag::TapeScope tape;
      r.loss_bits.push_back(Step(model, 1000 + s));
    } else {
      r.loss_bits.push_back(Step(model, 1000 + s));
    }
    ZeroGrads(model);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double inv_steps = 1.0 / static_cast<double>(steps);
  r.ns_per_step =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() *
      inv_steps;
  r.allocs_per_step =
      static_cast<double>(g_alloc_calls.load() - allocs_before) * inv_steps;
  r.alloc_bytes_per_step =
      static_cast<double>(g_alloc_bytes.load() - bytes_before) * inv_steps;
  return r;
}

/// Reproduces BuildStep's per-batch index/label stream without building a
/// graph, so a compiled replay can bind exactly the data the eager modes
/// gather. Must draw from the Rng in the same order as BuildStep.
void FillStepInputs(uint64_t step_seed, std::vector<int32_t>& centers,
                    std::vector<int32_t>& nbrs, std::vector<float>& labels) {
  Rng rng(step_seed);
  centers.clear();
  nbrs.clear();
  labels.clear();
  for (size_t b = 0; b < kBatch; ++b) {
    centers.push_back(static_cast<int32_t>(rng.UniformUint64(kNodes)));
    for (size_t f = 0; f < kFanout; ++f) {
      nbrs.push_back(static_cast<int32_t>(rng.UniformUint64(kNodes)));
    }
    labels.push_back(static_cast<float>(b % 2));
  }
}

/// Compiled mode: trace one step into a plan (src/plan), then replay it per
/// step with fresh bound indices — zero per-step graph construction. The
/// loss bits must match the eager arena mode exactly.
ModeResult RunPlanMode(size_t steps) {
  pool::PoolScope pool_scope(true);
  Rng model_rng(0xC0DE);
  Model model(model_rng);
  ModeResult r;
  r.loss_bits.reserve(steps);

  std::unique_ptr<plan::CompiledStep> step;
  {
    ag::TapeScope tape;
    plan::Recorder rec;
    ag::Var loss = BuildStep(model, 0);
    step = rec.Finalize(loss);
    if (step == nullptr) {
      std::fprintf(stderr, "FATAL: plan trace poisoned: %s\n",
                   rec.poison_reason().c_str());
      return r;  // empty loss_bits; Main treats that as failure
    }
  }
  ZeroGrads(model);

  std::vector<int32_t> centers, nbrs;
  std::vector<float> labels;
  centers.reserve(kBatch);
  nbrs.reserve(kBatch * kFanout);
  labels.reserve(kBatch);
  plan::StepInputs in;
  auto replay = [&](uint64_t seed) {
    FillStepInputs(seed, centers, nbrs, labels);
    in.i32.clear();
    in.szs.clear();
    in.f32.clear();
    for (size_t b = 0; b < kBatch; ++b) {
      in.i32.push_back(std::span<const int32_t>(centers.data() + b, 1));
      in.i32.push_back(
          std::span<const int32_t>(nbrs.data() + b * kFanout, kFanout));
    }
    in.f32.push_back(labels);
    ag::TapeScope tape;
    ag::Var loss = step->ReplayTrain(in);
    ag::Backward(loss);
    uint32_t bits;
    std::memcpy(&bits, &loss->value.At(0, 0), sizeof(bits));
    return bits;
  };

  for (size_t s = 0; s < 10; ++s) {
    replay(s);
    ZeroGrads(model);
  }
  const uint64_t allocs_before = g_alloc_calls.load();
  const uint64_t bytes_before = g_alloc_bytes.load();
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t s = 0; s < steps; ++s) {
    r.loss_bits.push_back(replay(1000 + s));
    ZeroGrads(model);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double inv_steps = 1.0 / static_cast<double>(steps);
  r.ns_per_step =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() *
      inv_steps;
  r.allocs_per_step =
      static_cast<double>(g_alloc_calls.load() - allocs_before) * inv_steps;
  r.alloc_bytes_per_step =
      static_cast<double>(g_alloc_bytes.load() - bytes_before) * inv_steps;
  return r;
}

int Main(int argc, char** argv) {
  size_t steps = 300;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--steps" && i + 1 < argc) {
      steps = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--gate") {
      gate = true;
    } else {
      std::fprintf(stderr, "usage: %s [--steps N] [--gate]\n", argv[0]);
      return 2;
    }
  }

  ModeResult heap = RunMode(/*arena=*/false, steps);
  ModeResult arena = RunMode(/*arena=*/true, steps);
  ModeResult plan = RunPlanMode(steps);

  // The three modes must be numerically indistinguishable: same model seed,
  // same per-step streams, bit-identical losses.
  if (heap.loss_bits != arena.loss_bits) {
    std::fprintf(stderr,
                 "FATAL: arena mode diverged from heap mode (loss bits)\n");
    return 1;
  }
  if (plan.loss_bits != arena.loss_bits) {
    std::fprintf(stderr,
                 "FATAL: compiled plan diverged from arena mode (loss bits)\n");
    return 1;
  }

  const double alloc_ratio =
      heap.allocs_per_step > 0.0 ? arena.allocs_per_step / heap.allocs_per_step
                                 : 0.0;
  const double speedup =
      arena.ns_per_step > 0.0 ? heap.ns_per_step / arena.ns_per_step : 0.0;
  std::printf("micro_autograd: %zu steps, batch %zu, fanout %zu, dim %zu\n",
              steps, kBatch, kFanout, kDim);
  std::printf("  heap : %10.0f ns/step  %8.1f allocs/step  %10.0f B/step\n",
              heap.ns_per_step, heap.allocs_per_step,
              heap.alloc_bytes_per_step);
  std::printf("  arena: %10.0f ns/step  %8.1f allocs/step  %10.0f B/step\n",
              arena.ns_per_step, arena.allocs_per_step,
              arena.alloc_bytes_per_step);
  std::printf("  plan : %10.0f ns/step  %8.1f allocs/step  %10.0f B/step\n",
              plan.ns_per_step, plan.allocs_per_step,
              plan.alloc_bytes_per_step);
  std::printf("  alloc ratio %.4f (gate <= 0.01), speedup %.2fx, "
              "plan speedup %.2fx\n",
              alloc_ratio, speedup,
              plan.ns_per_step > 0.0 ? arena.ns_per_step / plan.ns_per_step
                                     : 0.0);

  bench::BenchReport report("micro_autograd");
  report.AddStage("heap_ns_per_step", 1, heap.ns_per_step * 1e-6, 0.0);
  report.AddStage("arena_ns_per_step", 1, arena.ns_per_step * 1e-6, 0.0);
  report.AddStage("plan_ns_per_step", 1, plan.ns_per_step * 1e-6, 0.0);
  report.AddStage("heap_allocs_per_step", 1, 0.0, heap.allocs_per_step);
  report.AddStage("arena_allocs_per_step", 1, 0.0, arena.allocs_per_step);
  report.AddStage("plan_allocs_per_step", 1, 0.0, plan.allocs_per_step);
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (uint32_t bits : arena.loss_bits) {
    hash = (hash ^ bits) * 1099511628211ull;
  }
  report.set_result_hash(hash);
  report.Write();

  if (gate && alloc_ratio > 0.01) {
    std::fprintf(stderr,
                 "GATE FAILED: arena allocations/step is %.2f%% of the heap "
                 "baseline (limit 1%%)\n",
                 100.0 * alloc_ratio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hybridgnn

int main(int argc, char** argv) { return hybridgnn::Main(argc, argv); }
