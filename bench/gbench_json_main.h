// Drop-in main() for the google-benchmark micro benches that, besides the
// usual console output, always writes the full JSON report to
// bench-out/BENCH_<name>.json (benchmark's own schema: context +
// per-benchmark real/cpu time and counters). Define HYBRIDGNN_BENCH_NAME
// before including.
//
// Replaces benchmark::benchmark_main so the baseline file is produced on
// every run without remembering --benchmark_out flags. Implemented by
// injecting the flag before Initialize(), so an explicit --benchmark_out on
// the command line still wins.
#ifndef HYBRIDGNN_BENCH_GBENCH_JSON_MAIN_H_
#define HYBRIDGNN_BENCH_GBENCH_JSON_MAIN_H_

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include <benchmark/benchmark.h>

#ifndef HYBRIDGNN_BENCH_NAME
#error "define HYBRIDGNN_BENCH_NAME before including gbench_json_main.h"
#endif

int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = std::string("--benchmark_out=bench-out/BENCH_") +
                         HYBRIDGNN_BENCH_NAME + ".json";
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  if (!has_out) {
    std::error_code ec;
    std::filesystem::create_directories("bench-out", ec);
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  if (!has_out) {
    std::printf("wrote bench-out/BENCH_%s.json\n", HYBRIDGNN_BENCH_NAME);
  }
  benchmark::Shutdown();
  return 0;
}

#endif  // HYBRIDGNN_BENCH_GBENCH_JSON_MAIN_H_
