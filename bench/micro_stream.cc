// Micro benchmark for the streaming-ingest subsystem: the cost of keeping
// embeddings fresh when a 1% edge delta arrives, measured two ways —
//
//   retrain:  the offline answer — fold the deltas into the graph, refit
//             the model from scratch and rebuild the serving store;
//   refresh:  the stream path — DynamicGraphOverlay::Apply + the
//             IncrementalRefresher's dirty-frontier SGNS update +
//             LiveEmbeddingStore::Publish.
//
// Also scores both stores on the streamed edges (RocAuc against sampled
// non-edges): the refreshed store must rank the new interactions above
// noise, the stale one by construction cannot have learned them. Reports
// ms per path, the speedup, both AUCs, and writes
// bench-out/BENCH_micro_stream.json.
//
//   micro_stream [--users N] [--items N] [--degree N] [--gate]
//
// --gate exits non-zero unless the incremental refresh is >= 5x cheaper
// than the full retrain AND the refreshed AUC beats the stale AUC
// (ci_check.sh runs it with --gate).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "bench_json.h"
#include "common/rng.h"
#include "eval/metrics.h"
#include "graph/graph.h"
#include "graph/metapath.h"
#include "serve/checkpoint.h"
#include "serve/embedding_store.h"
#include "stream/live_store.h"
#include "stream/overlay.h"
#include "stream/refresher.h"

namespace hybridgnn {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
             .count() *
         1e-6;
}

struct Workload {
  MultiplexHeteroGraph base;          // first 99% of the interaction stream
  std::vector<GraphDelta> deltas;     // the trailing 1%, time-ordered
  size_t num_users = 0;
  size_t num_items = 0;
};

/// Synthetic time-ordered bipartite interaction log: users attach to items
/// with mild popularity skew (square of two uniforms biases low ids), the
/// trailing 1% becomes the delta stream.
Workload MakeWorkload(size_t users, size_t items, size_t degree) {
  Workload w;
  w.num_users = users;
  w.num_items = items;
  Rng rng(0x57AE);
  GraphBuilder b;
  (void)b.AddNodeType("user").value();
  (void)b.AddNodeType("item").value();
  (void)b.AddRelation("click").value();
  (void)b.AddNodes(0, users).value();
  (void)b.AddNodes(1, items).value();

  std::vector<std::pair<NodeId, NodeId>> log;
  std::vector<uint8_t> seen(users * items, 0);
  const size_t target = users * degree;
  while (log.size() < target) {
    const NodeId u = static_cast<NodeId>(rng.UniformUint64(users));
    const size_t skew = std::min(rng.UniformUint64(items),
                                 rng.UniformUint64(items));
    const NodeId i = static_cast<NodeId>(users + skew);
    if (seen[u * items + skew]) continue;
    seen[u * items + skew] = 1;
    log.emplace_back(u, i);
  }
  const size_t holdout = std::max<size_t>(1, log.size() / 100);
  const size_t split = log.size() - holdout;
  for (size_t e = 0; e < split; ++e) {
    Status st = b.AddEdge(log[e].first, log[e].second, 0);
    if (!st.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }
  for (size_t e = split; e < log.size(); ++e) {
    w.deltas.push_back(GraphDelta::AddEdge(log[e].first, log[e].second, 0,
                                           /*ts=*/e));
  }
  auto built = b.Build();
  if (!built.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", built.status().ToString().c_str());
    std::exit(1);
  }
  w.base = std::move(built).value();
  return w;
}

StatusOr<EmbeddingStore> TrainStore(const MultiplexHeteroGraph& g) {
  std::vector<MetapathScheme> schemes =
      DefaultSchemes(g, /*max_schemes_per_relation=*/2);
  HYBRIDGNN_ASSIGN_OR_RETURN(
      auto model, CreateModel("DeepWalk", schemes, /*seed=*/7, ModelBudget{}));
  HYBRIDGNN_RETURN_IF_ERROR(model->Fit(g));
  return BuildStore(*model, g);
}

/// AUC of the streamed edges against sampled never-seen user-item pairs,
/// scored by dot product under the click relation.
double DeltaAuc(const EmbeddingStore& store, const Workload& w,
                const DynamicGraphOverlay& truth) {
  std::vector<double> pos, neg;
  auto score = [&](NodeId u, NodeId i, std::vector<double>& out) {
    const float* a = store.Lookup(u, 0);
    const float* c = store.Lookup(i, 0);
    if (a == nullptr || c == nullptr) return;
    double acc = 0.0;
    for (size_t j = 0; j < store.dim(); ++j) acc += a[j] * c[j];
    out.push_back(acc);
  };
  for (const GraphDelta& d : w.deltas) score(d.src, d.dst, pos);
  Rng rng(0xBAD5EED);
  const size_t want = pos.size() * 4;
  while (neg.size() < want) {
    const NodeId u = static_cast<NodeId>(rng.UniformUint64(w.num_users));
    const NodeId i = static_cast<NodeId>(w.num_users +
                                         rng.UniformUint64(w.num_items));
    if (truth.HasEdge(u, i, 0)) continue;
    score(u, i, neg);
  }
  return RocAuc(pos, neg);
}

int Main(int argc, char** argv) {
  size_t users = 400;
  size_t items = 400;
  size_t degree = 24;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--users" && i + 1 < argc) {
      users = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--items" && i + 1 < argc) {
      items = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--degree" && i + 1 < argc) {
      degree = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--gate") {
      gate = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--users N] [--items N] [--degree N] [--gate]\n",
                   argv[0]);
      return 2;
    }
  }

  Workload w = MakeWorkload(users, items, degree);
  std::printf("micro_stream: %zu users x %zu items, %zu base edges, "
              "%zu streamed (%.1f%%)\n",
              users, items, w.base.num_edges(), w.deltas.size(),
              100.0 * w.deltas.size() /
                  (w.base.num_edges() + w.deltas.size()));

  // Offline checkpoint on the 99% graph — what serving starts from.
  auto stale = TrainStore(w.base);
  if (!stale.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", stale.status().ToString().c_str());
    return 1;
  }

  // --- path 1: full retrain on base + deltas (compacted) ---
  const auto retrain_t0 = Clock::now();
  DynamicGraphOverlay retrain_overlay(&w.base);
  auto applied = retrain_overlay.Apply(w.deltas);
  if (!applied.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", applied.status().ToString().c_str());
    return 1;
  }
  auto full_graph = retrain_overlay.Compact();
  if (!full_graph.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 full_graph.status().ToString().c_str());
    return 1;
  }
  auto retrained = TrainStore(*full_graph);
  if (!retrained.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 retrained.status().ToString().c_str());
    return 1;
  }
  const double retrain_ms = MsSince(retrain_t0);

  // --- path 2: incremental refresh through the stream subsystem ---
  DynamicGraphOverlay overlay(&w.base);
  auto live = LiveEmbeddingStore::Create(*stale, &w.base, TopKOptions{});
  if (!live.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", live.status().ToString().c_str());
    return 1;
  }
  // Freshness-targeted config: the contract being measured is "the streamed
  // interactions become rankable", so keep the write set tight (touched
  // endpoints only), emphasize the new edges, and nudge gently — a broad
  // frontier with aggressive walks re-trains half the graph, which is the
  // retrain path's job.
  RefreshOptions refresh_options;
  refresh_options.k_hops = 0;
  refresh_options.walks_per_dirty_node = 2;
  refresh_options.walk_length = 4;
  refresh_options.direct_edge_copies = 6;
  refresh_options.sgd_rounds = 2;
  refresh_options.learning_rate = 0.03f;
  IncrementalRefresher refresher(&overlay, live->get(), refresh_options);
  const auto refresh_t0 = Clock::now();
  auto stats = refresher.IngestBatch(w.deltas);
  if (!stats.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  const double refresh_ms = MsSince(refresh_t0);
  const double speedup = refresh_ms > 0.0 ? retrain_ms / refresh_ms : 0.0;

  auto version = (*live)->Acquire();
  const double stale_auc = DeltaAuc(*stale, w, overlay);
  const double fresh_auc = DeltaAuc(version->store, w, overlay);
  const double retrain_auc = DeltaAuc(*retrained, w, overlay);

  std::printf("  full retrain      : %10.2f ms (AUC on deltas %.4f)\n",
              retrain_ms, retrain_auc);
  std::printf("  incremental refresh: %9.2f ms (AUC on deltas %.4f, "
              "%zu dirty nodes, %zu pairs)\n",
              refresh_ms, fresh_auc, stats->dirty_nodes,
              stats->pairs_trained);
  std::printf("  stale checkpoint AUC on deltas: %.4f\n", stale_auc);
  std::printf("  speedup %.1fx (gate >= 5x), freshness %+0.4f AUC "
              "(gate > 0)\n",
              speedup, fresh_auc - stale_auc);

  uint64_t hash = 1469598103934665603ull;
  for (double v : {stale_auc, fresh_auc}) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    hash = (hash ^ bits) * 1099511628211ull;
  }

  bench::BenchReport report("micro_stream");
  report.AddStage("full_retrain", 1, retrain_ms, 0.0);
  report.AddStage("incremental_refresh", 1, refresh_ms, 0.0);
  report.AddStage("speedup", 1, 0.0, speedup);
  report.AddStage("stale_auc", 1, 0.0, stale_auc);
  report.AddStage("fresh_auc", 1, 0.0, fresh_auc);
  report.set_result_hash(hash);
  report.Write();

  if (gate) {
    if (speedup < 5.0) {
      std::fprintf(stderr,
                   "GATE FAILED: incremental refresh is only %.1fx cheaper "
                   "than retraining (required >= 5x)\n",
                   speedup);
      return 1;
    }
    if (fresh_auc <= stale_auc) {
      std::fprintf(stderr,
                   "GATE FAILED: refreshed AUC %.4f does not beat the stale "
                   "checkpoint's %.4f on streamed edges\n",
                   fresh_auc, stale_auc);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace hybridgnn

int main(int argc, char** argv) { return hybridgnn::Main(argc, argv); }
