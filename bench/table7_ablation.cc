// Reproduces Table VII: ablation study (ROC-AUC / F1) on Amazon, YouTube, IMDb
// and Taobao. Variants: full model, w/o metapath-level attention, w/o
// relationship-level attention, w/o randomized exploration, w/o hybrid
// aggregation flows (replaced by random-sampling aggregation).

#include "bench_util.h"
#include "eval/metrics.h"

using namespace hybridgnn;
using namespace hybridgnn::bench;

namespace {

struct Variant {
  const char* label;
  bool metapath_attn;
  bool relation_attn;
  bool randomized;
  bool hybrid;
};

}  // namespace

int main() {
  PrintHeaderBanner("Table VII: ablation study (ROC-AUC / F1)");
  BenchEnv env = GetBenchEnv();
  ModelBudget budget = MakeBudget(env.effort);
  const std::vector<std::string> profiles = {"amazon", "youtube", "imdb",
                                             "taobao"};
  const Variant variants[] = {
      {"HybridGNN", true, true, true, true},
      {"w/o metapath-level attention", false, true, true, true},
      {"w/o relationship-level attention", true, false, true, true},
      {"w/o randomized exploration", true, true, false, true},
      {"w/o hybrid aggregation flow", true, true, true, false},
  };
  std::printf("%-34s", "Model");
  for (const auto& p : profiles) std::printf(" %12s", p.c_str());
  std::printf("\n");
  for (const auto& v : variants) {
    std::printf("%-34s", v.label);
    for (const auto& profile : profiles) {
      std::vector<double> roc, f1;
      for (size_t s = 0; s < env.seeds; ++s) {
        Prepared prep = Prepare(profile, env.scale, 500 + s);
        HybridGnnConfig c = HybridConfigFromBudget(budget, 5000 + s);
        c.use_metapath_attention = v.metapath_attn;
        c.use_relation_attention = v.relation_attn;
        c.use_randomized_exploration = v.randomized;
        c.use_hybrid_aggregation = v.hybrid;
        LinkPredictionResult r = RunHybrid(c, prep);
        roc.push_back(r.roc_auc);
        f1.push_back(r.f1);
      }
      std::printf("  %6.2f/%5.2f", Mean(roc), Mean(f1));
    }
    std::printf("\n");
  }
  return 0;
}
