// Online-serving throughput/latency: brute-force top-K retrieval over a
// frozen EmbeddingStore at 1/2/4/8 worker threads, checkpoint save/load
// (copy vs zero-copy mmap) timings, and RecommendService micro-batching
// latency percentiles under concurrent clients.
//
// Reports queries/s and speedup over the 1-thread row and verifies that
// the ranked results are invariant to the thread count. As with
// micro_parallel, speedups only materialize with as many physical cores as
// workers; on a single-core host all rows collapse to ~1x, which is
// expected. On >= 8 cores the 8-thread row lands at >= 4x.
//
// Environment: HYBRIDGNN_BENCH_SCALE scales the store size; the checkpoint
// artifact is written under bench-out/ (gitignored).
#include <filesystem>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "common/rng.h"
#include "serve/checkpoint.h"
#include "serve/service.h"

namespace hybridgnn::bench {
namespace {

uint64_t HashResults(
    const std::vector<StatusOr<std::vector<Recommendation>>>& results) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  for (const auto& r : results) {
    HYBRIDGNN_CHECK(r.ok()) << r.status().ToString();
    mix(r.value().size());
    for (const auto& rec : r.value()) mix(rec.node);
  }
  return h;
}

EmbeddingStore MakeRandomStore(size_t num_nodes, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<EmbeddingStore::TableInit> tables;
  const char* names[] = {"click", "buy"};
  for (const char* name : names) {
    EmbeddingStore::TableInit t;
    t.name = name;
    t.row_to_node.resize(num_nodes);
    t.data = Tensor(num_nodes, dim);
    for (NodeId v = 0; v < num_nodes; ++v) t.row_to_node[v] = v;
    for (size_t i = 0; i < t.data.size(); ++i) {
      t.data.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
    }
    tables.push_back(std::move(t));
  }
  auto store = EmbeddingStore::FromTables("random", num_nodes,
                                          std::move(tables));
  HYBRIDGNN_CHECK(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

void Run() {
  BenchEnv env = GetBenchEnv();
  PrintHeaderBanner("online top-K serving (retrieval / checkpoint / service)");
  const size_t num_nodes =
      std::max<size_t>(2000, static_cast<size_t>(40000 * env.scale));
  const size_t dim = 64;
  const size_t num_queries = 256;
  const size_t k = 10;
  EmbeddingStore store = MakeRandomStore(num_nodes, dim, /*seed=*/7);
  std::printf("store: %zu nodes x dim %zu, %zu relations; %zu queries, "
              "k=%zu\n\n",
              num_nodes, dim, store.num_relations(), num_queries, k);

  Rng qrng(99);
  std::vector<TopKQuery> queries(num_queries);
  for (auto& q : queries) {
    q.node = static_cast<NodeId>(qrng.UniformUint64(num_nodes));
    q.rel = static_cast<RelationId>(qrng.UniformUint64(2));
    q.k = k;
  }

  // --- batched top-K vs thread count ---
  BenchReport report("micro_topk");
  const size_t threads_axis[] = {1, 2, 4, 8};
  std::printf("%-8s %12s %12s %10s\n", "threads", "batch_ms", "queries/s",
              "speedup");
  double base_ms = 0.0;
  uint64_t ref_hash = 0;
  for (size_t threads : threads_axis) {
    TopKOptions opts;
    opts.num_threads = threads;
    TopKRecommender rec(&store, /*graph=*/nullptr, opts);
    Timer t;
    auto results = rec.RecommendBatch(queries);
    const double ms = t.ElapsedMillis();
    const uint64_t h = HashResults(results);
    if (ref_hash == 0) ref_hash = h;
    HYBRIDGNN_CHECK(h == ref_hash)
        << "top-K results differ across thread counts";
    if (threads == 1) base_ms = ms;
    report.AddStage("topk_batch", threads, ms,
                    ms > 0 ? 1e3 * num_queries / ms : 0);
    std::printf("%-8zu %9.1f ms %12.0f %9.2fx\n", threads, ms,
                ms > 0 ? 1e3 * num_queries / ms : 0,
                ms > 0 ? base_ms / ms : 0.0);
  }

  // --- checkpoint write / load(copy) / load(mmap) ---
  std::filesystem::create_directories("bench-out");
  const std::string path = "bench-out/micro_topk.hgc";
  Timer t;
  HYBRIDGNN_CHECK_OK(WriteCheckpoint(store, path));
  const double write_ms = t.ElapsedMillis();
  t.Reset();
  auto copy = LoadCheckpoint(path, LoadMode::kCopy);
  const double copy_ms = t.ElapsedMillis();
  HYBRIDGNN_CHECK(copy.ok()) << copy.status().ToString();
  t.Reset();
  auto mapped = LoadCheckpoint(path, LoadMode::kMmap);
  const double mmap_ms = t.ElapsedMillis();
  HYBRIDGNN_CHECK(mapped.ok()) << mapped.status().ToString();
  const double mib =
      static_cast<double>(std::filesystem::file_size(path)) / (1 << 20);
  std::printf("\ncheckpoint (%.1f MiB): write %.1f ms, load-copy %.1f ms, "
              "load-mmap %.1f ms (%.1fx)\n",
              mib, write_ms, copy_ms, mmap_ms,
              mmap_ms > 0 ? copy_ms / mmap_ms : 0.0);
  report.AddStage("ckpt_write", 1, write_ms, 0.0);
  report.AddStage("ckpt_load_copy", 1, copy_ms, 0.0);
  report.AddStage("ckpt_load_mmap", 1, mmap_ms, 0.0);

  // --- RecommendService micro-batching under concurrent clients ---
  TopKOptions sopts;
  sopts.num_threads = 4;
  TopKRecommender rec(&*mapped, /*graph=*/nullptr, sopts);
  ServiceOptions service_options;
  service_options.num_threads = 4;
  service_options.batch_window_ms = 0.5;
  service_options.max_batch_size = 32;
  RecommendService service(&rec, service_options);
  const size_t num_clients = 4;
  t.Reset();
  std::vector<std::thread> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < queries.size(); i += num_clients) {
        RecommendResponse resp = service.Call(queries[i]);
        HYBRIDGNN_CHECK(resp.status.ok()) << resp.status.ToString();
      }
    });
  }
  for (auto& th : clients) th.join();
  const double service_ms = t.ElapsedMillis();
  MetricsSnapshot snap = service.metrics();
  std::printf("\nservice: %zu clients, %.1f ms wall, %.0f queries/s\n",
              num_clients, service_ms,
              service_ms > 0 ? 1e3 * num_queries / service_ms : 0);
  std::printf("  %s\n", snap.ToString().c_str());
  HYBRIDGNN_CHECK(snap.requests == num_queries);
  HYBRIDGNN_CHECK(snap.errors == 0);
  report.AddStage("service", num_clients, service_ms,
                  service_ms > 0 ? 1e3 * num_queries / service_ms : 0);
  report.set_result_hash(ref_hash);
  report.Write();
}

}  // namespace
}  // namespace hybridgnn::bench

int main() {
  hybridgnn::bench::Run();
  return 0;
}
