// Reproduces Table II: statistics of the five datasets (|V|, |E|, |O|, |R|,
// metapath schemes). Our synthetic stand-ins match the paper's schema
// exactly and its sizes up to the bench scale factor.

#include "bench_util.h"
#include "graph/stats.h"

using namespace hybridgnn;
using namespace hybridgnn::bench;

int main() {
  PrintHeaderBanner("Table II: dataset statistics");
  BenchEnv env = GetBenchEnv();
  std::printf("%-10s %8s %8s %4s %4s  %s\n", "Dataset", "|V|", "|E|", "|O|",
              "|R|", "metapath schemes");
  for (const auto& name : DatasetProfileNames()) {
    auto ds = MakeDataset(name, env.scale * 10.0, 42);
    HYBRIDGNN_CHECK(ds.ok()) << ds.status().ToString();
    GraphStats s = ComputeStats(ds->graph);
    std::string schemes;
    for (size_t i = 0; i < ds->schemes.size() && i < 6; ++i) {
      if (i > 0) schemes += ", ";
      std::string compact;
      for (size_t j = 0; j < ds->schemes[i].node_types().size(); ++j) {
        if (j > 0) compact += '-';
        compact += static_cast<char>(std::toupper(
            ds->graph
                .node_type_name(ds->schemes[i].node_types()[j])[0]));
      }
      schemes += compact;
    }
    std::printf("%-10s %8zu %8zu %4zu %4zu  %s\n", name.c_str(), s.num_nodes,
                s.num_edges, s.num_node_types, s.num_relations,
                schemes.c_str());
  }
  std::printf("\nPer-dataset detail:\n");
  for (const auto& name : DatasetProfileNames()) {
    auto ds = MakeDataset(name, env.scale * 10.0, 42);
    HYBRIDGNN_CHECK(ds.ok());
    std::printf("[%s]\n%s\n", name.c_str(),
                FormatStats(ds->graph, ComputeStats(ds->graph)).c_str());
  }
  return 0;
}
