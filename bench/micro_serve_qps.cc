// Micro benchmark for the quantized serving path and admission control:
//
//   scan:     exact top-k QPS over one embedding table, measured per store
//             dtype (fp32 / fp16 / int8) through TopKRecommender, plus
//             recall@10 of each quantized store against the fp32 exact
//             ranking on the same queries; an int8+ANN column tracks the
//             quantization x candidate-generation composition (the ANN
//             gate itself lives in bench/micro_ann);
//   overload: a RecommendService with a bounded queue driven open-loop at
//             2x its measured closed-loop capacity — the shed counter must
//             move and the served p99 must stay bounded by the queue size,
//             not by the length of the overload.
//
// Reports QPS per dtype, recall@10, overload shed fraction and p99, and
// writes bench-out/BENCH_micro_serve_qps.json.
//
//   micro_serve_qps [--rows N] [--dim N] [--queries N] [--gate]
//
// --gate exits non-zero unless int8 is >= 2x the fp32 exact-scan QPS at
// recall@10 >= 0.95, and the overload run sheds while keeping served p99
// within the queue-derived bound (ci_check.sh runs it with --gate).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "serve/embedding_store.h"
#include "serve/service.h"
#include "serve/topk.h"
#include "tensor/tensor.h"

namespace hybridgnn {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
             .count() *
         1e-9;
}

EmbeddingStore MakeStore(size_t rows, size_t dim) {
  Rng rng(0x5EAE);
  std::vector<NodeId> identity(rows);
  for (NodeId v = 0; v < rows; ++v) identity[v] = v;
  EmbeddingStore::TableInit t;
  t.name = "click";
  t.row_to_node = identity;
  t.data = Tensor(rows, dim);
  for (size_t i = 0; i < t.data.size(); ++i) {
    t.data.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
  }
  std::vector<EmbeddingStore::TableInit> tables;
  tables.push_back(std::move(t));
  auto store = EmbeddingStore::FromTables("bench", rows, std::move(tables));
  if (!store.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", store.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(store).value();
}

std::vector<TopKQuery> MakeQueries(size_t n, size_t rows) {
  Rng rng(0xC0FFEE);
  std::vector<TopKQuery> queries(n);
  for (auto& q : queries) {
    q.node = static_cast<NodeId>(rng.UniformUint64(rows));
    q.rel = 0;
    q.k = 10;
  }
  return queries;
}

struct ScanResult {
  double qps = 0.0;
  std::vector<std::vector<NodeId>> topk;  // per query, ranked node ids
};

/// Exact-scan throughput of one recommender over `queries`, repeated until
/// ~`min_seconds` of wall clock, plus the ranked ids of the first pass.
ScanResult MeasureScan(const TopKRecommender& rec,
                       const std::vector<TopKQuery>& queries,
                       double min_seconds) {
  ScanResult result;
  auto run_once = [&](bool keep) {
    auto answers = rec.RecommendBatch(queries);
    for (auto& a : answers) {
      if (!a.ok()) {
        std::fprintf(stderr, "FATAL: %s\n", a.status().ToString().c_str());
        std::exit(1);
      }
      if (keep) {
        std::vector<NodeId> ids;
        ids.reserve(a->size());
        for (const Recommendation& r : *a) ids.push_back(r.node);
        result.topk.push_back(std::move(ids));
      }
    }
  };
  run_once(/*keep=*/true);  // warmup doubles as the recall sample
  size_t reps = 0;
  const auto t0 = Clock::now();
  do {
    run_once(/*keep=*/false);
    ++reps;
  } while (SecondsSince(t0) < min_seconds);
  result.qps = static_cast<double>(reps * queries.size()) / SecondsSince(t0);
  return result;
}

/// Mean |top10(quantized) ∩ top10(exact)| / 10 across queries.
double RecallAt10(const std::vector<std::vector<NodeId>>& exact,
                  const std::vector<std::vector<NodeId>>& approx) {
  double total = 0.0;
  for (size_t i = 0; i < exact.size(); ++i) {
    size_t hits = 0;
    for (NodeId v : approx[i]) {
      if (std::find(exact[i].begin(), exact[i].end(), v) != exact[i].end()) {
        ++hits;
      }
    }
    total += static_cast<double>(hits) /
             static_cast<double>(std::max<size_t>(1, exact[i].size()));
  }
  return exact.empty() ? 0.0 : total / static_cast<double>(exact.size());
}

struct OverloadResult {
  double capacity_qps = 0.0;
  double offered_qps = 0.0;
  size_t submitted = 0;
  size_t shed = 0;
  double served_p99_ms = 0.0;
  double p99_bound_ms = 0.0;
};

/// Closed-loop capacity, then an open-loop run at 2x that rate against a
/// bounded queue. The p99 bound is derived from the queue itself: a served
/// request waits at most max_queue_depth/capacity behind earlier work, so
/// p99 must scale with the cap — not with how long the overload lasts.
OverloadResult MeasureOverload(const TopKRecommender& rec) {
  OverloadResult result;

  // Capacity: saturate an uncapped service and count completions per second.
  {
    ServiceOptions options;
    options.num_threads = 2;
    options.max_batch_size = 64;
    options.batch_window_ms = 0.0;
    RecommendService service(&rec, options);
    const auto queries = MakeQueries(4096, rec.store().num_nodes());
    std::vector<std::future<RecommendResponse>> futures;
    futures.reserve(queries.size());
    const auto t0 = Clock::now();
    for (const auto& q : queries) futures.push_back(service.Submit(q));
    for (auto& f : futures) {
      if (!f.get().status.ok()) {
        std::fprintf(stderr, "FATAL: capacity probe request failed\n");
        std::exit(1);
      }
    }
    result.capacity_qps =
        static_cast<double>(queries.size()) / SecondsSince(t0);
  }

  // Overload: same service config plus a 256-deep queue cap, driven at 2x
  // capacity for ~1.5 seconds (capped at 60k submissions).
  const size_t kQueueDepth = 256;
  result.offered_qps = 2.0 * result.capacity_qps;
  const size_t total = std::min<size_t>(
      60000, static_cast<size_t>(result.offered_qps * 1.5));
  const double interval_s = 1.0 / result.offered_qps;

  ServiceOptions options;
  options.num_threads = 2;
  options.max_batch_size = 64;
  options.batch_window_ms = 0.0;
  options.max_queue_depth = kQueueDepth;
  RecommendService service(&rec, options);
  const auto queries = MakeQueries(total, rec.store().num_nodes());
  std::vector<std::future<RecommendResponse>> futures;
  futures.reserve(total);
  const auto t0 = Clock::now();
  for (size_t i = 0; i < total; ++i) {
    // Open-loop pacing: submit on schedule whether or not the service is
    // keeping up — that is what makes shedding observable.
    while (SecondsSince(t0) < static_cast<double>(i) * interval_s) {
    }
    futures.push_back(service.Submit(queries[i]));
  }
  for (auto& f : futures) (void)f.get();
  service.Shutdown();

  MetricsSnapshot snap = service.metrics();
  result.submitted = total;
  result.shed = static_cast<size_t>(snap.shed);
  result.served_p99_ms = snap.latency_p99_ms;
  // Queue-derived bound: full queue drain time at measured capacity, with
  // 8x headroom (the latency histogram is log2-bucketed, so a measured p99
  // can land one power-of-two above the true wait) plus a 50ms floor for
  // slow machines. An unbounded queue at 2x offered load blows through this
  // within the first second — the bound is generous, not vacuous.
  result.p99_bound_ms =
      8.0 * 1000.0 * static_cast<double>(kQueueDepth) / result.capacity_qps +
      50.0;
  return result;
}

int Main(int argc, char** argv) {
  size_t rows = 32768;
  size_t dim = 128;
  size_t num_queries = 48;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rows" && i + 1 < argc) {
      rows = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--dim" && i + 1 < argc) {
      dim = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--queries" && i + 1 < argc) {
      num_queries =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--gate") {
      gate = true;
    } else {
      std::fprintf(
          stderr, "usage: %s [--rows N] [--dim N] [--queries N] [--gate]\n",
          argv[0]);
      return 2;
    }
  }

  EmbeddingStore f32 = MakeStore(rows, dim);
  auto f16 = EmbeddingStore::Quantized(f32, StoreDType::kF16);
  auto i8 = EmbeddingStore::Quantized(f32, StoreDType::kI8);
  if (!f16.ok() || !i8.ok()) {
    std::fprintf(stderr, "FATAL: quantization failed\n");
    return 1;
  }
  std::printf("micro_serve_qps: %zu rows x %zu dim (fp32 table %.1f MB, "
              "int8 %.1f MB)\n",
              rows, dim, rows * dim * 4.0 / (1024.0 * 1024.0),
              rows * dim * 1.0 / (1024.0 * 1024.0));

  TopKOptions options;
  options.num_threads = 1;  // single-thread scan: dtype is the only variable
  TopKRecommender rec_f32(&f32, nullptr, options);
  TopKRecommender rec_f16(&*f16, nullptr, options);
  TopKRecommender rec_i8(&*i8, nullptr, options);
  // Quantization x ANN composition: the sublinear candidate generator in
  // front of the int8 re-rank kernels (the full bar is bench/micro_ann;
  // this column tracks that the two optimizations stack).
  TopKOptions ann_options = options;
  ann_options.ann = true;
  ann_options.ef_search = 256;   // serving-grade recall at this table size
  ann_options.ann_build.M = 24;  // micro_ann's gate config
  TopKRecommender rec_i8_ann(&*i8, nullptr, ann_options);

  const auto queries = MakeQueries(num_queries, rows);
  const double kMinSeconds = 0.4;
  ScanResult scan_f32 = MeasureScan(rec_f32, queries, kMinSeconds);
  ScanResult scan_f16 = MeasureScan(rec_f16, queries, kMinSeconds);
  ScanResult scan_i8 = MeasureScan(rec_i8, queries, kMinSeconds);
  ScanResult scan_i8_ann = MeasureScan(rec_i8_ann, queries, kMinSeconds);

  const double recall_f16 = RecallAt10(scan_f32.topk, scan_f16.topk);
  const double recall_i8 = RecallAt10(scan_f32.topk, scan_i8.topk);
  const double recall_i8_ann = RecallAt10(scan_f32.topk, scan_i8_ann.topk);
  const double speedup_f16 = scan_f16.qps / scan_f32.qps;
  const double speedup_i8 = scan_i8.qps / scan_f32.qps;
  const double speedup_i8_ann = scan_i8_ann.qps / scan_f32.qps;

  std::printf("  fp32 exact scan : %9.0f qps (recall@10 1.0000 by "
              "definition)\n",
              scan_f32.qps);
  std::printf("  fp16 scan       : %9.0f qps (%.2fx, recall@10 %.4f)\n",
              scan_f16.qps, speedup_f16, recall_f16);
  std::printf("  int8 scan       : %9.0f qps (%.2fx, recall@10 %.4f, "
              "gate >= 2x at >= 0.95)\n",
              scan_i8.qps, speedup_i8, recall_i8);
  std::printf("  int8 + ann      : %9.0f qps (%.2fx, recall@10 %.4f, "
              "%s)\n",
              scan_i8_ann.qps, speedup_i8_ann, recall_i8_ann,
              rec_i8_ann.ann_enabled() && rec_i8_ann.ann_indexes()[0]
                  ? "hnsw candidate generation"
                  : "exact fallback — table below ann_min_rows");

  OverloadResult overload = MeasureOverload(rec_i8);
  const double shed_frac = overload.submitted > 0
                               ? static_cast<double>(overload.shed) /
                                     static_cast<double>(overload.submitted)
                               : 0.0;
  std::printf("  service capacity: %9.0f qps (closed loop)\n",
              overload.capacity_qps);
  std::printf("  2x overload     : offered %.0f qps, shed %zu/%zu "
              "(%.1f%%), served p99 %.2f ms (bound %.2f ms)\n",
              overload.offered_qps, overload.shed, overload.submitted,
              100.0 * shed_frac, overload.served_p99_ms,
              overload.p99_bound_ms);

  uint64_t hash = 1469598103934665603ull;
  for (double v : {recall_f16, recall_i8}) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    hash = (hash ^ bits) * 1099511628211ull;
  }

  bench::BenchReport report("micro_serve_qps");
  report.AddStage("fp32_qps", 1, 0.0, scan_f32.qps);
  report.AddStage("fp16_qps", 1, 0.0, scan_f16.qps);
  report.AddStage("int8_qps", 1, 0.0, scan_i8.qps);
  report.AddStage("int8_ann_qps", 1, 0.0, scan_i8_ann.qps);
  report.AddStage("fp16_recall_at_10", 1, 0.0, recall_f16);
  report.AddStage("int8_recall_at_10", 1, 0.0, recall_i8);
  report.AddStage("int8_ann_recall_at_10", 1, 0.0, recall_i8_ann);
  report.AddStage("int8_speedup", 1, 0.0, speedup_i8);
  report.AddStage("capacity_qps", 1, 0.0, overload.capacity_qps);
  report.AddStage("overload_shed_fraction", 1, 0.0, shed_frac);
  report.AddStage("overload_served_p99_ms", 1, overload.served_p99_ms, 0.0);
  report.set_result_hash(hash);
  report.Write();

  if (gate) {
    if (speedup_i8 < 2.0) {
      std::fprintf(stderr,
                   "GATE FAILED: int8 scan is only %.2fx the fp32 exact "
                   "scan (required >= 2x)\n",
                   speedup_i8);
      return 1;
    }
    if (recall_i8 < 0.95) {
      std::fprintf(stderr,
                   "GATE FAILED: int8 recall@10 %.4f vs fp32 exact "
                   "(required >= 0.95)\n",
                   recall_i8);
      return 1;
    }
    if (overload.shed == 0) {
      std::fprintf(stderr,
                   "GATE FAILED: no requests shed at 2x overload — "
                   "admission control is not engaging\n");
      return 1;
    }
    if (overload.served_p99_ms > overload.p99_bound_ms) {
      std::fprintf(stderr,
                   "GATE FAILED: served p99 %.2f ms exceeds the "
                   "queue-derived bound %.2f ms under 2x overload\n",
                   overload.served_p99_ms, overload.p99_bound_ms);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace hybridgnn

int main(int argc, char** argv) { return hybridgnn::Main(argc, argv); }
