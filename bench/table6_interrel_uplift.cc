// Reproduces Table VI: uplift from inter-relationship information on the
// YouTube dataset. Starting from the subgraph g_{r0}, relations are added
// one at a time until the full graph; GCN (relation-blind), GATNE and
// HybridGNN are evaluated on relation r0's test edges each time. GCN stays
// flat; multiplex-aware models climb; HybridGNN leads at every subset.

#include "bench_util.h"

using namespace hybridgnn;
using namespace hybridgnn::bench;

namespace {

LinkPredictionResult RunOnSubset(const std::string& model_name,
                                 const Dataset& full, size_t keep,
                                 uint64_t seed, const ModelBudget& budget) {
  // The paper trains GCN per-relation on the target subgraph only, which is
  // why its row is constant: a homogeneous GNN has no way to consume the
  // added relations. We mirror that protocol.
  if (model_name == "GCN") keep = 1;
  std::vector<RelationId> rels;
  for (RelationId r = 0; r < keep; ++r) rels.push_back(r);
  auto sub = full.graph.ExtractRelationSubset(rels);
  HYBRIDGNN_CHECK(sub.ok()) << sub.status().ToString();
  Rng rng(seed ^ 0x5117);
  // Classic random-negative protocol: hard cross-relation negatives only
  // exist when |R| > 1, so using them here would change task difficulty
  // between rows and mask the uplift this table measures.
  SplitOptions options;
  options.hard_negative_fraction = 0.0;
  auto split = SplitEdges(*sub, options, rng);
  HYBRIDGNN_CHECK(split.ok()) << split.status().ToString();

  std::vector<MetapathScheme> schemes;
  for (const auto& s : full.schemes) {
    if (s.relation() < keep) schemes.push_back(s);
  }
  auto model = CreateModel(model_name, schemes, seed, budget);
  HYBRIDGNN_CHECK(model.ok()) << model.status().ToString();
  Status st = (*model)->Fit(split->train_graph);
  HYBRIDGNN_CHECK(st.ok()) << st.ToString();
  // Evaluate only relation r0 so uplift is attributable to the *extra*
  // relations' information.
  return EvaluateRelation(**model, *split, /*rel=*/0);
}

}  // namespace

int main() {
  PrintHeaderBanner(
      "Table VI: uplift from inter-relationship information (YouTube, "
      "ROC-AUC on g_{r0})");
  BenchEnv env = GetBenchEnv();
  ModelBudget budget = MakeBudget(env.effort);
  auto ds = MakeDataset("youtube", env.scale, 400);
  HYBRIDGNN_CHECK(ds.ok()) << ds.status().ToString();
  const size_t num_rel = ds->graph.num_relations();

  std::printf("%-24s %8s %8s %10s\n", "subgraph", "GCN", "GATNE",
              "HybridGNN");
  for (size_t keep = 1; keep <= num_rel; ++keep) {
    std::string label = "g_{r0";
    for (size_t r = 1; r < keep; ++r) {
      label += ",r" + std::to_string(r);
    }
    label += "}";
    double gcn = 0, gatne = 0, hybrid = 0;
    for (size_t s = 0; s < env.seeds; ++s) {
      gcn += RunOnSubset("GCN", *ds, keep, 4000 + s, budget).roc_auc;
      gatne += RunOnSubset("GATNE", *ds, keep, 4100 + s, budget).roc_auc;
      hybrid +=
          RunOnSubset("HybridGNN", *ds, keep, 4200 + s, budget).roc_auc;
    }
    const double n = static_cast<double>(env.seeds);
    std::printf("%-24s %8.2f %8.2f %10.2f\n", label.c_str(), gcn / n,
                gatne / n, hybrid / n);
  }
  return 0;
}
