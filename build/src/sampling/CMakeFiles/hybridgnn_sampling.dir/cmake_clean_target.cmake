file(REMOVE_RECURSE
  "libhybridgnn_sampling.a"
)
