# Empty compiler generated dependencies file for hybridgnn_sampling.
# This may be replaced when dependencies are built.
