
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/alias.cc" "src/sampling/CMakeFiles/hybridgnn_sampling.dir/alias.cc.o" "gcc" "src/sampling/CMakeFiles/hybridgnn_sampling.dir/alias.cc.o.d"
  "/root/repo/src/sampling/corpus.cc" "src/sampling/CMakeFiles/hybridgnn_sampling.dir/corpus.cc.o" "gcc" "src/sampling/CMakeFiles/hybridgnn_sampling.dir/corpus.cc.o.d"
  "/root/repo/src/sampling/exploration.cc" "src/sampling/CMakeFiles/hybridgnn_sampling.dir/exploration.cc.o" "gcc" "src/sampling/CMakeFiles/hybridgnn_sampling.dir/exploration.cc.o.d"
  "/root/repo/src/sampling/negative_sampler.cc" "src/sampling/CMakeFiles/hybridgnn_sampling.dir/negative_sampler.cc.o" "gcc" "src/sampling/CMakeFiles/hybridgnn_sampling.dir/negative_sampler.cc.o.d"
  "/root/repo/src/sampling/neighbor_sampler.cc" "src/sampling/CMakeFiles/hybridgnn_sampling.dir/neighbor_sampler.cc.o" "gcc" "src/sampling/CMakeFiles/hybridgnn_sampling.dir/neighbor_sampler.cc.o.d"
  "/root/repo/src/sampling/sgns.cc" "src/sampling/CMakeFiles/hybridgnn_sampling.dir/sgns.cc.o" "gcc" "src/sampling/CMakeFiles/hybridgnn_sampling.dir/sgns.cc.o.d"
  "/root/repo/src/sampling/walker.cc" "src/sampling/CMakeFiles/hybridgnn_sampling.dir/walker.cc.o" "gcc" "src/sampling/CMakeFiles/hybridgnn_sampling.dir/walker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/hybridgnn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hybridgnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hybridgnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
