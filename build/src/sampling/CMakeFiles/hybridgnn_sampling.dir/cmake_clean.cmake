file(REMOVE_RECURSE
  "CMakeFiles/hybridgnn_sampling.dir/alias.cc.o"
  "CMakeFiles/hybridgnn_sampling.dir/alias.cc.o.d"
  "CMakeFiles/hybridgnn_sampling.dir/corpus.cc.o"
  "CMakeFiles/hybridgnn_sampling.dir/corpus.cc.o.d"
  "CMakeFiles/hybridgnn_sampling.dir/exploration.cc.o"
  "CMakeFiles/hybridgnn_sampling.dir/exploration.cc.o.d"
  "CMakeFiles/hybridgnn_sampling.dir/negative_sampler.cc.o"
  "CMakeFiles/hybridgnn_sampling.dir/negative_sampler.cc.o.d"
  "CMakeFiles/hybridgnn_sampling.dir/neighbor_sampler.cc.o"
  "CMakeFiles/hybridgnn_sampling.dir/neighbor_sampler.cc.o.d"
  "CMakeFiles/hybridgnn_sampling.dir/sgns.cc.o"
  "CMakeFiles/hybridgnn_sampling.dir/sgns.cc.o.d"
  "CMakeFiles/hybridgnn_sampling.dir/walker.cc.o"
  "CMakeFiles/hybridgnn_sampling.dir/walker.cc.o.d"
  "libhybridgnn_sampling.a"
  "libhybridgnn_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridgnn_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
