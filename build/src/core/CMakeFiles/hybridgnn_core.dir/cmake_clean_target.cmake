file(REMOVE_RECURSE
  "libhybridgnn_core.a"
)
