# Empty dependencies file for hybridgnn_core.
# This may be replaced when dependencies are built.
