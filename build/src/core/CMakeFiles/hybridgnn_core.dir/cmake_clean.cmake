file(REMOVE_RECURSE
  "CMakeFiles/hybridgnn_core.dir/config.cc.o"
  "CMakeFiles/hybridgnn_core.dir/config.cc.o.d"
  "CMakeFiles/hybridgnn_core.dir/hybrid_gnn.cc.o"
  "CMakeFiles/hybridgnn_core.dir/hybrid_gnn.cc.o.d"
  "libhybridgnn_core.a"
  "libhybridgnn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridgnn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
