file(REMOVE_RECURSE
  "libhybridgnn_common.a"
)
