# Empty compiler generated dependencies file for hybridgnn_common.
# This may be replaced when dependencies are built.
