file(REMOVE_RECURSE
  "CMakeFiles/hybridgnn_common.dir/env.cc.o"
  "CMakeFiles/hybridgnn_common.dir/env.cc.o.d"
  "CMakeFiles/hybridgnn_common.dir/logging.cc.o"
  "CMakeFiles/hybridgnn_common.dir/logging.cc.o.d"
  "CMakeFiles/hybridgnn_common.dir/rng.cc.o"
  "CMakeFiles/hybridgnn_common.dir/rng.cc.o.d"
  "CMakeFiles/hybridgnn_common.dir/status.cc.o"
  "CMakeFiles/hybridgnn_common.dir/status.cc.o.d"
  "CMakeFiles/hybridgnn_common.dir/string_util.cc.o"
  "CMakeFiles/hybridgnn_common.dir/string_util.cc.o.d"
  "CMakeFiles/hybridgnn_common.dir/threadpool.cc.o"
  "CMakeFiles/hybridgnn_common.dir/threadpool.cc.o.d"
  "libhybridgnn_common.a"
  "libhybridgnn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridgnn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
