file(REMOVE_RECURSE
  "libhybridgnn_tensor.a"
)
