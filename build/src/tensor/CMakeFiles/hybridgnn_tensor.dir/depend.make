# Empty dependencies file for hybridgnn_tensor.
# This may be replaced when dependencies are built.
