file(REMOVE_RECURSE
  "CMakeFiles/hybridgnn_tensor.dir/autograd.cc.o"
  "CMakeFiles/hybridgnn_tensor.dir/autograd.cc.o.d"
  "CMakeFiles/hybridgnn_tensor.dir/init.cc.o"
  "CMakeFiles/hybridgnn_tensor.dir/init.cc.o.d"
  "CMakeFiles/hybridgnn_tensor.dir/optimizer.cc.o"
  "CMakeFiles/hybridgnn_tensor.dir/optimizer.cc.o.d"
  "CMakeFiles/hybridgnn_tensor.dir/tensor.cc.o"
  "CMakeFiles/hybridgnn_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/hybridgnn_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/hybridgnn_tensor.dir/tensor_ops.cc.o.d"
  "libhybridgnn_tensor.a"
  "libhybridgnn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridgnn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
