# Empty dependencies file for hybridgnn_graph.
# This may be replaced when dependencies are built.
