file(REMOVE_RECURSE
  "libhybridgnn_graph.a"
)
