file(REMOVE_RECURSE
  "CMakeFiles/hybridgnn_graph.dir/graph.cc.o"
  "CMakeFiles/hybridgnn_graph.dir/graph.cc.o.d"
  "CMakeFiles/hybridgnn_graph.dir/graph_io.cc.o"
  "CMakeFiles/hybridgnn_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/hybridgnn_graph.dir/metapath.cc.o"
  "CMakeFiles/hybridgnn_graph.dir/metapath.cc.o.d"
  "CMakeFiles/hybridgnn_graph.dir/stats.cc.o"
  "CMakeFiles/hybridgnn_graph.dir/stats.cc.o.d"
  "libhybridgnn_graph.a"
  "libhybridgnn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridgnn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
