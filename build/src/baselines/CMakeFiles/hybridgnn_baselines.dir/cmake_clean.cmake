file(REMOVE_RECURSE
  "CMakeFiles/hybridgnn_baselines.dir/common.cc.o"
  "CMakeFiles/hybridgnn_baselines.dir/common.cc.o.d"
  "CMakeFiles/hybridgnn_baselines.dir/deepwalk.cc.o"
  "CMakeFiles/hybridgnn_baselines.dir/deepwalk.cc.o.d"
  "CMakeFiles/hybridgnn_baselines.dir/gatne.cc.o"
  "CMakeFiles/hybridgnn_baselines.dir/gatne.cc.o.d"
  "CMakeFiles/hybridgnn_baselines.dir/gcn.cc.o"
  "CMakeFiles/hybridgnn_baselines.dir/gcn.cc.o.d"
  "CMakeFiles/hybridgnn_baselines.dir/graphsage.cc.o"
  "CMakeFiles/hybridgnn_baselines.dir/graphsage.cc.o.d"
  "CMakeFiles/hybridgnn_baselines.dir/han.cc.o"
  "CMakeFiles/hybridgnn_baselines.dir/han.cc.o.d"
  "CMakeFiles/hybridgnn_baselines.dir/line.cc.o"
  "CMakeFiles/hybridgnn_baselines.dir/line.cc.o.d"
  "CMakeFiles/hybridgnn_baselines.dir/magnn.cc.o"
  "CMakeFiles/hybridgnn_baselines.dir/magnn.cc.o.d"
  "CMakeFiles/hybridgnn_baselines.dir/node2vec.cc.o"
  "CMakeFiles/hybridgnn_baselines.dir/node2vec.cc.o.d"
  "CMakeFiles/hybridgnn_baselines.dir/registry.cc.o"
  "CMakeFiles/hybridgnn_baselines.dir/registry.cc.o.d"
  "CMakeFiles/hybridgnn_baselines.dir/rgcn.cc.o"
  "CMakeFiles/hybridgnn_baselines.dir/rgcn.cc.o.d"
  "libhybridgnn_baselines.a"
  "libhybridgnn_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridgnn_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
