
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/deepwalk.cc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/deepwalk.cc.o" "gcc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/deepwalk.cc.o.d"
  "/root/repo/src/baselines/gatne.cc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/gatne.cc.o" "gcc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/gatne.cc.o.d"
  "/root/repo/src/baselines/gcn.cc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/gcn.cc.o" "gcc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/gcn.cc.o.d"
  "/root/repo/src/baselines/graphsage.cc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/graphsage.cc.o" "gcc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/graphsage.cc.o.d"
  "/root/repo/src/baselines/han.cc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/han.cc.o" "gcc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/han.cc.o.d"
  "/root/repo/src/baselines/line.cc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/line.cc.o" "gcc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/line.cc.o.d"
  "/root/repo/src/baselines/magnn.cc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/magnn.cc.o" "gcc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/magnn.cc.o.d"
  "/root/repo/src/baselines/node2vec.cc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/node2vec.cc.o" "gcc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/node2vec.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/registry.cc.o" "gcc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/registry.cc.o.d"
  "/root/repo/src/baselines/rgcn.cc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/rgcn.cc.o" "gcc" "src/baselines/CMakeFiles/hybridgnn_baselines.dir/rgcn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hybridgnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hybridgnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/hybridgnn_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/hybridgnn_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hybridgnn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hybridgnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hybridgnn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hybridgnn_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
