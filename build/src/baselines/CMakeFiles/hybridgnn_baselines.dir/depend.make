# Empty dependencies file for hybridgnn_baselines.
# This may be replaced when dependencies are built.
