file(REMOVE_RECURSE
  "libhybridgnn_baselines.a"
)
