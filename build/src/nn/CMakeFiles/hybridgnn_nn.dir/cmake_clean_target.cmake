file(REMOVE_RECURSE
  "libhybridgnn_nn.a"
)
