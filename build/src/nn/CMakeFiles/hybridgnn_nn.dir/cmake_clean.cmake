file(REMOVE_RECURSE
  "CMakeFiles/hybridgnn_nn.dir/aggregator.cc.o"
  "CMakeFiles/hybridgnn_nn.dir/aggregator.cc.o.d"
  "CMakeFiles/hybridgnn_nn.dir/attention.cc.o"
  "CMakeFiles/hybridgnn_nn.dir/attention.cc.o.d"
  "CMakeFiles/hybridgnn_nn.dir/embedding.cc.o"
  "CMakeFiles/hybridgnn_nn.dir/embedding.cc.o.d"
  "CMakeFiles/hybridgnn_nn.dir/linear.cc.o"
  "CMakeFiles/hybridgnn_nn.dir/linear.cc.o.d"
  "CMakeFiles/hybridgnn_nn.dir/module.cc.o"
  "CMakeFiles/hybridgnn_nn.dir/module.cc.o.d"
  "CMakeFiles/hybridgnn_nn.dir/semantic_attention.cc.o"
  "CMakeFiles/hybridgnn_nn.dir/semantic_attention.cc.o.d"
  "CMakeFiles/hybridgnn_nn.dir/sparse.cc.o"
  "CMakeFiles/hybridgnn_nn.dir/sparse.cc.o.d"
  "libhybridgnn_nn.a"
  "libhybridgnn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridgnn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
