
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/aggregator.cc" "src/nn/CMakeFiles/hybridgnn_nn.dir/aggregator.cc.o" "gcc" "src/nn/CMakeFiles/hybridgnn_nn.dir/aggregator.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/hybridgnn_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/hybridgnn_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/hybridgnn_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/hybridgnn_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/hybridgnn_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/hybridgnn_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/hybridgnn_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/hybridgnn_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/semantic_attention.cc" "src/nn/CMakeFiles/hybridgnn_nn.dir/semantic_attention.cc.o" "gcc" "src/nn/CMakeFiles/hybridgnn_nn.dir/semantic_attention.cc.o.d"
  "/root/repo/src/nn/sparse.cc" "src/nn/CMakeFiles/hybridgnn_nn.dir/sparse.cc.o" "gcc" "src/nn/CMakeFiles/hybridgnn_nn.dir/sparse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/hybridgnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hybridgnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
