# Empty dependencies file for hybridgnn_nn.
# This may be replaced when dependencies are built.
