
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/profiles.cc" "src/data/CMakeFiles/hybridgnn_data.dir/profiles.cc.o" "gcc" "src/data/CMakeFiles/hybridgnn_data.dir/profiles.cc.o.d"
  "/root/repo/src/data/split.cc" "src/data/CMakeFiles/hybridgnn_data.dir/split.cc.o" "gcc" "src/data/CMakeFiles/hybridgnn_data.dir/split.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/hybridgnn_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/hybridgnn_data.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/hybridgnn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/hybridgnn_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hybridgnn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hybridgnn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
