# Empty dependencies file for hybridgnn_data.
# This may be replaced when dependencies are built.
