file(REMOVE_RECURSE
  "CMakeFiles/hybridgnn_data.dir/profiles.cc.o"
  "CMakeFiles/hybridgnn_data.dir/profiles.cc.o.d"
  "CMakeFiles/hybridgnn_data.dir/split.cc.o"
  "CMakeFiles/hybridgnn_data.dir/split.cc.o.d"
  "CMakeFiles/hybridgnn_data.dir/synthetic.cc.o"
  "CMakeFiles/hybridgnn_data.dir/synthetic.cc.o.d"
  "libhybridgnn_data.a"
  "libhybridgnn_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridgnn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
