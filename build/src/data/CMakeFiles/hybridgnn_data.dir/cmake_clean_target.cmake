file(REMOVE_RECURSE
  "libhybridgnn_data.a"
)
