file(REMOVE_RECURSE
  "CMakeFiles/hybridgnn_eval.dir/evaluator.cc.o"
  "CMakeFiles/hybridgnn_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/hybridgnn_eval.dir/metrics.cc.o"
  "CMakeFiles/hybridgnn_eval.dir/metrics.cc.o.d"
  "CMakeFiles/hybridgnn_eval.dir/stats_test.cc.o"
  "CMakeFiles/hybridgnn_eval.dir/stats_test.cc.o.d"
  "libhybridgnn_eval.a"
  "libhybridgnn_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridgnn_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
