file(REMOVE_RECURSE
  "libhybridgnn_eval.a"
)
