# Empty dependencies file for hybridgnn_eval.
# This may be replaced when dependencies are built.
