file(REMOVE_RECURSE
  "CMakeFiles/metapath_test.dir/metapath_test.cc.o"
  "CMakeFiles/metapath_test.dir/metapath_test.cc.o.d"
  "metapath_test"
  "metapath_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metapath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
