# Empty compiler generated dependencies file for metapath_test.
# This may be replaced when dependencies are built.
