file(REMOVE_RECURSE
  "CMakeFiles/micro_sampling.dir/micro_sampling.cc.o"
  "CMakeFiles/micro_sampling.dir/micro_sampling.cc.o.d"
  "micro_sampling"
  "micro_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
