# Empty compiler generated dependencies file for table5_exploration_depth.
# This may be replaced when dependencies are built.
