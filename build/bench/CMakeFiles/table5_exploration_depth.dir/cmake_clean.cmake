file(REMOVE_RECURSE
  "CMakeFiles/table5_exploration_depth.dir/table5_exploration_depth.cc.o"
  "CMakeFiles/table5_exploration_depth.dir/table5_exploration_depth.cc.o.d"
  "table5_exploration_depth"
  "table5_exploration_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_exploration_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
