file(REMOVE_RECURSE
  "CMakeFiles/table6_interrel_uplift.dir/table6_interrel_uplift.cc.o"
  "CMakeFiles/table6_interrel_uplift.dir/table6_interrel_uplift.cc.o.d"
  "table6_interrel_uplift"
  "table6_interrel_uplift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_interrel_uplift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
