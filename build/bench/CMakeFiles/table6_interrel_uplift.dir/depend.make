# Empty dependencies file for table6_interrel_uplift.
# This may be replaced when dependencies are built.
