# Empty dependencies file for fig6_attention_scores.
# This may be replaced when dependencies are built.
