file(REMOVE_RECURSE
  "CMakeFiles/fig6_attention_scores.dir/fig6_attention_scores.cc.o"
  "CMakeFiles/fig6_attention_scores.dir/fig6_attention_scores.cc.o.d"
  "fig6_attention_scores"
  "fig6_attention_scores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_attention_scores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
