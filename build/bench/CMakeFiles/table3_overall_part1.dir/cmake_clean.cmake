file(REMOVE_RECURSE
  "CMakeFiles/table3_overall_part1.dir/table3_overall_part1.cc.o"
  "CMakeFiles/table3_overall_part1.dir/table3_overall_part1.cc.o.d"
  "table3_overall_part1"
  "table3_overall_part1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_overall_part1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
