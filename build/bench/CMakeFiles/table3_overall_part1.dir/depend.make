# Empty dependencies file for table3_overall_part1.
# This may be replaced when dependencies are built.
