# Empty compiler generated dependencies file for table8_degree_comparison.
# This may be replaced when dependencies are built.
