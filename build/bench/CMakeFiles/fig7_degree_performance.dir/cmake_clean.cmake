file(REMOVE_RECURSE
  "CMakeFiles/fig7_degree_performance.dir/fig7_degree_performance.cc.o"
  "CMakeFiles/fig7_degree_performance.dir/fig7_degree_performance.cc.o.d"
  "fig7_degree_performance"
  "fig7_degree_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_degree_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
