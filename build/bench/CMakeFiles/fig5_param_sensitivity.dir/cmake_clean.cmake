file(REMOVE_RECURSE
  "CMakeFiles/fig5_param_sensitivity.dir/fig5_param_sensitivity.cc.o"
  "CMakeFiles/fig5_param_sensitivity.dir/fig5_param_sensitivity.cc.o.d"
  "fig5_param_sensitivity"
  "fig5_param_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_param_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
