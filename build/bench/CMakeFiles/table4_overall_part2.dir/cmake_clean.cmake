file(REMOVE_RECURSE
  "CMakeFiles/table4_overall_part2.dir/table4_overall_part2.cc.o"
  "CMakeFiles/table4_overall_part2.dir/table4_overall_part2.cc.o.d"
  "table4_overall_part2"
  "table4_overall_part2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_overall_part2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
