# Empty compiler generated dependencies file for table4_overall_part2.
# This may be replaced when dependencies are built.
