file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_recommendations.dir/ecommerce_recommendations.cpp.o"
  "CMakeFiles/ecommerce_recommendations.dir/ecommerce_recommendations.cpp.o.d"
  "ecommerce_recommendations"
  "ecommerce_recommendations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_recommendations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
