# Empty dependencies file for ecommerce_recommendations.
# This may be replaced when dependencies are built.
