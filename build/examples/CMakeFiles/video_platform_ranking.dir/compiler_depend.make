# Empty compiler generated dependencies file for video_platform_ranking.
# This may be replaced when dependencies are built.
