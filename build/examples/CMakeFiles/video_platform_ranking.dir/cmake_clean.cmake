file(REMOVE_RECURSE
  "CMakeFiles/video_platform_ranking.dir/video_platform_ranking.cpp.o"
  "CMakeFiles/video_platform_ranking.dir/video_platform_ranking.cpp.o.d"
  "video_platform_ranking"
  "video_platform_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_platform_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
