# Empty compiler generated dependencies file for graph_io_roundtrip.
# This may be replaced when dependencies are built.
