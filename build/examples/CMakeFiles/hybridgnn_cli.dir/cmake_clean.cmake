file(REMOVE_RECURSE
  "CMakeFiles/hybridgnn_cli.dir/hybridgnn_cli.cpp.o"
  "CMakeFiles/hybridgnn_cli.dir/hybridgnn_cli.cpp.o.d"
  "hybridgnn_cli"
  "hybridgnn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridgnn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
