# Empty dependencies file for hybridgnn_cli.
# This may be replaced when dependencies are built.
