// Regression tests pinning the parallel pipeline's reproducibility
// contract:
//   * num_threads <= 1 is bit-identical to the pre-parallelism serial
//     implementation (golden values captured from the seed build);
//   * parallel corpus generation is invariant to the worker count (every
//     thread count > 1 produces the same corpus);
//   * FitOptions{num_threads: N, deterministic: true} is run-to-run
//     reproducible for fixed (seed, N);
//   * EmbeddingsFor matches the per-node Embedding loop.
//
// Since the kernel layer (src/kernels) the golden comparisons additionally
// pin the *scalar* dispatch path: under HYBRIDGNN_KERNELS=scalar the library
// must reproduce the pre-SIMD goldens bit for bit, while the AVX2 path only
// has to land metric-identical within the documented tolerance (reductions
// are reassociated; see DESIGN.md §11).
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/hybrid_gnn.h"
#include "graph/metapath.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "sampling/corpus.h"
#include "sampling/negative_sampler.h"
#include "sampling/sgns.h"
#include "test_util.h"

namespace hybridgnn {
namespace {

std::vector<MetapathScheme> TinySchemes(const MultiplexHeteroGraph& g) {
  std::vector<MetapathScheme> schemes;
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    schemes.push_back(MetapathScheme::ParseIntra(g, "U-I-U", r).value());
    schemes.push_back(MetapathScheme::ParseIntra(g, "I-U-I", r).value());
  }
  return schemes;
}

HybridGnnConfig TinyConfig() {
  HybridGnnConfig c;
  c.base_dim = 16;
  c.edge_dim = 4;
  c.hidden_dim = 8;
  c.epochs = 2;
  c.batch_size = 64;
  c.max_pairs_per_epoch = 500;
  c.corpus.num_walks_per_node = 3;
  c.corpus.walk_length = 4;
  c.corpus.window = 2;
  c.fanout = 3;
  c.seed = 123;
  return c;
}

// Golden rows dumped from the pre-parallelism serial build (full float
// precision). If these fail, the threads<=1 path is no longer the original
// pipeline.
constexpr float kGoldenV0R0[16] = {
    0.029116407f,   0.00659689587f, -0.00732238032f, 0.0927861407f,
    0.0335711539f,  0.0307084247f,  -0.009861378f,   -0.0642795861f,
    0.0377879292f,  0.0116837798f,  0.04985952f,     0.0171902403f,
    -0.011715766f,  -0.0284654126f, 0.0397054702f,   0.0169521496f};
constexpr float kGoldenV5R1[16] = {
    0.0343935937f,  -0.0380339362f, 0.0695880502f,  0.141735554f,
    -0.0357713699f, -0.00363818393f, 0.0801288038f, -0.0368240103f,
    0.0157920476f,  0.0375176258f,  0.0284227915f,  0.00354929827f,
    -0.0141490465f, 0.0361460708f,  -0.0378150828f, -0.00168883754f};
constexpr float kGoldenSgnsV0[8] = {
    -0.193856314f, -0.263697565f, 0.131161436f,  -0.43157804f,
    0.107928365f,  -0.0737559721f, 0.881925464f, 0.116057098f};

TEST(DeterminismTest, SerialFitMatchesPreParallelGolden) {
  // The goldens predate the SIMD kernel layer, so they pin the scalar
  // dispatch path specifically.
  kernels::ScopedBackend scalar(kernels::Backend::kScalar);
  MultiplexHeteroGraph g = testing::SmallBipartite();
  HybridGnn model(TinyConfig(), TinySchemes(g));
  FitOptions opts;
  opts.num_threads = 1;
  ASSERT_TRUE(model.Fit(g, opts).ok());
  Tensor e00 = model.Embedding(0, 0);
  Tensor e51 = model.Embedding(5, 1);
  ASSERT_EQ(e00.cols(), 16u);
  for (size_t j = 0; j < 16; ++j) {
    EXPECT_FLOAT_EQ(e00.At(0, j), kGoldenV0R0[j]) << "v0 r0 col " << j;
    EXPECT_FLOAT_EQ(e51.At(0, j), kGoldenV5R1[j]) << "v5 r1 col " << j;
  }
}

TEST(DeterminismTest, SerialFitWithCompiledPlanMatchesGolden) {
  // Compiled-plan replay (FitOptions{compile_plan}) must be bit-identical to
  // the eager tape on the serial scalar path — same goldens, no tolerance.
  // We also assert plan/replays advanced, so a silently-poisoned recorder
  // (which would fall back to eager and pass vacuously) fails the test.
  kernels::ScopedBackend scalar(kernels::Backend::kScalar);
  const uint64_t replays_before =
      obs::GlobalRegistry().GetCounter("plan/replays").value();
  MultiplexHeteroGraph g = testing::SmallBipartite();
  HybridGnn model(TinyConfig(), TinySchemes(g));
  FitOptions opts;
  opts.num_threads = 1;
  opts.compile_plan = true;
  ASSERT_TRUE(model.Fit(g, opts).ok());
  Tensor e00 = model.Embedding(0, 0);
  Tensor e51 = model.Embedding(5, 1);
  ASSERT_EQ(e00.cols(), 16u);
  for (size_t j = 0; j < 16; ++j) {
    EXPECT_FLOAT_EQ(e00.At(0, j), kGoldenV0R0[j]) << "v0 r0 col " << j;
    EXPECT_FLOAT_EQ(e51.At(0, j), kGoldenV5R1[j]) << "v5 r1 col " << j;
  }
  EXPECT_GT(obs::GlobalRegistry().GetCounter("plan/replays").value(),
            replays_before)
      << "compile_plan was on but no step replayed a compiled plan";
}

TEST(DeterminismTest, DefaultFitOverloadIsTheSerialPath) {
  // Fit(g) forwards to Fit(g, FitOptions{}) which resolves to one thread
  // when HYBRIDGNN_THREADS is unset — still the golden serial result.
  MultiplexHeteroGraph g = testing::SmallBipartite();
  HybridGnn a(TinyConfig(), TinySchemes(g));
  HybridGnn b(TinyConfig(), TinySchemes(g));
  ASSERT_TRUE(a.Fit(g).ok());
  FitOptions serial;
  serial.num_threads = 1;
  ASSERT_TRUE(b.Fit(g, serial).ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (RelationId r = 0; r < g.num_relations(); ++r) {
      Tensor ea = a.Embedding(v, r);
      Tensor eb = b.Embedding(v, r);
      for (size_t j = 0; j < ea.cols(); ++j) {
        ASSERT_EQ(ea.At(0, j), eb.At(0, j)) << "v" << v << " r" << r;
      }
    }
  }
}

TEST(DeterminismTest, SerialSgnsMatchesPreParallelGolden) {
  kernels::ScopedBackend scalar(kernels::Backend::kScalar);
  MultiplexHeteroGraph g = testing::SmallBipartite();
  Rng rng(77);
  CorpusOptions co;
  co.num_walks_per_node = 3;
  co.walk_length = 4;
  co.window = 2;
  WalkCorpus corpus = BuildMetapathCorpus(g, TinySchemes(g), co, rng);
  EXPECT_EQ(corpus.walks.size(), 36u);
  EXPECT_EQ(corpus.pairs.size(), 536u);
  NegativeSampler sampler(g);
  SgnsOptions so;
  so.dim = 8;
  so.epochs = 2;
  SgnsEmbedder emb(g.num_nodes(), so.dim, rng);
  emb.Train(corpus.pairs, sampler, so, rng);
  for (size_t j = 0; j < 8; ++j) {
    EXPECT_FLOAT_EQ(emb.embeddings().At(0, j), kGoldenSgnsV0[j])
        << "sgns v0 col " << j;
  }
}

// Parallel corpus generation consumes one seed draw and forks one stream
// per walk unit, so the output is a pure function of (seed), not of how
// units are scheduled: every thread count > 1 must agree exactly.
TEST(DeterminismTest, ParallelCorpusInvariantToThreadCount) {
  MultiplexHeteroGraph g = testing::SmallBipartite();
  auto schemes = TinySchemes(g);
  auto build = [&](size_t threads) {
    Rng rng(99);
    CorpusOptions co;
    co.num_walks_per_node = 4;
    co.walk_length = 5;
    co.window = 2;
    co.num_threads = threads;
    return BuildMetapathCorpus(g, schemes, co, rng);
  };
  WalkCorpus c2 = build(2);
  WalkCorpus c4 = build(4);
  WalkCorpus c8 = build(8);
  ASSERT_EQ(c2.walks.size(), c4.walks.size());
  ASSERT_EQ(c2.walks.size(), c8.walks.size());
  EXPECT_EQ(c2.walks, c4.walks);
  EXPECT_EQ(c2.walks, c8.walks);
  ASSERT_EQ(c2.pairs.size(), c4.pairs.size());
  ASSERT_EQ(c2.pairs.size(), c8.pairs.size());
  for (size_t i = 0; i < c2.pairs.size(); ++i) {
    ASSERT_EQ(c2.pairs[i].center, c4.pairs[i].center) << "pair " << i;
    ASSERT_EQ(c2.pairs[i].context, c4.pairs[i].context) << "pair " << i;
    ASSERT_EQ(c2.pairs[i].rel, c4.pairs[i].rel) << "pair " << i;
    ASSERT_EQ(c2.pairs[i].center, c8.pairs[i].center) << "pair " << i;
    ASSERT_EQ(c2.pairs[i].context, c8.pairs[i].context) << "pair " << i;
    ASSERT_EQ(c2.pairs[i].rel, c8.pairs[i].rel) << "pair " << i;
  }
  // Repeat-run stability at a fixed thread count.
  WalkCorpus again = build(4);
  EXPECT_EQ(c4.walks, again.walks);
}

// Serial and parallel corpora draw from differently-structured streams (a
// single interleaved generator vs. one fork per walk unit), so they are
// different samples — but the same *shape* of work: identical walk counts
// and walk lengths per start node.
TEST(DeterminismTest, ParallelCorpusMatchesSerialShape) {
  MultiplexHeteroGraph g = testing::SmallBipartite();
  auto schemes = TinySchemes(g);
  auto build = [&](size_t threads) {
    Rng rng(99);
    CorpusOptions co;
    co.num_walks_per_node = 4;
    co.walk_length = 5;
    co.window = 2;
    co.num_threads = threads;
    return BuildMetapathCorpus(g, schemes, co, rng);
  };
  WalkCorpus serial = build(1);
  WalkCorpus parallel = build(4);
  ASSERT_EQ(serial.walks.size(), parallel.walks.size());
  for (size_t i = 0; i < serial.walks.size(); ++i) {
    // Same unit enumeration order: walk i starts at the same node.
    EXPECT_EQ(serial.walks[i].front(), parallel.walks[i].front())
        << "walk " << i;
  }
}

TEST(DeterminismTest, DeterministicParallelFitIsReproducible) {
  MultiplexHeteroGraph g = testing::SmallBipartite();
  FitOptions opts;
  opts.num_threads = 4;
  opts.deterministic = true;
  HybridGnn a(TinyConfig(), TinySchemes(g));
  HybridGnn b(TinyConfig(), TinySchemes(g));
  ASSERT_TRUE(a.Fit(g, opts).ok());
  ASSERT_TRUE(b.Fit(g, opts).ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (RelationId r = 0; r < g.num_relations(); ++r) {
      Tensor ea = a.Embedding(v, r);
      Tensor eb = b.Embedding(v, r);
      for (size_t j = 0; j < ea.cols(); ++j) {
        ASSERT_EQ(ea.At(0, j), eb.At(0, j))
            << "deterministic fit diverged at v" << v << " r" << r;
      }
    }
  }
}

TEST(DeterminismTest, ParallelFitProducesFiniteEmbeddingsAndProgress) {
  MultiplexHeteroGraph g = testing::SmallBipartite();
  FitOptions opts;
  opts.num_threads = 4;
  std::vector<std::string> phases;
  opts.progress_callback = [&](const FitProgress& p) {
    phases.push_back(p.phase);
  };
  HybridGnn model(TinyConfig(), TinySchemes(g));
  ASSERT_TRUE(model.Fit(g, opts).ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (RelationId r = 0; r < g.num_relations(); ++r) {
      Tensor e = model.Embedding(v, r);
      for (size_t j = 0; j < e.cols(); ++j) {
        ASSERT_TRUE(std::isfinite(e.At(0, j))) << "v" << v << " r" << r;
      }
    }
  }
  // corpus, pretrain, >=1 epoch, cache.
  EXPECT_GE(phases.size(), 4u);
  EXPECT_EQ(phases.front(), "corpus");
  EXPECT_EQ(phases.back(), "cache");
}

// The AVX2 path reassociates the dot-product reductions, so it cannot be
// bit-identical to the scalar goldens — but the same seeds draw the same
// samples on both paths (randomness never depends on float values), so the
// trained embeddings must agree to small absolute drift and near-perfect
// per-node cosine. The 1e-3 bound is the documented tolerance of
// DESIGN.md §11: per-step rounding differences are ~1e-7 and the tiny
// 2-epoch run amplifies them by at most a few orders of magnitude.
TEST(DeterminismTest, SgnsAvx2TracksScalarGoldenWithinTolerance) {
  if (!kernels::Avx2Available()) {
    GTEST_SKIP() << "AVX2 kernels unavailable on this host";
  }
  MultiplexHeteroGraph g = testing::SmallBipartite();
  auto train = [&](kernels::Backend backend) {
    kernels::ScopedBackend guard(backend);
    Rng rng(77);
    CorpusOptions co;
    co.num_walks_per_node = 3;
    co.walk_length = 4;
    co.window = 2;
    WalkCorpus corpus = BuildMetapathCorpus(g, TinySchemes(g), co, rng);
    NegativeSampler sampler(g);
    SgnsOptions so;
    so.dim = 8;
    so.epochs = 2;
    SgnsEmbedder emb(g.num_nodes(), so.dim, rng);
    emb.Train(corpus.pairs, sampler, so, rng);
    return emb.embeddings();
  };
  const Tensor scalar = train(kernels::Backend::kScalar);
  const Tensor avx2 = train(kernels::Backend::kAvx2);
  ASSERT_TRUE(scalar.SameShape(avx2));
  // Scalar run must still match the pre-SIMD golden exactly.
  for (size_t j = 0; j < 8; ++j) {
    EXPECT_FLOAT_EQ(scalar.At(0, j), kGoldenSgnsV0[j]) << "scalar col " << j;
  }
  for (size_t i = 0; i < scalar.rows(); ++i) {
    double dot = 0.0, ns = 0.0, na = 0.0;
    for (size_t j = 0; j < scalar.cols(); ++j) {
      const double s = scalar.At(i, j), a = avx2.At(i, j);
      EXPECT_NEAR(s, a, 1e-3) << "node " << i << " col " << j;
      dot += s * a;
      ns += s * s;
      na += a * a;
    }
    EXPECT_GT(dot / std::sqrt(ns * na), 0.9999) << "node " << i;
  }
}

TEST(DeterminismTest, EmbeddingsForMatchesPerNodeLoop) {
  MultiplexHeteroGraph g = testing::SmallBipartite();
  HybridGnn model(TinyConfig(), TinySchemes(g));
  ASSERT_TRUE(model.Fit(g).ok());
  std::vector<std::pair<NodeId, RelationId>> queries;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (RelationId r = 0; r < g.num_relations(); ++r) {
      queries.emplace_back(v, r);
    }
  }
  Tensor batched = model.EmbeddingsFor(queries);
  ASSERT_EQ(batched.rows(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    Tensor row = model.Embedding(queries[i].first, queries[i].second);
    ASSERT_EQ(batched.cols(), row.cols());
    for (size_t j = 0; j < row.cols(); ++j) {
      EXPECT_EQ(batched.At(i, j), row.At(0, j)) << "query " << i;
    }
  }
}

}  // namespace
}  // namespace hybridgnn
