// Concurrency stress test for serve/service.cc: many producer threads
// hammer a RecommendService with mixed valid and invalid queries while
// every successful response is checked against a direct (synchronous)
// TopKRecommender call on the same query. Also exercises shutdown while
// producers are still submitting. scripts/tsan_check.sh runs this binary
// under ThreadSanitizer, which turns any batching-queue or metrics race
// into a hard failure.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "serve/embedding_store.h"
#include "serve/service.h"
#include "serve/topk.h"
#include "stream/live_store.h"
#include "tensor/tensor.h"

namespace hybridgnn {
namespace {

EmbeddingStore MakeStore(size_t num_nodes, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<EmbeddingStore::TableInit> tables(1);
  tables[0].name = "view";
  tables[0].row_to_node.resize(num_nodes);
  tables[0].data = Tensor(num_nodes, dim);
  for (NodeId v = 0; v < num_nodes; ++v) tables[0].row_to_node[v] = v;
  for (size_t i = 0; i < tables[0].data.size(); ++i) {
    tables[0].data.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
  }
  auto store =
      EmbeddingStore::FromTables("stress", num_nodes, std::move(tables));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

TEST(ServiceStressTest, ManyProducersMatchDirectRecommender) {
  constexpr size_t kNodes = 120;
  constexpr size_t kProducers = 8;
  constexpr size_t kPerProducer = 100;
  EmbeddingStore store = MakeStore(kNodes, 16, 31);
  TopKRecommender rec(&store, nullptr, TopKOptions{});
  ServiceOptions options;
  options.num_threads = 3;
  options.batch_window_ms = 0.2;  // small window: heavy batch churn
  options.max_batch_size = 5;
  RecommendService service(&rec, options);

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> ok_responses{0};
  std::atomic<size_t> expected_errors{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(900 + p);
      for (size_t i = 0; i < kPerProducer; ++i) {
        TopKQuery q;
        q.rel = 0;
        q.k = 1 + static_cast<size_t>(rng.UniformUint64(8));
        if (rng.Bernoulli(0.1)) {
          // Invalid node: must come back as a per-request error, and must
          // not poison the rest of the batch it rides in.
          q.node = kNodes + 5;
          RecommendResponse resp = service.Call(q);
          if (resp.status.ok() || !resp.items.empty()) ++mismatches;
          ++expected_errors;
          continue;
        }
        q.node = static_cast<NodeId>(rng.UniformUint64(kNodes));
        RecommendResponse resp = service.Call(q);
        auto direct = rec.Recommend(q);
        if (!resp.status.ok() || !direct.ok()) {
          ++mismatches;
          continue;
        }
        if (resp.items.size() != direct->size()) {
          ++mismatches;
          continue;
        }
        for (size_t j = 0; j < resp.items.size(); ++j) {
          if (resp.items[j].node != (*direct)[j].node ||
              resp.items[j].score != (*direct)[j].score) {
            ++mismatches;
          }
        }
        ++ok_responses;
      }
    });
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(ok_responses.load() + expected_errors.load(),
            kProducers * kPerProducer);
  MetricsSnapshot snap = service.metrics();
  EXPECT_EQ(snap.requests, kProducers * kPerProducer);
  EXPECT_EQ(snap.errors, expected_errors.load());
  EXPECT_GE(snap.batches, 1u);
  EXPECT_GE(snap.latency_p99_ms, snap.latency_p50_ms);
}

TEST(ServiceStressTest, ShutdownUnderLoadFulfillsEveryFuture) {
  EmbeddingStore store = MakeStore(60, 8, 32);
  TopKRecommender rec(&store, nullptr, TopKOptions{});
  ServiceOptions options;
  options.num_threads = 2;
  options.batch_window_ms = 2.0;
  options.max_batch_size = 16;

  constexpr size_t kProducers = 6;
  constexpr size_t kPerProducer = 40;
  std::mutex mu;
  std::vector<std::future<RecommendResponse>> futures;
  std::atomic<size_t> rejected{0};
  {
    RecommendService service(&rec, options);
    std::vector<std::thread> producers;
    std::atomic<bool> fired{false};
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        Rng rng(700 + p);
        for (size_t i = 0; i < kPerProducer; ++i) {
          TopKQuery q;
          q.node = static_cast<NodeId>(rng.UniformUint64(60));
          q.rel = 0;
          q.k = 4;
          auto f = service.Submit(q);
          std::lock_guard<std::mutex> lock(mu);
          futures.push_back(std::move(f));
        }
        // One producer pulls the plug while the others are mid-stream.
        if (p == 0 && !fired.exchange(true)) service.Shutdown();
      });
    }
    for (auto& t : producers) t.join();
  }
  // Every submitted future must resolve — either with results (drained
  // before shutdown) or with the documented shutdown error. A future left
  // unfulfilled would block forever here.
  for (auto& f : futures) {
    RecommendResponse resp = f.get();
    if (resp.status.ok()) {
      EXPECT_EQ(resp.items.size(), 4u);
    } else {
      EXPECT_EQ(resp.status.code(), StatusCode::kFailedPrecondition)
          << resp.status.ToString();
      ++rejected;
    }
  }
  EXPECT_EQ(futures.size(), kProducers * kPerProducer);
}

TEST(ServiceAdmissionTest, ShedsAtQueueCapWithResourceExhausted) {
  EmbeddingStore store = MakeStore(80, 8, 41);
  TopKRecommender rec(&store, nullptr, TopKOptions{});
  ServiceOptions options;
  options.num_threads = 1;
  options.batch_window_ms = 50.0;  // hold the window open: queue builds up
  options.max_batch_size = 64;
  options.max_queue_depth = 4;
  RecommendService service(&rec, options);

  constexpr size_t kSubmits = 30;
  std::vector<std::future<RecommendResponse>> futures;
  futures.reserve(kSubmits);
  for (size_t i = 0; i < kSubmits; ++i) {
    TopKQuery q;
    q.node = static_cast<NodeId>(i % 80);
    q.rel = 0;
    q.k = 3;
    futures.push_back(service.Submit(q));
  }
  size_t shed = 0, answered = 0;
  for (auto& f : futures) {
    RecommendResponse resp = f.get();
    if (resp.status.code() == StatusCode::kResourceExhausted) {
      ++shed;
      EXPECT_TRUE(resp.items.empty());
    } else {
      EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
      ++answered;
    }
  }
  // 30 rapid submits against a 4-deep queue and a 50ms window must shed.
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(shed + answered, kSubmits);
  MetricsSnapshot snap = service.metrics();
  EXPECT_EQ(snap.shed, shed);
  // Sheds never enter the request count or the latency histogram.
  EXPECT_EQ(snap.requests, answered);
}

TEST(ServiceAdmissionTest, ExpiredDeadlinesResolveWithoutScoring) {
  EmbeddingStore store = MakeStore(50, 8, 42);
  TopKRecommender rec(&store, nullptr, TopKOptions{});
  ServiceOptions options;
  options.num_threads = 1;
  options.batch_window_ms = 60.0;  // every deadline below expires in-queue
  options.max_batch_size = 64;
  RecommendService service(&rec, options);

  TopKQuery q;
  q.node = 7;
  q.rel = 0;
  q.k = 5;
  std::vector<std::future<RecommendResponse>> doomed;
  for (int i = 0; i < 4; ++i) {
    doomed.push_back(service.Submit(q, /*deadline_ms=*/5.0));
  }
  auto alive = service.Submit(q);  // no deadline: must be answered
  for (auto& f : doomed) {
    RecommendResponse resp = f.get();
    EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded)
        << resp.status.ToString();
    EXPECT_TRUE(resp.items.empty());
  }
  RecommendResponse ok = alive.get();
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_EQ(ok.items.size(), 5u);
  MetricsSnapshot snap = service.metrics();
  EXPECT_EQ(snap.deadline_exceeded, 4u);
  EXPECT_EQ(snap.errors, 4u);
  // The latency split satellites: both histograms saw traffic.
  EXPECT_GT(snap.queue_wait_p99_ms, 0.0);
  EXPECT_GT(snap.batch_service_p99_ms, 0.0);
}

TEST(ServiceAdmissionTest, WarmCacheServesRepeatsAndCountsHits) {
  EmbeddingStore store = MakeStore(90, 8, 43);
  TopKRecommender rec(&store, nullptr, TopKOptions{});
  ServiceOptions options;
  options.num_threads = 1;
  options.batch_window_ms = 0.0;
  options.result_cache_capacity = 8;
  RecommendService service(&rec, options);

  TopKQuery q;
  q.node = 11;
  q.rel = 0;
  q.k = 6;
  auto direct = rec.Recommend(q);
  ASSERT_TRUE(direct.ok());
  for (int round = 0; round < 3; ++round) {
    RecommendResponse resp = service.Call(q);
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    ASSERT_EQ(resp.items.size(), direct->size());
    for (size_t j = 0; j < resp.items.size(); ++j) {
      EXPECT_EQ(resp.items[j].node, (*direct)[j].node);
      EXPECT_EQ(resp.items[j].score, (*direct)[j].score);
    }
  }
  MetricsSnapshot snap = service.metrics();
  EXPECT_EQ(snap.cache_misses, 1u);
  EXPECT_EQ(snap.cache_hits, 2u);
  // A different k is a different cache entry.
  q.k = 3;
  EXPECT_TRUE(service.Call(q).status.ok());
  snap = service.metrics();
  EXPECT_EQ(snap.cache_misses, 2u);
}

TEST(ServiceAdmissionTest, CacheInvalidatesOnLivePublish) {
  EmbeddingStore seed = MakeStore(70, 8, 44);
  auto live = LiveEmbeddingStore::Create(seed, nullptr, TopKOptions{});
  ASSERT_TRUE(live.ok());
  ServiceOptions options;
  options.num_threads = 1;
  options.batch_window_ms = 0.0;
  options.result_cache_capacity = 8;
  RecommendService service(live->get(), options);

  TopKQuery q;
  q.node = 5;
  q.rel = 0;
  q.k = 4;
  EXPECT_TRUE(service.Call(q).status.ok());  // miss, fills cache
  EXPECT_TRUE(service.Call(q).status.ok());  // hit
  MetricsSnapshot snap = service.metrics();
  EXPECT_EQ(snap.cache_hits, 1u);
  EXPECT_EQ(snap.cache_misses, 1u);
  // Mutate an embedding and publish: the version key changes, so the old
  // entry is unreachable and the fresh result reflects the new tables.
  float* row = (*live)->MutableRow(0, 5);
  ASSERT_NE(row, nullptr);
  for (size_t j = 0; j < (*live)->dim(); ++j) row[j] = -row[j];
  ASSERT_TRUE((*live)->Publish(nullptr).ok());
  EXPECT_TRUE(service.Call(q).status.ok());
  snap = service.metrics();
  EXPECT_EQ(snap.cache_hits, 1u);
  EXPECT_EQ(snap.cache_misses, 2u);
}

TEST(ServiceShutdownRaceTest, ShutdownRacesOpenBatchWindow) {
  // A request sitting in a long batch window must be drained — not
  // abandoned, not stuck for the full window — when Shutdown lands
  // mid-window.
  EmbeddingStore store = MakeStore(40, 8, 45);
  TopKRecommender rec(&store, nullptr, TopKOptions{});
  ServiceOptions options;
  options.num_threads = 1;
  options.batch_window_ms = 5000.0;  // way past test patience: must not wait
  options.max_batch_size = 64;
  RecommendService service(&rec, options);
  TopKQuery q;
  q.node = 3;
  q.rel = 0;
  q.k = 2;
  auto f = service.Submit(q);
  service.Shutdown();
  RecommendResponse resp = f.get();
  EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.items.size(), 2u);
}

TEST(ServiceShutdownRaceTest, ConcurrentSubmitAndShutdown) {
  // Submits racing Shutdown (with shedding enabled and Shutdown called from
  // two threads at once) must leave every future resolved with one of the
  // three documented statuses. TSan runs this too (scripts/tsan_check.sh).
  EmbeddingStore store = MakeStore(60, 8, 46);
  TopKRecommender rec(&store, nullptr, TopKOptions{});
  ServiceOptions options;
  options.num_threads = 2;
  options.batch_window_ms = 0.5;
  options.max_batch_size = 8;
  options.max_queue_depth = 16;
  RecommendService service(&rec, options);

  constexpr size_t kProducers = 6;
  constexpr size_t kPerProducer = 50;
  std::mutex mu;
  std::vector<std::future<RecommendResponse>> futures;
  std::vector<std::thread> threads;
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(600 + p);
      for (size_t i = 0; i < kPerProducer; ++i) {
        TopKQuery q;
        q.node = static_cast<NodeId>(rng.UniformUint64(60));
        q.rel = 0;
        q.k = 3;
        auto f = service.Submit(q);
        std::lock_guard<std::mutex> lock(mu);
        futures.push_back(std::move(f));
      }
    });
  }
  // Two shutdown threads, both mid-submit-storm: Shutdown is idempotent
  // and must be safe to race with itself.
  threads.emplace_back([&] { service.Shutdown(); });
  threads.emplace_back([&] { service.Shutdown(); });
  for (auto& t : threads) t.join();

  size_t ok = 0, rejected = 0, shed = 0;
  for (auto& f : futures) {
    RecommendResponse resp = f.get();
    if (resp.status.ok()) {
      EXPECT_EQ(resp.items.size(), 3u);
      ++ok;
    } else if (resp.status.code() == StatusCode::kResourceExhausted) {
      ++shed;
    } else {
      EXPECT_EQ(resp.status.code(), StatusCode::kFailedPrecondition)
          << resp.status.ToString();
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected + shed, kProducers * kPerProducer);
}

}  // namespace
}  // namespace hybridgnn
