// Concurrency stress test for serve/service.cc: many producer threads
// hammer a RecommendService with mixed valid and invalid queries while
// every successful response is checked against a direct (synchronous)
// TopKRecommender call on the same query. Also exercises shutdown while
// producers are still submitting. scripts/tsan_check.sh runs this binary
// under ThreadSanitizer, which turns any batching-queue or metrics race
// into a hard failure.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "serve/embedding_store.h"
#include "serve/service.h"
#include "serve/topk.h"
#include "tensor/tensor.h"

namespace hybridgnn {
namespace {

EmbeddingStore MakeStore(size_t num_nodes, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<EmbeddingStore::TableInit> tables(1);
  tables[0].name = "view";
  tables[0].row_to_node.resize(num_nodes);
  tables[0].data = Tensor(num_nodes, dim);
  for (NodeId v = 0; v < num_nodes; ++v) tables[0].row_to_node[v] = v;
  for (size_t i = 0; i < tables[0].data.size(); ++i) {
    tables[0].data.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
  }
  auto store =
      EmbeddingStore::FromTables("stress", num_nodes, std::move(tables));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

TEST(ServiceStressTest, ManyProducersMatchDirectRecommender) {
  constexpr size_t kNodes = 120;
  constexpr size_t kProducers = 8;
  constexpr size_t kPerProducer = 100;
  EmbeddingStore store = MakeStore(kNodes, 16, 31);
  TopKRecommender rec(&store, nullptr, TopKOptions{});
  ServiceOptions options;
  options.num_threads = 3;
  options.batch_window_ms = 0.2;  // small window: heavy batch churn
  options.max_batch_size = 5;
  RecommendService service(&rec, options);

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> ok_responses{0};
  std::atomic<size_t> expected_errors{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(900 + p);
      for (size_t i = 0; i < kPerProducer; ++i) {
        TopKQuery q;
        q.rel = 0;
        q.k = 1 + static_cast<size_t>(rng.UniformUint64(8));
        if (rng.Bernoulli(0.1)) {
          // Invalid node: must come back as a per-request error, and must
          // not poison the rest of the batch it rides in.
          q.node = kNodes + 5;
          RecommendResponse resp = service.Call(q);
          if (resp.status.ok() || !resp.items.empty()) ++mismatches;
          ++expected_errors;
          continue;
        }
        q.node = static_cast<NodeId>(rng.UniformUint64(kNodes));
        RecommendResponse resp = service.Call(q);
        auto direct = rec.Recommend(q);
        if (!resp.status.ok() || !direct.ok()) {
          ++mismatches;
          continue;
        }
        if (resp.items.size() != direct->size()) {
          ++mismatches;
          continue;
        }
        for (size_t j = 0; j < resp.items.size(); ++j) {
          if (resp.items[j].node != (*direct)[j].node ||
              resp.items[j].score != (*direct)[j].score) {
            ++mismatches;
          }
        }
        ++ok_responses;
      }
    });
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(ok_responses.load() + expected_errors.load(),
            kProducers * kPerProducer);
  MetricsSnapshot snap = service.metrics();
  EXPECT_EQ(snap.requests, kProducers * kPerProducer);
  EXPECT_EQ(snap.errors, expected_errors.load());
  EXPECT_GE(snap.batches, 1u);
  EXPECT_GE(snap.latency_p99_ms, snap.latency_p50_ms);
}

TEST(ServiceStressTest, ShutdownUnderLoadFulfillsEveryFuture) {
  EmbeddingStore store = MakeStore(60, 8, 32);
  TopKRecommender rec(&store, nullptr, TopKOptions{});
  ServiceOptions options;
  options.num_threads = 2;
  options.batch_window_ms = 2.0;
  options.max_batch_size = 16;

  constexpr size_t kProducers = 6;
  constexpr size_t kPerProducer = 40;
  std::mutex mu;
  std::vector<std::future<RecommendResponse>> futures;
  std::atomic<size_t> rejected{0};
  {
    RecommendService service(&rec, options);
    std::vector<std::thread> producers;
    std::atomic<bool> fired{false};
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        Rng rng(700 + p);
        for (size_t i = 0; i < kPerProducer; ++i) {
          TopKQuery q;
          q.node = static_cast<NodeId>(rng.UniformUint64(60));
          q.rel = 0;
          q.k = 4;
          auto f = service.Submit(q);
          std::lock_guard<std::mutex> lock(mu);
          futures.push_back(std::move(f));
        }
        // One producer pulls the plug while the others are mid-stream.
        if (p == 0 && !fired.exchange(true)) service.Shutdown();
      });
    }
    for (auto& t : producers) t.join();
  }
  // Every submitted future must resolve — either with results (drained
  // before shutdown) or with the documented shutdown error. A future left
  // unfulfilled would block forever here.
  for (auto& f : futures) {
    RecommendResponse resp = f.get();
    if (resp.status.ok()) {
      EXPECT_EQ(resp.items.size(), 4u);
    } else {
      EXPECT_EQ(resp.status.code(), StatusCode::kFailedPrecondition)
          << resp.status.ToString();
      ++rejected;
    }
  }
  EXPECT_EQ(futures.size(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace hybridgnn
