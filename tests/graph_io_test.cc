#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/graph_io.h"
#include "test_util.h"

namespace hybridgnn {
namespace {

using testing::SmallBipartite;

class GraphIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/graph_io_test.txt";
};

TEST_F(GraphIoTest, RoundTripPreservesEverything) {
  MultiplexHeteroGraph g = SmallBipartite();
  ASSERT_TRUE(SaveGraph(g, path_).ok());
  auto loaded = LoadGraph(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  EXPECT_EQ(loaded->num_node_types(), g.num_node_types());
  EXPECT_EQ(loaded->num_relations(), g.num_relations());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(loaded->node_type(v), g.node_type(v));
  }
  for (const auto& e : g.edges()) {
    EXPECT_TRUE(loaded->HasEdge(e.src, e.dst, e.rel));
  }
  EXPECT_EQ(loaded->relation_name(1), "buy");
}

TEST_F(GraphIoTest, LoadMissingFileFails) {
  auto loaded = LoadGraph("/nonexistent/path/graph.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(GraphIoTest, RejectsUnknownRecordKind) {
  std::ofstream out(path_);
  out << "node_types user\nrelations r\nbogus line here\n";
  out.close();
  EXPECT_FALSE(LoadGraph(path_).ok());
}

TEST_F(GraphIoTest, RejectsNonDenseNodeIds) {
  std::ofstream out(path_);
  out << "node_types user\nrelations r\nnode 5 user\n";
  out.close();
  EXPECT_FALSE(LoadGraph(path_).ok());
}

TEST_F(GraphIoTest, RejectsUnknownTypeOrRelation) {
  {
    std::ofstream out(path_);
    out << "node_types user\nrelations r\nnode 0 ghost\n";
  }
  EXPECT_FALSE(LoadGraph(path_).ok());
  {
    std::ofstream out(path_);
    out << "node_types user\nrelations r\nnode 0 user\nnode 1 user\n"
        << "edge 0 1 ghost\n";
  }
  EXPECT_FALSE(LoadGraph(path_).ok());
}

TEST_F(GraphIoTest, SkipsCommentsAndBlankLines) {
  std::ofstream out(path_);
  out << "# comment\n\nnode_types user\nrelations r\n"
      << "node 0 user\nnode 1 user\nedge 0 1 r\n";
  out.close();
  auto loaded = LoadGraph(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_edges(), 1u);
}

TEST_F(GraphIoTest, StrictLoadPinpointsDoubledEdgeLine) {
  std::ofstream out(path_);
  out << "node_types user\nrelations r\n"
      << "node 0 user\nnode 1 user\n"
      << "edge 0 1 r\nedge 1 0 r\n";  // line 6 repeats the undirected edge
  out.close();
  // Lenient (the default) collapses the repeat, as it always has.
  auto lenient = LoadGraph(path_);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_EQ(lenient->num_edges(), 1u);
  // Strict rejects it with AlreadyExists and the offending line number.
  auto strict = LoadGraph(path_, LoadStrictness::kStrict);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kAlreadyExists)
      << strict.status().ToString();
  EXPECT_NE(strict.status().message().find(":6:"), std::string::npos)
      << strict.status().ToString();
}

TEST_F(GraphIoTest, SaveToUnwritablePathFails) {
  MultiplexHeteroGraph g = SmallBipartite();
  EXPECT_FALSE(SaveGraph(g, "/nonexistent/dir/out.txt").ok());
}

}  // namespace
}  // namespace hybridgnn
