// Tests for the ANN retrieval layer (src/serve/ann + the recommender's
// candidate-generation path, DESIGN.md section 17): recall against the
// exact scan across all store dtypes, byte-level construction determinism,
// filter composition / over-fetch refill, exact-fallback routing, the
// gathered-block scorer's bitwise equivalence to per-row scoring, and index
// freshness across streaming publishes. The concurrent search-during-
// publish case is a TSan target of scripts/tsan_check.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "serve/ann/ann_index.h"
#include "serve/block_scorer.h"
#include "serve/embedding_store.h"
#include "serve/topk.h"
#include "stream/live_store.h"
#include "tensor/tensor.h"

namespace hybridgnn {
namespace {

/// Single-relation random store: node id == row id, `num_nodes` rows.
EmbeddingStore MakeStore(size_t num_nodes, size_t dim, uint64_t seed) {
  Rng rng(seed);
  EmbeddingStore::TableInit t;
  t.name = "click";
  for (NodeId v = 0; v < num_nodes; ++v) t.row_to_node.push_back(v);
  t.data = Tensor(num_nodes, dim);
  for (size_t i = 0; i < t.data.size(); ++i) {
    t.data.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
  }
  std::vector<EmbeddingStore::TableInit> tables;
  tables.push_back(std::move(t));
  auto store =
      EmbeddingStore::FromTables("ann", num_nodes, std::move(tables));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

/// Type-annotated bipartite graph over `num_nodes` nodes: even ids are
/// "user" (type 0), odd ids are "item" (type 1); each user views the next
/// `fanout` items after it. Node/row spaces match MakeStore's.
MultiplexHeteroGraph MakeTypedGraph(size_t num_nodes, size_t fanout) {
  GraphBuilder b;
  EXPECT_TRUE(b.AddNodeType("user").ok());
  EXPECT_TRUE(b.AddNodeType("item").ok());
  EXPECT_TRUE(b.AddRelation("click").ok());
  for (NodeId v = 0; v < num_nodes; ++v) {
    EXPECT_TRUE(b.AddNodes(v % 2 == 0 ? 0 : 1, 1).ok());
  }
  for (NodeId u = 0; u < num_nodes; u += 2) {
    for (size_t j = 0; j < fanout; ++j) {
      const NodeId item = (u + 1 + 2 * j) % num_nodes;
      if (item % 2 == 1) {
        EXPECT_TRUE(b.AddEdge(u, item, 0).ok());
      }
    }
  }
  auto g = b.Build();
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

double RecallAt10(const std::vector<Recommendation>& exact,
                  const std::vector<Recommendation>& approx) {
  std::set<NodeId> truth;
  for (size_t i = 0; i < std::min<size_t>(10, exact.size()); ++i) {
    truth.insert(exact[i].node);
  }
  if (truth.empty()) return 1.0;
  size_t hit = 0;
  for (size_t i = 0; i < std::min<size_t>(10, approx.size()); ++i) {
    hit += truth.count(approx[i].node);
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

/// Scoped HYBRIDGNN_ANN override so these tests are immune to the
/// environment the harness runs them under (and restore it afterwards).
class ScopedAnnEnv {
 public:
  explicit ScopedAnnEnv(const char* value) {
    const char* old = std::getenv("HYBRIDGNN_ANN");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      unsetenv("HYBRIDGNN_ANN");
    } else {
      setenv("HYBRIDGNN_ANN", value, 1);
    }
  }
  ~ScopedAnnEnv() {
    if (had_old_) {
      setenv("HYBRIDGNN_ANN", old_.c_str(), 1);
    } else {
      unsetenv("HYBRIDGNN_ANN");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TopKOptions AnnOptions(size_t min_rows = 64) {
  TopKOptions o;
  o.ann = true;
  o.ann_min_rows = min_rows;
  o.ef_search = 96;
  return o;
}

// --- recall vs the exact scan, all three dtypes ---

void CheckRecall(StoreDType dtype) {
  ScopedAnnEnv env(nullptr);
  EmbeddingStore fp32 = MakeStore(3000, 32, 0xD7 + static_cast<int>(dtype));
  EmbeddingStore store = std::move(fp32);
  if (dtype != StoreDType::kF32) {
    auto q = EmbeddingStore::Quantized(store, dtype);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    store = std::move(q).value();
  }
  TopKOptions exact_opts;
  TopKRecommender exact(&store, nullptr, exact_opts);
  TopKRecommender approx(&store, nullptr, AnnOptions());
  ASSERT_TRUE(approx.ann_enabled());
  ASSERT_NE(approx.ann_indexes()[0], nullptr);

  double recall_sum = 0.0;
  const size_t kQueries = 50;
  for (NodeId v = 0; v < kQueries; ++v) {
    TopKQuery q;
    q.node = v * 37 % 3000;
    q.rel = 0;
    q.k = 10;
    auto e = exact.Recommend(q);
    auto a = approx.Recommend(q);
    ASSERT_TRUE(e.ok() && a.ok());
    // Every ANN score must equal the exact score for that node: the pool is
    // re-ranked through the same kernels, so only membership may differ.
    for (const Recommendation& r : *a) {
      auto it = std::find_if(e->begin(), e->end(), [&](const auto& x) {
        return x.node == r.node;
      });
      if (it != e->end()) {
        EXPECT_EQ(r.score, it->score) << "node " << r.node;
      }
    }
    recall_sum += RecallAt10(*e, *a);
  }
  EXPECT_GE(recall_sum / kQueries, 0.95)
      << "mean recall@10 under " << StoreDTypeName(dtype);
}

TEST(AnnIndexTest, RecallF32) { CheckRecall(StoreDType::kF32); }
TEST(AnnIndexTest, RecallF16) { CheckRecall(StoreDType::kF16); }
TEST(AnnIndexTest, RecallI8) { CheckRecall(StoreDType::kI8); }

// --- determinism: same seed + same table => byte-identical index ---

TEST(AnnIndexTest, DeterministicRebuild) {
  EmbeddingStore store = MakeStore(2000, 16, 0xBEEF);
  AnnBuildOptions opts;
  auto a = AnnIndex::Build(store, 0, opts);
  auto b = AnnIndex::Build(store, 0, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->ContentHash(), (*b)->ContentHash());
  EXPECT_EQ((*a)->entry_point(), (*b)->entry_point());
  EXPECT_EQ((*a)->max_level(), (*b)->max_level());

  AnnBuildOptions other = opts;
  other.seed = opts.seed + 1;
  auto c = AnnIndex::Build(store, 0, other);
  ASSERT_TRUE(c.ok());
  // Different seed permutes the level draws — the structure must differ.
  EXPECT_NE((*a)->ContentHash(), (*c)->ContentHash());

  // Thread count steers wall clock only: a serial build and a 4-worker
  // batch-parallel build must produce byte-identical adjacency.
  AnnBuildOptions serial = opts;
  serial.build_threads = 1;
  AnnBuildOptions wide = opts;
  wide.build_threads = 4;
  auto d = AnnIndex::Build(store, 0, serial);
  auto e = AnnIndex::Build(store, 0, wide);
  ASSERT_TRUE(d.ok() && e.ok());
  EXPECT_EQ((*d)->ContentHash(), (*e)->ContentHash());
  EXPECT_EQ((*a)->ContentHash(), (*e)->ContentHash());
  EXPECT_TRUE(serial == wide);  // interchangeable for the patch policy

  // The batch size IS structure-affecting: rows inside one batch cannot
  // see each other, so a different batching yields a different graph.
  AnnBuildOptions rebatched = opts;
  rebatched.insert_batch = 16;
  EXPECT_FALSE(opts == rebatched);
  auto f = AnnIndex::Build(store, 0, rebatched);
  ASSERT_TRUE(f.ok());
  EXPECT_NE((*a)->ContentHash(), (*f)->ContentHash());
}

TEST(AnnIndexTest, BuildValidates) {
  EmbeddingStore store = MakeStore(16, 8, 1);
  AnnBuildOptions opts;
  EXPECT_FALSE(AnnIndex::Build(store, 7, opts).ok());  // bad relation
  opts.M = 1;
  EXPECT_FALSE(AnnIndex::Build(store, 0, opts).ok());  // M too small
  opts.M = 16;
  opts.ef_construction = 4;
  EXPECT_FALSE(AnnIndex::Build(store, 0, opts).ok());  // ef_c < M
}

// --- filter composition: exclusions never surface, over-fetch refills ---

TEST(AnnRecommenderTest, FiltersComposeAndOverFetchRefills) {
  ScopedAnnEnv env(nullptr);
  const size_t kNodes = 2048;
  EmbeddingStore store = MakeStore(kNodes, 16, 0xF1);
  MultiplexHeteroGraph g = MakeTypedGraph(kNodes, 6);
  TopKOptions opts = AnnOptions();
  TopKRecommender exact(&store, &g, TopKOptions{});
  TopKRecommender approx(&store, &g, opts);
  ASSERT_TRUE(approx.ann_enabled());

  for (NodeId u = 0; u < 40; u += 2) {
    TopKQuery q;
    q.node = u;
    q.rel = 0;
    q.k = 10;
    q.candidate_type = 1;  // items only
    q.exclude_train_neighbors = true;
    auto res = approx.Recommend(q);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    // Over-fetch must leave a full k after the type + neighbor filters ate
    // their share (the table has ~1024 items, far more than k).
    EXPECT_EQ(res->size(), q.k);
    auto nbrs = g.Neighbors(u, 0);
    for (const Recommendation& r : *res) {
      EXPECT_NE(r.node, u);
      EXPECT_EQ(g.node_type(r.node), NodeTypeId{1}) << r.node;
      EXPECT_FALSE(std::binary_search(nbrs.begin(), nbrs.end(), r.node))
          << "train neighbor " << r.node << " leaked into results";
    }
  }
}

TEST(AnnRecommenderTest, DeltaEdgeExclusionsHold) {
  ScopedAnnEnv env(nullptr);
  const size_t kNodes = 2048;
  EmbeddingStore store = MakeStore(kNodes, 16, 0xF2);
  // Exclude the exact top-5 of node 0, forcing the ANN pool to refill from
  // deeper candidates.
  TopKRecommender exact(&store, nullptr, TopKOptions{});
  TopKQuery q;
  q.node = 0;
  q.rel = 0;
  q.k = 5;
  auto top = exact.Recommend(q);
  ASSERT_TRUE(top.ok());
  DeltaEdgeFilter filter(store.num_relations());
  for (const Recommendation& r : *top) {
    ASSERT_TRUE(filter.AddEdge(0, r.node, 0));
  }
  TopKRecommender approx(&store, nullptr, AnnOptions(), &filter);
  q.k = 10;
  auto res = approx.Recommend(q);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->size(), q.k);
  for (const Recommendation& r : *res) {
    for (const Recommendation& banned : *top) {
      EXPECT_NE(r.node, banned.node) << "excluded candidate surfaced";
    }
  }
}

// --- fallback routing ---

TEST(AnnRecommenderTest, SmallTableRoutesToExactScan) {
  ScopedAnnEnv env(nullptr);
  EmbeddingStore store = MakeStore(256, 16, 0xAB);
  TopKOptions opts = AnnOptions(/*min_rows=*/4096);  // table far below floor
  TopKRecommender approx(&store, nullptr, opts);
  TopKRecommender exact(&store, nullptr, TopKOptions{});
  EXPECT_TRUE(approx.ann_enabled());
  ASSERT_EQ(approx.ann_indexes().size(), store.num_relations());
  EXPECT_EQ(approx.ann_indexes()[0], nullptr);  // never indexed
  for (NodeId v : {NodeId{0}, NodeId{17}, NodeId{255}}) {
    TopKQuery q;
    q.node = v;
    q.rel = 0;
    q.k = 10;
    auto a = approx.Recommend(q);
    auto e = exact.Recommend(q);
    ASSERT_TRUE(a.ok() && e.ok());
    // Unindexed relation must reproduce the exact scan bit for bit.
    ASSERT_EQ(a->size(), e->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].node, (*e)[i].node);
      EXPECT_EQ((*a)[i].score, (*e)[i].score);
    }
  }
}

TEST(AnnRecommenderTest, EnvOffReproducesExactPath) {
  EmbeddingStore store = MakeStore(2048, 16, 0xC4);
  std::vector<Recommendation> baseline;
  {
    ScopedAnnEnv env(nullptr);
    TopKRecommender exact(&store, nullptr, TopKOptions{});
    TopKQuery q;
    q.node = 3;
    q.rel = 0;
    q.k = 10;
    auto r = exact.Recommend(q);
    ASSERT_TRUE(r.ok());
    baseline = *r;
  }
  {
    // HYBRIDGNN_ANN=off overrides TopKOptions::ann: no index is built and
    // results are bitwise the exact scan's.
    ScopedAnnEnv env("off");
    TopKRecommender rec(&store, nullptr, AnnOptions());
    EXPECT_FALSE(rec.ann_enabled());
    EXPECT_TRUE(rec.ann_indexes().empty());
    TopKQuery q;
    q.node = 3;
    q.rel = 0;
    q.k = 10;
    auto r = rec.Recommend(q);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->size(), baseline.size());
    for (size_t i = 0; i < r->size(); ++i) {
      EXPECT_EQ((*r)[i].node, baseline[i].node);
      EXPECT_EQ((*r)[i].score, baseline[i].score);
    }
  }
  {
    // And =on force-enables against options that said off.
    ScopedAnnEnv env("on");
    TopKOptions opts;
    opts.ann = false;
    opts.ann_min_rows = 64;
    TopKRecommender rec(&store, nullptr, opts);
    EXPECT_TRUE(rec.ann_enabled());
    EXPECT_NE(rec.ann_indexes()[0], nullptr);
  }
}

// --- gathered-block scoring: bitwise equal to per-row scoring ---

void CheckGatherEquivalence(StoreDType dtype) {
  EmbeddingStore fp32 = MakeStore(700, 24, 0x9A + static_cast<int>(dtype));
  EmbeddingStore store = std::move(fp32);
  if (dtype != StoreDType::kF32) {
    auto q = EmbeddingStore::Quantized(store, dtype);
    ASSERT_TRUE(q.ok());
    store = std::move(q).value();
  }
  std::vector<float> query(store.dim());
  store.DequantizeRow(0, 11, query.data());
  BlockScorer scorer(&store, 0, query.data());
  // A scattered, unsorted, duplicate-bearing row set.
  std::vector<uint32_t> rows;
  Rng rng(0x5C);
  for (size_t i = 0; i < BlockScorer::kBlockRows; ++i) {
    rows.push_back(static_cast<uint32_t>(rng.UniformInt(0, 699)));
  }
  std::vector<double> gathered(rows.size());
  scorer.ScoreRows(rows.data(), rows.size(), gathered.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    double one = 0.0;
    scorer.ScoreRange(rows[i], 1, &one);
    // Bitwise: the block kernels accumulate each row independently, so
    // gathering rows into a scratch buffer must not change a single ulp.
    EXPECT_EQ(gathered[i], one) << "row " << rows[i] << " under "
                                << StoreDTypeName(dtype);
  }
}

TEST(BlockScorerTest, GatherBitwiseEqualF32) {
  CheckGatherEquivalence(StoreDType::kF32);
}
TEST(BlockScorerTest, GatherBitwiseEqualF16) {
  CheckGatherEquivalence(StoreDType::kF16);
}
TEST(BlockScorerTest, GatherBitwiseEqualI8) {
  CheckGatherEquivalence(StoreDType::kI8);
}

TEST(BlockScorerTest, TypedScanMatchesUnfilteredScores) {
  // The type-filtered gather path must assign every returned node the same
  // score the dense scan assigns it.
  ScopedAnnEnv env(nullptr);
  const size_t kNodes = 1024;
  EmbeddingStore store = MakeStore(kNodes, 16, 0x77);
  MultiplexHeteroGraph g = MakeTypedGraph(kNodes, 2);
  TopKRecommender rec(&store, &g, TopKOptions{});
  TopKQuery dense;
  dense.node = 0;
  dense.rel = 0;
  dense.k = kNodes;  // everything, unfiltered
  dense.exclude_train_neighbors = false;
  auto all = rec.Recommend(dense);
  ASSERT_TRUE(all.ok());
  TopKQuery typed = dense;
  typed.candidate_type = 1;
  auto items = rec.Recommend(typed);
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(items->size(), kNodes / 2);
  for (const Recommendation& r : *items) {
    auto it = std::find_if(all->begin(), all->end(), [&](const auto& x) {
      return x.node == r.node;
    });
    ASSERT_NE(it, all->end());
    EXPECT_EQ(r.score, it->score) << "node " << r.node;
  }
}

// --- satellite: query validation ---

TEST(AnnRecommenderTest, OutOfRangeNodeIsInvalidArgument) {
  ScopedAnnEnv env(nullptr);
  const size_t kNodes = 128;
  EmbeddingStore store = MakeStore(kNodes, 8, 0x31);
  MultiplexHeteroGraph g = MakeTypedGraph(kNodes, 2);
  TopKRecommender rec(&store, &g, TopKOptions{});
  TopKQuery q;
  q.node = kNodes + 5;  // beyond both graph and store id space
  q.rel = 0;
  q.k = 10;
  EXPECT_EQ(rec.Recommend(q).status().code(), StatusCode::kInvalidArgument);
  // In range but absent from the table stays NotFound (graphless).
  TopKRecommender graphless(&store, nullptr, TopKOptions{});
  q.node = kNodes + 5;
  EXPECT_EQ(graphless.Recommend(q).status().code(), StatusCode::kNotFound);
}

// --- publish-time freshness and the concurrent search/publish race ---

TEST(AnnLiveStoreTest, PublishedIndexSeesStreamedInNode) {
  ScopedAnnEnv env(nullptr);
  const size_t kNodes = 1500;
  EmbeddingStore store = MakeStore(kNodes, 16, 0x88);
  TopKOptions opts = AnnOptions();
  auto live = LiveEmbeddingStore::Create(store, nullptr, opts);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  auto v1 = (*live)->Acquire();
  ASSERT_TRUE(v1->recommender->ann_enabled());
  const AnnIndex* index1 = v1->recommender->ann_indexes()[0].get();
  ASSERT_NE(index1, nullptr);

  // Stream in a brand-new node whose vector clones node 7's: it must land
  // in node 7's neighborhood of the patched index immediately.
  const NodeId fresh = kNodes + 10;
  auto ensured = (*live)->EnsureRow(0, fresh);
  ASSERT_TRUE(ensured.ok());
  float* row = (*live)->MutableRow(0, fresh);
  const float* donor = (*live)->Row(0, 7);
  for (size_t j = 0; j < (*live)->dim(); ++j) row[j] = donor[j];
  ASSERT_TRUE((*live)->Publish(nullptr).ok());

  auto v2 = (*live)->Acquire();
  const AnnIndex* index2 = v2->recommender->ann_indexes()[0].get();
  ASSERT_NE(index2, nullptr);
  EXPECT_EQ(index2->num_rows(), index1->num_rows() + 1);

  TopKQuery q;
  q.node = 7;
  q.rel = 0;
  q.k = 5;
  q.exclude_train_neighbors = false;
  auto res = v2->recommender->Recommend(q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_FALSE(res->empty());
  // An exact clone of the query vector dominates every random dot product.
  EXPECT_EQ(res->front().node, fresh);

  // An untouched publish shares the index outright instead of rebuilding.
  ASSERT_TRUE((*live)->Publish(nullptr).ok());
  auto v3 = (*live)->Acquire();
  EXPECT_EQ(v3->recommender->ann_indexes()[0].get(), index2);
}

TEST(AnnLiveStoreTest, ConcurrentSearchDuringPublish) {
  ScopedAnnEnv env(nullptr);
  const size_t kNodes = 1200;
  EmbeddingStore store = MakeStore(kNodes, 8, 0x99);
  TopKOptions opts = AnnOptions();
  opts.num_threads = 1;
  auto created = LiveEmbeddingStore::Create(store, nullptr, opts);
  ASSERT_TRUE(created.ok());
  LiveEmbeddingStore* live = created->get();

  std::atomic<bool> stop{false};
  std::atomic<size_t> queries{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto version = live->Acquire();
        TopKQuery q;
        q.node = static_cast<NodeId>(
            rng.UniformInt(0, static_cast<int64_t>(kNodes) - 1));
        q.rel = 0;
        q.k = 10;
        auto res = version->recommender->Recommend(q);
        EXPECT_TRUE(res.ok()) << res.status().ToString();
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Writer: mutate a few rows and publish, repeatedly — every publish
  // patches or rebuilds the index while the readers traverse the old one.
  Rng rng(7);
  for (int pub = 0; pub < 12; ++pub) {
    for (int i = 0; i < 5; ++i) {
      float* row = live->MutableRow(
          0, static_cast<NodeId>(
                 rng.UniformInt(0, static_cast<int64_t>(kNodes) - 1)));
      ASSERT_NE(row, nullptr);
      row[0] += 0.25f;
    }
    ASSERT_TRUE(live->Publish(nullptr).ok());
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(live->version(), 13u);
}

TEST(AnnIndexTest, PatchMatchesFullBuildQuality) {
  // A patched index must keep serving sane results for the moved rows.
  EmbeddingStore before = MakeStore(1024, 16, 0x42);
  AnnBuildOptions opts;
  auto base = AnnIndex::Build(before, 0, opts);
  ASSERT_TRUE(base.ok());

  // "Move" rows 3 and 500 by rebuilding the store with fresh vectors there.
  Rng rng(0x43);
  EmbeddingStore::TableInit t;
  t.name = "click";
  auto nodes = before.RowNodes(0);
  t.row_to_node.assign(nodes.begin(), nodes.end());
  t.data = Tensor(before.NumRows(0), before.dim());
  auto src = before.Table(0);
  std::copy(src.begin(), src.end(), t.data.data());
  for (uint32_t moved : {3u, 500u}) {
    for (size_t j = 0; j < before.dim(); ++j) {
      t.data.data()[moved * before.dim() + j] = rng.UniformFloat(-1.0f, 1.0f);
    }
  }
  std::vector<EmbeddingStore::TableInit> tables;
  tables.push_back(std::move(t));
  auto after = EmbeddingStore::FromTables("ann", before.num_nodes(),
                                          std::move(tables));
  ASSERT_TRUE(after.ok());

  const std::vector<uint32_t> dirty = {3, 500};
  auto patched = AnnIndex::Patched(**base, *after, 0, dirty);
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();
  EXPECT_EQ((*patched)->num_rows(), (*base)->num_rows());

  // The moved row must be findable: search with its own vector as query.
  std::vector<float> query(after->dim());
  after->DequantizeRow(0, 3, query.data());
  BlockScorer scorer(&*after, 0, query.data());
  std::vector<uint32_t> pool;
  (*patched)->Search(scorer, 32, {}, &pool, nullptr);
  EXPECT_NE(std::find(pool.begin(), pool.end(), 3u), pool.end())
      << "re-linked row unreachable after patch";
}

}  // namespace
}  // namespace hybridgnn
