// LiveEmbeddingStore tests: staging-until-publish visibility, RCU-style
// snapshot pinning across publishes, exclusion-filter rebuild on swap, the
// RecommendService live-source path, and the headline race surface —
// concurrent ingest/publish against serving reads (run under TSan by
// scripts/tsan_check.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "serve/embedding_store.h"
#include "serve/service.h"
#include "serve/topk.h"
#include "stream/delta_log.h"
#include "stream/live_store.h"
#include "stream/overlay.h"
#include "stream/refresher.h"
#include "tensor/tensor.h"

namespace hybridgnn {
namespace {

/// Bipartite fixture: users 0-3, items 4-7, relations view / buy.
MultiplexHeteroGraph MakeGraph() {
  GraphBuilder b;
  EXPECT_TRUE(b.AddNodeType("user").ok());
  EXPECT_TRUE(b.AddNodeType("item").ok());
  EXPECT_TRUE(b.AddRelation("view").ok());
  EXPECT_TRUE(b.AddRelation("buy").ok());
  EXPECT_TRUE(b.AddNodes(0, 4).ok());
  EXPECT_TRUE(b.AddNodes(1, 4).ok());
  const NodeId view_edges[][2] = {{0, 4}, {0, 5}, {1, 4}, {1, 6},
                                  {2, 5}, {2, 7}, {3, 6}};
  for (const auto& e : view_edges) EXPECT_TRUE(b.AddEdge(e[0], e[1], 0).ok());
  EXPECT_TRUE(b.AddEdge(0, 4, 1).ok());
  EXPECT_TRUE(b.AddEdge(2, 7, 1).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

EmbeddingStore MakeStore(const MultiplexHeteroGraph& g, size_t dim,
                         uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> identity(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) identity[v] = v;
  std::vector<EmbeddingStore::TableInit> tables;
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    EmbeddingStore::TableInit t;
    t.name = g.relation_name(r);
    t.row_to_node = identity;
    t.data = Tensor(g.num_nodes(), dim);
    for (size_t i = 0; i < t.data.size(); ++i) {
      t.data.data()[i] = rng.UniformFloat(-0.5f, 0.5f);
    }
    tables.push_back(std::move(t));
  }
  auto store =
      EmbeddingStore::FromTables("live", g.num_nodes(), std::move(tables));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

std::unique_ptr<LiveEmbeddingStore> MakeLive(const MultiplexHeteroGraph& g,
                                             const EmbeddingStore& store,
                                             size_t threads = 1) {
  TopKOptions options;
  options.num_threads = threads;
  auto live = LiveEmbeddingStore::Create(store, &g, options);
  EXPECT_TRUE(live.ok()) << live.status().ToString();
  return std::move(live).value();
}

bool Recommends(const TopKRecommender& rec, NodeId user, NodeId item) {
  TopKQuery q;
  q.node = user;
  q.rel = 0;
  q.k = 8;
  q.candidate_type = 1;
  auto result = rec.Recommend(q);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  for (const Recommendation& r : *result) {
    if (r.node == item) return true;
  }
  return false;
}

TEST(LiveStoreTest, StagingInvisibleUntilPublish) {
  MultiplexHeteroGraph g = MakeGraph();
  EmbeddingStore store = MakeStore(g, 8, 3);
  auto live = MakeLive(g, store);
  EXPECT_EQ(live->version(), 1u);

  auto v1 = live->Acquire();
  ASSERT_NE(v1, nullptr);
  const float before = v1->store.Lookup(4, 0)[0];

  float* row = live->MutableRow(0, 4);
  ASSERT_NE(row, nullptr);
  row[0] = before + 42.0f;
  // The published snapshot is a frozen copy — staging writes do not leak.
  EXPECT_EQ(live->Acquire()->store.Lookup(4, 0)[0], before);

  ASSERT_TRUE(live->Publish(nullptr).ok());
  EXPECT_EQ(live->version(), 2u);
  EXPECT_EQ(live->Acquire()->store.Lookup(4, 0)[0], before + 42.0f);
  // The pinned old version still reads its own bits.
  EXPECT_EQ(v1->store.Lookup(4, 0)[0], before);
  EXPECT_EQ(v1->sequence, 1u);
}

TEST(LiveStoreTest, EnsureRowMakesUnknownNodeServable) {
  MultiplexHeteroGraph g = MakeGraph();
  EmbeddingStore store = MakeStore(g, 8, 5);
  auto live = MakeLive(g, store);

  EXPECT_EQ(live->Row(0, 99), nullptr);
  auto row = live->EnsureRow(0, 99);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  EXPECT_TRUE(row->appended);
  const float* data = live->Row(0, 99);
  ASSERT_NE(data, nullptr);
  for (size_t j = 0; j < live->dim(); ++j) EXPECT_EQ(data[j], 0.0f);
  // Idempotent: same row on re-ensure, and not reported as fresh.
  auto again = live->EnsureRow(0, 99);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->row, row->row);
  EXPECT_FALSE(again->appended);

  ASSERT_TRUE(live->Publish(nullptr).ok());
  EXPECT_NE(live->Acquire()->store.Lookup(99, 0), nullptr);
}

TEST(LiveStoreTest, FilterRebuildOnSwapHidesStreamedEdges) {
  MultiplexHeteroGraph g = MakeGraph();
  EmbeddingStore store = MakeStore(g, 8, 7);
  auto live = MakeLive(g, store);
  DynamicGraphOverlay overlay(&g);

  // Before the stream: item 7 is not a training neighbor of user 0, so it
  // is a legal recommendation; item 4 is excluded by the base graph.
  {
    auto version = live->Acquire();
    EXPECT_TRUE(Recommends(*version->recommender, 0, 7));
    EXPECT_FALSE(Recommends(*version->recommender, 0, 4));
  }
  auto applied =
      overlay.Apply(std::vector<GraphDelta>{GraphDelta::AddEdge(0, 7, 0)});
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ASSERT_TRUE(live->Publish(&overlay).ok());
  {
    auto version = live->Acquire();
    ASSERT_NE(version->filter, nullptr);
    EXPECT_EQ(version->filter->num_edges(), 1u);
    // The streamed interaction is now "already has" — filtered out.
    EXPECT_FALSE(Recommends(*version->recommender, 0, 7));
    EXPECT_FALSE(Recommends(*version->recommender, 0, 4));
    EXPECT_TRUE(Recommends(*version->recommender, 0, 6));
  }
}

TEST(LiveStoreTest, ServiceOnLiveSourceSeesPublishes) {
  MultiplexHeteroGraph g = MakeGraph();
  EmbeddingStore store = MakeStore(g, 8, 9);
  auto live = MakeLive(g, store);
  DynamicGraphOverlay overlay(&g);
  IncrementalRefresher refresher(&overlay, live.get(), RefreshOptions{});

  ServiceOptions options;
  options.num_threads = 2;
  options.batch_window_ms = 0.2;
  RecommendService service(live.get(), options);

  TopKQuery q;
  q.node = 0;
  q.rel = 0;
  q.k = 8;
  q.candidate_type = 1;
  auto contains = [&](NodeId item) {
    RecommendResponse resp = service.Call(q);
    EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
    for (const auto& r : resp.items) {
      if (r.node == item) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(7));
  auto stats = refresher.IngestBatch(
      std::vector<GraphDelta>{GraphDelta::AddEdge(0, 7, 0)});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // The very next call scores against the refreshed snapshot: the streamed
  // edge is excluded without restarting the service.
  EXPECT_FALSE(contains(7));
}

TEST(LiveStoreTest, CosineNormCarryForwardMatchesFullRecompute) {
  // The O(touched * dim) norm maintenance on Publish must be invisible:
  // every published recommender's row_norms() has to equal (exactly, float
  // for float) what a from-scratch recommender computes over the same
  // published tables. Exercises all three carry paths — touched rows
  // (recomputed), untouched rows (carried), appended rows (beyond the
  // previous norm vector, always recomputed).
  MultiplexHeteroGraph g = MakeGraph();
  EmbeddingStore store = MakeStore(g, 12, 77);
  TopKOptions options;
  options.num_threads = 1;
  options.cosine = true;
  auto live = LiveEmbeddingStore::Create(store, &g, options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  auto expect_norms_match_recompute = [&](const char* round) {
    auto version = (*live)->Acquire();
    ASSERT_NE(version->recommender, nullptr) << round;
    TopKRecommender fresh(&version->store, &g, options);
    const auto& carried = version->recommender->row_norms();
    const auto& computed = fresh.row_norms();
    ASSERT_EQ(carried.size(), computed.size()) << round;
    for (size_t r = 0; r < carried.size(); ++r) {
      ASSERT_EQ(carried[r].size(), computed[r].size())
          << round << " relation " << r;
      for (size_t i = 0; i < carried[r].size(); ++i) {
        EXPECT_EQ(carried[r][i], computed[r][i])
            << round << " relation " << r << " row " << i;
      }
    }
  };

  // Round 1: rescale one row, append and fill a row for a streamed-in node.
  float* touched = (*live)->MutableRow(0, 2);
  ASSERT_NE(touched, nullptr);
  for (size_t j = 0; j < (*live)->dim(); ++j) touched[j] *= 3.0f;
  auto ensured = (*live)->EnsureRow(0, 42);
  ASSERT_TRUE(ensured.ok()) << ensured.status().ToString();
  float* appended = (*live)->MutableRow(0, 42);
  ASSERT_NE(appended, nullptr);
  for (size_t j = 0; j < (*live)->dim(); ++j) {
    appended[j] = 0.25f * static_cast<float>(j + 1);
  }
  ASSERT_TRUE((*live)->Publish(nullptr).ok());
  expect_norms_match_recompute("round 1 (touch + append)");

  // Round 2: publish with nothing touched — every norm is carried.
  ASSERT_TRUE((*live)->Publish(nullptr).ok());
  expect_norms_match_recompute("round 2 (no-op publish)");

  // Round 3: dirty a row under the *other* relation only.
  float* buy_row = (*live)->MutableRow(1, 5);
  ASSERT_NE(buy_row, nullptr);
  for (size_t j = 0; j < (*live)->dim(); ++j) buy_row[j] = -buy_row[j];
  ASSERT_TRUE((*live)->Publish(nullptr).ok());
  expect_norms_match_recompute("round 3 (second relation)");
}

TEST(LiveStoreTest, ConcurrentIngestAndServingAgree) {
  MultiplexHeteroGraph g = MakeGraph();
  EmbeddingStore store = MakeStore(g, 16, 11);
  auto live = MakeLive(g, store);
  DynamicGraphOverlay overlay(&g);

  constexpr int kPublishes = 60;
  constexpr int kReaderLoops = 120;
  std::atomic<bool> done{false};

  // Writer: the single-ingest-thread contract — mutate staging, publish.
  std::thread writer([&] {
    Rng rng(23);
    for (int i = 0; i < kPublishes; ++i) {
      for (RelationId r = 0; r < live->num_relations(); ++r) {
        const NodeId v = static_cast<NodeId>(rng.UniformUint64(8));
        float* row = live->MutableRow(r, v);
        ASSERT_NE(row, nullptr);
        for (size_t j = 0; j < live->dim(); ++j) row[j] += 0.001f;
      }
      ASSERT_TRUE(live->Publish(&overlay).ok());
    }
    done.store(true, std::memory_order_release);
  });

  // Readers: pin a snapshot, score a batch against it, verify the pinned
  // version stays self-consistent while publishes race past it.
  std::vector<std::thread> readers;
  std::atomic<uint64_t> max_seen{0};
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::vector<TopKQuery> queries;
      for (NodeId u = 0; u < 4; ++u) {
        TopKQuery q;
        q.node = u;
        q.rel = t % 2;
        q.k = 4;
        q.candidate_type = 1;
        queries.push_back(q);
      }
      for (int i = 0; i < kReaderLoops || !done.load(std::memory_order_acquire);
           ++i) {
        RecommenderSource::Pinned pinned = live->AcquireRecommender();
        ASSERT_NE(pinned.recommender, nullptr);
        auto results = pinned.recommender->RecommendBatch(queries, nullptr);
        ASSERT_EQ(results.size(), queries.size());
        for (const auto& r : results) {
          ASSERT_TRUE(r.ok()) << r.status().ToString();
        }
        auto version = live->Acquire();
        uint64_t seen = max_seen.load(std::memory_order_relaxed);
        while (version->sequence > seen &&
               !max_seen.compare_exchange_weak(seen, version->sequence,
                                               std::memory_order_relaxed)) {
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(live->version(), static_cast<uint64_t>(kPublishes) + 1);
  EXPECT_GT(max_seen.load(), 1u);
}

}  // namespace
}  // namespace hybridgnn
