// Cross-model consistency of the batched scoring API (closes a gap left by
// the PR-1 batched rewrite): for every registered model,
//
//   * EmbeddingsFor must gather exactly what per-query Embedding returns,
//   * ScoreMany must equal per-element Score, and
//   * ScoreMany must equal per-pair double-precision dot products of the
//     EmbeddingsFor rows — the contract the serving tier's frozen tables
//     rely on. The one documented exception is R-GCN, whose DistMult
//     decoder is not a plain dot (eval/embedding_model.h requires such
//     models to override ScoreMany, and this test pins that its override
//     really is Score applied element-wise).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <vector>

#include "baselines/registry.h"
#include "data/profiles.h"
#include "data/split.h"

namespace hybridgnn {
namespace {

class ModelConsistencyTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    auto ds = MakeDataset("taobao", 0.08, 31);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new Dataset(std::move(ds).value());
    Rng rng(32);
    auto split = SplitEdges(dataset_->graph, SplitOptions{}, rng);
    ASSERT_TRUE(split.ok()) << split.status().ToString();
    split_ = new LinkSplit(std::move(split).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete split_;
    dataset_ = nullptr;
    split_ = nullptr;
  }

  static ModelBudget TinyBudget() {
    ModelBudget b;
    b.effort = 0.25;
    b.num_walks = 2;
    b.walk_length = 5;
    b.window = 2;
    b.max_pairs_per_epoch = 2000;
    return b;
  }

  static Dataset* dataset_;
  static LinkSplit* split_;
};

Dataset* ModelConsistencyTest::dataset_ = nullptr;
LinkSplit* ModelConsistencyTest::split_ = nullptr;

TEST_P(ModelConsistencyTest, BatchedApisAgreeWithScalarApis) {
  const std::string& name = GetParam();
  auto model = CreateModel(name, dataset_->schemes, 33, TinyBudget());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_TRUE((*model)->Fit(split_->train_graph).ok());

  // A mixed bag of held-out positives and negatives.
  std::vector<EdgeTriple> queries;
  for (size_t i = 0; i < split_->test_pos.size() && queries.size() < 40;
       i += 3) {
    queries.push_back(split_->test_pos[i]);
  }
  for (size_t i = 0; i < split_->test_neg.size() && queries.size() < 80;
       i += 3) {
    queries.push_back(split_->test_neg[i]);
  }
  ASSERT_FALSE(queries.empty());

  // EmbeddingsFor == per-query Embedding, exactly.
  std::vector<std::pair<NodeId, RelationId>> lhs, rhs;
  for (const auto& q : queries) {
    lhs.emplace_back(q.src, q.rel);
    rhs.emplace_back(q.dst, q.rel);
  }
  const Tensor eu = (*model)->EmbeddingsFor(lhs);
  const Tensor ev = (*model)->EmbeddingsFor(rhs);
  ASSERT_EQ(eu.rows(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const Tensor row = (*model)->Embedding(lhs[i].first, lhs[i].second);
    ASSERT_EQ(row.cols(), eu.cols());
    for (size_t j = 0; j < row.cols(); ++j) {
      ASSERT_EQ(row.At(0, j), eu.At(i, j))
          << name << ": EmbeddingsFor row " << i << " col " << j;
    }
  }

  // ScoreMany == per-element Score.
  const std::vector<double> batched = (*model)->ScoreMany(queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const double scalar =
        (*model)->Score(queries[i].src, queries[i].dst, queries[i].rel);
    ASSERT_NEAR(batched[i], scalar, 1e-9) << name << ": query " << i;
  }

  // ScoreMany == per-pair dot of the EmbeddingsFor rows — the frozen-table
  // serving contract. R-GCN's DistMult decoder is the documented exception.
  if (name == "R-GCN") return;
  for (size_t i = 0; i < queries.size(); ++i) {
    double dot = 0.0;
    for (size_t j = 0; j < eu.cols(); ++j) {
      dot += static_cast<double>(eu.At(i, j)) * ev.At(i, j);
    }
    ASSERT_NEAR(batched[i], dot, 1e-9) << name << ": query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelConsistencyTest,
                         ::testing::ValuesIn(AllModelNames()),
                         [](const auto& info) {
                           std::string s = info.param;
                           for (char& c : s) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return s;
                         });

}  // namespace
}  // namespace hybridgnn
