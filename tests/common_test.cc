#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <set>

#include "common/env.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/string_util.h"
#include "common/threadpool.h"
#include "common/timer.h"

namespace hybridgnn {
namespace {

// ---------- Status ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

Status FailsThenPropagates() {
  HYBRIDGNN_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

// ---------- StatusOr ----------

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, OkStatusIsNormalizedToInternal) {
  StatusOr<int> v = Status::OK();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

StatusOr<int> Doubled(StatusOr<int> in) {
  HYBRIDGNN_ASSIGN_OR_RETURN(int x, in);
  return 2 * x;
}

TEST(StatusOrTest, AssignOrReturnWorks) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_FALSE(Doubled(Status::NotFound("x")).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

// ---------- Rng ----------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformUint64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
}

TEST(RngTest, UniformUint64CoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformUint64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformUint64IsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformUint64(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalHasRightMoments) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, PowerLawWithinRangeAndSkewed) {
  Rng rng(29);
  size_t ones = 0;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.PowerLaw(2.0, 100);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 100u);
    if (v == 1) ++ones;
  }
  // Power law with alpha=2 puts ~half the mass at 1.
  EXPECT_GT(ones, 1500u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(41);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.NextUint64() == c2.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// ---------- string_util ----------

TEST(StringUtilTest, SplitBasic) {
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitNoDelimiter) {
  std::vector<std::string> parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64(" -7 ").value(), -7);
  EXPECT_FALSE(ParseInt64("4x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

// ---------- Env / Timer ----------

TEST(EnvTest, FallbacksAndParsing) {
  ::unsetenv("HYBRIDGNN_TEST_VAR");
  EXPECT_EQ(GetEnvInt("HYBRIDGNN_TEST_VAR", 5), 5);
  ::setenv("HYBRIDGNN_TEST_VAR", "12", 1);
  EXPECT_EQ(GetEnvInt("HYBRIDGNN_TEST_VAR", 5), 12);
  ::setenv("HYBRIDGNN_TEST_VAR", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("HYBRIDGNN_TEST_VAR", 1.0), 2.5);
  ::setenv("HYBRIDGNN_TEST_VAR", "abc", 1);
  EXPECT_EQ(GetEnvInt("HYBRIDGNN_TEST_VAR", 5), 5);
  EXPECT_EQ(GetEnvString("HYBRIDGNN_TEST_VAR", "d"), "abc");
  ::unsetenv("HYBRIDGNN_TEST_VAR");
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  t.Reset();
  EXPECT_LT(t.ElapsedMillis(), 1000.0);
}

}  // namespace
}  // namespace hybridgnn
