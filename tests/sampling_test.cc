#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "graph/graph.h"
#include "sampling/alias.h"
#include "sampling/corpus.h"
#include "sampling/exploration.h"
#include "sampling/negative_sampler.h"
#include "sampling/neighbor_sampler.h"
#include "sampling/sgns.h"
#include "sampling/walker.h"
#include "test_util.h"

namespace hybridgnn {

/// Test-only peer (befriended by MultiplexHeteroGraph): desyncs the CSR
/// adjacency from the active-relation table, a state Build() never produces
/// but filtered or partially loaded graphs can.
struct GraphTestPeer {
  static void ClearRelationAdjacency(MultiplexHeteroGraph& g, RelationId r) {
    g.adjacency_[r].clear();
    std::fill(g.offsets_[r].begin(), g.offsets_[r].end(), 0);
    // active_rels_ is deliberately left stale.
  }
};

namespace {

using testing::SmallBipartite;
using testing::UiuScheme;

// ---------- AliasTable ----------

TEST(AliasTableTest, MatchesWeights) {
  Rng rng(1);
  AliasTable table({1.0, 3.0, 6.0});
  constexpr int kDraws = 60000;
  std::map<size_t, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[table.Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.6, 0.02);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  Rng rng(2);
  AliasTable table({0.0, 1.0, 0.0});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.Sample(rng), 1u);
}

TEST(AliasTableTest, SingleElement) {
  Rng rng(3);
  AliasTable table({2.5});
  EXPECT_EQ(table.Sample(rng), 0u);
  EXPECT_EQ(table.size(), 1u);
}

// ---------- NegativeSampler ----------

TEST(NegativeSamplerTest, SampleOfTypeReturnsCorrectType) {
  MultiplexHeteroGraph g = SmallBipartite();
  NegativeSampler sampler(g);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(g.node_type(sampler.SampleOfType(0, rng)), 0);
    EXPECT_EQ(g.node_type(sampler.SampleOfType(1, rng)), 1);
  }
}

TEST(NegativeSamplerTest, SampleLikeMatchesTypeAndAvoidsSelf) {
  MultiplexHeteroGraph g = SmallBipartite();
  NegativeSampler sampler(g);
  Rng rng(5);
  int self_hits = 0;
  for (int i = 0; i < 300; ++i) {
    NodeId v = sampler.SampleLike(4, rng);
    EXPECT_EQ(g.node_type(v), g.node_type(4));
    if (v == 4) ++self_hits;
  }
  EXPECT_LT(self_hits, 10);
}

TEST(NegativeSamplerTest, HigherDegreeSampledMoreOften) {
  MultiplexHeteroGraph g = SmallBipartite();
  NegativeSampler sampler(g);
  Rng rng(6);
  std::map<NodeId, int> counts;
  for (int i = 0; i < 30000; ++i) ++counts[sampler.SampleOfType(1, rng)];
  // i4 has degree 4, i6 has degree 2: expect strictly more draws.
  EXPECT_GT(counts[4], counts[6]);
}

// ---------- Walks ----------

TEST(WalkerTest, RelationWalkStaysInRelation) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(7);
  RelationId buy = g.FindRelation("buy");
  for (int i = 0; i < 50; ++i) {
    auto walk = RelationWalk(g, buy, 0, 6, rng);
    ASSERT_GE(walk.size(), 1u);
    EXPECT_EQ(walk[0], 0u);
    for (size_t k = 0; k + 1 < walk.size(); ++k) {
      EXPECT_TRUE(g.HasEdge(walk[k], walk[k + 1], buy));
    }
  }
}

TEST(WalkerTest, RelationWalkStopsAtIsolatedNode) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(8);
  RelationId buy = g.FindRelation("buy");
  // u3 has no buy edges.
  auto walk = RelationWalk(g, buy, 3, 5, rng);
  EXPECT_EQ(walk.size(), 1u);
}

TEST(WalkerTest, UniformWalkUsesAnyRelation) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(9);
  auto walk = UniformWalk(g, 0, 10, rng);
  EXPECT_GE(walk.size(), 2u);
  for (size_t k = 0; k + 1 < walk.size(); ++k) {
    bool connected = false;
    for (RelationId r = 0; r < g.num_relations(); ++r) {
      connected |= g.HasEdge(walk[k], walk[k + 1], r);
    }
    EXPECT_TRUE(connected);
  }
}

TEST(WalkerTest, MetapathWalkAlternatesTypes) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(10);
  MetapathScheme scheme = UiuScheme(g, g.FindRelation("view"));
  for (int i = 0; i < 30; ++i) {
    auto walk = MetapathWalk(g, scheme, 0, 8, rng);
    for (size_t k = 0; k < walk.size(); ++k) {
      // U-I-U cycle: even positions user, odd positions item.
      EXPECT_EQ(g.node_type(walk[k]), k % 2 == 0 ? 0 : 1);
    }
  }
}

TEST(WalkerTest, MetapathWalkRespectsRelation) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(11);
  RelationId buy = g.FindRelation("buy");
  MetapathScheme scheme = UiuScheme(g, buy);
  auto walk = MetapathWalk(g, scheme, 3, 6, rng);
  EXPECT_EQ(walk.size(), 1u);  // u3 has no buy edges
}

TEST(WalkerTest, Node2VecWalkConnected) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(12);
  for (int i = 0; i < 20; ++i) {
    auto walk = Node2VecWalk(g, 0, 8, 0.5, 2.0, rng);
    for (size_t k = 0; k + 1 < walk.size(); ++k) {
      bool connected = false;
      for (RelationId r = 0; r < g.num_relations(); ++r) {
        connected |= g.HasEdge(walk[k], walk[k + 1], r);
      }
      EXPECT_TRUE(connected);
    }
  }
}

TEST(WalkerTest, MetapathGuidedNeighborsLevelsTyped) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(13);
  MetapathScheme scheme = UiuScheme(g, g.FindRelation("view"));
  auto levels = MetapathGuidedNeighbors(g, scheme, 0, 10, rng);
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0], (std::vector<NodeId>{0}));
  for (NodeId v : levels[1]) EXPECT_EQ(g.node_type(v), 1);  // items
  for (NodeId v : levels[2]) EXPECT_EQ(g.node_type(v), 0);  // users
  EXPECT_FALSE(levels[1].empty());
}

// ---------- Randomized inter-relationship exploration ----------

TEST(ExplorationTest, StepReturnsNeighborUnderSomeRelation) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    NodeId next = ExplorationStep(g, 0, rng);
    ASSERT_NE(next, kInvalidNode);
    bool connected = false;
    for (RelationId r = 0; r < g.num_relations(); ++r) {
      connected |= g.HasEdge(0, next, r);
    }
    EXPECT_TRUE(connected);
  }
}

TEST(ExplorationTest, IsolatedNodeReturnsInvalid) {
  GraphBuilder b;
  NodeTypeId t = b.AddNodeType("n").value();
  RelationId r = b.AddRelation("r").value();
  EXPECT_TRUE(b.AddNodes(t, 3).ok());
  EXPECT_TRUE(b.AddEdge(0, 1, r).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  Rng rng(15);
  EXPECT_EQ(ExplorationStep(*g, 2, rng), kInvalidNode);
  auto walk = ExplorationWalk(*g, 2, 5, rng);
  EXPECT_EQ(walk.size(), 1u);
}

// Regression: when the active-relation table still lists a relation whose
// adjacency is empty, phase 2 used to call Rng::UniformUint64(0) and
// CHECK-abort the process. The step must fail soft with kInvalidNode.
TEST(ExplorationTest, StaleActiveRelationReturnsInvalidInsteadOfAborting) {
  MultiplexHeteroGraph g = SmallBipartite();
  const RelationId buy = g.FindRelation("buy");
  GraphTestPeer::ClearRelationAdjacency(g, buy);
  ASSERT_TRUE(g.Neighbors(0, buy).empty());
  // u0's active table still lists buy, so phase 1 keeps proposing it.
  bool active_lists_buy = false;
  for (RelationId r : g.ActiveRelations(0)) active_lists_buy |= (r == buy);
  ASSERT_TRUE(active_lists_buy) << "fixture must present the stale state";

  Rng rng(27);
  int invalid = 0;
  for (int i = 0; i < 200; ++i) {
    NodeId next = ExplorationStep(g, 0, rng);
    if (next == kInvalidNode) {
      ++invalid;
    } else {
      // Any real step must use a relation that still has edges.
      EXPECT_TRUE(g.HasEdge(0, next, g.FindRelation("view")));
    }
  }
  EXPECT_GT(invalid, 0) << "empty-neighborhood branch never exercised";
  // Walks terminate cleanly instead of crashing mid-walk.
  auto walk = ExplorationWalk(g, 0, 10, rng);
  EXPECT_GE(walk.size(), 1u);
  EXPECT_LE(walk.size(), 11u);
}

TEST(ExplorationTest, WalkLengthBounded) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(16);
  auto walk = ExplorationWalk(g, 0, 4, rng);
  EXPECT_GE(walk.size(), 2u);
  EXPECT_LE(walk.size(), 5u);
  EXPECT_EQ(walk[0], 0u);
}

// Property test: the empirical two-phase transition frequencies must match
// the closed-form probability of Eqs. 1-2.
TEST(ExplorationTest, EmpiricalMatchesClosedFormProbability) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(17);
  constexpr int kDraws = 200000;
  std::map<NodeId, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[ExplorationStep(g, 0, rng)];
  double total_p = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const double p = ExplorationTransitionProbability(g, 0, u);
    total_p += p;
    const double freq = counts.count(u)
                            ? counts[u] / static_cast<double>(kDraws)
                            : 0.0;
    EXPECT_NEAR(freq, p, 0.01) << "node " << u;
  }
  EXPECT_NEAR(total_p, 1.0, 1e-9);
}

TEST(ExplorationTest, NeighborsLevelsRespectDepthAndFanout) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(18);
  auto levels = ExplorationNeighbors(g, 0, 3, 5, rng);
  ASSERT_EQ(levels.size(), 4u);
  EXPECT_EQ(levels[0], (std::vector<NodeId>{0}));
  for (size_t k = 1; k < levels.size(); ++k) {
    EXPECT_LE(levels[k].size(), 5u);
  }
  EXPECT_FALSE(levels[1].empty());
}

// Exploration must be able to cross relations: starting from u0 (which has
// both view and buy edges), multi-step walks should reach i5 (view-only
// neighbor) AND stay able to traverse buy-only paths.
TEST(ExplorationTest, CrossesRelationSubgraphs) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(19);
  std::set<NodeId> visited;
  for (int i = 0; i < 500; ++i) {
    auto walk = ExplorationWalk(g, 3, 4, rng);  // u3: only view edges
    visited.insert(walk.begin(), walk.end());
  }
  // From u3 via i5 (view) to u0, then over u0's buy edge to i4.
  EXPECT_TRUE(visited.count(4) > 0);
}

// ---------- Corpus ----------

TEST(CorpusTest, HarvestPairsWindow) {
  std::vector<NodeId> walk = {1, 2, 3, 4};
  std::vector<SkipGramPair> pairs;
  HarvestPairs(walk, 1, 0, pairs);
  // Each interior node pairs with 2 neighbors, ends with 1: 2+2+1+1 = 6.
  EXPECT_EQ(pairs.size(), 6u);
  for (const auto& p : pairs) {
    EXPECT_NE(p.center, p.context);
    EXPECT_EQ(p.rel, 0);
  }
}

TEST(CorpusTest, MetapathCorpusTagsRelations) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(20);
  auto schemes = DefaultSchemes(g, 4);
  CorpusOptions options;
  options.num_walks_per_node = 3;
  options.walk_length = 4;
  options.window = 2;
  WalkCorpus corpus = BuildMetapathCorpus(g, schemes, options, rng);
  EXPECT_FALSE(corpus.pairs.empty());
  std::set<RelationId> rels;
  for (const auto& p : corpus.pairs) rels.insert(p.rel);
  EXPECT_EQ(rels.size(), g.num_relations());
}

TEST(CorpusTest, UniformCorpusIsRelationBlind) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(21);
  CorpusOptions options;
  options.num_walks_per_node = 2;
  options.walk_length = 4;
  options.window = 2;
  WalkCorpus corpus = BuildUniformCorpus(g, options, rng);
  EXPECT_FALSE(corpus.pairs.empty());
  for (const auto& p : corpus.pairs) EXPECT_EQ(p.rel, kInvalidRelation);
}

TEST(CorpusTest, Node2VecCorpusNonEmpty) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(22);
  CorpusOptions options;
  options.num_walks_per_node = 2;
  options.walk_length = 4;
  options.window = 2;
  WalkCorpus corpus = BuildNode2VecCorpus(g, options, 0.5, 2.0, rng);
  EXPECT_FALSE(corpus.pairs.empty());
  EXPECT_FALSE(corpus.walks.empty());
}

TEST(CorpusTest, ParallelCorpusWellFormed) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(25);
  CorpusOptions options;
  options.num_walks_per_node = 3;
  options.walk_length = 4;
  options.window = 2;
  options.num_threads = 4;
  WalkCorpus corpus = BuildMetapathCorpus(g, {UiuScheme(g, 0)}, options, rng);
  EXPECT_FALSE(corpus.walks.empty());
  EXPECT_FALSE(corpus.pairs.empty());
  for (const auto& walk : corpus.walks) {
    EXPECT_GE(walk.size(), 2u);
    for (NodeId v : walk) EXPECT_LT(v, g.num_nodes());
  }
  // Same corpus shape as the serial path: one unit per (start, relation)
  // with degree > 0, each yielding up to num_walks_per_node walks.
  Rng rng2(25);
  CorpusOptions serial = options;
  serial.num_threads = 1;
  WalkCorpus sc = BuildMetapathCorpus(g, {UiuScheme(g, 0)}, serial, rng2);
  EXPECT_EQ(corpus.walks.size(), sc.walks.size());
}

TEST(SgnsTest, HogwildTrainProducesFiniteEmbeddings) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(26);
  CorpusOptions options;
  options.num_walks_per_node = 4;
  options.walk_length = 5;
  options.window = 2;
  WalkCorpus corpus = BuildUniformCorpus(g, options, rng);
  NegativeSampler sampler(g);
  SgnsOptions so;
  so.dim = 8;
  so.epochs = 3;
  so.num_threads = 4;
  SgnsEmbedder emb(g.num_nodes(), so.dim, rng);
  emb.Train(corpus.pairs, sampler, so, rng);
  for (size_t v = 0; v < g.num_nodes(); ++v) {
    for (size_t j = 0; j < so.dim; ++j) {
      EXPECT_TRUE(std::isfinite(emb.embeddings().At(v, j)));
      EXPECT_TRUE(std::isfinite(emb.contexts().At(v, j)));
    }
  }
}

// ---------- Layered sampler ----------

TEST(NeighborSamplerTest, SampleLayersShapes) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(23);
  auto levels = SampleLayers(g, 0, 2, 4, rng);
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0], (std::vector<NodeId>{0}));
  EXPECT_LE(levels[1].size(), 4u);
  EXPECT_FALSE(levels[1].empty());
}

TEST(NeighborSamplerTest, PerRelationNeighborsRespectRelation) {
  MultiplexHeteroGraph g = SmallBipartite();
  Rng rng(24);
  auto per_rel = SamplePerRelationNeighbors(g, 3, 4, rng);
  ASSERT_EQ(per_rel.size(), 2u);
  EXPECT_FALSE(per_rel[g.FindRelation("view")].empty());
  EXPECT_TRUE(per_rel[g.FindRelation("buy")].empty());
  for (NodeId u : per_rel[g.FindRelation("view")]) {
    EXPECT_TRUE(g.HasEdge(3, u, g.FindRelation("view")));
  }
}

}  // namespace
}  // namespace hybridgnn
