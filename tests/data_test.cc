#include <gtest/gtest.h>

#include <set>

#include "data/profiles.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "graph/stats.h"

namespace hybridgnn {
namespace {

SyntheticConfig TinyConfig(uint64_t seed = 1) {
  SyntheticConfig c;
  c.node_types = {{"user", 60}, {"item", 40}};
  c.blocks = {
      {"view", "user", "item", 300, 0.1},
      {"buy", "user", "item", 150, 0.1},
  };
  c.num_communities = 4;
  c.seed = seed;
  return c;
}

TEST(SyntheticTest, GeneratesRequestedSchema) {
  auto g = GenerateSynthetic(TinyConfig());
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_nodes(), 100u);
  EXPECT_EQ(g->num_node_types(), 2u);
  EXPECT_EQ(g->num_relations(), 2u);
  // Realized edge counts close to spec (dedup can shave a little).
  EXPECT_GE(g->EdgesOfRelation(0).size(), 250u);
  EXPECT_LE(g->EdgesOfRelation(0).size(), 300u);
}

TEST(SyntheticTest, DeterministicInSeed) {
  auto g1 = GenerateSynthetic(TinyConfig(7));
  auto g2 = GenerateSynthetic(TinyConfig(7));
  ASSERT_TRUE(g1.ok() && g2.ok());
  EXPECT_EQ(g1->num_edges(), g2->num_edges());
  for (size_t i = 0; i < g1->edges().size(); ++i) {
    EXPECT_TRUE(g1->edges()[i] == g2->edges()[i]);
  }
  auto g3 = GenerateSynthetic(TinyConfig(8));
  ASSERT_TRUE(g3.ok());
  bool differs = g3->num_edges() != g1->num_edges();
  if (!differs) {
    for (size_t i = 0; i < g1->edges().size(); ++i) {
      if (!(g1->edges()[i] == g3->edges()[i])) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticTest, EdgesRespectTypeEndpoints) {
  auto g = GenerateSynthetic(TinyConfig());
  ASSERT_TRUE(g.ok());
  for (const auto& e : g->edges()) {
    // All blocks are user-item.
    std::set<NodeTypeId> types = {g->node_type(e.src), g->node_type(e.dst)};
    EXPECT_EQ(types, (std::set<NodeTypeId>{0, 1}));
  }
}

TEST(SyntheticTest, ValidationErrors) {
  SyntheticConfig empty;
  EXPECT_FALSE(GenerateSynthetic(empty).ok());
  SyntheticConfig no_blocks;
  no_blocks.node_types = {{"n", 10}};
  EXPECT_FALSE(GenerateSynthetic(no_blocks).ok());
  SyntheticConfig bad_block = TinyConfig();
  bad_block.blocks.push_back({"x", "ghost", "item", 10, 0.0});
  EXPECT_FALSE(GenerateSynthetic(bad_block).ok());
}

TEST(SyntheticTest, CommunityStructureIsPlanted) {
  // With zero noise and strong communities, same-community edges dominate:
  // verify via clustering proxy — edges under the two relations share
  // endpoints far more often than random (multiplex pairs exist).
  SyntheticConfig c = TinyConfig();
  c.blocks[0].noise = 0.0;
  c.blocks[1].noise = 0.0;
  c.inter_relation_correlation = 1.0;
  c.community_strength = 50.0;
  auto g = GenerateSynthetic(c);
  ASSERT_TRUE(g.ok());
  GraphStats s = ComputeStats(*g);
  EXPECT_GT(s.multiplex_pair_fraction, 0.01);
}

TEST(ProfilesTest, AllProfilesBuild) {
  for (const auto& name : DatasetProfileNames()) {
    auto ds = MakeDataset(name, 0.2, 42);
    ASSERT_TRUE(ds.ok()) << name << ": " << ds.status().ToString();
    EXPECT_EQ(ds->name, name);
    EXPECT_GT(ds->graph.num_edges(), 0u);
    EXPECT_FALSE(ds->schemes.empty());
    for (const auto& s : ds->schemes) {
      EXPECT_TRUE(s.Validate(ds->graph).ok());
      EXPECT_TRUE(s.IsIntraRelationship());
    }
  }
}

TEST(ProfilesTest, SchemaMatchesPaperTable2) {
  auto amazon = MakeDataset("amazon", 0.2, 1);
  ASSERT_TRUE(amazon.ok());
  EXPECT_EQ(amazon->graph.num_node_types(), 1u);
  EXPECT_EQ(amazon->graph.num_relations(), 2u);

  auto youtube = MakeDataset("youtube", 0.2, 1);
  ASSERT_TRUE(youtube.ok());
  EXPECT_EQ(youtube->graph.num_node_types(), 1u);
  EXPECT_EQ(youtube->graph.num_relations(), 5u);

  auto imdb = MakeDataset("imdb", 0.2, 1);
  ASSERT_TRUE(imdb.ok());
  EXPECT_EQ(imdb->graph.num_node_types(), 3u);
  EXPECT_EQ(imdb->graph.num_relations(), 1u);
  EXPECT_EQ(imdb->schemes.size(), 6u);  // M-D-M ... A-M-D-M-A

  auto taobao = MakeDataset("taobao", 0.2, 1);
  ASSERT_TRUE(taobao.ok());
  EXPECT_EQ(taobao->graph.num_node_types(), 2u);
  EXPECT_EQ(taobao->graph.num_relations(), 4u);

  auto kuaishou = MakeDataset("kuaishou", 0.2, 1);
  ASSERT_TRUE(kuaishou.ok());
  EXPECT_EQ(kuaishou->graph.num_node_types(), 3u);
  EXPECT_EQ(kuaishou->graph.num_relations(), 4u);
}

TEST(ProfilesTest, UnknownProfileRejected) {
  EXPECT_FALSE(MakeDataset("netflix", 1.0, 1).ok());
  EXPECT_FALSE(ProfileConfig("netflix", 1.0, 1).ok());
}

TEST(ProfilesTest, ScaleChangesSize) {
  auto small = MakeDataset("amazon", 0.1, 3);
  auto large = MakeDataset("amazon", 0.3, 3);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_LT(small->graph.num_nodes(), large->graph.num_nodes());
  EXPECT_LT(small->graph.num_edges(), large->graph.num_edges());
}

TEST(SplitTest, FractionsRespectedPerRelation) {
  auto g = GenerateSynthetic(TinyConfig());
  ASSERT_TRUE(g.ok());
  Rng rng(5);
  SplitOptions options;
  auto split = SplitEdges(*g, options, rng);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  const size_t total = split->train_edges.size() + split->val_pos.size() +
                       split->test_pos.size();
  EXPECT_EQ(total, g->num_edges());
  EXPECT_NEAR(static_cast<double>(split->test_pos.size()) / total, 0.10,
              0.03);
  EXPECT_NEAR(static_cast<double>(split->val_pos.size()) / total, 0.05,
              0.03);
  // Every relation appears in the test set.
  std::set<RelationId> rels;
  for (const auto& e : split->test_pos) rels.insert(e.rel);
  EXPECT_EQ(rels.size(), g->num_relations());
}

TEST(SplitTest, NegativesAreTrueNonEdgesOfMatchingType) {
  auto g = GenerateSynthetic(TinyConfig());
  ASSERT_TRUE(g.ok());
  Rng rng(6);
  auto split = SplitEdges(*g, SplitOptions{}, rng);
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(split->test_neg.size(), split->test_pos.size());
  for (size_t i = 0; i < split->test_neg.size(); ++i) {
    const auto& neg = split->test_neg[i];
    EXPECT_FALSE(g->HasEdge(neg.src, neg.dst, neg.rel));
    EXPECT_EQ(neg.rel, split->test_pos[i].rel);
  }
}

TEST(SplitTest, TrainGraphContainsOnlyTrainEdges) {
  auto g = GenerateSynthetic(TinyConfig());
  ASSERT_TRUE(g.ok());
  Rng rng(7);
  auto split = SplitEdges(*g, SplitOptions{}, rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train_graph.num_nodes(), g->num_nodes());
  EXPECT_EQ(split->train_graph.num_edges(), split->train_edges.size());
  for (const auto& e : split->test_pos) {
    EXPECT_FALSE(split->train_graph.HasEdge(e.src, e.dst, e.rel));
  }
}

TEST(SplitTest, DeterministicGivenSeed) {
  auto g = GenerateSynthetic(TinyConfig());
  ASSERT_TRUE(g.ok());
  Rng rng1(9), rng2(9);
  auto s1 = SplitEdges(*g, SplitOptions{}, rng1);
  auto s2 = SplitEdges(*g, SplitOptions{}, rng2);
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_EQ(s1->test_pos.size(), s2->test_pos.size());
  for (size_t i = 0; i < s1->test_pos.size(); ++i) {
    EXPECT_TRUE(s1->test_pos[i] == s2->test_pos[i]);
  }
}

TEST(SplitTest, RejectsBadFractionsAndTinyRelations) {
  auto g = GenerateSynthetic(TinyConfig());
  ASSERT_TRUE(g.ok());
  Rng rng(10);
  SplitOptions bad;
  bad.val_fraction = 0.6;
  bad.test_fraction = 0.6;
  EXPECT_FALSE(SplitEdges(*g, bad, rng).ok());

  GraphBuilder b;
  NodeTypeId t = b.AddNodeType("n").value();
  RelationId r = b.AddRelation("r").value();
  EXPECT_TRUE(b.AddNodes(t, 5).ok());
  EXPECT_TRUE(b.AddEdge(0, 1, r).ok());
  auto tiny = b.Build();
  ASSERT_TRUE(tiny.ok());
  EXPECT_FALSE(SplitEdges(*tiny, SplitOptions{}, rng).ok());
}

}  // namespace
}  // namespace hybridgnn
