// Fuzz-style robustness suite for the .hgc checkpoint loader: every-byte
// flips, truncations at every interesting boundary, trailing garbage,
// random-garbage files, and forged headers whose checksums are recomputed
// so the deeper structural validation (not just the checksum) is what has
// to hold. The loader's contract (serve/checkpoint.h) is that every
// corruption comes back as a clean non-OK Status — never a crash, abort,
// or huge allocation. scripts/asan_check.sh runs this binary under
// AddressSanitizer, which turns any loader overread into a hard failure.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/checkpoint.h"
#include "serve/embedding_store.h"
#include "tensor/tensor.h"

namespace hybridgnn {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

EmbeddingStore MakeSmallStore(uint64_t seed) {
  Rng rng(seed);
  std::vector<EmbeddingStore::TableInit> tables;
  for (int which : {0, 1}) {
    EmbeddingStore::TableInit t;
    t.name = which == 0 ? "view" : "buy";
    for (NodeId v = 0; v < 11; ++v) {
      if (which == 1 && v % 2 != 0) continue;
      t.row_to_node.push_back(v);
    }
    t.data = Tensor(t.row_to_node.size(), 6);
    for (size_t i = 0; i < t.data.size(); ++i) {
      t.data.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
    }
    tables.push_back(std::move(t));
  }
  auto store = EmbeddingStore::FromTables("fuzz", 11, std::move(tables));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

std::vector<char> ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.is_open()) << path;
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Loads `path` under both modes; the attempt must return a non-OK Status
/// (and, under ASan, must not overread). `what` labels the failure.
void ExpectRejected(const std::string& path, const std::string& what) {
  for (LoadMode mode : {LoadMode::kCopy, LoadMode::kMmap}) {
    auto r = LoadCheckpoint(path, mode);
    EXPECT_FALSE(r.ok()) << what << " accepted under mode "
                         << static_cast<int>(mode);
  }
}

void PutU64(std::vector<char>& bytes, size_t offset, uint64_t value) {
  ASSERT_LE(offset + 8, bytes.size());
  std::memcpy(bytes.data() + offset, &value, 8);
}

/// Recomputes the two FNV-1a checksums so forged header fields survive the
/// checksum check and hit the structural validation behind it.
void ResealChecksums(std::vector<char>& bytes) {
  ASSERT_GE(bytes.size(), kCheckpointHeaderBytes);
  const uint64_t payload = Fnv1a64(bytes.data() + kCheckpointHeaderBytes,
                                   bytes.size() - kCheckpointHeaderBytes);
  PutU64(bytes, 48, payload);
  PutU64(bytes, 56, Fnv1a64(bytes.data(), 56));
}

class CheckpointCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("corruption.hgc");
    ASSERT_TRUE(WriteCheckpoint(MakeSmallStore(42), path_).ok());
    pristine_ = ReadFile(path_);
    ASSERT_GT(pristine_.size(), kCheckpointHeaderBytes);
    // Sanity: the pristine bytes load under both modes.
    for (LoadMode mode : {LoadMode::kCopy, LoadMode::kMmap}) {
      ASSERT_TRUE(LoadCheckpoint(path_, mode).ok());
    }
  }

  std::string path_;
  std::vector<char> pristine_;
};

TEST_F(CheckpointCorruptionTest, EveryByteFlipIsRejectedOrHarmless) {
  // Flip every byte of the file, one at a time. Most flips must be caught
  // (magic/version/structure/checksums); a flip is allowed to slip through
  // only if the load still fully succeeds — never a crash in between.
  size_t rejected = 0;
  for (size_t off = 0; off < pristine_.size(); ++off) {
    std::vector<char> bytes = pristine_;
    bytes[off] ^= 0xFF;
    WriteFile(path_, bytes);
    bool all_ok = true;
    for (LoadMode mode : {LoadMode::kCopy, LoadMode::kMmap}) {
      auto r = LoadCheckpoint(path_, mode);
      if (!r.ok()) all_ok = false;
    }
    if (!all_ok) ++rejected;
  }
  // Header and payload are both checksummed, so every single-byte flip in
  // this file must be detected.
  EXPECT_EQ(rejected, pristine_.size());
}

TEST_F(CheckpointCorruptionTest, EveryTruncationLengthIsRejected) {
  // Cut the file to every possible shorter length: 0, mid-header, header
  // boundary, mid-metadata, padding, mid-table, one-byte-short.
  for (size_t len = 0; len < pristine_.size(); ++len) {
    std::vector<char> bytes(pristine_.begin(),
                            pristine_.begin() + static_cast<long>(len));
    WriteFile(path_, bytes);
    ExpectRejected(path_, "truncation to " + std::to_string(len));
  }
}

TEST_F(CheckpointCorruptionTest, TrailingGarbageIsRejected) {
  for (size_t extra : {1u, 64u, 4096u}) {
    std::vector<char> bytes = pristine_;
    bytes.insert(bytes.end(), extra, '\x7f');
    WriteFile(path_, bytes);
    ExpectRejected(path_, "trailing garbage x" + std::to_string(extra));
  }
}

TEST_F(CheckpointCorruptionTest, RandomGarbageFilesAreRejected) {
  Rng rng(7);
  for (int trial = 0; trial < 64; ++trial) {
    const size_t len = static_cast<size_t>(rng.UniformUint64(4096));
    std::vector<char> bytes(len);
    for (auto& b : bytes) {
      b = static_cast<char>(rng.UniformUint64(256));
    }
    WriteFile(path_, bytes);
    ExpectRejected(path_, "random garbage trial " + std::to_string(trial));
  }
}

TEST_F(CheckpointCorruptionTest, RandomGarbageWithValidMagicIsRejected) {
  Rng rng(8);
  for (int trial = 0; trial < 64; ++trial) {
    const size_t len =
        kCheckpointHeaderBytes + static_cast<size_t>(rng.UniformUint64(2048));
    std::vector<char> bytes(len);
    for (auto& b : bytes) {
      b = static_cast<char>(rng.UniformUint64(256));
    }
    std::memcpy(bytes.data(), kCheckpointMagic, 4);
    std::memcpy(bytes.data() + 4, &kCheckpointEndianTag, 2);
    std::memcpy(bytes.data() + 6, &kCheckpointVersion, 2);
    WriteFile(path_, bytes);
    ExpectRejected(path_, "magic garbage trial " + std::to_string(trial));
  }
}

// Forged headers: patch one u64 field, reseal both checksums so the forgery
// passes the hash check, and demand the structural validation catches it
// without attempting an absurd allocation (ASan would flag allocator abuse,
// and a resize(2^60) would abort the process outright).
TEST_F(CheckpointCorruptionTest, ForgedHeaderFieldsAreRejected) {
  struct Forgery {
    const char* what;
    size_t offset;
    uint64_t value;
  };
  const Forgery forgeries[] = {
      {"num_relations=0", 8, 0},
      {"num_relations huge", 8, uint64_t{1} << 60},
      {"num_relations+1", 8, 3},
      {"num_nodes=0", 16, 0},
      {"num_nodes huge", 16, uint64_t{1} << 60},
      {"dim=0", 24, 0},
      {"dim huge", 24, uint64_t{1} << 60},
      {"meta_bytes=0", 32, 0},
      {"meta_bytes huge", 32, uint64_t{1} << 60},
      {"meta_bytes past payload", 32, uint64_t{1} << 20},
      {"payload_bytes=0", 40, 0},
      {"payload_bytes huge", 40, uint64_t{1} << 60},
      {"payload_bytes off by one", 40, 0},  // patched below
  };
  for (Forgery f : forgeries) {
    std::vector<char> bytes = pristine_;
    if (std::string(f.what) == "payload_bytes off by one") {
      f.value = bytes.size() - kCheckpointHeaderBytes + 1;
    }
    PutU64(bytes, f.offset, f.value);
    ResealChecksums(bytes);
    WriteFile(path_, bytes);
    ExpectRejected(path_, f.what);
  }
}

TEST_F(CheckpointCorruptionTest, ForgedMetadataCountsAreRejected) {
  // The metadata blob leads with u32 model-name length; a forged huge
  // length must not drive a wild read or allocation.
  std::vector<char> bytes = pristine_;
  const uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + kCheckpointHeaderBytes, &huge, 4);
  ResealChecksums(bytes);
  WriteFile(path_, bytes);
  ExpectRejected(path_, "forged model-name length");

  // Forge the first relation's num_rows (u64 after model name + relation
  // name records). Walk the real layout to find it.
  bytes = pristine_;
  size_t pos = kCheckpointHeaderBytes;
  uint32_t name_len = 0;
  std::memcpy(&name_len, bytes.data() + pos, 4);
  pos += 4 + name_len;  // model name
  std::memcpy(&name_len, bytes.data() + pos, 4);
  pos += 4 + name_len;  // relation 0 name
  PutU64(bytes, pos, uint64_t{1} << 61);
  ResealChecksums(bytes);
  WriteFile(path_, bytes);
  ExpectRejected(path_, "forged relation row count");
}

TEST_F(CheckpointCorruptionTest, ZeroLengthAndHeaderOnlyFiles) {
  WriteFile(path_, {});
  ExpectRejected(path_, "empty file");
  std::vector<char> header(pristine_.begin(),
                           pristine_.begin() + kCheckpointHeaderBytes);
  WriteFile(path_, header);
  ExpectRejected(path_, "header-only file");
}

}  // namespace
}  // namespace hybridgnn
