#include <gtest/gtest.h>

#include <cmath>

#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/stats_test.h"

namespace hybridgnn {
namespace {

// ---------- Classification metrics ----------

TEST(MetricsTest, RocAucPerfectSeparation) {
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.8}, {0.1, 0.2}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2}, {0.9, 0.8}), 0.0);
}

TEST(MetricsTest, RocAucRandomIsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.5}, {0.5}), 0.5);  // full tie -> midrank
  EXPECT_NEAR(RocAuc({0.3, 0.7}, {0.3, 0.7}), 0.5, 1e-9);
}

TEST(MetricsTest, RocAucHandlesTiesWithMidranks) {
  // pos: {1, 0}, neg: {0}. P(pos>neg)=1/2, P(=)=1/2 -> AUC 0.75.
  EXPECT_NEAR(RocAuc({1.0, 0.0}, {0.0}), 0.75, 1e-9);
}

TEST(MetricsTest, PrAucPerfectAndWorst) {
  EXPECT_DOUBLE_EQ(PrAuc({0.9, 0.8}, {0.1}), 1.0);
  // Positives ranked last among 3: AP = (1/2 + 2/3)/2... compute: positions
  // 2,3 -> (1/2 + 2/3)/2 = 7/12.
  EXPECT_NEAR(PrAuc({0.1, 0.2}, {0.9}), 7.0 / 12.0, 1e-9);
}

TEST(MetricsTest, BestF1PerfectSeparation) {
  EXPECT_DOUBLE_EQ(BestF1({0.9, 0.8}, {0.1, 0.2}), 1.0);
}

TEST(MetricsTest, BestF1FindsInteriorThreshold) {
  // pos = {0.9, 0.6}, neg = {0.7, 0.1}. Best threshold ~0.6 ->
  // tp=2, fp=1, fn=0 -> F1 = 2*2/(2*2+1) = 0.8.
  EXPECT_NEAR(BestF1({0.9, 0.6}, {0.7, 0.1}), 0.8, 1e-9);
}

TEST(MetricsTest, MetricsAtThreshold) {
  ThresholdMetrics m = MetricsAtThreshold({0.9, 0.4}, {0.6, 0.1}, 0.5);
  EXPECT_NEAR(m.precision, 0.5, 1e-9);  // tp=1, fp=1
  EXPECT_NEAR(m.recall, 0.5, 1e-9);     // fn=1
  EXPECT_NEAR(m.f1, 0.5, 1e-9);
  EXPECT_NEAR(m.accuracy, 0.5, 1e-9);
}

TEST(MetricsTest, PrecisionAndHitRatioAtK) {
  std::vector<bool> hits = {true, false, true, false, false};
  EXPECT_NEAR(PrecisionAtK(hits, 5), 0.4, 1e-9);
  EXPECT_NEAR(PrecisionAtK(hits, 2), 0.5, 1e-9);
  EXPECT_NEAR(HitRatioAtK(hits, 5, 4), 0.5, 1e-9);
  EXPECT_NEAR(HitRatioAtK(hits, 5, 0), 0.0, 1e-9);
  // Fewer candidates than K: denominator is still K for precision.
  EXPECT_NEAR(PrecisionAtK({true}, 10), 0.1, 1e-9);
}

TEST(MetricsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_NEAR(SampleStdDev({1, 2, 3}), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(SampleStdDev({5}), 0.0);
}

// ---------- Statistical tests ----------

TEST(StatsTest, IncompleteBetaKnownValues) {
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, 0.3), 0.3, 1e-9);  // uniform
  EXPECT_NEAR(RegularizedIncompleteBeta(2, 2, 0.5), 0.5, 1e-9);  // symmetric
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
}

TEST(StatsTest, StudentTPValueMatchesTables) {
  // t=2.0, df=10 -> two-sided p ~ 0.0734.
  EXPECT_NEAR(StudentTPValue(2.0, 10), 0.0734, 0.001);
  // t=0 -> p=1.
  EXPECT_NEAR(StudentTPValue(0.0, 5), 1.0, 1e-9);
}

TEST(StatsTest, WelchDetectsObviousDifference) {
  std::vector<double> a = {10.0, 10.1, 9.9, 10.2, 9.8, 10.0};
  std::vector<double> b = {5.0, 5.1, 4.9, 5.2, 4.8, 5.0};
  TTestResult r = WelchTTest(a, b);
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_GT(r.t_statistic, 10.0);
}

TEST(StatsTest, WelchNoDifference) {
  std::vector<double> a = {1.0, 1.2, 0.9, 1.1};
  TTestResult r = WelchTTest(a, a);
  EXPECT_GT(r.p_value, 0.9);
}

TEST(StatsTest, PairedTTestDetectsConsistentDelta) {
  std::vector<double> a = {1.01, 2.02, 3.01, 4.02, 5.01};
  std::vector<double> b = {1.00, 2.00, 3.00, 4.00, 5.00};
  TTestResult r = PairedTTest(a, b);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(StatsTest, DegenerateSamplesHandled) {
  TTestResult r = WelchTTest({1.0}, {2.0});
  EXPECT_EQ(r.p_value, 1.0);  // too few samples
  TTestResult same = WelchTTest({1.0, 1.0, 1.0}, {1.0, 1.0, 1.0});
  EXPECT_EQ(same.p_value, 1.0);
}

// ---------- Evaluator with a planted oracle model ----------

/// Oracle that scores true full-graph edges high — an upper bound that the
/// evaluator must rank near-perfectly.
class OracleModel : public EmbeddingModel {
 public:
  explicit OracleModel(const MultiplexHeteroGraph& g) : g_(&g) {}
  std::string name() const override { return "Oracle"; }
  Status Fit(const MultiplexHeteroGraph&, const FitOptions&) override {
    return Status::OK();
  }
  using EmbeddingModel::Fit;
  Tensor Embedding(NodeId v, RelationId r) const override {
    return Tensor::Ones(1, 2);
  }
  double Score(NodeId u, NodeId v, RelationId r) const override {
    return g_->HasEdge(u, v, r) ? 1.0 : 0.0;
  }
  // Score is not a dot of Embedding rows, so the batched default would
  // diverge; route through the virtual Score.
  std::vector<double> ScoreMany(
      std::span<const EdgeTriple> queries) const override {
    std::vector<double> out;
    for (const auto& q : queries) out.push_back(Score(q.src, q.dst, q.rel));
    return out;
  }

 private:
  const MultiplexHeteroGraph* g_;
};

/// Anti-oracle: inverted scores — the evaluator must report ~0 AUC.
class AntiOracleModel : public OracleModel {
 public:
  explicit AntiOracleModel(const MultiplexHeteroGraph& g)
      : OracleModel(g), g_(&g) {}
  double Score(NodeId u, NodeId v, RelationId r) const override {
    return g_->HasEdge(u, v, r) ? 0.0 : 1.0;
  }

 private:
  const MultiplexHeteroGraph* g_;
};

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig c;
    c.node_types = {{"user", 50}, {"item", 30}};
    c.blocks = {{"view", "user", "item", 250, 0.1},
                {"buy", "user", "item", 120, 0.1}};
    c.seed = 3;
    auto g = GenerateSynthetic(c);
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
    Rng rng(4);
    auto split = SplitEdges(graph_, SplitOptions{}, rng);
    ASSERT_TRUE(split.ok());
    split_ = std::move(split).value();
  }

  MultiplexHeteroGraph graph_;
  LinkSplit split_;
};

TEST_F(EvaluatorTest, OracleGetsPerfectClassification) {
  OracleModel oracle(graph_);
  Rng rng(5);
  LinkPredictionResult r = EvaluateLinkPrediction(
      oracle, graph_, split_, EvalOptions{}, rng);
  EXPECT_NEAR(r.roc_auc, 100.0, 1e-6);
  EXPECT_NEAR(r.pr_auc, 100.0, 1e-6);
  EXPECT_NEAR(r.f1, 100.0, 1e-6);
  EXPECT_GT(r.hr_at_k, 0.5);  // test edges rank at the top
}

TEST_F(EvaluatorTest, AntiOracleGetsZeroAuc) {
  AntiOracleModel anti(graph_);
  Rng rng(6);
  LinkPredictionResult r =
      EvaluateLinkPrediction(anti, graph_, split_, EvalOptions{}, rng);
  EXPECT_NEAR(r.roc_auc, 0.0, 1e-6);
  EXPECT_LT(r.hr_at_k, 0.1);
}

TEST_F(EvaluatorTest, EvaluateRelationIsolatesOneRelation) {
  OracleModel oracle(graph_);
  LinkPredictionResult r0 = EvaluateRelation(oracle, split_, 0);
  EXPECT_NEAR(r0.roc_auc, 100.0, 1e-6);
  LinkPredictionResult bogus = EvaluateRelation(oracle, split_, 99);
  EXPECT_EQ(bogus.roc_auc, 0.0);  // empty result for unknown relation
}

TEST_F(EvaluatorTest, ParallelEvaluationMatchesSerial) {
  // Queries are independent and land in indexed slots, so every thread
  // count must produce identical metrics.
  OracleModel oracle(graph_);
  EvalOptions serial;
  serial.num_threads = 1;
  EvalOptions parallel;
  parallel.num_threads = 4;
  Rng rng_a(8);
  LinkPredictionResult a =
      EvaluateLinkPrediction(oracle, graph_, split_, serial, rng_a);
  Rng rng_b(8);
  LinkPredictionResult b =
      EvaluateLinkPrediction(oracle, graph_, split_, parallel, rng_b);
  EXPECT_EQ(a.roc_auc, b.roc_auc);
  EXPECT_EQ(a.pr_auc, b.pr_auc);
  EXPECT_EQ(a.f1, b.f1);
  EXPECT_EQ(a.pr_at_k, b.pr_at_k);
  EXPECT_EQ(a.hr_at_k, b.hr_at_k);
}

TEST_F(EvaluatorTest, DefaultScoreManyMatchesScoreLoop) {
  // For dot-scored models the batched path must agree with per-pair Score.
  class DotModel : public EmbeddingModel {
   public:
    std::string name() const override { return "Dot"; }
    Status Fit(const MultiplexHeteroGraph&, const FitOptions&) override {
      return Status::OK();
    }
    using EmbeddingModel::Fit;
    Tensor Embedding(NodeId v, RelationId r) const override {
      Tensor e(1, 4);
      for (size_t j = 0; j < 4; ++j) {
        e.At(0, j) = static_cast<float>((v + 1) * (j + 1)) /
                     static_cast<float>(8 + r);
      }
      return e;
    }
  };
  DotModel model;
  std::vector<EdgeTriple> queries;
  for (NodeId v = 0; v < 10; ++v) {
    queries.push_back(EdgeTriple{v, static_cast<NodeId>(v + 3),
                                 static_cast<RelationId>(v % 2)});
  }
  std::vector<double> batched = model.ScoreMany(queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(batched[i], model.Score(queries[i].src, queries[i].dst,
                                             queries[i].rel))
        << "query " << i;
  }
}

TEST_F(EvaluatorTest, DegreeBucketsCoverQueries) {
  OracleModel oracle(graph_);
  Rng rng(7);
  std::vector<size_t> edges = {0, 5, 10, 1000};
  std::vector<double> pr =
      PrAtKByDegree(oracle, graph_, split_, edges, 10, rng);
  ASSERT_EQ(pr.size(), 3u);
  double total = 0;
  for (double p : pr) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    total += p;
  }
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace hybridgnn
