#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <mutex>

#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/stats_test.h"

namespace hybridgnn {
namespace {

// ---------- Classification metrics ----------

TEST(MetricsTest, RocAucPerfectSeparation) {
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.8}, {0.1, 0.2}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2}, {0.9, 0.8}), 0.0);
}

TEST(MetricsTest, RocAucRandomIsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.5}, {0.5}), 0.5);  // full tie -> midrank
  EXPECT_NEAR(RocAuc({0.3, 0.7}, {0.3, 0.7}), 0.5, 1e-9);
}

TEST(MetricsTest, RocAucHandlesTiesWithMidranks) {
  // pos: {1, 0}, neg: {0}. P(pos>neg)=1/2, P(=)=1/2 -> AUC 0.75.
  EXPECT_NEAR(RocAuc({1.0, 0.0}, {0.0}), 0.75, 1e-9);
  // All scores tied: midranks make the AUC exactly chance, regardless of
  // class balance.
  EXPECT_NEAR(RocAuc({0.5}, {0.5, 0.5}), 0.5, 1e-9);
  EXPECT_NEAR(RocAuc({0.5, 0.5}, {0.5}), 0.5, 1e-9);
  // Tie block in the middle of an otherwise separated ranking:
  // pos {0.9, 0.5}, neg {0.5, 0.1}. Pairs: (0.9 beats both) + (0.5 vs 0.5
  // half credit) + (0.5 beats 0.1) -> (2 + 0.5 + 1) / 4 = 0.875.
  EXPECT_NEAR(RocAuc({0.9, 0.5}, {0.5, 0.1}), 0.875, 1e-9);
}

TEST(MetricsTest, PrAucPerfectAndWorst) {
  EXPECT_DOUBLE_EQ(PrAuc({0.9, 0.8}, {0.1}), 1.0);
  // Positives ranked last among 3: AP = (1/2 + 2/3)/2... compute: positions
  // 2,3 -> (1/2 + 2/3)/2 = 7/12.
  EXPECT_NEAR(PrAuc({0.1, 0.2}, {0.9}), 7.0 / 12.0, 1e-9);
}

TEST(MetricsTest, BestF1PerfectSeparation) {
  EXPECT_DOUBLE_EQ(BestF1({0.9, 0.8}, {0.1, 0.2}), 1.0);
}

TEST(MetricsTest, PrAucAllTiedUsesDeterministicTieBreak) {
  // Ranked() places positives before negatives at equal score, so a fully
  // tied input degenerates to a perfect ranking under this tie policy.
  EXPECT_NEAR(PrAuc({0.5, 0.5}, {0.5}), 1.0, 1e-9);
  EXPECT_NEAR(PrAuc({0.5}, {0.5, 0.5}), 1.0, 1e-9);
}

TEST(MetricsTest, BestF1AllTiedEvaluatesOnlyFullCut) {
  // With every score equal there is a single feasible threshold cut
  // (predict-all-positive); interior cuts are skipped as tie-continuations.
  // pos {t,t}, neg {t}: tp=2, fp=1, fn=0 -> P=2/3, R=1 -> F1=0.8.
  EXPECT_NEAR(BestF1({0.5, 0.5}, {0.5}), 0.8, 1e-9);
  // pos {t}, neg {t,t}: tp=1, fp=2, fn=0 -> P=1/3, R=1 -> F1=0.5.
  EXPECT_NEAR(BestF1({0.5}, {0.5, 0.5}), 0.5, 1e-9);
}

TEST(MetricsTest, BestF1FindsInteriorThreshold) {
  // pos = {0.9, 0.6}, neg = {0.7, 0.1}. Best threshold ~0.6 ->
  // tp=2, fp=1, fn=0 -> F1 = 2*2/(2*2+1) = 0.8.
  EXPECT_NEAR(BestF1({0.9, 0.6}, {0.7, 0.1}), 0.8, 1e-9);
}

TEST(MetricsTest, MetricsAtThreshold) {
  ThresholdMetrics m = MetricsAtThreshold({0.9, 0.4}, {0.6, 0.1}, 0.5);
  EXPECT_NEAR(m.precision, 0.5, 1e-9);  // tp=1, fp=1
  EXPECT_NEAR(m.recall, 0.5, 1e-9);     // fn=1
  EXPECT_NEAR(m.f1, 0.5, 1e-9);
  EXPECT_NEAR(m.accuracy, 0.5, 1e-9);
}

TEST(MetricsTest, PrecisionAndHitRatioAtK) {
  std::vector<bool> hits = {true, false, true, false, false};
  EXPECT_NEAR(PrecisionAtK(hits, 5), 0.4, 1e-9);
  EXPECT_NEAR(PrecisionAtK(hits, 2), 0.5, 1e-9);
  EXPECT_NEAR(HitRatioAtK(hits, 5, 4), 0.5, 1e-9);
  EXPECT_NEAR(HitRatioAtK(hits, 5, 0), 0.0, 1e-9);
  // Fewer candidates than K: denominator is still K for precision.
  EXPECT_NEAR(PrecisionAtK({true}, 10), 0.1, 1e-9);
}

TEST(MetricsTest, RankingMetricsOnShortCandidateLists) {
  // Candidate list shorter than K: hit ratio still divides by the number of
  // relevant items, not by K or the list length.
  EXPECT_NEAR(HitRatioAtK({true}, 10, 2), 0.5, 1e-9);
  EXPECT_NEAR(HitRatioAtK({true, true}, 10, 2), 1.0, 1e-9);
  // Empty candidate list (isolated query node): both metrics are zero.
  EXPECT_NEAR(PrecisionAtK({}, 10), 0.0, 1e-9);
  EXPECT_NEAR(HitRatioAtK({}, 10, 3), 0.0, 1e-9);
}

TEST(MetricsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_NEAR(SampleStdDev({1, 2, 3}), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(SampleStdDev({5}), 0.0);
}

// ---------- Statistical tests ----------

TEST(StatsTest, IncompleteBetaKnownValues) {
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, 0.3), 0.3, 1e-9);  // uniform
  EXPECT_NEAR(RegularizedIncompleteBeta(2, 2, 0.5), 0.5, 1e-9);  // symmetric
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
}

TEST(StatsTest, StudentTPValueMatchesTables) {
  // t=2.0, df=10 -> two-sided p ~ 0.0734.
  EXPECT_NEAR(StudentTPValue(2.0, 10), 0.0734, 0.001);
  // t=0 -> p=1.
  EXPECT_NEAR(StudentTPValue(0.0, 5), 1.0, 1e-9);
}

TEST(StatsTest, WelchDetectsObviousDifference) {
  std::vector<double> a = {10.0, 10.1, 9.9, 10.2, 9.8, 10.0};
  std::vector<double> b = {5.0, 5.1, 4.9, 5.2, 4.8, 5.0};
  TTestResult r = WelchTTest(a, b);
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_GT(r.t_statistic, 10.0);
}

TEST(StatsTest, WelchNoDifference) {
  std::vector<double> a = {1.0, 1.2, 0.9, 1.1};
  TTestResult r = WelchTTest(a, a);
  EXPECT_GT(r.p_value, 0.9);
}

TEST(StatsTest, PairedTTestDetectsConsistentDelta) {
  std::vector<double> a = {1.01, 2.02, 3.01, 4.02, 5.01};
  std::vector<double> b = {1.00, 2.00, 3.00, 4.00, 5.00};
  TTestResult r = PairedTTest(a, b);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(StatsTest, DegenerateSamplesHandled) {
  TTestResult r = WelchTTest({1.0}, {2.0});
  EXPECT_EQ(r.p_value, 1.0);  // too few samples
  TTestResult same = WelchTTest({1.0, 1.0, 1.0}, {1.0, 1.0, 1.0});
  EXPECT_EQ(same.p_value, 1.0);
}

// ---------- Evaluator with a planted oracle model ----------

/// Oracle that scores true full-graph edges high — an upper bound that the
/// evaluator must rank near-perfectly.
class OracleModel : public EmbeddingModel {
 public:
  explicit OracleModel(const MultiplexHeteroGraph& g) : g_(&g) {}
  std::string name() const override { return "Oracle"; }
  Status Fit(const MultiplexHeteroGraph&, const FitOptions&) override {
    return Status::OK();
  }
  using EmbeddingModel::Fit;
  Tensor Embedding(NodeId v, RelationId r) const override {
    return Tensor::Ones(1, 2);
  }
  double Score(NodeId u, NodeId v, RelationId r) const override {
    return g_->HasEdge(u, v, r) ? 1.0 : 0.0;
  }
  // Score is not a dot of Embedding rows, so the batched default would
  // diverge; route through the virtual Score.
  std::vector<double> ScoreMany(
      std::span<const EdgeTriple> queries) const override {
    std::vector<double> out;
    for (const auto& q : queries) out.push_back(Score(q.src, q.dst, q.rel));
    return out;
  }

 private:
  const MultiplexHeteroGraph* g_;
};

/// Anti-oracle: inverted scores — the evaluator must report ~0 AUC.
class AntiOracleModel : public OracleModel {
 public:
  explicit AntiOracleModel(const MultiplexHeteroGraph& g)
      : OracleModel(g), g_(&g) {}
  double Score(NodeId u, NodeId v, RelationId r) const override {
    return g_->HasEdge(u, v, r) ? 0.0 : 1.0;
  }

 private:
  const MultiplexHeteroGraph* g_;
};

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig c;
    c.node_types = {{"user", 50}, {"item", 30}};
    c.blocks = {{"view", "user", "item", 250, 0.1},
                {"buy", "user", "item", 120, 0.1}};
    c.seed = 3;
    auto g = GenerateSynthetic(c);
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
    Rng rng(4);
    auto split = SplitEdges(graph_, SplitOptions{}, rng);
    ASSERT_TRUE(split.ok());
    split_ = std::move(split).value();
  }

  MultiplexHeteroGraph graph_;
  LinkSplit split_;
};

TEST_F(EvaluatorTest, OracleGetsPerfectClassification) {
  OracleModel oracle(graph_);
  Rng rng(5);
  LinkPredictionResult r = EvaluateLinkPrediction(
      oracle, graph_, split_, EvalOptions{}, rng);
  EXPECT_NEAR(r.roc_auc, 100.0, 1e-6);
  EXPECT_NEAR(r.pr_auc, 100.0, 1e-6);
  EXPECT_NEAR(r.f1, 100.0, 1e-6);
  EXPECT_GT(r.hr_at_k, 0.5);  // test edges rank at the top
}

TEST_F(EvaluatorTest, AntiOracleGetsZeroAuc) {
  AntiOracleModel anti(graph_);
  Rng rng(6);
  LinkPredictionResult r =
      EvaluateLinkPrediction(anti, graph_, split_, EvalOptions{}, rng);
  EXPECT_NEAR(r.roc_auc, 0.0, 1e-6);
  EXPECT_LT(r.hr_at_k, 0.1);
}

TEST_F(EvaluatorTest, EvaluateRelationIsolatesOneRelation) {
  OracleModel oracle(graph_);
  LinkPredictionResult r0 = EvaluateRelation(oracle, split_, 0);
  EXPECT_NEAR(r0.roc_auc, 100.0, 1e-6);
  LinkPredictionResult bogus = EvaluateRelation(oracle, split_, 99);
  EXPECT_EQ(bogus.roc_auc, 0.0);  // empty result for unknown relation
}

TEST_F(EvaluatorTest, ParallelEvaluationMatchesSerial) {
  // Queries are independent and land in indexed slots, so every thread
  // count must produce identical metrics.
  OracleModel oracle(graph_);
  EvalOptions serial;
  serial.num_threads = 1;
  EvalOptions parallel;
  parallel.num_threads = 4;
  Rng rng_a(8);
  LinkPredictionResult a =
      EvaluateLinkPrediction(oracle, graph_, split_, serial, rng_a);
  Rng rng_b(8);
  LinkPredictionResult b =
      EvaluateLinkPrediction(oracle, graph_, split_, parallel, rng_b);
  EXPECT_EQ(a.roc_auc, b.roc_auc);
  EXPECT_EQ(a.pr_auc, b.pr_auc);
  EXPECT_EQ(a.f1, b.f1);
  EXPECT_EQ(a.pr_at_k, b.pr_at_k);
  EXPECT_EQ(a.hr_at_k, b.hr_at_k);
}

TEST_F(EvaluatorTest, DefaultScoreManyMatchesScoreLoop) {
  // For dot-scored models the batched path must agree with per-pair Score.
  class DotModel : public EmbeddingModel {
   public:
    std::string name() const override { return "Dot"; }
    Status Fit(const MultiplexHeteroGraph&, const FitOptions&) override {
      return Status::OK();
    }
    using EmbeddingModel::Fit;
    Tensor Embedding(NodeId v, RelationId r) const override {
      Tensor e(1, 4);
      for (size_t j = 0; j < 4; ++j) {
        e.At(0, j) = static_cast<float>((v + 1) * (j + 1)) /
                     static_cast<float>(8 + r);
      }
      return e;
    }
  };
  DotModel model;
  std::vector<EdgeTriple> queries;
  for (NodeId v = 0; v < 10; ++v) {
    queries.push_back(EdgeTriple{v, static_cast<NodeId>(v + 3),
                                 static_cast<RelationId>(v % 2)});
  }
  std::vector<double> batched = model.ScoreMany(queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(batched[i], model.Score(queries[i].src, queries[i].dst,
                                             queries[i].rel))
        << "query " << i;
  }
}

TEST_F(EvaluatorTest, DegreeBucketsCoverQueries) {
  OracleModel oracle(graph_);
  Rng rng(7);
  std::vector<size_t> edges = {0, 5, 10, 1000};
  std::vector<double> pr =
      PrAtKByDegree(oracle, graph_, split_, edges, 10, EvalOptions{}, rng);
  ASSERT_EQ(pr.size(), 3u);
  double total = 0;
  for (double p : pr) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    total += p;
  }
  EXPECT_GT(total, 0.0);
}

/// Oracle that also counts ScoreMany invocations and records span sizes, to
/// observe how the evaluator batches and caps its work.
class CountingOracleModel : public OracleModel {
 public:
  explicit CountingOracleModel(const MultiplexHeteroGraph& g)
      : OracleModel(g) {}
  std::vector<double> ScoreMany(
      std::span<const EdgeTriple> queries) const override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++calls_;
      spans_.push_back(queries.size());
    }
    return OracleModel::ScoreMany(queries);
  }
  size_t calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_;
  }
  std::vector<size_t> spans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

 private:
  mutable std::mutex mu_;
  mutable size_t calls_ = 0;
  mutable std::vector<size_t> spans_;
};

// Regression: PrAtKByDegree used to hardcode a 400-query cap, ignoring
// EvalOptions::max_ranking_queries. Each ranked query issues exactly one
// ScoreMany batch, so the call count exposes the cap actually applied.
TEST_F(EvaluatorTest, PrAtKByDegreeHonorsMaxRankingQueries) {
  std::map<std::pair<NodeId, RelationId>, size_t> groups;
  for (const auto& e : split_.test_pos) ++groups[{e.src, e.rel}];
  ASSERT_GT(groups.size(), 3u) << "fixture must have more queries than cap";

  CountingOracleModel counting(graph_);
  EvalOptions options;
  options.max_ranking_queries = 3;
  options.num_threads = 1;
  Rng rng(9);
  // One catch-all bucket so no query is dropped by degree filtering.
  std::vector<size_t> edges = {0, 1000000};
  std::vector<double> pr =
      PrAtKByDegree(counting, graph_, split_, edges, 10, options, rng);
  ASSERT_EQ(pr.size(), 1u);
  EXPECT_EQ(counting.calls(), 3u);
}

// Regression: EvaluateRelation used to hardcode num_threads=1 in its
// CollectScores call. With two threads each score list must arrive split
// into two indexed chunks instead of one full-list span.
TEST_F(EvaluatorTest, EvaluateRelationHonorsNumThreads) {
  size_t pos0 = 0, neg0 = 0;
  for (const auto& e : split_.test_pos) pos0 += (e.rel == 0);
  for (const auto& e : split_.test_neg) neg0 += (e.rel == 0);
  ASSERT_GE(pos0, 2u);
  ASSERT_GE(neg0, 2u);

  CountingOracleModel counting(graph_);
  EvalOptions options;
  options.num_threads = 2;
  LinkPredictionResult r = EvaluateRelation(counting, split_, 0, options);
  EXPECT_NEAR(r.roc_auc, 100.0, 1e-6);
  std::vector<size_t> spans = counting.spans();
  EXPECT_EQ(spans.size(), 4u) << "expected 2 chunks per score list";
  for (size_t s : spans) {
    EXPECT_LT(s, std::max(pos0, neg0)) << "full-list span means serial path";
  }
  // The chunking must not change the metrics themselves.
  CountingOracleModel serial(graph_);
  EvalOptions one_thread;
  one_thread.num_threads = 1;
  LinkPredictionResult rs = EvaluateRelation(serial, split_, 0, one_thread);
  EXPECT_EQ(r.roc_auc, rs.roc_auc);
  EXPECT_EQ(r.pr_auc, rs.pr_auc);
  EXPECT_EQ(r.f1, rs.f1);
}

}  // namespace
}  // namespace hybridgnn
