#include <gtest/gtest.h>

#include <cmath>

#include "nn/aggregator.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/semantic_attention.h"
#include "nn/sparse.h"
#include "tensor/init.h"
#include "tensor/optimizer.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace hybridgnn {
namespace {

using testing::SmallBipartite;

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  EXPECT_EQ(layer.parameters().size(), 2u);  // weight + bias
  ag::Var x = ag::Constant(Tensor::Ones(2, 4));
  ag::Var y = layer.Forward(x);
  EXPECT_EQ(y->value.rows(), 2u);
  EXPECT_EQ(y->value.cols(), 3u);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(2);
  Linear layer(4, 3, rng, /*with_bias=*/false);
  EXPECT_EQ(layer.parameters().size(), 1u);
  // Zero input must map to zero output without bias.
  ag::Var y = layer.Forward(ag::Constant(Tensor(2, 4)));
  EXPECT_EQ(y->value.Sum(), 0.0);
}

TEST(LinearTest, IsTrainable) {
  Rng rng(3);
  Linear layer(2, 1, rng);
  Adam opt(0.1f);
  opt.AddParameters(layer.parameters());
  Tensor x_t(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
  std::vector<float> targets = {0, 1, 1, 1};  // learn OR-ish function
  double first_loss = 0, last_loss = 0;
  for (int step = 0; step < 200; ++step) {
    ag::Var logits = layer.Forward(ag::Constant(x_t));
    ag::Var loss = ag::BceWithLogits(logits, targets);
    ag::Backward(loss);
    opt.Step();
    opt.ZeroGrad();
    if (step == 0) first_loss = loss->value.At(0, 0);
    last_loss = loss->value.At(0, 0);
  }
  EXPECT_LT(last_loss, first_loss * 0.5);
}

TEST(EmbeddingTableTest, GatherAndTrain) {
  Rng rng(4);
  EmbeddingTable table(5, 3, rng);
  EXPECT_EQ(table.num_rows(), 5u);
  EXPECT_EQ(table.dim(), 3u);
  ag::Var rows = table.Forward({1, 1, 4});
  EXPECT_EQ(rows->value.rows(), 3u);
  // Rows 1 and 1 identical.
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(rows->value.At(0, j), rows->value.At(1, j));
  }
  // Training updates only gathered rows.
  Adam opt(0.1f);
  opt.AddParameters(table.parameters());
  Tensor before = table.table()->value;
  ag::Var loss = ag::SumAll(ag::Sigmoid(table.Forward({2})));
  ag::Backward(loss);
  opt.Step();
  Tensor after = table.table()->value;
  bool row2_changed = false;
  for (size_t j = 0; j < 3; ++j) {
    if (after.At(2, j) != before.At(2, j)) row2_changed = true;
    EXPECT_EQ(after.At(0, j), before.At(0, j));
  }
  EXPECT_TRUE(row2_changed);
}

TEST(SelfAttentionTest, OutputShapeAndScores) {
  Rng rng(5);
  SelfAttention attn(4, 6, rng);
  EXPECT_EQ(attn.parameters().size(), 3u);
  Tensor h(3, 4);
  UniformInit(h, rng, -1, 1);
  ag::Var out = attn.Forward(ag::Constant(h));
  EXPECT_EQ(out->value.rows(), 3u);
  EXPECT_EQ(out->value.cols(), 6u);
  Tensor scores = attn.AttentionScores(h);
  EXPECT_EQ(scores.rows(), 3u);
  EXPECT_EQ(scores.cols(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    float sum = 0;
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_GE(scores.At(i, j), 0.0f);
      sum += scores.At(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(SelfAttentionTest, SingleRowIsWellDefined) {
  Rng rng(6);
  SelfAttention attn(4, 4, rng);
  Tensor h(1, 4);
  UniformInit(h, rng, -1, 1);
  Tensor scores = attn.AttentionScores(h);
  EXPECT_NEAR(scores.At(0, 0), 1.0f, 1e-6);
}

TEST(SelfAttentionTest, GradientsFlowToAllProjections) {
  Rng rng(7);
  SelfAttention attn(3, 3, rng);
  Tensor h(2, 3);
  UniformInit(h, rng, -1, 1);
  ag::Var loss = ag::MeanAll(attn.Forward(ag::Constant(h)));
  ag::Backward(loss);
  for (const auto& p : attn.parameters()) {
    ASSERT_FALSE(p->grad.empty());
    EXPECT_GT(p->grad.SquaredNorm(), 0.0);
  }
}

TEST(MeanAggregatorTest, CombinesSelfAndNeighbors) {
  Rng rng(8);
  MeanAggregator agg(4, rng);
  // Two segments over a flat 5-row neighbor block: sizes 3 and 2.
  MinibatchFrontier f;
  f.indices = {0, 1, 2, 3, 4};
  f.indptr = {0, 3, 5};
  ag::Var self = ag::Constant(Tensor::Ones(2, 4));
  ag::Var neigh = ag::Constant(Tensor::Full(5, 4, -1.0f));
  ag::Var out = agg.Forward(f, self, neigh);
  EXPECT_EQ(out->value.rows(), 2u);
  EXPECT_EQ(out->value.cols(), 4u);
  // tanh output bounded.
  EXPECT_LE(out->value.AbsMax(), 1.0f);
}

TEST(MeanAggregatorTest, SensitiveToNeighborInput) {
  Rng rng(9);
  MeanAggregator agg(4, rng);
  const MinibatchFrontier& f = MinibatchFrontier::IdentityRow();
  ag::Var self = ag::Constant(Tensor::Ones(1, 4));
  Tensor a = agg.Forward(f, self, ag::Constant(Tensor::Ones(1, 4)))->value;
  Tensor b =
      agg.Forward(f, self, ag::Constant(Tensor::Full(1, 4, -1.0f)))->value;
  EXPECT_GT(Sub(a, b).SquaredNorm(), 1e-8);
}

TEST(PoolingAggregatorTest, ForwardShapes) {
  Rng rng(10);
  PoolingAggregator agg(4, rng);
  ag::Var nbrs = ag::Constant(Tensor::Ones(3, 4));
  ag::Var transformed = agg.TransformNeighbors(nbrs);
  EXPECT_EQ(transformed->value.rows(), 3u);
  // One segment pooling the whole 3-row block.
  MinibatchFrontier f;
  f.indices = {0, 1, 2};
  f.indptr = {0, 3};
  ag::Var out = agg.Forward(f, ag::Constant(Tensor::Ones(1, 4)), nbrs);
  EXPECT_EQ(out->value.rows(), 1u);
  EXPECT_EQ(out->value.cols(), 4u);
}

TEST(SparseTest, NormalizedAdjacencySymmetricAndStochasticish) {
  MultiplexHeteroGraph g = SmallBipartite();
  SparseMatrix s = NormalizedAdjacency(g);
  EXPECT_TRUE(s.symmetric);
  EXPECT_EQ(s.rows, g.num_nodes());
  // All weights positive; the self-loop entry of node i is exactly
  // 1/(deg_i+1); row sums are finite (they may exceed 1 for symmetric
  // normalization, unlike row-stochastic normalization).
  for (size_t i = 0; i < s.rows; ++i) {
    double row_sum = 0;
    double self_weight = -1.0;
    for (size_t e = s.offsets[i]; e < s.offsets[i + 1]; ++e) {
      EXPECT_GT(s.values[e], 0.0f);
      row_sum += s.values[e];
      if (s.col_idx[e] == i) self_weight = s.values[e];
    }
    EXPECT_GT(row_sum, 0.0);
    EXPECT_LT(row_sum, 10.0);
    size_t multi_degree = 0;
    for (const auto& edge : g.edges()) {
      if (edge.src == i || edge.dst == i) ++multi_degree;
    }
    EXPECT_NEAR(self_weight, 1.0 / (multi_degree + 1.0), 1e-5) << "node " << i;
  }
}

TEST(SparseTest, SpMMMatchesDense) {
  MultiplexHeteroGraph g = SmallBipartite();
  SparseMatrix s = NormalizedAdjacency(g);
  Rng rng(11);
  Tensor x(g.num_nodes(), 3);
  UniformInit(x, rng, -1, 1);
  // Dense reference.
  Tensor dense(s.rows, s.cols);
  for (size_t i = 0; i < s.rows; ++i) {
    for (size_t e = s.offsets[i]; e < s.offsets[i + 1]; ++e) {
      dense.At(i, s.col_idx[e]) += s.values[e];
    }
  }
  Tensor ref = MatMul(dense, x);
  ag::Var y = SpMM(s, ag::Constant(x));
  for (size_t i = 0; i < ref.rows(); ++i) {
    for (size_t j = 0; j < ref.cols(); ++j) {
      EXPECT_NEAR(y->value.At(i, j), ref.At(i, j), 1e-5);
    }
  }
}

TEST(SparseTest, SpMMGradientMatchesNumeric) {
  MultiplexHeteroGraph g = SmallBipartite();
  SparseMatrix s = NormalizedAdjacency(g);
  Rng rng(12);
  Tensor x0(g.num_nodes(), 2);
  UniformInit(x0, rng, -0.5, 0.5);
  ag::Var x = ag::Param(x0);
  auto loss_fn = [&] { return ag::SumAll(ag::Sigmoid(SpMM(s, x))); };
  ag::Var loss = loss_fn();
  ag::Backward(loss);
  const float eps = 1e-3f;
  for (size_t i : {size_t{0}, size_t{5}, size_t{9}}) {
    const float saved = x->value.data()[i];
    x->value.data()[i] = saved + eps;
    const float up = loss_fn()->value.At(0, 0);
    x->value.data()[i] = saved - eps;
    const float down = loss_fn()->value.At(0, 0);
    x->value.data()[i] = saved;
    EXPECT_NEAR(x->grad.data()[i], (up - down) / (2 * eps), 2e-2);
  }
}

TEST(SparseTest, RelationAdjacencyRowNormalized) {
  MultiplexHeteroGraph g = SmallBipartite();
  RelationOperator op = RelationAdjacency(g, g.FindRelation("view"));
  for (size_t i = 0; i < op.forward.rows; ++i) {
    double row_sum = 0;
    for (size_t e = op.forward.offsets[i]; e < op.forward.offsets[i + 1];
         ++e) {
      row_sum += op.forward.values[e];
    }
    if (g.Degree(static_cast<NodeId>(i), g.FindRelation("view")) > 0) {
      EXPECT_NEAR(row_sum, 1.0, 1e-5);
    } else {
      EXPECT_EQ(row_sum, 0.0);
    }
  }
  // Transpose really is the transpose.
  EXPECT_EQ(op.transpose.col_idx.size(), op.forward.col_idx.size());
}

TEST(SemanticAttentionTest, WeightsSumToOne) {
  Rng rng(13);
  SemanticAttention sem(4, 8, rng);
  Tensor h(3, 4);
  UniformInit(h, rng, -1, 1);
  Tensor w = sem.Weights(h);
  EXPECT_EQ(w.rows(), 1u);
  EXPECT_EQ(w.cols(), 3u);
  float sum = 0;
  for (size_t j = 0; j < 3; ++j) sum += w.At(0, j);
  EXPECT_NEAR(sum, 1.0f, 1e-5);
}

TEST(SemanticAttentionTest, ForwardIsConvexCombinationShape) {
  Rng rng(14);
  SemanticAttention sem(4, 8, rng);
  Tensor h(3, 4);
  UniformInit(h, rng, -1, 1);
  ag::Var out = sem.Forward(ag::Constant(h));
  EXPECT_EQ(out->value.rows(), 1u);
  EXPECT_EQ(out->value.cols(), 4u);
  // Output bounded by row extrema (convex combination).
  for (size_t j = 0; j < 4; ++j) {
    float lo = 1e9, hi = -1e9;
    for (size_t i = 0; i < 3; ++i) {
      lo = std::min(lo, h.At(i, j));
      hi = std::max(hi, h.At(i, j));
    }
    EXPECT_GE(out->value.At(0, j), lo - 1e-5);
    EXPECT_LE(out->value.At(0, j), hi + 1e-5);
  }
}

TEST(ModuleTest, ParameterCounting) {
  Rng rng(15);
  Linear layer(3, 2, rng);
  EXPECT_EQ(layer.num_scalar_parameters(), 3u * 2u + 2u);
}

}  // namespace
}  // namespace hybridgnn
