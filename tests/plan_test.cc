// Differential tests for compiled execution plans (src/plan): every op the
// tape can record must replay bit-identically to the eager step it was
// traced from — loss values and parameter gradients — under heap and pooled
// tensors, scalar and AVX2 kernel backends, and 1/4 workers. Mirrors
// arena_test.cc's heap-vs-arena differential, one layer up: eager-vs-replay.
//
// Also pins the operational contract: warm replays allocate nothing, frozen
// parameters produce no gradients, un-annotated ops poison the trace (the
// caller stays eager), escaping a traced Var past Finalize CHECK-fails, the
// HYBRIDGNN_PLAN env var overrides FitOptions{compile_plan} both ways, and
// both models (HybridGNN + GATNE) train to bitwise-identical embeddings
// with compile_plan on and off.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/gatne.h"
#include "common/rng.h"
#include "core/hybrid_gnn.h"
#include "graph/frontier.h"
#include "graph/metapath.h"
#include "kernels/kernels.h"
#include "nn/sparse.h"
#include "obs/metrics.h"
#include "plan/plan.h"
#include "tensor/autograd.h"
#include "tensor/init.h"
#include "tensor/pool.h"
#include "test_util.h"

namespace hybridgnn {
namespace {

using ag::Var;

std::vector<uint32_t> Bits(const Tensor& t) {
  std::vector<uint32_t> out(t.size());
  if (!t.empty()) std::memcpy(out.data(), t.data(), t.size() * sizeof(float));
  return out;
}

std::vector<Var> MakeParams(uint64_t seed) {
  Rng rng(seed);
  auto mk = [&](size_t r, size_t c) {
    Tensor t(r, c);
    UniformInit(t, rng, -0.8f, 0.8f);
    return ag::Param(std::move(t));
  };
  // Same fixed menu as arena_test.cc: a [3,4] pair, a [4,2] projection, a
  // [1,4] bias row, and [3,1]/[2,1] score columns.
  return {mk(3, 4), mk(4, 2), mk(3, 4), mk(1, 4), mk(3, 1), mk(2, 1)};
}

struct CaseResult {
  std::vector<uint32_t> loss_bits;
  std::vector<std::vector<uint32_t>> grad_bits;
};

using GraphFn = std::function<Var(const std::vector<Var>&)>;
// Pushes the replay-bound slot arrays (gather indices, segment indptrs, BCE
// targets) in recorded slot order. Null for graphs with no bound inputs.
using BindFn = std::function<void(plan::StepInputs*)>;

constexpr uint64_t kSeed = 0xA12EA;

CaseResult RunEager(const GraphFn& build, uint64_t seed) {
  pool::PoolScope with_pool(true);
  std::vector<Var> params = MakeParams(seed);
  CaseResult r;
  {
    ag::TapeScope tape;
    Var loss = build(params);
    ag::Backward(loss);
    r.loss_bits = Bits(loss->value);
  }
  for (const Var& p : params) r.grad_bits.push_back(Bits(p->grad));
  return r;
}

// Records the graph once, then replays it `replays` times, asserting every
// replay reproduces the same bits (grads reset to empty between replays so
// accumulation starts from scratch without a +0.0f that could flip -0.0).
CaseResult RunCompiled(const GraphFn& build, const BindFn& bind,
                       uint64_t seed, bool pooled, const char* what,
                       int replays = 2) {
  pool::PoolScope pool_scope(pooled);
  std::vector<Var> params = MakeParams(seed);
  std::unique_ptr<plan::CompiledStep> step;
  {
    ag::TapeScope tape;
    plan::Recorder rec;
    Var loss = build(params);
    step = rec.Finalize(loss);
    EXPECT_NE(step, nullptr) << what << ": trace poisoned: "
                             << rec.poison_reason();
  }
  CaseResult first;
  if (!step) return first;
  for (int it = 0; it < replays; ++it) {
    for (const Var& p : params) p->grad = Tensor();
    CaseResult cur;
    {
      ag::TapeScope tape;
      plan::StepInputs in;
      if (bind) bind(&in);
      Var loss = step->ReplayTrain(in);
      ag::Backward(loss);
      cur.loss_bits = Bits(loss->value);
    }
    for (const Var& p : params) cur.grad_bits.push_back(Bits(p->grad));
    if (it == 0) {
      first = std::move(cur);
    } else {
      EXPECT_EQ(cur.loss_bits, first.loss_bits)
          << what << ": replay " << it << " loss drifted";
      EXPECT_EQ(cur.grad_bits, first.grad_bits)
          << what << ": replay " << it << " grads drifted";
    }
  }
  return first;
}

void ExpectCompiledMatchesEager(const GraphFn& build, const BindFn& bind,
                                const char* what) {
  std::vector<kernels::Backend> backends = {kernels::Backend::kScalar};
  if (kernels::Avx2Available()) backends.push_back(kernels::Backend::kAvx2);
  for (kernels::Backend backend : backends) {
    kernels::ScopedBackend guard(backend);
    const CaseResult eager = RunEager(build, kSeed);
    for (bool pooled : {false, true}) {
      const CaseResult compiled =
          RunCompiled(build, bind, kSeed, pooled, what);
      EXPECT_EQ(eager.loss_bits, compiled.loss_bits)
          << what << ": loss differs (pooled=" << pooled
          << ", backend=" << static_cast<int>(backend) << ")";
      ASSERT_EQ(eager.grad_bits.size(), compiled.grad_bits.size());
      for (size_t i = 0; i < eager.grad_bits.size(); ++i) {
        EXPECT_EQ(eager.grad_bits[i], compiled.grad_bits[i])
            << what << ": grad of param " << i << " differs (pooled="
            << pooled << ", backend=" << static_cast<int>(backend) << ")";
      }
    }
  }
}

// Shared frontiers for the segment-op cases. Static storage so the bind
// spans stay valid for the whole Replay call.
const MinibatchFrontier& GatherFrontier() {
  // Two segments over p[0]'s 3 rows, with a duplicate inside a segment.
  static const MinibatchFrontier f{{0, 2, 5}, {2, 0, 2, 1, 0}};
  return f;
}
const MinibatchFrontier& RowFrontier() {
  // Segments p[0]'s own rows: [0,1) and [1,3). No indices (reduce-only).
  static const MinibatchFrontier f{{0, 1, 3}, {}};
  return f;
}
const MinibatchFrontier& EmptySegFrontier() {
  // Middle segment is empty — must reduce to a zero row on both paths.
  static const MinibatchFrontier f{{0, 2, 2, 4}, {0, 1, 2, 0}};
  return f;
}

TEST(PlanDifferential, EveryOpBitIdentical) {
  struct Case {
    const char* name;
    GraphFn build;
    BindFn bind;
  };
  const std::vector<Case> cases = {
      {"MatMul",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::MatMul(p[0], p[1]));
       },
       nullptr},
      {"Add",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::Add(p[0], p[2]));
       },
       nullptr},
      {"Sub",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::Sub(p[0], p[2]));
       },
       nullptr},
      {"Mul",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::Mul(p[0], p[2]));
       },
       nullptr},
      {"AddRowBroadcast",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::AddRowBroadcast(p[0], p[3]));
       },
       nullptr},
      {"ScaleNeg",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::Neg(ag::Scale(p[0], 1.7f)));
       },
       nullptr},
      {"Transpose",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::MatMul(ag::Transpose(p[0]), p[2]));
       },
       nullptr},
      {"Sigmoid",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::Sigmoid(p[0]));
       },
       nullptr},
      {"Tanh",
       [](const std::vector<Var>& p) { return ag::SumAll(ag::Tanh(p[0])); },
       nullptr},
      {"Relu",
       [](const std::vector<Var>& p) { return ag::SumAll(ag::Relu(p[0])); },
       nullptr},
      {"LogSigmoid",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::LogSigmoid(p[0]));
       },
       nullptr},
      {"SoftmaxRows",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::Mul(ag::SoftmaxRows(p[0]), p[2]));
       },
       nullptr},
      {"RowwiseDot",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::RowwiseDot(p[0], p[2]));
       },
       nullptr},
      {"MeanRows",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::MeanRows(p[0]));
       },
       nullptr},
      {"SumRows",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::SumRows(p[0]));
       },
       nullptr},
      {"MeanAll",
       [](const std::vector<Var>& p) { return ag::MeanAll(p[0]); },
       nullptr},
      {"ConcatRows",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::ConcatRows({p[0], p[2]}));
       },
       nullptr},
      {"ConcatCols",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::ConcatCols({p[0], p[2]}));
       },
       nullptr},
      {"SliceRows",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::SliceRows(p[0], 1, 2));
       },
       nullptr},
      {"GatherRowsWithDuplicates",
       [](const std::vector<Var>& p) {
         return ag::SumAll(
             ag::GatherRows(p[0], std::vector<int32_t>{2, 0, 2, 1}));
       },
       [](plan::StepInputs* in) {
         static const std::vector<int32_t> idx = {2, 0, 2, 1};
         in->i32.push_back(idx);
       }},
      {"BceWithLogits",
       [](const std::vector<Var>& p) {
         return ag::BceWithLogits(p[4], {1.0f, 0.0f, 1.0f});
       },
       [](plan::StepInputs* in) {
         static const std::vector<float> y = {1.0f, 0.0f, 1.0f};
         in->f32.push_back(y);
       }},
      {"SgnsLoss",
       [](const std::vector<Var>& p) { return ag::SgnsLoss(p[4], p[5]); },
       nullptr},
      {"AttentionShapedComposite",
       [](const std::vector<Var>& p) {
         Var h = ag::Tanh(ag::MatMul(p[0], p[1]));          // [3,2]
         Var w = ag::SoftmaxRows(ag::Transpose(
             ag::RowwiseDot(h, h)));                        // [1,3]
         Var mixed = ag::MatMul(w, p[2]);                   // [1,4]
         return ag::SumAll(ag::AddRowBroadcast(mixed, p[3]));
       },
       nullptr},
      {"ConstantMul",
       [](const std::vector<Var>& p) {
         Var c = ag::Constant(Tensor::Full(3, 4, 0.25f));
         return ag::SumAll(ag::Mul(c, p[0]));
       },
       nullptr},
      {"GatherSegmentedMean",
       [](const std::vector<Var>& p) {
         Var g = GatherRowsSegmented(p[0], GatherFrontier());
         return ag::SumAll(SegmentMean(g, GatherFrontier()));
       },
       [](plan::StepInputs* in) {
         const MinibatchFrontier& f = GatherFrontier();
         in->i32.push_back(f.indices);
         in->szs.push_back(f.indptr);  // gather's segment grouping
         in->szs.push_back(f.indptr);  // the mean reduction
       }},
      {"GatherSegmentedSum",
       [](const std::vector<Var>& p) {
         Var g = GatherRowsSegmented(p[0], GatherFrontier());
         return ag::SumAll(SegmentSum(g, GatherFrontier()));
       },
       [](plan::StepInputs* in) {
         const MinibatchFrontier& f = GatherFrontier();
         in->i32.push_back(f.indices);
         in->szs.push_back(f.indptr);
         in->szs.push_back(f.indptr);
       }},
      {"GatherSegmentedMax",
       [](const std::vector<Var>& p) {
         Var g = GatherRowsSegmented(p[0], GatherFrontier());
         return ag::SumAll(SegmentMax(g, GatherFrontier()));
       },
       [](plan::StepInputs* in) {
         const MinibatchFrontier& f = GatherFrontier();
         in->i32.push_back(f.indices);
         in->szs.push_back(f.indptr);
         in->szs.push_back(f.indptr);
       }},
      {"SegmentSumDirect",
       [](const std::vector<Var>& p) {
         return ag::SumAll(SegmentSum(p[0], RowFrontier()));
       },
       [](plan::StepInputs* in) {
         in->szs.push_back(RowFrontier().indptr);
       }},
      {"SegmentMeanEmptySegment",
       [](const std::vector<Var>& p) {
         Var g = GatherRowsSegmented(p[0], EmptySegFrontier());
         return ag::SumAll(SegmentMean(g, EmptySegFrontier()));
       },
       [](plan::StepInputs* in) {
         const MinibatchFrontier& f = EmptySegFrontier();
         in->i32.push_back(f.indices);
         in->szs.push_back(f.indptr);
         in->szs.push_back(f.indptr);
       }},
      {"FusedElementwiseChain",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::Tanh(ag::Relu(ag::Scale(p[0], 0.5f))));
       },
       nullptr},
  };
  for (const auto& c : cases) ExpectCompiledMatchesEager(c.build, c.bind,
                                                         c.name);
}

// Data-parallel pattern from HybridGnn::Fit: each worker records and
// replays its own CompiledStep over shared leaves under a per-worker
// GradSinkScope; the reduced gradient must equal serial eager accumulation
// bit for bit. Under TSan this is the compiled-path race check.
TEST(PlanDifferential, ParallelWorkerReplaysMatchSerialEager) {
  constexpr size_t kWorkers = 4;
  std::vector<Var> params = MakeParams(0xFEED);
  auto worker_loss = [&](size_t w) {
    Var scaled = ag::Scale(params[0], 0.5f + static_cast<float>(w));
    return ag::SumAll(ag::RowwiseDot(scaled, params[2]));
  };

  // Serial eager reference: accumulate all workers' grads in worker order.
  for (const Var& p : params) p->grad = Tensor();
  for (size_t w = 0; w < kWorkers; ++w) {
    ag::TapeScope tape;
    ag::Backward(worker_loss(w));
  }
  const std::vector<uint32_t> serial_bits = Bits(params[0]->grad);

  for (const Var& p : params) p->grad = Tensor();
  std::vector<ag::GradSinkScope::Sink> sinks(kWorkers);
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w]() {
      pool::PoolScope with_pool(true);
      std::unique_ptr<plan::CompiledStep> step;
      {
        ag::TapeScope tape;
        plan::Recorder rec;
        Var loss = worker_loss(w);
        step = rec.Finalize(loss);
      }
      ASSERT_NE(step, nullptr);
      ag::GradSinkScope sink_scope(&sinks[w]);
      ag::TapeScope tape;
      ag::Backward(step->ReplayTrain({}));
    });
  }
  for (auto& t : threads) t.join();
  for (size_t w = 0; w < kWorkers; ++w) {
    for (auto& [node, grad] : sinks[w]) node->AccumulateGrad(grad);
  }
  EXPECT_EQ(Bits(params[0]->grad), serial_bits);
}

// Frozen parameters (PassOptions::frozen) get their backward work elided:
// replay produces no gradient for them while every other grad still matches
// eager bit for bit.
TEST(PlanTest, FrozenParamProducesNoGradient) {
  // Tanh(p0) reaches only the frozen leaf, so its backward is elided
  // entirely; Tanh(p2) stays trainable and must match eager exactly.
  GraphFn build = [](const std::vector<Var>& p) {
    return ag::SumAll(ag::Add(ag::Tanh(p[0]), ag::Tanh(p[2])));
  };
  const CaseResult eager = RunEager(build, kSeed);

  pool::PoolScope with_pool(true);
  std::vector<Var> params = MakeParams(kSeed);
  plan::PassOptions opts;
  opts.frozen.insert(params[0].get());
  std::unique_ptr<plan::CompiledStep> step;
  {
    ag::TapeScope tape;
    plan::Recorder rec;
    Var loss = build(params);
    step = rec.Finalize(loss, opts);
  }
  ASSERT_NE(step, nullptr);
  EXPECT_GT(step->plan().stats.dead_grad_elided, 0u);
  for (const Var& p : params) p->grad = Tensor();
  {
    ag::TapeScope tape;
    Var loss = step->ReplayTrain({});
    ag::Backward(loss);
    EXPECT_EQ(Bits(loss->value), eager.loss_bits);
  }
  EXPECT_TRUE(params[0]->grad.empty())
      << "frozen param must not receive a gradient";
  EXPECT_EQ(Bits(params[2]->grad), eager.grad_bits[2])
      << "non-frozen grad must still match eager";
}

// Un-annotated ops (raw ag::MakeOp — SpMM here) poison the trace: Finalize
// returns nullptr with a reason and the caller stays on the eager path.
TEST(PlanTest, UnannotatedOpPoisonsTrace) {
  obs::Counter& poisoned =
      obs::GlobalRegistry().GetCounter("plan/trace_poisoned");
  const uint64_t before = poisoned.value();
  SparseMatrix s;
  s.rows = 3;
  s.cols = 3;
  s.offsets = {0, 1, 2, 3};
  s.col_idx = {0, 1, 2};
  s.values = {1.0f, 1.0f, 1.0f};
  s.symmetric = true;
  pool::PoolScope with_pool(true);
  std::vector<Var> params = MakeParams(kSeed);
  ag::TapeScope tape;
  plan::Recorder rec;
  Var loss = ag::SumAll(SpMM(s, params[0]));
  std::unique_ptr<plan::CompiledStep> step = rec.Finalize(loss);
  EXPECT_EQ(step, nullptr);
  EXPECT_TRUE(rec.poisoned());
  EXPECT_FALSE(rec.poison_reason().empty());
  EXPECT_EQ(poisoned.value(), before + 1);
  // The eager graph is untouched by the failed trace.
  ag::Backward(loss);
  EXPECT_FALSE(params[0]->grad.empty());
}

// Steady-state contract: once frames are warm, replays stop allocating —
// pool misses flat, arena footprint flat, and the executor's own
// replay_alloc_bytes gauge reads zero.
TEST(PlanTest, WarmReplayStopsAllocating) {
  GraphFn build = [](const std::vector<Var>& p) {
    Var h = ag::Relu(ag::MatMul(p[0], p[1]));
    return ag::SumAll(ag::RowwiseDot(h, h));
  };
  pool::PoolScope with_pool(true);
  std::vector<Var> params = MakeParams(0xBEEF);
  std::unique_ptr<plan::CompiledStep> step;
  {
    ag::TapeScope tape;
    plan::Recorder rec;
    Var loss = build(params);
    step = rec.Finalize(loss);
  }
  ASSERT_NE(step, nullptr);
  auto replay = [&]() {
    ag::TapeScope tape;
    Var loss = step->ReplayTrain({});
    ag::Backward(loss);
    for (const Var& p : params) p->ZeroGrad();
  };
  for (int i = 0; i < 10; ++i) replay();  // warmup: grow pool + frames
  const uint64_t miss_before = pool::MissBytes();
  const uint64_t arena_before = ag::Tape::TotalReservedBytes();
  for (int i = 0; i < 50; ++i) replay();
  EXPECT_EQ(pool::MissBytes(), miss_before)
      << "warm replays should not miss the tensor pool";
  EXPECT_EQ(ag::Tape::TotalReservedBytes(), arena_before)
      << "warm replays should not grow any tape arena";
  EXPECT_EQ(obs::GlobalRegistry().GetGauge("plan/replay_alloc_bytes").value(),
            0.0)
      << "executor must report zero forward allocation on warm replays";
}

TEST(PlanTest, EnvVarOverridesRequestedSetting) {
  setenv("HYBRIDGNN_PLAN", "off", 1);
  EXPECT_FALSE(plan::Enabled(true));
  setenv("HYBRIDGNN_PLAN", "0", 1);
  EXPECT_FALSE(plan::Enabled(true));
  setenv("HYBRIDGNN_PLAN", "on", 1);
  EXPECT_TRUE(plan::Enabled(false));
  setenv("HYBRIDGNN_PLAN", "1", 1);
  EXPECT_TRUE(plan::Enabled(false));
  unsetenv("HYBRIDGNN_PLAN");
  EXPECT_TRUE(plan::Enabled(true));
  EXPECT_FALSE(plan::Enabled(false));
}

TEST(PlanTest, CacheCountsRetracesPerGeneration) {
  obs::Counter& retraces = obs::GlobalRegistry().GetCounter("plan/retraces");
  plan::PlanCache cache;
  cache.BeginGeneration(1);
  const uint64_t before = retraces.value();
  plan::PlanCache::Entry& a = cache.Slot(0x11);  // first trace: not a retrace
  EXPECT_EQ(retraces.value(), before);
  cache.Slot(0x22);  // second structure this generation
  EXPECT_EQ(retraces.value(), before + 1);
  EXPECT_EQ(&cache.Slot(0x11), &a);  // existing entry: no new retrace
  EXPECT_EQ(retraces.value(), before + 1);
  EXPECT_EQ(cache.size(), 2u);
  cache.BeginGeneration(2);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Find(0x11), nullptr);
}

// A traced Var that outlives Finalize would dangle into the executor's
// raw-pointer world; the recorder CHECK-fails with a clear message instead.
TEST(PlanDeathTest, EscapedTracedVarFailsFinalize) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        pool::PoolScope with_pool(true);
        std::vector<Var> params = MakeParams(kSeed);
        ag::TapeScope tape;
        plan::Recorder rec;
        Var kept = ag::Tanh(params[0]);  // escapes past Finalize
        Var loss = ag::SumAll(kept);
        rec.Finalize(loss);
      },
      "escaped past plan finalization");
}

// ---- Model end-to-end: compile_plan on must be bitwise invisible ----------

std::vector<MetapathScheme> TinySchemes(const MultiplexHeteroGraph& g) {
  std::vector<MetapathScheme> schemes;
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    schemes.push_back(MetapathScheme::ParseIntra(g, "U-I-U", r).value());
    schemes.push_back(MetapathScheme::ParseIntra(g, "I-U-I", r).value());
  }
  return schemes;
}

HybridGnnConfig TinyConfig() {
  HybridGnnConfig c;
  c.base_dim = 16;
  c.edge_dim = 4;
  c.hidden_dim = 8;
  c.epochs = 2;
  c.batch_size = 64;
  c.max_pairs_per_epoch = 500;
  c.corpus.num_walks_per_node = 3;
  c.corpus.walk_length = 4;
  c.corpus.window = 2;
  c.fanout = 3;
  c.seed = 123;
  return c;
}

std::vector<uint32_t> AllEmbeddingBits(const EmbeddingModel& m,
                                       const MultiplexHeteroGraph& g) {
  std::vector<uint32_t> bits;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (RelationId r = 0; r < g.num_relations(); ++r) {
      const std::vector<uint32_t> row = Bits(m.Embedding(v, r));
      bits.insert(bits.end(), row.begin(), row.end());
    }
  }
  return bits;
}

TEST(PlanModelTest, HybridGnnCompiledMatchesEagerBitwise) {
  MultiplexHeteroGraph g = testing::SmallBipartite();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    FitOptions off;
    off.num_threads = threads;
    off.deterministic = true;
    off.compile_plan = false;
    FitOptions on = off;
    on.compile_plan = true;

    obs::MetricRegistry& reg = obs::GlobalRegistry();
    const uint64_t traces_before = reg.GetCounter("plan/traces").value();
    const uint64_t replays_before = reg.GetCounter("plan/replays").value();
    const uint64_t poisoned_before =
        reg.GetCounter("plan/trace_poisoned").value();

    HybridGnn eager(TinyConfig(), TinySchemes(g));
    HybridGnn compiled(TinyConfig(), TinySchemes(g));
    ASSERT_TRUE(eager.Fit(g, off).ok());
    ASSERT_TRUE(compiled.Fit(g, on).ok());

    EXPECT_GT(reg.GetCounter("plan/traces").value(), traces_before)
        << "compile_plan=true must actually trace (threads=" << threads
        << ")";
    EXPECT_GT(reg.GetCounter("plan/replays").value(), replays_before)
        << "compiled steps must actually replay (threads=" << threads << ")";
    EXPECT_EQ(reg.GetCounter("plan/trace_poisoned").value(), poisoned_before)
        << "the model's step graph must trace cleanly (threads=" << threads
        << ")";
    EXPECT_EQ(AllEmbeddingBits(eager, g), AllEmbeddingBits(compiled, g))
        << "compile_plan changed training results at threads=" << threads;
  }
}

TEST(PlanModelTest, GatneCompiledMatchesEagerBitwise) {
  MultiplexHeteroGraph g = testing::SmallBipartite();
  Gatne::Options o;
  o.base_dim = 16;
  o.edge_dim = 4;
  o.attn_hidden = 8;
  o.fanout = 3;
  o.epochs = 2;
  o.batch_size = 64;
  o.max_pairs_per_epoch = 500;
  o.pretrain_base = false;
  o.restore_best = false;
  o.corpus.num_walks_per_node = 3;
  o.corpus.walk_length = 4;
  o.corpus.window = 2;
  o.seed = 123;

  FitOptions off;
  off.num_threads = 1;
  off.compile_plan = false;
  FitOptions on = off;
  on.compile_plan = true;

  obs::MetricRegistry& reg = obs::GlobalRegistry();
  const uint64_t traces_before = reg.GetCounter("plan/traces").value();
  const uint64_t replays_before = reg.GetCounter("plan/replays").value();
  const uint64_t poisoned_before =
      reg.GetCounter("plan/trace_poisoned").value();

  auto schemes = TinySchemes(g);
  Gatne eager(o, schemes);
  Gatne compiled(o, schemes);
  ASSERT_TRUE(eager.Fit(g, off).ok());
  ASSERT_TRUE(compiled.Fit(g, on).ok());

  EXPECT_GT(reg.GetCounter("plan/traces").value(), traces_before);
  EXPECT_GT(reg.GetCounter("plan/replays").value(), replays_before);
  EXPECT_EQ(reg.GetCounter("plan/trace_poisoned").value(), poisoned_before);
  EXPECT_EQ(AllEmbeddingBits(eager, g), AllEmbeddingBits(compiled, g))
      << "compile_plan changed GATNE training results";
}

}  // namespace
}  // namespace hybridgnn
