#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "tensor/autograd.h"
#include "tensor/init.h"

namespace hybridgnn {
namespace {

using ag::Var;

/// Checks analytic gradients of `loss_fn` against central finite differences
/// for every entry of every parameter. `loss_fn` must rebuild the graph from
/// the parameters' *current values* on each call.
void CheckGradients(const std::vector<Var>& params,
                    const std::function<Var()>& loss_fn, float tol = 2e-2f) {
  for (const Var& p : params) p->ZeroGrad();
  Var loss = loss_fn();
  ag::Backward(loss);
  const float eps = 1e-3f;
  for (const Var& p : params) {
    ASSERT_FALSE(p->grad.empty()) << "parameter received no gradient";
    for (size_t i = 0; i < p->value.size(); ++i) {
      const float saved = p->value.data()[i];
      p->value.data()[i] = saved + eps;
      const float up = loss_fn()->value.At(0, 0);
      p->value.data()[i] = saved - eps;
      const float down = loss_fn()->value.At(0, 0);
      p->value.data()[i] = saved;
      const float numeric = (up - down) / (2.0f * eps);
      const float analytic = p->grad.data()[i];
      EXPECT_NEAR(analytic, numeric,
                  tol * std::max(1.0f, std::abs(numeric)))
          << "entry " << i;
    }
  }
}

Var MakeParam(size_t r, size_t c, uint64_t seed) {
  Rng rng(seed);
  Tensor t(r, c);
  UniformInit(t, rng, -0.8f, 0.8f);
  return ag::Param(std::move(t));
}

TEST(AutogradTest, BackwardRequiresScalarRoot) {
  Var a = ag::Param(Tensor::Ones(1, 1));
  Var b = ag::Scale(a, 2.0f);
  ag::Backward(b);
  EXPECT_FLOAT_EQ(a->grad.At(0, 0), 2.0f);
}

TEST(AutogradTest, ConstantGetsNoGradient) {
  Var c = ag::Constant(Tensor::Ones(2, 2));
  Var p = ag::Param(Tensor::Ones(2, 2));
  Var loss = ag::SumAll(ag::Mul(c, p));
  ag::Backward(loss);
  EXPECT_TRUE(c->grad.empty());
  EXPECT_FALSE(p->grad.empty());
}

TEST(AutogradTest, GradientsAccumulateAcrossBackwardCalls) {
  Var p = ag::Param(Tensor::Ones(1, 1));
  for (int i = 0; i < 2; ++i) {
    Var loss = ag::Scale(p, 3.0f);
    ag::Backward(loss);
  }
  EXPECT_FLOAT_EQ(p->grad.At(0, 0), 6.0f);
  p->ZeroGrad();
  EXPECT_FLOAT_EQ(p->grad.At(0, 0), 0.0f);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // loss = sum(p * p_used_twice): d/dp = 2p handled via two paths.
  Var p = ag::Param(Tensor::Full(1, 1, 3.0f));
  Var loss = ag::SumAll(ag::Mul(p, p));
  ag::Backward(loss);
  EXPECT_FLOAT_EQ(p->grad.At(0, 0), 6.0f);
}

TEST(AutogradGradCheck, MatMul) {
  Var a = MakeParam(3, 4, 1);
  Var b = MakeParam(4, 2, 2);
  CheckGradients({a, b},
                 [&] { return ag::SumAll(ag::MatMul(a, b)); });
}

TEST(AutogradGradCheck, AddSubMul) {
  Var a = MakeParam(2, 3, 3);
  Var b = MakeParam(2, 3, 4);
  CheckGradients({a, b}, [&] {
    return ag::SumAll(ag::Mul(ag::Add(a, b), ag::Sub(a, b)));
  });
}

TEST(AutogradGradCheck, AddRowBroadcast) {
  Var a = MakeParam(3, 2, 5);
  Var bias = MakeParam(1, 2, 6);
  CheckGradients({a, bias}, [&] {
    return ag::SumAll(ag::Sigmoid(ag::AddRowBroadcast(a, bias)));
  });
}

TEST(AutogradGradCheck, Activations) {
  Var a = MakeParam(2, 3, 7);
  CheckGradients({a}, [&] { return ag::SumAll(ag::Sigmoid(a)); });
  CheckGradients({a}, [&] { return ag::SumAll(ag::Tanh(a)); });
  CheckGradients({a}, [&] { return ag::SumAll(ag::LogSigmoid(a)); });
}

TEST(AutogradGradCheck, SoftmaxRows) {
  Var a = MakeParam(2, 4, 8);
  Var w = MakeParam(2, 4, 9);
  CheckGradients({a}, [&] {
    return ag::SumAll(ag::Mul(ag::SoftmaxRows(a), w));
  });
}

TEST(AutogradGradCheck, RowwiseDot) {
  Var a = MakeParam(3, 4, 10);
  Var b = MakeParam(3, 4, 11);
  CheckGradients({a, b}, [&] {
    return ag::SumAll(ag::Sigmoid(ag::RowwiseDot(a, b)));
  });
}

TEST(AutogradGradCheck, MeanAndSumRows) {
  Var a = MakeParam(3, 3, 12);
  CheckGradients({a}, [&] { return ag::SumAll(ag::MeanRows(a)); });
  CheckGradients({a}, [&] { return ag::MeanAll(ag::SumRows(a)); });
}

TEST(AutogradGradCheck, ConcatAndSlice) {
  Var a = MakeParam(2, 3, 13);
  Var b = MakeParam(1, 3, 14);
  CheckGradients({a, b}, [&] {
    Var cat = ag::ConcatRows({a, b});
    return ag::SumAll(ag::Sigmoid(ag::SliceRows(cat, 1, 2)));
  });
}

TEST(AutogradGradCheck, ConcatCols) {
  Var a = MakeParam(2, 2, 15);
  Var b = MakeParam(2, 3, 16);
  CheckGradients({a, b}, [&] {
    return ag::SumAll(ag::Tanh(ag::ConcatCols({a, b})));
  });
}

TEST(AutogradGradCheck, GatherRowsAccumulatesDuplicates) {
  Var table = MakeParam(4, 3, 17);
  CheckGradients({table}, [&] {
    return ag::SumAll(ag::Sigmoid(ag::GatherRows(table, {1, 1, 3})));
  });
}

TEST(AutogradGradCheck, Transpose) {
  Var a = MakeParam(2, 3, 18);
  Var b = MakeParam(2, 3, 19);
  CheckGradients({a, b}, [&] {
    return ag::SumAll(ag::MatMul(ag::Transpose(a), b));
  });
}

TEST(AutogradGradCheck, AttentionShapedComposite) {
  // Mimics the hierarchical attention block: softmax(QK^T/s)V.
  Var h = MakeParam(3, 4, 20);
  Var wq = MakeParam(4, 2, 21);
  Var wk = MakeParam(4, 2, 22);
  Var wv = MakeParam(4, 2, 23);
  CheckGradients({h, wq, wk, wv}, [&] {
    Var q = ag::MatMul(h, wq);
    Var k = ag::MatMul(h, wk);
    Var v = ag::MatMul(h, wv);
    Var attn = ag::SoftmaxRows(
        ag::Scale(ag::MatMul(q, ag::Transpose(k)), 0.7071f));
    return ag::MeanAll(ag::MatMul(attn, v));
  });
}

TEST(AutogradGradCheck, BceWithLogits) {
  Var logits = MakeParam(4, 1, 24);
  std::vector<float> targets = {1.0f, 0.0f, 1.0f, 0.0f};
  CheckGradients({logits},
                 [&] { return ag::BceWithLogits(logits, targets); });
}

TEST(AutogradGradCheck, SgnsLoss) {
  Var pos = MakeParam(3, 1, 25);
  Var neg = MakeParam(5, 1, 26);
  CheckGradients({pos, neg}, [&] { return ag::SgnsLoss(pos, neg); });
}

TEST(AutogradTest, SgnsLossHandlesMissingSides) {
  Var pos = MakeParam(3, 1, 27);
  Var loss_pos_only = ag::SgnsLoss(pos, nullptr);
  EXPECT_GT(loss_pos_only->value.At(0, 0), 0.0f);
  Var neg = MakeParam(3, 1, 28);
  Var loss_neg_only = ag::SgnsLoss(nullptr, neg);
  EXPECT_GT(loss_neg_only->value.At(0, 0), 0.0f);
}

TEST(AutogradTest, BceMatchesManualComputation) {
  Tensor t(2, 1);
  t.At(0, 0) = 2.0f;
  t.At(1, 0) = -1.0f;
  Var logits = ag::Param(std::move(t));
  Var loss = ag::BceWithLogits(logits, {1.0f, 0.0f});
  const float expected =
      0.5f * (std::log1p(std::exp(-2.0f)) + std::log1p(std::exp(-1.0f)));
  EXPECT_NEAR(loss->value.At(0, 0), expected, 1e-5);
}

}  // namespace
}  // namespace hybridgnn
