#include <gtest/gtest.h>

#include <cmath>

#include "baselines/registry.h"
#include "core/hybrid_gnn.h"
#include "data/profiles.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "eval/stats_test.h"
#include "graph/stats.h"

namespace hybridgnn {
namespace {

/// Full pipeline: dataset profile -> split -> train -> evaluate. This is the
/// same path every bench binary takes; the test pins its invariants.
TEST(IntegrationTest, EndToEndPipelineOnTaobaoProfile) {
  auto ds = MakeDataset("taobao", 0.06, 31);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  GraphStats stats = ComputeStats(ds->graph);
  EXPECT_EQ(stats.num_relations, 4u);
  EXPECT_LT(stats.isolated_nodes, stats.num_nodes / 2);

  Rng rng(32);
  SplitOptions options;
  options.hard_negative_fraction = 0.2;
  auto split = SplitEdges(ds->graph, options, rng);
  ASSERT_TRUE(split.ok()) << split.status().ToString();

  HybridGnnConfig config;
  config.base_dim = 32;
  config.edge_dim = 4;
  config.hidden_dim = 8;
  config.epochs = 2;
  config.max_pairs_per_epoch = 4000;
  config.corpus.num_walks_per_node = 4;
  config.corpus.walk_length = 6;
  config.corpus.window = 2;
  config.seed = 33;
  HybridGnn model(config, ds->schemes);
  ASSERT_TRUE(model.Fit(split->train_graph).ok());

  Rng eval_rng(34);
  EvalOptions opts;
  opts.max_ranking_queries = 30;
  LinkPredictionResult r = EvaluateLinkPrediction(
      model, ds->graph, *split, opts, eval_rng);
  // The generator plants strong community structure; even a briefly trained
  // HybridGNN must clearly beat chance.
  EXPECT_GT(r.roc_auc, 54.0);
  EXPECT_GT(r.pr_auc, 52.0);
  EXPECT_GT(r.f1, 55.0);
  EXPECT_GE(r.pr_at_k, 0.0);
  EXPECT_GE(r.hr_at_k, 0.0);
}

/// The Table VI mechanism: enlarging the relation subset from one relation
/// toward the full graph must not break the pipeline, and HybridGNN must be
/// trainable on every subset.
TEST(IntegrationTest, RelationSubsetGrowthPipeline) {
  auto ds = MakeDataset("youtube", 0.5, 41);
  ASSERT_TRUE(ds.ok());
  for (size_t keep = 1; keep <= ds->graph.num_relations(); keep += 2) {
    std::vector<RelationId> rels;
    for (RelationId r = 0; r < keep; ++r) rels.push_back(r);
    auto sub = ds->graph.ExtractRelationSubset(rels);
    ASSERT_TRUE(sub.ok());
    EXPECT_EQ(sub->num_relations(), keep);
    Rng rng(42);
    auto split = SplitEdges(*sub, SplitOptions{}, rng);
    ASSERT_TRUE(split.ok());
    HybridGnnConfig config;
    config.base_dim = 16;
    config.edge_dim = 4;
    config.hidden_dim = 8;
    config.epochs = 1;
    config.max_pairs_per_epoch = 1500;
    config.corpus.num_walks_per_node = 2;
    config.corpus.walk_length = 4;
    config.corpus.window = 2;
    std::vector<MetapathScheme> schemes;
    for (const auto& s : ds->schemes) {
      if (s.relation() < keep) schemes.push_back(s);
    }
    HybridGnn model(config, schemes);
    ASSERT_TRUE(model.Fit(split->train_graph).ok()) << "keep=" << keep;
    EXPECT_TRUE(std::isfinite(model.Embedding(0, 0).Sum()));
  }
}

/// Repeated-seed evaluation feeds the paper's t-test; the machinery must
/// produce sane p-values when comparing a model against itself (high p) and
/// two clearly different score samples (low p).
TEST(IntegrationTest, SeedSweepAndTTestMachinery) {
  auto ds = MakeDataset("amazon", 0.15, 51);
  ASSERT_TRUE(ds.ok());
  std::vector<double> run_a, run_b;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(60 + seed);
    auto split = SplitEdges(ds->graph, SplitOptions{}, rng);
    ASSERT_TRUE(split.ok());
    ModelBudget budget;
    budget.effort = 0.2;
    budget.num_walks = 2;
    budget.walk_length = 5;
    budget.window = 2;
    budget.max_pairs_per_epoch = 1500;
    auto dw = CreateModel("DeepWalk", ds->schemes, seed, budget);
    ASSERT_TRUE(dw.ok());
    ASSERT_TRUE((*dw)->Fit(split->train_graph).ok());
    Rng eval_rng(70 + seed);
    EvalOptions opts;
    opts.max_ranking_queries = 10;
    LinkPredictionResult r = EvaluateLinkPrediction(
        **dw, ds->graph, *split, opts, eval_rng);
    run_a.push_back(r.roc_auc);
    run_b.push_back(r.roc_auc + 20.0);  // synthetic clearly-better model
  }
  TTestResult same = WelchTTest(run_a, run_a);
  EXPECT_GT(same.p_value, 0.9);
  TTestResult diff = WelchTTest(run_b, run_a);
  EXPECT_LT(diff.p_value, 0.05);
}

}  // namespace
}  // namespace hybridgnn
