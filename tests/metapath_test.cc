#include <gtest/gtest.h>

#include "graph/metapath.h"
#include "test_util.h"

namespace hybridgnn {
namespace {

using testing::SmallBipartite;

TEST(MetapathSchemeTest, BasicProperties) {
  MultiplexHeteroGraph g = SmallBipartite();
  MetapathScheme s({0, 1, 0}, {0, 0});
  EXPECT_EQ(s.length(), 2u);
  EXPECT_EQ(s.source_type(), 0);
  EXPECT_EQ(s.target_type(), 0);
  EXPECT_TRUE(s.IsIntraRelationship());
  EXPECT_EQ(s.relation(), 0);
  EXPECT_TRUE(s.Validate(g).ok());
}

TEST(MetapathSchemeTest, InterRelationshipDetected) {
  MetapathScheme s({0, 1, 0}, {0, 1});
  EXPECT_FALSE(s.IsIntraRelationship());
}

TEST(MetapathSchemeTest, ValidateCatchesUnknownIds) {
  MultiplexHeteroGraph g = SmallBipartite();
  MetapathScheme bad_type({0, 9, 0}, {0, 0});
  EXPECT_FALSE(bad_type.Validate(g).ok());
  MetapathScheme bad_rel({0, 1, 0}, {0, 9});
  EXPECT_FALSE(bad_rel.Validate(g).ok());
}

TEST(MetapathSchemeTest, ToStringReadable) {
  MultiplexHeteroGraph g = SmallBipartite();
  MetapathScheme s({0, 1, 0}, {1, 1});
  EXPECT_EQ(s.ToString(g), "user -buy-> item -buy-> user");
}

TEST(MetapathSchemeTest, ParseIntraFullNames) {
  MultiplexHeteroGraph g = SmallBipartite();
  auto s = MetapathScheme::ParseIntra(g, "user-item-user", 0);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->node_types(), (std::vector<NodeTypeId>{0, 1, 0}));
}

TEST(MetapathSchemeTest, ParseIntraSingleLetterShorthand) {
  MultiplexHeteroGraph g = SmallBipartite();
  auto s = MetapathScheme::ParseIntra(g, "U-I-U", 1);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->node_types(), (std::vector<NodeTypeId>{0, 1, 0}));
  EXPECT_EQ(s->relation(), 1);
}

TEST(MetapathSchemeTest, ParseIntraErrors) {
  MultiplexHeteroGraph g = SmallBipartite();
  EXPECT_FALSE(MetapathScheme::ParseIntra(g, "U", 0).ok());       // too short
  EXPECT_FALSE(MetapathScheme::ParseIntra(g, "U-X-U", 0).ok());   // unknown
  EXPECT_FALSE(MetapathScheme::ParseIntra(g, "U-I-U", 9).ok());   // bad rel
}

TEST(MetapathSchemeTest, EqualityOperator) {
  MetapathScheme a({0, 1, 0}, {0, 0});
  MetapathScheme b({0, 1, 0}, {0, 0});
  MetapathScheme c({0, 1, 0}, {1, 1});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(DefaultSchemesTest, GeneratesSymmetricTwoHops) {
  MultiplexHeteroGraph g = SmallBipartite();
  auto schemes = DefaultSchemes(g, 8);
  ASSERT_FALSE(schemes.empty());
  for (const auto& s : schemes) {
    EXPECT_EQ(s.length(), 2u);
    EXPECT_TRUE(s.IsIntraRelationship());
    EXPECT_EQ(s.node_types()[0], s.node_types()[2]);
    EXPECT_TRUE(s.Validate(g).ok());
  }
  // Bipartite: user-item-user and item-user-item per relation -> 4 total.
  EXPECT_EQ(schemes.size(), 4u);
}

TEST(DefaultSchemesTest, RespectsCap) {
  MultiplexHeteroGraph g = SmallBipartite();
  auto schemes = DefaultSchemes(g, 1);
  EXPECT_EQ(schemes.size(), 2u);  // one per relation
}

TEST(SchemesForNodeTest, FiltersBySourceTypeAndRelation) {
  MultiplexHeteroGraph g = SmallBipartite();
  auto schemes = DefaultSchemes(g, 8);
  auto for_user_view = SchemesForNode(schemes, g, 0, 0);
  for (const auto* s : for_user_view) {
    EXPECT_EQ(s->source_type(), g.node_type(0));
    EXPECT_EQ(s->relation(), 0);
  }
  EXPECT_EQ(for_user_view.size(), 1u);
  auto for_item_buy = SchemesForNode(schemes, g, 4, 1);
  EXPECT_EQ(for_item_buy.size(), 1u);
  EXPECT_EQ(for_item_buy[0]->source_type(), 1);
}

}  // namespace
}  // namespace hybridgnn
