// Statistical goodness-of-fit tests for the sampling primitives: Walker's
// alias method (sampling/alias.cc) and the heterogeneous negative sampler.
// Each test draws at least one million samples with a fixed seed and runs a
// Pearson chi-squared test against the target distribution; critical values
// are hardcoded at significance alpha = 0.001, so a correct sampler with
// these exact seeds passes deterministically while a biased one (wrong
// alias construction, off-by-one bucket, unnormalized weights) fails by
// many orders of magnitude.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sampling/alias.h"
#include "sampling/negative_sampler.h"
#include "test_util.h"

namespace hybridgnn {
namespace {

constexpr size_t kDraws = 1u << 20;  // ~1.05e6

/// Pearson chi-squared statistic of observed counts against expected
/// probabilities (which must sum to ~1). Buckets with zero expected mass
/// must have zero observed count — asserted, since a single draw from a
/// zero-weight bucket is a hard sampler bug, not statistical noise.
double ChiSquared(const std::vector<uint64_t>& observed,
                  const std::vector<double>& expected_probs, size_t draws) {
  EXPECT_EQ(observed.size(), expected_probs.size());
  double chi2 = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_probs[i] * static_cast<double>(draws);
    if (expected == 0.0) {
      EXPECT_EQ(observed[i], 0u) << "draw from zero-weight bucket " << i;
      continue;
    }
    const double d = static_cast<double>(observed[i]) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

std::vector<double> Normalize(std::vector<double> w) {
  double total = 0.0;
  for (double x : w) total += x;
  for (double& x : w) x /= total;
  return w;
}

// Upper critical values of the chi-squared distribution at alpha = 0.001.
constexpr double kChi2Crit_df2 = 13.816;
constexpr double kChi2Crit_df3 = 16.266;
constexpr double kChi2Crit_df6 = 22.458;
constexpr double kChi2Crit_df9 = 27.877;

TEST(AliasTableStatsTest, UniformWeightsFitUniform) {
  const std::vector<double> weights(10, 3.5);
  AliasTable table(weights);
  Rng rng(1001);
  std::vector<uint64_t> counts(weights.size(), 0);
  for (size_t i = 0; i < kDraws; ++i) ++counts[table.Sample(rng)];
  const double chi2 = ChiSquared(counts, Normalize(weights), kDraws);
  EXPECT_LT(chi2, kChi2Crit_df9) << "uniform alias sampling is biased";
}

TEST(AliasTableStatsTest, SkewedWeightsFitTarget) {
  // Heavy skew plus a zero weight: index 2 must never be drawn, and the
  // remaining mass must match to chi-squared precision.
  const std::vector<double> weights = {100.0, 1.0, 0.0, 25.0, 0.5, 0.5, 3.0};
  AliasTable table(weights);
  Rng rng(1002);
  std::vector<uint64_t> counts(weights.size(), 0);
  for (size_t i = 0; i < kDraws; ++i) ++counts[table.Sample(rng)];
  // df = 7 buckets - 1 zero bucket - 1 = 5; using the df=6 critical value
  // is slightly conservative in the passing direction for a correct
  // sampler and still fails catastrophically for a biased one.
  const double chi2 = ChiSquared(counts, Normalize(weights), kDraws);
  EXPECT_LT(chi2, kChi2Crit_df6) << "skewed alias sampling is biased";
}

TEST(AliasTableStatsTest, PowerLawWeightsFitTarget) {
  // The shape the negative sampler actually feeds in: degree^0.75.
  std::vector<double> weights(10);
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = std::pow(static_cast<double>(i * i % 17) + 1e-3, 0.75);
  }
  AliasTable table(weights);
  Rng rng(1003);
  std::vector<uint64_t> counts(weights.size(), 0);
  for (size_t i = 0; i < kDraws; ++i) ++counts[table.Sample(rng)];
  const double chi2 = ChiSquared(counts, Normalize(weights), kDraws);
  EXPECT_LT(chi2, kChi2Crit_df9) << "power-law alias sampling is biased";
}

TEST(NegativeSamplerStatsTest, PerTypeDistributionMatchesSmoothedDegrees) {
  // SmallBipartite degrees (view + buy): items 4,5,6 have total degree
  // 4,2,2; users 0..3 have 3,2,2,1. The sampler's per-type target is
  // (TotalDegree + 1e-3)^0.75 restricted to the type.
  MultiplexHeteroGraph g = testing::SmallBipartite();
  NegativeSampler sampler(g);
  const NodeTypeId item = g.FindNodeType("item");
  const NodeTypeId user = g.FindNodeType("user");
  ASSERT_NE(item, kInvalidNodeType);
  ASSERT_NE(user, kInvalidNodeType);

  Rng rng(1004);
  {
    const auto& items = g.NodesOfType(item);
    ASSERT_EQ(items.size(), 3u);
    std::vector<double> weights(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      weights[i] =
          std::pow(static_cast<double>(g.TotalDegree(items[i])) + 1e-3, 0.75);
    }
    std::vector<uint64_t> counts(items.size(), 0);
    for (size_t i = 0; i < kDraws; ++i) {
      const NodeId v = sampler.SampleOfType(item, rng);
      ASSERT_EQ(g.node_type(v), item) << "wrong-type sample " << v;
      size_t idx = items.size();
      for (size_t j = 0; j < items.size(); ++j) {
        if (items[j] == v) idx = j;
      }
      ASSERT_LT(idx, items.size());
      ++counts[idx];
    }
    const double chi2 = ChiSquared(counts, Normalize(weights), kDraws);
    EXPECT_LT(chi2, kChi2Crit_df2) << "item negatives are biased";
  }
  {
    const auto& users = g.NodesOfType(user);
    ASSERT_EQ(users.size(), 4u);
    std::vector<double> weights(users.size());
    for (size_t i = 0; i < users.size(); ++i) {
      weights[i] =
          std::pow(static_cast<double>(g.TotalDegree(users[i])) + 1e-3, 0.75);
    }
    std::vector<uint64_t> counts(users.size(), 0);
    for (size_t i = 0; i < kDraws; ++i) {
      const NodeId v = sampler.SampleOfType(user, rng);
      ASSERT_EQ(g.node_type(v), user) << "wrong-type sample " << v;
      ++counts[v];  // users are nodes 0..3
    }
    const double chi2 = ChiSquared(counts, Normalize(weights), kDraws);
    EXPECT_LT(chi2, kChi2Crit_df3) << "user negatives are biased";
  }
}

TEST(NegativeSamplerStatsTest, SampleLikeIsTypePureAndAvoidsSelf) {
  // Regression for the type-compatibility contract: a negative for an item
  // context must be an item, never a user (and vice versa), and must avoid
  // the context node itself except for the documented tiny-type-set
  // fallback after 8 rejection attempts.
  MultiplexHeteroGraph g = testing::SmallBipartite();
  NegativeSampler sampler(g);
  Rng rng(1005);
  constexpr size_t kLikeDraws = 200000;
  for (NodeId like : {NodeId{0}, NodeId{4}}) {
    const NodeTypeId want = g.node_type(like);
    size_t self_hits = 0;
    for (size_t i = 0; i < kLikeDraws; ++i) {
      const NodeId v = sampler.SampleLike(like, rng);
      ASSERT_EQ(g.node_type(v), want)
          << "SampleLike(" << like << ") returned wrong-type node " << v;
      if (v == like) ++self_hits;
    }
    // Collision survives only if 8 retries all hit `like`; even for the
    // heaviest node here (item 4, p ~ 0.457) that is p^9 < 1e-3.
    EXPECT_LT(self_hits, kLikeDraws / 100)
        << "SampleLike returns the excluded node too often";
  }
}

TEST(NegativeSamplerStatsTest, SampleAnyCoversAllNodesByDegreeMass) {
  MultiplexHeteroGraph g = testing::SmallBipartite();
  NegativeSampler sampler(g);
  Rng rng(1006);
  std::vector<double> weights(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    weights[v] =
        std::pow(static_cast<double>(g.TotalDegree(v)) + 1e-3, 0.75);
  }
  std::vector<uint64_t> counts(g.num_nodes(), 0);
  for (size_t i = 0; i < kDraws; ++i) ++counts[sampler.SampleAny(rng)];
  const double chi2 = ChiSquared(counts, Normalize(weights), kDraws);
  EXPECT_LT(chi2, kChi2Crit_df6) << "global negative sampling is biased";
}

}  // namespace
}  // namespace hybridgnn
