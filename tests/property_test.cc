// Property-style sweeps across all five dataset profiles: every invariant
// here must hold for ANY generated multiplex heterogeneous graph, not just
// the hand-built fixtures.

#include <gtest/gtest.h>

#include <set>

#include "data/profiles.h"
#include "data/split.h"
#include "graph/stats.h"
#include "sampling/corpus.h"
#include "sampling/exploration.h"
#include "sampling/negative_sampler.h"
#include "sampling/walker.h"

namespace hybridgnn {
namespace {

class ProfilePropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    auto ds = MakeDataset(GetParam(), 0.12, 1234);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = std::move(ds).value();
  }
  Dataset dataset_;
};

TEST_P(ProfilePropertyTest, AdjacencyIsSymmetricAndSorted) {
  const auto& g = dataset_.graph;
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      auto nbrs = g.Neighbors(v, r);
      for (size_t i = 0; i + 1 < nbrs.size(); ++i) {
        ASSERT_LE(nbrs[i], nbrs[i + 1]);
      }
      for (NodeId u : nbrs) {
        ASSERT_TRUE(g.HasEdge(u, v, r)) << "asymmetric adjacency";
      }
    }
  }
}

TEST_P(ProfilePropertyTest, DegreeSumsMatchEdgeCounts) {
  const auto& g = dataset_.graph;
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    size_t degree_sum = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) degree_sum += g.Degree(v, r);
    EXPECT_EQ(degree_sum, 2 * g.EdgesOfRelation(r).size());
  }
}

TEST_P(ProfilePropertyTest, ActiveRelationsConsistentWithDegrees) {
  const auto& g = dataset_.graph;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::set<RelationId> active(g.ActiveRelations(v).begin(),
                                g.ActiveRelations(v).end());
    for (RelationId r = 0; r < g.num_relations(); ++r) {
      EXPECT_EQ(active.count(r) > 0, g.Degree(v, r) > 0);
    }
  }
}

TEST_P(ProfilePropertyTest, ExplorationProbabilitiesSumToOne) {
  const auto& g = dataset_.graph;
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    NodeId v = static_cast<NodeId>(rng.UniformUint64(g.num_nodes()));
    if (g.TotalDegree(v) == 0) continue;
    double total = 0.0;
    // Sum closed-form transition probabilities over the union neighborhood.
    std::set<NodeId> candidates;
    for (RelationId r : g.ActiveRelations(v)) {
      auto nbrs = g.Neighbors(v, r);
      candidates.insert(nbrs.begin(), nbrs.end());
    }
    for (NodeId u : candidates) {
      total += ExplorationTransitionProbability(g, v, u);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_P(ProfilePropertyTest, MetapathWalksRespectSchemes) {
  const auto& g = dataset_.graph;
  Rng rng(7);
  for (const auto& scheme : dataset_.schemes) {
    const auto& starts = g.NodesOfType(scheme.source_type());
    ASSERT_FALSE(starts.empty());
    for (int trial = 0; trial < 10; ++trial) {
      NodeId start = starts[rng.UniformUint64(starts.size())];
      auto walk = MetapathWalk(g, scheme, start, 6, rng);
      const auto& types = scheme.node_types();
      const size_t cycle = types.size() - 1;
      for (size_t k = 0; k < walk.size(); ++k) {
        const NodeTypeId want = types[k % cycle == 0 && k > 0 ? cycle
                                                              : k % cycle];
        // Position-0 type is the source; afterwards the cycle repeats.
        if (k == 0) {
          EXPECT_EQ(g.node_type(walk[k]), scheme.source_type());
        } else {
          EXPECT_EQ(g.node_type(walk[k]), want) << "walk pos " << k;
        }
        if (k > 0) {
          EXPECT_TRUE(g.HasEdge(walk[k - 1], walk[k], scheme.relation()));
        }
      }
    }
  }
}

TEST_P(ProfilePropertyTest, SplitPartitionsAreDisjointAndComplete) {
  const auto& g = dataset_.graph;
  Rng rng(9);
  auto split = SplitEdges(g, SplitOptions{}, rng);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  auto key = [](const EdgeTriple& e) {
    return (static_cast<uint64_t>(e.rel) << 48) |
           (static_cast<uint64_t>(e.src) << 24) | e.dst;
  };
  std::set<uint64_t> seen;
  size_t total = 0;
  for (const auto* part :
       {&split->train_edges, &split->val_pos, &split->test_pos}) {
    for (const auto& e : *part) {
      EXPECT_TRUE(seen.insert(key(e)).second) << "edge in two partitions";
      ++total;
    }
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST_P(ProfilePropertyTest, HardNegativesAreNeverPositives) {
  const auto& g = dataset_.graph;
  Rng rng(11);
  SplitOptions options;
  options.hard_negative_fraction = 1.0;  // force the hard path
  auto split = SplitEdges(g, options, rng);
  ASSERT_TRUE(split.ok());
  for (const auto& e : split->test_neg) {
    EXPECT_FALSE(g.HasEdge(e.src, e.dst, e.rel));
  }
}

TEST_P(ProfilePropertyTest, RelationAwareNegativesRespectTypeAndNonEdge) {
  const auto& g = dataset_.graph;
  NegativeSampler sampler(g);
  Rng rng(13);
  const auto& edges = g.edges();
  for (int trial = 0; trial < 200; ++trial) {
    const auto& e = edges[rng.UniformUint64(edges.size())];
    NodeId x = sampler.SampleRelationAware(e.src, e.dst, e.rel, 1.0, rng);
    // The draw is either a cross-relation hard negative (guaranteed to be a
    // non-edge under rel) or a unigram fallback; in both cases the type
    // matches the context node and the center itself is never returned.
    EXPECT_EQ(g.node_type(x), g.node_type(e.dst));
    EXPECT_NE(x, e.src);
  }
}

TEST_P(ProfilePropertyTest, CorpusPairsReferenceRealNodes) {
  const auto& g = dataset_.graph;
  Rng rng(15);
  CorpusOptions options;
  options.num_walks_per_node = 1;
  options.walk_length = 4;
  options.window = 2;
  WalkCorpus corpus = BuildMetapathCorpus(g, dataset_.schemes, options, rng);
  ASSERT_FALSE(corpus.pairs.empty());
  for (const auto& p : corpus.pairs) {
    ASSERT_LT(p.center, g.num_nodes());
    ASSERT_LT(p.context, g.num_nodes());
    ASSERT_LT(p.rel, g.num_relations());
    // Walks may revisit nodes (cycles), so center == context is legal for
    // windowed pairs; direct-edge pairs are always distinct endpoints.
  }
}

TEST_P(ProfilePropertyTest, StatsAreInternallyConsistent) {
  const auto& g = dataset_.graph;
  GraphStats s = ComputeStats(g);
  size_t type_total = 0;
  for (size_t n : s.nodes_per_type) type_total += n;
  EXPECT_EQ(type_total, s.num_nodes);
  size_t rel_total = 0;
  for (size_t n : s.edges_per_relation) rel_total += n;
  EXPECT_EQ(rel_total, s.num_edges);
  EXPECT_GE(s.multiplex_pair_fraction, 0.0);
  EXPECT_LE(s.multiplex_pair_fraction, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfilePropertyTest,
                         ::testing::Values("amazon", "youtube", "imdb",
                                           "taobao", "kuaishou"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

}  // namespace
}  // namespace hybridgnn
