#include "common/threadpool.h"

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"

namespace hybridgnn {
namespace {

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroItemsReturnsImmediately) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NestedSubmitIsDrainedByWait) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int outer = 0; outer < 8; ++outer) {
    pool.Submit([&pool, &done] {
      done.fetch_add(1);
      // A task may enqueue follow-up work; Wait() must cover it too.
      pool.Submit([&done] { done.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPoolTest, ExceptionInTaskDoesNotDeadlockAndIsRethrown) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, ExceptionInParallelForBodyPropagates) {
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](size_t i) {
                                  visited.fetch_add(1);
                                  if (i == 42) {
                                    throw std::runtime_error("bad index");
                                  }
                                }),
               std::runtime_error);
  // Still alive: a clean run afterwards succeeds.
  pool.ParallelFor(10, [&](size_t) { visited.fetch_add(1); });
}

TEST(RunParallelTest, SerialModeRunsInIndexOrder) {
  std::vector<size_t> order;
  RunParallel(/*num_threads=*/1, 16, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(RunParallelTest, ParallelModeCoversAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  RunParallel(/*num_threads=*/4, hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(RunParallelTest, NullPoolRunsSerial) {
  std::vector<size_t> order;
  RunParallel(static_cast<ThreadPool*>(nullptr), 5,
              [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace hybridgnn
