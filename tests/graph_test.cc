#include <gtest/gtest.h>

#include <set>

#include "graph/graph.h"
#include "graph/stats.h"
#include "test_util.h"

namespace hybridgnn {
namespace {

using testing::SmallBipartite;

TEST(GraphBuilderTest, DuplicateTypeOrRelationRejected) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddNodeType("user").ok());
  EXPECT_FALSE(b.AddNodeType("user").ok());
  ASSERT_TRUE(b.AddRelation("view").ok());
  EXPECT_FALSE(b.AddRelation("view").ok());
}

TEST(GraphBuilderTest, AddNodeValidatesType) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddNodeType("user").ok());
  EXPECT_TRUE(b.AddNode(0).ok());
  EXPECT_FALSE(b.AddNode(5).ok());
}

TEST(GraphBuilderTest, AddEdgeValidation) {
  GraphBuilder b;
  NodeTypeId t = b.AddNodeType("n").value();
  RelationId r = b.AddRelation("r").value();
  ASSERT_TRUE(b.AddNodes(t, 3).ok());
  EXPECT_TRUE(b.AddEdge(0, 1, r).ok());
  EXPECT_FALSE(b.AddEdge(0, 0, r).ok());   // self loop
  EXPECT_FALSE(b.AddEdge(0, 9, r).ok());   // out of range
  EXPECT_FALSE(b.AddEdge(0, 1, 7).ok());   // unknown relation
}

TEST(GraphBuilderTest, BuildRequiresTypesAndRelations) {
  GraphBuilder empty;
  EXPECT_FALSE(empty.Build().ok());
  GraphBuilder only_types;
  ASSERT_TRUE(only_types.AddNodeType("n").ok());
  EXPECT_FALSE(only_types.Build().ok());
}

TEST(GraphBuilderTest, DuplicateEdgesDeduplicated) {
  GraphBuilder b;
  NodeTypeId t = b.AddNodeType("n").value();
  RelationId r = b.AddRelation("r").value();
  ASSERT_TRUE(b.AddNodes(t, 2).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, r).ok());
  ASSERT_TRUE(b.AddEdge(1, 0, r).ok());  // same undirected edge
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(GraphTest, BasicCounts) {
  MultiplexHeteroGraph g = SmallBipartite();
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(g.num_node_types(), 2u);
  EXPECT_EQ(g.num_relations(), 2u);
  EXPECT_EQ(g.NodesOfType(0).size(), 4u);
  EXPECT_EQ(g.NodesOfType(1).size(), 3u);
}

TEST(GraphTest, LookupByName) {
  MultiplexHeteroGraph g = SmallBipartite();
  EXPECT_EQ(g.FindNodeType("item"), 1);
  EXPECT_EQ(g.FindNodeType("nope"), kInvalidNodeType);
  EXPECT_EQ(g.FindRelation("buy"), 1);
  EXPECT_EQ(g.FindRelation("nope"), kInvalidRelation);
}

TEST(GraphTest, NeighborsPerRelation) {
  MultiplexHeteroGraph g = SmallBipartite();
  RelationId view = g.FindRelation("view");
  RelationId buy = g.FindRelation("buy");
  auto n0_view = g.Neighbors(0, view);
  std::set<NodeId> s(n0_view.begin(), n0_view.end());
  EXPECT_EQ(s, (std::set<NodeId>{4, 5}));
  auto n0_buy = g.Neighbors(0, buy);
  EXPECT_EQ(n0_buy.size(), 1u);
  EXPECT_EQ(n0_buy[0], 4u);
  // Adjacency is symmetric.
  auto n4_view = g.Neighbors(4, view);
  EXPECT_EQ(std::set<NodeId>(n4_view.begin(), n4_view.end()),
            (std::set<NodeId>{0, 1}));
}

TEST(GraphTest, DegreesAndTotalDegree) {
  MultiplexHeteroGraph g = SmallBipartite();
  EXPECT_EQ(g.Degree(0, 0), 2u);
  EXPECT_EQ(g.Degree(0, 1), 1u);
  EXPECT_EQ(g.TotalDegree(0), 3u);
  EXPECT_EQ(g.TotalDegree(3), 1u);
}

TEST(GraphTest, ActiveRelations) {
  MultiplexHeteroGraph g = SmallBipartite();
  auto rels0 = g.ActiveRelations(0);
  EXPECT_EQ(rels0.size(), 2u);
  auto rels3 = g.ActiveRelations(3);  // u3 only views
  ASSERT_EQ(rels3.size(), 1u);
  EXPECT_EQ(rels3[0], g.FindRelation("view"));
}

TEST(GraphTest, HasEdge) {
  MultiplexHeteroGraph g = SmallBipartite();
  RelationId view = g.FindRelation("view");
  RelationId buy = g.FindRelation("buy");
  EXPECT_TRUE(g.HasEdge(0, 4, view));
  EXPECT_TRUE(g.HasEdge(4, 0, view));  // symmetric
  EXPECT_TRUE(g.HasEdge(0, 4, buy));
  EXPECT_FALSE(g.HasEdge(3, 5, buy));  // u3-i5 only under view
  EXPECT_FALSE(g.HasEdge(0, 6, view));
  EXPECT_FALSE(g.HasEdge(0, 4, 99));   // bogus relation
}

TEST(GraphTest, EdgesOfRelationAreCanonical) {
  MultiplexHeteroGraph g = SmallBipartite();
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    for (const auto& e : g.EdgesOfRelation(r)) {
      EXPECT_LT(e.src, e.dst);
      EXPECT_EQ(e.rel, r);
    }
  }
  EXPECT_EQ(g.EdgesOfRelation(0).size(), 5u);
  EXPECT_EQ(g.EdgesOfRelation(1).size(), 3u);
}

TEST(GraphTest, ExtractRelationSubsetKeepsNodes) {
  MultiplexHeteroGraph g = SmallBipartite();
  auto sub = g.ExtractRelationSubset({g.FindRelation("buy")});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_nodes(), g.num_nodes());
  EXPECT_EQ(sub->num_relations(), 1u);
  EXPECT_EQ(sub->num_edges(), 3u);
  EXPECT_EQ(sub->relation_name(0), "buy");
  EXPECT_TRUE(sub->HasEdge(0, 4, 0));
  EXPECT_FALSE(sub->HasEdge(0, 5, 0));
}

TEST(GraphTest, ExtractRelationSubsetValidates) {
  MultiplexHeteroGraph g = SmallBipartite();
  EXPECT_FALSE(g.ExtractRelationSubset({}).ok());
  EXPECT_FALSE(g.ExtractRelationSubset({99}).ok());
}

TEST(GraphTest, MergeRelationsCollapsesParallelEdges) {
  MultiplexHeteroGraph g = SmallBipartite();
  MultiplexHeteroGraph merged = g.MergeRelations("any");
  EXPECT_EQ(merged.num_relations(), 1u);
  // 8 triples but 3 pairs are duplicated across relations: 0-4,1-4,2-6.
  EXPECT_EQ(merged.num_edges(), 5u);
  EXPECT_TRUE(merged.HasEdge(0, 4, 0));
}

TEST(GraphStatsTest, ComputesCorrectValues) {
  MultiplexHeteroGraph g = SmallBipartite();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 7u);
  EXPECT_EQ(s.num_edges, 8u);
  EXPECT_EQ(s.nodes_per_type[0], 4u);
  EXPECT_EQ(s.edges_per_relation[1], 3u);
  EXPECT_EQ(s.isolated_nodes, 0u);
  // 5 distinct pairs, 3 multiplex -> 0.6.
  EXPECT_NEAR(s.multiplex_pair_fraction, 0.6, 1e-9);
  EXPECT_GT(s.avg_degree, 0.0);
  EXPECT_EQ(s.max_degree, 4u);  // i4: 2 view + 2 buy
  std::string text = FormatStats(g, s);
  EXPECT_NE(text.find("|V| = 7"), std::string::npos);
}

TEST(GraphBuilderTest, StrictModeRejectsDuplicateEdges) {
  GraphBuilder b;
  NodeTypeId t = b.AddNodeType("n").value();
  RelationId view = b.AddRelation("view").value();
  RelationId buy = b.AddRelation("buy").value();
  ASSERT_TRUE(b.AddNodes(t, 3).ok());
  b.set_reject_duplicates(true);
  ASSERT_TRUE(b.AddEdge(0, 1, view).ok());
  // Exact repeat and the flipped orientation are the same undirected edge.
  Status dup = b.AddEdge(0, 1, view);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists) << dup.ToString();
  EXPECT_NE(dup.message().find("duplicate edge"), std::string::npos);
  EXPECT_EQ(b.AddEdge(1, 0, view).code(), StatusCode::kAlreadyExists);
  // Same pair under another relation is multiplex, not a duplicate.
  EXPECT_TRUE(b.AddEdge(0, 1, buy).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(GraphBuilderTest, StrictModeIndexesEdgesAddedBeforeEnable) {
  GraphBuilder b;
  NodeTypeId t = b.AddNodeType("n").value();
  RelationId r = b.AddRelation("r").value();
  ASSERT_TRUE(b.AddNodes(t, 3).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, r).ok());  // added while lenient
  b.set_reject_duplicates(true);
  EXPECT_EQ(b.AddEdge(1, 0, r).code(), StatusCode::kAlreadyExists);
  // Lenient mode restores the historical collapse-silently behavior.
  b.set_reject_duplicates(false);
  EXPECT_TRUE(b.AddEdge(0, 1, r).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(GraphStatsTest, IsolatedNodesCounted) {
  GraphBuilder b;
  NodeTypeId t = b.AddNodeType("n").value();
  RelationId r = b.AddRelation("r").value();
  ASSERT_TRUE(b.AddNodes(t, 3).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, r).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(ComputeStats(*g).isolated_nodes, 1u);
}

}  // namespace
}  // namespace hybridgnn
