#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/hybrid_gnn.h"
#include "data/profiles.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "graph/metapath.h"
#include "test_util.h"

namespace hybridgnn {
namespace {

using testing::SmallBipartite;

HybridGnnConfig TinyConfig() {
  HybridGnnConfig c;
  c.base_dim = 16;
  c.edge_dim = 4;
  c.hidden_dim = 8;
  c.epochs = 2;
  c.batch_size = 64;
  c.max_pairs_per_epoch = 500;
  c.corpus.num_walks_per_node = 3;
  c.corpus.walk_length = 4;
  c.corpus.window = 2;
  c.fanout = 3;
  c.seed = 123;
  return c;
}

std::vector<MetapathScheme> SmallSchemes(const MultiplexHeteroGraph& g) {
  std::vector<MetapathScheme> schemes;
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    schemes.push_back(MetapathScheme::ParseIntra(g, "U-I-U", r).value());
    schemes.push_back(MetapathScheme::ParseIntra(g, "I-U-I", r).value());
  }
  return schemes;
}

TEST(HybridGnnConfigTest, ValidateCatchesBadSettings) {
  HybridGnnConfig c = TinyConfig();
  EXPECT_TRUE(c.Validate().ok());
  c.base_dim = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = TinyConfig();
  c.num_negatives = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = TinyConfig();
  c.exploration_depth = 0;
  EXPECT_FALSE(c.Validate().ok());
  c.use_randomized_exploration = false;
  EXPECT_TRUE(c.Validate().ok());
  c = TinyConfig();
  c.corpus.walk_length = 1;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(HybridGnnTest, FitProducesEmbeddingsOfRightShape) {
  MultiplexHeteroGraph g = SmallBipartite();
  HybridGnn model(TinyConfig(), SmallSchemes(g));
  ASSERT_TRUE(model.Fit(g).ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (RelationId r = 0; r < g.num_relations(); ++r) {
      Tensor e = model.Embedding(v, r);
      EXPECT_EQ(e.rows(), 1u);
      EXPECT_EQ(e.cols(), 16u);
      EXPECT_TRUE(std::isfinite(e.Sum()));
    }
  }
}

TEST(HybridGnnTest, EmbeddingsAreRelationSpecific) {
  MultiplexHeteroGraph g = SmallBipartite();
  HybridGnnConfig c = TinyConfig();
  // Train from scratch without pretrain/restore so the relation-specific
  // branch is guaranteed to receive updates on this tiny graph.
  c.pretrain_base = false;
  c.freeze_pretrained = false;
  c.early_stopping_patience = 100;
  c.restore_best = false;
  c.epochs = 4;
  HybridGnn model(c, SmallSchemes(g));
  ASSERT_TRUE(model.Fit(g).ok());
  // At least one node must get different embeddings under view vs buy.
  double max_diff = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    Tensor a = model.Embedding(v, 0);
    Tensor b = model.Embedding(v, 1);
    double diff = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) {
      diff += std::abs(a.At(0, j) - b.At(0, j));
    }
    max_diff = std::max(max_diff, diff);
  }
  EXPECT_GT(max_diff, 1e-6);
}

TEST(HybridGnnTest, DeterministicGivenSeed) {
  MultiplexHeteroGraph g = SmallBipartite();
  HybridGnn m1(TinyConfig(), SmallSchemes(g));
  HybridGnn m2(TinyConfig(), SmallSchemes(g));
  ASSERT_TRUE(m1.Fit(g).ok());
  ASSERT_TRUE(m2.Fit(g).ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    Tensor a = m1.Embedding(v, 0);
    Tensor b = m2.Embedding(v, 0);
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_FLOAT_EQ(a.At(0, j), b.At(0, j));
    }
  }
}

TEST(HybridGnnTest, TrainingProducesFiniteDecreasingLoss) {
  auto ds = MakeDataset("taobao", 0.05, 11);
  ASSERT_TRUE(ds.ok());
  HybridGnnConfig c = TinyConfig();
  c.epochs = 4;
  c.early_stopping_patience = 100;
  HybridGnn model(c, ds->schemes);
  ASSERT_TRUE(model.Fit(ds->graph).ok());
  EXPECT_TRUE(std::isfinite(model.last_epoch_loss()));
  EXPECT_GT(model.last_epoch_loss(), 0.0);
  // BCE with 5 negatives starts near -log(0.5); training must go below it.
  EXPECT_LT(model.last_epoch_loss(), 0.693);
}

TEST(HybridGnnTest, RejectsEmptyGraphAndBadSchemes) {
  MultiplexHeteroGraph g = SmallBipartite();
  HybridGnn empty_schemes_ok(TinyConfig(), {});
  // No schemes is legal (exploration flow still exists).
  EXPECT_TRUE(empty_schemes_ok.Fit(g).ok());

  MetapathScheme bogus({0, 9, 0}, {0, 0});
  HybridGnn bad(TinyConfig(), {bogus});
  EXPECT_FALSE(bad.Fit(g).ok());
}

// ---- Ablations (the Table VII switches must all be runnable) ----

struct AblationCase {
  const char* name;
  bool metapath_attn;
  bool relation_attn;
  bool randomized;
  bool hybrid;
};

class HybridGnnAblationTest : public ::testing::TestWithParam<AblationCase> {};

TEST_P(HybridGnnAblationTest, VariantTrainsAndEmbeds) {
  const AblationCase& ab = GetParam();
  MultiplexHeteroGraph g = SmallBipartite();
  HybridGnnConfig c = TinyConfig();
  c.use_metapath_attention = ab.metapath_attn;
  c.use_relation_attention = ab.relation_attn;
  c.use_randomized_exploration = ab.randomized;
  c.use_hybrid_aggregation = ab.hybrid;
  HybridGnn model(c, SmallSchemes(g));
  ASSERT_TRUE(model.Fit(g).ok()) << ab.name;
  Tensor e = model.Embedding(0, 0);
  EXPECT_TRUE(std::isfinite(e.Sum())) << ab.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, HybridGnnAblationTest,
    ::testing::Values(
        AblationCase{"full", true, true, true, true},
        AblationCase{"wo_metapath_attention", false, true, true, true},
        AblationCase{"wo_relation_attention", true, false, true, true},
        AblationCase{"wo_randomized", true, true, false, true},
        AblationCase{"wo_hybrid", true, true, true, false},
        AblationCase{"minimal", false, false, false, false}),
    [](const ::testing::TestParamInfo<AblationCase>& info) {
      return std::string(info.param.name);
    });

// ---- Exploration depth knob (Table V) ----

class HybridGnnDepthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HybridGnnDepthTest, DepthVariantsTrain) {
  MultiplexHeteroGraph g = SmallBipartite();
  HybridGnnConfig c = TinyConfig();
  c.exploration_depth = GetParam();
  HybridGnn model(c, SmallSchemes(g));
  ASSERT_TRUE(model.Fit(g).ok());
  EXPECT_TRUE(std::isfinite(model.Embedding(0, 0).Sum()));
}

INSTANTIATE_TEST_SUITE_P(Depths, HybridGnnDepthTest,
                         ::testing::Values(1, 2, 3));

// ---- Attention introspection (Fig. 6 machinery) ----

TEST(HybridGnnTest, AttentionScoresAreDistribution) {
  MultiplexHeteroGraph g = SmallBipartite();
  HybridGnn model(TinyConfig(), SmallSchemes(g));
  ASSERT_TRUE(model.Fit(g).ok());
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    std::vector<double> scores = model.MetapathAttentionScores(0, r);
    std::vector<std::string> labels = model.FlowLabels(0, r);
    ASSERT_EQ(scores.size(), labels.size());
    // user node with U-I-U scheme + rand: 2 flows.
    EXPECT_EQ(scores.size(), 2u);
    EXPECT_EQ(labels.back(), "rand");
    double sum = std::accumulate(scores.begin(), scores.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-4);
    for (double s : scores) EXPECT_GE(s, 0.0);
  }
}

TEST(HybridGnnTest, SingleRelationGraphWorks) {
  auto ds = MakeDataset("imdb", 0.05, 13);
  ASSERT_TRUE(ds.ok());
  HybridGnnConfig c = TinyConfig();
  HybridGnn model(c, ds->schemes);
  ASSERT_TRUE(model.Fit(ds->graph).ok());
  EXPECT_TRUE(std::isfinite(model.Embedding(0, 0).Sum()));
}

}  // namespace
}  // namespace hybridgnn
