// Differential suite for the batched CSR sparse-aggregation engine
// (graph/frontier.h, nn/sparse segment ops, kernels segment reductions).
//
// The redesign's contract is exact equivalence: the frontier path —
// GatherRowsSegmented -> SegmentMean -> aggregator fold — must be
// bit-identical to the pre-redesign per-node composition (one
// GatherRows+MeanRows per level, folded through the same aggregator), for
// values AND gradients, in heap mode and on the pooled tape, single-threaded
// and under the data-parallel GradSinkScope pattern. The kernel-level tests
// additionally pin the scalar/AVX2 backends bitwise against each other
// (segment reductions are add chains in fixed row order; see kernels.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "graph/frontier.h"
#include "kernels/kernels.h"
#include "nn/aggregator.h"
#include "nn/sparse.h"
#include "sampling/neighbor_sampler.h"
#include "tensor/autograd.h"
#include "tensor/init.h"
#include "tensor/pool.h"

namespace hybridgnn {
namespace {

namespace k = ::hybridgnn::kernels;
using ag::Var;

constexpr size_t kNodes = 40;
constexpr size_t kDim = 19;  // odd, straddles the 8-wide vector boundary

std::vector<uint32_t> Bits(const Tensor& t) {
  std::vector<uint32_t> out(t.size());
  if (!t.empty()) std::memcpy(out.data(), t.data(), t.size() * sizeof(float));
  return out;
}

std::vector<float> RandomBlock(size_t rows, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> x(rows * dim);
  for (float& v : x) v = rng.UniformFloat(-2.0f, 2.0f);
  return x;
}

/// Frontier with awkward segment sizes: empty, singleton, large, and a
/// vector-width-straddling tail segment over `rows` total rows.
MinibatchFrontier AwkwardFrontier(size_t rows) {
  MinibatchFrontier f;
  f.Clear();
  const size_t cuts[] = {0, 1, 9, 10};  // sizes 0, 1, 8, then the rest
  size_t at = 0;
  for (size_t c : cuts) {
    while (at < c && at < rows) f.indices.push_back(static_cast<int32_t>(at++));
    f.CloseSegment();
  }
  while (at < rows) f.indices.push_back(static_cast<int32_t>(at++));
  f.CloseSegment();
  return f;
}

// ---------- kernel-level differentials (scalar vs AVX2, bitwise) ----------

class SegmentKernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!k::Avx2Available()) {
      GTEST_SKIP() << "AVX2 kernels unavailable; differential comparison "
                      "needs both dispatch paths";
    }
  }
};

TEST_F(SegmentKernelTest, SegmentSumAndMeanBitwise) {
  for (size_t dim : {1u, 7u, 8u, 16u, 19u, 33u}) {
    const size_t rows = 23;
    const auto x = RandomBlock(rows, dim, 0x5E6 + dim);
    const MinibatchFrontier f = AwkwardFrontier(rows);
    const size_t segs = f.num_segments();
    std::vector<float> sum_s(segs * dim), sum_s2(segs * dim),
        sum_v(segs * dim), mean_s(segs * dim), mean_v(segs * dim);
    {
      k::ScopedBackend g(k::Backend::kScalar);
      k::SegmentSum(x.data(), dim, f.indptr.data(), segs, sum_s.data());
      k::SegmentSum(x.data(), dim, f.indptr.data(), segs, sum_s2.data());
      k::SegmentMean(x.data(), dim, f.indptr.data(), segs, mean_s.data());
    }
    {
      k::ScopedBackend g(k::Backend::kAvx2);
      k::SegmentSum(x.data(), dim, f.indptr.data(), segs, sum_v.data());
      k::SegmentMean(x.data(), dim, f.indptr.data(), segs, mean_v.data());
    }
    EXPECT_EQ(std::memcmp(sum_s.data(), sum_s2.data(),
                          sum_s.size() * sizeof(float)),
              0)
        << "scalar SegmentSum nondeterministic, dim=" << dim;
    EXPECT_EQ(std::memcmp(sum_s.data(), sum_v.data(),
                          sum_s.size() * sizeof(float)),
              0)
        << "SegmentSum scalar vs avx2, dim=" << dim;
    EXPECT_EQ(std::memcmp(mean_s.data(), mean_v.data(),
                          mean_s.size() * sizeof(float)),
              0)
        << "SegmentMean scalar vs avx2, dim=" << dim;
    // Reference: sequential add chain from zero in ascending row order,
    // then one multiply — exactly what both backends must implement.
    for (size_t s = 0; s < segs; ++s) {
      for (size_t j = 0; j < dim; ++j) {
        float acc = 0.0f;
        for (size_t i = f.indptr[s]; i < f.indptr[s + 1]; ++i) {
          acc += x[i * dim + j];
        }
        EXPECT_EQ(sum_s[s * dim + j], acc) << "s=" << s << " j=" << j;
      }
    }
  }
}

TEST_F(SegmentKernelTest, SegmentMaxBitwiseWithArgmax) {
  for (size_t dim : {1u, 8u, 19u, 32u}) {
    const size_t rows = 23;
    auto x = RandomBlock(rows, dim, 0xA7 + dim);
    // Plant an exact tie in the big segment: rows 3 and 7 identical. The
    // strict-> contract must keep the FIRST row on every backend.
    std::memcpy(&x[7 * dim], &x[3 * dim], dim * sizeof(float));
    const MinibatchFrontier f = AwkwardFrontier(rows);
    const size_t segs = f.num_segments();
    std::vector<float> max_s(segs * dim), max_v(segs * dim);
    std::vector<uint32_t> arg_s(segs * dim), arg_v(segs * dim);
    {
      k::ScopedBackend g(k::Backend::kScalar);
      k::SegmentMax(x.data(), dim, f.indptr.data(), segs, max_s.data(),
                    arg_s.data());
    }
    {
      k::ScopedBackend g(k::Backend::kAvx2);
      k::SegmentMax(x.data(), dim, f.indptr.data(), segs, max_v.data(),
                    arg_v.data());
    }
    EXPECT_EQ(std::memcmp(max_s.data(), max_v.data(),
                          max_s.size() * sizeof(float)),
              0)
        << "SegmentMax values scalar vs avx2, dim=" << dim;
    EXPECT_EQ(arg_s, arg_v) << "SegmentMax argmax scalar vs avx2, dim=" << dim;
    // Empty segment (segment 0): zero value, sentinel argmax.
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_EQ(max_s[j], 0.0f);
      EXPECT_EQ(arg_s[j], k::kNoSegmentRow);
    }
    // Tie in segment 2 (rows 1..9): row 7 never wins over row 3.
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_NE(arg_s[2 * dim + j], 7u) << "tie must keep the first row";
    }
    // Cross-check against a scalar reference.
    for (size_t s = 0; s < segs; ++s) {
      const size_t lo = f.indptr[s], hi = f.indptr[s + 1];
      if (lo == hi) continue;
      for (size_t j = 0; j < dim; ++j) {
        float m = x[lo * dim + j];
        uint32_t a = static_cast<uint32_t>(lo);
        for (size_t i = lo + 1; i < hi; ++i) {
          if (x[i * dim + j] > m) {
            m = x[i * dim + j];
            a = static_cast<uint32_t>(i);
          }
        }
        EXPECT_EQ(max_s[s * dim + j], m);
        EXPECT_EQ(arg_s[s * dim + j], a);
      }
    }
  }
}

TEST_F(SegmentKernelTest, CsrSpmmBitwise) {
  for (size_t dim : {1u, 8u, 19u, 33u}) {
    const size_t cols = 11, rows = 6;
    const auto x = RandomBlock(cols, dim, 0xC5 + dim);
    Rng rng(77);
    std::vector<size_t> indptr(rows + 1, 0);
    std::vector<uint32_t> idx;
    std::vector<float> vals;
    for (size_t r = 0; r < rows; ++r) {
      const size_t nnz = rng.UniformUint64(5);  // includes empty rows
      for (size_t e = 0; e < nnz; ++e) {
        idx.push_back(static_cast<uint32_t>(rng.UniformUint64(cols)));
        vals.push_back(rng.UniformFloat(-1.0f, 1.0f));
      }
      indptr[r + 1] = idx.size();
    }
    std::vector<float> ys(rows * dim, 0.0f), yv(rows * dim, 0.0f),
        ref(rows * dim, 0.0f);
    {
      k::ScopedBackend g(k::Backend::kScalar);
      k::CsrSpmm(indptr.data(), idx.data(), vals.data(), rows, x.data(), dim,
                 ys.data());
    }
    {
      k::ScopedBackend g(k::Backend::kAvx2);
      k::CsrSpmm(indptr.data(), idx.data(), vals.data(), rows, x.data(), dim,
                 yv.data());
    }
    // Hand reference: the documented accumulation order (edges ascending,
    // one mul + one add per element per edge).
    for (size_t r = 0; r < rows; ++r) {
      for (size_t e = indptr[r]; e < indptr[r + 1]; ++e) {
        for (size_t j = 0; j < dim; ++j) {
          ref[r * dim + j] += vals[e] * x[idx[e] * dim + j];
        }
      }
    }
    EXPECT_EQ(std::memcmp(ys.data(), yv.data(), ys.size() * sizeof(float)), 0)
        << "CsrSpmm scalar vs avx2, dim=" << dim;
    EXPECT_EQ(std::memcmp(ys.data(), ref.data(), ys.size() * sizeof(float)),
              0)
        << "CsrSpmm vs hand loop, dim=" << dim;
  }
}

// ---------- frontier path vs pre-redesign per-node reference ----------

/// The sampled levels used by the differential cases: level 0 is the center,
/// deeper levels have repeats (exercising the duplicate-row grad chains) and
/// varied sizes.
std::vector<std::vector<NodeId>> TestLevels(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<NodeId>> levels(3);
  levels[0] = {static_cast<NodeId>(rng.UniformUint64(kNodes))};
  for (size_t l = 1; l < levels.size(); ++l) {
    const size_t n = 2 + l * 3;
    for (size_t i = 0; i < n; ++i) {
      levels[l].push_back(static_cast<NodeId>(rng.UniformUint64(kNodes)));
    }
  }
  return levels;
}

/// Pre-redesign composition: one dense GatherRows + MeanRows per level
/// (deepest first), folded through the aggregator. This is byte-for-byte the
/// graph the old per-node AggregateLevels built.
Var ReferencePath(const Var& table, const MeanAggregator& agg,
                  const std::vector<std::vector<NodeId>>& levels) {
  std::vector<Var> means;
  for (size_t l = levels.size(); l-- > 0;) {
    std::vector<int32_t> ids(levels[l].begin(), levels[l].end());
    means.push_back(ag::MeanRows(
        ag::GatherRows(table, std::span<const int32_t>(ids))));
  }
  Var rep = means[0];
  for (size_t i = 1; i < means.size(); ++i) {
    rep = agg.Forward(MinibatchFrontier::IdentityRow(), means[i], rep);
  }
  return rep;
}

/// The redesigned path as core/hybrid_gnn.cc and graphsage.cc run it.
Var FrontierPath(const Var& table, const MeanAggregator& agg,
                 const std::vector<std::vector<NodeId>>& levels) {
  MinibatchFrontier f;
  BuildLevelFrontier(levels, &f);
  Var block = GatherRowsSegmented(table, f);
  Var means = SegmentMean(block, f);
  const size_t n = f.num_segments();
  Var rep = n == 1 ? means : ag::SliceRows(means, 0, 1);
  for (size_t i = 1; i < n; ++i) {
    rep = agg.Forward(MinibatchFrontier::IdentityRow(),
                      ag::SliceRows(means, i, 1), rep);
  }
  return rep;
}

struct CaseResult {
  std::vector<float> loss;
  std::vector<std::vector<float>> grads;  // table grad + aggregator grads
};

std::vector<float> Floats(const Tensor& t) {
  std::vector<float> out(t.size());
  if (!t.empty()) std::memcpy(out.data(), t.data(), t.size() * sizeof(float));
  return out;
}

CaseResult RunCase(bool use_frontier, bool arena, uint64_t seed) {
  pool::PoolScope pool(arena);
  Rng rng(seed);
  Tensor init(kNodes, kDim);
  UniformInit(init, rng, -0.8f, 0.8f);
  Var table = ag::Param(std::move(init));
  MeanAggregator agg(kDim, rng);
  const auto levels = TestLevels(seed ^ 0xBEEF);
  auto run = [&]() {
    Var rep = use_frontier ? FrontierPath(table, agg, levels)
                           : ReferencePath(table, agg, levels);
    Var loss = ag::SumAll(ag::RowwiseDot(rep, rep));
    ag::Backward(loss);
    return Floats(loss->value);
  };
  CaseResult r;
  if (arena) {
    ag::TapeScope tape;
    r.loss = run();
  } else {
    r.loss = run();
  }
  r.grads.push_back(Floats(table->grad));
  for (const Var& p : agg.parameters()) r.grads.push_back(Floats(p->grad));
  return r;
}

/// Exact float equality elementwise (== treats +0 and -0 as equal, which is
/// the documented slack: the fused scatter may differ from the per-level
/// scatters only in signs of zero).
void ExpectExactlyEqual(const CaseResult& a, const CaseResult& b,
                        const char* what) {
  ASSERT_EQ(a.loss.size(), b.loss.size()) << what;
  for (size_t i = 0; i < a.loss.size(); ++i) {
    EXPECT_EQ(a.loss[i], b.loss[i]) << what << " loss[" << i << "]";
  }
  ASSERT_EQ(a.grads.size(), b.grads.size()) << what;
  for (size_t p = 0; p < a.grads.size(); ++p) {
    ASSERT_EQ(a.grads[p].size(), b.grads[p].size()) << what << " param " << p;
    for (size_t i = 0; i < a.grads[p].size(); ++i) {
      EXPECT_EQ(a.grads[p][i], b.grads[p][i])
          << what << " param " << p << " elem " << i;
    }
  }
}

TEST(SparseAggregateTest, FrontierMatchesPerNodeReferenceHeap) {
  for (uint64_t seed : {11ull, 222ull, 3333ull}) {
    CaseResult ref = RunCase(/*use_frontier=*/false, /*arena=*/false, seed);
    CaseResult fro = RunCase(/*use_frontier=*/true, /*arena=*/false, seed);
    ExpectExactlyEqual(ref, fro, "heap");
  }
}

TEST(SparseAggregateTest, FrontierMatchesPerNodeReferencePooledTape) {
  for (uint64_t seed : {11ull, 222ull, 3333ull}) {
    CaseResult ref = RunCase(/*use_frontier=*/false, /*arena=*/true, seed);
    CaseResult fro = RunCase(/*use_frontier=*/true, /*arena=*/true, seed);
    ExpectExactlyEqual(ref, fro, "tape");
    // And tape-vs-heap on the frontier path itself.
    CaseResult heap = RunCase(/*use_frontier=*/true, /*arena=*/false, seed);
    ExpectExactlyEqual(heap, fro, "frontier tape vs heap");
  }
}

// The segment ops themselves (values and backward scatter) are bitwise
// backend-invariant — a stronger contract than Dot/MatMul, which are only
// ULP-close, so this test deliberately avoids the aggregator's dense layers.
TEST(SparseAggregateTest, BackendsAgreeOnSegmentOps) {
  if (!k::Avx2Available()) {
    GTEST_SKIP() << "AVX2 unavailable";
  }
  using ReduceFn = Var (*)(const Var&, const MinibatchFrontier&);
  for (ReduceFn reduce : {ReduceFn(&SegmentSum), ReduceFn(&SegmentMean),
                          ReduceFn(&SegmentMax)}) {
    std::vector<uint32_t> out_bits[2], grad_bits[2];
    for (int b = 0; b < 2; ++b) {
      k::ScopedBackend g(b == 0 ? k::Backend::kScalar : k::Backend::kAvx2);
      Rng rng(42);
      Tensor init(kNodes, kDim);
      UniformInit(init, rng, -0.8f, 0.8f);
      Var table = ag::Param(std::move(init));
      const auto levels = TestLevels(7);
      MinibatchFrontier f;
      BuildLevelFrontier(levels, &f);
      ag::TapeScope tape;
      Var out = reduce(GatherRowsSegmented(table, f), f);
      ag::Backward(ag::SumAll(out));
      out_bits[b] = Bits(out->value);
      grad_bits[b] = Bits(table->grad);
    }
    EXPECT_EQ(out_bits[0], out_bits[1]) << "values scalar vs avx2";
    EXPECT_EQ(grad_bits[0], grad_bits[1]) << "grads scalar vs avx2";
  }
}

// Data-parallel pattern from HybridGnn::Fit: 4 workers backprop private
// tape-scoped frontier graphs over shared leaves under per-worker grad
// sinks, reduced in worker order. The reference runs the SAME sink-and-
// reduce protocol serially with the per-node composition — within each
// worker the fused scatter must reproduce the per-level chains, and the
// reduction order is fixed, so the reduced gradients agree exactly.
TEST(SparseAggregateTest, FourWorkersMatchSerialReference) {
  constexpr size_t kWorkers = 4;
  Rng rng(0xF00D);
  Tensor init(kNodes, kDim);
  UniformInit(init, rng, -0.8f, 0.8f);
  Var table = ag::Param(std::move(init));
  MeanAggregator agg(kDim, rng);
  std::vector<std::vector<std::vector<NodeId>>> worker_levels;
  for (size_t w = 0; w < kWorkers; ++w) {
    worker_levels.push_back(TestLevels(0xAB + w));
  }
  auto reset_grads = [&]() {
    table->grad = Tensor();
    for (const Var& p : agg.parameters()) p->grad = Tensor();
  };

  // Serial reference: per-node composition under the same sink protocol.
  std::vector<ag::GradSinkScope::Sink> ref_sinks(kWorkers);
  for (size_t w = 0; w < kWorkers; ++w) {
    ag::GradSinkScope sink_scope(&ref_sinks[w]);
    ag::TapeScope tape;
    Var rep = ReferencePath(table, agg, worker_levels[w]);
    ag::Backward(ag::SumAll(ag::RowwiseDot(rep, rep)));
  }
  reset_grads();
  for (size_t w = 0; w < kWorkers; ++w) {
    for (auto& [node, grad] : ref_sinks[w]) node->AccumulateGrad(grad);
  }
  const std::vector<float> serial = Floats(table->grad);

  reset_grads();
  std::vector<ag::GradSinkScope::Sink> sinks(kWorkers);
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w]() {
      ag::GradSinkScope sink_scope(&sinks[w]);
      ag::TapeScope tape;
      Var rep = FrontierPath(table, agg, worker_levels[w]);
      ag::Backward(ag::SumAll(ag::RowwiseDot(rep, rep)));
    });
  }
  for (auto& t : threads) t.join();
  for (size_t w = 0; w < kWorkers; ++w) {
    for (auto& [node, grad] : sinks[w]) node->AccumulateGrad(grad);
  }
  const std::vector<float> parallel = Floats(table->grad);
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "table grad elem " << i;
  }
}

// ---------- edge cases ----------

TEST(SparseAggregateTest, EmptyFrontierSegmentReducesToZero) {
  MinibatchFrontier f;
  f.Clear();
  f.CloseSegment();  // one segment, zero rows
  Var table = ag::Param(Tensor::Full(4, kDim, 1.5f));
  Var block = GatherRowsSegmented(table, f);
  EXPECT_EQ(block->value.rows(), 0u);
  for (const auto& reduce :
       {&SegmentSum, &SegmentMean, &SegmentMax}) {
    Var out = (*reduce)(block, f);
    ASSERT_EQ(out->value.rows(), 1u);
    for (size_t j = 0; j < kDim; ++j) EXPECT_EQ(out->value.At(0, j), 0.0f);
    ag::Backward(ag::SumAll(out));
    // Nothing flows to the table: the [0, dim] intermediate grad is empty,
    // so Backward prunes the scatter. Empty or all-zero are both correct.
    for (size_t i = 0; i < table->grad.size(); ++i) {
      EXPECT_EQ(table->grad.data()[i], 0.0f);
    }
    table->ZeroGrad();
  }
}

TEST(SparseAggregateTest, SingleNeighborSegmentIsExactPassThrough) {
  Rng rng(99);
  Tensor init(6, kDim);
  UniformInit(init, rng, -2.0f, 2.0f);
  Var table = ag::Param(std::move(init));
  MinibatchFrontier f;
  f.Clear();
  f.indices = {3};
  f.CloseSegment();
  Var block = GatherRowsSegmented(table, f);
  Var mean = SegmentMean(block, f);
  // A singleton mean multiplies by 1.0f — exact, bitwise the gathered row.
  for (size_t j = 0; j < kDim; ++j) {
    EXPECT_EQ(mean->value.At(0, j), table->value.At(3, j));
  }
  ag::Backward(ag::SumAll(mean));
  for (size_t j = 0; j < kDim; ++j) {
    EXPECT_EQ(table->grad.At(3, j), 1.0f);
  }
  EXPECT_EQ(table->grad.At(0, 0), 0.0f);
}

TEST(SparseAggregateTest, BuildLevelFrontierOrdersDeepestFirst) {
  std::vector<std::vector<NodeId>> levels = {{5}, {1, 2}, {3, 4, 6}};
  MinibatchFrontier f;
  BuildLevelFrontier(levels, &f);
  EXPECT_EQ(f.indptr, (std::vector<size_t>{0, 3, 5, 6}));
  EXPECT_EQ(f.indices, (std::vector<int32_t>{3, 4, 6, 1, 2, 5}));
  // Trailing empty levels are dropped, not emitted as empty segments.
  levels.push_back({});
  BuildLevelFrontier(levels, &f);
  EXPECT_EQ(f.num_segments(), 3u);
  EXPECT_FALSE(f.AllSingleton());
  BuildLevelFrontier({{7}}, &f);
  EXPECT_TRUE(f.AllSingleton());
}

}  // namespace
}  // namespace hybridgnn
