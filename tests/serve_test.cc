// Tests for the src/serve/ subsystem: checkpoint format robustness,
// save->load round trips, store-backed models, top-K retrieval, and the
// concurrent RecommendService (the latter are the serve targets of
// scripts/tsan_check.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "baselines/deepwalk.h"
#include "common/rng.h"
#include "data/profiles.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "serve/checkpoint.h"
#include "serve/service.h"
#include "serve/store_model.h"
#include "serve/topk.h"
#include "test_util.h"

namespace hybridgnn {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

/// Random two-relation store over `num_nodes` nodes. Relation 1 only covers
/// the even node ids, exercising partial node->row mappings.
EmbeddingStore MakeRandomStore(size_t num_nodes, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<EmbeddingStore::TableInit> tables;
  for (int which : {0, 1}) {
    EmbeddingStore::TableInit t;
    t.name = which == 0 ? "view" : "buy";
    for (NodeId v = 0; v < num_nodes; ++v) {
      if (which == 1 && v % 2 != 0) continue;
      t.row_to_node.push_back(v);
    }
    t.data = Tensor(t.row_to_node.size(), dim);
    for (size_t i = 0; i < t.data.size(); ++i) {
      t.data.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
    }
    tables.push_back(std::move(t));
  }
  auto store =
      EmbeddingStore::FromTables("random", num_nodes, std::move(tables));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

void ExpectStoresEqual(const EmbeddingStore& a, const EmbeddingStore& b) {
  ASSERT_EQ(a.model_name(), b.model_name());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.dim(), b.dim());
  ASSERT_EQ(a.num_relations(), b.num_relations());
  for (RelationId r = 0; r < a.num_relations(); ++r) {
    ASSERT_EQ(a.relation_name(r), b.relation_name(r));
    ASSERT_EQ(a.NumRows(r), b.NumRows(r));
    for (size_t row = 0; row < a.NumRows(r); ++row) {
      ASSERT_EQ(a.RowNode(r, row), b.RowNode(r, row));
    }
    const auto ta = a.Table(r);
    const auto tb = b.Table(r);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i) {
      ASSERT_EQ(ta[i], tb[i]) << "relation " << r << " element " << i;
    }
  }
}

/// Flips one byte of a file in place.
void CorruptByte(const std::string& path, size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c ^= 0x5A;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

TEST(EmbeddingStoreTest, FromTablesValidates) {
  // Row count / mapping mismatch.
  std::vector<EmbeddingStore::TableInit> bad1(1);
  bad1[0].name = "r";
  bad1[0].row_to_node = {0, 1};
  bad1[0].data = Tensor(3, 4);
  EXPECT_FALSE(EmbeddingStore::FromTables("m", 3, std::move(bad1)).ok());
  // Duplicate node id.
  std::vector<EmbeddingStore::TableInit> bad2(1);
  bad2[0].name = "r";
  bad2[0].row_to_node = {1, 1};
  bad2[0].data = Tensor(2, 4);
  EXPECT_FALSE(EmbeddingStore::FromTables("m", 3, std::move(bad2)).ok());
  // Node id out of range.
  std::vector<EmbeddingStore::TableInit> bad3(1);
  bad3[0].name = "r";
  bad3[0].row_to_node = {7};
  bad3[0].data = Tensor(1, 4);
  EXPECT_FALSE(EmbeddingStore::FromTables("m", 3, std::move(bad3)).ok());
}

TEST(EmbeddingStoreTest, LookupRespectsPartialCoverage) {
  EmbeddingStore store = MakeRandomStore(10, 4, 1);
  EXPECT_NE(store.Lookup(3, 0), nullptr);
  EXPECT_NE(store.Lookup(4, 1), nullptr);
  EXPECT_EQ(store.Lookup(3, 1), nullptr);   // odd node absent from "buy"
  EXPECT_EQ(store.Lookup(99, 0), nullptr);  // out of range node
  EXPECT_EQ(store.Lookup(0, 5), nullptr);   // out of range relation
  EXPECT_EQ(store.FindRelation("buy"), RelationId{1});
  EXPECT_EQ(store.FindRelation("nope"), kInvalidRelation);
}

TEST(CheckpointTest, RoundTripAtMultipleDims) {
  for (size_t dim : {5u, 16u, 33u}) {
    SCOPED_TRACE("dim=" + std::to_string(dim));
    EmbeddingStore store = MakeRandomStore(17, dim, 100 + dim);
    const std::string path =
        TempPath("roundtrip_" + std::to_string(dim) + ".hgc");
    ASSERT_TRUE(WriteCheckpoint(store, path).ok());

    auto copied = LoadCheckpoint(path, LoadMode::kCopy);
    ASSERT_TRUE(copied.ok()) << copied.status().ToString();
    EXPECT_FALSE(copied->mmapped());
    ExpectStoresEqual(store, *copied);

    auto mapped = LoadCheckpoint(path, LoadMode::kMmap);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_TRUE(mapped->mmapped());
    ExpectStoresEqual(store, *mapped);
  }
}

TEST(CheckpointTest, RejectsMissingAndTruncatedFiles) {
  EXPECT_EQ(LoadCheckpoint(TempPath("nope.hgc")).status().code(),
            StatusCode::kIoError);

  EmbeddingStore store = MakeRandomStore(17, 8, 2);
  const std::string path = TempPath("trunc.hgc");
  ASSERT_TRUE(WriteCheckpoint(store, path).ok());
  // Shorter than the header.
  fs::resize_file(path, 40);
  for (LoadMode mode : {LoadMode::kCopy, LoadMode::kMmap}) {
    auto r = LoadCheckpoint(path, mode);
    EXPECT_EQ(r.status().code(), StatusCode::kIoError)
        << r.status().ToString();
  }
  // Header intact but payload cut short.
  ASSERT_TRUE(WriteCheckpoint(store, path).ok());
  fs::resize_file(path, fs::file_size(path) - 13);
  for (LoadMode mode : {LoadMode::kCopy, LoadMode::kMmap}) {
    auto r = LoadCheckpoint(path, mode);
    EXPECT_EQ(r.status().code(), StatusCode::kIoError)
        << r.status().ToString();
  }
}

TEST(CheckpointTest, RejectsBadMagic) {
  EmbeddingStore store = MakeRandomStore(9, 8, 3);
  const std::string path = TempPath("magic.hgc");
  ASSERT_TRUE(WriteCheckpoint(store, path).ok());
  CorruptByte(path, 0);
  auto r = LoadCheckpoint(path);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
      << r.status().ToString();
}

TEST(CheckpointTest, RejectsVersionSkew) {
  EmbeddingStore store = MakeRandomStore(9, 8, 4);
  const std::string path = TempPath("version.hgc");
  ASSERT_TRUE(WriteCheckpoint(store, path).ok());
  CorruptByte(path, 6);  // format version field
  auto r = LoadCheckpoint(path);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition)
      << r.status().ToString();
}

TEST(CheckpointTest, RejectsForeignEndianness) {
  EmbeddingStore store = MakeRandomStore(9, 8, 5);
  const std::string path = TempPath("endian.hgc");
  ASSERT_TRUE(WriteCheckpoint(store, path).ok());
  // Swap the endian tag bytes — exactly what a foreign-endian reader sees.
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  char tag[2];
  f.seekg(4).read(tag, 2);
  std::swap(tag[0], tag[1]);
  f.seekp(4).write(tag, 2);
  f.close();
  auto r = LoadCheckpoint(path);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition)
      << r.status().ToString();
}

TEST(CheckpointTest, RejectsPayloadCorruption) {
  EmbeddingStore store = MakeRandomStore(9, 8, 6);
  const std::string path = TempPath("payload.hgc");
  ASSERT_TRUE(WriteCheckpoint(store, path).ok());
  CorruptByte(path, fs::file_size(path) - 1);  // inside the last table
  for (LoadMode mode : {LoadMode::kCopy, LoadMode::kMmap}) {
    auto r = LoadCheckpoint(path, mode);
    EXPECT_EQ(r.status().code(), StatusCode::kIoError)
        << r.status().ToString();
  }
  // Header corruption (a size field) is caught by the header checksum.
  ASSERT_TRUE(WriteCheckpoint(store, path).ok());
  CorruptByte(path, 16);
  auto r = LoadCheckpoint(path);
  EXPECT_EQ(r.status().code(), StatusCode::kIoError)
      << r.status().ToString();
}

/// Save -> load must reproduce the model's scores and therefore its
/// link-prediction metrics exactly (double-precision dot over identical
/// float rows).
TEST(CheckpointTest, SaveLoadReproducesModelBitIdentically) {
  auto ds = MakeDataset("taobao", 0.08, 21);
  ASSERT_TRUE(ds.ok());
  Rng rng(22);
  auto split = SplitEdges(ds->graph, SplitOptions{}, rng);
  ASSERT_TRUE(split.ok());

  DeepWalk::Options options;
  options.sgns.dim = 32;
  options.sgns.epochs = 1;
  DeepWalk model(options);
  ASSERT_TRUE(model.Fit(split->train_graph).ok());

  const std::string path = TempPath("deepwalk.hgc");
  ASSERT_TRUE(SaveCheckpoint(model, split->train_graph, path).ok());

  for (LoadMode mode : {LoadMode::kCopy, LoadMode::kMmap}) {
    auto loaded = LoadCheckpoint(path, mode);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    StoreBackedModel frozen(
        std::make_shared<EmbeddingStore>(std::move(loaded).value()));
    EXPECT_EQ(frozen.name(), model.name());

    // Raw embeddings identical...
    for (NodeId v : {NodeId{0}, NodeId{5}, NodeId{17}}) {
      for (RelationId r = 0; r < split->train_graph.num_relations(); ++r) {
        Tensor a = model.Embedding(v, r);
        Tensor b = frozen.Embedding(v, r);
        ASSERT_EQ(a.cols(), b.cols());
        for (size_t j = 0; j < a.cols(); ++j) {
          ASSERT_EQ(a.At(0, j), b.At(0, j));
        }
      }
    }
    // ...scores identical...
    auto scores_live = model.ScoreMany(split->test_pos);
    auto scores_frozen = frozen.ScoreMany(split->test_pos);
    ASSERT_EQ(scores_live.size(), scores_frozen.size());
    for (size_t i = 0; i < scores_live.size(); ++i) {
      ASSERT_EQ(scores_live[i], scores_frozen[i]);
    }
    // ...and so are the evaluation metrics.
    EvalOptions eval_options;
    eval_options.max_ranking_queries = 40;
    Rng rng_a(77), rng_b(77);
    LinkPredictionResult live = EvaluateLinkPrediction(
        model, ds->graph, *split, eval_options, rng_a);
    LinkPredictionResult frozen_result = EvaluateLinkPrediction(
        frozen, ds->graph, *split, eval_options, rng_b);
    EXPECT_EQ(live.roc_auc, frozen_result.roc_auc);
    EXPECT_EQ(live.pr_auc, frozen_result.pr_auc);
    EXPECT_EQ(live.f1, frozen_result.f1);
    EXPECT_EQ(live.pr_at_k, frozen_result.pr_at_k);
    EXPECT_EQ(live.hr_at_k, frozen_result.hr_at_k);
  }
}

TEST(StoreBackedModelTest, RefusesFitAndZeroFillsMissingRows) {
  auto store = std::make_shared<EmbeddingStore>(MakeRandomStore(10, 4, 8));
  StoreBackedModel model(store);
  EXPECT_EQ(model.Fit(testing::SmallBipartite()).code(),
            StatusCode::kFailedPrecondition);
  Tensor missing = model.Embedding(3, 1);  // odd node absent from "buy"
  for (size_t j = 0; j < missing.cols(); ++j) {
    EXPECT_EQ(missing.At(0, j), 0.0f);
  }
}

/// Reference implementation: full scan + sort.
std::vector<Recommendation> BruteForceTopK(const EmbeddingStore& store,
                                           const TopKQuery& q, bool cosine) {
  const float* qrow = store.Lookup(q.node, q.rel);
  const size_t dim = store.dim();
  std::vector<Recommendation> all;
  for (size_t row = 0; row < store.NumRows(q.rel); ++row) {
    const NodeId cand = store.RowNode(q.rel, row);
    if (cand == q.node) continue;
    const float* crow = store.Table(q.rel).data() + row * dim;
    double s = 0.0, qn = 0.0, cn = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      s += static_cast<double>(qrow[j]) * crow[j];
      qn += static_cast<double>(qrow[j]) * qrow[j];
      cn += static_cast<double>(crow[j]) * crow[j];
    }
    if (cosine) s /= std::sqrt(qn) * std::sqrt(cn);
    all.push_back({cand, static_cast<float>(s)});
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  });
  if (all.size() > q.k) all.resize(q.k);
  return all;
}

TEST(TopKRecommenderTest, MatchesBruteForce) {
  EmbeddingStore store = MakeRandomStore(60, 8, 9);
  for (bool cosine : {false, true}) {
    SCOPED_TRACE(cosine ? "cosine" : "dot");
    TopKOptions options;
    options.cosine = cosine;
    TopKRecommender rec(&store, nullptr, options);
    for (NodeId node : {NodeId{0}, NodeId{7}, NodeId{42}}) {
      for (RelationId r : {RelationId{0}, RelationId{1}}) {
        TopKQuery q;
        q.node = node;
        q.rel = r;
        q.k = 5;
        auto got = rec.Recommend(q);
        if (store.Lookup(node, r) == nullptr) {
          EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
          continue;
        }
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        auto want = BruteForceTopK(store, q, cosine);
        ASSERT_EQ(got->size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ((*got)[i].node, want[i].node) << "rank " << i;
          EXPECT_NEAR((*got)[i].score, want[i].score, 1e-5) << "rank " << i;
        }
      }
    }
  }
}

TEST(TopKRecommenderTest, FiltersNeighborsAndCandidateType) {
  MultiplexHeteroGraph g = testing::SmallBipartite();
  // Identity store over the graph's 7 nodes.
  Rng rng(10);
  std::vector<EmbeddingStore::TableInit> tables;
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    EmbeddingStore::TableInit t;
    t.name = g.relation_name(r);
    t.row_to_node.resize(g.num_nodes());
    t.data = Tensor(g.num_nodes(), 4);
    for (NodeId v = 0; v < g.num_nodes(); ++v) t.row_to_node[v] = v;
    for (size_t i = 0; i < t.data.size(); ++i) {
      t.data.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
    }
    tables.push_back(std::move(t));
  }
  auto store = EmbeddingStore::FromTables("ident", g.num_nodes(),
                                          std::move(tables));
  ASSERT_TRUE(store.ok());
  TopKRecommender rec(&*store, &g, TopKOptions{});

  // User 0 under "view" already links to items 4 and 5; with items as the
  // candidate type, only item 6 is left.
  TopKQuery q;
  q.node = 0;
  q.rel = 0;
  q.k = 10;
  q.candidate_type = g.FindNodeType("item");
  auto got = rec.Recommend(q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), 1u);
  EXPECT_EQ((*got)[0].node, NodeId{6});

  // Without the exclusion, all three items come back.
  q.exclude_train_neighbors = false;
  got = rec.Recommend(q);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 3u);

  // Candidate typing without a graph is an error.
  TopKRecommender graphless(&*store, nullptr, TopKOptions{});
  q.exclude_train_neighbors = true;
  EXPECT_EQ(graphless.Recommend(q).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TopKRecommenderTest, RejectsBadQueries) {
  EmbeddingStore store = MakeRandomStore(10, 4, 11);
  TopKRecommender rec(&store, nullptr, TopKOptions{});
  TopKQuery q;
  q.rel = 9;
  EXPECT_EQ(rec.Recommend(q).status().code(), StatusCode::kInvalidArgument);
  q.rel = 0;
  q.k = 0;
  EXPECT_EQ(rec.Recommend(q).status().code(), StatusCode::kInvalidArgument);
  q.k = 3;
  q.node = 3;
  q.rel = 1;  // odd node, partial table
  EXPECT_EQ(rec.Recommend(q).status().code(), StatusCode::kNotFound);
}

TEST(TopKRecommenderTest, BatchIsThreadCountInvariant) {
  EmbeddingStore store = MakeRandomStore(80, 16, 12);
  Rng rng(13);
  std::vector<TopKQuery> queries(64);
  for (auto& q : queries) {
    q.node = static_cast<NodeId>(rng.UniformUint64(80));
    q.rel = 0;
    q.k = 7;
  }
  TopKOptions serial;
  serial.num_threads = 1;
  TopKOptions parallel;
  parallel.num_threads = 4;
  auto a = TopKRecommender(&store, nullptr, serial).RecommendBatch(queries);
  auto b =
      TopKRecommender(&store, nullptr, parallel).RecommendBatch(queries);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok());
    ASSERT_TRUE(b[i].ok());
    ASSERT_EQ(a[i]->size(), b[i]->size());
    for (size_t j = 0; j < a[i]->size(); ++j) {
      EXPECT_EQ((*a[i])[j].node, (*b[i])[j].node);
      EXPECT_EQ((*a[i])[j].score, (*b[i])[j].score);
    }
  }
}

TEST(RecommendServiceTest, ServesConcurrentClientsCorrectly) {
  EmbeddingStore store = MakeRandomStore(50, 8, 14);
  TopKRecommender rec(&store, nullptr, TopKOptions{});
  ServiceOptions options;
  options.num_threads = 2;
  options.batch_window_ms = 0.5;
  options.max_batch_size = 8;
  RecommendService service(&rec, options);

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 25;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(200 + c);
      for (size_t i = 0; i < kPerClient; ++i) {
        TopKQuery q;
        q.node = static_cast<NodeId>(rng.UniformUint64(50));
        q.rel = 0;
        q.k = 5;
        RecommendResponse resp = service.Call(q);
        if (!resp.status.ok() || resp.items.size() != 5) {
          ++failures[c];
          continue;
        }
        auto direct = rec.Recommend(q);
        if (!direct.ok() || direct->size() != resp.items.size()) {
          ++failures[c];
          continue;
        }
        for (size_t j = 0; j < resp.items.size(); ++j) {
          if (resp.items[j].node != (*direct)[j].node) ++failures[c];
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
  MetricsSnapshot snap = service.metrics();
  EXPECT_EQ(snap.requests, kClients * kPerClient);
  EXPECT_EQ(snap.errors, 0u);
  EXPECT_GE(snap.batches, 1u);
  EXPECT_EQ(snap.items_returned, kClients * kPerClient * 5);
  EXPECT_GT(snap.latency_p99_ms, 0.0);
  EXPECT_GE(snap.latency_p99_ms, snap.latency_p50_ms);
}

TEST(RecommendServiceTest, ErrorsAreReportedPerRequest) {
  EmbeddingStore store = MakeRandomStore(20, 4, 15);
  TopKRecommender rec(&store, nullptr, TopKOptions{});
  RecommendService service(&rec, ServiceOptions{});
  TopKQuery bad;
  bad.rel = 7;
  RecommendResponse resp = service.Call(bad);
  EXPECT_EQ(resp.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(resp.items.empty());
  EXPECT_EQ(service.metrics().errors, 1u);
}

TEST(RecommendServiceTest, ShutdownDrainsPendingAndRejectsNewWork) {
  EmbeddingStore store = MakeRandomStore(30, 8, 16);
  TopKRecommender rec(&store, nullptr, TopKOptions{});
  std::vector<std::future<RecommendResponse>> futures;
  ServiceOptions options;
  options.batch_window_ms = 50.0;  // long window: requests queue up
  {
    RecommendService service(&rec, options);
    for (size_t i = 0; i < 10; ++i) {
      TopKQuery q;
      q.node = static_cast<NodeId>(i);
      q.rel = 0;
      q.k = 3;
      futures.push_back(service.Submit(q));
    }
    service.Shutdown();
    // After shutdown, new submissions resolve immediately with an error.
    RecommendResponse rejected = service.Call(TopKQuery{});
    EXPECT_EQ(rejected.status.code(), StatusCode::kFailedPrecondition);
  }  // destructor: Shutdown is idempotent
  for (auto& f : futures) {
    RecommendResponse resp = f.get();  // every future was fulfilled
    EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.items.size(), 3u);
  }
}

TEST(ServeMetricsTest, HistogramPercentiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.PercentileMs(50.0), 0.0);
  for (int i = 0; i < 99; ++i) h.Record(1.0);
  h.Record(1000.0);
  EXPECT_EQ(h.count(), 100u);
  // p50 and p99 fall in the ~1ms bucket (upper bound 1.024ms); p100 lands
  // in the ~1s bucket.
  EXPECT_LT(h.PercentileMs(50.0), 2.0);
  EXPECT_LT(h.PercentileMs(99.0), 2.0);
  EXPECT_GT(h.PercentileMs(100.0), 500.0);
  EXPECT_NEAR(h.MeanMs(), (99.0 * 1.0 + 1000.0) / 100.0, 0.1);
}

}  // namespace
}  // namespace hybridgnn
