// Differential test suite for the runtime-dispatched kernel layer
// (src/kernels): every kernel runs on both dispatch paths — scalar and,
// when the host supports it, AVX2 — across awkward shapes (dim 1, primes,
// the 63/64/65 vector-width boundary, unaligned starts, ±denormals, signed
// zeros) and the results must agree bitwise or within the documented ULP /
// reduction bounds (see kernels/kernels.h and DESIGN.md §11).
//
// Tolerance policy enforced here:
//   Scale           bit-identical across backends
//   Axpy            <= 1 ULP per element (compiler-contraction ambiguity)
//   Dot             |scalar - avx2| <= 2 * n * eps_f * sum|a_i * b_i|,
//                   and both within that bound of a double reference
//   SgnsUpdateStep  g to 64 ULP; row updates elementwise via the Dot-style
//                   bound scaled by |g| resp. the input magnitudes
//   ScoreBlock      double accumulation on both paths: 1e-12-relative
// Every kernel must also be deterministic: two calls on the same backend
// and inputs are bit-identical.
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernels/f16.h"
#include "kernels/kernels.h"

namespace hybridgnn {
namespace {

namespace k = ::hybridgnn::kernels;

const size_t kDims[] = {1,  2,  3,  7,  8,  9,   15,  16,  17,  31, 32,
                        33, 63, 64, 65, 96, 127, 128, 129, 255, 256, 1000};

/// ULP distance between two floats (monotone integer mapping; +0 and -0 are
/// 1 apart, which is stricter than IEEE equality and fine for our kernels).
int64_t UlpDiff(float a, float b) {
  int32_t ia, ib;
  std::memcpy(&ia, &a, 4);
  std::memcpy(&ib, &b, 4);
  if (ia < 0) ia = INT32_MIN - ia;
  if (ib < 0) ib = INT32_MIN - ib;
  return std::abs(static_cast<int64_t>(ia) - ib);
}

/// Test vector with adversarial values mixed in: denormals of both signs,
/// signed zeros, and magnitudes spanning a few orders.
std::vector<float> AwkwardVec(size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    switch (rng.UniformUint64(8)) {
      case 0:
        v[i] = 1e-41f;  // +denormal
        break;
      case 1:
        v[i] = -1e-41f;  // -denormal
        break;
      case 2:
        v[i] = rng.Bernoulli(0.5) ? 0.0f : -0.0f;
        break;
      case 3:
        v[i] = rng.UniformFloat(-1e-4f, 1e-4f);
        break;
      default:
        v[i] = rng.UniformFloat(-2.0f, 2.0f);
    }
  }
  return v;
}

/// Copies `src` into a buffer at a start deliberately misaligned to 4 bytes
/// past any 32-byte boundary, so the AVX2 unaligned-load paths and tails
/// are exercised. Returns the backing buffer; *out points at the data.
std::vector<float> Misalign(const std::vector<float>& src, float** out) {
  std::vector<float> buf(src.size() + 9, 0.0f);
  auto addr = reinterpret_cast<uintptr_t>(buf.data());
  size_t shift = (32 - addr % 32) / sizeof(float) + 1;  // 4 bytes past 32B
  std::copy(src.begin(), src.end(), buf.begin() + shift);
  *out = buf.data() + shift;
  return buf;
}

double SumAbsProducts(const float* a, const float* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    s += std::abs(static_cast<double>(a[i]) * b[i]);
  }
  return s;
}

bool BothBackends() { return k::Avx2Available(); }

class KernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!BothBackends()) {
      GTEST_SKIP() << "AVX2 kernels unavailable; differential comparison "
                      "needs both dispatch paths";
    }
  }
};

TEST(KernelDispatchTest, BackendNamesAndForcing) {
  EXPECT_STREQ(k::BackendName(k::Backend::kScalar), "scalar");
  EXPECT_STREQ(k::BackendName(k::Backend::kAvx2), "avx2");
  const k::Backend initial = k::ActiveBackend();
  {
    k::ScopedBackend forced(k::Backend::kScalar);
    EXPECT_EQ(k::ActiveBackend(), k::Backend::kScalar);
    if (k::Avx2Available()) {
      k::ScopedBackend inner(k::Backend::kAvx2);
      EXPECT_EQ(k::ActiveBackend(), k::Backend::kAvx2);
    }
    EXPECT_EQ(k::ActiveBackend(), k::Backend::kScalar);
  }
  EXPECT_EQ(k::ActiveBackend(), initial);
}

TEST(KernelDispatchTest, ScalarPathAlwaysPresent) {
  // Whatever the host, forcing scalar must work and compute correctly.
  k::ScopedBackend scalar(k::Backend::kScalar);
  const float a[] = {1.0f, 2.0f, 3.0f};
  const float b[] = {4.0f, -5.0f, 6.0f};
  EXPECT_EQ(k::Dot(a, b, 3), 1.0f * 4.0f + 2.0f * -5.0f + 3.0f * 6.0f);
}

TEST_F(KernelTest, DotDifferential) {
  Rng rng(1234);
  for (size_t n : kDims) {
    for (int rep = 0; rep < 4; ++rep) {
      float *a, *b;
      auto abuf = Misalign(AwkwardVec(n, rng), &a);
      auto bbuf = Misalign(AwkwardVec(n, rng), &b);
      float scalar, scalar2, avx2;
      {
        k::ScopedBackend g(k::Backend::kScalar);
        scalar = k::Dot(a, b, n);
        scalar2 = k::Dot(a, b, n);
      }
      {
        k::ScopedBackend g(k::Backend::kAvx2);
        avx2 = k::Dot(a, b, n);
      }
      EXPECT_EQ(UlpDiff(scalar, scalar2), 0) << "nondeterministic, n=" << n;
      // Both backends are sequential-or-lane-pairwise float summations, so
      // each is within n*eps*sum|terms| of the exact value; allow twice
      // that between them (plus a denormal-scale absolute floor).
      const double tol =
          2.0 * n * FLT_EPSILON * SumAbsProducts(a, b, n) + 1e-30;
      EXPECT_NEAR(scalar, avx2, tol) << "n=" << n << " rep=" << rep;
      double ref = 0.0;
      for (size_t i = 0; i < n; ++i) {
        ref += static_cast<double>(a[i]) * b[i];
      }
      EXPECT_NEAR(scalar, ref, tol) << "scalar vs double reference, n=" << n;
      EXPECT_NEAR(avx2, ref, tol) << "avx2 vs double reference, n=" << n;
    }
  }
}

TEST_F(KernelTest, AxpyDifferentialBitwiseWithinOneUlp) {
  Rng rng(99);
  for (size_t n : kDims) {
    const auto x0 = AwkwardVec(n, rng);
    const auto y0 = AwkwardVec(n, rng);
    for (float alpha : {0.5f, -1.0f, 1.0f, 3.25e-3f, -7.75f}) {
      float* x;
      auto xbuf = Misalign(x0, &x);
      float *ys, *yv;
      auto ysbuf = Misalign(y0, &ys);
      auto yvbuf = Misalign(y0, &yv);
      {
        k::ScopedBackend g(k::Backend::kScalar);
        k::Axpy(alpha, x, ys, n);
      }
      {
        k::ScopedBackend g(k::Backend::kAvx2);
        k::Axpy(alpha, x, yv, n);
      }
      for (size_t i = 0; i < n; ++i) {
        EXPECT_LE(UlpDiff(ys[i], yv[i]), 1)
            << "n=" << n << " alpha=" << alpha << " i=" << i << " scalar="
            << ys[i] << " avx2=" << yv[i];
      }
    }
  }
}

TEST_F(KernelTest, ScaleDifferentialBitwise) {
  Rng rng(7);
  for (size_t n : kDims) {
    const auto x0 = AwkwardVec(n, rng);
    for (float alpha : {0.0f, -0.0f, 2.5f, -1.0f, 1e-30f, 4.0f}) {
      float *xs, *xv;
      auto xsbuf = Misalign(x0, &xs);
      auto xvbuf = Misalign(x0, &xv);
      {
        k::ScopedBackend g(k::Backend::kScalar);
        k::Scale(alpha, xs, n);
      }
      {
        k::ScopedBackend g(k::Backend::kAvx2);
        k::Scale(alpha, xv, n);
      }
      for (size_t i = 0; i < n; ++i) {
        float a = xs[i], b = xv[i];
        EXPECT_EQ(std::memcmp(&a, &b, 4), 0)
            << "n=" << n << " alpha=" << alpha << " i=" << i << " scalar="
            << a << " avx2=" << b;
      }
    }
  }
}

TEST_F(KernelTest, SgnsUpdateStepDifferential) {
  Rng rng(2024);
  for (size_t n : kDims) {
    for (float label : {0.0f, 1.0f}) {
      const auto e0 = AwkwardVec(n, rng);
      const auto c0 = AwkwardVec(n, rng);
      const auto g0 = AwkwardVec(n, rng);
      const float lr = 0.025f;
      float *e, *cs, *cv, *gs, *gv;
      auto ebuf = Misalign(e0, &e);
      auto csbuf = Misalign(c0, &cs);
      auto cvbuf = Misalign(c0, &cv);
      auto gsbuf = Misalign(g0, &gs);
      auto gvbuf = Misalign(g0, &gv);
      float coef_s, coef_v;
      {
        k::ScopedBackend g(k::Backend::kScalar);
        coef_s = k::SgnsUpdateStep(e, cs, gs, n, label, lr);
      }
      {
        k::ScopedBackend g(k::Backend::kAvx2);
        coef_v = k::SgnsUpdateStep(e, cv, gv, n, label, lr);
      }
      // The gradient coefficient inherits the dot reduction's drift pushed
      // through sigmoid (Lipschitz 1/4) and scaled by lr. The bound is
      // absolute, not ULP-relative: when the dot cancels to near zero, the
      // reduction drift dwarfs the coefficient's own magnitude.
      const double dot_tol =
          2.0 * n * FLT_EPSILON * SumAbsProducts(e, c0.data(), n) + 1e-30;
      const double coef_tol = 0.25 * lr * dot_tol + 2.0 * FLT_EPSILON *
                                                        std::abs(coef_s);
      EXPECT_NEAR(coef_s, coef_v, coef_tol) << "n=" << n << " label="
                                            << label;
      for (size_t i = 0; i < n; ++i) {
        // c' = c - g*e and grad' = grad + g*c: drift is |Δg|*|operand| plus
        // one rounding of each fused/unfused multiply-add.
        const double ctol = coef_tol * std::abs(e[i]) +
                            4.0 * FLT_EPSILON * std::abs(cs[i]) + 1e-30;
        EXPECT_NEAR(cs[i], cv[i], ctol) << "c row, n=" << n << " i=" << i;
        const double gtol = coef_tol * std::abs(c0[i]) +
                            4.0 * FLT_EPSILON * std::abs(gs[i]) + 1e-30;
        EXPECT_NEAR(gs[i], gv[i], gtol) << "grad, n=" << n << " i=" << i;
      }
    }
  }
}

TEST_F(KernelTest, ScoreBlockDifferential) {
  Rng rng(31337);
  for (size_t n : kDims) {
    const size_t rows = n == 1000 ? 3 : 7;
    const auto q0 = AwkwardVec(n, rng);
    const auto t0 = AwkwardVec(rows * n, rng);
    float *q, *t;
    auto qbuf = Misalign(q0, &q);
    auto tbuf = Misalign(t0, &t);
    std::vector<double> scalar(rows), scalar2(rows), avx2(rows);
    {
      k::ScopedBackend g(k::Backend::kScalar);
      k::ScoreBlock(q, t, rows, n, scalar.data());
      k::ScoreBlock(q, t, rows, n, scalar2.data());
    }
    {
      k::ScopedBackend g(k::Backend::kAvx2);
      k::ScoreBlock(q, t, rows, n, avx2.data());
    }
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(scalar[r], scalar2[r]) << "nondeterministic, n=" << n;
      // Both paths accumulate in double; drift is double-rounding of the
      // partial sums only.
      const double tol =
          1e-12 * (SumAbsProducts(q, t + r * n, n) + 1.0);
      EXPECT_NEAR(scalar[r], avx2[r], tol) << "n=" << n << " row=" << r;
    }
  }
}

TEST_F(KernelTest, ScoreBlockMatchesRowAtATime) {
  // Blocked scoring must be exactly row-decomposable on every backend —
  // serve/topk.cc relies on this when it mixes blocked dense scans with
  // single-row scoring for type-filtered candidates.
  Rng rng(5);
  const size_t n = 65, rows = 9;
  const auto q = AwkwardVec(n, rng);
  const auto t = AwkwardVec(rows * n, rng);
  for (k::Backend backend : {k::Backend::kScalar, k::Backend::kAvx2}) {
    k::ScopedBackend g(backend);
    std::vector<double> blocked(rows), single(rows);
    k::ScoreBlock(q.data(), t.data(), rows, n, blocked.data());
    for (size_t r = 0; r < rows; ++r) {
      k::ScoreBlock(q.data(), t.data() + r * n, 1, n, &single[r]);
    }
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(blocked[r], single[r])
          << k::BackendName(backend) << " row " << r;
    }
  }
}

TEST_F(KernelTest, ScoreBlockF16Differential) {
  // Both backends convert half -> float identically (software converter
  // matches F16C bit for bit) and accumulate in double, so the bound is
  // the same double-rounding one ScoreBlock gets.
  Rng rng(777);
  for (size_t n : kDims) {
    const size_t rows = n == 1000 ? 3 : 7;
    const auto q = AwkwardVec(n, rng);
    std::vector<uint16_t> t(rows * n);
    std::vector<float> tf(rows * n);  // the dequantized table, for the bound
    for (size_t i = 0; i < t.size(); ++i) {
      t[i] = k::F32ToF16(AwkwardVec(1, rng)[0]);
      tf[i] = k::F16ToF32(t[i]);
    }
    std::vector<double> scalar(rows), scalar2(rows), avx2(rows);
    {
      k::ScopedBackend g(k::Backend::kScalar);
      k::ScoreBlockF16(q.data(), t.data(), rows, n, scalar.data());
      k::ScoreBlockF16(q.data(), t.data(), rows, n, scalar2.data());
    }
    {
      k::ScopedBackend g(k::Backend::kAvx2);
      k::ScoreBlockF16(q.data(), t.data(), rows, n, avx2.data());
    }
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(scalar[r], scalar2[r]) << "nondeterministic, n=" << n;
      const double tol =
          1e-12 * (SumAbsProducts(q.data(), tf.data() + r * n, n) + 1.0);
      EXPECT_NEAR(scalar[r], avx2[r], tol) << "n=" << n << " row=" << r;
    }
  }
}

TEST_F(KernelTest, ScoreBlockI8Differential) {
  // The int8 inner product accumulates in float (see kernels.h), so the
  // cross-backend bound is reduction-order drift scaled by the row's
  // affine scale, plus the double-rounding of the affine finish.
  Rng rng(888);
  for (size_t n : kDims) {
    const size_t rows = n == 1000 ? 3 : 7;
    const auto q = AwkwardVec(n, rng);
    double query_sum = 0.0;
    for (float v : q) query_sum += v;
    std::vector<uint8_t> t(rows * n);
    std::vector<float> scales(rows), zeros(rows);
    std::vector<float> codes_f(rows * n);  // codes as floats, for the bound
    for (size_t r = 0; r < rows; ++r) {
      scales[r] = rng.UniformFloat(1e-4f, 2e-2f);
      zeros[r] = rng.UniformFloat(-1.0f, 1.0f);
      for (size_t i = 0; i < n; ++i) {
        t[r * n + i] = static_cast<uint8_t>(rng.UniformUint64(256));
        codes_f[r * n + i] = static_cast<float>(t[r * n + i]);
      }
    }
    std::vector<double> scalar(rows), scalar2(rows), avx2(rows);
    {
      k::ScopedBackend g(k::Backend::kScalar);
      k::ScoreBlockI8(q.data(), t.data(), scales.data(), zeros.data(),
                      query_sum, rows, n, scalar.data());
      k::ScoreBlockI8(q.data(), t.data(), scales.data(), zeros.data(),
                      query_sum, rows, n, scalar2.data());
    }
    {
      k::ScopedBackend g(k::Backend::kAvx2);
      k::ScoreBlockI8(q.data(), t.data(), scales.data(), zeros.data(),
                      query_sum, rows, n, avx2.data());
    }
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(scalar[r], scalar2[r]) << "nondeterministic, n=" << n;
      const double inner_tol =
          2.0 * n * FLT_EPSILON *
              SumAbsProducts(q.data(), codes_f.data() + r * n, n) +
          1e-30;
      const double tol = std::abs(scales[r]) * inner_tol + 1e-12;
      EXPECT_NEAR(scalar[r], avx2[r], tol) << "n=" << n << " row=" << r;
    }
  }
}

TEST(KernelF16ConversionTest, PinsIeeeBinary16) {
  // Golden encodings of the binary16 special points; these pin the software
  // converter to IEEE-754 (and thereby to F16C, which the AVX2 path uses).
  EXPECT_EQ(k::F32ToF16(0.0f), 0x0000);
  EXPECT_EQ(k::F32ToF16(-0.0f), 0x8000);
  EXPECT_EQ(k::F32ToF16(1.0f), 0x3C00);
  EXPECT_EQ(k::F32ToF16(-2.0f), 0xC000);
  EXPECT_EQ(k::F32ToF16(65504.0f), 0x7BFF);   // max finite half
  EXPECT_EQ(k::F32ToF16(65536.0f), 0x7C00);   // overflow -> +Inf
  EXPECT_EQ(k::F32ToF16(-65536.0f), 0xFC00);  // overflow -> -Inf
  EXPECT_EQ(k::F32ToF16(5.9604645e-8f), 0x0001);  // min subnormal
  // Round to nearest even at the midpoint: 1 + 2^-11 is exactly between
  // 0x3C00 (1.0) and 0x3C01 (1 + 2^-10); even mantissa wins.
  EXPECT_EQ(k::F32ToF16(1.00048828125f), 0x3C00);
  EXPECT_EQ(k::F32ToF16(1.0009765625f), 0x3C01);  // representable exactly
  // Round trips of exactly representable values are identities.
  for (uint16_t h : {uint16_t{0x0000}, uint16_t{0x8000}, uint16_t{0x3C00},
                     uint16_t{0x7BFF}, uint16_t{0x0001}, uint16_t{0x83FF},
                     uint16_t{0x7C00}, uint16_t{0xFC00}, uint16_t{0x5648}}) {
    EXPECT_EQ(k::F32ToF16(k::F16ToF32(h)), h) << "half bits " << h;
  }
  // NaN stays NaN (payload may differ).
  const float nan_f = k::F16ToF32(k::F32ToF16(NAN));
  EXPECT_TRUE(std::isnan(nan_f));
}

TEST(KernelEdgeCaseTest, QuantizedZeroLength) {
  std::vector<k::Backend> backends = {k::Backend::kScalar};
  if (k::Avx2Available()) backends.push_back(k::Backend::kAvx2);
  for (k::Backend backend : backends) {
    k::ScopedBackend g(backend);
    double s = -1.0;
    k::ScoreBlockF16(nullptr, nullptr, 0, 4, &s);  // zero rows: untouched
    EXPECT_EQ(s, -1.0);
    k::ScoreBlockI8(nullptr, nullptr, nullptr, nullptr, 0.0, 0, 4, &s);
    EXPECT_EQ(s, -1.0);
    // Zero dim: the dot is empty, leaving only the affine term for i8.
    const float q = 2.0f;
    uint16_t h = 0;
    k::ScoreBlockF16(&q, &h, 1, 0, &s);
    EXPECT_EQ(s, 0.0);
    const uint8_t code = 9;
    const float scale = 3.0f, zero = 0.5f;
    k::ScoreBlockI8(&q, &code, &scale, &zero, 4.0, 1, 0, &s);
    EXPECT_EQ(s, 0.5 * 4.0);
  }
}

TEST(KernelEdgeCaseTest, ZeroAndOneLength) {
  // n == 0 must be a no-op on every available backend.
  std::vector<k::Backend> backends = {k::Backend::kScalar};
  if (k::Avx2Available()) backends.push_back(k::Backend::kAvx2);
  for (k::Backend backend : backends) {
    k::ScopedBackend g(backend);
    EXPECT_EQ(k::Dot(nullptr, nullptr, 0), 0.0f);
    float y = 3.0f, x = 2.0f;
    k::Axpy(5.0f, &x, &y, 0);
    EXPECT_EQ(y, 3.0f);
    k::Scale(0.5f, &y, 0);
    EXPECT_EQ(y, 3.0f);
    k::Axpy(2.0f, &x, &y, 1);
    EXPECT_EQ(y, 7.0f);
    double s = -1.0;
    k::ScoreBlock(&x, &y, 1, 1, &s);
    EXPECT_EQ(s, 14.0);
    k::ScoreBlock(&x, &y, 0, 4, &s);  // zero rows: out untouched
    EXPECT_EQ(s, 14.0);
  }
}

}  // namespace
}  // namespace hybridgnn
