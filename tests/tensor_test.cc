#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/init.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace hybridgnn {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_EQ(t.At(i, j), 0.0f);
  }
}

TEST(TensorTest, FromVectorAndAccessors) {
  Tensor t(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(t.At(0, 0), 1.0f);
  EXPECT_EQ(t.At(0, 1), 2.0f);
  EXPECT_EQ(t.At(1, 0), 3.0f);
  EXPECT_EQ(t(1, 1), 4.0f);
  t(1, 1) = 9.0f;
  EXPECT_EQ(t.At(1, 1), 9.0f);
}

TEST(TensorTest, FactoryHelpers) {
  EXPECT_EQ(Tensor::Ones(2, 2).Sum(), 4.0);
  EXPECT_EQ(Tensor::Full(2, 3, 2.0f).Sum(), 12.0);
  Tensor eye = Tensor::Eye(3);
  EXPECT_EQ(eye.Sum(), 3.0);
  EXPECT_EQ(eye.At(1, 1), 1.0f);
  EXPECT_EQ(eye.At(0, 1), 0.0f);
  Tensor row = Tensor::Row({5, 6});
  EXPECT_EQ(row.rows(), 1u);
  EXPECT_EQ(row.At(0, 1), 6.0f);
}

TEST(TensorTest, InPlaceOps) {
  Tensor a(1, 3, {1, 2, 3});
  Tensor b(1, 3, {10, 20, 30});
  a.AddInPlace(b);
  EXPECT_EQ(a.At(0, 2), 33.0f);
  a.Axpy(0.5f, b);
  EXPECT_EQ(a.At(0, 0), 16.0f);
  a.ScaleInPlace(2.0f);
  EXPECT_EQ(a.At(0, 0), 32.0f);
  a.Zero();
  EXPECT_EQ(a.Sum(), 0.0);
}

TEST(TensorTest, NormsAndMax) {
  Tensor a(1, 3, {3, -4, 0});
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 25.0);
  EXPECT_EQ(a.AbsMax(), 4.0f);
  EXPECT_EQ(a.CopyRow(0).At(0, 1), -4.0f);
}

TEST(TensorOpsTest, MatMulSmall) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.At(0, 0), 58.0f);
  EXPECT_EQ(c.At(0, 1), 64.0f);
  EXPECT_EQ(c.At(1, 0), 139.0f);
  EXPECT_EQ(c.At(1, 1), 154.0f);
}

TEST(TensorOpsTest, MatMulTransposeVariantsAgree) {
  Rng rng(5);
  Tensor a(4, 3), b(3, 5);
  UniformInit(a, rng, -1, 1);
  UniformInit(b, rng, -1, 1);
  Tensor ref = MatMul(a, b);
  Tensor via_ta = MatMulTransA(Transpose(a), b);
  Tensor via_tb = MatMulTransB(a, Transpose(b));
  for (size_t i = 0; i < ref.rows(); ++i) {
    for (size_t j = 0; j < ref.cols(); ++j) {
      EXPECT_NEAR(via_ta.At(i, j), ref.At(i, j), 1e-5);
      EXPECT_NEAR(via_tb.At(i, j), ref.At(i, j), 1e-5);
    }
  }
}

TEST(TensorOpsTest, ElementwiseOps) {
  Tensor a(1, 3, {1, 2, 3});
  Tensor b(1, 3, {4, 5, 6});
  EXPECT_EQ(Add(a, b).At(0, 0), 5.0f);
  EXPECT_EQ(Sub(b, a).At(0, 2), 3.0f);
  EXPECT_EQ(Mul(a, b).At(0, 1), 10.0f);
  EXPECT_EQ(Scale(a, 3.0f).At(0, 2), 9.0f);
}

TEST(TensorOpsTest, AddRowBroadcast) {
  Tensor a(2, 2, {1, 2, 3, 4});
  Tensor bias(1, 2, {10, 20});
  Tensor c = AddRowBroadcast(a, bias);
  EXPECT_EQ(c.At(0, 0), 11.0f);
  EXPECT_EQ(c.At(1, 1), 24.0f);
}

TEST(TensorOpsTest, TransposeRoundTrip) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.At(2, 1), 6.0f);
  Tensor tt = Transpose(t);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_EQ(tt.At(i, j), a.At(i, j));
  }
}

TEST(TensorOpsTest, Activations) {
  Tensor a(1, 2, {0.0f, -1.0f});
  EXPECT_NEAR(Sigmoid(a).At(0, 0), 0.5f, 1e-6);
  EXPECT_NEAR(Tanh(a).At(0, 1), std::tanh(-1.0f), 1e-6);
  EXPECT_EQ(Relu(a).At(0, 1), 0.0f);
  Tensor e(1, 1, {1.0f});
  EXPECT_NEAR(Exp(e).At(0, 0), std::exp(1.0f), 1e-5);
  EXPECT_NEAR(Log(Exp(e)).At(0, 0), 1.0f, 1e-5);
}

TEST(TensorOpsTest, LogClampsNonPositive) {
  Tensor a(1, 2, {0.0f, -5.0f});
  Tensor l = Log(a);
  EXPECT_TRUE(std::isfinite(l.At(0, 0)));
  EXPECT_TRUE(std::isfinite(l.At(0, 1)));
}

TEST(TensorOpsTest, SoftmaxRowsSumsToOne) {
  Tensor a(2, 3, {1, 2, 3, -1, 0, 1});
  Tensor s = SoftmaxRows(a);
  for (size_t i = 0; i < 2; ++i) {
    float sum = 0;
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_GT(s.At(i, j), 0.0f);
      sum += s.At(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6);
  }
  // Monotone in logits.
  EXPECT_GT(s.At(0, 2), s.At(0, 0));
}

TEST(TensorOpsTest, SoftmaxNumericallyStableForLargeLogits) {
  Tensor a(1, 2, {1000.0f, 999.0f});
  Tensor s = SoftmaxRows(a);
  EXPECT_TRUE(std::isfinite(s.At(0, 0)));
  EXPECT_NEAR(s.At(0, 0) + s.At(0, 1), 1.0f, 1e-6);
}

TEST(TensorOpsTest, RowwiseDot) {
  Tensor a(2, 2, {1, 2, 3, 4});
  Tensor b(2, 2, {5, 6, 7, 8});
  Tensor d = RowwiseDot(a, b);
  EXPECT_EQ(d.At(0, 0), 17.0f);
  EXPECT_EQ(d.At(1, 0), 53.0f);
}

TEST(TensorOpsTest, MeanAndSumRows) {
  Tensor a(2, 2, {1, 2, 3, 4});
  Tensor m = MeanRows(a);
  EXPECT_EQ(m.At(0, 0), 2.0f);
  EXPECT_EQ(m.At(0, 1), 3.0f);
  Tensor s = SumRows(a);
  EXPECT_EQ(s.At(0, 0), 4.0f);
}

TEST(TensorOpsTest, GatherRows) {
  Tensor t(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(t, {2, 0, 2});
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.At(0, 0), 5.0f);
  EXPECT_EQ(g.At(1, 1), 2.0f);
  EXPECT_EQ(g.At(2, 1), 6.0f);
}

TEST(TensorOpsTest, ConcatRowsAndCols) {
  Tensor a(1, 2, {1, 2});
  Tensor b(2, 2, {3, 4, 5, 6});
  Tensor r = ConcatRows({a, b});
  EXPECT_EQ(r.rows(), 3u);
  EXPECT_EQ(r.At(2, 1), 6.0f);
  Tensor c1(2, 1, {1, 2});
  Tensor c2(2, 2, {3, 4, 5, 6});
  Tensor c = ConcatCols({c1, c2});
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_EQ(c.At(1, 0), 2.0f);
  EXPECT_EQ(c.At(1, 2), 6.0f);
}

TEST(TensorOpsTest, L2NormalizeRows) {
  Tensor a(2, 2, {3, 4, 0, 0});
  L2NormalizeRowsInPlace(a);
  EXPECT_NEAR(a.At(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(a.At(0, 1), 0.8f, 1e-6);
  EXPECT_EQ(a.At(1, 0), 0.0f);  // zero row untouched
}

TEST(TensorOpsTest, CosineSimilarity) {
  Tensor a(1, 2, {1, 0});
  Tensor b(1, 2, {0, 1});
  Tensor c(1, 2, {2, 0});
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0f, 1e-6);
  EXPECT_NEAR(CosineSimilarity(a, c), 1.0f, 1e-6);
}

TEST(InitTest, XavierBoundsRespectFanInOut) {
  Rng rng(3);
  Tensor t(10, 30);
  XavierUniform(t, rng);
  const float bound = std::sqrt(6.0f / 40.0f);
  EXPECT_LE(t.AbsMax(), bound + 1e-6);
  EXPECT_GT(t.AbsMax(), 0.0f);
}

TEST(InitTest, NormalInitMoments) {
  Rng rng(5);
  Tensor t(100, 100);
  NormalInit(t, rng, 1.0f, 2.0f);
  EXPECT_NEAR(t.Sum() / t.size(), 1.0, 0.05);
}

TEST(InitTest, EmbeddingInitBounds) {
  Rng rng(7);
  Tensor t(50, 20);
  EmbeddingInit(t, rng);
  EXPECT_LE(t.AbsMax(), 0.5f / 20.0f + 1e-6);
}

}  // namespace
}  // namespace hybridgnn
