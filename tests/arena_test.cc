// Differential tests for the tape arena + tensor pool fast path: every op in
// autograd.h must produce bit-identical values and gradients whether the
// graph lives on the heap (pool off, no TapeScope) or on the per-thread
// arena (pool on, TapeScope active). A reuse test then pins the
// allocation-free steady state: after warmup, repeated tape-scoped steps
// stop growing both the pool-miss byte count and the arena footprint.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "tensor/autograd.h"
#include "tensor/init.h"
#include "tensor/pool.h"

namespace hybridgnn {
namespace {

using ag::Var;

std::vector<uint32_t> Bits(const Tensor& t) {
  std::vector<uint32_t> out(t.size());
  if (!t.empty()) std::memcpy(out.data(), t.data(), t.size() * sizeof(float));
  return out;
}

std::vector<Var> MakeParams(uint64_t seed) {
  Rng rng(seed);
  auto mk = [&](size_t r, size_t c) {
    Tensor t(r, c);
    UniformInit(t, rng, -0.8f, 0.8f);
    return ag::Param(std::move(t));
  };
  // Fixed menu reused by every case: a [3,4] pair, a [4,2] projection, a
  // [1,4] bias row, and [3,1]/[2,1] score columns.
  return {mk(3, 4), mk(4, 2), mk(3, 4), mk(1, 4), mk(3, 1), mk(2, 1)};
}

struct CaseResult {
  std::vector<uint32_t> loss_bits;
  std::vector<std::vector<uint32_t>> grad_bits;
};

using GraphFn = std::function<Var(const std::vector<Var>&)>;

CaseResult RunHeap(const GraphFn& build, uint64_t seed) {
  pool::PoolScope no_pool(false);
  std::vector<Var> params = MakeParams(seed);
  Var loss = build(params);
  ag::Backward(loss);
  CaseResult r;
  r.loss_bits = Bits(loss->value);
  for (const Var& p : params) r.grad_bits.push_back(Bits(p->grad));
  return r;
}

CaseResult RunArena(const GraphFn& build, uint64_t seed) {
  pool::PoolScope with_pool(true);
  std::vector<Var> params = MakeParams(seed);
  CaseResult r;
  {
    ag::TapeScope tape;
    Var loss = build(params);
    ag::Backward(loss);
    r.loss_bits = Bits(loss->value);
  }
  for (const Var& p : params) r.grad_bits.push_back(Bits(p->grad));
  return r;
}

void ExpectBitIdentical(const GraphFn& build, const char* what) {
  constexpr uint64_t kSeed = 0xA12EA;
  CaseResult heap = RunHeap(build, kSeed);
  CaseResult arena = RunArena(build, kSeed);
  EXPECT_EQ(heap.loss_bits, arena.loss_bits) << what << ": loss differs";
  ASSERT_EQ(heap.grad_bits.size(), arena.grad_bits.size());
  for (size_t i = 0; i < heap.grad_bits.size(); ++i) {
    EXPECT_EQ(heap.grad_bits[i], arena.grad_bits[i])
        << what << ": grad of param " << i << " differs";
  }
}

TEST(ArenaDifferential, EveryOpBitIdentical) {
  const std::vector<std::pair<const char*, GraphFn>> cases = {
      {"MatMul",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::MatMul(p[0], p[1]));
       }},
      {"Add",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::Add(p[0], p[2]));
       }},
      {"Sub",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::Sub(p[0], p[2]));
       }},
      {"Mul",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::Mul(p[0], p[2]));
       }},
      {"AddRowBroadcast",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::AddRowBroadcast(p[0], p[3]));
       }},
      {"ScaleNeg",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::Neg(ag::Scale(p[0], 1.7f)));
       }},
      {"Transpose",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::MatMul(ag::Transpose(p[0]), p[2]));
       }},
      {"Sigmoid",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::Sigmoid(p[0]));
       }},
      {"Tanh",
       [](const std::vector<Var>& p) { return ag::SumAll(ag::Tanh(p[0])); }},
      {"Relu",
       [](const std::vector<Var>& p) { return ag::SumAll(ag::Relu(p[0])); }},
      {"LogSigmoid",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::LogSigmoid(p[0]));
       }},
      {"SoftmaxRows",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::Mul(ag::SoftmaxRows(p[0]), p[2]));
       }},
      {"RowwiseDot",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::RowwiseDot(p[0], p[2]));
       }},
      {"MeanRows",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::MeanRows(p[0]));
       }},
      {"SumRows",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::SumRows(p[0]));
       }},
      {"MeanAll",
       [](const std::vector<Var>& p) { return ag::MeanAll(p[0]); }},
      {"ConcatRows",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::ConcatRows({p[0], p[2]}));
       }},
      {"ConcatCols",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::ConcatCols({p[0], p[2]}));
       }},
      {"SliceRows",
       [](const std::vector<Var>& p) {
         return ag::SumAll(ag::SliceRows(p[0], 1, 2));
       }},
      {"GatherRowsWithDuplicates",
       [](const std::vector<Var>& p) {
         return ag::SumAll(
             ag::GatherRows(p[0], std::vector<int32_t>{2, 0, 2, 1}));
       }},
      {"BceWithLogits",
       [](const std::vector<Var>& p) {
         return ag::BceWithLogits(p[4], {1.0f, 0.0f, 1.0f});
       }},
      {"SgnsLoss",
       [](const std::vector<Var>& p) { return ag::SgnsLoss(p[4], p[5]); }},
      {"AttentionShapedComposite",
       [](const std::vector<Var>& p) {
         Var h = ag::Tanh(ag::MatMul(p[0], p[1]));          // [3,2]
         Var w = ag::SoftmaxRows(ag::Transpose(
             ag::RowwiseDot(h, h)));                        // [1,3]
         Var mixed = ag::MatMul(w, p[2]);                   // [1,4]
         return ag::SumAll(ag::AddRowBroadcast(mixed, p[3]));
       }},
  };
  for (const auto& [name, fn] : cases) ExpectBitIdentical(fn, name);
}

TEST(ArenaDifferential, ConstantUnderTapeMatchesHeap) {
  GraphFn fn = [](const std::vector<Var>& p) {
    Var c = ag::Constant(Tensor::Full(3, 4, 0.25f));
    return ag::SumAll(ag::Mul(c, p[0]));
  };
  ExpectBitIdentical(fn, "ConstantUnderTape");
}

// The heap path must keep parents alive through the node even when the
// caller drops every other handle before Backward.
TEST(ArenaTest, HeapModeKeepsParentsAlive) {
  Var loss;
  Var param = ag::Param(Tensor::Full(2, 2, 0.5f));
  {
    Var tmp = ag::Scale(param, 3.0f);
    loss = ag::SumAll(tmp);
  }
  ag::Backward(loss);
  EXPECT_FLOAT_EQ(param->grad.At(0, 0), 3.0f);
}

TEST(ArenaTest, NestedScopesRewindIndependently) {
  Var param = ag::Param(Tensor::Full(2, 2, 1.0f));
  ag::TapeScope outer;
  Var outer_op = ag::Scale(param, 2.0f);
  {
    ag::TapeScope inner;
    Var inner_loss = ag::SumAll(ag::Scale(param, 5.0f));
    ag::Backward(inner_loss);
  }
  // The outer graph must still be usable after the inner rewind.
  Var loss = ag::SumAll(outer_op);
  ag::Backward(loss);
  // 5 (inner) + 2 (outer) accumulated into the shared leaf.
  EXPECT_FLOAT_EQ(param->grad.At(0, 0), 7.0f);
}

TEST(ArenaTest, GradSinkScopeRedirectsUnderTape) {
  Var param = ag::Param(Tensor::Full(2, 2, 1.0f));
  ag::GradSinkScope::Sink sink;
  {
    ag::GradSinkScope sink_scope(&sink);
    ag::TapeScope tape;
    Var loss = ag::SumAll(ag::Scale(param, 4.0f));
    ag::Backward(loss);
  }
  EXPECT_TRUE(param->grad.empty()) << "sink should absorb the leaf gradient";
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_FLOAT_EQ(sink[param.get()].At(0, 0), 4.0f);
}

// Steady-state contract: after a short warmup, tape-scoped train-like steps
// stop allocating — the pool serves every tensor (miss bytes flat) and the
// arena footprint stops growing (reserved bytes flat).
TEST(ArenaTest, SteadyStateStopsAllocating) {
  pool::PoolScope with_pool(true);
  std::vector<Var> params = MakeParams(0xBEEF);
  auto step = [&]() {
    ag::TapeScope tape;
    Var h = ag::Relu(ag::MatMul(params[0], params[1]));
    Var loss = ag::SumAll(ag::RowwiseDot(h, h));
    ag::Backward(loss);
    for (const Var& p : params) p->ZeroGrad();
  };
  for (int i = 0; i < 10; ++i) step();  // warmup: grow pool + arena
  const uint64_t miss_bytes_before = pool::MissBytes();
  const uint64_t arena_before = ag::Tape::TotalReservedBytes();
  for (int i = 0; i < 100; ++i) step();
  EXPECT_EQ(pool::MissBytes(), miss_bytes_before)
      << "warm steps should not miss the tensor pool";
  EXPECT_EQ(ag::Tape::TotalReservedBytes(), arena_before)
      << "warm steps should not grow any tape arena";
}

// Data-parallel pattern from HybridGnn::Fit: workers backprop private
// tape-scoped graphs over shared leaves under per-worker sinks. Run under
// TSan this is the race check for visit marks and pool migration; the
// reduced gradient must equal the serial accumulation bit for bit.
TEST(ArenaTest, ParallelWorkersMatchSerialReduction) {
  constexpr size_t kWorkers = 4;
  std::vector<Var> params = MakeParams(0xFEED);
  auto worker_loss = [&](size_t w) {
    Var scaled = ag::Scale(params[0], 0.5f + static_cast<float>(w));
    return ag::SumAll(ag::RowwiseDot(scaled, params[2]));
  };

  // Serial reference: accumulate all workers' grads in worker order.
  for (const Var& p : params) p->ZeroGrad();
  for (size_t w = 0; w < kWorkers; ++w) {
    ag::TapeScope tape;
    ag::Backward(worker_loss(w));
  }
  const std::vector<uint32_t> serial_bits = Bits(params[0]->grad);

  for (const Var& p : params) {
    p->ZeroGrad();
    p->grad = Tensor();  // force the parallel run to start from empty
  }
  std::vector<ag::GradSinkScope::Sink> sinks(kWorkers);
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w]() {
      ag::GradSinkScope sink_scope(&sinks[w]);
      ag::TapeScope tape;
      ag::Backward(worker_loss(w));
    });
  }
  for (auto& t : threads) t.join();
  for (size_t w = 0; w < kWorkers; ++w) {
    for (auto& [node, grad] : sinks[w]) node->AccumulateGrad(grad);
  }
  EXPECT_EQ(Bits(params[0]->grad), serial_bits);
}

TEST(ArenaTest, PoolRoundTripsBuffers) {
  pool::PoolScope with_pool(true);
  const pool::PoolStats before = pool::Stats();
  {
    Tensor a(8, 8);
    a.Fill(1.0f);
  }  // released to this thread's free list
  Tensor b(8, 8);  // must be served from the free list
  const pool::PoolStats after = pool::Stats();
  EXPECT_GE(after.hits, before.hits + 1);
  EXPECT_EQ(b.At(0, 0), 0.0f) << "pooled zero-init tensor must be cleared";
}

TEST(ArenaTest, OversizedBuffersBypassPool) {
  pool::PoolScope with_pool(true);
  const pool::PoolStats before = pool::Stats();
  Tensor big(pool::kMaxPooledElems + 1, 1);
  const pool::PoolStats after = pool::Stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses)
      << "oversized tensors must not count as pool traffic";
}

}  // namespace
}  // namespace hybridgnn
