// Golden tests for the step IR's textual dump, one rewrite pass at a time
// (before/after for inplacing, elementwise fusion, constant folding, and
// dead-gradient elimination), plus a randomized op-DAG fuzzer asserting
// that every generated graph compiles, replays bit-identically to eager,
// and re-records cleanly after a shape change (the model-level retrace).
//
// The goldens pin StepPlan::Dump() exactly — change src/plan/ir.cc or the
// pass pipeline only together with these strings.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "plan/plan.h"
#include "tensor/autograd.h"
#include "tensor/init.h"
#include "tensor/pool.h"

namespace hybridgnn {
namespace {

using ag::Var;

constexpr uint64_t kSeed = 0xA12EA;

std::vector<uint32_t> Bits(const Tensor& t) {
  std::vector<uint32_t> out(t.size());
  if (!t.empty()) std::memcpy(out.data(), t.data(), t.size() * sizeof(float));
  return out;
}

std::vector<Var> MakeParams(uint64_t seed) {
  Rng rng(seed);
  auto mk = [&](size_t r, size_t c) {
    Tensor t(r, c);
    UniformInit(t, rng, -0.8f, 0.8f);
    return ag::Param(std::move(t));
  };
  return {mk(3, 4), mk(4, 2), mk(3, 4), mk(1, 4), mk(3, 1), mk(2, 1)};
}

using GraphFn = std::function<Var(const std::vector<Var>&)>;
using OptsFn = std::function<plan::PassOptions(const std::vector<Var>&)>;

plan::PassOptions NoPasses() {
  plan::PassOptions o;
  o.fold_constants = false;
  o.fuse_elementwise = false;
  o.dead_grad_elim = false;
  o.inplace = false;
  return o;
}

std::string DumpFor(const GraphFn& build, const OptsFn& opts_fn) {
  pool::PoolScope with_pool(true);
  std::vector<Var> params = MakeParams(kSeed);
  const plan::PassOptions opts = opts_fn(params);
  std::unique_ptr<plan::CompiledStep> step;
  {
    ag::TapeScope tape;
    plan::Recorder rec;
    Var loss = build(params);
    step = rec.Finalize(loss, opts);
    EXPECT_NE(step, nullptr) << "trace poisoned: " << rec.poison_reason();
  }
  return step ? step->plan().Dump() : "";
}

void ExpectDump(const GraphFn& build, const OptsFn& opts_fn,
                const char* golden, const char* what) {
  const std::string got = DumpFor(build, opts_fn);
  EXPECT_EQ(got, std::string(golden)) << what << " actual dump:\n" << got;
}

// ---- Elementwise-chain fusion --------------------------------------------

Var ChainGraph(const std::vector<Var>& p) {
  return ag::SumAll(ag::Tanh(ag::Relu(ag::Scale(p[0], 0.5f))));
}

constexpr char kChainBefore[] =
    R"(plan root=v4 train=1 values=5 ops=4 schedule=4 buffers=4 islots=0 sslots=0 fslots=0
stats folded=0 fused_chains=0 fused_ops=0 dead_grad_elided=0 inplaced=0 passes_applied=0
v0: param [3x4] grad
v1: op0 [3x4] grad pin buf0
v2: op1 [3x4] grad buf1
v3: op2 [3x4] grad pin buf2
v4: op3 [1x1] grad pin buf3
op0: Scale(v0) -> v1 alpha=0.5 [bwd]
op1: Relu(v1) -> v2 [bwd]
op2: Tanh(v2) -> v3 [bwd]
op3: SumAll(v3) -> v4 [bwd]
backward: op3 op2 op1 op0
)";
constexpr char kChainAfter[] =
    R"(plan root=v4 train=1 values=5 ops=4 schedule=2 buffers=2 islots=0 sslots=0 fslots=0
stats folded=0 fused_chains=1 fused_ops=3 dead_grad_elided=0 inplaced=0 passes_applied=1
v0: param [3x4] grad pin
v1: op-1 [3x4] dead
v2: op-1 [3x4] dead
v3: op2 [3x4] grad buf0
v4: op3 [1x1] grad pin buf1
op0: Scale(v0) -> v1 alpha=0.5 [dead]
op1: Relu(v1) -> v2 [dead]
op2: EwChain(v0) -> v3 stages={scale(0.5),relu,tanh} [bwd]
op3: SumAll(v3) -> v4 [bwd]
backward: op3 op2
)";

TEST(PlanIrGolden, ElementwiseFusionBeforeAfter) {
  ExpectDump(ChainGraph, [](const std::vector<Var>&) { return NoPasses(); },
             kChainBefore, "chain/before");
  ExpectDump(ChainGraph,
             [](const std::vector<Var>&) {
               plan::PassOptions o = NoPasses();
               o.fuse_elementwise = true;
               return o;
             },
             kChainAfter, "chain/fused");
}

// ---- Constant folding ----------------------------------------------------

Var FoldGraph(const std::vector<Var>& p) {
  Var c = ag::Constant(Tensor::Full(3, 4, 0.25f));
  return ag::SumAll(ag::Mul(ag::Scale(c, 2.0f), p[0]));
}

constexpr char kFoldBefore[] =
    R"(plan root=v4 train=1 values=5 ops=3 schedule=3 buffers=3 islots=0 sslots=0 fslots=0
stats folded=0 fused_chains=0 fused_ops=0 dead_grad_elided=0 inplaced=0 passes_applied=0
v0: const [3x4]
v1: op0 [3x4] pin buf0
v2: param [3x4] grad pin
v3: op1 [3x4] grad buf1
v4: op2 [1x1] grad pin buf2
op0: Scale(v0) -> v1 alpha=2
op1: Mul(v1, v2) -> v3 [bwd]
op2: SumAll(v3) -> v4 [bwd]
backward: op2 op1
)";
constexpr char kFoldAfter[] =
    R"(plan root=v4 train=1 values=5 ops=3 schedule=2 buffers=2 islots=0 sslots=0 fslots=0
stats folded=1 fused_chains=0 fused_ops=0 dead_grad_elided=0 inplaced=0 passes_applied=1
v0: const [3x4]
v1: const [3x4] pin
v2: param [3x4] grad pin
v3: op1 [3x4] grad buf0
v4: op2 [1x1] grad pin buf1
op0: Scale(v0) -> v1 alpha=2 [dead]
op1: Mul(v1, v2) -> v3 [bwd]
op2: SumAll(v3) -> v4 [bwd]
backward: op2 op1
)";

TEST(PlanIrGolden, ConstantFoldingBeforeAfter) {
  ExpectDump(FoldGraph, [](const std::vector<Var>&) { return NoPasses(); },
             kFoldBefore, "fold/before");
  ExpectDump(FoldGraph,
             [](const std::vector<Var>&) {
               plan::PassOptions o = NoPasses();
               o.fold_constants = true;
               return o;
             },
             kFoldAfter, "fold/folded");
}

// ---- Dead-gradient elimination (frozen params) ---------------------------

Var FrozenGraph(const std::vector<Var>& p) {
  // Tanh(p0) feeds nothing trainable once p0 is frozen, so its whole
  // branch drops out of the backward schedule; Tanh(p2) keeps training.
  return ag::SumAll(ag::Add(ag::Tanh(p[0]), ag::Tanh(p[2])));
}

// Note the op numbering: the compiler evaluates Add's arguments
// right-to-left here, so op0 is Tanh(p[2]) and op1 is Tanh(p[0]).
constexpr char kFrozenBefore[] =
    R"(plan root=v5 train=1 values=6 ops=4 schedule=4 buffers=4 islots=0 sslots=0 fslots=0
stats folded=0 fused_chains=0 fused_ops=0 dead_grad_elided=0 inplaced=0 passes_applied=0
v0: param [3x4] grad
v1: op0 [3x4] grad pin buf0
v2: param [3x4] grad
v3: op1 [3x4] grad pin buf1
v4: op2 [3x4] grad buf2
v5: op3 [1x1] grad pin buf3
op0: Tanh(v0) -> v1 [bwd]
op1: Tanh(v2) -> v3 [bwd]
op2: Add(v3, v1) -> v4 [bwd]
op3: SumAll(v4) -> v5 [bwd]
backward: op3 op2 op0 op1
)";
constexpr char kFrozenAfter[] =
    R"(plan root=v5 train=1 values=6 ops=4 schedule=4 buffers=4 islots=0 sslots=0 fslots=0
stats folded=0 fused_chains=0 fused_ops=0 dead_grad_elided=1 inplaced=0 passes_applied=1
v0: param [3x4] grad
v1: op0 [3x4] grad pin buf0
v2: param [3x4]
v3: op1 [3x4] buf1
v4: op2 [3x4] grad buf2
v5: op3 [1x1] grad pin buf3
op0: Tanh(v0) -> v1 [bwd]
op1: Tanh(v2) -> v3
op2: Add(v3, v1) -> v4 [bwd]
op3: SumAll(v4) -> v5 [bwd]
backward: op3 op2 op0
)";

TEST(PlanIrGolden, DeadGradElimBeforeAfter) {
  ExpectDump(FrozenGraph, [](const std::vector<Var>&) { return NoPasses(); },
             kFrozenBefore, "frozen/before");
  ExpectDump(FrozenGraph,
             [](const std::vector<Var>& params) {
               plan::PassOptions o = NoPasses();
               o.dead_grad_elim = true;
               o.frozen.insert(params[0].get());
               return o;
             },
             kFrozenAfter, "frozen/elided");
}

// ---- Inplacing -----------------------------------------------------------

Var InplaceGraph(const std::vector<Var>& p) {
  // Add's output dies at the Sigmoid that consumes it — an inplacing donor.
  return ag::SumAll(ag::Sigmoid(ag::Add(p[0], p[2])));
}

constexpr char kInplaceBefore[] =
    R"(plan root=v4 train=1 values=5 ops=3 schedule=3 buffers=3 islots=0 sslots=0 fslots=0
stats folded=0 fused_chains=0 fused_ops=0 dead_grad_elided=0 inplaced=0 passes_applied=0
v0: param [3x4] grad
v1: param [3x4] grad
v2: op0 [3x4] grad buf0
v3: op1 [3x4] grad pin buf1
v4: op2 [1x1] grad pin buf2
op0: Add(v0, v1) -> v2 [bwd]
op1: Sigmoid(v2) -> v3 [bwd]
op2: SumAll(v3) -> v4 [bwd]
backward: op2 op1 op0
)";
constexpr char kInplaceAfter[] =
    R"(plan root=v4 train=1 values=5 ops=3 schedule=3 buffers=2 islots=0 sslots=0 fslots=0
stats folded=0 fused_chains=0 fused_ops=0 dead_grad_elided=0 inplaced=1 passes_applied=1
v0: param [3x4] grad
v1: param [3x4] grad
v2: op0 [3x4] grad buf0
v3: op1 [3x4] grad pin buf0
v4: op2 [1x1] grad pin buf1
op0: Add(v0, v1) -> v2 [bwd]
op1: Sigmoid(v2) -> v3 inplace(arg0) [bwd]
op2: SumAll(v3) -> v4 [bwd]
backward: op2 op1 op0
)";

TEST(PlanIrGolden, InplacingBeforeAfter) {
  ExpectDump(InplaceGraph, [](const std::vector<Var>&) { return NoPasses(); },
             kInplaceBefore, "inplace/before");
  ExpectDump(InplaceGraph,
             [](const std::vector<Var>&) {
               plan::PassOptions o = NoPasses();
               o.inplace = true;
               return o;
             },
             kInplaceAfter, "inplace/after");
}

// ---- Randomized op-DAG fuzzer --------------------------------------------

// A deterministic recipe of shape-preserving ops over a pool of values that
// starts at the params. Interpreted identically for the eager and compiled
// runs, so the two graphs are the same DAG by construction.
struct FuzzStep {
  int op = 0;  // 0..6 unary, 7..9 binary
  int a = 0;
  int b = 0;
  float alpha = 1.0f;
};

std::vector<FuzzStep> MakeRecipe(uint64_t seed, int len, int num_params) {
  Rng rng(0x5EED0000ull + seed);
  std::vector<FuzzStep> recipe;
  for (int i = 0; i < len; ++i) {
    FuzzStep s;
    s.op = static_cast<int>(rng.UniformUint64(10));
    const int pool = num_params + i;
    s.a = static_cast<int>(rng.UniformUint64(pool));
    s.b = static_cast<int>(rng.UniformUint64(pool));
    s.alpha = rng.UniformFloat(-1.5f, 1.5f);
    recipe.push_back(s);
  }
  return recipe;
}

Var BuildFromRecipe(const std::vector<FuzzStep>& recipe,
                    const std::vector<Var>& params) {
  std::vector<Var> pool = params;
  for (const FuzzStep& s : recipe) {
    const Var& a = pool[s.a];
    const Var& b = pool[s.b];
    switch (s.op) {
      case 0:
        pool.push_back(ag::Sigmoid(a));
        break;
      case 1:
        pool.push_back(ag::Tanh(a));
        break;
      case 2:
        pool.push_back(ag::Relu(a));
        break;
      case 3:
        pool.push_back(ag::LogSigmoid(a));
        break;
      case 4:
        pool.push_back(ag::Scale(a, s.alpha));
        break;
      case 5:
        pool.push_back(ag::Neg(a));
        break;
      case 6:
        pool.push_back(ag::SoftmaxRows(a));
        break;
      case 7:
        pool.push_back(ag::Add(a, b));
        break;
      case 8:
        pool.push_back(ag::Sub(a, b));
        break;
      default:
        pool.push_back(ag::Mul(a, b));
        break;
    }
  }
  Var loss = ag::SumAll(pool.back());
  pool.clear();  // drop every non-root handle before Finalize
  return loss;
}

// One fuzz case at one shape: eager bits vs record+replay bits, replayed
// twice to check replay stability.
void RunFuzzShape(const std::vector<FuzzStep>& recipe, uint64_t param_seed,
                  size_t rows, size_t cols, const char* what) {
  pool::PoolScope with_pool(true);
  Rng prng(param_seed);
  std::vector<Var> params;
  for (int i = 0; i < 3; ++i) {
    Tensor t(rows, cols);
    UniformInit(t, prng, -0.8f, 0.8f);
    params.push_back(ag::Param(std::move(t)));
  }

  std::vector<uint32_t> eager_loss;
  std::vector<std::vector<uint32_t>> eager_grads;
  {
    ag::TapeScope tape;
    Var loss = BuildFromRecipe(recipe, params);
    ag::Backward(loss);
    eager_loss = Bits(loss->value);
  }
  for (const Var& p : params) {
    eager_grads.push_back(Bits(p->grad));
    p->grad = Tensor();
  }

  std::unique_ptr<plan::CompiledStep> step;
  {
    ag::TapeScope tape;
    plan::Recorder rec;
    Var loss = BuildFromRecipe(recipe, params);
    step = rec.Finalize(loss);
    ASSERT_NE(step, nullptr)
        << what << ": trace poisoned: " << rec.poison_reason();
  }
  for (int replay = 0; replay < 2; ++replay) {
    for (const Var& p : params) p->grad = Tensor();
    std::vector<uint32_t> loss_bits;
    {
      ag::TapeScope tape;
      Var loss = step->ReplayTrain({});
      ag::Backward(loss);
      loss_bits = Bits(loss->value);
    }
    EXPECT_EQ(loss_bits, eager_loss) << what << " replay " << replay;
    for (size_t i = 0; i < params.size(); ++i) {
      EXPECT_EQ(Bits(params[i]->grad), eager_grads[i])
          << what << " replay " << replay << " grad " << i;
    }
  }
}

TEST(PlanFuzz, RandomDagsCompileReplayAndRetrace) {
  for (uint64_t seed = 0; seed < 24; ++seed) {
    const std::vector<FuzzStep> recipe =
        MakeRecipe(seed, /*len=*/2 + static_cast<int>(seed % 7),
                   /*num_params=*/3);
    char what[64];
    // Shape A, then a different shape — the model-level "retrace after
    // shape change" is exactly a fresh record at the new shape.
    std::snprintf(what, sizeof(what), "dag seed %llu shape A",
                  static_cast<unsigned long long>(seed));
    RunFuzzShape(recipe, 0xF00D ^ seed, 3 + seed % 3, 4, what);
    std::snprintf(what, sizeof(what), "dag seed %llu shape B",
                  static_cast<unsigned long long>(seed));
    RunFuzzShape(recipe, 0xF00D ^ seed, 5, 6, what);
  }
}

}  // namespace
}  // namespace hybridgnn
