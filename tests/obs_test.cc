#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"

namespace hybridgnn::obs {
namespace {

// ---------- LatencyHistogram ----------

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.MeanMs(), 0.0);
  EXPECT_DOUBLE_EQ(h.TotalMs(), 0.0);
  EXPECT_DOUBLE_EQ(h.PercentileMs(50), 0.0);
}

TEST(LatencyHistogramTest, BucketEdgesArePowersOfTwoMicros) {
  // Bucket i covers [2^i, 2^(i+1)) us; the reported value is the upper edge.
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperBoundMs(0), 0.002);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperBoundMs(1), 0.004);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperBoundMs(9), 1.024);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperBoundMs(16), 131.072);

  LatencyHistogram h;
  h.Record(0.001);  // exactly 1us -> bucket 0, upper edge 2us
  EXPECT_DOUBLE_EQ(h.PercentileMs(100), 0.002);
  h.Reset();
  h.Record(0.002);  // exactly 2us -> bucket 1, upper edge 4us
  EXPECT_DOUBLE_EQ(h.PercentileMs(100), 0.004);
  h.Reset();
  h.Record(1.0);  // 1000us -> bucket 9 [512us, 1024us), upper edge 1.024ms
  EXPECT_DOUBLE_EQ(h.PercentileMs(100), 1.024);
}

// Regression: sub-microsecond observations used to fold into bucket 0 and
// report 0.002ms — double the worst-case truth. They must land in the
// dedicated underflow bucket and report the 1us upper bound instead.
TEST(LatencyHistogramTest, SubMicrosecondReportsUnderflowUpperBound) {
  LatencyHistogram h;
  h.Record(0.0005);  // 0.5us
  h.Record(0.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.PercentileMs(50), LatencyHistogram::kUnderflowUpperMs);
  EXPECT_DOUBLE_EQ(h.PercentileMs(100), 0.001);
  // Mixed with slower observations, the underflow entries occupy the low
  // ranks and the slow one still dominates p100.
  h.Record(1.0);
  EXPECT_DOUBLE_EQ(h.PercentileMs(50), 0.001);
  EXPECT_DOUBLE_EQ(h.PercentileMs(100), 1.024);
}

TEST(LatencyHistogramTest, GoldenPercentiles) {
  LatencyHistogram h;
  // 1000 x 10us -> bucket 3 [8us, 16us), upper edge 0.016ms.
  for (int i = 0; i < 1000; ++i) h.Record(0.01);
  EXPECT_DOUBLE_EQ(h.PercentileMs(50), 0.016);
  EXPECT_DOUBLE_EQ(h.PercentileMs(99), 0.016);
  // One 100ms outlier -> bucket 16 [65.536ms, 131.072ms).
  h.Record(100.0);
  EXPECT_DOUBLE_EQ(h.PercentileMs(50), 0.016);
  EXPECT_DOUBLE_EQ(h.PercentileMs(99), 0.016);
  EXPECT_DOUBLE_EQ(h.PercentileMs(100), 131.072);
  EXPECT_EQ(h.count(), 1001u);
  EXPECT_NEAR(h.MeanMs(), (1000 * 0.01 + 100.0) / 1001.0, 1e-6);
  EXPECT_NEAR(h.TotalMs(), 110.0, 1e-3);
}

TEST(LatencyHistogramTest, ResetZeroesEverything) {
  LatencyHistogram h;
  h.Record(0.0005);
  h.Record(5.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.PercentileMs(100), 0.0);
  EXPECT_DOUBLE_EQ(h.TotalMs(), 0.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordKeepsTotalCount) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(0.5);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(h.PercentileMs(100), 0.512);  // 500us -> [256us, 512us)
}

// ---------- Counters / gauges / registry ----------

TEST(MetricRegistryTest, CounterAndGaugeBasics) {
  MetricRegistry reg;
  Counter& c = reg.GetCounter("test/events");
  c.Add();
  c.Add(9);
  EXPECT_EQ(c.value(), 10u);
  Gauge& g = reg.GetGauge("test/loss");
  g.Set(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 0.25);
}

TEST(MetricRegistryTest, GetReturnsStableReferences) {
  MetricRegistry reg;
  Counter& a = reg.GetCounter("test/a");
  // Registering more entries must not invalidate earlier references.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("test/filler" + std::to_string(i));
  }
  Counter& a2 = reg.GetCounter("test/a");
  EXPECT_EQ(&a, &a2);
  a.Add(3);
  EXPECT_EQ(a2.value(), 3u);
}

TEST(MetricRegistryTest, ResetKeepsEntriesButZeroesValues) {
  MetricRegistry reg;
  Counter& c = reg.GetCounter("test/c");
  Gauge& g = reg.GetGauge("test/g");
  LatencyHistogram& h = reg.GetHistogram("test/h");
  c.Add(5);
  g.Set(1.5);
  h.Record(1.0);
  reg.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  // References are still the registered entries.
  EXPECT_EQ(&c, &reg.GetCounter("test/c"));
}

TEST(MetricRegistryTest, SnapshotCopiesAllMetricKinds) {
  MetricRegistry reg;
  reg.GetCounter("z/counter").Add(7);
  reg.GetGauge("z/gauge").Set(-2.5);
  reg.GetHistogram("z/stage").Record(0.01);
  RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "z/counter");
  EXPECT_EQ(snap.counters[0].second, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, -2.5);
  ASSERT_EQ(snap.stages.size(), 1u);
  EXPECT_EQ(snap.stages[0].name, "z/stage");
  EXPECT_EQ(snap.stages[0].count, 1u);
  EXPECT_DOUBLE_EQ(snap.stages[0].p50_ms, 0.016);
  EXPECT_DOUBLE_EQ(snap.stages[0].max_ms, 0.016);
}

TEST(MetricRegistryTest, ConcurrentRegistrationAndUpdates) {
  MetricRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      // All threads race to register the same names, then hammer them.
      Counter& c = reg.GetCounter("race/counter");
      LatencyHistogram& h = reg.GetHistogram("race/stage");
      for (int i = 0; i < 1000; ++i) {
        c.Add();
        h.Record(0.01);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.GetCounter("race/counter").value(), 8000u);
  EXPECT_EQ(reg.GetHistogram("race/stage").count(), 8000u);
}

TEST(ScopedTimerTest, RecordsOneObservationOnScopeExit) {
  MetricRegistry reg;
  LatencyHistogram& h = reg.GetHistogram("timer/stage");
  {
    ScopedTimer timer(h);
    EXPECT_GE(timer.ElapsedMs(), 0.0);
    EXPECT_EQ(h.count(), 0u) << "must not record before destruction";
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.PercentileMs(100), 0.0);
}

TEST(GlobalRegistryTest, StageIsGlobalHistogram) {
  LatencyHistogram& h = Stage("obs_test/global_stage");
  EXPECT_EQ(&h, &GlobalRegistry().GetHistogram("obs_test/global_stage"));
}

// ---------- JSON serialization ----------

TEST(ToJsonTest, EmptyRegistryIsValidSkeleton) {
  MetricRegistry reg;
  const std::string json = ToJson(reg);
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"stages\": {}"), std::string::npos);
}

TEST(ToJsonTest, ContainsAllEntriesWithValues) {
  MetricRegistry reg;
  reg.GetCounter("a/requests").Add(42);
  reg.GetGauge("a/loss").Set(0.5);
  LatencyHistogram& h = reg.GetHistogram("a/latency");
  for (int i = 0; i < 10; ++i) h.Record(0.01);
  const std::string json = ToJson(reg);
  EXPECT_NE(json.find("\"a/requests\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"a/loss\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"a/latency\": {\"count\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"p50_ms\": 0.016"), std::string::npos);
  // Braces balance — cheap structural sanity for hand-rolled JSON.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ToJsonTest, EscapesMetricNames) {
  MetricRegistry reg;
  reg.GetCounter("weird\"name\\with\nescapes").Add(1);
  const std::string json = ToJson(reg);
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nescapes"), std::string::npos);
}

}  // namespace
}  // namespace hybridgnn::obs
