// Streaming-ingest subsystem tests: delta-log round-trips in both formats,
// corruption rejection (mirroring checkpoint_corruption_test.cc's contract
// that every bad file comes back as a clean Status), overlay equivalence
// against a rebuilt CSR graph, dirty-frontier expansion, and the
// incremental refresher's two core guarantees — streamed edges score higher
// after a refresh, and rows outside the dirty region keep their exact bits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "eval/metrics.h"
#include "serve/embedding_store.h"
#include "serve/topk.h"
#include "stream/delta_log.h"
#include "stream/live_store.h"
#include "stream/overlay.h"
#include "stream/refresher.h"
#include "tensor/tensor.h"

namespace hybridgnn {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

std::vector<char> ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.is_open()) << path;
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Base fixture graph: users 0..5 and items 6..11 under relations
/// view / buy. Nodes 4, 5, 10, 11 form a component disconnected from the
/// rest — the refresher must never touch their rows when deltas land on
/// the main component.
MultiplexHeteroGraph MakeBaseGraph() {
  GraphBuilder b;
  EXPECT_TRUE(b.AddNodeType("user").ok());
  EXPECT_TRUE(b.AddNodeType("item").ok());
  EXPECT_TRUE(b.AddRelation("view").ok());
  EXPECT_TRUE(b.AddRelation("buy").ok());
  EXPECT_TRUE(b.AddNodes(0, 6).ok());
  EXPECT_TRUE(b.AddNodes(1, 6).ok());
  // Main component: users 0-3, items 6-9.
  const NodeId view_edges[][2] = {{0, 6}, {0, 7}, {1, 6}, {1, 8},
                                  {2, 7}, {2, 9}, {3, 8}, {3, 9}};
  for (const auto& e : view_edges) EXPECT_TRUE(b.AddEdge(e[0], e[1], 0).ok());
  const NodeId buy_edges[][2] = {{0, 6}, {1, 8}, {2, 9}};
  for (const auto& e : buy_edges) EXPECT_TRUE(b.AddEdge(e[0], e[1], 1).ok());
  // Island: users 4-5, items 10-11.
  EXPECT_TRUE(b.AddEdge(4, 10, 0).ok());
  EXPECT_TRUE(b.AddEdge(5, 11, 0).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

EmbeddingStore MakeStore(const MultiplexHeteroGraph& g, size_t dim,
                         uint64_t seed) {
  Rng rng(seed);
  std::vector<EmbeddingStore::TableInit> tables;
  std::vector<NodeId> identity(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) identity[v] = v;
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    EmbeddingStore::TableInit t;
    t.name = g.relation_name(r);
    t.row_to_node = identity;
    t.data = Tensor(g.num_nodes(), dim);
    for (size_t i = 0; i < t.data.size(); ++i) {
      t.data.data()[i] = rng.UniformFloat(-0.5f, 0.5f);
    }
    tables.push_back(std::move(t));
  }
  auto store = EmbeddingStore::FromTables("test", g.num_nodes(),
                                          std::move(tables));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

std::vector<GraphDelta> SampleDeltas() {
  return {
      GraphDelta::AddEdge(0, 9, 0, 100),
      GraphDelta::AddNode(1, 150),
      GraphDelta::AddEdge(2, 12, 0, 200),  // edge to the streamed-in node
      GraphDelta::AddEdge(1, 7, 1, 250),
  };
}

// ---------------------------------------------------------------- delta log

TEST(DeltaLogTest, BinaryRoundTrip) {
  const std::string path = TempPath("roundtrip.hgd");
  const std::vector<GraphDelta> deltas = SampleDeltas();
  ASSERT_TRUE(SaveDeltaLogBinary(deltas, path).ok());
  auto loaded = LoadDeltaLogBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, deltas);
}

TEST(DeltaLogTest, WriterAppendsAcrossReopens) {
  const std::string path = TempPath("append.hgd");
  fs::remove(path);
  const std::vector<GraphDelta> deltas = SampleDeltas();
  {
    DeltaLogWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    ASSERT_TRUE(w.Append(deltas[0]).ok());
    ASSERT_TRUE(w.Append(deltas[1]).ok());
    ASSERT_TRUE(w.Flush().ok());
  }
  {
    // Re-open positions at the end and keeps the existing records.
    DeltaLogWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    ASSERT_TRUE(w.Append(deltas[2]).ok());
    ASSERT_TRUE(w.Append(deltas[3]).ok());
  }
  auto loaded = LoadDeltaLogBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, deltas);
}

TEST(DeltaLogTest, TextRoundTripAndAutoDetect) {
  MultiplexHeteroGraph g = MakeBaseGraph();
  const std::string text_path = TempPath("roundtrip.txt");
  const std::string bin_path = TempPath("autodetect.hgd");
  const std::vector<GraphDelta> deltas = SampleDeltas();
  ASSERT_TRUE(SaveDeltaLogText(deltas, g, text_path).ok());
  auto from_text = LoadDeltaLogText(text_path, g);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  EXPECT_EQ(*from_text, deltas);

  ASSERT_TRUE(SaveDeltaLogBinary(deltas, bin_path).ok());
  auto auto_bin = LoadDeltaLog(bin_path, g);
  auto auto_text = LoadDeltaLog(text_path, g);
  ASSERT_TRUE(auto_bin.ok());
  ASSERT_TRUE(auto_text.ok());
  EXPECT_EQ(*auto_bin, deltas);
  EXPECT_EQ(*auto_text, deltas);
}

TEST(DeltaLogTest, RejectsTruncatedAndCorruptBinary) {
  const std::string good = TempPath("corrupt_base.hgd");
  ASSERT_TRUE(SaveDeltaLogBinary(SampleDeltas(), good).ok());
  const std::vector<char> bytes = ReadFile(good);
  ASSERT_EQ(bytes.size(), kDeltaLogHeaderBytes + 4 * kDeltaLogRecordBytes);

  const std::string bad = TempPath("corrupt.hgd");
  // Truncation mid-record: any record-region size not a multiple of 20.
  for (size_t cut : {1ul, 7ul, kDeltaLogRecordBytes - 1}) {
    std::vector<char> t(bytes.begin(), bytes.end() - cut);
    WriteFile(bad, t);
    auto st = LoadDeltaLogBinary(bad);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.status().message().find("truncated"), std::string::npos);
    // The appender refuses such a file too (no silent resync).
    DeltaLogWriter w;
    EXPECT_FALSE(w.Open(bad).ok());
  }
  // Header shorter than 8 bytes.
  WriteFile(bad, std::vector<char>(bytes.begin(), bytes.begin() + 3));
  EXPECT_FALSE(LoadDeltaLogBinary(bad).ok());
  // Bad magic.
  {
    std::vector<char> t = bytes;
    t[0] = 'X';
    WriteFile(bad, t);
    EXPECT_FALSE(LoadDeltaLogBinary(bad).ok());
  }
  // Foreign endianness (tag bytes swapped).
  {
    std::vector<char> t = bytes;
    std::swap(t[4], t[5]);
    WriteFile(bad, t);
    EXPECT_FALSE(LoadDeltaLogBinary(bad).ok());
  }
  // Unsupported version.
  {
    std::vector<char> t = bytes;
    t[6] = 99;
    WriteFile(bad, t);
    EXPECT_FALSE(LoadDeltaLogBinary(bad).ok());
  }
  // Unknown record kind.
  {
    std::vector<char> t = bytes;
    t[kDeltaLogHeaderBytes] = 77;
    WriteFile(bad, t);
    auto st = LoadDeltaLogBinary(bad);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.status().message().find("unknown kind"), std::string::npos);
  }
}

TEST(DeltaLogTest, TextLoaderPinpointsBadLines) {
  MultiplexHeteroGraph g = MakeBaseGraph();
  const std::string path = TempPath("bad.txt");
  struct Case {
    const char* content;
    const char* expect;
  };
  const Case cases[] = {
      {"add-edge 5 0 9 teleport\n", "unknown relation"},
      {"add-node 5 ghost\n", "unknown node type"},
      {"add-edge 5 0 9\n", "add-edge needs"},
      {"transmogrify 1 2\n", "unknown record kind"},
  };
  for (const Case& c : cases) {
    std::ofstream(path, std::ios::trunc) << "# comment\n" << c.content;
    auto st = LoadDeltaLogText(path, g);
    ASSERT_FALSE(st.ok()) << c.content;
    EXPECT_NE(st.status().message().find(c.expect), std::string::npos)
        << st.status().ToString();
    EXPECT_NE(st.status().message().find(":2:"), std::string::npos)
        << "expected line number in: " << st.status().ToString();
  }
}

TEST(DeltaLogTest, ValidateDeltasCatchesStructuralViolations) {
  // Valid: an edge may reference a node added earlier in the same batch.
  {
    std::vector<GraphDelta> ds = {GraphDelta::AddNode(0),
                                  GraphDelta::AddEdge(3, 12, 0)};
    EXPECT_TRUE(ValidateDeltas(ds, 12, 2, 2).ok());
  }
  struct Case {
    GraphDelta delta;
    const char* expect;
  };
  const Case cases[] = {
      {GraphDelta::AddEdge(0, 1, 9), "relation 9 out of range"},
      {GraphDelta::AddEdge(0, 99, 0), "endpoint out of range"},
      {GraphDelta::AddEdge(7, 7, 0), "self-loop"},
      {GraphDelta::AddNode(9), "node type 9 out of range"},
      {GraphDelta::AddNode(0, 0, /*expected_id=*/5), "expects id 5"},
  };
  for (const Case& c : cases) {
    std::vector<GraphDelta> ds = {c.delta};
    auto st = ValidateDeltas(ds, 12, 2, 2);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find(c.expect), std::string::npos)
        << st.ToString();
  }
}

// -------------------------------------------------------------- edge filter

TEST(DeltaEdgeFilterTest, OutOfRangeRelationIsDroppedAndReported) {
  DeltaEdgeFilter filter(2);
  EXPECT_TRUE(filter.AddEdge(0, 6, 0));
  EXPECT_EQ(filter.num_edges(), 1u);

  // A relation id at or past the filter's relation space cannot be honored.
  // Regression: this used to index past extra_ instead of refusing; now the
  // edge is rejected, counted, and the filter state is left untouched.
  EXPECT_FALSE(filter.AddEdge(0, 7, 2));
  EXPECT_FALSE(filter.AddEdge(1, 8, 99));
  EXPECT_EQ(filter.num_dropped(), 2u);
  EXPECT_EQ(filter.num_edges(), 1u);
  EXPECT_TRUE(filter.Excluded(0, 1).empty());
  EXPECT_TRUE(filter.Excluded(1, 1).empty());

  // The accepted edge is visible from both endpoints.
  ASSERT_EQ(filter.Excluded(0, 0).size(), 1u);
  EXPECT_EQ(filter.Excluded(0, 0)[0], 6u);
  ASSERT_EQ(filter.Excluded(6, 0).size(), 1u);
  EXPECT_EQ(filter.Excluded(6, 0)[0], 0u);
}

TEST(DeltaEdgeFilterTest, CountsEdgesSymmetrically) {
  DeltaEdgeFilter filter(1);
  // A duplicate insert is still a success (the exclusion holds) but must
  // not inflate num_edges.
  EXPECT_TRUE(filter.AddEdge(0, 6, 0));
  EXPECT_TRUE(filter.AddEdge(0, 6, 0));
  EXPECT_EQ(filter.num_edges(), 1u);
  // The reverse direction of an existing edge is the same edge.
  EXPECT_TRUE(filter.AddEdge(6, 0, 0));
  EXPECT_EQ(filter.num_edges(), 1u);
  // A self-loop inserts one adjacency entry yet counts as one edge.
  EXPECT_TRUE(filter.AddEdge(3, 3, 0));
  EXPECT_EQ(filter.num_edges(), 2u);
  ASSERT_EQ(filter.Excluded(3, 0).size(), 1u);
  EXPECT_EQ(filter.Excluded(3, 0)[0], 3u);
  EXPECT_EQ(filter.num_dropped(), 0u);
}

// ------------------------------------------------------------------ overlay

TEST(OverlayTest, MatchesCompactedGraphOnEveryRead) {
  MultiplexHeteroGraph base = MakeBaseGraph();
  DynamicGraphOverlay overlay(&base);
  auto applied = overlay.Apply(SampleDeltas());
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->edges_added, 3u);
  EXPECT_EQ(applied->nodes_added, 1u);
  EXPECT_EQ(applied->duplicates_ignored, 0u);

  auto compacted = overlay.Compact();
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  ASSERT_EQ(overlay.num_nodes(), compacted->num_nodes());
  EXPECT_EQ(overlay.num_edges(), compacted->num_edges());
  EXPECT_EQ(overlay.node_type(12), 1);

  std::vector<RelationId> scratch;
  for (NodeId v = 0; v < overlay.num_nodes(); ++v) {
    EXPECT_EQ(overlay.node_type(v), compacted->node_type(v));
    EXPECT_EQ(overlay.TotalDegree(v), compacted->TotalDegree(v));
    // ActiveRelations agree as sets (both are sorted).
    auto overlay_active = overlay.ActiveRelations(v, scratch);
    auto compact_active = compacted->ActiveRelations(v);
    ASSERT_EQ(overlay_active.size(), compact_active.size()) << "node " << v;
    EXPECT_TRUE(std::equal(overlay_active.begin(), overlay_active.end(),
                           compact_active.begin()));
    for (RelationId r = 0; r < overlay.num_relations(); ++r) {
      ASSERT_EQ(overlay.Degree(v, r), compacted->Degree(v, r))
          << "node " << v << " rel " << r;
      // The two-span view and the CSR agree as multisets (each side
      // sorted; overlay concatenates two sorted runs).
      std::vector<NodeId> from_overlay;
      overlay.Neighbors(v, r).ForEach(
          [&](NodeId u) { from_overlay.push_back(u); });
      std::sort(from_overlay.begin(), from_overlay.end());
      auto from_compact = compacted->Neighbors(v, r);
      EXPECT_TRUE(std::equal(from_overlay.begin(), from_overlay.end(),
                             from_compact.begin(), from_compact.end()));
      for (NodeId u : from_overlay) {
        EXPECT_TRUE(overlay.HasEdge(v, u, r));
      }
    }
  }
  EXPECT_FALSE(overlay.HasEdge(0, 5, 0));
  EXPECT_FALSE(overlay.HasEdge(0, 9, 1));  // added under view, not buy

  // A second overlay anchored on the compacted graph starts clean.
  DynamicGraphOverlay next(&*compacted);
  EXPECT_EQ(next.num_delta_edges(), 0u);
  EXPECT_EQ(next.num_edges(), overlay.num_edges());
}

TEST(OverlayTest, DuplicatesCountedNotApplied) {
  MultiplexHeteroGraph base = MakeBaseGraph();
  DynamicGraphOverlay overlay(&base);
  const std::vector<GraphDelta> batch = {
      GraphDelta::AddEdge(0, 6, 0),   // already in base
      GraphDelta::AddEdge(0, 9, 0),   // fresh
      GraphDelta::AddEdge(9, 0, 0),   // duplicate of the fresh one, flipped
  };
  auto applied = overlay.Apply(batch);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied->edges_added, 1u);
  EXPECT_EQ(applied->duplicates_ignored, 2u);
  EXPECT_EQ(applied->touched, (std::vector<NodeId>{0, 9}));
  EXPECT_EQ(overlay.Degree(0, 0), base.Degree(0, 0) + 1);
}

TEST(OverlayTest, RejectsInvalidBatchAtomically) {
  MultiplexHeteroGraph base = MakeBaseGraph();
  DynamicGraphOverlay overlay(&base);
  const std::vector<GraphDelta> batch = {
      GraphDelta::AddEdge(0, 9, 0),    // valid...
      GraphDelta::AddEdge(0, 99, 0),   // ...but this one is out of range
  };
  EXPECT_FALSE(overlay.Apply(batch).ok());
  // Nothing from the batch landed — validation precedes mutation.
  EXPECT_EQ(overlay.num_delta_edges(), 0u);
  EXPECT_FALSE(overlay.HasEdge(0, 9, 0));
}

// ---------------------------------------------------------------- refresher

std::unique_ptr<LiveEmbeddingStore> MakeLive(const MultiplexHeteroGraph& g,
                                             const EmbeddingStore& store) {
  auto live = LiveEmbeddingStore::Create(store, &g, TopKOptions{});
  EXPECT_TRUE(live.ok()) << live.status().ToString();
  return std::move(live).value();
}

TEST(RefresherTest, DirtyFrontierExpandsByHops) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddNodeType("n").ok());
  ASSERT_TRUE(b.AddRelation("r").ok());
  ASSERT_TRUE(b.AddNodes(0, 6).ok());
  for (NodeId v = 0; v + 1 < 6; ++v) {
    ASSERT_TRUE(b.AddEdge(v, v + 1, 0).ok());  // path 0-1-2-3-4-5
  }
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  DynamicGraphOverlay overlay(&*g);
  EmbeddingStore store = MakeStore(*g, 4, 7);
  auto live = MakeLive(*g, store);
  IncrementalRefresher refresher(&overlay, live.get(), RefreshOptions{});

  const std::vector<NodeId> touched = {2};
  EXPECT_EQ(refresher.DirtyFrontier(touched, 0),
            (std::vector<NodeId>{2}));
  EXPECT_EQ(refresher.DirtyFrontier(touched, 1),
            (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(refresher.DirtyFrontier(touched, 2),
            (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(refresher.DirtyFrontier(touched, 9),
            (std::vector<NodeId>{0, 1, 2, 3, 4, 5}));
}

TEST(RefresherTest, StreamedEdgesScoreHigherAfterRefresh) {
  MultiplexHeteroGraph g = MakeBaseGraph();
  EmbeddingStore store = MakeStore(g, 16, 11);
  DynamicGraphOverlay overlay(&g);
  auto live = MakeLive(g, store);
  RefreshOptions opts;
  opts.sgd_rounds = 6;
  opts.learning_rate = 0.08f;
  IncrementalRefresher refresher(&overlay, live.get(), opts);

  // New interactions inside the main component.
  const std::vector<GraphDelta> batch = {
      GraphDelta::AddEdge(0, 9, 0, 1),
      GraphDelta::AddEdge(1, 7, 0, 2),
      GraphDelta::AddEdge(3, 6, 0, 3),
  };
  auto dot = [&](const EmbeddingStore& s, NodeId a, NodeId b) {
    const float* x = s.Lookup(a, 0);
    const float* y = s.Lookup(b, 0);
    EXPECT_NE(x, nullptr);
    EXPECT_NE(y, nullptr);
    double acc = 0.0;
    for (size_t j = 0; j < s.dim(); ++j) acc += x[j] * y[j];
    return acc;
  };
  // Non-edges (under view) used as shared negatives.
  const NodeId negs[][2] = {{0, 8}, {2, 6}, {3, 7}, {1, 9}};
  auto auc = [&](const EmbeddingStore& s) {
    std::vector<double> pos, neg;
    for (const GraphDelta& d : batch) pos.push_back(dot(s, d.src, d.dst));
    for (const auto& n : negs) neg.push_back(dot(s, n[0], n[1]));
    return RocAuc(pos, neg);
  };

  auto before = live->Acquire();
  const double stale_auc = auc(before->store);
  auto stats = refresher.IngestBatch(batch);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->edges_added, 3u);
  EXPECT_GT(stats->pairs_trained, 0u);
  auto after = live->Acquire();
  ASSERT_NE(before->sequence, after->sequence);
  const double fresh_auc = auc(after->store);
  EXPECT_GT(fresh_auc, stale_auc)
      << "refresh must rank streamed edges above non-edges";
  EXPECT_GT(fresh_auc, 0.95);
}

TEST(RefresherTest, RowsOutsideDirtyRegionKeepTheirBits) {
  MultiplexHeteroGraph g = MakeBaseGraph();
  EmbeddingStore store = MakeStore(g, 8, 13);
  DynamicGraphOverlay overlay(&g);
  auto live = MakeLive(g, store);
  RefreshOptions opts;
  opts.smoothing_alpha = 0.25f;  // smoothing must also respect the region
  opts.num_negatives = 3;        // negatives come from the dirty pool only
  IncrementalRefresher refresher(&overlay, live.get(), opts);

  // Island rows (nodes 4, 5, 10, 11) before a main-component batch.
  const NodeId island[] = {4, 5, 10, 11};
  std::vector<std::vector<float>> saved;
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    for (NodeId v : island) {
      const float* row = live->Row(r, v);
      ASSERT_NE(row, nullptr);
      saved.emplace_back(row, row + live->dim());
    }
  }
  auto stats = refresher.IngestBatch(std::vector<GraphDelta>{
      GraphDelta::AddEdge(0, 9, 0), GraphDelta::AddEdge(1, 7, 1)});
  ASSERT_TRUE(stats.ok());
  size_t idx = 0;
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    for (NodeId v : island) {
      const float* row = live->Row(r, v);
      EXPECT_EQ(std::memcmp(row, saved[idx].data(),
                            live->dim() * sizeof(float)),
                0)
          << "island row (" << v << ", rel " << r << ") changed";
      ++idx;
    }
  }
}

// Regression: num_negatives > 0 with a relation group whose dirty set has
// no rows in that relation's table. Walk pairs between nodes outside the
// dirty set keep the group non-empty while the negative pool is empty, so
// the gather loop must honor the pool-derived negs_per_pair (0), not the
// configured num_negatives — the mismatch used to read past an empty
// negatives vector and memcpy into 0-row tensors.
TEST(RefresherTest, EmptyNegativePoolGroupTrainsWithoutNegatives) {
  MultiplexHeteroGraph g = MakeBaseGraph();
  // Custom store: the "buy" table excludes the streamed endpoints 0 and 9,
  // so the dirty set {0, 9} contributes no buy-relation negatives, while
  // buy walks from those roots still yield trainable pairs between covered
  // nodes (e.g. the (6, 6) pair of an oscillating 0-6 walk).
  std::vector<EmbeddingStore::TableInit> tables;
  Rng rng(23);
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    EmbeddingStore::TableInit t;
    t.name = g.relation_name(r);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (r == 1 && (v == 0 || v == 9)) continue;
      t.row_to_node.push_back(v);
    }
    t.data = Tensor(t.row_to_node.size(), 8);
    for (size_t i = 0; i < t.data.size(); ++i) {
      t.data.data()[i] = rng.UniformFloat(-0.5f, 0.5f);
    }
    tables.push_back(std::move(t));
  }
  auto store =
      EmbeddingStore::FromTables("test", g.num_nodes(), std::move(tables));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  DynamicGraphOverlay overlay(&g);
  auto live = MakeLive(g, *store);
  RefreshOptions opts;
  opts.k_hops = 0;  // dirty set stays exactly {0, 9}
  opts.num_negatives = 3;
  IncrementalRefresher refresher(&overlay, live.get(), opts);

  auto stats = refresher.IngestBatch(
      std::vector<GraphDelta>{GraphDelta::AddEdge(0, 9, 0, 1)});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->pairs_trained, 0u);
}

TEST(RefresherTest, StreamedInNodeBecomesServable) {
  MultiplexHeteroGraph g = MakeBaseGraph();
  EmbeddingStore store = MakeStore(g, 8, 17);
  DynamicGraphOverlay overlay(&g);
  auto live = MakeLive(g, store);
  IncrementalRefresher refresher(&overlay, live.get(), RefreshOptions{});

  auto stats = refresher.IngestBatch(std::vector<GraphDelta>{
      GraphDelta::AddNode(1, 1),           // item node 12
      GraphDelta::AddEdge(0, 12, 0, 2),
      GraphDelta::AddEdge(1, 12, 0, 3),
  });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->nodes_added, 1u);
  auto version = live->Acquire();
  const float* row = version->store.Lookup(12, 0);
  ASSERT_NE(row, nullptr);
  double norm = 0.0;
  for (size_t j = 0; j < version->store.dim(); ++j) norm += row[j] * row[j];
  EXPECT_GT(norm, 0.0) << "new node must be trained, not left at zero";
}

}  // namespace
}  // namespace hybridgnn
