#include <gtest/gtest.h>

#include <cmath>

#include "tensor/autograd.h"
#include "tensor/optimizer.h"

namespace hybridgnn {
namespace {

using ag::Var;

/// Minimizes f(x) = sum((x - target)^2) and checks convergence.
double Rosenish(Optimizer& opt, const Var& x, const Tensor& target,
                int steps) {
  Var tgt = ag::Constant(target);
  double last = 0.0;
  for (int i = 0; i < steps; ++i) {
    Var diff = ag::Sub(x, tgt);
    Var loss = ag::SumAll(ag::Mul(diff, diff));
    ag::Backward(loss);
    opt.Step();
    opt.ZeroGrad();
    last = loss->value.At(0, 0);
  }
  return last;
}

TEST(OptimizerTest, RegistrationDeduplicates) {
  Sgd opt(0.1f);
  Var p = ag::Param(Tensor::Ones(1, 1));
  opt.AddParameter(p);
  opt.AddParameter(p);
  EXPECT_EQ(opt.num_parameters(), 1u);
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  Var x = ag::Param(Tensor::Full(2, 2, 5.0f));
  Tensor target = Tensor::Full(2, 2, 1.0f);
  Sgd opt(0.1f);
  opt.AddParameter(x);
  double final_loss = Rosenish(opt, x, target, 100);
  EXPECT_LT(final_loss, 1e-4);
  EXPECT_NEAR(x->value.At(0, 0), 1.0f, 1e-2);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  Var x = ag::Param(Tensor::Full(2, 2, 5.0f));
  Tensor target = Tensor::Full(2, 2, -2.0f);
  Adam opt(0.3f);
  opt.AddParameter(x);
  double final_loss = Rosenish(opt, x, target, 200);
  EXPECT_LT(final_loss, 1e-3);
  EXPECT_NEAR(x->value.At(1, 1), -2.0f, 5e-2);
}

TEST(OptimizerTest, SgdWeightDecayShrinksWeights) {
  Var x = ag::Param(Tensor::Full(1, 1, 1.0f));
  Sgd opt(0.1f, /*weight_decay=*/0.5f);
  opt.AddParameter(x);
  // Zero-loss objective: only decay acts.
  Var loss = ag::Scale(ag::SumAll(x), 0.0f);
  ag::Backward(loss);
  opt.Step();
  EXPECT_LT(x->value.At(0, 0), 1.0f);
}

TEST(OptimizerTest, StepSkipsParamsWithoutGrad) {
  Var used = ag::Param(Tensor::Ones(1, 1));
  Var unused = ag::Param(Tensor::Ones(1, 1));
  Adam opt(0.1f);
  opt.AddParameters({used, unused});
  Var loss = ag::SumAll(used);
  ag::Backward(loss);
  opt.Step();
  EXPECT_NE(used->value.At(0, 0), 1.0f);
  EXPECT_EQ(unused->value.At(0, 0), 1.0f);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  Var p = ag::Param(Tensor::Ones(1, 1));
  Adam opt(0.1f);
  opt.AddParameter(p);
  Var loss = ag::SumAll(p);
  ag::Backward(loss);
  EXPECT_NE(p->grad.At(0, 0), 0.0f);
  opt.ZeroGrad();
  EXPECT_EQ(p->grad.At(0, 0), 0.0f);
}

TEST(OptimizerTest, AdamIsScaleRobust) {
  // Adam should make progress even with badly scaled gradients.
  Var x = ag::Param(Tensor::Full(1, 2, 10.0f));
  Tensor target(1, 2);
  target.At(0, 0) = 0.0f;
  target.At(0, 1) = 0.0f;
  Adam opt(0.5f);
  opt.AddParameter(x);
  Var tgt = ag::Constant(target);
  for (int i = 0; i < 300; ++i) {
    Var diff = ag::Sub(x, tgt);
    // Badly conditioned: scale one coordinate by 100.
    Tensor scale_t(1, 2);
    scale_t.At(0, 0) = 100.0f;
    scale_t.At(0, 1) = 0.01f;
    Var loss = ag::SumAll(ag::Mul(ag::Mul(diff, diff),
                                  ag::Constant(scale_t)));
    ag::Backward(loss);
    opt.Step();
    opt.ZeroGrad();
  }
  EXPECT_NEAR(x->value.At(0, 0), 0.0f, 0.1f);
  EXPECT_LT(std::abs(x->value.At(0, 1)), 10.0f);
}

}  // namespace
}  // namespace hybridgnn
