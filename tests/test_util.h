#ifndef HYBRIDGNN_TESTS_TEST_UTIL_H_
#define HYBRIDGNN_TESTS_TEST_UTIL_H_

#include "common/logging.h"
#include "graph/graph.h"
#include "graph/metapath.h"

namespace hybridgnn::testing {

/// Small deterministic multiplex heterogeneous graph used across tests:
/// 4 users (0-3), 3 items (4-6), relations "view" and "buy".
///   view: u0-i4, u0-i5, u1-i4, u2-i6, u3-i5
///   buy : u0-i4, u1-i4, u2-i6
/// u0-i4 is a multiplex pair (both view and buy).
inline MultiplexHeteroGraph SmallBipartite() {
  GraphBuilder b;
  NodeTypeId user = b.AddNodeType("user").value();
  NodeTypeId item = b.AddNodeType("item").value();
  RelationId view = b.AddRelation("view").value();
  RelationId buy = b.AddRelation("buy").value();
  HYBRIDGNN_CHECK(b.AddNodes(user, 4).ok());
  HYBRIDGNN_CHECK(b.AddNodes(item, 3).ok());
  HYBRIDGNN_CHECK_OK(b.AddEdge(0, 4, view));
  HYBRIDGNN_CHECK_OK(b.AddEdge(0, 5, view));
  HYBRIDGNN_CHECK_OK(b.AddEdge(1, 4, view));
  HYBRIDGNN_CHECK_OK(b.AddEdge(2, 6, view));
  HYBRIDGNN_CHECK_OK(b.AddEdge(3, 5, view));
  HYBRIDGNN_CHECK_OK(b.AddEdge(0, 4, buy));
  HYBRIDGNN_CHECK_OK(b.AddEdge(1, 4, buy));
  HYBRIDGNN_CHECK_OK(b.AddEdge(2, 6, buy));
  auto g = b.Build();
  HYBRIDGNN_CHECK(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

/// U-I-U scheme under `rel` for SmallBipartite-shaped graphs.
inline MetapathScheme UiuScheme(const MultiplexHeteroGraph& g,
                                RelationId rel) {
  auto s = MetapathScheme::ParseIntra(g, "U-I-U", rel);
  HYBRIDGNN_CHECK(s.ok()) << s.status().ToString();
  return std::move(s).value();
}

}  // namespace hybridgnn::testing

#endif  // HYBRIDGNN_TESTS_TEST_UTIL_H_
