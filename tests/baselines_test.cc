#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gatne.h"
#include "baselines/registry.h"
#include "data/profiles.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace hybridgnn {
namespace {

/// Shared small dataset + split for all baseline smoke tests.
class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto ds = MakeDataset("taobao", 0.08, 21);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new Dataset(std::move(ds).value());
    Rng rng(22);
    // Classic random-negative protocol for the smoke test: every model must
    // comfortably beat chance on it regardless of relation awareness.
    SplitOptions options;
    options.hard_negative_fraction = 0.0;
    auto split = SplitEdges(dataset_->graph, options, rng);
    ASSERT_TRUE(split.ok()) << split.status().ToString();
    split_ = new LinkSplit(std::move(split).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete split_;
    dataset_ = nullptr;
    split_ = nullptr;
  }

  static ModelBudget TinyBudget() {
    ModelBudget b;
    b.effort = 0.25;
    b.num_walks = 2;
    b.walk_length = 5;
    b.window = 2;
    b.max_pairs_per_epoch = 2000;
    return b;
  }

  static Dataset* dataset_;
  static LinkSplit* split_;
};

Dataset* BaselinesTest::dataset_ = nullptr;
LinkSplit* BaselinesTest::split_ = nullptr;

TEST_F(BaselinesTest, RegistryKnowsTenModels) {
  EXPECT_EQ(AllModelNames().size(), 10u);
  EXPECT_FALSE(CreateModel("NotAModel", {}, 1, TinyBudget()).ok());
}

class BaselineModelTest
    : public BaselinesTest,
      public ::testing::WithParamInterface<std::string> {};

TEST_P(BaselineModelTest, FitsAndBeatsRandomGuessing) {
  const std::string name = GetParam();
  auto model = CreateModel(name, dataset_->schemes, 99, TinyBudget());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ((*model)->name(), name);
  ASSERT_TRUE((*model)->Fit(split_->train_graph).ok());

  // Embeddings finite.
  Tensor e = (*model)->Embedding(0, 0);
  EXPECT_EQ(e.rows(), 1u);
  EXPECT_TRUE(std::isfinite(e.Sum()));

  // Even with a tiny budget, every model must beat coin-flip AUC on the
  // community-structured synthetic data under the classic protocol.
  Rng rng(7);
  EvalOptions opts;
  opts.max_ranking_queries = 20;
  LinkPredictionResult r = EvaluateLinkPrediction(
      **model, dataset_->graph, *split_, opts, rng);
  EXPECT_GT(r.roc_auc, 45.0) << name << " ROC-AUC " << r.roc_auc;
  if (name == "HybridGNN") {
    EXPECT_GT(r.roc_auc, 52.0) << "HybridGNN must clearly beat chance";
  }
  EXPECT_TRUE(std::isfinite(r.pr_auc));
  EXPECT_TRUE(std::isfinite(r.f1));
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, BaselineModelTest,
    ::testing::Values("DeepWalk", "node2vec", "LINE", "GCN", "GraphSage",
                      "HAN", "MAGNN", "R-GCN", "GATNE", "HybridGNN"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST_F(BaselinesTest, RgcnScoreIsRelationSpecific) {
  auto model = CreateModel("R-GCN", dataset_->schemes, 5, TinyBudget());
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(split_->train_graph).ok());
  // DistMult diag differs across relations, so at least one pair must get
  // different scores under different relations.
  bool differs = false;
  for (NodeId u = 0; u < 20 && !differs; ++u) {
    const double s0 = (*model)->Score(u, u + 1, 0);
    const double s1 = (*model)->Score(u, u + 1, 1);
    differs = std::abs(s0 - s1) > 1e-9;
  }
  EXPECT_TRUE(differs);
}

TEST_F(BaselinesTest, GatneEmbeddingsAreRelationSpecific) {
  Gatne::Options o;
  o.epochs = 3;
  o.pretrain_base = false;
  o.freeze_pretrained = false;
  o.restore_best = false;
  o.corpus.num_walks_per_node = 2;
  o.corpus.walk_length = 5;
  o.corpus.window = 2;
  o.max_pairs_per_epoch = 2000;
  o.seed = 5;
  auto model = StatusOr<std::unique_ptr<EmbeddingModel>>(
      std::unique_ptr<EmbeddingModel>(new Gatne(o, dataset_->schemes)));
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(split_->train_graph).ok());
  double max_diff = 0.0;
  for (NodeId v = 0; v < 20; ++v) {
    Tensor a = (*model)->Embedding(v, 0);
    Tensor b = (*model)->Embedding(v, 1);
    for (size_t j = 0; j < a.cols(); ++j) {
      max_diff = std::max(max_diff,
                          std::abs(double(a.At(0, j)) - b.At(0, j)));
    }
  }
  EXPECT_GT(max_diff, 1e-6);
}

TEST_F(BaselinesTest, DeepWalkIsRelationBlind) {
  auto model = CreateModel("DeepWalk", dataset_->schemes, 5, TinyBudget());
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(split_->train_graph).ok());
  Tensor a = (*model)->Embedding(3, 0);
  Tensor b = (*model)->Embedding(3, 1);
  for (size_t j = 0; j < a.cols(); ++j) {
    EXPECT_EQ(a.At(0, j), b.At(0, j));
  }
}

TEST_F(BaselinesTest, ModelsFailGracefullyOnDegenerateInput) {
  GraphBuilder b;
  NodeTypeId t = b.AddNodeType("n").value();
  RelationId r = b.AddRelation("r").value();
  ASSERT_TRUE(b.AddNodes(t, 3).ok());
  (void)r;
  auto edgeless = b.Build();
  ASSERT_TRUE(edgeless.ok());
  for (const auto& name : AllModelNames()) {
    auto model = CreateModel(name, {}, 1, TinyBudget());
    ASSERT_TRUE(model.ok());
    EXPECT_FALSE((*model)->Fit(*edgeless).ok()) << name;
  }
}

}  // namespace
}  // namespace hybridgnn
