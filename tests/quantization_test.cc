// Tests for the quantized serving tier: EmbeddingStore::Quantized (fp16 /
// int8), the `.hgc` v2 checkpoint round trip in both load modes, v2
// corruption rejection, the fp32-stays-v1 compatibility guard, and the
// recall@K differential between quantized and exact fp32 retrieval that
// scripts/ci_check.sh gates on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/rng.h"
#include "kernels/f16.h"
#include "serve/checkpoint.h"
#include "serve/topk.h"

namespace hybridgnn {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

/// Random two-relation fp32 store; relation 1 covers only even node ids.
EmbeddingStore MakeRandomStore(size_t num_nodes, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<EmbeddingStore::TableInit> tables;
  for (int which : {0, 1}) {
    EmbeddingStore::TableInit t;
    t.name = which == 0 ? "view" : "buy";
    for (NodeId v = 0; v < num_nodes; ++v) {
      if (which == 1 && v % 2 != 0) continue;
      t.row_to_node.push_back(v);
    }
    t.data = Tensor(t.row_to_node.size(), dim);
    for (size_t i = 0; i < t.data.size(); ++i) {
      t.data.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
    }
    tables.push_back(std::move(t));
  }
  auto store =
      EmbeddingStore::FromTables("random", num_nodes, std::move(tables));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

/// Flips one byte of a file in place.
void CorruptByte(const std::string& path, size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c ^= 0x5A;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

/// Structural + bitwise equality of two quantized stores (payload bytes,
/// affine rows, mappings).
void ExpectQuantizedStoresEqual(const EmbeddingStore& a,
                                const EmbeddingStore& b) {
  ASSERT_EQ(a.dtype(), b.dtype());
  ASSERT_EQ(a.model_name(), b.model_name());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.dim(), b.dim());
  ASSERT_EQ(a.num_relations(), b.num_relations());
  for (RelationId r = 0; r < a.num_relations(); ++r) {
    ASSERT_EQ(a.relation_name(r), b.relation_name(r));
    ASSERT_EQ(a.NumRows(r), b.NumRows(r));
    for (size_t row = 0; row < a.NumRows(r); ++row) {
      ASSERT_EQ(a.RowNode(r, row), b.RowNode(r, row));
    }
    const auto qa = a.RawTable(r);
    const auto qb = b.RawTable(r);
    ASSERT_EQ(qa.size(), qb.size());
    ASSERT_EQ(std::memcmp(qa.data(), qb.data(), qa.size()), 0)
        << "payload mismatch, relation " << r;
    const auto sa = a.RowScales(r);
    const auto sb = b.RowScales(r);
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i) ASSERT_EQ(sa[i], sb[i]);
    const auto za = a.RowZeros(r);
    const auto zb = b.RowZeros(r);
    ASSERT_EQ(za.size(), zb.size());
    for (size_t i = 0; i < za.size(); ++i) ASSERT_EQ(za[i], zb[i]);
  }
}

TEST(QuantizedStoreTest, RejectsBadArguments) {
  EmbeddingStore src = MakeRandomStore(10, 8, 1);
  EXPECT_FALSE(EmbeddingStore::Quantized(src, StoreDType::kF32).ok());
  auto f16 = EmbeddingStore::Quantized(src, StoreDType::kF16);
  ASSERT_TRUE(f16.ok());
  // Re-quantizing an already-quantized store is refused.
  EXPECT_FALSE(EmbeddingStore::Quantized(*f16, StoreDType::kI8).ok());
}

TEST(QuantizedStoreTest, F16PayloadMatchesConverter) {
  EmbeddingStore src = MakeRandomStore(20, 12, 7);
  auto q = EmbeddingStore::Quantized(src, StoreDType::kF16);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->dtype(), StoreDType::kF16);
  EXPECT_TRUE(q->Table(0).empty());       // fp32 view gone
  EXPECT_EQ(q->Lookup(0, 0), nullptr);    // quantized stores have no rows
  for (RelationId r = 0; r < src.num_relations(); ++r) {
    const float* orig = src.Table(r).data();
    const auto raw = q->RawTable(r);
    ASSERT_EQ(raw.size(), src.NumRows(r) * src.dim() * 2);
    const uint16_t* halves = reinterpret_cast<const uint16_t*>(raw.data());
    for (size_t i = 0; i < src.NumRows(r) * src.dim(); ++i) {
      EXPECT_EQ(halves[i], kernels::F32ToF16(orig[i])) << "element " << i;
    }
  }
}

TEST(QuantizedStoreTest, I8DequantErrorIsBoundedByHalfStep) {
  EmbeddingStore src = MakeRandomStore(30, 16, 9);
  auto q = EmbeddingStore::Quantized(src, StoreDType::kI8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->dtype(), StoreDType::kI8);
  std::vector<float> dequant(src.dim());
  for (RelationId r = 0; r < src.num_relations(); ++r) {
    ASSERT_EQ(q->RowScales(r).size(), src.NumRows(r));
    for (size_t row = 0; row < src.NumRows(r); ++row) {
      q->DequantizeRow(r, static_cast<uint32_t>(row), dequant.data());
      const float* orig = src.Table(r).data() + row * src.dim();
      const float scale = q->RowScales(r)[row];
      for (size_t j = 0; j < src.dim(); ++j) {
        // Affine rounding puts every element within half a quantization
        // step (plus float rounding slack).
        EXPECT_NEAR(dequant[j], orig[j], 0.5f * scale + 1e-6f)
            << "relation " << r << " row " << row << " col " << j;
      }
    }
  }
}

TEST(QuantizedStoreTest, I8ConstantRowUsesZeroScale) {
  std::vector<EmbeddingStore::TableInit> tables(1);
  tables[0].name = "r";
  tables[0].row_to_node = {0, 1};
  tables[0].data = Tensor(2, 4);
  for (size_t j = 0; j < 4; ++j) {
    tables[0].data.data()[j] = 0.75f;       // constant row
    tables[0].data.data()[4 + j] = static_cast<float>(j);
  }
  auto src = EmbeddingStore::FromTables("m", 2, std::move(tables));
  ASSERT_TRUE(src.ok());
  auto q = EmbeddingStore::Quantized(*src, StoreDType::kI8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->RowScales(0)[0], 0.0f);
  EXPECT_EQ(q->RowZeros(0)[0], 0.75f);
  std::vector<float> dequant(4);
  q->DequantizeRow(0, 0, dequant.data());
  for (float v : dequant) EXPECT_EQ(v, 0.75f);
}

TEST(CheckpointV2Test, RoundTripBothModesBothDTypes) {
  EmbeddingStore src = MakeRandomStore(40, 24, 11);
  for (StoreDType dtype : {StoreDType::kF16, StoreDType::kI8}) {
    auto q = EmbeddingStore::Quantized(src, dtype);
    ASSERT_TRUE(q.ok());
    const std::string path =
        TempPath(std::string("v2_roundtrip_") + StoreDTypeName(dtype) +
                 ".hgc");
    ASSERT_TRUE(WriteCheckpoint(*q, path).ok());
    // Version byte in the header says v2.
    std::ifstream in(path, std::ios::binary);
    char header[8] = {};
    in.read(header, 8);
    uint16_t version = 0;
    std::memcpy(&version, header + 6, 2);
    EXPECT_EQ(version, kCheckpointVersionQuantized);
    for (LoadMode mode : {LoadMode::kCopy, LoadMode::kMmap}) {
      auto loaded = LoadCheckpoint(path, mode);
      ASSERT_TRUE(loaded.ok())
          << StoreDTypeName(dtype) << ": " << loaded.status().ToString();
      EXPECT_EQ(loaded->mmapped(), mode == LoadMode::kMmap);
      ExpectQuantizedStoresEqual(*q, *loaded);
      // Dequantization (the scoring view) survives the round trip exactly.
      std::vector<float> a(src.dim()), b(src.dim());
      for (RelationId r = 0; r < q->num_relations(); ++r) {
        for (size_t row = 0; row < q->NumRows(r); ++row) {
          q->DequantizeRow(r, static_cast<uint32_t>(row), a.data());
          loaded->DequantizeRow(r, static_cast<uint32_t>(row), b.data());
          for (size_t j = 0; j < src.dim(); ++j) {
            ASSERT_EQ(a[j], b[j]) << "relation " << r << " row " << row;
          }
        }
      }
    }
    fs::remove(path);
  }
}

TEST(CheckpointV2Test, Fp32StoresStillWriteV1) {
  // The compatibility contract: quantization support must not change a
  // single byte of fp32 checkpoints. Two writes of the same store are
  // byte-identical and carry version 1.
  EmbeddingStore src = MakeRandomStore(15, 8, 3);
  const std::string p1 = TempPath("v1_guard_a.hgc");
  const std::string p2 = TempPath("v1_guard_b.hgc");
  ASSERT_TRUE(WriteCheckpoint(src, p1).ok());
  ASSERT_TRUE(WriteCheckpoint(src, p2).ok());
  std::ifstream f1(p1, std::ios::binary), f2(p2, std::ios::binary);
  std::vector<char> b1((std::istreambuf_iterator<char>(f1)),
                       std::istreambuf_iterator<char>());
  std::vector<char> b2((std::istreambuf_iterator<char>(f2)),
                       std::istreambuf_iterator<char>());
  ASSERT_EQ(b1.size(), b2.size());
  EXPECT_EQ(b1, b2);
  uint16_t version = 0;
  std::memcpy(&version, b1.data() + 6, 2);
  EXPECT_EQ(version, kCheckpointVersion);
  auto loaded = LoadCheckpoint(p1, LoadMode::kCopy);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dtype(), StoreDType::kF32);
  fs::remove(p1);
  fs::remove(p2);
}

TEST(CheckpointV2Test, CorruptionIsRejected) {
  EmbeddingStore src = MakeRandomStore(25, 16, 5);
  auto q = EmbeddingStore::Quantized(src, StoreDType::kI8);
  ASSERT_TRUE(q.ok());
  const std::string path = TempPath("v2_corrupt.hgc");
  ASSERT_TRUE(WriteCheckpoint(*q, path).ok());
  const size_t file_size = fs::file_size(path);
  // The dtype byte (first metadata byte), an affine float somewhere in the
  // metadata, and a payload byte near the end: every one must trip the
  // checksum (or a structural check) and refuse the load.
  for (size_t offset :
       {size_t{64}, size_t{200}, file_size - 3}) {
    const std::string copy = TempPath("v2_corrupt_case.hgc");
    fs::copy_file(path, copy, fs::copy_options::overwrite_existing);
    CorruptByte(copy, offset);
    for (LoadMode mode : {LoadMode::kCopy, LoadMode::kMmap}) {
      auto loaded = LoadCheckpoint(copy, mode);
      EXPECT_FALSE(loaded.ok()) << "offset " << offset << " survived";
    }
    fs::remove(copy);
  }
  // Truncation below the declared size.
  const std::string trunc = TempPath("v2_trunc.hgc");
  fs::copy_file(path, trunc, fs::copy_options::overwrite_existing);
  fs::resize_file(trunc, file_size - 8);
  EXPECT_FALSE(LoadCheckpoint(trunc, LoadMode::kCopy).ok());
  fs::remove(trunc);
  fs::remove(path);
}

TEST(CheckpointV2Test, ParseStoreDTypeSpellings) {
  auto fp32 = ParseStoreDType("fp32");
  ASSERT_TRUE(fp32.ok());
  EXPECT_EQ(*fp32, StoreDType::kF32);
  auto fp16 = ParseStoreDType("fp16");
  ASSERT_TRUE(fp16.ok());
  EXPECT_EQ(*fp16, StoreDType::kF16);
  auto i8 = ParseStoreDType("int8");
  ASSERT_TRUE(i8.ok());
  EXPECT_EQ(*i8, StoreDType::kI8);
  EXPECT_FALSE(ParseStoreDType("int4").ok());
  EXPECT_FALSE(ParseStoreDType("").ok());
}

/// recall@k of `got` against the exact top-k `want` (fraction of the exact
/// set the quantized scan recovered).
double RecallAtK(const std::vector<Recommendation>& want,
                 const std::vector<Recommendation>& got) {
  if (want.empty()) return 1.0;
  size_t hit = 0;
  for (const auto& w : want) {
    for (const auto& g : got) {
      if (g.node == w.node) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / want.size();
}

TEST(QuantizedRecallTest, RecallAtTenBeatsTheGate) {
  // The CI gate's contract in unit-test form: int8 retrieval recovers >=
  // 0.95 of the exact fp32 top-10 on a realistic random store; fp16 is
  // near-lossless.
  const size_t num_nodes = 600, dim = 48, k = 10, num_queries = 64;
  EmbeddingStore exact = MakeRandomStore(num_nodes, dim, 13);
  auto f16 = EmbeddingStore::Quantized(exact, StoreDType::kF16);
  auto i8 = EmbeddingStore::Quantized(exact, StoreDType::kI8);
  ASSERT_TRUE(f16.ok());
  ASSERT_TRUE(i8.ok());
  TopKOptions options;
  options.num_threads = 1;
  TopKRecommender ref(&exact, nullptr, options);
  TopKRecommender rec_f16(&*f16, nullptr, options);
  TopKRecommender rec_i8(&*i8, nullptr, options);
  double recall_f16 = 0.0, recall_i8 = 0.0;
  for (size_t qi = 0; qi < num_queries; ++qi) {
    TopKQuery q;
    q.node = static_cast<NodeId>((qi * 37) % num_nodes);
    q.rel = 0;
    q.k = k;
    auto want = ref.Recommend(q);
    auto got16 = rec_f16.Recommend(q);
    auto got8 = rec_i8.Recommend(q);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got16.ok());
    ASSERT_TRUE(got8.ok());
    recall_f16 += RecallAtK(*want, *got16);
    recall_i8 += RecallAtK(*want, *got8);
  }
  recall_f16 /= num_queries;
  recall_i8 /= num_queries;
  EXPECT_GE(recall_f16, 0.99) << "fp16 should be near-lossless";
  EXPECT_GE(recall_i8, 0.95) << "int8 recall@10 below the serving gate";
}

TEST(QuantizedRecallTest, CosineModeWorksOnQuantizedStores) {
  // Norms are computed through DequantizeRow; the cosine ranking must stay
  // close to the fp32 one (and must not crash on the null Table view).
  const size_t num_nodes = 200, dim = 32, k = 10;
  EmbeddingStore exact = MakeRandomStore(num_nodes, dim, 21);
  auto i8 = EmbeddingStore::Quantized(exact, StoreDType::kI8);
  ASSERT_TRUE(i8.ok());
  TopKOptions options;
  options.num_threads = 1;
  options.cosine = true;
  TopKRecommender ref(&exact, nullptr, options);
  TopKRecommender rec(&*i8, nullptr, options);
  double recall = 0.0;
  const size_t num_queries = 32;
  for (size_t qi = 0; qi < num_queries; ++qi) {
    TopKQuery q;
    q.node = static_cast<NodeId>(qi * 5 % num_nodes);
    q.rel = 0;
    q.k = k;
    auto want = ref.Recommend(q);
    auto got = rec.Recommend(q);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    recall += RecallAtK(*want, *got);
  }
  EXPECT_GE(recall / num_queries, 0.9);
}

}  // namespace
}  // namespace hybridgnn
