#ifndef HYBRIDGNN_DATA_SYNTHETIC_H_
#define HYBRIDGNN_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "graph/graph.h"

namespace hybridgnn {

/// Declarative recipe for one block of edges: `count` edges of relation
/// `relation` between nodes of `src_type` and `dst_type`. A relation may
/// appear in several blocks (e.g. Kuaishou's `click` touches both user-video
/// and user-author pairs).
struct EdgeBlockSpec {
  std::string relation;
  std::string src_type;
  std::string dst_type;
  size_t count = 0;
  /// Fraction of edges drawn uniformly at random instead of from the planted
  /// community structure (label noise; makes metrics realistic, not 1.0).
  double noise = 0.1;
};

/// Configuration of the latent-community multiplex generator.
///
/// Every node gets a community in [0, num_communities) and a power-law
/// activity weight. Each relation r derives its community-affinity matrix
/// M_r from a shared base affinity: with probability
/// `inter_relation_correlation` a planted edge follows the *shared* block
/// structure, otherwise a relation-private one. High correlation is what
/// makes inter-relationship information genuinely predictive — the property
/// HybridGNN exploits — so this knob directly controls the paper's
/// "uplift from inter-relationship" effect.
struct SyntheticConfig {
  std::string name = "synthetic";
  std::vector<std::pair<std::string, size_t>> node_types;  // (name, count)
  std::vector<EdgeBlockSpec> blocks;
  size_t num_communities = 8;
  double inter_relation_correlation = 0.8;
  /// Power-law exponent of node activity (larger = flatter hubs).
  double degree_alpha = 2.0;
  /// Probability mass an in-community pair gets relative to out-of-community.
  double community_strength = 12.0;
  uint64_t seed = 42;
};

/// Generates a multiplex heterogeneous graph from `config`. Deterministic
/// given config.seed. Duplicate (src,dst,rel) draws are retried a bounded
/// number of times, so realized edge counts can fall slightly below spec.
StatusOr<MultiplexHeteroGraph> GenerateSynthetic(const SyntheticConfig& config);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_DATA_SYNTHETIC_H_
