#ifndef HYBRIDGNN_DATA_PROFILES_H_
#define HYBRIDGNN_DATA_PROFILES_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "data/synthetic.h"
#include "graph/graph.h"
#include "graph/metapath.h"

namespace hybridgnn {

/// One ready-to-train dataset: the graph plus the paper's predefined
/// intra-relationship metapath schemes for it (Table II's P column).
struct Dataset {
  std::string name;
  MultiplexHeteroGraph graph;
  std::vector<MetapathScheme> schemes;
};

/// Names of the five dataset profiles mirroring the paper's Table II:
/// "amazon", "youtube", "imdb", "taobao", "kuaishou".
std::vector<std::string> DatasetProfileNames();

/// Builds the synthetic stand-in for a paper dataset. `scale` multiplies
/// node and edge counts (1.0 = the repo's default laptop-friendly size,
/// roughly 1/10 of the paper's; the schema — |O|, |R|, metapaths — always
/// matches Table II exactly). Deterministic in `seed`.
StatusOr<Dataset> MakeDataset(const std::string& profile, double scale,
                              uint64_t seed);

/// The SyntheticConfig a profile expands to (exposed for tests and for the
/// Table II stats bench).
StatusOr<SyntheticConfig> ProfileConfig(const std::string& profile,
                                        double scale, uint64_t seed);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_DATA_PROFILES_H_
