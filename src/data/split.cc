#include "data/split.h"

#include <algorithm>

#include "common/string_util.h"

namespace hybridgnn {

namespace {

/// Draws a negative (src, x, rel): x has dst's node type and no (src,x,rel)
/// edge in the full graph. With probability `hard_fraction` the draw first
/// tries a cross-relation neighbor of src (hard negative); otherwise, or on
/// failure, x is uniform over the destination type.
StatusOr<EdgeTriple> SampleNegative(const MultiplexHeteroGraph& g,
                                    const EdgeTriple& pos, double hard_fraction,
                                    Rng& rng) {
  if (rng.Bernoulli(hard_fraction)) {
    // Collect src's neighbors under other relations that are NOT neighbors
    // under pos.rel and share dst's node type.
    std::vector<NodeId> hard;
    for (RelationId r = 0; r < g.num_relations(); ++r) {
      if (r == pos.rel) continue;
      for (NodeId u : g.Neighbors(pos.src, r)) {
        if (g.node_type(u) != g.node_type(pos.dst)) continue;
        if (u == pos.dst || g.HasEdge(pos.src, u, pos.rel)) continue;
        hard.push_back(u);
      }
    }
    if (!hard.empty()) {
      NodeId x = hard[rng.UniformUint64(hard.size())];
      NodeId a = pos.src, b = x;
      if (a > b) std::swap(a, b);
      return EdgeTriple{a, b, pos.rel};
    }
  }
  const auto& candidates = g.NodesOfType(g.node_type(pos.dst));
  for (int attempt = 0; attempt < 64; ++attempt) {
    NodeId x = candidates[rng.UniformUint64(candidates.size())];
    if (x == pos.src || x == pos.dst) continue;
    if (g.HasEdge(pos.src, x, pos.rel)) continue;
    NodeId a = pos.src, b = x;
    if (a > b) std::swap(a, b);
    return EdgeTriple{a, b, pos.rel};
  }
  return Status::Internal(
      StrFormat("cannot find negative for edge %u-%u rel %u (graph too "
                "dense?)",
                pos.src, pos.dst, static_cast<unsigned>(pos.rel)));
}

}  // namespace

StatusOr<LinkSplit> SplitEdges(const MultiplexHeteroGraph& g,
                               const SplitOptions& options, Rng& rng) {
  if (options.val_fraction < 0 || options.test_fraction < 0 ||
      options.val_fraction + options.test_fraction >= 1.0) {
    return Status::InvalidArgument("bad split fractions");
  }
  LinkSplit split;
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    std::vector<EdgeTriple> edges = g.EdgesOfRelation(r);
    if (edges.size() < 10) {
      return Status::FailedPrecondition(
          StrFormat("relation %s has only %zu edges",
                    g.relation_name(r).c_str(), edges.size()));
    }
    rng.Shuffle(edges);
    const size_t n = edges.size();
    const size_t n_test = std::max<size_t>(
        1, static_cast<size_t>(options.test_fraction * n));
    const size_t n_val = std::max<size_t>(
        1, static_cast<size_t>(options.val_fraction * n));
    for (size_t i = 0; i < n; ++i) {
      if (i < n_test) {
        split.test_pos.push_back(edges[i]);
      } else if (i < n_test + n_val) {
        split.val_pos.push_back(edges[i]);
      } else {
        split.train_edges.push_back(edges[i]);
      }
    }
  }
  // Pair each held-out positive with a negative; positives whose source is
  // saturated (connected to every candidate — possible for hubs in dense
  // graphs) are dropped from the evaluation set rather than failing.
  auto pair_negatives = [&](std::vector<EdgeTriple>& pos,
                            std::vector<EdgeTriple>& neg) {
    std::vector<EdgeTriple> kept;
    kept.reserve(pos.size());
    for (const auto& e : pos) {
      auto drawn = SampleNegative(g, e, options.hard_negative_fraction, rng);
      if (!drawn.ok()) {
        // Saturated source: not evaluable, return the edge to training.
        split.train_edges.push_back(e);
        continue;
      }
      kept.push_back(e);
      neg.push_back(std::move(drawn).value());
    }
    pos = std::move(kept);
  };
  pair_negatives(split.test_pos, split.test_neg);
  pair_negatives(split.val_pos, split.val_neg);
  if (split.test_pos.empty() || split.val_pos.empty()) {
    return Status::FailedPrecondition(
        "graph too dense: no evaluable held-out edges");
  }

  // Training graph keeps the full node set but only training edges.
  GraphBuilder builder;
  for (NodeTypeId t = 0; t < g.num_node_types(); ++t) {
    HYBRIDGNN_ASSIGN_OR_RETURN(NodeTypeId unused,
                               builder.AddNodeType(g.node_type_name(t)));
    (void)unused;
  }
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    HYBRIDGNN_ASSIGN_OR_RETURN(RelationId unused,
                               builder.AddRelation(g.relation_name(r)));
    (void)unused;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    HYBRIDGNN_ASSIGN_OR_RETURN(NodeId unused, builder.AddNode(g.node_type(v)));
    (void)unused;
  }
  for (const auto& e : split.train_edges) {
    HYBRIDGNN_RETURN_IF_ERROR(builder.AddEdge(e.src, e.dst, e.rel));
  }
  HYBRIDGNN_ASSIGN_OR_RETURN(split.train_graph, builder.Build());
  return split;
}

}  // namespace hybridgnn
