#include "data/profiles.h"

#include <cmath>

#include "common/string_util.h"

namespace hybridgnn {

namespace {

size_t Scaled(size_t base, double scale) {
  return std::max<size_t>(4, static_cast<size_t>(std::llround(
                                 static_cast<double>(base) * scale)));
}

/// Attaches ParseIntra-built schemes to the dataset; `patterns` maps
/// relation name -> list of "A-B-A" type patterns.
Status AttachSchemes(
    Dataset& ds,
    const std::vector<std::pair<std::string, std::string>>& patterns) {
  for (const auto& [rel_name, pattern] : patterns) {
    RelationId r = ds.graph.FindRelation(rel_name);
    if (r == kInvalidRelation) {
      return Status::Internal("profile scheme references unknown relation " +
                              rel_name);
    }
    HYBRIDGNN_ASSIGN_OR_RETURN(
        MetapathScheme s, MetapathScheme::ParseIntra(ds.graph, pattern, r));
    ds.schemes.push_back(std::move(s));
  }
  return Status::OK();
}

}  // namespace

std::vector<std::string> DatasetProfileNames() {
  return {"amazon", "youtube", "imdb", "taobao", "kuaishou"};
}

StatusOr<SyntheticConfig> ProfileConfig(const std::string& profile,
                                        double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = profile;
  c.seed = seed;
  if (profile == "amazon") {
    // Paper: 10,099 product nodes, 148,659 edges, |O|=1, |R|=2.
    c.node_types = {{"item", Scaled(1000, scale)}};
    c.blocks = {
        {"common_bought", "item", "item", Scaled(7000, scale), 0.03},
        {"common_viewed", "item", "item", Scaled(7500, scale), 0.03},
    };
    c.num_communities = 10;
    c.inter_relation_correlation = 0.6;
    c.community_strength = 100.0;
  } else if (profile == "youtube") {
    // Paper: 2,000 user nodes, 1,310,544 edges across 5 relations.
    c.node_types = {{"user", Scaled(400, scale)}};
    c.blocks = {
        {"contact", "user", "user", Scaled(2500, scale), 0.07},
        {"shared_friends", "user", "user", Scaled(5000, scale), 0.06},
        {"shared_subscription", "user", "user", Scaled(4200, scale), 0.06},
        {"shared_subscriber", "user", "user", Scaled(4200, scale), 0.06},
        {"shared_videos", "user", "user", Scaled(3300, scale), 0.06},
    };
    c.num_communities = 8;
    c.inter_relation_correlation = 0.6;
    c.community_strength = 100.0;
  } else if (profile == "imdb") {
    // Paper: 11,616 nodes (movie/director/actor), 34,212 edges, |R|=1.
    c.node_types = {{"movie", Scaled(450, scale)},
                    {"director", Scaled(120, scale)},
                    {"actor", Scaled(550, scale)}};
    c.blocks = {
        {"linked", "movie", "director", Scaled(1300, scale), 0.03},
        {"linked", "movie", "actor", Scaled(2300, scale), 0.03},
    };
    c.num_communities = 9;
    c.inter_relation_correlation = 0.8;
    c.community_strength = 100.0;
  } else if (profile == "taobao") {
    // Paper: 64,737 nodes, 144,511 edges, user/item under 4 behaviors.
    c.node_types = {{"user", Scaled(2000, scale)},
                    {"item", Scaled(800, scale)}};
    c.blocks = {
        {"page_view", "user", "item", Scaled(5200, scale), 0.06},
        {"add_to_cart", "user", "item", Scaled(1500, scale), 0.04},
        {"purchase", "user", "item", Scaled(1900, scale), 0.04},
        {"item_favoring", "user", "item", Scaled(1200, scale), 0.03},
    };
    c.num_communities = 10;
    c.inter_relation_correlation = 0.6;
    c.community_strength = 100.0;
  } else if (profile == "kuaishou") {
    // Paper: 105,749 nodes, 175,870 edges; user/video/author under
    // click/like/comment/download.
    c.node_types = {{"user", Scaled(2000, scale)},
                    {"video", Scaled(1000, scale)},
                    {"author", Scaled(300, scale)}};
    c.blocks = {
        {"click", "user", "video", Scaled(4200, scale), 0.06},
        {"click", "user", "author", Scaled(1400, scale), 0.06},
        {"like", "user", "video", Scaled(2100, scale), 0.03},
        {"like", "user", "author", Scaled(800, scale), 0.03},
        {"comment", "user", "video", Scaled(1000, scale), 0.04},
        {"download", "user", "video", Scaled(800, scale), 0.04},
    };
    c.num_communities = 10;
    c.inter_relation_correlation = 0.6;
    c.community_strength = 100.0;
  } else {
    return Status::NotFound("unknown dataset profile: " + profile);
  }
  return c;
}

StatusOr<Dataset> MakeDataset(const std::string& profile, double scale,
                              uint64_t seed) {
  HYBRIDGNN_ASSIGN_OR_RETURN(SyntheticConfig config,
                             ProfileConfig(profile, scale, seed));
  Dataset ds;
  ds.name = profile;
  HYBRIDGNN_ASSIGN_OR_RETURN(ds.graph, GenerateSynthetic(config));

  // Predefined metapath schemes (Table II's P column), one per relation.
  std::vector<std::pair<std::string, std::string>> patterns;
  if (profile == "amazon") {
    patterns = {{"common_bought", "I-I-I"}, {"common_viewed", "I-I-I"}};
  } else if (profile == "youtube") {
    for (RelationId r = 0; r < ds.graph.num_relations(); ++r) {
      patterns.emplace_back(ds.graph.relation_name(r), "U-U-U");
    }
  } else if (profile == "imdb") {
    patterns = {{"linked", "M-D-M"},       {"linked", "M-A-M"},
                {"linked", "D-M-D"},       {"linked", "A-M-A"},
                {"linked", "D-M-A-M-D"},   {"linked", "A-M-D-M-A"}};
  } else if (profile == "taobao") {
    for (RelationId r = 0; r < ds.graph.num_relations(); ++r) {
      patterns.emplace_back(ds.graph.relation_name(r), "U-I-U");
      patterns.emplace_back(ds.graph.relation_name(r), "I-U-I");
    }
  } else if (profile == "kuaishou") {
    // U-A-U / A-U-A only where the relation touches authors.
    for (const std::string rel : {"click", "like"}) {
      patterns.emplace_back(rel, "U-A-U");
      patterns.emplace_back(rel, "A-U-A");
      patterns.emplace_back(rel, "U-V-U");
      patterns.emplace_back(rel, "V-U-V");
    }
    for (const std::string rel : {"comment", "download"}) {
      patterns.emplace_back(rel, "U-V-U");
      patterns.emplace_back(rel, "V-U-V");
    }
  }
  HYBRIDGNN_RETURN_IF_ERROR(AttachSchemes(ds, patterns));
  return ds;
}

}  // namespace hybridgnn
