#include "data/synthetic.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "sampling/alias.h"

namespace hybridgnn {

namespace {

/// Per-type, per-community alias samplers weighted by node activity.
class CommunityIndex {
 public:
  CommunityIndex(const std::vector<std::vector<NodeId>>& nodes_by_type,
                 const std::vector<size_t>& community,
                 const std::vector<double>& activity, size_t num_communities)
      : buckets_(nodes_by_type.size(),
                 std::vector<std::vector<NodeId>>(num_communities)) {
    for (size_t t = 0; t < nodes_by_type.size(); ++t) {
      for (NodeId v : nodes_by_type[t]) {
        buckets_[t][community[v]].push_back(v);
      }
      tables_.emplace_back();
      for (size_t c = 0; c < num_communities; ++c) {
        const auto& bucket = buckets_[t][c];
        if (bucket.empty()) {
          tables_[t].emplace_back();
          continue;
        }
        std::vector<double> w(bucket.size());
        for (size_t i = 0; i < bucket.size(); ++i) w[i] = activity[bucket[i]];
        tables_[t].emplace_back(w);
      }
    }
  }

  /// Samples a node of type t in community c (kInvalidNode if empty).
  NodeId Sample(size_t t, size_t c, Rng& rng) const {
    const auto& bucket = buckets_[t][c];
    if (bucket.empty()) return kInvalidNode;
    return bucket[tables_[t][c].Sample(rng)];
  }

 private:
  std::vector<std::vector<std::vector<NodeId>>> buckets_;
  std::vector<std::vector<AliasTable>> tables_;
};

}  // namespace

StatusOr<MultiplexHeteroGraph> GenerateSynthetic(
    const SyntheticConfig& config) {
  if (config.node_types.empty()) {
    return Status::InvalidArgument("synthetic config needs node types");
  }
  if (config.blocks.empty()) {
    return Status::InvalidArgument("synthetic config needs edge blocks");
  }
  Rng rng(config.seed);
  GraphBuilder builder;

  std::unordered_map<std::string, NodeTypeId> type_ids;
  std::vector<std::vector<NodeId>> nodes_by_type;
  for (const auto& [name, count] : config.node_types) {
    HYBRIDGNN_ASSIGN_OR_RETURN(NodeTypeId t, builder.AddNodeType(name));
    type_ids[name] = t;
    if (count == 0) {
      return Status::InvalidArgument("node type with zero count: " + name);
    }
    HYBRIDGNN_ASSIGN_OR_RETURN(NodeId first, builder.AddNodes(t, count));
    std::vector<NodeId> ids(count);
    for (size_t i = 0; i < count; ++i) ids[i] = first + static_cast<NodeId>(i);
    nodes_by_type.push_back(std::move(ids));
  }

  std::unordered_map<std::string, RelationId> rel_ids;
  for (const auto& block : config.blocks) {
    if (rel_ids.count(block.relation)) continue;
    HYBRIDGNN_ASSIGN_OR_RETURN(RelationId r,
                               builder.AddRelation(block.relation));
    rel_ids[block.relation] = r;
  }

  const size_t total_nodes = builder.num_nodes();
  const size_t num_comm = std::max<size_t>(1, config.num_communities);

  // Latent structure: community + activity per node.
  std::vector<size_t> community(total_nodes);
  std::vector<double> activity(total_nodes);
  for (size_t v = 0; v < total_nodes; ++v) {
    community[v] = static_cast<size_t>(rng.UniformUint64(num_comm));
    activity[v] = static_cast<double>(rng.PowerLaw(config.degree_alpha, 64));
  }
  CommunityIndex index(nodes_by_type, community, activity, num_comm);

  // Shared community mapping (what all relations agree on) plus one private
  // permutation per relation (what each relation does idiosyncratically).
  std::vector<size_t> shared_map(num_comm);
  for (size_t c = 0; c < num_comm; ++c) shared_map[c] = c;
  std::unordered_map<std::string, std::vector<size_t>> private_maps;
  for (const auto& [name, rel] : rel_ids) {
    std::vector<size_t> perm(num_comm);
    for (size_t c = 0; c < num_comm; ++c) perm[c] = c;
    rng.Shuffle(perm);
    private_maps[name] = std::move(perm);
  }

  const double p_in =
      config.community_strength / (config.community_strength + num_comm - 1);

  for (const auto& block : config.blocks) {
    auto st = type_ids.find(block.src_type);
    auto dt = type_ids.find(block.dst_type);
    if (st == type_ids.end() || dt == type_ids.end()) {
      return Status::InvalidArgument("block references unknown node type in " +
                                     block.relation);
    }
    const RelationId rel = rel_ids[block.relation];
    const auto& private_map = private_maps[block.relation];
    const auto& src_nodes = nodes_by_type[st->second];

    std::vector<double> src_weights(src_nodes.size());
    for (size_t i = 0; i < src_nodes.size(); ++i) {
      src_weights[i] = activity[src_nodes[i]];
    }
    AliasTable src_table(src_weights);

    std::unordered_set<uint64_t> seen;
    size_t made = 0;
    size_t attempts = 0;
    const size_t max_attempts = block.count * 20 + 100;
    while (made < block.count && attempts < max_attempts) {
      ++attempts;
      const NodeId src = src_nodes[src_table.Sample(rng)];
      NodeId dst;
      if (rng.Bernoulli(block.noise)) {
        // Pure noise edge: uniform destination.
        const auto& dst_nodes = nodes_by_type[dt->second];
        dst = dst_nodes[rng.UniformUint64(dst_nodes.size())];
      } else {
        // Planted edge: pick destination community from the source's
        // community through the shared or the relation-private map.
        const bool use_shared =
            rng.Bernoulli(config.inter_relation_correlation);
        const size_t mapped = use_shared ? shared_map[community[src]]
                                         : private_map[community[src]];
        const size_t dst_comm =
            rng.Bernoulli(p_in)
                ? mapped
                : static_cast<size_t>(rng.UniformUint64(num_comm));
        dst = index.Sample(dt->second, dst_comm, rng);
        if (dst == kInvalidNode) continue;
      }
      if (dst == src) continue;
      NodeId a = src, b = dst;
      if (a > b) std::swap(a, b);
      const uint64_t key =
          (static_cast<uint64_t>(a) << 32) | b;
      // Dedup within this relation only (parallel edges across relations are
      // the point of multiplexity).
      const uint64_t rel_key = key ^ (static_cast<uint64_t>(rel) << 60);
      if (!seen.insert(rel_key).second) continue;
      HYBRIDGNN_RETURN_IF_ERROR(builder.AddEdge(src, dst, rel));
      ++made;
    }
    if (made < block.count / 2) {
      return Status::Internal(StrFormat(
          "generator starved: %zu/%zu edges for relation %s", made,
          block.count, block.relation.c_str()));
    }
  }
  return builder.Build();
}

}  // namespace hybridgnn
