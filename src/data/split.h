#ifndef HYBRIDGNN_DATA_SPLIT_H_
#define HYBRIDGNN_DATA_SPLIT_H_

#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "graph/graph.h"

namespace hybridgnn {

/// Link-prediction split following the paper's protocol: 85% of edges train,
/// 5% validation, 10% test (per relation, so every relation is represented
/// in every partition). For each held-out positive edge one negative is
/// sampled: same source node, replacement destination of the same node type
/// that is NOT connected to the source under that relation in the full graph.
struct LinkSplit {
  MultiplexHeteroGraph train_graph;  // only the training edges
  std::vector<EdgeTriple> train_edges;
  std::vector<EdgeTriple> val_pos;
  std::vector<EdgeTriple> val_neg;
  std::vector<EdgeTriple> test_pos;
  std::vector<EdgeTriple> test_neg;
};

struct SplitOptions {
  double val_fraction = 0.05;
  double test_fraction = 0.10;
  /// Fraction of negatives drawn as *hard cross-relation negatives*: nodes
  /// connected to the source under a different relation but not under the
  /// positive's relation (e.g. "viewed but never purchased"). This is the
  /// relationship-specific recommendation task the paper targets — telling
  /// apart *which* relation will form, not merely whether the pair is
  /// plausible. The remainder are uniform type-matched non-neighbors.
  double hard_negative_fraction = 0.5;
};

/// Splits `g` deterministically given `rng`'s seed. Fails if any relation
/// has fewer than 10 edges (cannot populate all partitions).
StatusOr<LinkSplit> SplitEdges(const MultiplexHeteroGraph& g,
                               const SplitOptions& options, Rng& rng);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_DATA_SPLIT_H_
