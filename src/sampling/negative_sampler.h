#ifndef HYBRIDGNN_SAMPLING_NEGATIVE_SAMPLER_H_
#define HYBRIDGNN_SAMPLING_NEGATIVE_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "sampling/alias.h"

namespace hybridgnn {

/// Heterogeneous negative sampler (metapath2vec style): draws noise nodes
/// from the unigram distribution raised to `power` (0.75 by default),
/// restricted to a given node type so negatives are type-compatible with the
/// positive context node.
class NegativeSampler {
 public:
  /// Builds per-type alias tables from total degrees in `g`. Nodes with zero
  /// degree get weight `smoothing` so every node remains sampleable.
  NegativeSampler(const MultiplexHeteroGraph& g, double power = 0.75,
                  double smoothing = 1e-3);

  /// Samples one node of type `t`.
  NodeId SampleOfType(NodeTypeId t, Rng& rng) const;

  /// Samples one node of the same type as `like`, excluding `like` itself
  /// (retries a few times, then accepts a collision on tiny type sets).
  NodeId SampleLike(NodeId like, Rng& rng) const;

  /// Samples any node from the global distribution.
  NodeId SampleAny(Rng& rng) const;

  /// Relationship-aware negative: with probability `cross_fraction`,
  /// tries to return a *cross-relation* neighbor of `center` — a node of
  /// `like`'s type linked to `center` under some relation other than `rel`
  /// but not under `rel` itself. Falls back to SampleLike(like). This
  /// instantiates the paper's noise distribution P_Neg (Eq. 13) for the
  /// relationship-specific recommendation task: the model must learn not
  /// just who interacts, but under *which* relationship.
  NodeId SampleRelationAware(NodeId center, NodeId like, RelationId rel,
                             double cross_fraction, Rng& rng) const;

 private:
  const MultiplexHeteroGraph* graph_;
  std::vector<AliasTable> per_type_;
  AliasTable global_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SAMPLING_NEGATIVE_SAMPLER_H_
