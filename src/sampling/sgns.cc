#include "sampling/sgns.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "tensor/init.h"

namespace hybridgnn {

SgnsEmbedder::SgnsEmbedder(size_t num_nodes, size_t dim, Rng& rng)
    : emb_(num_nodes, dim), ctx_(num_nodes, dim) {
  EmbeddingInit(emb_, rng);
  // Context vectors start at zero, as in word2vec.
}

// Hogwild workers race on emb_/ctx_ rows by design; uninstrumented under
// TSan so the benign races don't drown out real findings elsewhere. The
// row-level arithmetic lives in the kernel layer (runtime scalar/AVX2
// dispatch); its implementations on this path carry the same annotation.
HYBRIDGNN_NO_SANITIZE_THREAD
void SgnsEmbedder::Update(NodeId center, NodeId context,
                          const NegativeSampler& sampler, size_t negatives,
                          float lr, Rng& rng) {
  const size_t dim = emb_.cols();
  float* e = emb_.RowPtr(center);
  // Per-thread scratch: Update runs once per skip-gram pair, so a fresh
  // vector here used to dominate the pretrain allocation profile.
  static thread_local std::vector<float> e_grad;
  e_grad.assign(dim, 0.0f);
  kernels::SgnsUpdateStep(e, ctx_.RowPtr(context), e_grad.data(), dim, 1.0f,
                          lr);
  for (size_t n = 0; n < negatives; ++n) {
    kernels::SgnsUpdateStep(e, ctx_.RowPtr(sampler.SampleLike(context, rng)),
                            e_grad.data(), dim, 0.0f, lr);
  }
  kernels::Axpy(-1.0f, e_grad.data(), e, dim);
}

void SgnsEmbedder::Train(const std::vector<SkipGramPair>& pairs,
                         const NegativeSampler& sampler,
                         const SgnsOptions& opts, Rng& rng) {
  // Every SGNS-style trainer (HybridGNN pretrain, DeepWalk, node2vec, ...)
  // funnels through here, so one stage timer covers the skip-gram hot loop.
  static obs::LatencyHistogram& epoch_stage = obs::Stage("core/sgns_epoch");
  static obs::Counter& pairs_trained =
      obs::GlobalRegistry().GetCounter("core/sgns_pairs_trained");
  std::vector<size_t> order(pairs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const size_t threads = ResolveNumThreads(opts.num_threads);
  for (size_t epoch = 0; epoch < opts.epochs; ++epoch) {
    obs::ScopedTimer epoch_timer(epoch_stage);
    rng.Shuffle(order);
    const size_t use = opts.max_pairs_per_epoch == 0
                           ? order.size()
                           : std::min(order.size(),
                                      opts.max_pairs_per_epoch);
    pairs_trained.Add(use);
    if (threads <= 1 || use < 2 * threads) {
      for (size_t i = 0; i < use; ++i) {
        const auto& p = pairs[order[i]];
        // Linear learning-rate decay within the epoch, word2vec style.
        const float lr = opts.learning_rate *
                         (1.0f - 0.9f * static_cast<float>(i) /
                                     static_cast<float>(use));
        Update(p.center, p.context, sampler, opts.negatives, lr, rng);
      }
      continue;
    }
    // Hogwild: shard the shuffled order contiguously across workers. Each
    // worker draws negatives from its own forked stream; the lr schedule
    // keys off the global index so it matches the serial decay profile.
    RunParallel(threads, threads, [&](size_t w) {
      Rng wrng = rng.Fork(w + 1);
      const size_t lo = use * w / threads;
      const size_t hi = use * (w + 1) / threads;
      for (size_t i = lo; i < hi; ++i) {
        const auto& p = pairs[order[i]];
        const float lr = opts.learning_rate *
                         (1.0f - 0.9f * static_cast<float>(i) /
                                     static_cast<float>(use));
        Update(p.center, p.context, sampler, opts.negatives, lr, wrng);
      }
    });
    // Keep the parent stream moving so successive epochs (and the caller)
    // don't see identical fork seeds.
    rng.NextUint64();
  }
}

}  // namespace hybridgnn
