#include "sampling/sgns.h"

#include <algorithm>
#include <cmath>

#include "tensor/init.h"

namespace hybridgnn {

SgnsEmbedder::SgnsEmbedder(size_t num_nodes, size_t dim, Rng& rng)
    : emb_(num_nodes, dim), ctx_(num_nodes, dim) {
  EmbeddingInit(emb_, rng);
  // Context vectors start at zero, as in word2vec.
}

void SgnsEmbedder::Update(NodeId center, NodeId context,
                          const NegativeSampler& sampler, size_t negatives,
                          float lr, Rng& rng) {
  const size_t dim = emb_.cols();
  float* e = emb_.RowPtr(center);
  std::vector<float> e_grad(dim, 0.0f);
  auto push = [&](NodeId target, float label) {
    float* c = ctx_.RowPtr(target);
    float dot = 0.0f;
    for (size_t j = 0; j < dim; ++j) dot += e[j] * c[j];
    const float sig = 1.0f / (1.0f + std::exp(-dot));
    const float g = (sig - label) * lr;
    for (size_t j = 0; j < dim; ++j) {
      e_grad[j] += g * c[j];
      c[j] -= g * e[j];
    }
  };
  push(context, 1.0f);
  for (size_t n = 0; n < negatives; ++n) {
    push(sampler.SampleLike(context, rng), 0.0f);
  }
  for (size_t j = 0; j < dim; ++j) e[j] -= e_grad[j];
}

void SgnsEmbedder::Train(const std::vector<SkipGramPair>& pairs,
                         const NegativeSampler& sampler,
                         const SgnsOptions& opts, Rng& rng) {
  std::vector<size_t> order(pairs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t epoch = 0; epoch < opts.epochs; ++epoch) {
    rng.Shuffle(order);
    const size_t use = opts.max_pairs_per_epoch == 0
                           ? order.size()
                           : std::min(order.size(),
                                      opts.max_pairs_per_epoch);
    for (size_t i = 0; i < use; ++i) {
      const auto& p = pairs[order[i]];
      // Linear learning-rate decay within the epoch, word2vec style.
      const float lr = opts.learning_rate *
                       (1.0f - 0.9f * static_cast<float>(i) /
                                   static_cast<float>(use));
      Update(p.center, p.context, sampler, opts.negatives, lr, rng);
    }
  }
}

}  // namespace hybridgnn
