#ifndef HYBRIDGNN_SAMPLING_EXPLORATION_H_
#define HYBRIDGNN_SAMPLING_EXPLORATION_H_

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace hybridgnn {

/// Randomized inter-relationship exploration (paper Sec. III-B).
///
/// Each step from v_t is a two-phase draw:
///   1. r_{t+1} ~ Uniform over relations with N_r(v_t) non-empty  (Eq. 1)
///   2. v_{t+1} ~ Uniform over N_{r_{t+1}}(v_t)                   (Eq. 2)
/// This crosses relationship-specific subgraphs freely, surfacing
/// inter-relationship metapath instances no predefined scheme covers.

/// One exploration walk of `depth` steps starting at `start` (start is
/// included; the walk may stop early at isolated nodes).
std::vector<NodeId> ExplorationWalk(const MultiplexHeteroGraph& g,
                                    NodeId start, size_t depth, Rng& rng);

/// Level-structured exploration neighbors used by the hybrid aggregation
/// flow (the P_rand flow in Eq. 4): level 0 is {v}; level k holds up to
/// `fanout` nodes reached from level k-1 by one two-phase step.
/// Returns `depth+1` levels.
std::vector<std::vector<NodeId>> ExplorationNeighbors(
    const MultiplexHeteroGraph& g, NodeId v, size_t depth, size_t fanout,
    Rng& rng);

/// Single two-phase transition from `v`; kInvalidNode when isolated.
NodeId ExplorationStep(const MultiplexHeteroGraph& g, NodeId v, Rng& rng);

/// Empirical transition probability P(u | v) of the two-phase sampler,
/// computed in closed form from Eqs. 1-2 (sums over relations connecting
/// v and u). Exposed for property tests.
double ExplorationTransitionProbability(const MultiplexHeteroGraph& g,
                                        NodeId v, NodeId u);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SAMPLING_EXPLORATION_H_
