#include "sampling/corpus.h"

#include "sampling/walker.h"

namespace hybridgnn {

void HarvestPairs(const std::vector<NodeId>& walk, size_t window,
                  RelationId rel, std::vector<SkipGramPair>& out) {
  for (size_t i = 0; i < walk.size(); ++i) {
    const size_t lo = i >= window ? i - window : 0;
    const size_t hi = std::min(walk.size() - 1, i + window);
    for (size_t j = lo; j <= hi; ++j) {
      if (j == i) continue;
      out.push_back(SkipGramPair{walk[i], walk[j], rel});
    }
  }
}

WalkCorpus BuildMetapathCorpus(const MultiplexHeteroGraph& g,
                               const std::vector<MetapathScheme>& schemes,
                               const CorpusOptions& options, Rng& rng) {
  WalkCorpus corpus;
  for (size_t copy = 0; copy < options.direct_edge_copies; ++copy) {
    for (const auto& e : g.edges()) {
      corpus.pairs.push_back(SkipGramPair{e.src, e.dst, e.rel});
      corpus.pairs.push_back(SkipGramPair{e.dst, e.src, e.rel});
    }
  }
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.Degree(v, r) == 0) continue;
      // First matching scheme for (v, r), if any.
      const MetapathScheme* scheme = nullptr;
      for (const auto& s : schemes) {
        if (s.IsIntraRelationship() && s.relation() == r &&
            s.source_type() == g.node_type(v)) {
          scheme = &s;
          break;
        }
      }
      for (size_t w = 0; w < options.num_walks_per_node; ++w) {
        std::vector<NodeId> walk =
            scheme != nullptr
                ? MetapathWalk(g, *scheme, v, options.walk_length, rng)
                : RelationWalk(g, r, v, options.walk_length, rng);
        if (walk.size() < 2) continue;
        HarvestPairs(walk, options.window, r, corpus.pairs);
        corpus.walks.push_back(std::move(walk));
      }
    }
  }
  return corpus;
}

WalkCorpus BuildUniformCorpus(const MultiplexHeteroGraph& g,
                              const CorpusOptions& options, Rng& rng) {
  WalkCorpus corpus;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.TotalDegree(v) == 0) continue;
    for (size_t w = 0; w < options.num_walks_per_node; ++w) {
      std::vector<NodeId> walk = UniformWalk(g, v, options.walk_length, rng);
      if (walk.size() < 2) continue;
      HarvestPairs(walk, options.window, kInvalidRelation, corpus.pairs);
      corpus.walks.push_back(std::move(walk));
    }
  }
  return corpus;
}

WalkCorpus BuildNode2VecCorpus(const MultiplexHeteroGraph& g,
                               const CorpusOptions& options, double p,
                               double q, Rng& rng) {
  WalkCorpus corpus;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.TotalDegree(v) == 0) continue;
    for (size_t w = 0; w < options.num_walks_per_node; ++w) {
      std::vector<NodeId> walk =
          Node2VecWalk(g, v, options.walk_length, p, q, rng);
      if (walk.size() < 2) continue;
      HarvestPairs(walk, options.window, kInvalidRelation, corpus.pairs);
      corpus.walks.push_back(std::move(walk));
    }
  }
  return corpus;
}

}  // namespace hybridgnn
