#include "sampling/corpus.h"

#include <utility>

#include "common/parallel.h"
#include "obs/metrics.h"
#include "sampling/walker.h"

namespace hybridgnn {

namespace {

/// Counts a finished corpus into the global registry. The matching
/// `sampling/walk_corpus` stage timer is recorded by the callers' scoped
/// timers around the whole build.
void CountCorpus(const WalkCorpus& corpus) {
  static obs::Counter& walks =
      obs::GlobalRegistry().GetCounter("sampling/walks_generated");
  static obs::Counter& pairs =
      obs::GlobalRegistry().GetCounter("sampling/pairs_generated");
  walks.Add(corpus.walks.size());
  pairs.Add(corpus.pairs.size());
}

}  // namespace

void HarvestPairs(const std::vector<NodeId>& walk, size_t window,
                  RelationId rel, std::vector<SkipGramPair>& out) {
  // Reserve for the worst case (full window on both sides of every
  // position), growing geometrically so repeated calls appending to the
  // same output vector do not reallocate per walk.
  const size_t bound = out.size() + walk.size() * 2 * window;
  if (bound > out.capacity()) {
    out.reserve(std::max(bound, out.capacity() + out.capacity() / 2));
  }
  for (size_t i = 0; i < walk.size(); ++i) {
    const size_t lo = i >= window ? i - window : 0;
    const size_t hi = std::min(walk.size() - 1, i + window);
    for (size_t j = lo; j <= hi; ++j) {
      if (j == i) continue;
      out.push_back(SkipGramPair{walk[i], walk[j], rel});
    }
  }
}

namespace {

/// One unit of corpus work: all of a start node's walks under one relation
/// (kInvalidRelation for relation-blind corpora). Units are enumerated in
/// the serial iteration order, so slot-ordered concatenation of their
/// outputs does not depend on how they are scheduled across workers.
struct WalkUnit {
  NodeId start;
  RelationId rel;
  const MetapathScheme* scheme;  // nullptr -> relation/uniform fallback
};

/// Runs `units` through `gen` (unit, rng, corpus-slot). Serial mode threads
/// the caller's Rng through every unit in order — bit-identical to the seed
/// implementation. Parallel mode consumes exactly one draw from the caller's
/// Rng to seed a master generator and forks one independent stream per unit,
/// so the result is reproducible and invariant to the worker count.
template <typename GenFn>
WalkCorpus RunUnits(const std::vector<WalkUnit>& units,
                    const CorpusOptions& options, Rng& rng, const GenFn& gen) {
  WalkCorpus corpus;
  const size_t threads = ResolveNumThreads(options.num_threads);
  if (threads <= 1) {
    for (const WalkUnit& u : units) gen(u, rng, corpus);
    return corpus;
  }
  Rng master(rng.NextUint64());
  std::vector<WalkCorpus> slots(units.size());
  RunParallel(threads, units.size(), [&](size_t i) {
    Rng unit_rng = master.Fork(i);
    gen(units[i], unit_rng, slots[i]);
  });
  size_t total_walks = 0, total_pairs = 0;
  for (const WalkCorpus& s : slots) {
    total_walks += s.walks.size();
    total_pairs += s.pairs.size();
  }
  corpus.walks.reserve(total_walks);
  corpus.pairs.reserve(total_pairs);
  for (WalkCorpus& s : slots) {
    for (auto& w : s.walks) corpus.walks.push_back(std::move(w));
    corpus.pairs.insert(corpus.pairs.end(), s.pairs.begin(), s.pairs.end());
  }
  return corpus;
}

}  // namespace

WalkCorpus BuildMetapathCorpus(const MultiplexHeteroGraph& g,
                               const std::vector<MetapathScheme>& schemes,
                               const CorpusOptions& options, Rng& rng) {
  obs::ScopedTimer stage_timer(obs::Stage("sampling/walk_corpus"));
  std::vector<WalkUnit> units;
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.Degree(v, r) == 0) continue;
      // First matching scheme for (v, r), if any.
      const MetapathScheme* scheme = nullptr;
      for (const auto& s : schemes) {
        if (s.IsIntraRelationship() && s.relation() == r &&
            s.source_type() == g.node_type(v)) {
          scheme = &s;
          break;
        }
      }
      units.push_back(WalkUnit{v, r, scheme});
    }
  }
  WalkCorpus corpus = RunUnits(
      units, options, rng,
      [&](const WalkUnit& u, Rng& unit_rng, WalkCorpus& out) {
        for (size_t w = 0; w < options.num_walks_per_node; ++w) {
          std::vector<NodeId> walk =
              u.scheme != nullptr
                  ? MetapathWalk(g, *u.scheme, u.start, options.walk_length,
                                 unit_rng)
                  : RelationWalk(g, u.rel, u.start, options.walk_length,
                                 unit_rng);
          if (walk.size() < 2) continue;
          HarvestPairs(walk, options.window, u.rel, out.pairs);
          out.walks.push_back(std::move(walk));
        }
      });
  // Direct-edge up-weighting (serial and cheap; order matches the seed
  // implementation's prefix position in the pair list only when serial — the
  // multiset is identical either way).
  std::vector<SkipGramPair> with_edges;
  with_edges.reserve(corpus.pairs.size() +
                     2 * options.direct_edge_copies * g.edges().size());
  for (size_t copy = 0; copy < options.direct_edge_copies; ++copy) {
    for (const auto& e : g.edges()) {
      with_edges.push_back(SkipGramPair{e.src, e.dst, e.rel});
      with_edges.push_back(SkipGramPair{e.dst, e.src, e.rel});
    }
  }
  with_edges.insert(with_edges.end(), corpus.pairs.begin(),
                    corpus.pairs.end());
  corpus.pairs = std::move(with_edges);
  CountCorpus(corpus);
  return corpus;
}

WalkCorpus BuildUniformCorpus(const MultiplexHeteroGraph& g,
                              const CorpusOptions& options, Rng& rng) {
  obs::ScopedTimer stage_timer(obs::Stage("sampling/walk_corpus"));
  std::vector<WalkUnit> units;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.TotalDegree(v) == 0) continue;
    units.push_back(WalkUnit{v, kInvalidRelation, nullptr});
  }
  WalkCorpus corpus = RunUnits(
      units, options, rng,
      [&](const WalkUnit& u, Rng& unit_rng, WalkCorpus& out) {
        for (size_t w = 0; w < options.num_walks_per_node; ++w) {
          std::vector<NodeId> walk =
              UniformWalk(g, u.start, options.walk_length, unit_rng);
          if (walk.size() < 2) continue;
          HarvestPairs(walk, options.window, kInvalidRelation, out.pairs);
          out.walks.push_back(std::move(walk));
        }
      });
  CountCorpus(corpus);
  return corpus;
}

WalkCorpus BuildNode2VecCorpus(const MultiplexHeteroGraph& g,
                               const CorpusOptions& options, double p,
                               double q, Rng& rng) {
  obs::ScopedTimer stage_timer(obs::Stage("sampling/walk_corpus"));
  std::vector<WalkUnit> units;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.TotalDegree(v) == 0) continue;
    units.push_back(WalkUnit{v, kInvalidRelation, nullptr});
  }
  WalkCorpus corpus = RunUnits(
      units, options, rng,
      [&](const WalkUnit& u, Rng& unit_rng, WalkCorpus& out) {
        for (size_t w = 0; w < options.num_walks_per_node; ++w) {
          std::vector<NodeId> walk = Node2VecWalk(
              g, u.start, options.walk_length, p, q, unit_rng);
          if (walk.size() < 2) continue;
          HarvestPairs(walk, options.window, kInvalidRelation, out.pairs);
          out.walks.push_back(std::move(walk));
        }
      });
  CountCorpus(corpus);
  return corpus;
}

}  // namespace hybridgnn
