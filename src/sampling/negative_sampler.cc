#include "sampling/negative_sampler.h"

#include <cmath>

#include "common/logging.h"

namespace hybridgnn {

NegativeSampler::NegativeSampler(const MultiplexHeteroGraph& g, double power,
                                 double smoothing)
    : graph_(&g) {
  per_type_.reserve(g.num_node_types());
  std::vector<double> global_weights(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    global_weights[v] =
        std::pow(static_cast<double>(g.TotalDegree(v)) + smoothing, power);
  }
  for (NodeTypeId t = 0; t < g.num_node_types(); ++t) {
    const auto& nodes = g.NodesOfType(t);
    std::vector<double> weights(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      weights[i] = global_weights[nodes[i]];
    }
    if (weights.empty()) weights.push_back(1.0);  // placeholder, unused
    per_type_.emplace_back(weights);
  }
  global_ = AliasTable(global_weights);
}

NodeId NegativeSampler::SampleOfType(NodeTypeId t, Rng& rng) const {
  HYBRIDGNN_CHECK(t < per_type_.size()) << "unknown node type";
  const auto& nodes = graph_->NodesOfType(t);
  HYBRIDGNN_CHECK(!nodes.empty()) << "no nodes of requested type";
  return nodes[per_type_[t].Sample(rng)];
}

NodeId NegativeSampler::SampleLike(NodeId like, Rng& rng) const {
  const NodeTypeId t = graph_->node_type(like);
  for (int attempt = 0; attempt < 8; ++attempt) {
    NodeId v = SampleOfType(t, rng);
    if (v != like) return v;
  }
  return SampleOfType(t, rng);
}

NodeId NegativeSampler::SampleAny(Rng& rng) const {
  return static_cast<NodeId>(global_.Sample(rng));
}

NodeId NegativeSampler::SampleRelationAware(NodeId center, NodeId like,
                                            RelationId rel,
                                            double cross_fraction,
                                            Rng& rng) const {
  const MultiplexHeteroGraph& g = *graph_;
  if (rng.Bernoulli(cross_fraction)) {
    const NodeTypeId want = g.node_type(like);
    // Reservoir-sample one admissible cross-relation neighbor.
    NodeId chosen = kInvalidNode;
    size_t seen = 0;
    for (RelationId r : g.ActiveRelations(center)) {
      if (r == rel) continue;
      for (NodeId u : g.Neighbors(center, r)) {
        if (g.node_type(u) != want || u == center) continue;
        if (g.HasEdge(center, u, rel)) continue;
        ++seen;
        if (rng.UniformUint64(seen) == 0) chosen = u;
      }
    }
    if (chosen != kInvalidNode) return chosen;
  }
  return SampleLike(like, rng);
}

}  // namespace hybridgnn
