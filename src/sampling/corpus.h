#ifndef HYBRIDGNN_SAMPLING_CORPUS_H_
#define HYBRIDGNN_SAMPLING_CORPUS_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/metapath.h"

namespace hybridgnn {

/// A (center, context) training pair harvested from a walk window, tagged
/// with the relation whose walk produced it (kInvalidRelation for
/// relation-blind corpora).
struct SkipGramPair {
  NodeId center;
  NodeId context;
  RelationId rel;
};

/// Configuration for walk-corpus generation, mirroring the paper's settings
/// (20 walks of length 10, window 5).
struct CorpusOptions {
  size_t num_walks_per_node = 20;
  size_t walk_length = 10;
  size_t window = 5;
  /// Extra copies of each training edge injected as (src, dst, rel) pairs
  /// into the metapath corpus (both directions). Walk windows mix 1-3 hop
  /// proximity; link prediction is a first-order task, so up-weighting
  /// direct edges sharpens the signal. 0 disables.
  size_t direct_edge_copies = 2;
  /// Worker threads for walk generation. 1 (the default) runs the original
  /// serial path, bit-identical to the single-threaded seed implementation;
  /// 0 defers to HYBRIDGNN_THREADS (common/parallel.h). With more than one
  /// thread every (start node, relation) walk unit draws from its own Rng
  /// stream forked off the caller's seed, so the corpus is reproducible and
  /// *identical for any thread count > 1* — but it is a different (equally
  /// distributed) sample than the serial stream, which interleaves one
  /// generator across all walks and therefore cannot be replayed in
  /// parallel.
  size_t num_threads = 1;
};

/// A bag of random walks plus the skip-gram pairs extracted from them.
struct WalkCorpus {
  std::vector<std::vector<NodeId>> walks;
  std::vector<SkipGramPair> pairs;
};

/// Per-relation metapath-based corpus (the paper's training corpus): for
/// each relation r, walks follow the first scheme in `schemes` whose
/// relation is r and whose source type matches the start node; nodes with no
/// matching scheme fall back to an intra-relationship uniform walk on g_r.
WalkCorpus BuildMetapathCorpus(const MultiplexHeteroGraph& g,
                               const std::vector<MetapathScheme>& schemes,
                               const CorpusOptions& options, Rng& rng);

/// Relation-blind uniform-walk corpus (DeepWalk).
WalkCorpus BuildUniformCorpus(const MultiplexHeteroGraph& g,
                              const CorpusOptions& options, Rng& rng);

/// Relation-blind node2vec corpus with return/in-out parameters p, q.
WalkCorpus BuildNode2VecCorpus(const MultiplexHeteroGraph& g,
                               const CorpusOptions& options, double p,
                               double q, Rng& rng);

/// Extracts windowed pairs from `walk` into `out` (shared helper).
void HarvestPairs(const std::vector<NodeId>& walk, size_t window,
                  RelationId rel, std::vector<SkipGramPair>& out);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SAMPLING_CORPUS_H_
