#include "sampling/exploration.h"

namespace hybridgnn {

NodeId ExplorationStep(const MultiplexHeteroGraph& g, NodeId v, Rng& rng) {
  auto rels = g.ActiveRelations(v);
  if (rels.empty()) return kInvalidNode;
  // Phase 1 (Eq. 1): uniform over active relations.
  const RelationId r = rels[rng.UniformUint64(rels.size())];
  // Phase 2 (Eq. 2): uniform over neighbors under r. The active-relation
  // table can go stale relative to the adjacency (filtered or asymmetric
  // edge loads), and Rng::UniformUint64 CHECK-aborts on a zero bound — so an
  // empty neighborhood must terminate the walk, not the process.
  auto nbrs = g.Neighbors(v, r);
  if (nbrs.empty()) return kInvalidNode;
  return nbrs[rng.UniformUint64(nbrs.size())];
}

std::vector<NodeId> ExplorationWalk(const MultiplexHeteroGraph& g,
                                    NodeId start, size_t depth, Rng& rng) {
  std::vector<NodeId> walk;
  walk.reserve(depth + 1);
  walk.push_back(start);
  NodeId cur = start;
  for (size_t step = 0; step < depth; ++step) {
    NodeId next = ExplorationStep(g, cur, rng);
    if (next == kInvalidNode) break;
    cur = next;
    walk.push_back(cur);
  }
  return walk;
}

std::vector<std::vector<NodeId>> ExplorationNeighbors(
    const MultiplexHeteroGraph& g, NodeId v, size_t depth, size_t fanout,
    Rng& rng) {
  std::vector<std::vector<NodeId>> levels(depth + 1);
  levels[0] = {v};
  for (size_t k = 1; k <= depth; ++k) {
    const auto& frontier = levels[k - 1];
    if (frontier.empty()) break;
    auto& level = levels[k];
    level.reserve(fanout);
    for (size_t s = 0; s < fanout; ++s) {
      NodeId u = frontier[rng.UniformUint64(frontier.size())];
      NodeId next = ExplorationStep(g, u, rng);
      if (next != kInvalidNode) level.push_back(next);
    }
  }
  return levels;
}

double ExplorationTransitionProbability(const MultiplexHeteroGraph& g,
                                        NodeId v, NodeId u) {
  auto rels = g.ActiveRelations(v);
  if (rels.empty()) return 0.0;
  const double p_rel = 1.0 / static_cast<double>(rels.size());
  double p = 0.0;
  for (RelationId r : rels) {
    if (g.HasEdge(v, u, r)) {
      p += p_rel / static_cast<double>(g.Degree(v, r));
    }
  }
  return p;
}

}  // namespace hybridgnn
