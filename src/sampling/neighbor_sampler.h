#ifndef HYBRIDGNN_SAMPLING_NEIGHBOR_SAMPLER_H_
#define HYBRIDGNN_SAMPLING_NEIGHBOR_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "graph/frontier.h"
#include "graph/graph.h"

namespace hybridgnn {

/// GraphSage-style layered neighbor sampling on the union of relations:
/// level 0 is {v}; level k holds `fanout` neighbors (with replacement,
/// relation-blind) of a random level-(k-1) node each. Used by the GCN /
/// GraphSage baselines' mini-batch path.
std::vector<std::vector<NodeId>> SampleLayers(const MultiplexHeteroGraph& g,
                                              NodeId v, size_t num_layers,
                                              size_t fanout, Rng& rng);

/// Per-relation variant (R-GCN): for each relation independently, samples up
/// to `fanout` direct neighbors of `v` under that relation (empty vector for
/// relations where v is isolated).
std::vector<std::vector<NodeId>> SamplePerRelationNeighbors(
    const MultiplexHeteroGraph& g, NodeId v, size_t fanout, Rng& rng);

/// Flattens level-structured neighbor samples (SampleLayers /
/// MetapathGuidedNeighbors / ExplorationNeighbors output) into a CSR
/// frontier: one segment per level, ordered deepest non-empty level FIRST.
/// That order is a contract — it is the Eq. 3 fold order, and the
/// segment-grouped backward scatter relies on it to reproduce the
/// pre-frontier per-level gradient accumulation bit for bit. Levels past
/// the deepest non-empty one are dropped; every level up to it must be
/// non-empty (samplers guarantee this: a level is only empty when its
/// parent level already was). Reuses `out`'s buffers.
void BuildLevelFrontier(const std::vector<std::vector<NodeId>>& levels,
                        MinibatchFrontier* out);

/// GATNE-style per-relation frontier over `v`'s direct neighbors: one
/// segment per relation (ascending), holding `fanout` neighbors sampled
/// with replacement — or `v` itself where `v` is isolated under that
/// relation. Draws exactly one RNG value per sampled neighbor, in relation
/// order, matching the per-node loop it replaced. Indices are raw NodeIds;
/// callers owning per-(node, relation) tables remap them per segment.
void BuildRelationFrontier(const MultiplexHeteroGraph& g, NodeId v,
                           size_t fanout, Rng& rng, MinibatchFrontier* out);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SAMPLING_NEIGHBOR_SAMPLER_H_
