#ifndef HYBRIDGNN_SAMPLING_NEIGHBOR_SAMPLER_H_
#define HYBRIDGNN_SAMPLING_NEIGHBOR_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace hybridgnn {

/// GraphSage-style layered neighbor sampling on the union of relations:
/// level 0 is {v}; level k holds `fanout` neighbors (with replacement,
/// relation-blind) of a random level-(k-1) node each. Used by the GCN /
/// GraphSage baselines' mini-batch path.
std::vector<std::vector<NodeId>> SampleLayers(const MultiplexHeteroGraph& g,
                                              NodeId v, size_t num_layers,
                                              size_t fanout, Rng& rng);

/// Per-relation variant (R-GCN): for each relation independently, samples up
/// to `fanout` direct neighbors of `v` under that relation (empty vector for
/// relations where v is isolated).
std::vector<std::vector<NodeId>> SamplePerRelationNeighbors(
    const MultiplexHeteroGraph& g, NodeId v, size_t fanout, Rng& rng);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SAMPLING_NEIGHBOR_SAMPLER_H_
