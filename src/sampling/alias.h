#ifndef HYBRIDGNN_SAMPLING_ALIAS_H_
#define HYBRIDGNN_SAMPLING_ALIAS_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace hybridgnn {

/// Walker's alias method: O(n) construction, O(1) weighted sampling.
/// Used by the negative sampler (unigram^0.75) and LINE's edge sampler.
class AliasTable {
 public:
  AliasTable() = default;
  /// Builds from non-negative weights; at least one must be positive.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to weight.
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SAMPLING_ALIAS_H_
