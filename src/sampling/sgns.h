#ifndef HYBRIDGNN_SAMPLING_SGNS_H_
#define HYBRIDGNN_SAMPLING_SGNS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/types.h"
#include "sampling/corpus.h"
#include "sampling/negative_sampler.h"
#include "tensor/tensor.h"

namespace hybridgnn {

/// Hyper-parameters of skip-gram-with-negative-sampling training.
struct SgnsOptions {
  size_t dim = 128;
  size_t negatives = 5;
  float learning_rate = 0.025f;
  size_t epochs = 2;
  /// Pair cap per epoch (0 = all pairs).
  size_t max_pairs_per_epoch = 200000;
  /// Worker threads for Train. 1 (the default) runs the original serial
  /// SGD loop, bit-identical to the seed implementation; 0 defers to
  /// HYBRIDGNN_THREADS. With more than one thread the shuffled pair order
  /// is sharded across workers which update emb_/ctx_ rows lock-free
  /// (Hogwild, Recht et al. 2011): sparse updates rarely collide, and
  /// word2vec-family systems tolerate the occasional lost write. Results
  /// are then nondeterministic run-to-run.
  size_t num_threads = 1;
};

/// Classic SGNS embedder with manual SGD updates — the high-throughput
/// word2vec formulation used by DeepWalk/node2vec, and as *pretraining* for
/// GATNE's and HybridGNN's base/context tables (GATNE's reference
/// implementation does the same).
class SgnsEmbedder {
 public:
  SgnsEmbedder(size_t num_nodes, size_t dim, Rng& rng);

  /// Runs `opts.epochs` passes over `pairs` (shuffled each epoch).
  void Train(const std::vector<SkipGramPair>& pairs,
             const NegativeSampler& sampler, const SgnsOptions& opts,
             Rng& rng);

  /// One SGD update on a (center, context) pair plus `negatives` noise draws.
  void Update(NodeId center, NodeId context, const NegativeSampler& sampler,
              size_t negatives, float lr, Rng& rng);

  const Tensor& embeddings() const { return emb_; }
  const Tensor& contexts() const { return ctx_; }
  Tensor& mutable_embeddings() { return emb_; }

 private:
  Tensor emb_;  // input vectors
  Tensor ctx_;  // output (context) vectors
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SAMPLING_SGNS_H_
