#ifndef HYBRIDGNN_SAMPLING_WALKER_H_
#define HYBRIDGNN_SAMPLING_WALKER_H_

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/metapath.h"

namespace hybridgnn {

/// Random-walk primitives over a multiplex heterogeneous graph. All walks
/// return node sequences including the start; a walk ends early when no
/// admissible neighbor exists.

/// Uniform walk restricted to relation `r` (intra-relationship walk).
std::vector<NodeId> RelationWalk(const MultiplexHeteroGraph& g, RelationId r,
                                 NodeId start, size_t length, Rng& rng);

/// Uniform walk on the union of all relations (relation-blind).
std::vector<NodeId> UniformWalk(const MultiplexHeteroGraph& g, NodeId start,
                                size_t length, Rng& rng);

/// Metapath-based walk under relation `rel` as used for training (Sec III-E):
/// each step stays in relation `rel` and the node-type sequence cycles
/// through `scheme`'s types. At position t the candidate set is
/// N_rel(v_t) intersected with kappa(next type); the next node is uniform in
/// it (Eq. 11). If the intersection is empty the walk stops.
std::vector<NodeId> MetapathWalk(const MultiplexHeteroGraph& g,
                                 const MetapathScheme& scheme, NodeId start,
                                 size_t length, Rng& rng);

/// node2vec second-order biased walk on the union graph with return
/// parameter `p` and in-out parameter `q` (Grover & Leskovec 2016).
std::vector<NodeId> Node2VecWalk(const MultiplexHeteroGraph& g, NodeId start,
                                 size_t length, double p, double q, Rng& rng);

/// K-step metapath-guided neighbor sampling (Definition 5): level 0 is {v};
/// level k holds up to `fanout` nodes drawn (with replacement) from the
/// relation-r_k neighbors with node type o_k of nodes at level k-1.
/// Returns `scheme.length()+1` levels; levels may be empty when the
/// neighborhood dries up.
std::vector<std::vector<NodeId>> MetapathGuidedNeighbors(
    const MultiplexHeteroGraph& g, const MetapathScheme& scheme, NodeId v,
    size_t fanout, Rng& rng);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SAMPLING_WALKER_H_
