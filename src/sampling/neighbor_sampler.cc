#include "sampling/neighbor_sampler.h"

#include "common/logging.h"

namespace hybridgnn {

namespace {

NodeId UnionNeighbor(const MultiplexHeteroGraph& g, NodeId v, Rng& rng) {
  auto rels = g.ActiveRelations(v);
  if (rels.empty()) return kInvalidNode;
  size_t total = 0;
  for (RelationId r : rels) total += g.Degree(v, r);
  size_t pick = static_cast<size_t>(rng.UniformUint64(total));
  for (RelationId r : rels) {
    const size_t d = g.Degree(v, r);
    if (pick < d) return g.Neighbors(v, r)[pick];
    pick -= d;
  }
  return kInvalidNode;
}

}  // namespace

std::vector<std::vector<NodeId>> SampleLayers(const MultiplexHeteroGraph& g,
                                              NodeId v, size_t num_layers,
                                              size_t fanout, Rng& rng) {
  std::vector<std::vector<NodeId>> levels(num_layers + 1);
  levels[0] = {v};
  for (size_t k = 1; k <= num_layers; ++k) {
    const auto& frontier = levels[k - 1];
    if (frontier.empty()) break;
    auto& level = levels[k];
    level.reserve(fanout);
    for (size_t s = 0; s < fanout; ++s) {
      NodeId u = frontier[rng.UniformUint64(frontier.size())];
      NodeId next = UnionNeighbor(g, u, rng);
      if (next != kInvalidNode) level.push_back(next);
    }
  }
  return levels;
}

std::vector<std::vector<NodeId>> SamplePerRelationNeighbors(
    const MultiplexHeteroGraph& g, NodeId v, size_t fanout, Rng& rng) {
  std::vector<std::vector<NodeId>> out(g.num_relations());
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    auto nbrs = g.Neighbors(v, r);
    if (nbrs.empty()) continue;
    auto& dst = out[r];
    dst.reserve(fanout);
    for (size_t s = 0; s < fanout && s < nbrs.size() * 4; ++s) {
      if (dst.size() >= fanout) break;
      dst.push_back(nbrs[rng.UniformUint64(nbrs.size())]);
    }
  }
  return out;
}

void BuildLevelFrontier(const std::vector<std::vector<NodeId>>& levels,
                        MinibatchFrontier* out) {
  out->Clear();
  HYBRIDGNN_CHECK(!levels.empty() && !levels[0].empty())
      << "BuildLevelFrontier: empty level structure";
  size_t deepest = 0;
  for (size_t k = 0; k < levels.size(); ++k) {
    if (!levels[k].empty()) deepest = k;
  }
  for (size_t k = deepest + 1; k-- > 0;) {
    const auto& level = levels[k];
    HYBRIDGNN_CHECK(!level.empty())
        << "BuildLevelFrontier: empty level " << k << " below deepest "
        << deepest;
    for (NodeId u : level) out->indices.push_back(static_cast<int32_t>(u));
    out->CloseSegment();
  }
}

void BuildRelationFrontier(const MultiplexHeteroGraph& g, NodeId v,
                           size_t fanout, Rng& rng, MinibatchFrontier* out) {
  out->Clear();
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    auto nbrs = g.Neighbors(v, r);
    if (!nbrs.empty()) {
      for (size_t s = 0; s < fanout; ++s) {
        out->indices.push_back(
            static_cast<int32_t>(nbrs[rng.UniformUint64(nbrs.size())]));
      }
    } else {
      out->indices.push_back(static_cast<int32_t>(v));
    }
    out->CloseSegment();
  }
}

}  // namespace hybridgnn
