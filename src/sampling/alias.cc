#include "sampling/alias.h"

#include "common/logging.h"

namespace hybridgnn {

AliasTable::AliasTable(const std::vector<double>& weights) {
  HYBRIDGNN_CHECK(!weights.empty()) << "AliasTable needs weights";
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    HYBRIDGNN_CHECK(w >= 0.0) << "AliasTable weights must be non-negative";
    total += w;
  }
  HYBRIDGNN_CHECK(total > 0.0) << "AliasTable needs a positive weight";

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) prob_[i] = 1.0;
  for (size_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

size_t AliasTable::Sample(Rng& rng) const {
  const size_t i = static_cast<size_t>(rng.UniformUint64(prob_.size()));
  return rng.UniformDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace hybridgnn
