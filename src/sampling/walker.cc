#include "sampling/walker.h"

#include <algorithm>

#include "common/logging.h"

namespace hybridgnn {

namespace {

/// Uniformly picks one relation among those active at `v`, then one
/// neighbor under it; returns kInvalidNode for isolated nodes.
NodeId UniformUnionStep(const MultiplexHeteroGraph& g, NodeId v, Rng& rng) {
  auto rels = g.ActiveRelations(v);
  if (rels.empty()) return kInvalidNode;
  // Weight relations by degree so the union walk is uniform over incident
  // edges (matching a walk on the merged multigraph).
  size_t total = 0;
  for (RelationId r : rels) total += g.Degree(v, r);
  size_t pick = static_cast<size_t>(rng.UniformUint64(total));
  for (RelationId r : rels) {
    const size_t d = g.Degree(v, r);
    if (pick < d) return g.Neighbors(v, r)[pick];
    pick -= d;
  }
  return kInvalidNode;  // unreachable
}

}  // namespace

std::vector<NodeId> RelationWalk(const MultiplexHeteroGraph& g, RelationId r,
                                 NodeId start, size_t length, Rng& rng) {
  std::vector<NodeId> walk;
  walk.reserve(length + 1);
  walk.push_back(start);
  NodeId cur = start;
  for (size_t step = 0; step < length; ++step) {
    auto nbrs = g.Neighbors(cur, r);
    if (nbrs.empty()) break;
    cur = nbrs[rng.UniformUint64(nbrs.size())];
    walk.push_back(cur);
  }
  return walk;
}

std::vector<NodeId> UniformWalk(const MultiplexHeteroGraph& g, NodeId start,
                                size_t length, Rng& rng) {
  std::vector<NodeId> walk;
  walk.reserve(length + 1);
  walk.push_back(start);
  NodeId cur = start;
  for (size_t step = 0; step < length; ++step) {
    NodeId next = UniformUnionStep(g, cur, rng);
    if (next == kInvalidNode) break;
    cur = next;
    walk.push_back(cur);
  }
  return walk;
}

std::vector<NodeId> MetapathWalk(const MultiplexHeteroGraph& g,
                                 const MetapathScheme& scheme, NodeId start,
                                 size_t length, Rng& rng) {
  HYBRIDGNN_CHECK(scheme.IsIntraRelationship())
      << "training walks use intra-relationship schemes";
  const RelationId rel = scheme.relation();
  const auto& types = scheme.node_types();
  std::vector<NodeId> walk;
  walk.reserve(length + 1);
  walk.push_back(start);
  NodeId cur = start;
  // Position within the scheme's type cycle. The scheme is cyclic
  // (types.front() == types.back() for symmetric schemes); we advance through
  // positions 1..n then wrap to 1.
  size_t pos = 0;
  for (size_t step = 0; step < length; ++step) {
    const size_t next_pos = (pos % (types.size() - 1)) + 1;
    const NodeTypeId want = types[next_pos];
    auto nbrs = g.Neighbors(cur, rel);
    if (nbrs.empty()) break;
    // Reservoir-free: collect admissible neighbors (type-filtered).
    // Degree is small in our graphs; linear scan is fine.
    size_t admissible = 0;
    for (NodeId u : nbrs) {
      if (g.node_type(u) == want) ++admissible;
    }
    if (admissible == 0) break;
    size_t pick = static_cast<size_t>(rng.UniformUint64(admissible));
    NodeId chosen = kInvalidNode;
    for (NodeId u : nbrs) {
      if (g.node_type(u) == want) {
        if (pick == 0) {
          chosen = u;
          break;
        }
        --pick;
      }
    }
    cur = chosen;
    walk.push_back(cur);
    pos = next_pos;
  }
  return walk;
}

std::vector<NodeId> Node2VecWalk(const MultiplexHeteroGraph& g, NodeId start,
                                 size_t length, double p, double q, Rng& rng) {
  std::vector<NodeId> walk;
  walk.reserve(length + 1);
  walk.push_back(start);
  NodeId prev = kInvalidNode;
  NodeId cur = start;
  for (size_t step = 0; step < length; ++step) {
    // Gather union-neighborhood of cur (small degrees expected).
    std::vector<NodeId> candidates;
    for (RelationId r : g.ActiveRelations(cur)) {
      auto nbrs = g.Neighbors(cur, r);
      candidates.insert(candidates.end(), nbrs.begin(), nbrs.end());
    }
    if (candidates.empty()) break;
    NodeId next;
    if (prev == kInvalidNode) {
      next = candidates[rng.UniformUint64(candidates.size())];
    } else {
      // Second-order weights: 1/p to return, 1 for common neighbor of prev,
      // 1/q otherwise. Rejection sampling on the max weight.
      const double wmax =
          std::max({1.0, 1.0 / p, 1.0 / q});
      for (int attempt = 0; attempt < 64; ++attempt) {
        NodeId cand = candidates[rng.UniformUint64(candidates.size())];
        double w;
        if (cand == prev) {
          w = 1.0 / p;
        } else {
          bool common = false;
          for (RelationId r : g.ActiveRelations(prev)) {
            if (g.HasEdge(prev, cand, r)) {
              common = true;
              break;
            }
          }
          w = common ? 1.0 : 1.0 / q;
        }
        if (rng.UniformDouble() * wmax <= w) {
          next = cand;
          goto accepted;
        }
      }
      next = candidates[rng.UniformUint64(candidates.size())];
    accepted:;
    }
    prev = cur;
    cur = next;
    walk.push_back(cur);
  }
  return walk;
}

std::vector<std::vector<NodeId>> MetapathGuidedNeighbors(
    const MultiplexHeteroGraph& g, const MetapathScheme& scheme, NodeId v,
    size_t fanout, Rng& rng) {
  std::vector<std::vector<NodeId>> levels(scheme.length() + 1);
  levels[0] = {v};
  for (size_t k = 1; k <= scheme.length(); ++k) {
    const RelationId rel = scheme.relations()[k - 1];
    const NodeTypeId want = scheme.node_types()[k];
    const auto& frontier = levels[k - 1];
    if (frontier.empty()) break;
    auto& level = levels[k];
    level.reserve(fanout);
    // Draw `fanout` samples: pick a frontier node, then a type-admissible
    // neighbor under rel; skip draws that find none.
    for (size_t s = 0; s < fanout; ++s) {
      NodeId u = frontier[rng.UniformUint64(frontier.size())];
      auto nbrs = g.Neighbors(u, rel);
      if (nbrs.empty()) continue;
      // Up to 4 attempts to hit the wanted type.
      for (int attempt = 0; attempt < 4; ++attempt) {
        NodeId cand = nbrs[rng.UniformUint64(nbrs.size())];
        if (g.node_type(cand) == want) {
          level.push_back(cand);
          break;
        }
      }
    }
  }
  return levels;
}

}  // namespace hybridgnn
