// Deterministic textual dump of the step IR. Pinned by the golden tests in
// tests/plan_ir_test.cc — change the format only together with the goldens.
#include <sstream>

#include "kernels/kernels.h"
#include "plan/plan.h"

namespace hybridgnn::plan {

namespace {

const char* StageName(kernels::EwStageOp op) {
  switch (op) {
    case kernels::EwStageOp::kScale:
      return "scale";
    case kernels::EwStageOp::kSigmoid:
      return "sigmoid";
    case kernels::EwStageOp::kTanh:
      return "tanh";
    case kernels::EwStageOp::kRelu:
      return "relu";
    case kernels::EwStageOp::kLogSigmoid:
      return "logsigmoid";
  }
  return "?";
}

}  // namespace

std::string StepPlan::Dump() const {
  std::ostringstream os;
  os << "plan root=v" << root << " train=" << (train ? 1 : 0)
     << " values=" << values.size() << " ops=" << ops.size()
     << " schedule=" << schedule.size() << " buffers=" << num_buffers
     << " islots=" << num_islots << " sslots=" << num_sslots
     << " fslots=" << num_fslots << "\n";
  os << "stats folded=" << stats.folded << " fused_chains=" << stats.fused_chains
     << " fused_ops=" << stats.fused_ops
     << " dead_grad_elided=" << stats.dead_grad_elided
     << " inplaced=" << stats.inplaced
     << " passes_applied=" << stats.passes_applied << "\n";
  for (size_t i = 0; i < values.size(); ++i) {
    const ValueInfo& v = values[i];
    os << "v" << i << ": ";
    switch (v.origin) {
      case ValueInfo::Origin::kParam:
        os << "param";
        break;
      case ValueInfo::Origin::kConst:
        os << "const";
        break;
      case ValueInfo::Origin::kOp:
        os << "op" << v.def;
        break;
    }
    os << " [" << v.rows << "x" << v.cols << "]";
    if (v.requires_grad) os << " grad";
    if (v.pinned) os << " pin";
    if (v.dead) {
      os << " dead";
    } else if (v.buffer >= 0) {
      os << " buf" << v.buffer;
    }
    os << "\n";
  }
  for (size_t oi = 0; oi < ops.size(); ++oi) {
    const OpNode& op = ops[oi];
    os << "op" << oi << ": " << ag::OpKindName(op.kind) << "(";
    for (size_t a = 0; a < op.args.size(); ++a) {
      if (a) os << ", ";
      os << "v" << op.args[a];
    }
    os << ") -> v" << op.out;
    if (op.kind == OpKind::kScale) os << " alpha=" << op.alpha;
    if (op.kind == OpKind::kSliceRows) os << " start=" << op.start;
    if (op.islot >= 0) os << " i" << op.islot << "[" << op.islot_len << "]";
    if (op.sslot >= 0) os << " s" << op.sslot << "[" << op.sslot_len << "]";
    if (op.fslot >= 0) os << " f" << op.fslot << "[" << op.fslot_len << "]";
    if (!op.stages.empty()) {
      os << " stages={";
      for (size_t s = 0; s < op.stages.size(); ++s) {
        if (s) os << ",";
        os << StageName(op.stages[s].op);
        if (op.stages[s].op == kernels::EwStageOp::kScale) {
          os << "(" << op.stages[s].alpha << ")";
        }
      }
      os << "}";
    }
    if (op.donor >= 0) os << " inplace(arg" << op.donor << ")";
    if (!op.live) os << " [dead]";
    if (op.in_backward) os << " [bwd]";
    os << "\n";
  }
  os << "backward:";
  for (int oi : backward_order) os << " op" << oi;
  os << "\n";
  return os.str();
}

}  // namespace hybridgnn::plan
