#ifndef HYBRIDGNN_PLAN_PLAN_H_
#define HYBRIDGNN_PLAN_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kernels/kernels.h"
#include "tensor/autograd.h"
#include "tensor/tensor.h"

namespace hybridgnn::plan {

/// Compiled execution plans: a one-step trace of the autograd tape into an
/// explicit step IR, a rewrite-pass pipeline over it, and an executor that
/// replays the optimized schedule with zero per-step graph construction.
///
/// Lifecycle (one minibatch shape signature):
///
///   ag::TapeScope scope;
///   plan::Recorder rec;                     // installs the trace sink
///   ag::Var loss = BuildStepEager(batch);   // ops annotate themselves
///   auto step = rec.Finalize(loss, opts);   // IR + passes + buffer plan
///   ag::Backward(loss);                     // the recording step stays eager
///   ...
///   // every later step with the same structure signature:
///   ag::TapeScope scope;
///   plan::StepInputs in = BindStep(batch);  // index/segment/target arrays
///   ag::Var loss = step->ReplayTrain(in);   // no graph construction
///   ag::Backward(loss);                     // runs the compiled backward
///
/// Equivalence contract: a replayed step produces bit-identical loss values
/// and parameter gradients to the eager step it was traced from (enforced by
/// tests/plan_test.cc across both models, both kernel backends, and 1/4
/// workers). Every executor loop replicates the corresponding eager op /
/// backward-closure arithmetic exactly; the rewrite passes only perform
/// transformations proven bit-safe (see DESIGN.md §16).
///
/// Un-annotated ops (raw ag::MakeOp, SpMM) poison a recording: Finalize
/// returns nullptr and the caller stays on the eager path for that graph.
///
/// Env override: HYBRIDGNN_PLAN=off disables compiled plans regardless of
/// FitOptions{compile_plan}; =on force-enables them (see Enabled()).

using ag::OpKind;

/// Pass pipeline toggles. Defaults enable everything; tests pin per-pass IR
/// goldens by enabling one pass at a time.
struct PassOptions {
  bool fold_constants = true;
  bool fuse_elementwise = true;
  bool dead_grad_elim = true;  // acts only when `frozen` is non-empty
  bool inplace = true;
  /// Parameter nodes to treat as non-trainable during backward planning
  /// (e.g. frozen pretrained tables). Gradient work reaching only these
  /// leaves is elided; their grads are simply not produced by replay.
  std::unordered_set<const ag::Node*> frozen;
};

struct PassStats {
  size_t folded = 0;            // ops constant-folded away
  size_t fused_chains = 0;      // elementwise chains formed
  size_t fused_ops = 0;         // ops absorbed into chains
  size_t dead_grad_elided = 0;  // backward entries dropped by freezing
  size_t inplaced = 0;          // outputs sharing a last-use donor buffer
  size_t passes_applied = 0;    // passes that changed the IR
};

/// One SSA-ish value: the result of an op, a trainable parameter leaf, or a
/// constant (traced ag::Constant or a folded op result, snapshotted).
struct ValueInfo {
  enum class Origin : uint8_t { kOp, kParam, kConst };
  Origin origin = Origin::kOp;
  size_t rows = 0;
  size_t cols = 0;
  /// Effective trainability after dead-grad elimination; mirrors the eager
  /// requires_grad flag that decides which backward closures run.
  bool requires_grad = false;
  bool pinned = false;   // value read by a scheduled backward op (or root)
  bool dead = false;     // producer folded or fused away; no storage
  int def = -1;          // producing op index, -1 for leaves
  int last_use = -1;     // last live op reading this value (forward)
  int buffer = -1;       // frame buffer id (kOp values only)
  ag::Var leaf;          // kParam: the parameter node (kept alive)
  Tensor const_value;    // kConst: snapshot
};

/// One traced op. `args` are value ids; slot fields index into the
/// StepInputs arrays bound at each replay (index/segment/target data that
/// changes per minibatch while the structure signature stays fixed).
struct OpNode {
  OpKind kind = OpKind::kOpaque;
  int out = -1;
  std::vector<int> args;
  float alpha = 0.0f;  // kScale
  size_t start = 0;    // kSliceRows
  int islot = -1;      // i32 indices slot (gathers)
  int sslot = -1;      // size_t indptr slot (segment ops)
  int fslot = -1;      // float slot (BCE targets)
  size_t islot_len = 0;
  size_t sslot_len = 0;
  size_t fslot_len = 0;
  int amax = -1;  // frame argmax scratch id (kSegmentMax)
  std::vector<kernels::EwStage> stages;  // kEwChain
  int donor = -1;  // arg position whose buffer `out` reuses (inplacing)
  bool live = true;          // false: folded or fused away
  bool in_backward = false;  // scheduled in the backward order
};

/// The step IR: values + ops in creation order, the optimized forward
/// schedule, and the backward order mirroring eager Backward's reverse
/// post-order DFS (which is what makes replayed gradient accumulation
/// bit-identical to eager).
struct StepPlan {
  std::vector<ValueInfo> values;
  std::vector<OpNode> ops;
  std::vector<int> schedule;        // live op indices, forward order
  std::vector<int> backward_order;  // op indices, eager-DFS-mirror order
  int root = -1;                    // root value id
  bool train = false;               // root requires grad
  size_t num_islots = 0;
  size_t num_sslots = 0;
  size_t num_fslots = 0;
  size_t num_amax = 0;
  size_t num_buffers = 0;
  std::vector<std::pair<size_t, size_t>> buffer_shapes;
  PassStats stats;

  /// Deterministic textual dump (value table, op schedule, backward order);
  /// pinned by tests/plan_ir_test.cc goldens.
  std::string Dump() const;
};

/// Per-replay bound inputs, in recorded slot order. Spans must stay valid
/// for the duration of the Replay* call; contents are copied into the
/// executor frame (backward runs after the caller's scratch is reused).
struct StepInputs {
  std::vector<std::span<const int32_t>> i32;
  std::vector<std::span<const size_t>> szs;
  std::vector<std::span<const float>> f32;
};

/// A finalized plan plus persistent execution frames. Replay performs zero
/// graph construction and — once frames are warm — zero heap allocation.
/// NOT thread-safe: each worker thread records and replays its own steps
/// (models keep one PlanCache per worker).
class CompiledStep {
 public:
  explicit CompiledStep(StepPlan plan, std::vector<ag::Var> params);
  ~CompiledStep();
  CompiledStep(const CompiledStep&) = delete;
  CompiledStep& operator=(const CompiledStep&) = delete;

  /// Replays the forward schedule and returns a Var carrying the root value
  /// whose backward replays the compiled backward order (leaf gradients land
  /// exactly where eager Backward would put them, GradSinkScope included).
  /// Must be called under a TapeScope; call ag::Backward on the result
  /// within the same scope.
  ag::Var ReplayTrain(const StepInputs& in);

  /// Forward-only replay; returns a copy of the root value.
  Tensor ReplayInfer(const StepInputs& in);

  const StepPlan& plan() const { return plan_; }

 private:
  struct Frame;

  Frame* AcquireFrame();
  void ReleaseFrame(Frame* f);
  void Bind(const StepInputs& in, Frame* f);
  void RunForward(Frame& f);
  void RunBackward(Frame& f, const Tensor& root_grad);
  const Tensor& Val(Frame& f, int vid) const;
  void Accum(Frame& f, int vid, const Tensor& contrib);

  friend struct FatOpCtx;

  StepPlan plan_;
  std::vector<ag::Var> params_;
  std::vector<std::unique_ptr<Frame>> all_frames_;
  std::vector<Frame*> free_frames_;
  std::vector<const Tensor*> argv_;  // RunForward arg-pointer scratch
  uint64_t fwd_alloc_bytes_ = 0;  // last replay's forward heap/arena growth
};

/// Records one eager step into a StepPlan. Construct under the TapeScope
/// that covers the step build, build the graph eagerly, then Finalize with
/// the root. Destroying the recorder without finalizing abandons the trace.
class Recorder final : public ag::TraceSink {
 public:
  Recorder();
  ~Recorder() override;

  void OnNodeCreated(ag::Node* node) override;
  void OnOp(OpKind kind, const ag::Var& result,
            std::span<const ag::Var> parents,
            const ag::OpAttrs& attrs) override;
  const ag::Tape* tape() const override { return tape_; }

  /// Finalizes the trace: uninstalls the sink, CHECK-fails if any traced
  /// tape Var beyond `root` is still alive (a traced Var escaping past plan
  /// finalization would dangle into the executor's raw-pointer world), then
  /// runs the pass pipeline and plans buffers. Returns nullptr when the
  /// trace was poisoned (un-annotated op, untraced root, ...); the caller
  /// then stays on the eager path.
  std::unique_ptr<CompiledStep> Finalize(const ag::Var& root,
                                         const PassOptions& opts = {});

  bool poisoned() const { return !poison_reason_.empty(); }
  const std::string& poison_reason() const { return poison_reason_; }

 private:
  int RegisterParent(const ag::Var& p);
  void Poison(const std::string& why);

  ag::Tape* tape_;
  ag::TraceSink* prev_ = nullptr;
  bool installed_ = false;
  size_t baseline_handles_ = 0;
  int64_t start_ns_ = 0;
  ag::Node* unclaimed_ = nullptr;
  std::unordered_map<const ag::Node*, int> ids_;
  std::vector<ag::Node*> nodes_;  // parallel to plan_.values; trace-time only
  StepPlan plan_;
  std::string poison_reason_;
};

/// Rewrite-pass pipeline + ahead-of-time buffer planning. Called by
/// Recorder::Finalize; exposed for the IR golden tests.
void RunPasses(StepPlan* plan, const PassOptions& opts);

/// Resolves whether compiled plans are active: HYBRIDGNN_PLAN=off|0 forces
/// them off, =on|1 forces them on, anything else defers to `requested`
/// (FitOptions{compile_plan}).
bool Enabled(bool requested);

/// Structure-signature cache: maps a caller-computed shape/structure hash to
/// a compiled step (or a poison marker meaning "this graph cannot compile,
/// stay eager"). Generation-scoped: bumping the generation (each Fit)
/// drops every entry. Not thread-safe — one per worker.
class PlanCache {
 public:
  struct Entry {
    std::unique_ptr<CompiledStep> step;
    bool poisoned = false;
  };

  /// Clears the cache when `gen` differs from the current generation.
  void BeginGeneration(uint64_t gen);
  /// nullptr when the key has never been seen this generation.
  Entry* Find(uint64_t key);
  /// Creates (or returns) the entry for `key`. A second or later insertion
  /// within a generation counts as a retrace (obs: plan/retraces).
  Entry& Slot(uint64_t key);

  size_t size() const { return map_.size(); }

 private:
  uint64_t gen_ = 0;
  bool traced_this_gen_ = false;
  std::unordered_map<uint64_t, Entry> map_;
};

/// FNV-1a style accumulator for building structure signatures.
inline void HashCombine(uint64_t* h, uint64_t v) {
  *h ^= v + 0x9e3779b97f4a7c15ull + (*h << 6) + (*h >> 2);
}

}  // namespace hybridgnn::plan

#endif  // HYBRIDGNN_PLAN_PLAN_H_
