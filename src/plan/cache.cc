#include <string>

#include "common/env.h"
#include "obs/metrics.h"
#include "plan/plan.h"

namespace hybridgnn::plan {

bool Enabled(bool requested) {
  // Resolved per call (cheap: one getenv) so tests can flip the override.
  const std::string v = GetEnvString("HYBRIDGNN_PLAN", "");
  if (v == "off" || v == "0") return false;
  if (v == "on" || v == "1") return true;
  return requested;
}

void PlanCache::BeginGeneration(uint64_t gen) {
  if (gen == gen_) return;
  gen_ = gen;
  traced_this_gen_ = false;
  map_.clear();
}

PlanCache::Entry* PlanCache::Find(uint64_t key) {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

PlanCache::Entry& PlanCache::Slot(uint64_t key) {
  auto [it, inserted] = map_.try_emplace(key);
  if (inserted) {
    // The first trace of a generation is expected (record-once); every later
    // structure signature within the same generation is a retrace forced by
    // a shape change (e.g. a different sampled frontier size).
    if (traced_this_gen_) {
      static obs::Counter& retraces =
          obs::GlobalRegistry().GetCounter("plan/retraces");
      retraces.Add(1);
    }
    traced_this_gen_ = true;
  }
  return it->second;
}

}  // namespace hybridgnn::plan
