// Rewrite passes over the step IR plus ahead-of-time buffer planning.
//
// Every pass preserves bitwise equivalence with the eager step for the loss
// and for every non-frozen parameter gradient:
//  * Constant folding evaluates const-arg ops once with the exact executor
//    arithmetic (plan/eval.h), which is itself the exact eager arithmetic.
//  * Dead-grad elimination mirrors an eager run in which the frozen params
//    had requires_grad=false: dropped backward work reaches only frozen
//    leaves, so trainable gradients are untouched.
//  * Elementwise fusion contracts single-consumer unary chains; the fused
//    kernel applies the same per-element expressions in the same order, and
//    in eager Backward the chain's closures run consecutively (each interior
//    has exactly one consumer), so contraction cannot reorder any gradient
//    accumulation elsewhere.
//  * Inplacing only reuses a donor buffer at the donor value's last forward
//    use when no scheduled backward op (and not the root) reads it, and the
//    executor's elementwise loops read index i before writing index i.
#include <algorithm>

#include "common/logging.h"
#include "plan/eval.h"
#include "plan/plan.h"

namespace hybridgnn::plan {

namespace {

bool IsEwStageOp(OpKind k) {
  switch (k) {
    case OpKind::kScale:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kRelu:
    case OpKind::kLogSigmoid:
      return true;
    default:
      return false;
  }
}

kernels::EwStage StageFor(const OpNode& op) {
  switch (op.kind) {
    case OpKind::kScale:
      return {kernels::EwStageOp::kScale, op.alpha};
    case OpKind::kSigmoid:
      return {kernels::EwStageOp::kSigmoid, 0.0f};
    case OpKind::kTanh:
      return {kernels::EwStageOp::kTanh, 0.0f};
    case OpKind::kRelu:
      return {kernels::EwStageOp::kRelu, 0.0f};
    case OpKind::kLogSigmoid:
      return {kernels::EwStageOp::kLogSigmoid, 0.0f};
    default:
      HYBRIDGNN_CHECK(false) << "not an elementwise stage op";
  }
  return {kernels::EwStageOp::kScale, 1.0f};
}

void FoldConstants(StepPlan* p) {
  std::vector<const Tensor*> argv;
  for (OpNode& op : p->ops) {
    if (!op.live || op.islot >= 0 || op.sslot >= 0 || op.fslot >= 0) continue;
    bool all_const = !op.args.empty();
    for (int a : op.args) {
      all_const &= p->values[a].origin == ValueInfo::Origin::kConst;
    }
    if (!all_const) continue;
    ValueInfo& out = p->values[op.out];
    HYBRIDGNN_CHECK(!out.requires_grad) << "const-arg op requires grad";
    argv.clear();
    for (int a : op.args) argv.push_back(&p->values[a].const_value);
    Tensor result = Tensor::Uninit(out.rows, out.cols);
    detail::EvalValueOp(op, argv, &result);
    out.origin = ValueInfo::Origin::kConst;
    out.const_value = std::move(result);
    out.def = -1;
    op.live = false;
    ++p->stats.folded;
  }
}

void EliminateDeadGrads(StepPlan* p, const PassOptions& opts) {
  if (opts.frozen.empty()) return;
  for (ValueInfo& v : p->values) {
    if (v.origin == ValueInfo::Origin::kParam &&
        opts.frozen.count(v.leaf.get()) > 0) {
      v.requires_grad = false;
    }
  }
  // Creation order is topological: recompute effective trainability exactly
  // as eager MakeOp would have with the frozen leaves non-trainable.
  for (const OpNode& op : p->ops) {
    if (!op.live) continue;
    bool req = false;
    for (int a : op.args) req |= p->values[a].requires_grad;
    ValueInfo& out = p->values[op.out];
    if (out.requires_grad && !req) ++p->stats.dead_grad_elided;
    out.requires_grad = req;
  }
}

void FuseElementwise(StepPlan* p) {
  // Forward-use counts (+1 for the root, which is read after the step).
  std::vector<int> uses(p->values.size(), 0);
  std::vector<int> consumer(p->values.size(), -1);
  for (size_t oi = 0; oi < p->ops.size(); ++oi) {
    if (!p->ops[oi].live) continue;
    for (int a : p->ops[oi].args) {
      ++uses[a];
      consumer[a] = static_cast<int>(oi);
    }
  }
  ++uses[p->root];

  std::vector<uint8_t> absorbed(p->ops.size(), 0);
  for (size_t oi = 0; oi < p->ops.size(); ++oi) {
    OpNode& head = p->ops[oi];
    if (!head.live || absorbed[oi] || !IsEwStageOp(head.kind)) continue;
    // Only start at a true chain head: if head's input is itself a fusable
    // single-consumer op result, head will be absorbed from that head.
    const ValueInfo& in = p->values[head.args[0]];
    if (in.def >= 0 && p->ops[in.def].live && IsEwStageOp(p->ops[in.def].kind) &&
        uses[head.args[0]] == 1) {
      continue;
    }
    std::vector<int> chain{static_cast<int>(oi)};
    int cur = static_cast<int>(oi);
    while (chain.size() < kernels::kMaxEwStages) {
      const int out = p->ops[cur].out;
      if (uses[out] != 1 || out == p->root) break;
      const int next = consumer[out];
      if (next < 0 || !p->ops[next].live || !IsEwStageOp(p->ops[next].kind)) {
        break;
      }
      chain.push_back(next);
      cur = next;
    }
    if (chain.size() < 2) continue;
    // The last op becomes the fused kernel call (keeping its creation-order
    // slot in the schedule); everything before it is absorbed.
    OpNode& last = p->ops[chain.back()];
    std::vector<kernels::EwStage> stages;
    stages.reserve(chain.size());
    for (int ci : chain) stages.push_back(StageFor(p->ops[ci]));
    last.kind = OpKind::kEwChain;
    last.stages = std::move(stages);
    last.alpha = 0.0f;
    last.args = {head.args[0]};
    for (size_t k = 0; k + 1 < chain.size(); ++k) {
      OpNode& dead = p->ops[chain[k]];
      dead.live = false;
      absorbed[chain[k]] = 1;
      ValueInfo& dv = p->values[dead.out];
      dv.dead = true;
      dv.requires_grad = false;
      dv.def = -1;
    }
    ++p->stats.fused_chains;
    p->stats.fused_ops += chain.size();
  }
}

void BuildBackwardOrder(StepPlan* p) {
  p->backward_order.clear();
  for (OpNode& op : p->ops) op.in_backward = false;
  p->train = p->values[p->root].requires_grad;
  if (!p->train) return;
  // Mirror eager Backward's iterative post-order DFS exactly: children
  // (args) visited in order, only grad-tracked op values enter the order,
  // then the order is walked in reverse. This is what keeps multi-consumer
  // gradient accumulation in the same sequence as eager — and therefore
  // bit-identical.
  const int root_op = p->values[p->root].def;
  std::vector<uint8_t> mark(p->ops.size(), 0);
  std::vector<int> order;
  std::vector<std::pair<int, uint32_t>> stack;
  stack.emplace_back(root_op, 0);
  mark[root_op] = 1;
  while (!stack.empty()) {
    auto& [oi, next] = stack.back();
    const OpNode& op = p->ops[oi];
    if (next < op.args.size()) {
      const int vid = op.args[next];
      ++next;
      const ValueInfo& v = p->values[vid];
      if (v.def >= 0 && v.requires_grad && !mark[v.def]) {
        mark[v.def] = 1;
        stack.emplace_back(v.def, 0);
      }
    } else {
      order.push_back(oi);
      stack.pop_back();
    }
  }
  p->backward_order.assign(order.rbegin(), order.rend());
  for (int oi : p->backward_order) p->ops[oi].in_backward = true;
}

void ComputePins(StepPlan* p) {
  for (ValueInfo& v : p->values) v.pinned = false;
  p->values[p->root].pinned = true;
  for (int oi : p->backward_order) {
    const OpNode& op = p->ops[oi];
    switch (op.kind) {
      // Backward reads the argument values.
      case OpKind::kMatMul:
      case OpKind::kMul:
      case OpKind::kRowwiseDot:
        for (int a : op.args) p->values[a].pinned = true;
        break;
      case OpKind::kRelu:
      case OpKind::kLogSigmoid:
      case OpKind::kBceWithLogits:
      case OpKind::kEwChain:
        p->values[op.args[0]].pinned = true;
        break;
      // Backward reads the op's own output.
      case OpKind::kSigmoid:
      case OpKind::kTanh:
      case OpKind::kSoftmaxRows:
        p->values[op.out].pinned = true;
        break;
      // Everything else reads only gradients, shapes, or bound arrays.
      default:
        break;
    }
  }
}

bool InplaceEligibleKind(OpKind k) {
  switch (k) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kAddRowBroadcast:
    case OpKind::kScale:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kRelu:
    case OpKind::kLogSigmoid:
    case OpKind::kEwChain:
      return true;
    default:
      return false;
  }
}

void PlanBuffers(StepPlan* p, bool inplace) {
  for (ValueInfo& v : p->values) v.last_use = -1;
  for (int oi : p->schedule) {
    for (int a : p->ops[oi].args) p->values[a].last_use = oi;
  }
  p->num_buffers = 0;
  p->buffer_shapes.clear();
  for (int oi : p->schedule) {
    OpNode& op = p->ops[oi];
    ValueInfo& out = p->values[op.out];
    op.donor = -1;
    if (inplace && InplaceEligibleKind(op.kind)) {
      // AddRowBroadcast's bias (arg1) has a different shape; for the
      // two-input elementwise ops either arg can donate.
      const size_t cand = (op.kind == OpKind::kAdd || op.kind == OpKind::kSub ||
                           op.kind == OpKind::kMul)
                              ? op.args.size()
                              : 1;
      for (size_t pos = 0; pos < cand; ++pos) {
        const ValueInfo& av = p->values[op.args[pos]];
        if (av.origin == ValueInfo::Origin::kOp && !av.pinned && !av.dead &&
            av.buffer >= 0 && av.rows == out.rows && av.cols == out.cols &&
            av.last_use == oi) {
          op.donor = static_cast<int>(pos);
          break;
        }
      }
    }
    if (op.donor >= 0) {
      out.buffer = p->values[op.args[op.donor]].buffer;
      ++p->stats.inplaced;
    } else {
      out.buffer = static_cast<int>(p->num_buffers++);
      p->buffer_shapes.emplace_back(out.rows, out.cols);
    }
  }
}

}  // namespace

void RunPasses(StepPlan* p, const PassOptions& opts) {
  HYBRIDGNN_CHECK(p->root >= 0 && p->values[p->root].def >= 0)
      << "RunPasses: plan has no traced root";
  if (opts.fold_constants) FoldConstants(p);
  if (opts.dead_grad_elim) EliminateDeadGrads(p, opts);
  if (opts.fuse_elementwise) FuseElementwise(p);
  p->schedule.clear();
  for (size_t oi = 0; oi < p->ops.size(); ++oi) {
    if (p->ops[oi].live) p->schedule.push_back(static_cast<int>(oi));
  }
  BuildBackwardOrder(p);
  ComputePins(p);
  PlanBuffers(p, opts.inplace);
  PassStats& st = p->stats;
  st.passes_applied = static_cast<size_t>(st.folded > 0) +
                      static_cast<size_t>(st.fused_chains > 0) +
                      static_cast<size_t>(st.dead_grad_elided > 0) +
                      static_cast<size_t>(st.inplaced > 0);
}

}  // namespace hybridgnn::plan
