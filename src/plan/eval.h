#ifndef HYBRIDGNN_PLAN_EVAL_H_
#define HYBRIDGNN_PLAN_EVAL_H_

#include <span>

#include "plan/plan.h"
#include "tensor/tensor.h"

// Internal to src/plan: shared between the constant-folding pass and the
// step executor so a folded op and a replayed op compute the same bits.
namespace hybridgnn::plan::detail {

/// True for op kinds whose forward reads only its tensor args (no bound
/// index/segment/target slots); exactly the set EvalValueOp handles.
bool IsSlotlessValueOp(OpKind kind);

/// Evaluates a slotless op into `out` (pre-shaped to the op's result shape),
/// replicating the eager op's arithmetic bit for bit. For elementwise kinds
/// `out` may alias args[0] (the inplacing pass relies on this).
void EvalValueOp(const OpNode& op, std::span<const Tensor* const> args,
                 Tensor* out);

}  // namespace hybridgnn::plan::detail

#endif  // HYBRIDGNN_PLAN_EVAL_H_
