// CompiledStep: replays an optimized StepPlan with zero per-step graph
// construction. Every forward case and every backward case below replicates
// the corresponding eager op / backward-closure body in tensor/autograd.cc
// (and nn/sparse.cc for the segment ops) loop for loop, so a replayed step
// is bit-identical to the eager step it was traced from. When editing an
// eager closure, update the mirror here and let tests/plan_test.cc prove the
// bits still match.
#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "kernels/kernels.h"
#include "nn/sparse_grads.h"
#include "obs/metrics.h"
#include "plan/eval.h"
#include "plan/plan.h"
#include "tensor/pool.h"
#include "tensor/tensor_ops.h"

namespace hybridgnn::plan {

namespace detail {

bool IsSlotlessValueOp(OpKind kind) {
  switch (kind) {
    case OpKind::kMatMul:
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kAddRowBroadcast:
    case OpKind::kScale:
    case OpKind::kTranspose:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kRelu:
    case OpKind::kLogSigmoid:
    case OpKind::kSoftmaxRows:
    case OpKind::kRowwiseDot:
    case OpKind::kMeanRows:
    case OpKind::kSumRows:
    case OpKind::kMeanAll:
    case OpKind::kSumAll:
    case OpKind::kConcatRows:
    case OpKind::kConcatCols:
    case OpKind::kSliceRows:
    case OpKind::kEwChain:
      return true;
    default:
      return false;
  }
}

void EvalValueOp(const OpNode& op, std::span<const Tensor* const> args,
                 Tensor* out) {
  switch (op.kind) {
    case OpKind::kMatMul:
      MatMulInto(*args[0], *args[1], out);
      break;
    case OpKind::kAdd:
      AddInto(*args[0], *args[1], out);
      break;
    case OpKind::kSub:
      SubInto(*args[0], *args[1], out);
      break;
    case OpKind::kMul:
      MulInto(*args[0], *args[1], out);
      break;
    case OpKind::kAddRowBroadcast:
      AddRowBroadcastInto(*args[0], *args[1], out);
      break;
    case OpKind::kScale:
      ScaleInto(*args[0], op.alpha, out);
      break;
    case OpKind::kTranspose:
      TransposeInto(*args[0], out);
      break;
    case OpKind::kSigmoid:
      SigmoidInto(*args[0], out);
      break;
    case OpKind::kTanh:
      TanhInto(*args[0], out);
      break;
    case OpKind::kRelu:
      ReluInto(*args[0], out);
      break;
    case OpKind::kLogSigmoid:
      LogSigmoidInto(*args[0], out);
      break;
    case OpKind::kSoftmaxRows:
      SoftmaxRowsInto(*args[0], out);
      break;
    case OpKind::kRowwiseDot:
      RowwiseDotInto(*args[0], *args[1], out);
      break;
    case OpKind::kMeanRows:
      MeanRowsInto(*args[0], out);
      break;
    case OpKind::kSumRows:
      SumRowsInto(*args[0], out);
      break;
    case OpKind::kMeanAll: {
      // Exact eager expression: float(Sum()) * (1/size), both in float.
      const float inv = 1.0f / static_cast<float>(args[0]->size());
      out->At(0, 0) = static_cast<float>(args[0]->Sum()) * inv;
      break;
    }
    case OpKind::kSumAll:
      out->At(0, 0) = static_cast<float>(args[0]->Sum());
      break;
    case OpKind::kConcatRows: {
      size_t at = 0;
      for (const Tensor* part : args) {
        std::memcpy(out->RowPtr(at), part->data(),
                    part->size() * sizeof(float));
        at += part->rows();
      }
      break;
    }
    case OpKind::kConcatCols: {
      for (size_t i = 0; i < out->rows(); ++i) {
        size_t at = 0;
        for (const Tensor* part : args) {
          std::memcpy(out->RowPtr(i) + at, part->RowPtr(i),
                      part->cols() * sizeof(float));
          at += part->cols();
        }
      }
      break;
    }
    case OpKind::kSliceRows:
      std::memcpy(out->data(), args[0]->RowPtr(op.start),
                  out->size() * sizeof(float));
      break;
    case OpKind::kEwChain:
      kernels::EwChainForward(op.stages.data(), op.stages.size(),
                              args[0]->data(), out->data(), out->size());
      break;
    default:
      HYBRIDGNN_CHECK(false)
          << "EvalValueOp: unsupported op " << ag::OpKindName(op.kind);
  }
}

}  // namespace detail

// Per-replay execution state. Buffers are shaped once at frame construction;
// every later replay reuses them, so a warm frame executes with zero heap
// traffic (pool hits only).
struct CompiledStep::Frame {
  std::vector<Tensor> bufs;       // one per planned buffer
  std::vector<Tensor> grads;      // per value id, lazily shaped
  std::vector<uint8_t> grad_set;  // per value id: grads[v] holds this replay
  std::vector<std::vector<int32_t>> i32;   // bound index arrays
  std::vector<std::vector<size_t>> szs;    // bound indptr arrays
  std::vector<std::vector<float>> f32;     // bound float arrays (targets)
  std::vector<std::vector<uint32_t>> amax; // SegmentMax argmax scratch
};

// The backward context installed on the replay's single fat op node: invoking
// it replays the compiled backward order, and its destruction (tape rewind or
// drop of an inference-only node) returns the frame to the freelist.
struct FatOpCtx {
  CompiledStep* step;
  CompiledStep::Frame* frame;

  FatOpCtx(CompiledStep* s, CompiledStep::Frame* f) : step(s), frame(f) {}
  FatOpCtx(FatOpCtx&& o) noexcept : step(o.step), frame(o.frame) {
    o.frame = nullptr;
  }
  FatOpCtx(const FatOpCtx&) = delete;
  FatOpCtx& operator=(const FatOpCtx&) = delete;
  FatOpCtx& operator=(FatOpCtx&&) = delete;
  ~FatOpCtx() {
    if (frame != nullptr) step->ReleaseFrame(frame);
  }

  void operator()(ag::Node& n) { step->RunBackward(*frame, n.grad); }
};

CompiledStep::CompiledStep(StepPlan plan, std::vector<ag::Var> params)
    : plan_(std::move(plan)), params_(std::move(params)) {}

CompiledStep::~CompiledStep() = default;

CompiledStep::Frame* CompiledStep::AcquireFrame() {
  if (!free_frames_.empty()) {
    Frame* f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  auto owned = std::make_unique<Frame>();
  Frame* f = owned.get();
  f->bufs.reserve(plan_.num_buffers);
  for (const auto& [r, c] : plan_.buffer_shapes) {
    f->bufs.push_back(Tensor::Uninit(r, c));
  }
  f->grads.resize(plan_.values.size());
  f->grad_set.assign(plan_.values.size(), 0);
  f->i32.resize(plan_.num_islots);
  f->szs.resize(plan_.num_sslots);
  f->f32.resize(plan_.num_fslots);
  f->amax.resize(plan_.num_amax);
  all_frames_.push_back(std::move(owned));
  return f;
}

void CompiledStep::ReleaseFrame(Frame* f) { free_frames_.push_back(f); }

const Tensor& CompiledStep::Val(Frame& f, int vid) const {
  const ValueInfo& v = plan_.values[vid];
  switch (v.origin) {
    case ValueInfo::Origin::kParam:
      return v.leaf->value;
    case ValueInfo::Origin::kConst:
      return v.const_value;
    case ValueInfo::Origin::kOp:
      break;
  }
  return f.bufs[v.buffer];
}

void CompiledStep::Bind(const StepInputs& in, Frame* f) {
  HYBRIDGNN_CHECK(in.i32.size() == plan_.num_islots &&
                  in.szs.size() == plan_.num_sslots &&
                  in.f32.size() == plan_.num_fslots)
      << "plan Bind: got " << in.i32.size() << "/" << in.szs.size() << "/"
      << in.f32.size() << " bound arrays, plan has " << plan_.num_islots
      << "/" << plan_.num_sslots << "/" << plan_.num_fslots
      << "; step structure changed — retrace";
  for (int oi : plan_.schedule) {
    const OpNode& op = plan_.ops[oi];
    if (op.islot >= 0) {
      HYBRIDGNN_CHECK(in.i32[op.islot].size() == op.islot_len)
          << "plan Bind: index array " << op.islot << " has "
          << in.i32[op.islot].size() << " entries, plan recorded "
          << op.islot_len << "; shape signature changed — retrace";
      f->i32[op.islot].assign(in.i32[op.islot].begin(),
                              in.i32[op.islot].end());
    }
    if (op.sslot >= 0) {
      HYBRIDGNN_CHECK(in.szs[op.sslot].size() == op.sslot_len)
          << "plan Bind: indptr array " << op.sslot << " has "
          << in.szs[op.sslot].size() << " entries, plan recorded "
          << op.sslot_len << "; shape signature changed — retrace";
      f->szs[op.sslot].assign(in.szs[op.sslot].begin(),
                              in.szs[op.sslot].end());
    }
    if (op.fslot >= 0) {
      HYBRIDGNN_CHECK(in.f32[op.fslot].size() == op.fslot_len)
          << "plan Bind: float array " << op.fslot << " has "
          << in.f32[op.fslot].size() << " entries, plan recorded "
          << op.fslot_len << "; shape signature changed — retrace";
      f->f32[op.fslot].assign(in.f32[op.fslot].begin(),
                              in.f32[op.fslot].end());
    }
  }
}

void CompiledStep::RunForward(Frame& f) {
  for (int oi : plan_.schedule) {
    const OpNode& op = plan_.ops[oi];
    Tensor& out = f.bufs[plan_.values[op.out].buffer];
    switch (op.kind) {
      case OpKind::kGatherRows:
      case OpKind::kGatherRowsSegmented: {
        const std::vector<int32_t>& idx = f.i32[op.islot];
        GatherRowsInto(Val(f, op.args[0]),
                       std::span<const int32_t>(idx.data(), idx.size()),
                       &out);
        break;
      }
      case OpKind::kSegmentSum:
      case OpKind::kSegmentMean: {
        const Tensor& x = Val(f, op.args[0]);
        const std::vector<size_t>& indptr = f.szs[op.sslot];
        const size_t segs = indptr.size() - 1;
        if (segs > 0) {
          auto* kernel = op.kind == OpKind::kSegmentSum
                             ? kernels::SegmentSum
                             : kernels::SegmentMean;
          kernel(x.rows() > 0 ? x.RowPtr(0) : nullptr, x.cols(),
                 indptr.data(), segs, out.RowPtr(0));
        }
        break;
      }
      case OpKind::kSegmentMax: {
        const Tensor& x = Val(f, op.args[0]);
        const std::vector<size_t>& indptr = f.szs[op.sslot];
        const size_t segs = indptr.size() - 1;
        std::vector<uint32_t>& amax = f.amax[op.amax];
        amax.resize(segs * x.cols());
        if (segs > 0) {
          kernels::SegmentMax(x.rows() > 0 ? x.RowPtr(0) : nullptr, x.cols(),
                              indptr.data(), segs, out.RowPtr(0),
                              amax.data());
        }
        break;
      }
      case OpKind::kBceWithLogits: {
        // Exact eager loss: per-row stable BCE summed in double, one final
        // float rounding.
        const Tensor& logits = Val(f, op.args[0]);
        const std::vector<float>& tgt = f.f32[op.fslot];
        double loss = 0.0;
        for (size_t i = 0; i < tgt.size(); ++i) {
          const float x = logits.At(i, 0);
          const float y = tgt[i];
          loss += std::max(x, 0.0f) - x * y +
                  std::log1p(std::exp(-std::abs(x)));
        }
        out.At(0, 0) =
            static_cast<float>(loss / static_cast<double>(tgt.size()));
        break;
      }
      default: {
        argv_.clear();
        for (int a : op.args) argv_.push_back(&Val(f, a));
        detail::EvalValueOp(
            op, std::span<const Tensor* const>(argv_.data(), argv_.size()),
            &out);
        break;
      }
    }
  }
}

void CompiledStep::Accum(Frame& f, int vid, const Tensor& contrib) {
  const ValueInfo& v = plan_.values[vid];
  if (!v.requires_grad) return;
  if (v.origin == ValueInfo::Origin::kParam) {
    // Same entry point the eager closures hit: diverts to the thread's
    // GradSinkScope for shared trainable leaves, copy-first otherwise.
    v.leaf->AccumulateGrad(contrib);
    return;
  }
  Tensor& g = f.grads[vid];
  if (!f.grad_set[vid]) {
    if (g.empty()) g = Tensor::Uninit(v.rows, v.cols);
    std::memcpy(g.data(), contrib.data(), contrib.size() * sizeof(float));
    f.grad_set[vid] = 1;
  } else {
    g.AddInPlace(contrib);
  }
}

void CompiledStep::RunBackward(Frame& f, const Tensor& root_grad) {
  const uint64_t before = pool::MissBytes() + ag::Tape::TotalReservedBytes();
  std::fill(f.grad_set.begin(), f.grad_set.end(), 0);
  Accum(f, plan_.root, root_grad);

  for (int oi : plan_.backward_order) {
    const OpNode& op = plan_.ops[oi];
    // Mirrors eager Backward's `if (!node->grad.empty())` guard: an op whose
    // output never received gradient contributes nothing.
    if (!f.grad_set[op.out]) continue;
    const Tensor& G = f.grads[op.out];
    auto req = [&](int vid) { return plan_.values[vid].requires_grad; };
    switch (op.kind) {
      case OpKind::kMatMul: {
        if (req(op.args[0])) {
          Accum(f, op.args[0], MatMulTransB(G, Val(f, op.args[1])));
        }
        if (req(op.args[1])) {
          Accum(f, op.args[1], MatMulTransA(Val(f, op.args[0]), G));
        }
        break;
      }
      case OpKind::kAdd:
        if (req(op.args[0])) Accum(f, op.args[0], G);
        if (req(op.args[1])) Accum(f, op.args[1], G);
        break;
      case OpKind::kSub:
        if (req(op.args[0])) Accum(f, op.args[0], G);
        if (req(op.args[1])) {
          Accum(f, op.args[1], hybridgnn::Scale(G, -1.0f));
        }
        break;
      case OpKind::kMul:
        if (req(op.args[0])) {
          Accum(f, op.args[0], hybridgnn::Mul(G, Val(f, op.args[1])));
        }
        if (req(op.args[1])) {
          Accum(f, op.args[1], hybridgnn::Mul(G, Val(f, op.args[0])));
        }
        break;
      case OpKind::kAddRowBroadcast:
        if (req(op.args[0])) Accum(f, op.args[0], G);
        if (req(op.args[1])) Accum(f, op.args[1], hybridgnn::SumRows(G));
        break;
      case OpKind::kScale:
        if (req(op.args[0])) {
          Accum(f, op.args[0], hybridgnn::Scale(G, op.alpha));
        }
        break;
      case OpKind::kTranspose:
        if (req(op.args[0])) Accum(f, op.args[0], hybridgnn::Transpose(G));
        break;
      case OpKind::kSigmoid: {
        if (!req(op.args[0])) break;
        const Tensor& s = Val(f, op.out);
        Tensor da = Tensor::Uninit(G.rows(), G.cols());
        const float* g = G.data();
        const float* sv = s.data();
        float* d = da.data();
        for (size_t i = 0; i < da.size(); ++i) {
          d[i] = g[i] * sv[i] * (1.0f - sv[i]);
        }
        Accum(f, op.args[0], da);
        break;
      }
      case OpKind::kTanh: {
        if (!req(op.args[0])) break;
        const Tensor& t = Val(f, op.out);
        Tensor da = Tensor::Uninit(G.rows(), G.cols());
        const float* g = G.data();
        const float* tv = t.data();
        float* d = da.data();
        for (size_t i = 0; i < da.size(); ++i) {
          d[i] = g[i] * (1.0f - tv[i] * tv[i]);
        }
        Accum(f, op.args[0], da);
        break;
      }
      case OpKind::kRelu: {
        if (!req(op.args[0])) break;
        const Tensor& xv = Val(f, op.args[0]);
        Tensor da = Tensor::Uninit(G.rows(), G.cols());
        const float* g = G.data();
        const float* x = xv.data();
        float* d = da.data();
        for (size_t i = 0; i < da.size(); ++i) {
          d[i] = x[i] > 0.0f ? g[i] : 0.0f;
        }
        Accum(f, op.args[0], da);
        break;
      }
      case OpKind::kLogSigmoid: {
        if (!req(op.args[0])) break;
        const Tensor& xv = Val(f, op.args[0]);
        Tensor da = Tensor::Uninit(G.rows(), G.cols());
        const float* g = G.data();
        const float* x = xv.data();
        float* d = da.data();
        for (size_t i = 0; i < da.size(); ++i) {
          d[i] = g[i] / (1.0f + std::exp(x[i]));
        }
        Accum(f, op.args[0], da);
        break;
      }
      case OpKind::kSoftmaxRows: {
        if (!req(op.args[0])) break;
        const Tensor& s = Val(f, op.out);
        Tensor da = Tensor::Uninit(G.rows(), G.cols());
        for (size_t i = 0; i < G.rows(); ++i) {
          const float* g = G.RowPtr(i);
          const float* sr = s.RowPtr(i);
          float dot = 0.0f;
          for (size_t j = 0; j < G.cols(); ++j) dot += g[j] * sr[j];
          float* d = da.RowPtr(i);
          for (size_t j = 0; j < G.cols(); ++j) d[j] = sr[j] * (g[j] - dot);
        }
        Accum(f, op.args[0], da);
        break;
      }
      case OpKind::kRowwiseDot: {
        auto scatter = [&](int dst, int other) {
          const ValueInfo& dv = plan_.values[dst];
          const Tensor& ov = Val(f, other);
          Tensor d = Tensor::Uninit(dv.rows, dv.cols);
          for (size_t i = 0; i < d.rows(); ++i) {
            const float gi = G.At(i, 0);
            const float* o = ov.RowPtr(i);
            float* dr = d.RowPtr(i);
            for (size_t j = 0; j < d.cols(); ++j) dr[j] = gi * o[j];
          }
          Accum(f, dst, d);
        };
        if (req(op.args[0])) scatter(op.args[0], op.args[1]);
        if (req(op.args[1])) scatter(op.args[1], op.args[0]);
        break;
      }
      case OpKind::kMeanRows: {
        if (!req(op.args[0])) break;
        const ValueInfo& av = plan_.values[op.args[0]];
        const float inv = 1.0f / static_cast<float>(av.rows);
        Tensor da = Tensor::Uninit(av.rows, av.cols);
        const float* g = G.RowPtr(0);
        for (size_t i = 0; i < da.rows(); ++i) {
          float* d = da.RowPtr(i);
          for (size_t j = 0; j < da.cols(); ++j) d[j] = g[j] * inv;
        }
        Accum(f, op.args[0], da);
        break;
      }
      case OpKind::kSumRows: {
        if (!req(op.args[0])) break;
        const ValueInfo& av = plan_.values[op.args[0]];
        Tensor da = Tensor::Uninit(av.rows, av.cols);
        const float* g = G.RowPtr(0);
        for (size_t i = 0; i < da.rows(); ++i) {
          float* d = da.RowPtr(i);
          for (size_t j = 0; j < da.cols(); ++j) d[j] = g[j];
        }
        Accum(f, op.args[0], da);
        break;
      }
      case OpKind::kMeanAll: {
        if (!req(op.args[0])) break;
        const ValueInfo& av = plan_.values[op.args[0]];
        const float inv =
            1.0f / static_cast<float>(av.rows * av.cols);
        Accum(f, op.args[0],
              Tensor::Full(av.rows, av.cols, G.At(0, 0) * inv));
        break;
      }
      case OpKind::kSumAll: {
        if (!req(op.args[0])) break;
        const ValueInfo& av = plan_.values[op.args[0]];
        Accum(f, op.args[0], Tensor::Full(av.rows, av.cols, G.At(0, 0)));
        break;
      }
      case OpKind::kConcatRows: {
        size_t at = 0;
        for (int a : op.args) {
          const ValueInfo& pv = plan_.values[a];
          if (req(a)) {
            Tensor slice = Tensor::Uninit(pv.rows, pv.cols);
            std::memcpy(slice.data(), G.RowPtr(at),
                        slice.size() * sizeof(float));
            Accum(f, a, slice);
          }
          at += pv.rows;
        }
        break;
      }
      case OpKind::kConcatCols: {
        size_t at = 0;
        for (int a : op.args) {
          const ValueInfo& pv = plan_.values[a];
          if (req(a)) {
            Tensor slice = Tensor::Uninit(pv.rows, pv.cols);
            for (size_t r = 0; r < slice.rows(); ++r) {
              std::memcpy(slice.RowPtr(r), G.RowPtr(r) + at,
                          pv.cols * sizeof(float));
            }
            Accum(f, a, slice);
          }
          at += pv.cols;
        }
        break;
      }
      case OpKind::kSliceRows: {
        if (!req(op.args[0])) break;
        const ValueInfo& av = plan_.values[op.args[0]];
        // Zero-initialized: only the sliced rows carry gradient.
        Tensor da(av.rows, av.cols);
        std::memcpy(da.RowPtr(op.start), G.data(), G.size() * sizeof(float));
        Accum(f, op.args[0], da);
        break;
      }
      case OpKind::kGatherRows: {
        const ValueInfo& tv = plan_.values[op.args[0]];
        if (!tv.requires_grad) break;
        const std::vector<int32_t>& idx = f.i32[op.islot];
        // Zero-initialized: the scatter accumulates into touched rows only.
        Tensor dt(tv.rows, tv.cols);
        for (size_t i = 0; i < idx.size(); ++i) {
          const float* g = G.RowPtr(i);
          float* d = dt.RowPtr(static_cast<size_t>(idx[i]));
          for (size_t j = 0; j < dt.cols(); ++j) d[j] += g[j];
        }
        tv.leaf->AccumulateGrad(dt);
        break;
      }
      case OpKind::kGatherRowsSegmented: {
        const ValueInfo& tv = plan_.values[op.args[0]];
        if (!tv.requires_grad) break;
        const std::vector<size_t>& indptr = f.szs[op.sslot];
        sparse_detail::SegmentedScatterGradInto(
            G, f.i32[op.islot].data(), indptr.data(), indptr.size() - 1,
            &tv.leaf->GradAccumulator());
        break;
      }
      case OpKind::kSegmentSum:
      case OpKind::kSegmentMean: {
        if (!req(op.args[0])) break;
        const ValueInfo& av = plan_.values[op.args[0]];
        const std::vector<size_t>& indptr = f.szs[op.sslot];
        Tensor dx = Tensor::Uninit(av.rows, av.cols);
        if (op.kind == OpKind::kSegmentSum) {
          sparse_detail::SegmentSumGradInto(G, indptr.data(),
                                            indptr.size() - 1, &dx);
        } else {
          sparse_detail::SegmentMeanGradInto(G, indptr.data(),
                                             indptr.size() - 1, &dx);
        }
        Accum(f, op.args[0], dx);
        break;
      }
      case OpKind::kSegmentMax: {
        if (!req(op.args[0])) break;
        const ValueInfo& av = plan_.values[op.args[0]];
        const std::vector<size_t>& indptr = f.szs[op.sslot];
        Tensor dx = Tensor::Uninit(av.rows, av.cols);
        sparse_detail::SegmentMaxGradInto(G, f.amax[op.amax].data(),
                                          indptr.size() - 1, &dx);
        Accum(f, op.args[0], dx);
        break;
      }
      case OpKind::kBceWithLogits: {
        if (!req(op.args[0])) break;
        const Tensor& logits = Val(f, op.args[0]);
        const std::vector<float>& tgt = f.f32[op.fslot];
        const float scale = G.At(0, 0) / static_cast<float>(tgt.size());
        Tensor d = Tensor::Uninit(tgt.size(), 1);
        for (size_t i = 0; i < tgt.size(); ++i) {
          const float x = logits.At(i, 0);
          const float s = 1.0f / (1.0f + std::exp(-x));
          d.At(i, 0) = scale * (s - tgt[i]);
        }
        Accum(f, op.args[0], d);
        break;
      }
      case OpKind::kEwChain: {
        if (!req(op.args[0])) break;
        const Tensor& xv = Val(f, op.args[0]);
        Tensor dx = Tensor::Uninit(G.rows(), G.cols());
        kernels::EwChainBackward(op.stages.data(), op.stages.size(),
                                 xv.data(), G.data(), dx.data(), dx.size());
        Accum(f, op.args[0], dx);
        break;
      }
      default:
        HYBRIDGNN_CHECK(false) << "compiled backward: unsupported op "
                               << ag::OpKindName(op.kind);
    }
  }

  const uint64_t delta =
      pool::MissBytes() + ag::Tape::TotalReservedBytes() - before;
  static obs::Gauge& alloc_gauge =
      obs::GlobalRegistry().GetGauge("plan/replay_alloc_bytes");
  alloc_gauge.Set(static_cast<double>(fwd_alloc_bytes_ + delta));
}

ag::Var CompiledStep::ReplayTrain(const StepInputs& in) {
  HYBRIDGNN_CHECK(ag::Tape::Current() != nullptr)
      << "CompiledStep::ReplayTrain requires an active ag::TapeScope";
  Frame* f = AcquireFrame();
  const uint64_t before = pool::MissBytes() + ag::Tape::TotalReservedBytes();
  Bind(in, f);
  RunForward(*f);
  fwd_alloc_bytes_ =
      pool::MissBytes() + ag::Tape::TotalReservedBytes() - before;
  static obs::Counter& replays =
      obs::GlobalRegistry().GetCounter("plan/replays");
  replays.Add(1);
  Tensor out = f->bufs[plan_.values[plan_.root].buffer];
  if (!plan_.train) {
    ReleaseFrame(f);
    static obs::Gauge& alloc_gauge =
        obs::GlobalRegistry().GetGauge("plan/replay_alloc_bytes");
    alloc_gauge.Set(static_cast<double>(fwd_alloc_bytes_));
    return ag::Constant(std::move(out));
  }
  return ag::MakeOp(std::move(out), std::span<const ag::Var>(params_),
                    FatOpCtx(this, f));
}

Tensor CompiledStep::ReplayInfer(const StepInputs& in) {
  Frame* f = AcquireFrame();
  const uint64_t before = pool::MissBytes() + ag::Tape::TotalReservedBytes();
  Bind(in, f);
  RunForward(*f);
  fwd_alloc_bytes_ =
      pool::MissBytes() + ag::Tape::TotalReservedBytes() - before;
  static obs::Counter& replays =
      obs::GlobalRegistry().GetCounter("plan/replays");
  replays.Add(1);
  static obs::Gauge& alloc_gauge =
      obs::GlobalRegistry().GetGauge("plan/replay_alloc_bytes");
  alloc_gauge.Set(static_cast<double>(fwd_alloc_bytes_));
  Tensor out = f->bufs[plan_.values[plan_.root].buffer];
  ReleaseFrame(f);
  return out;
}

}  // namespace hybridgnn::plan
