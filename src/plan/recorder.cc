#include <chrono>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "plan/plan.h"

namespace hybridgnn::plan {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Recorder::Recorder() : tape_(ag::Tape::Current()), start_ns_(NowNs()) {
  HYBRIDGNN_CHECK(tape_ != nullptr)
      << "plan::Recorder requires an active ag::TapeScope";
  HYBRIDGNN_CHECK(ag::CurrentTraceSink() == nullptr)
      << "plan::Recorder: a trace sink is already installed on this thread";
  baseline_handles_ = tape_->live_handles();
  prev_ = ag::SetTraceSink(this);
  installed_ = true;
}

Recorder::~Recorder() {
  if (installed_) {
    ag::SetTraceSink(prev_);
    installed_ = false;
  }
}

void Recorder::Poison(const std::string& why) {
  if (poison_reason_.empty()) poison_reason_ = why;
}

void Recorder::OnNodeCreated(ag::Node* node) {
  if (poisoned()) return;
  if (unclaimed_ != nullptr) {
    // The previous node was never annotated by a typed wrapper: a raw
    // ag::MakeOp (e.g. SpMM) whose semantics the plan cannot replay.
    Poison("un-annotated op (raw MakeOp) in traced step");
    return;
  }
  unclaimed_ = node;
}

int Recorder::RegisterParent(const ag::Var& p) {
  auto it = ids_.find(p.get());
  if (it != ids_.end()) return it->second;
  ag::Node* n = p.get();
  const int id = static_cast<int>(plan_.values.size());
  ValueInfo v;
  v.rows = n->value.rows();
  v.cols = n->value.cols();
  if (n->requires_grad && !n->has_backward()) {
    // Trainable leaf (Param): replay reads/accumulates through the node.
    v.origin = ValueInfo::Origin::kParam;
    v.requires_grad = true;
    v.leaf = p;
  } else if (!n->requires_grad) {
    // Constant built outside the recording: snapshot its value at finalize.
    v.origin = ValueInfo::Origin::kConst;
  } else {
    Poison("traced op consumes a gradient-tracked value built outside the "
           "recording");
    return -1;
  }
  plan_.values.push_back(std::move(v));
  nodes_.push_back(n);
  ids_.emplace(n, id);
  return id;
}

void Recorder::OnOp(OpKind kind, const ag::Var& result,
                    std::span<const ag::Var> parents,
                    const ag::OpAttrs& attrs) {
  if (poisoned()) {
    unclaimed_ = nullptr;
    return;
  }
  if (result.get() != unclaimed_) {
    Poison("op annotation does not match the last created node");
    return;
  }
  unclaimed_ = nullptr;

  OpNode op;
  op.kind = kind;
  op.args.reserve(parents.size());
  for (const ag::Var& p : parents) {
    const int vid = RegisterParent(p);
    if (vid < 0) return;  // poisoned
    op.args.push_back(vid);
  }

  const int out = static_cast<int>(plan_.values.size());
  ValueInfo v;
  v.rows = result->value.rows();
  v.cols = result->value.cols();
  v.requires_grad = result->requires_grad;
  plan_.values.push_back(std::move(v));
  nodes_.push_back(result.get());
  ids_.emplace(result.get(), out);

  if (kind == OpKind::kConstant) {
    // A constant built inside the step: a leaf to the plan, snapshotted at
    // finalize. No OpNode — nothing to schedule.
    plan_.values[out].origin = ValueInfo::Origin::kConst;
    return;
  }

  plan_.values[out].def = static_cast<int>(plan_.ops.size());
  op.out = out;
  op.alpha = attrs.alpha;
  op.start = attrs.start;
  switch (kind) {
    case OpKind::kGatherRows:
    case OpKind::kGatherRowsSegmented:
      // Replay gathers straight from the parameter table; an interior
      // source would need its buffer pinned across the scatter backward,
      // which the executor does not model.
      if (plan_.values[op.args[0]].origin != ValueInfo::Origin::kParam) {
        Poison("gather source is not a parameter table");
        return;
      }
      op.islot = static_cast<int>(plan_.num_islots++);
      op.islot_len = attrs.indices.size();
      if (kind == OpKind::kGatherRowsSegmented) {
        op.sslot = static_cast<int>(plan_.num_sslots++);
        op.sslot_len = attrs.indptr.size();
      }
      break;
    case OpKind::kSegmentSum:
    case OpKind::kSegmentMean:
      op.sslot = static_cast<int>(plan_.num_sslots++);
      op.sslot_len = attrs.indptr.size();
      break;
    case OpKind::kSegmentMax:
      op.sslot = static_cast<int>(plan_.num_sslots++);
      op.sslot_len = attrs.indptr.size();
      op.amax = static_cast<int>(plan_.num_amax++);
      break;
    case OpKind::kBceWithLogits:
      op.fslot = static_cast<int>(plan_.num_fslots++);
      op.fslot_len = attrs.floats.size();
      break;
    default:
      break;
  }
  plan_.ops.push_back(std::move(op));
}

std::unique_ptr<CompiledStep> Recorder::Finalize(const ag::Var& root,
                                                 const PassOptions& opts) {
  HYBRIDGNN_CHECK(installed_ && ag::CurrentTraceSink() == this)
      << "plan::Recorder::Finalize called with a different sink installed";
  ag::SetTraceSink(prev_);
  installed_ = false;

  if (unclaimed_ != nullptr) {
    Poison("un-annotated op (raw MakeOp) in traced step");
    unclaimed_ = nullptr;
  }

  // Every tape Var handed out during the trace must be dead by now except
  // the root the caller passes in: the plan's executor replaces the graph,
  // and a surviving traced handle would dangle into rewound arena memory on
  // the very next step.
  HYBRIDGNN_CHECK(tape_->live_handles() == baseline_handles_ + 1)
      << "a traced ag::Var escaped past plan finalization (live tape handles "
      << tape_->live_handles() << ", expected " << (baseline_handles_ + 1)
      << "); drop every Var except the root before Finalize";

  auto& reg = obs::GlobalRegistry();
  if (!poisoned()) {
    auto it = ids_.find(root.get());
    if (it == ids_.end()) {
      Poison("root was not produced by the recording");
    } else if (plan_.values[it->second].def < 0) {
      Poison("root is a leaf, not a traced op");
    } else {
      plan_.root = it->second;
    }
  }
  if (poisoned()) {
    nodes_.clear();
    reg.GetCounter("plan/trace_poisoned").Add(1);
    return nullptr;
  }

  // Snapshot constants while the traced graph is still alive; after this,
  // the plan holds no pointers into the tape.
  std::vector<ag::Var> params;
  for (size_t i = 0; i < plan_.values.size(); ++i) {
    ValueInfo& v = plan_.values[i];
    if (v.origin == ValueInfo::Origin::kConst && v.const_value.empty()) {
      v.const_value = nodes_[i]->value;
    } else if (v.origin == ValueInfo::Origin::kParam) {
      params.push_back(v.leaf);
    }
  }
  nodes_.clear();

  RunPasses(&plan_, opts);

  const PassStats& st = plan_.stats;
  reg.GetCounter("plan/traces").Add(1);
  reg.GetCounter("plan/folded").Add(st.folded);
  reg.GetCounter("plan/fused_ops").Add(st.fused_ops);
  reg.GetCounter("plan/dead_grad_elided").Add(st.dead_grad_elided);
  reg.GetCounter("plan/inplaced").Add(st.inplaced);
  reg.GetCounter("plan/passes_applied").Add(st.passes_applied);
  reg.GetGauge("plan/trace_ms")
      .Set(static_cast<double>(NowNs() - start_ns_) / 1e6);

  return std::make_unique<CompiledStep>(std::move(plan_), std::move(params));
}

}  // namespace hybridgnn::plan
