#ifndef HYBRIDGNN_COMMON_RNG_H_
#define HYBRIDGNN_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hybridgnn {

/// Deterministic, fast pseudo-random number generator (xoshiro256**),
/// seeded via SplitMix64. All randomness in the library flows through
/// explicitly seeded Rng instances so experiments reproduce bit-for-bit.
///
/// Not cryptographically secure; statistical quality is more than sufficient
/// for sampling-based graph learning.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next 64 random bits.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless method (unbiased).
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal via Box-Muller.
  double Normal();
  /// Normal with given mean/stddev.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Returns a geometric-ish power-law degree sample in [1, max_value]:
  /// P(x) ~ x^(-alpha). Used by synthetic dataset generators.
  uint64_t PowerLaw(double alpha, uint64_t max_value);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Forks an independent child stream; children with distinct `stream_id`s
  /// are decorrelated from the parent and from each other. Useful for giving
  /// each worker thread its own reproducible stream.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t state_[4];
  // Cached second output of Box-Muller.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_COMMON_RNG_H_
