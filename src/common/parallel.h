#ifndef HYBRIDGNN_COMMON_PARALLEL_H_
#define HYBRIDGNN_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/threadpool.h"

// Annotates functions whose data races are *by design* (Hogwild-style
// lock-free SGD updates, Recht et al. 2011) so the ThreadSanitizer build
// (cmake -DHYBRIDGNN_TSAN=ON) does not flag them. Everything else in the
// library must be race-free under TSan.
#if defined(__SANITIZE_THREAD__)
#define HYBRIDGNN_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HYBRIDGNN_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#else
#define HYBRIDGNN_NO_SANITIZE_THREAD
#endif
#else
#define HYBRIDGNN_NO_SANITIZE_THREAD
#endif

namespace hybridgnn {

/// The library-wide default worker count, read from the HYBRIDGNN_THREADS
/// environment variable: unset or 1 -> 1 (serial, bit-identical to the
/// original single-threaded code paths); 0 -> hardware concurrency; any
/// other value is used as-is.
size_t DefaultNumThreads();

/// Maps a `num_threads` knob to an effective worker count: 0 defers to
/// DefaultNumThreads(); anything else is returned unchanged.
size_t ResolveNumThreads(size_t requested);

/// Runs fn(i) for i in [0, n). With `num_threads <= 1` (after resolution
/// via ResolveNumThreads) the loop runs inline on the calling thread in
/// index order; otherwise a transient ThreadPool executes iterations
/// concurrently (no ordering guarantee). fn must be safe to invoke
/// concurrently for distinct indices when num_threads > 1. Exceptions
/// thrown by fn propagate to the caller (first one wins).
void RunParallel(size_t num_threads, size_t n,
                 const std::function<void(size_t)>& fn);

/// Pool-reusing variant for hot loops: `pool == nullptr` means serial.
void RunParallel(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_COMMON_PARALLEL_H_
