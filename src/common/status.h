#ifndef HYBRIDGNN_COMMON_STATUS_H_
#define HYBRIDGNN_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace hybridgnn {

/// Canonical error codes, modeled on the Arrow/RocksDB status idiom. Library
/// code reports failures through Status instead of throwing exceptions.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kIoError = 7,
  kUnimplemented = 8,
  kDeadlineExceeded = 9,
  kResourceExhausted = 10,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"…).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type carrying either success or an error code + message.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status from the current function.
#define HYBRIDGNN_RETURN_IF_ERROR(expr)            \
  do {                                             \
    ::hybridgnn::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace hybridgnn

#endif  // HYBRIDGNN_COMMON_STATUS_H_
