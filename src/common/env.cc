#include "common/env.h"

#include <cstdlib>

#include "common/string_util.h"

namespace hybridgnn {

int64_t GetEnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  StatusOr<int64_t> parsed = ParseInt64(value);
  return parsed.ok() ? parsed.value() : fallback;
}

double GetEnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  StatusOr<double> parsed = ParseDouble(value);
  return parsed.ok() ? parsed.value() : fallback;
}

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::string(value);
}

}  // namespace hybridgnn
