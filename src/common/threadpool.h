#ifndef HYBRIDGNN_COMMON_THREADPOOL_H_
#define HYBRIDGNN_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hybridgnn {

/// Fixed-size worker pool for embarrassingly parallel loops (walk generation,
/// batched evaluation). Tasks are void() closures; Wait() blocks until the
/// queue drains and all in-flight tasks complete.
///
/// A task that throws does not deadlock or kill the pool: the first
/// exception is captured and rethrown from the next Wait() (or ParallelFor)
/// on the calling thread, after all in-flight tasks have drained.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; 0 means hardware concurrency).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished; rethrows the first
  /// exception any of them raised since the previous Wait().
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// fn must be safe to invoke concurrently for distinct indices.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_COMMON_THREADPOOL_H_
