#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace hybridgnn {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // xoshiro must not start at the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  HYBRIDGNN_CHECK(bound > 0) << "UniformUint64 bound must be positive";
  // Lemire's method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  HYBRIDGNN_CHECK(lo <= hi) << "UniformInt requires lo <= hi";
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(UniformDouble()) * (hi - lo);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  // Avoid log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

uint64_t Rng::PowerLaw(double alpha, uint64_t max_value) {
  HYBRIDGNN_CHECK(max_value >= 1);
  if (max_value == 1) return 1;
  // Inverse-CDF sampling of the continuous Pareto on [1, max], discretized.
  const double u = UniformDouble();
  const double one_minus_alpha = 1.0 - alpha;
  double x;
  if (std::abs(one_minus_alpha) < 1e-9) {
    x = std::exp(u * std::log(static_cast<double>(max_value)));
  } else {
    const double max_pow = std::pow(static_cast<double>(max_value),
                                    one_minus_alpha);
    x = std::pow(1.0 + u * (max_pow - 1.0), 1.0 / one_minus_alpha);
  }
  uint64_t out = static_cast<uint64_t>(x);
  if (out < 1) out = 1;
  if (out > max_value) out = max_value;
  return out;
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Derive a child seed by hashing the parent state with the stream id.
  uint64_t mix = state_[0] ^ Rotl(state_[1], 13) ^ Rotl(state_[2], 29) ^
                 Rotl(state_[3], 47) ^ (stream_id * 0xD1342543DE82EF95ULL);
  return Rng(mix);
}

}  // namespace hybridgnn
