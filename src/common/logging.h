#ifndef HYBRIDGNN_COMMON_LOGGING_H_
#define HYBRIDGNN_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace hybridgnn {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Global minimum level; messages below it are discarded. Defaults to kInfo,
/// overridable with the HYBRIDGNN_LOG_LEVEL environment variable (0-4).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Stream-style log sink: accumulates a message and emits it on destruction.
/// kFatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define HYBRIDGNN_LOG(severity)                                     \
  ::hybridgnn::internal_logging::LogMessage(                        \
      ::hybridgnn::LogLevel::k##severity, __FILE__, __LINE__)

/// CHECK-style invariant enforcement: aborts with a message on violation.
/// Used for programmer errors; recoverable failures go through Status.
#define HYBRIDGNN_CHECK(condition)                                  \
  if (!(condition))                                                 \
  HYBRIDGNN_LOG(Fatal) << "Check failed: " #condition " "

#define HYBRIDGNN_CHECK_OK(expr)                                    \
  do {                                                              \
    ::hybridgnn::Status _st = (expr);                               \
    if (!_st.ok())                                                  \
      HYBRIDGNN_LOG(Fatal) << "Status not OK: " << _st.ToString();  \
  } while (0)

}  // namespace hybridgnn

#endif  // HYBRIDGNN_COMMON_LOGGING_H_
