#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "common/status.h"

namespace hybridgnn {

namespace {

std::atomic<int> g_log_level{-1};

int InitialLevelFromEnv() {
  const char* env = std::getenv("HYBRIDGNN_LOG_LEVEL");
  if (env != nullptr && env[0] >= '0' && env[0] <= '4' && env[1] == '\0') {
    return env[0] - '0';
  }
  return static_cast<int>(LogLevel::kInfo);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  int v = g_log_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = InitialLevelFromEnv();
    g_log_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(level >= GetLogLevel()) {
  if (!enabled_) return;
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace hybridgnn
