#include "common/threadpool.h"

#include <atomic>
#include <utility>

namespace hybridgnn {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunked dispatch: one task per worker, dynamic index claiming.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  size_t tasks = std::min(n, workers_.size());
  for (size_t t = 0; t < tasks; ++t) {
    Submit([next, n, &fn] {
      while (true) {
        size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = std::move(err);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace hybridgnn
