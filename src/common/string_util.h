#ifndef HYBRIDGNN_COMMON_STRING_UTIL_H_
#define HYBRIDGNN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"

namespace hybridgnn {

/// Splits `text` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Parses a base-10 signed integer; whole string must be consumed.
StatusOr<int64_t> ParseInt64(std::string_view text);

/// Parses a floating point number; whole string must be consumed.
StatusOr<double> ParseDouble(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace hybridgnn

#endif  // HYBRIDGNN_COMMON_STRING_UTIL_H_
