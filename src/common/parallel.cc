#include "common/parallel.h"

#include <thread>

#include "common/env.h"

namespace hybridgnn {

size_t DefaultNumThreads() {
  const int64_t raw = GetEnvInt("HYBRIDGNN_THREADS", 1);
  if (raw == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }
  if (raw < 0) return 1;
  return static_cast<size_t>(raw);
}

size_t ResolveNumThreads(size_t requested) {
  return requested == 0 ? DefaultNumThreads() : requested;
}

void RunParallel(size_t num_threads, size_t n,
                 const std::function<void(size_t)>& fn) {
  num_threads = ResolveNumThreads(num_threads);
  if (num_threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(num_threads, n));
  pool.ParallelFor(n, fn);
}

void RunParallel(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->ParallelFor(n, fn);
}

}  // namespace hybridgnn
