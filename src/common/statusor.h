#ifndef HYBRIDGNN_COMMON_STATUSOR_H_
#define HYBRIDGNN_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace hybridgnn {

/// Either a value of type T or a non-OK Status explaining why there is none.
///
/// Usage:
///   StatusOr<Graph> g = LoadGraph(path);
///   if (!g.ok()) return g.status();
///   Use(g.value());
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit by design, mirroring absl::StatusOr).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Constructs from a non-OK status. Passing an OK status is a programming
  /// error and is normalized to kInternal.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed with OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates errors from a StatusOr expression, binding the value on success.
#define HYBRIDGNN_INTERNAL_CONCAT_IMPL(a, b) a##b
#define HYBRIDGNN_INTERNAL_CONCAT(a, b) HYBRIDGNN_INTERNAL_CONCAT_IMPL(a, b)
#define HYBRIDGNN_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto tmp = (expr);                                        \
  if (!tmp.ok()) {                                          \
    return tmp.status();                                    \
  }                                                         \
  lhs = std::move(tmp).value()
#define HYBRIDGNN_ASSIGN_OR_RETURN(lhs, expr)                            \
  HYBRIDGNN_INTERNAL_ASSIGN_OR_RETURN(                                   \
      HYBRIDGNN_INTERNAL_CONCAT(_statusor_, __LINE__), lhs, expr)

}  // namespace hybridgnn

#endif  // HYBRIDGNN_COMMON_STATUSOR_H_
