#ifndef HYBRIDGNN_COMMON_ENV_H_
#define HYBRIDGNN_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace hybridgnn {

/// Reads an integer environment variable, returning `fallback` when unset or
/// unparsable. Used by bench harnesses for scale/epoch overrides.
int64_t GetEnvInt(const char* name, int64_t fallback);

/// Reads a double environment variable with fallback.
double GetEnvDouble(const char* name, double fallback);

/// Reads a string environment variable with fallback.
std::string GetEnvString(const char* name, const std::string& fallback);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_COMMON_ENV_H_
