#ifndef HYBRIDGNN_OBS_METRICS_H_
#define HYBRIDGNN_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/histogram.h"

namespace hybridgnn::obs {

/// Monotonically increasing event count. Add() is one relaxed fetch_add —
/// safe and cheap to call from hot paths on any thread.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins scalar (loss, queue depth, thread count, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of every metric in a registry, safe to serialize or
/// inspect after the producing code has moved on.
struct RegistrySnapshot {
  struct Stage {
    std::string name;
    uint64_t count = 0;
    double total_ms = 0.0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;  // p100 (bucket upper bound)
  };
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<Stage> stages;
};

/// Process-wide table of named counters, gauges, and stage-latency
/// histograms. Names follow the `subsystem/stage` scheme (e.g.
/// "sampling/walk_corpus", "core/gather", "serve/requests").
///
/// Get*() registers on first use and returns a reference that stays valid
/// for the registry's lifetime — entries are never removed, so hot paths can
/// cache the reference (typically in a function-local static) and then touch
/// only relaxed atomics. Registration itself takes a mutex; updates through
/// the returned references never do.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  LatencyHistogram& GetHistogram(std::string_view name);

  /// Copies every metric's current value.
  RegistrySnapshot Snapshot() const;

  /// Zeroes every metric in place. References handed out by Get*() remain
  /// valid. Intended for tests and between-run resets.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
};

/// The process-wide registry every built-in instrumentation site records
/// into.
MetricRegistry& GlobalRegistry();

/// Shorthand for GlobalRegistry().GetHistogram(name): the stage timer named
/// `subsystem/stage`.
LatencyHistogram& Stage(std::string_view name);

/// RAII stage span: records the elapsed wall time into `hist` when it goes
/// out of scope. Usage:
///   obs::ScopedTimer timer(obs::Stage("sampling/walk_corpus"));
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram& hist)
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { hist_->Record(ElapsedMs()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Serializes a snapshot of `registry` as a JSON object:
///   {"counters": {name: int, ...},
///    "gauges":   {name: float, ...},
///    "stages":   {name: {"count": int, "total_ms": f, "mean_ms": f,
///                        "p50_ms": f, "p99_ms": f, "max_ms": f}, ...}}
std::string ToJson(const MetricRegistry& registry);

/// Writes ToJson(registry) to `path` (trailing newline included).
Status WriteJsonFile(const MetricRegistry& registry, const std::string& path);

}  // namespace hybridgnn::obs

#endif  // HYBRIDGNN_OBS_METRICS_H_
