#ifndef HYBRIDGNN_OBS_HISTOGRAM_H_
#define HYBRIDGNN_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace hybridgnn::obs {

/// Lock-free log2-bucketed latency histogram. Bucket i covers
/// [2^i, 2^(i+1)) microseconds, which spans 1us .. ~17min in 30 buckets —
/// plenty for request latencies and stage timings. Observations below 1us
/// land in a dedicated underflow bucket covering [0, 1us), so percentiles
/// over very fast operations report 1us — the true upper bound of what is
/// known about them — instead of inflating them into the [1us, 2us) bucket.
///
/// Record() is wait-free (relaxed fetch_adds); PercentileMs() walks the
/// bucket counts and returns the upper bound of the bucket containing the
/// requested rank, i.e. a conservative (<= 2x) estimate. All methods are
/// safe to call concurrently.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 30;
  /// Upper bound reported for sub-microsecond observations, in ms.
  static constexpr double kUnderflowUpperMs = 1e-3;

  LatencyHistogram() = default;

  /// Records one observation in milliseconds.
  void Record(double ms);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Mean of all recorded values in milliseconds (exact, not bucketed).
  double MeanMs() const;

  /// Sum of all recorded values in milliseconds (exact, not bucketed).
  double TotalMs() const;

  /// Approximate percentile (pct in [0, 100]) in milliseconds. Returns 0
  /// when nothing has been recorded.
  double PercentileMs(double pct) const;

  /// Upper bound of bucket i in milliseconds: 2^(i+1) us. Exposed so tests
  /// and serializers can pin the bucket edges.
  static double BucketUpperBoundMs(size_t i);

  /// Zeroes all counts. Not atomic with respect to concurrent Record()
  /// calls; intended for tests and between-run resets.
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> underflow_{0};  // observations in [0, 1us)
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_nanos_{0};
};

}  // namespace hybridgnn::obs

#endif  // HYBRIDGNN_OBS_HISTOGRAM_H_
