#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace hybridgnn::obs {

namespace {

/// Bucket index for a latency of `ms` milliseconds (>= 1us):
/// floor(log2(us)), clamped into [0, kNumBuckets).
size_t BucketIndex(double ms) {
  const double us = ms * 1e3;
  const int b = static_cast<int>(std::floor(std::log2(us)));
  return std::min<size_t>(static_cast<size_t>(std::max(b, 0)),
                          LatencyHistogram::kNumBuckets - 1);
}

}  // namespace

double LatencyHistogram::BucketUpperBoundMs(size_t i) {
  return std::ldexp(1.0, static_cast<int>(i) + 1) * 1e-3;
}

void LatencyHistogram::Record(double ms) {
  if (ms < 0.0) ms = 0.0;
  if (ms * 1e3 < 1.0) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    buckets_[BucketIndex(ms)].fetch_add(1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<uint64_t>(ms * 1e6),
                         std::memory_order_relaxed);
}

double LatencyHistogram::MeanMs() const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  return total_nanos_.load(std::memory_order_relaxed) * 1e-6 /
         static_cast<double>(n);
}

double LatencyHistogram::TotalMs() const {
  return total_nanos_.load(std::memory_order_relaxed) * 1e-6;
}

double LatencyHistogram::PercentileMs(double pct) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  // Rank of the requested percentile, 1-based (p100 -> last observation).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(pct / 100.0 * n)));
  uint64_t seen = underflow_.load(std::memory_order_relaxed);
  if (seen >= rank) return kUnderflowUpperMs;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpperBoundMs(i);
  }
  return BucketUpperBoundMs(kNumBuckets - 1);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  underflow_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_nanos_.store(0, std::memory_order_relaxed);
}

}  // namespace hybridgnn::obs
