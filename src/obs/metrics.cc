#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace hybridgnn::obs {

namespace {

template <typename Map, typename Factory>
auto& GetOrCreate(std::mutex& mu, Map& map, std::string_view name,
                  const Factory& make) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), make()).first;
  }
  return *it->second;
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendKey(std::string& out, const std::string& name) {
  out += '"';
  AppendEscaped(out, name);
  out += "\": ";
}

void AppendDouble(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  // %g may emit bare "inf"/"nan" which is not JSON; metrics never should,
  // but clamp defensively.
  out += std::isfinite(v) ? buf : "0";
}

}  // namespace

Counter& MetricRegistry::GetCounter(std::string_view name) {
  return GetOrCreate(mu_, counters_, name,
                     [] { return std::make_unique<Counter>(); });
}

Gauge& MetricRegistry::GetGauge(std::string_view name) {
  return GetOrCreate(mu_, gauges_, name,
                     [] { return std::make_unique<Gauge>(); });
}

LatencyHistogram& MetricRegistry::GetHistogram(std::string_view name) {
  return GetOrCreate(mu_, histograms_, name,
                     [] { return std::make_unique<LatencyHistogram>(); });
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.stages.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    RegistrySnapshot::Stage s;
    s.name = name;
    s.count = h->count();
    s.total_ms = h->TotalMs();
    s.mean_ms = h->MeanMs();
    s.p50_ms = h->PercentileMs(50.0);
    s.p99_ms = h->PercentileMs(99.0);
    s.max_ms = h->PercentileMs(100.0);
    snap.stages.push_back(std::move(s));
  }
  return snap;
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricRegistry& GlobalRegistry() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

LatencyHistogram& Stage(std::string_view name) {
  return GlobalRegistry().GetHistogram(name);
}

std::string ToJson(const MetricRegistry& registry) {
  const RegistrySnapshot snap = registry.Snapshot();
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendKey(out, snap.counters[i].first);
    out += std::to_string(snap.counters[i].second);
  }
  out += snap.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendKey(out, snap.gauges[i].first);
    AppendDouble(out, snap.gauges[i].second);
  }
  out += snap.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"stages\": {";
  for (size_t i = 0; i < snap.stages.size(); ++i) {
    const auto& s = snap.stages[i];
    out += i == 0 ? "\n    " : ",\n    ";
    AppendKey(out, s.name);
    out += "{\"count\": " + std::to_string(s.count);
    out += ", \"total_ms\": ";
    AppendDouble(out, s.total_ms);
    out += ", \"mean_ms\": ";
    AppendDouble(out, s.mean_ms);
    out += ", \"p50_ms\": ";
    AppendDouble(out, s.p50_ms);
    out += ", \"p99_ms\": ";
    AppendDouble(out, s.p99_ms);
    out += ", \"max_ms\": ";
    AppendDouble(out, s.max_ms);
    out += "}";
  }
  out += snap.stages.empty() ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

Status WriteJsonFile(const MetricRegistry& registry, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write metrics file: " + path);
  out << ToJson(registry) << '\n';
  if (!out.good()) return Status::IoError("short write: " + path);
  return Status::OK();
}

}  // namespace hybridgnn::obs
