#include "core/config.h"

namespace hybridgnn {

Status HybridGnnConfig::Validate() const {
  if (base_dim == 0 || edge_dim == 0 || hidden_dim == 0) {
    return Status::InvalidArgument("embedding dims must be positive");
  }
  if (fanout == 0) {
    return Status::InvalidArgument("fanout must be positive");
  }
  if (num_negatives == 0) {
    return Status::InvalidArgument("num_negatives must be positive");
  }
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (use_randomized_exploration && exploration_depth == 0) {
    return Status::InvalidArgument(
        "exploration_depth must be positive when exploration is enabled");
  }
  if (!use_hybrid_aggregation && !use_randomized_exploration) {
    // Still fine: the "w/o hybrid" variant substitutes a random-sampling
    // flow, so there is always at least one flow. Nothing to reject.
  }
  if (corpus.walk_length < 2 || corpus.window == 0 ||
      corpus.num_walks_per_node == 0) {
    return Status::InvalidArgument("corpus options must be positive");
  }
  return Status::OK();
}

}  // namespace hybridgnn
