#ifndef HYBRIDGNN_CORE_CONFIG_H_
#define HYBRIDGNN_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "sampling/corpus.h"

namespace hybridgnn {

/// Hyper-parameters of HybridGNN, named after the paper's symbols where one
/// exists. The four `use_*` switches implement the Table VII ablations.
struct HybridGnnConfig {
  /// d_m — base embedding width (paper sweeps {64,128,256,512}; best 128).
  size_t base_dim = 128;
  /// d_e — edge (aggregation-flow) embedding width (paper: best 8).
  size_t edge_dim = 8;
  /// d_k — hidden width of both attention levels.
  size_t hidden_dim = 16;
  /// K_rand / L — depth of randomized inter-relationship exploration
  /// (Table V sweeps 1..3; 2 is best on complex graphs).
  size_t exploration_depth = 2;
  /// Neighbors sampled per aggregation level (N_k).
  size_t fanout = 6;
  /// Eq. 3 defines one AGG per metapath scheme. With small training budgets
  /// each per-scheme aggregator sees only a fraction of the gradient signal,
  /// so by default all schemes share one aggregator (the randomized flow
  /// always has its own); set true for the paper's literal parameterization.
  bool per_scheme_aggregators = false;
  /// n — negatives per positive pair (paper sweeps {1,3,5,7}).
  size_t num_negatives = 5;
  /// Fraction of negatives drawn relationship-aware (cross-relation
  /// neighbors of the center) — the P_Neg instantiation for multiplex
  /// recommendation; the rest follow the type-matched unigram^0.75.
  double cross_negative_fraction = 0.5;

  size_t epochs = 10;
  size_t batch_size = 128;
  /// Initialize the base/context tables with a fast manual-SGD skip-gram
  /// pass over a relation-blind uniform-walk corpus before end-to-end
  /// training (GATNE's reference implementation pretrains its base
  /// embeddings the same way). The base captures global proximity; the
  /// aggregation machinery then learns relation-specific corrections.
  bool pretrain_base = true;
  /// Keep the pretrained base/context tables frozen during end-to-end
  /// training so the relationship-specific branch is learned as a residual
  /// on a stable global representation.
  bool freeze_pretrained = false;
  /// Subsample cap on skip-gram pairs used per epoch (0 = use all).
  size_t max_pairs_per_epoch = 20000;
  float learning_rate = 1e-2f;
  /// Scale of the aggregation branch in e* = e_v + local_scale * e_{v,r} W_r.
  /// Damps untrained-machinery noise relative to the pretrained base.
  float local_scale = 0.5f;
  /// Stop when internal-validation ROC-AUC fails to improve this many
  /// consecutive epochs (paper: patience 5); the best epoch's parameters
  /// are restored.
  size_t early_stopping_patience = 8;
  /// Fraction of training edges held out inside Fit for early stopping.
  double internal_val_fraction = 0.10;
  /// Restore the best-validation epoch's parameters after training. Disable
  /// to keep the final epoch (mainly for tests/diagnostics).
  bool restore_best = true;

  /// Random-walk corpus parameters (paper: 20 walks, length 10, window 5).
  CorpusOptions corpus;

  // ---- Ablation switches (Table VII) ----
  /// "w/o metapath-level attention": mean of flows + linear projection.
  bool use_metapath_attention = true;
  /// "w/o relationship-level attention": skip Eq. 8-9.
  bool use_relation_attention = true;
  /// "w/o randomized exploration": drop the P_rand flow.
  bool use_randomized_exploration = true;
  /// "w/o hybrid aggregation flow": replace metapath-guided flows with a
  /// single relation-blind random-sampling flow.
  bool use_hybrid_aggregation = true;

  uint64_t seed = 1;
  bool verbose = false;

  /// Rejects inconsistent settings (zero dims, both flow sources disabled…).
  Status Validate() const;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_CORE_CONFIG_H_
