#ifndef HYBRIDGNN_CORE_HYBRID_GNN_H_
#define HYBRIDGNN_CORE_HYBRID_GNN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "eval/embedding_model.h"
#include "graph/frontier.h"
#include "graph/graph.h"
#include "graph/metapath.h"
#include "nn/aggregator.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "sampling/negative_sampler.h"
#include "tensor/optimizer.h"

namespace hybridgnn {

/// HybridGNN (Gu et al., ICDE 2022): relationship-specific node embeddings
/// via (1) randomized inter-relationship exploration, (2) hybrid aggregation
/// flows over intra-relationship metapath-guided neighbors plus exploration
/// neighbors, and (3) hierarchical (metapath-level, then relationship-level)
/// self-attention. Trained with skip-gram over metapath-based random walks
/// and heterogeneous negative sampling.
///
/// Usage:
///   HybridGnn model(config, schemes);
///   model.Fit(train_graph);
///   Tensor e = model.Embedding(v, r);   // e*_{v,r}, 1 x base_dim
class HybridGnn : public EmbeddingModel, public Module {
 public:
  /// `schemes` are the predefined intra-relationship metapath schemes PS_r
  /// (the dataset profile's P column). They are matched to (node, relation)
  /// pairs by source type at forward time.
  HybridGnn(const HybridGnnConfig& config,
            std::vector<MetapathScheme> schemes);

  std::string name() const override { return "HybridGNN"; }

  /// Builds the walk corpus, trains with Adam, then freezes and caches all
  /// e*_{v,r} for fast scoring. With options.num_threads > 1 the corpus,
  /// SGNS pretraining, minibatch epochs (per-worker gradient sinks reduced
  /// on the main thread before each Adam step) and the embedding cache all
  /// run on worker threads; options.deterministic keeps the racy stages
  /// serial. num_threads <= 1 is bit-identical to the original pipeline.
  Status Fit(const MultiplexHeteroGraph& train_graph,
             const FitOptions& options) override;
  using EmbeddingModel::Fit;

  /// Cached final embedding e*_{v,r} (valid after Fit).
  Tensor Embedding(NodeId v, RelationId r) const override;

  /// Batched lookup straight out of the frozen cache: one gather, no
  /// per-query Tensor allocations.
  Tensor EmbeddingsFor(std::span<const std::pair<NodeId, RelationId>> queries)
      const override;

  /// Mean attention received by each aggregation flow for (v, r): the
  /// column-means of the metapath-level attention matrix (Fig. 6). Order:
  /// one entry per matching metapath scheme, then (last) the randomized
  /// exploration flow when enabled. Valid after Fit.
  std::vector<double> MetapathAttentionScores(NodeId v, RelationId r) const;

  /// Labels matching MetapathAttentionScores entries ("U-I-U", ..., "rand").
  std::vector<std::string> FlowLabels(NodeId v, RelationId r) const;

  /// Mean training loss of the last epoch (for convergence tests).
  double last_epoch_loss() const { return last_epoch_loss_; }

  const HybridGnnConfig& config() const { return config_; }

 private:
  /// One sampled aggregation flow for a (node, relation) pair: the
  /// level-structured neighbor lists plus the aggregator that folds them.
  /// Sampling is split from graph construction so the compiled-plan path
  /// (FitOptions{compile_plan}) can hash the sampled structure and decide
  /// whether to build the graph eagerly (record) or replay a compiled step.
  struct FlowSketch {
    std::vector<std::vector<NodeId>> levels;
    const MeanAggregator* agg = nullptr;
    int agg_id = 0;  // stable id for structure hashing
  };
  /// All sampled flows for one node: per_rel[r] lists the flows FlowStack
  /// would build for relation r (empty -> the self-embedding fallback).
  struct NodeSketch {
    NodeId v = 0;
    std::vector<std::vector<FlowSketch>> per_rel;
  };

  /// Draws every random sample ForwardNode(v) would draw, in the same RNG
  /// order, without building any graph.
  void SampleNode(const MultiplexHeteroGraph& g, NodeId v, Rng& rng,
                  NodeSketch* out) const;

  /// Builds the e*_{v,r} graph from a sketch: [R, base_dim]. Consumes no
  /// randomness; ForwardNode == SampleNode + ForwardNodeSketch.
  ag::Var ForwardNodeSketch(const NodeSketch& sk) const;

  /// Computes e*_{v,r} rows for all relations as one [R, base_dim] Var.
  ag::Var ForwardNode(const MultiplexHeteroGraph& g, NodeId v, Rng& rng) const;

  /// One aggregation flow: a level-structured CSR frontier (deepest level
  /// first, see BuildLevelFrontier) -> [1, edge_dim].
  ag::Var AggregateLevels(const MinibatchFrontier& f,
                          const MeanAggregator& agg) const;

  /// The [m, edge_dim] stack of flow embeddings for (v, r).
  ag::Var FlowStack(const MultiplexHeteroGraph& g, NodeId v, RelationId r,
                    Rng& rng) const;

  /// Metapath-level fusion of a flow stack -> [1, edge_dim]
  /// (attention-reweighted mean, or plain mean under the ablation).
  ag::Var FuseFlows(const ag::Var& stack) const;

  HybridGnnConfig config_;
  std::vector<MetapathScheme> schemes_;

  // Trainable components (built lazily in Fit once V is known).
  std::unique_ptr<EmbeddingTable> base_;       // e_v            [V, base_dim]
  std::unique_ptr<EmbeddingTable> context_;    // c_j            [V, base_dim]
  std::unique_ptr<EmbeddingTable> edge_init_;  // h^(0)          [V, edge_dim]
  std::vector<std::unique_ptr<MeanAggregator>> scheme_aggs_;
  std::unique_ptr<MeanAggregator> rand_agg_;
  std::unique_ptr<SelfAttention> metapath_attn_;   // weights-only (Eq. 6)
  std::unique_ptr<SelfAttention> relation_attn_;   // weights-only (Eq. 8)
  std::vector<ag::Var> w_rel_;             // W_{v,r}       [edge, base]

  const MultiplexHeteroGraph* graph_ = nullptr;  // set during Fit
  Tensor cache_;       // [(V * R), base_dim] final embeddings
  size_t num_relations_ = 0;
  double last_epoch_loss_ = 0.0;
  bool fitted_ = false;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_CORE_HYBRID_GNN_H_
