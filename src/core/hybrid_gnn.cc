#include "core/hybrid_gnn.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <unordered_map>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/threadpool.h"
#include "nn/sparse.h"
#include "obs/metrics.h"
#include "plan/plan.h"
#include "sampling/exploration.h"
#include "sampling/neighbor_sampler.h"
#include "sampling/sgns.h"
#include "sampling/walker.h"
#include "tensor/init.h"
#include "tensor/pool.h"
#include "tensor/tensor_ops.h"

namespace hybridgnn {

HybridGnn::HybridGnn(const HybridGnnConfig& config,
                     std::vector<MetapathScheme> schemes)
    : config_(config), schemes_(std::move(schemes)) {}

ag::Var HybridGnn::AggregateLevels(const MinibatchFrontier& f,
                                   const MeanAggregator& agg) const {
  // Stage timers on the hot path: references are cached after first use, so
  // past initialization each is two clock reads and relaxed fetch_adds.
  static obs::LatencyHistogram& gather_stage = obs::Stage("core/gather");
  static obs::LatencyHistogram& reduce_stage =
      obs::Stage("core/segment_reduce");
  // One fused gather of the whole frontier's edge embeddings, then one
  // segment reduction to per-level means. The frontier orders segments
  // deepest level first (the BuildLevelFrontier contract), so means row 0
  // is the farthest level and the fold below walks toward the node itself.
  ag::Var block;
  {
    obs::ScopedTimer gather_timer(gather_stage);
    block = GatherRowsSegmented(edge_init_->table(), f);  // [m, edge_dim]
  }
  ag::Var means;
  {
    obs::ScopedTimer reduce_timer(reduce_stage);
    means = SegmentMean(block, f);  // [levels, edge_dim]
  }
  const size_t num_levels = f.num_segments();
  // Eq. 3 recursion: fold from the farthest level toward the node itself.
  ag::Var rep = num_levels == 1 ? means : ag::SliceRows(means, 0, 1);
  for (size_t i = 1; i < num_levels; ++i) {
    rep = agg.Forward(MinibatchFrontier::IdentityRow(),
                      ag::SliceRows(means, i, 1), rep);
  }
  return rep;  // [1, edge_dim]
}

ag::Var HybridGnn::FlowStack(const MultiplexHeteroGraph& g, NodeId v,
                             RelationId r, Rng& rng) const {
  // Scratch frontier rebuilt per flow; the sparse ops copy what they keep.
  static thread_local MinibatchFrontier frontier;
  std::vector<ag::Var> flows;
  if (config_.use_hybrid_aggregation) {
    for (size_t i = 0; i < schemes_.size(); ++i) {
      const MetapathScheme& s = schemes_[i];
      if (!s.IsIntraRelationship() || s.relation() != r ||
          s.source_type() != g.node_type(v)) {
        continue;
      }
      auto levels = MetapathGuidedNeighbors(g, s, v, config_.fanout, rng);
      const size_t agg_idx = config_.per_scheme_aggregators ? i : 0;
      BuildLevelFrontier(levels, &frontier);
      flows.push_back(AggregateLevels(frontier, *scheme_aggs_[agg_idx]));
    }
  } else {
    // Ablation "w/o hybrid": one relation-blind random-sampling flow.
    auto levels = SampleLayers(g, v, 2, config_.fanout, rng);
    BuildLevelFrontier(levels, &frontier);
    flows.push_back(AggregateLevels(frontier, *rand_agg_));
  }
  if (config_.use_randomized_exploration) {
    auto levels =
        ExplorationNeighbors(g, v, config_.exploration_depth, config_.fanout,
                             rng);
    BuildLevelFrontier(levels, &frontier);
    flows.push_back(AggregateLevels(frontier, *rand_agg_));
  }
  if (flows.empty()) {
    // No matching scheme and exploration disabled: fall back to the node's
    // own initial edge embedding so every (v, r) still has a representation.
    flows.push_back(edge_init_->ForwardNodes({v}));
  }
  return flows.size() == 1 ? flows[0] : ag::ConcatRows(flows);
}

ag::Var HybridGnn::FuseFlows(const ag::Var& stack) const {
  static obs::LatencyHistogram& attn_stage = obs::Stage("core/attention");
  obs::ScopedTimer attn_timer(attn_stage);
  if (config_.use_metapath_attention && stack->value.rows() > 1) {
    return ag::MeanRows(metapath_attn_->Forward(stack));  // Eqs. 6-7
  }
  // Ablation (or single flow): uniform importance.
  return stack->value.rows() == 1 ? stack : ag::MeanRows(stack);
}

void HybridGnn::SampleNode(const MultiplexHeteroGraph& g, NodeId v, Rng& rng,
                           NodeSketch* out) const {
  // Mirrors FlowStack's sampling control flow exactly — same sampler calls
  // in the same relation/scheme order — so ForwardNode(v) consumes the RNG
  // stream identically whether or not the sample/build split is in play.
  out->v = v;
  out->per_rel.assign(num_relations_, {});
  for (RelationId r = 0; r < num_relations_; ++r) {
    std::vector<FlowSketch>& flows = out->per_rel[r];
    if (config_.use_hybrid_aggregation) {
      for (size_t i = 0; i < schemes_.size(); ++i) {
        const MetapathScheme& s = schemes_[i];
        if (!s.IsIntraRelationship() || s.relation() != r ||
            s.source_type() != g.node_type(v)) {
          continue;
        }
        const size_t agg_idx = config_.per_scheme_aggregators ? i : 0;
        flows.push_back(
            FlowSketch{MetapathGuidedNeighbors(g, s, v, config_.fanout, rng),
                       scheme_aggs_[agg_idx].get(),
                       static_cast<int>(agg_idx)});
      }
    } else {
      flows.push_back(FlowSketch{SampleLayers(g, v, 2, config_.fanout, rng),
                                 rand_agg_.get(), -1});
    }
    if (config_.use_randomized_exploration) {
      flows.push_back(
          FlowSketch{ExplorationNeighbors(g, v, config_.exploration_depth,
                                          config_.fanout, rng),
                     rand_agg_.get(), -1});
    }
  }
}

ag::Var HybridGnn::ForwardNodeSketch(const NodeSketch& sk) const {
  static thread_local MinibatchFrontier frontier;
  std::vector<ag::Var> per_rel;
  per_rel.reserve(num_relations_);
  for (RelationId r = 0; r < num_relations_; ++r) {
    std::vector<ag::Var> flows;
    flows.reserve(sk.per_rel[r].size());
    for (const FlowSketch& f : sk.per_rel[r]) {
      BuildLevelFrontier(f.levels, &frontier);
      flows.push_back(AggregateLevels(frontier, *f.agg));
    }
    if (flows.empty()) {
      // No matching scheme and exploration disabled: the node's own initial
      // edge embedding (see FlowStack).
      flows.push_back(edge_init_->ForwardNodes({sk.v}));
    }
    ag::Var stack = flows.size() == 1 ? flows[0] : ag::ConcatRows(flows);
    per_rel.push_back(FuseFlows(stack));
  }
  ag::Var u = per_rel.size() == 1 ? per_rel[0] : ag::ConcatRows(per_rel);
  // Relationship-level attention (Eqs. 8-9); identity under the ablation.
  ag::Var u_hat = u;
  if (config_.use_relation_attention && num_relations_ > 1) {
    static obs::LatencyHistogram& attn_stage = obs::Stage("core/attention");
    obs::ScopedTimer attn_timer(attn_stage);
    u_hat = relation_attn_->Forward(u);
  }
  // e*_{v,r} = e_v + e_{v,r} W_r (Eq. 10).
  std::vector<ag::Var> rows;
  rows.reserve(num_relations_);
  for (RelationId r = 0; r < num_relations_; ++r) {
    rows.push_back(ag::MatMul(ag::SliceRows(u_hat, r, 1), w_rel_[r]));
  }
  ag::Var local = rows.size() == 1 ? rows[0] : ag::ConcatRows(rows);
  if (config_.local_scale != 1.0f) {
    local = ag::Scale(local, config_.local_scale);
  }
  ag::Var base_row = base_->ForwardNodes({sk.v});
  return ag::AddRowBroadcast(local, base_row);  // [R, base_dim]
}

ag::Var HybridGnn::ForwardNode(const MultiplexHeteroGraph& g, NodeId v,
                               Rng& rng) const {
  static thread_local NodeSketch sketch;
  SampleNode(g, v, rng, &sketch);
  return ForwardNodeSketch(sketch);
}

Status HybridGnn::Fit(const MultiplexHeteroGraph& g,
                      const FitOptions& options) {
  HYBRIDGNN_RETURN_IF_ERROR(config_.Validate());
  // Reproducible-in-parallel stages (corpus, cache) use `threads`; stages
  // whose parallel schedule is racy (SGNS pretrain, minibatch epochs) drop
  // to serial under options.deterministic.
  const size_t threads = options.threads();
  const size_t train_threads = options.deterministic ? 1 : threads;
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  for (const auto& s : schemes_) {
    HYBRIDGNN_RETURN_IF_ERROR(s.Validate(g));
  }
  graph_ = &g;
  num_relations_ = g.num_relations();
  Rng rng(config_.seed);

  // ---- Build trainable components ----
  const size_t v_count = g.num_nodes();
  base_ = std::make_unique<EmbeddingTable>(v_count, config_.base_dim, rng);
  context_ = std::make_unique<EmbeddingTable>(v_count, config_.base_dim, rng);
  edge_init_ = std::make_unique<EmbeddingTable>(v_count, config_.edge_dim, rng);
  scheme_aggs_.clear();
  const size_t num_aggs =
      config_.per_scheme_aggregators ? schemes_.size() : 1;
  for (size_t i = 0; i < num_aggs; ++i) {
    scheme_aggs_.push_back(
        std::make_unique<MeanAggregator>(config_.edge_dim, rng));
  }
  rand_agg_ = std::make_unique<MeanAggregator>(config_.edge_dim, rng);
  metapath_attn_ = std::make_unique<SelfAttention>(
      config_.edge_dim, config_.hidden_dim, rng, /*identity_values=*/true);
  relation_attn_ = std::make_unique<SelfAttention>(
      config_.edge_dim, config_.hidden_dim, rng, /*identity_values=*/true);
  w_rel_.clear();
  for (RelationId r = 0; r < num_relations_; ++r) {
    // Zero-initialized output projection: e* starts at the base embedding
    // and the aggregation branch phases in as W_r is learned, so untrained
    // flow noise never swamps the node-identity signal.
    w_rel_.push_back(ag::Param(Tensor(config_.edge_dim, config_.base_dim)));
  }

  const bool freeze_tables =
      config_.pretrain_base && config_.freeze_pretrained;
  Adam optimizer(config_.learning_rate);
  if (!freeze_tables) {
    optimizer.AddParameters(base_->parameters());
    optimizer.AddParameters(context_->parameters());
  }
  optimizer.AddParameters(edge_init_->parameters());
  for (const auto& agg : scheme_aggs_) {
    optimizer.AddParameters(agg->parameters());
  }
  optimizer.AddParameters(rand_agg_->parameters());
  if (config_.use_metapath_attention) {
    optimizer.AddParameters(metapath_attn_->parameters());
  }
  if (config_.use_relation_attention) {
    optimizer.AddParameters(relation_attn_->parameters());
  }
  optimizer.AddParameters(w_rel_);

  // ---- Training corpus (Sec. III-E) ----
  CorpusOptions corpus_opts = config_.corpus;
  corpus_opts.num_threads = threads;
  WalkCorpus corpus = BuildMetapathCorpus(g, schemes_, corpus_opts, rng);
  if (corpus.pairs.empty()) {
    return Status::FailedPrecondition("no skip-gram pairs generated");
  }
  options.Report("corpus", 1, 1);
  NegativeSampler neg_sampler(g);

  if (config_.pretrain_base) {
    // Relation-blind uniform corpus: the base embedding captures global
    // proximity; relation-specific structure is learned on top.
    CorpusOptions pre_corpus = corpus_opts;
    pre_corpus.direct_edge_copies = 2;
    WalkCorpus uniform = BuildUniformCorpus(g, pre_corpus, rng);
    uniform.pairs.reserve(uniform.pairs.size() +
                          2 * pre_corpus.direct_edge_copies *
                              g.edges().size());
    for (size_t copy = 0; copy < pre_corpus.direct_edge_copies; ++copy) {
      for (const auto& e : g.edges()) {
        uniform.pairs.push_back(SkipGramPair{e.src, e.dst, e.rel});
        uniform.pairs.push_back(SkipGramPair{e.dst, e.src, e.rel});
      }
    }
    SgnsOptions pre;
    pre.dim = config_.base_dim;
    pre.negatives = config_.num_negatives;
    pre.num_threads = train_threads;
    SgnsEmbedder pretrainer(v_count, config_.base_dim, rng);
    pretrainer.Train(uniform.pairs, neg_sampler, pre, rng);
    base_->table()->value = pretrainer.embeddings();
    context_->table()->value = pretrainer.contexts();
    options.Report("pretrain", 1, 1);
  }

  // ---- End-to-end training ----
  // The base/context tables already carry the skip-gram solution (Sec.
  // III-E) from pretraining; the aggregation machinery is trained on the
  // relationship-specific link objective: raise sigma(e*_{u,r} . e*_{v,r})
  // for training edges against relationship-aware negatives. An internal
  // validation holdout drives early stopping (paper protocol) and the best
  // epoch's parameters are restored, so fine-tuning can only improve on the
  // pretrained base.
  std::vector<EdgeTriple> train_edges = g.edges();
  rng.Shuffle(train_edges);
  const size_t val_count = std::min<size_t>(
      std::max<size_t>(16, static_cast<size_t>(
                               config_.internal_val_fraction *
                               static_cast<double>(train_edges.size()))),
      train_edges.size() / 2);
  std::vector<EdgeTriple> val_edges(train_edges.begin(),
                                    train_edges.begin() + val_count);
  train_edges.erase(train_edges.begin(), train_edges.begin() + val_count);
  // Fixed negatives for a stable validation signal.
  std::vector<NodeId> val_negs;  // two fixed negatives per val edge
  std::vector<NodeId> val_negs2;
  for (const auto& e : val_edges) {
    val_negs.push_back(neg_sampler.SampleRelationAware(
        e.src, e.dst, e.rel, config_.cross_negative_fraction, rng));
    val_negs2.push_back(neg_sampler.SampleRelationAware(
        e.src, e.dst, e.rel, config_.cross_negative_fraction, rng));
  }

  std::vector<ag::Var> all_params;
  all_params.push_back(base_->table());
  all_params.push_back(context_->table());
  all_params.push_back(edge_init_->table());
  for (const auto& agg : scheme_aggs_) {
    for (const auto& p : agg->parameters()) all_params.push_back(p);
  }
  for (const auto& p : rand_agg_->parameters()) all_params.push_back(p);
  for (const auto& p : metapath_attn_->parameters()) all_params.push_back(p);
  for (const auto& p : relation_attn_->parameters()) all_params.push_back(p);
  for (const auto& p : w_rel_) all_params.push_back(p);

  auto snapshot = [&]() {
    std::vector<Tensor> out;
    out.reserve(all_params.size());
    for (const auto& p : all_params) out.push_back(p->value);
    return out;
  };
  auto restore = [&](const std::vector<Tensor>& snap) {
    for (size_t i = 0; i < all_params.size(); ++i) {
      all_params[i]->value = snap[i];
    }
  };
  auto validation_auc = [&]() {
    Rng val_rng(config_.seed ^ 0x7A11);
    double wins = 0.0;
    for (size_t i = 0; i < val_edges.size(); ++i) {
      // Per-edge tape: the four forward graphs are scoring-only scaffolding,
      // rewound before the next edge.
      ag::TapeScope tape;
      const EdgeTriple& e = val_edges[i];
      ag::Var eu = ForwardNode(g, e.src, val_rng);
      ag::Var ev = ForwardNode(g, e.dst, val_rng);
      ag::Var ex = ForwardNode(g, val_negs[i], val_rng);
      ag::Var ex2 = ForwardNode(g, val_negs2[i], val_rng);
      const float* u_row = eu->value.RowPtr(e.rel);
      const float* v_row = ev->value.RowPtr(e.rel);
      const float* x_row = ex->value.RowPtr(e.rel);
      const float* x2_row = ex2->value.RowPtr(e.rel);
      double pos = 0.0, neg = 0.0, neg2 = 0.0;
      for (size_t j = 0; j < config_.base_dim; ++j) {
        pos += static_cast<double>(u_row[j]) * v_row[j];
        neg += static_cast<double>(u_row[j]) * x_row[j];
        neg2 += static_cast<double>(u_row[j]) * x2_row[j];
      }
      for (double n : {neg, neg2}) {
        if (pos > n) {
          wins += 1.0;
        } else if (pos == n) {
          wins += 0.5;
        }
      }
    }
    return wins / (2.0 * static_cast<double>(val_edges.size()));
  };

  std::vector<size_t> order(train_edges.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Compiled execution plans (src/plan): when enabled, each distinct node
  // aggregation-tower structure (per-relation flow counts, aggregator
  // identities, level sizes) is traced once — the recording build runs
  // eagerly — and every later node with the same structure replays the
  // optimized plan with zero graph construction. Towers dominate per-step
  // graph construction and their structures recur heavily across nodes and
  // batches, while the cheap per-row loss assembly stays eager. Replays are
  // bitwise identical to eager (the replayed Var's fat backward op sits at
  // the tower's tape position, so gradient accumulation order is
  // unchanged), so the flag never changes results — the serial determinism
  // goldens hold with it on or off.
  const bool use_plan = plan::Enabled(options.compile_plan);
  std::vector<plan::PlanCache> plan_caches(train_threads);
  plan::PassOptions plan_pass_opts;
  if (freeze_tables) {
    plan_pass_opts.frozen.insert(base_->table().get());
    plan_pass_opts.frozen.insert(context_->table().get());
  }

  // One minibatch over edges [start, end) of the shuffled order, built and
  // backpropagated with `brng`. Returns (sum of per-element BCE terms,
  // element count) so shard losses can be reduced exactly.
  auto run_batch = [&](size_t start, size_t end, Rng& brng,
                       plan::PlanCache& pcache) {
    // The tape is declared before every Var below so the Vars die first and
    // the arena rewind at scope exit frees the whole batch graph at once.
    ag::TapeScope tape;
    // Phase 1 — sample. All randomness the batch consumes (neighbor
    // sampling at each node's first reference, negative draws in between)
    // is drawn here in exactly the order the fused sample+build loop drew
    // it, so the split is invisible to the RNG stream. Thread-local scratch
    // is reused across batches (capacity survives the clear); a flat vector
    // with linear node lookup beats a hash map here — a batch touches a few
    // hundred nodes and the probe is a scan over ids.
    struct BatchRow {
      int lhs;
      int rhs;
      RelationId rel;
      float label;
    };
    static thread_local std::vector<NodeSketch> sketches;
    static thread_local std::vector<BatchRow> brows;
    static thread_local std::vector<float> labels;
    sketches.clear();
    brows.clear();
    labels.clear();
    auto node_ord = [&](NodeId v) -> int {
      for (size_t i = 0; i < sketches.size(); ++i) {
        if (sketches[i].v == v) return static_cast<int>(i);
      }
      sketches.emplace_back();
      SampleNode(g, v, brng, &sketches.back());
      return static_cast<int>(sketches.size()) - 1;
    };
    for (size_t i = start; i < end; ++i) {
      const EdgeTriple& e = train_edges[order[i]];
      const int src_ord = node_ord(e.src);
      const int dst_ord = node_ord(e.dst);
      brows.push_back(BatchRow{src_ord, dst_ord, e.rel, 1.0f});
      for (size_t n = 0; n < config_.num_negatives; ++n) {
        NodeId x = neg_sampler.SampleRelationAware(
            e.src, e.dst, e.rel, config_.cross_negative_fraction, brng);
        brows.push_back(BatchRow{src_ord, node_ord(x), e.rel, 0.0f});
      }
    }
    for (const BatchRow& row : brows) labels.push_back(row.label);

    // Phase 2 — build the step graph from the sketches. Node towers are
    // built lazily at first use, so op creation order matches the old fused
    // loop. With plans on, a tower is traced at its structure's first
    // sighting and replayed on every later one; either way the resulting
    // Var slots into the eager loss assembly below unchanged.
    auto node_key = [](const NodeSketch& sk) {
      // Everything that shapes the tower graph: per-relation flow counts,
      // aggregator identities, level sizes. Bound data — the node id and
      // its sampled neighbor indices — stays out of the key; the executor's
      // Bind length CHECKs catch any collision loudly.
      uint64_t key = 0xcbf29ce484222325ull;
      auto mix = [&key](uint64_t x) { plan::HashCombine(&key, x); };
      for (const std::vector<FlowSketch>& flows : sk.per_rel) {
        mix(flows.size());
        for (const FlowSketch& f : flows) {
          mix(static_cast<uint64_t>(f.agg_id + 2));
          mix(f.levels.size());
          for (const auto& lvl : f.levels) mix(lvl.size());
        }
      }
      return key;
    };
    // Binds a sketch's per-replay arrays in recorded slot order — the order
    // ForwardNodeSketch creates its gather/segment ops.
    auto replay_node = [&](const NodeSketch& sk,
                           plan::CompiledStep& step) -> ag::Var {
      static thread_local MinibatchFrontier bf;
      static thread_local std::vector<std::vector<int32_t>> ivecs;
      static thread_local std::vector<std::vector<size_t>> svecs;
      size_t iused = 0, sused = 0;
      auto next_i = [&]() -> std::vector<int32_t>& {
        if (iused == ivecs.size()) ivecs.emplace_back();
        return ivecs[iused++];
      };
      auto next_s = [&]() -> std::vector<size_t>& {
        if (sused == svecs.size()) svecs.emplace_back();
        return svecs[sused++];
      };
      plan::StepInputs in;
      for (const std::vector<FlowSketch>& flows : sk.per_rel) {
        for (const FlowSketch& f : flows) {
          BuildLevelFrontier(f.levels, &bf);
          std::vector<int32_t>& iv = next_i();
          iv.assign(bf.indices.begin(), bf.indices.end());
          std::vector<size_t>& sv = next_s();
          sv.assign(bf.indptr.begin(), bf.indptr.end());
          in.i32.push_back(iv);  // GatherRowsSegmented indices
          in.szs.push_back(sv);  // ... and its indptr
          in.szs.push_back(sv);  // SegmentMean indptr
        }
        if (flows.empty()) {
          std::vector<int32_t>& iv = next_i();
          iv.assign(1, static_cast<int32_t>(sk.v));
          in.i32.push_back(iv);  // edge_init_ fallback gather
        }
      }
      std::vector<int32_t>& bv = next_i();
      bv.assign(1, static_cast<int32_t>(sk.v));
      in.i32.push_back(bv);  // base-table gather
      return step.ReplayTrain(in);
    };
    auto build_loss = [&]() -> ag::Var {
      static thread_local std::vector<ag::Var> built;
      static thread_local std::vector<ag::Var> lhs, rhs;
      built.assign(sketches.size(), nullptr);
      auto node_var = [&](int ord) -> const ag::Var& {
        ag::Var& slot = built[ord];
        if (slot == nullptr) {
          const NodeSketch& sk = sketches[ord];
          if (!use_plan) {
            slot = ForwardNodeSketch(sk);
          } else {
            plan::PlanCache::Entry& ent = pcache.Slot(node_key(sk));
            if (ent.step != nullptr) {
              slot = replay_node(sk, *ent.step);
            } else if (ent.poisoned) {
              slot = ForwardNodeSketch(sk);
            } else {
              // First sighting of this tower structure: record the eager
              // build, which then participates in the batch graph as-is.
              plan::Recorder rec;
              ag::Var v = ForwardNodeSketch(sk);
              ent.step = rec.Finalize(v, plan_pass_opts);
              ent.poisoned = (ent.step == nullptr);
              slot = std::move(v);
            }
          }
        }
        return slot;
      };
      for (const BatchRow& row : brows) {
        lhs.push_back(ag::SliceRows(node_var(row.lhs), row.rel, 1));
        rhs.push_back(ag::SliceRows(node_var(row.rhs), row.rel, 1));
      }
      ag::Var logits =
          ag::RowwiseDot(ag::ConcatRows(lhs), ag::ConcatRows(rhs));
      ag::Var loss = ag::BceWithLogits(logits, labels);
      // Drop every tape-backed Var held in persistent scratch so per-node
      // recordings see a clean handle baseline on the next batch.
      built.clear();
      lhs.clear();
      rhs.clear();
      return loss;
    };

    ag::Var loss = build_loss();
    ag::Backward(loss);
    const double batch_loss = loss->value.At(0, 0);
    const size_t elems = labels.size();
    // Drop the loss Var before the TapeScope rewinds.
    loss = nullptr;
    return std::make_pair(batch_loss, elems);
  };

  double best_val = validation_auc();  // epoch 0: the pretrained base
  std::vector<Tensor> best_snapshot = snapshot();
  size_t bad_epochs = 0;
  const size_t edge_batch = std::max<size_t>(16, config_.batch_size / 2);
  std::unique_ptr<ThreadPool> pool;
  if (train_threads > 1) pool = std::make_unique<ThreadPool>(train_threads);
  // Per-worker gradient sinks live across the whole run: slot tensors are
  // zeroed after each reduction instead of destroyed, so steady-state
  // batches reuse them in place.
  std::vector<ag::GradSinkScope::Sink> sinks(train_threads);
  std::vector<double> shard_loss(train_threads, 0.0);
  std::vector<size_t> shard_elems(train_threads, 0);
  static obs::LatencyHistogram& epoch_stage = obs::Stage("core/epoch");
  static obs::Counter& minibatch_counter =
      obs::GlobalRegistry().GetCounter("core/minibatches");
  static obs::Gauge& loss_gauge =
      obs::GlobalRegistry().GetGauge("core/last_epoch_loss");
  // Bytes newly fetched from the OS/heap by the last training step (pool
  // misses + arena block growth). Flatlines at zero once pools and tapes
  // are warm; the arena_test reuse case asserts exactly that.
  static obs::Gauge& step_alloc_gauge =
      obs::GlobalRegistry().GetGauge("core/step_alloc_bytes");
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::ScopedTimer epoch_timer(epoch_stage);
    rng.Shuffle(order);
    const size_t use_edges =
        config_.max_pairs_per_epoch == 0
            ? order.size()
            : std::min(order.size(), config_.max_pairs_per_epoch);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < use_edges; start += edge_batch) {
      const size_t end = std::min(use_edges, start + edge_batch);
      const uint64_t alloc_before =
          pool::MissBytes() + ag::Tape::TotalReservedBytes();
      double batch_loss = 0.0;
      if (pool == nullptr || end - start < 2 * train_threads) {
        batch_loss = run_batch(start, end, rng, plan_caches[0]).first;
      } else {
        // Data-parallel shards: each worker backprops its slice of the
        // batch under a private gradient sink; the main thread reduces
        // sinks into the shared grads (weighted by element share, since
        // BCE is a mean over elements) before the single Adam step.
        const size_t count = end - start;
        const size_t shards = std::min<size_t>(train_threads, count);
        Rng bmaster(rng.NextUint64());
        pool->ParallelFor(shards, [&](size_t w) {
          Rng wrng = bmaster.Fork(w);
          ag::GradSinkScope scope(&sinks[w]);
          const size_t lo = start + count * w / shards;
          const size_t hi = start + count * (w + 1) / shards;
          auto [l, n] = run_batch(lo, hi, wrng, plan_caches[w]);
          shard_loss[w] = l;
          shard_elems[w] = n;
        });
        size_t total_elems = 0;
        for (size_t w = 0; w < shards; ++w) total_elems += shard_elems[w];
        for (size_t w = 0; w < shards; ++w) {
          const float weight = static_cast<float>(shard_elems[w]) /
                               static_cast<float>(total_elems);
          for (auto& [node, grad] : sinks[w]) {
            if (node->grad.empty()) {
              node->grad = Tensor(node->value.rows(), node->value.cols());
            }
            node->grad.Axpy(weight, grad);
            grad.Zero();  // keep the slot for the next batch
          }
          batch_loss += shard_loss[w] *
                        (static_cast<double>(shard_elems[w]) /
                         static_cast<double>(total_elems));
        }
      }
      optimizer.Step();
      optimizer.ZeroGrad();
      step_alloc_gauge.Set(static_cast<double>(
          pool::MissBytes() + ag::Tape::TotalReservedBytes() - alloc_before));
      epoch_loss += batch_loss;
      ++batches;
    }
    minibatch_counter.Add(batches);
    epoch_loss /= std::max<size_t>(1, batches);
    last_epoch_loss_ = epoch_loss;
    loss_gauge.Set(epoch_loss);
    const double val = validation_auc();
    if (config_.verbose) {
      HYBRIDGNN_LOG(Info) << "HybridGNN epoch " << epoch << " loss "
                          << epoch_loss << " val-auc " << val;
    }
    options.Report("epoch", epoch + 1, config_.epochs);
    if (val > best_val + 1e-4) {
      best_val = val;
      best_snapshot = snapshot();
      bad_epochs = 0;
    } else if (++bad_epochs >= config_.early_stopping_patience) {
      break;
    }
  }
  if (config_.restore_best) restore(best_snapshot);

  // ---- Freeze: cache e*_{v,r} for every node and relation. The forward
  // pass samples neighbors stochastically, so we average a few samples to
  // reduce inference variance (training sees many samples implicitly).
  constexpr size_t kCacheSamples = 4;
  obs::ScopedTimer cache_timer(obs::Stage("core/embedding_cache"));
  cache_ = Tensor(v_count * num_relations_, config_.base_dim);
  auto cache_node = [&](NodeId v, Rng& node_rng) {
    for (size_t s = 0; s < kCacheSamples; ++s) {
      ag::TapeScope tape;  // inference-only graph, rewound per sample
      ag::Var all = ForwardNode(g, v, node_rng);
      for (RelationId r = 0; r < num_relations_; ++r) {
        const float* src = all->value.RowPtr(r);
        float* dst = cache_.RowPtr(v * num_relations_ + r);
        for (size_t j = 0; j < config_.base_dim; ++j) {
          dst[j] += src[j] / static_cast<float>(kCacheSamples);
        }
      }
    }
  };
  if (threads > 1) {
    // Per-node forked streams: each worker writes its node's rows only, so
    // the cache is reproducible and invariant to the thread count.
    const Rng cache_master(config_.seed ^ 0xC0FFEE);
    RunParallel(threads, v_count, [&](size_t v) {
      Rng node_rng = cache_master.Fork(v);
      cache_node(static_cast<NodeId>(v), node_rng);
    });
  } else {
    Rng cache_rng(config_.seed ^ 0xC0FFEE);
    for (NodeId v = 0; v < v_count; ++v) cache_node(v, cache_rng);
  }
  options.Report("cache", 1, 1);
  fitted_ = true;
  return Status::OK();
}

Tensor HybridGnn::EmbeddingsFor(
    std::span<const std::pair<NodeId, RelationId>> queries) const {
  HYBRIDGNN_CHECK(fitted_) << "Fit() must succeed before EmbeddingsFor()";
  Tensor out(queries.size(), config_.base_dim);
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& [v, r] = queries[i];
    HYBRIDGNN_CHECK(r < num_relations_ &&
                    v * num_relations_ + r < cache_.rows());
    std::memcpy(out.RowPtr(i), cache_.RowPtr(v * num_relations_ + r),
                config_.base_dim * sizeof(float));
  }
  return out;
}

Tensor HybridGnn::Embedding(NodeId v, RelationId r) const {
  HYBRIDGNN_CHECK(fitted_) << "Fit() must succeed before Embedding()";
  HYBRIDGNN_CHECK(r < num_relations_ &&
                  v * num_relations_ + r < cache_.rows());
  return cache_.CopyRow(v * num_relations_ + r);
}

std::vector<double> HybridGnn::MetapathAttentionScores(NodeId v,
                                                       RelationId r) const {
  HYBRIDGNN_CHECK(fitted_) << "Fit() must succeed first";
  Rng rng(config_.seed ^ (0x9E37ULL * (v + 1)) ^ r);
  ag::TapeScope tape;
  ag::Var stack = FlowStack(*graph_, v, r, rng);
  const size_t m = stack->value.rows();
  std::vector<double> scores(m, 1.0 / static_cast<double>(m));
  if (config_.use_metapath_attention && m > 1) {
    Tensor attn = metapath_attn_->AttentionScores(stack->value);  // [m, m]
    for (size_t j = 0; j < m; ++j) {
      double col = 0.0;
      for (size_t i = 0; i < m; ++i) col += attn.At(i, j);
      scores[j] = col / static_cast<double>(m);
    }
  }
  return scores;
}

std::vector<std::string> HybridGnn::FlowLabels(NodeId v, RelationId r) const {
  HYBRIDGNN_CHECK(graph_ != nullptr);
  const MultiplexHeteroGraph& g = *graph_;
  std::vector<std::string> labels;
  if (config_.use_hybrid_aggregation) {
    for (const auto& s : schemes_) {
      if (!s.IsIntraRelationship() || s.relation() != r ||
          s.source_type() != g.node_type(v)) {
        continue;
      }
      std::string label;
      for (size_t i = 0; i < s.node_types().size(); ++i) {
        if (i > 0) label += '-';
        label += static_cast<char>(
            std::toupper(g.node_type_name(s.node_types()[i])[0]));
      }
      labels.push_back(label);
    }
  } else {
    labels.push_back("random-sampling");
  }
  if (config_.use_randomized_exploration) labels.push_back("rand");
  if (labels.empty()) labels.push_back("self");
  return labels;
}

}  // namespace hybridgnn
