#include "eval/embedding_model.h"

#include <algorithm>
#include <cstring>

#include "common/parallel.h"

namespace hybridgnn {

size_t FitOptions::threads() const { return ResolveNumThreads(num_threads); }

void FitOptions::Report(const char* phase, size_t step,
                        size_t total_steps) const {
  if (!progress_callback) return;
  progress_callback(FitProgress{phase, step, total_steps});
}

Tensor EmbeddingModel::EmbeddingsFor(
    std::span<const std::pair<NodeId, RelationId>> queries) const {
  if (queries.empty()) return Tensor();
  Tensor first = Embedding(queries[0].first, queries[0].second);
  Tensor out(queries.size(), first.cols());
  std::memcpy(out.RowPtr(0), first.RowPtr(0), first.cols() * sizeof(float));
  for (size_t i = 1; i < queries.size(); ++i) {
    Tensor row = Embedding(queries[i].first, queries[i].second);
    std::memcpy(out.RowPtr(i), row.RowPtr(0), row.cols() * sizeof(float));
  }
  return out;
}

Tensor EmbeddingModel::ExportRelationTable(size_t num_nodes, RelationId r,
                                           size_t num_threads) const {
  if (num_nodes == 0) return Tensor();
  const size_t threads = ResolveNumThreads(num_threads);
  constexpr size_t kChunk = 2048;
  const size_t num_chunks = (num_nodes + kChunk - 1) / kChunk;
  const size_t dim = Embedding(0, r).cols();
  Tensor out(num_nodes, dim);
  RunParallel(threads, num_chunks, [&](size_t c) {
    const size_t lo = c * kChunk;
    const size_t hi = std::min(lo + kChunk, num_nodes);
    std::vector<std::pair<NodeId, RelationId>> queries;
    queries.reserve(hi - lo);
    for (size_t v = lo; v < hi; ++v) {
      queries.emplace_back(static_cast<NodeId>(v), r);
    }
    const Tensor rows = EmbeddingsFor(queries);
    std::memcpy(out.RowPtr(lo), rows.data(),
                (hi - lo) * dim * sizeof(float));
  });
  return out;
}

std::vector<double> EmbeddingModel::ScoreMany(
    std::span<const EdgeTriple> queries) const {
  std::vector<double> out(queries.size(), 0.0);
  if (queries.empty()) return out;
  std::vector<std::pair<NodeId, RelationId>> lhs, rhs;
  lhs.reserve(queries.size());
  rhs.reserve(queries.size());
  for (const auto& q : queries) {
    lhs.emplace_back(q.src, q.rel);
    rhs.emplace_back(q.dst, q.rel);
  }
  const Tensor eu = EmbeddingsFor(lhs);
  const Tensor ev = EmbeddingsFor(rhs);
  for (size_t i = 0; i < queries.size(); ++i) {
    const float* a = eu.RowPtr(i);
    const float* b = ev.RowPtr(i);
    double s = 0.0;
    for (size_t j = 0; j < eu.cols(); ++j) {
      s += static_cast<double>(a[j]) * b[j];
    }
    out[i] = s;
  }
  return out;
}

double EmbeddingModel::Score(NodeId u, NodeId v, RelationId r) const {
  Tensor eu = Embedding(u, r);
  Tensor ev = Embedding(v, r);
  double s = 0.0;
  for (size_t j = 0; j < eu.cols(); ++j) {
    s += static_cast<double>(eu.At(0, j)) * ev.At(0, j);
  }
  return s;
}

}  // namespace hybridgnn
