#ifndef HYBRIDGNN_EVAL_STATS_TEST_H_
#define HYBRIDGNN_EVAL_STATS_TEST_H_

#include <vector>

namespace hybridgnn {

/// Result of a two-sample t-test.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  /// Two-sided p-value.
  double p_value = 1.0;
};

/// Welch's unequal-variance t-test on two independent samples. The paper
/// reports significance at p < 0.01 across repeated runs; benches use this
/// to reproduce the starred entries of Tables III/IV.
TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Paired t-test on per-run differences (requires equal sizes).
TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Two-sided p-value of Student's t with `df` degrees of freedom
/// (regularized incomplete beta).
double StudentTPValue(double t, double df);

/// Regularized incomplete beta function I_x(a, b) (continued fraction).
double RegularizedIncompleteBeta(double a, double b, double x);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_EVAL_STATS_TEST_H_
