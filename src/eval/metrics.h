#ifndef HYBRIDGNN_EVAL_METRICS_H_
#define HYBRIDGNN_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace hybridgnn {

/// Binary-classification metrics over raw scores (higher = more positive).
/// All functions tolerate ties and are deterministic.

/// Area under the ROC curve via the rank statistic
/// (equals P(score_pos > score_neg) + 0.5 P(=)).
double RocAuc(const std::vector<double>& pos_scores,
              const std::vector<double>& neg_scores);

/// Area under the precision-recall curve (average precision formulation).
double PrAuc(const std::vector<double>& pos_scores,
             const std::vector<double>& neg_scores);

/// Maximum F1 over all score thresholds.
double BestF1(const std::vector<double>& pos_scores,
              const std::vector<double>& neg_scores);

/// Precision / recall / F1 at a fixed threshold.
struct ThresholdMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double accuracy = 0.0;
};
ThresholdMetrics MetricsAtThreshold(const std::vector<double>& pos_scores,
                                    const std::vector<double>& neg_scores,
                                    double threshold);

/// Top-K ranking metrics for one query: `ranked_hits[i]` says whether the
/// i-th ranked candidate is a true positive; `num_relevant` is the total
/// relevant count for the query.
double PrecisionAtK(const std::vector<bool>& ranked_hits, size_t k);
double HitRatioAtK(const std::vector<bool>& ranked_hits, size_t k,
                   size_t num_relevant);

/// Simple mean / sample standard deviation helpers.
double Mean(const std::vector<double>& xs);
double SampleStdDev(const std::vector<double>& xs);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_EVAL_METRICS_H_
