#include "eval/evaluator.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "common/parallel.h"
#include "eval/metrics.h"
#include "obs/metrics.h"

namespace hybridgnn {

namespace {

/// Batched positive/negative scoring through the model's ScoreMany, chunked
/// across worker threads (indexed slices, so the output is independent of
/// the thread count).
void CollectScores(const EmbeddingModel& model,
                   const std::vector<EdgeTriple>& pos,
                   const std::vector<EdgeTriple>& neg, size_t num_threads,
                   std::vector<double>& pos_scores,
                   std::vector<double>& neg_scores) {
  auto score_all = [&](const std::vector<EdgeTriple>& edges,
                       std::vector<double>& out) {
    out.resize(edges.size());
    if (edges.empty()) return;
    const size_t threads = std::min(num_threads, edges.size());
    if (threads <= 1) {
      out = model.ScoreMany(std::span<const EdgeTriple>(edges));
      return;
    }
    RunParallel(threads, threads, [&](size_t w) {
      const size_t lo = edges.size() * w / threads;
      const size_t hi = edges.size() * (w + 1) / threads;
      std::vector<double> chunk = model.ScoreMany(
          std::span<const EdgeTriple>(edges.data() + lo, hi - lo));
      std::copy(chunk.begin(), chunk.end(), out.begin() + lo);
    });
  };
  score_all(pos, pos_scores);
  score_all(neg, neg_scores);
}

/// Ranking queries: test positives grouped by (source, relation). The
/// "source" is whichever endpoint has more test edges grouped under it —
/// we simply group by e.src (canonical lower id), which is symmetric enough
/// for undirected evaluation.
struct RankingQuery {
  NodeId src;
  RelationId rel;
  std::vector<NodeId> positives;
};

std::vector<RankingQuery> BuildQueries(const std::vector<EdgeTriple>& test_pos,
                                       size_t max_queries, Rng& rng) {
  std::map<std::pair<NodeId, RelationId>, std::vector<NodeId>> grouped;
  for (const auto& e : test_pos) {
    grouped[{e.src, e.rel}].push_back(e.dst);
  }
  std::vector<RankingQuery> queries;
  queries.reserve(grouped.size());
  for (auto& [key, positives] : grouped) {
    queries.push_back(RankingQuery{key.first, key.second,
                                   std::move(positives)});
  }
  if (max_queries > 0 && queries.size() > max_queries) {
    rng.Shuffle(queries);
    queries.resize(max_queries);
  }
  return queries;
}

/// Ranks candidates for one query and returns per-rank hit flags. Scores
/// all candidates in one ScoreMany batch.
std::vector<bool> RankQuery(const EmbeddingModel& model,
                            const MultiplexHeteroGraph& full,
                            const MultiplexHeteroGraph& train,
                            const RankingQuery& q, size_t k) {
  const NodeTypeId want = full.node_type(q.positives.front());
  std::set<NodeId> pos_set(q.positives.begin(), q.positives.end());
  // Candidates: all nodes of the target type, excluding the source and its
  // training neighbors under this relation.
  auto train_nbrs = train.Neighbors(q.src, q.rel);
  std::set<NodeId> exclude(train_nbrs.begin(), train_nbrs.end());
  std::vector<EdgeTriple> batch;
  for (NodeId cand : full.NodesOfType(want)) {
    if (cand == q.src || exclude.count(cand)) continue;
    batch.push_back(EdgeTriple{q.src, cand, q.rel});
  }
  const std::vector<double> scores =
      model.ScoreMany(std::span<const EdgeTriple>(batch));
  std::vector<std::pair<double, NodeId>> scored;
  scored.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    scored.emplace_back(scores[i], batch[i].dst);
  }
  const size_t top = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + top, scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<bool> hits;
  hits.reserve(top);
  for (size_t i = 0; i < top; ++i) {
    hits.push_back(pos_set.count(scored[i].second) > 0);
  }
  return hits;
}

}  // namespace

LinkPredictionResult EvaluateLinkPrediction(const EmbeddingModel& model,
                                            const MultiplexHeteroGraph& full,
                                            const LinkSplit& split,
                                            const EvalOptions& options,
                                            Rng& rng) {
  static obs::LatencyHistogram& eval_stage = obs::Stage("eval/link_prediction");
  static obs::Counter& queries_ranked =
      obs::GlobalRegistry().GetCounter("eval/queries_ranked");
  obs::ScopedTimer eval_timer(eval_stage);
  const size_t threads = ResolveNumThreads(options.num_threads);
  LinkPredictionResult r;
  std::vector<double> pos_scores, neg_scores;
  CollectScores(model, split.test_pos, split.test_neg, threads, pos_scores,
                neg_scores);
  r.roc_auc = 100.0 * RocAuc(pos_scores, neg_scores);
  r.pr_auc = 100.0 * PrAuc(pos_scores, neg_scores);
  r.f1 = 100.0 * BestF1(pos_scores, neg_scores);

  std::vector<RankingQuery> queries =
      BuildQueries(split.test_pos, options.max_ranking_queries, rng);
  queries_ranked.Add(queries.size());
  if (!queries.empty()) {
    std::vector<double> pr(queries.size(), 0.0), hr(queries.size(), 0.0);
    RunParallel(threads, queries.size(), [&](size_t i) {
      const RankingQuery& q = queries[i];
      std::vector<bool> hits =
          RankQuery(model, full, split.train_graph, q, options.k);
      pr[i] = PrecisionAtK(hits, options.k);
      hr[i] = HitRatioAtK(hits, options.k, q.positives.size());
    });
    double pr_sum = 0.0, hr_sum = 0.0;
    for (size_t i = 0; i < queries.size(); ++i) {
      pr_sum += pr[i];
      hr_sum += hr[i];
    }
    r.pr_at_k = pr_sum / static_cast<double>(queries.size());
    r.hr_at_k = hr_sum / static_cast<double>(queries.size());
  }
  return r;
}

LinkPredictionResult EvaluateRelation(const EmbeddingModel& model,
                                      const LinkSplit& split, RelationId rel,
                                      const EvalOptions& options) {
  std::vector<EdgeTriple> pos, neg;
  for (const auto& e : split.test_pos) {
    if (e.rel == rel) pos.push_back(e);
  }
  for (const auto& e : split.test_neg) {
    if (e.rel == rel) neg.push_back(e);
  }
  LinkPredictionResult r;
  if (pos.empty() || neg.empty()) return r;
  std::vector<double> pos_scores, neg_scores;
  CollectScores(model, pos, neg, ResolveNumThreads(options.num_threads),
                pos_scores, neg_scores);
  r.roc_auc = 100.0 * RocAuc(pos_scores, neg_scores);
  r.pr_auc = 100.0 * PrAuc(pos_scores, neg_scores);
  r.f1 = 100.0 * BestF1(pos_scores, neg_scores);
  return r;
}

namespace {

std::vector<double> PrAtKBuckets(const EmbeddingModel& model,
                                 const MultiplexHeteroGraph& full,
                                 const LinkSplit& split,
                                 const std::vector<EdgeTriple>& test_pos,
                                 const std::vector<size_t>& bucket_edges,
                                 size_t k, const EvalOptions& options,
                                 Rng& rng) {
  const size_t num_buckets = bucket_edges.size() - 1;
  std::vector<RankingQuery> queries =
      BuildQueries(test_pos, options.max_ranking_queries, rng);
  std::vector<size_t> bucket_of(queries.size(), num_buckets);
  for (size_t i = 0; i < queries.size(); ++i) {
    const size_t degree = full.TotalDegree(queries[i].src);
    for (size_t b = 0; b < num_buckets; ++b) {
      if (degree >= bucket_edges[b] && degree < bucket_edges[b + 1]) {
        bucket_of[i] = b;
        break;
      }
    }
  }
  std::vector<double> pr(queries.size(), 0.0);
  RunParallel(ResolveNumThreads(options.num_threads), queries.size(),
              [&](size_t i) {
    if (bucket_of[i] == num_buckets) return;  // out of range
    std::vector<bool> hits =
        RankQuery(model, full, split.train_graph, queries[i], k);
    pr[i] = PrecisionAtK(hits, k);
  });
  std::vector<double> sums(num_buckets, 0.0);
  std::vector<size_t> counts(num_buckets, 0);
  for (size_t i = 0; i < queries.size(); ++i) {
    if (bucket_of[i] == num_buckets) continue;
    sums[bucket_of[i]] += pr[i];
    ++counts[bucket_of[i]];
  }
  std::vector<double> out(num_buckets, 0.0);
  for (size_t b = 0; b < num_buckets; ++b) {
    if (counts[b] > 0) out[b] = sums[b] / static_cast<double>(counts[b]);
  }
  return out;
}

}  // namespace

std::vector<double> PrAtKByDegree(const EmbeddingModel& model,
                                  const MultiplexHeteroGraph& full,
                                  const LinkSplit& split,
                                  const std::vector<size_t>& bucket_edges,
                                  size_t k, const EvalOptions& options,
                                  Rng& rng) {
  return PrAtKBuckets(model, full, split, split.test_pos, bucket_edges, k,
                      options, rng);
}

std::vector<double> PrAtKByDegreeForRelation(
    const EmbeddingModel& model, const MultiplexHeteroGraph& full,
    const LinkSplit& split, RelationId rel,
    const std::vector<size_t>& bucket_edges, size_t k,
    const EvalOptions& options, Rng& rng) {
  std::vector<EdgeTriple> pos;
  for (const auto& e : split.test_pos) {
    if (e.rel == rel) pos.push_back(e);
  }
  return PrAtKBuckets(model, full, split, pos, bucket_edges, k, options, rng);
}

}  // namespace hybridgnn
