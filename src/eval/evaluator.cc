#include "eval/evaluator.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "eval/metrics.h"

namespace hybridgnn {

namespace {

void CollectScores(const EmbeddingModel& model,
                   const std::vector<EdgeTriple>& pos,
                   const std::vector<EdgeTriple>& neg,
                   std::vector<double>& pos_scores,
                   std::vector<double>& neg_scores) {
  pos_scores.reserve(pos.size());
  neg_scores.reserve(neg.size());
  for (const auto& e : pos) {
    pos_scores.push_back(model.Score(e.src, e.dst, e.rel));
  }
  for (const auto& e : neg) {
    neg_scores.push_back(model.Score(e.src, e.dst, e.rel));
  }
}

/// Ranking queries: test positives grouped by (source, relation). The
/// "source" is whichever endpoint has more test edges grouped under it —
/// we simply group by e.src (canonical lower id), which is symmetric enough
/// for undirected evaluation.
struct RankingQuery {
  NodeId src;
  RelationId rel;
  std::vector<NodeId> positives;
};

std::vector<RankingQuery> BuildQueries(const std::vector<EdgeTriple>& test_pos,
                                       size_t max_queries, Rng& rng) {
  std::map<std::pair<NodeId, RelationId>, std::vector<NodeId>> grouped;
  for (const auto& e : test_pos) {
    grouped[{e.src, e.rel}].push_back(e.dst);
  }
  std::vector<RankingQuery> queries;
  queries.reserve(grouped.size());
  for (auto& [key, positives] : grouped) {
    queries.push_back(RankingQuery{key.first, key.second,
                                   std::move(positives)});
  }
  if (max_queries > 0 && queries.size() > max_queries) {
    rng.Shuffle(queries);
    queries.resize(max_queries);
  }
  return queries;
}

/// Ranks candidates for one query and returns per-rank hit flags.
std::vector<bool> RankQuery(const EmbeddingModel& model,
                            const MultiplexHeteroGraph& full,
                            const MultiplexHeteroGraph& train,
                            const RankingQuery& q, size_t k) {
  const NodeTypeId want = full.node_type(q.positives.front());
  std::set<NodeId> pos_set(q.positives.begin(), q.positives.end());
  // Candidates: all nodes of the target type, excluding the source and its
  // training neighbors under this relation.
  auto train_nbrs = train.Neighbors(q.src, q.rel);
  std::set<NodeId> exclude(train_nbrs.begin(), train_nbrs.end());
  std::vector<std::pair<double, NodeId>> scored;
  for (NodeId cand : full.NodesOfType(want)) {
    if (cand == q.src || exclude.count(cand)) continue;
    scored.emplace_back(model.Score(q.src, cand, q.rel), cand);
  }
  const size_t top = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + top, scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<bool> hits;
  hits.reserve(top);
  for (size_t i = 0; i < top; ++i) {
    hits.push_back(pos_set.count(scored[i].second) > 0);
  }
  return hits;
}

}  // namespace

double EmbeddingModel::Score(NodeId u, NodeId v, RelationId r) const {
  Tensor eu = Embedding(u, r);
  Tensor ev = Embedding(v, r);
  double s = 0.0;
  for (size_t j = 0; j < eu.cols(); ++j) {
    s += static_cast<double>(eu.At(0, j)) * ev.At(0, j);
  }
  return s;
}

LinkPredictionResult EvaluateLinkPrediction(const EmbeddingModel& model,
                                            const MultiplexHeteroGraph& full,
                                            const LinkSplit& split,
                                            const EvalOptions& options,
                                            Rng& rng) {
  LinkPredictionResult r;
  std::vector<double> pos_scores, neg_scores;
  CollectScores(model, split.test_pos, split.test_neg, pos_scores,
                neg_scores);
  r.roc_auc = 100.0 * RocAuc(pos_scores, neg_scores);
  r.pr_auc = 100.0 * PrAuc(pos_scores, neg_scores);
  r.f1 = 100.0 * BestF1(pos_scores, neg_scores);

  std::vector<RankingQuery> queries =
      BuildQueries(split.test_pos, options.max_ranking_queries, rng);
  if (!queries.empty()) {
    double pr_sum = 0.0, hr_sum = 0.0;
    for (const auto& q : queries) {
      std::vector<bool> hits =
          RankQuery(model, full, split.train_graph, q, options.k);
      pr_sum += PrecisionAtK(hits, options.k);
      hr_sum += HitRatioAtK(hits, options.k, q.positives.size());
    }
    r.pr_at_k = pr_sum / static_cast<double>(queries.size());
    r.hr_at_k = hr_sum / static_cast<double>(queries.size());
  }
  return r;
}

LinkPredictionResult EvaluateRelation(const EmbeddingModel& model,
                                      const LinkSplit& split, RelationId rel) {
  std::vector<EdgeTriple> pos, neg;
  for (const auto& e : split.test_pos) {
    if (e.rel == rel) pos.push_back(e);
  }
  for (const auto& e : split.test_neg) {
    if (e.rel == rel) neg.push_back(e);
  }
  LinkPredictionResult r;
  if (pos.empty() || neg.empty()) return r;
  std::vector<double> pos_scores, neg_scores;
  CollectScores(model, pos, neg, pos_scores, neg_scores);
  r.roc_auc = 100.0 * RocAuc(pos_scores, neg_scores);
  r.pr_auc = 100.0 * PrAuc(pos_scores, neg_scores);
  r.f1 = 100.0 * BestF1(pos_scores, neg_scores);
  return r;
}

namespace {

std::vector<double> PrAtKBuckets(const EmbeddingModel& model,
                                 const MultiplexHeteroGraph& full,
                                 const LinkSplit& split,
                                 const std::vector<EdgeTriple>& test_pos,
                                 const std::vector<size_t>& bucket_edges,
                                 size_t k, Rng& rng) {
  const size_t num_buckets = bucket_edges.size() - 1;
  std::vector<double> sums(num_buckets, 0.0);
  std::vector<size_t> counts(num_buckets, 0);
  std::vector<RankingQuery> queries = BuildQueries(test_pos, 400, rng);
  for (const auto& q : queries) {
    const size_t degree = full.TotalDegree(q.src);
    size_t bucket = num_buckets;  // sentinel: out of range
    for (size_t b = 0; b < num_buckets; ++b) {
      if (degree >= bucket_edges[b] && degree < bucket_edges[b + 1]) {
        bucket = b;
        break;
      }
    }
    if (bucket == num_buckets) continue;
    std::vector<bool> hits =
        RankQuery(model, full, split.train_graph, q, k);
    sums[bucket] += PrecisionAtK(hits, k);
    ++counts[bucket];
  }
  std::vector<double> out(num_buckets, 0.0);
  for (size_t b = 0; b < num_buckets; ++b) {
    if (counts[b] > 0) out[b] = sums[b] / static_cast<double>(counts[b]);
  }
  return out;
}

}  // namespace

std::vector<double> PrAtKByDegree(const EmbeddingModel& model,
                                  const MultiplexHeteroGraph& full,
                                  const LinkSplit& split,
                                  const std::vector<size_t>& bucket_edges,
                                  size_t k, Rng& rng) {
  return PrAtKBuckets(model, full, split, split.test_pos, bucket_edges, k,
                      rng);
}

std::vector<double> PrAtKByDegreeForRelation(
    const EmbeddingModel& model, const MultiplexHeteroGraph& full,
    const LinkSplit& split, RelationId rel,
    const std::vector<size_t>& bucket_edges, size_t k, Rng& rng) {
  std::vector<EdgeTriple> pos;
  for (const auto& e : split.test_pos) {
    if (e.rel == rel) pos.push_back(e);
  }
  return PrAtKBuckets(model, full, split, pos, bucket_edges, k, rng);
}

}  // namespace hybridgnn
