#ifndef HYBRIDGNN_EVAL_EVALUATOR_H_
#define HYBRIDGNN_EVAL_EVALUATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/split.h"
#include "eval/embedding_model.h"
#include "graph/graph.h"

namespace hybridgnn {

/// The five columns of Tables III/IV: ROC-AUC, PR-AUC, F1 are percentages;
/// PR@K / HR@K are raw ratios, exactly as in the paper.
struct LinkPredictionResult {
  double roc_auc = 0.0;
  double pr_auc = 0.0;
  double f1 = 0.0;
  double pr_at_k = 0.0;
  double hr_at_k = 0.0;
};

struct EvalOptions {
  size_t k = 10;
  /// Cap on ranking queries (distinct test sources) per relation, for bench
  /// runtime; 0 = no cap.
  size_t max_ranking_queries = 200;
  /// Worker threads for candidate scoring and query ranking. 0 defers to
  /// HYBRIDGNN_THREADS (common/parallel.h); 1 runs serially. Results are
  /// identical for every thread count — queries are independent and land in
  /// indexed slots.
  size_t num_threads = 0;
};

/// Scores a fitted model on held-out positives/negatives.
///
/// Classification metrics use the paired positive/negative lists. Ranking
/// metrics (PR@K / HR@K) rank, for every test source node, all nodes of the
/// positive target's type that are not training-neighbors, then measure
/// hits against that source's test positives — the paper's top-K
/// recommendation protocol.
LinkPredictionResult EvaluateLinkPrediction(const EmbeddingModel& model,
                                            const MultiplexHeteroGraph& full,
                                            const LinkSplit& split,
                                            const EvalOptions& options,
                                            Rng& rng);

/// Classification-only variant restricted to one relation (Table VI).
/// Honors `options.num_threads` for batched scoring; the ranking-related
/// options are unused here.
LinkPredictionResult EvaluateRelation(const EmbeddingModel& model,
                                      const LinkSplit& split, RelationId r,
                                      const EvalOptions& options = {});

/// Per-degree-bucket PR@K (Fig. 7 / Table VIII): nodes are bucketed by
/// *full-graph* total degree into `bucket_edges.size()-1` clusters
/// [e_i, e_{i+1}); returns mean PR@K per bucket (NaN-free; empty -> 0).
/// Honors `options.max_ranking_queries` and `options.num_threads`; the
/// number of ranked candidates per query is `k`, not `options.k`.
std::vector<double> PrAtKByDegree(const EmbeddingModel& model,
                                  const MultiplexHeteroGraph& full,
                                  const LinkSplit& split,
                                  const std::vector<size_t>& bucket_edges,
                                  size_t k, const EvalOptions& options,
                                  Rng& rng);

/// Same bucketing restricted to one relation's test edges.
std::vector<double> PrAtKByDegreeForRelation(
    const EmbeddingModel& model, const MultiplexHeteroGraph& full,
    const LinkSplit& split, RelationId rel,
    const std::vector<size_t>& bucket_edges, size_t k,
    const EvalOptions& options, Rng& rng);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_EVAL_EVALUATOR_H_
