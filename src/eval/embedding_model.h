#ifndef HYBRIDGNN_EVAL_EMBEDDING_MODEL_H_
#define HYBRIDGNN_EVAL_EMBEDDING_MODEL_H_

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "tensor/tensor.h"

namespace hybridgnn {

/// One progress tick emitted during Fit. `phase` names the pipeline stage
/// ("corpus", "pretrain", "epoch", "cache", ...); `step` counts from 1 to
/// `total_steps` within that phase (total_steps == 0 when unknown).
struct FitProgress {
  std::string phase;
  size_t step = 0;
  size_t total_steps = 0;
};

/// Cross-model training options. Every model accepts these; models that
/// have no parallel path simply train serially regardless of num_threads.
struct FitOptions {
  /// Worker threads for walk generation, SGNS pretraining, minibatch
  /// training and embedding-cache construction. 0 (the default) resolves
  /// through HYBRIDGNN_THREADS (common/env.h); 1 forces the serial path,
  /// which is bit-identical to the original single-threaded pipeline.
  size_t num_threads = 0;

  /// When true, every stage whose parallel schedule is nondeterministic
  /// (Hogwild SGNS, racy minibatch gradient order) falls back to its serial
  /// schedule, so repeated runs with the same seed and the same
  /// `num_threads` produce bit-identical models. Stages that are
  /// reproducible in parallel (walk corpus, frozen-embedding cache) stay
  /// parallel.
  bool deterministic = false;

  /// Compile each minibatch step's autograd graph into an execution plan
  /// (src/plan) the first time its structure signature is seen, then replay
  /// the optimized plan with zero graph construction on every later step
  /// with the same signature. Replayed steps are bitwise identical to the
  /// eager path (loss values and gradients), so this flag changes speed,
  /// never results. Honored by the minibatch trainers (HybridGNN, GATNE);
  /// other models ignore it. The HYBRIDGNN_PLAN env var overrides this in
  /// both directions ("on"/"1" force-enables, "off"/"0" disables).
  bool compile_plan = false;

  /// Invoked from the main training thread at stage boundaries / epoch
  /// ticks. Must be cheap; never invoked concurrently.
  std::function<void(const FitProgress&)> progress_callback;

  /// `num_threads` with the 0 -> HYBRIDGNN_THREADS default applied.
  size_t threads() const;

  /// Emits a progress tick if a callback is installed.
  void Report(const char* phase, size_t step, size_t total_steps) const;
};

/// Common interface every model in this repo implements — HybridGNN and all
/// nine baselines. A model is fit on a *training* graph and then asked for
/// relationship-specific node embeddings; the evaluator scores candidate
/// links with sigmoid(dot(e(u|r), e(v|r))).
///
/// Relation-blind models (DeepWalk, GCN, ...) simply ignore `r`.
class EmbeddingModel {
 public:
  virtual ~EmbeddingModel() = default;

  /// Model name for reports ("HybridGNN", "GATNE", ...).
  virtual std::string name() const = 0;

  /// Trains on `train_graph` under `options`. Must be called before
  /// Embedding/Score.
  virtual Status Fit(const MultiplexHeteroGraph& train_graph,
                     const FitOptions& options) = 0;

  /// Convenience overload: Fit with default options. Derived classes that
  /// override the two-argument Fit should add `using EmbeddingModel::Fit;`
  /// so this wrapper stays visible through their type.
  Status Fit(const MultiplexHeteroGraph& train_graph) {
    return Fit(train_graph, FitOptions{});
  }

  /// Relationship-specific embedding e*_{v,r} as a 1 x d row.
  virtual Tensor Embedding(NodeId v, RelationId r) const = 0;

  /// Batched embedding lookup: row i of the result is Embedding(queries[i]).
  /// The default calls Embedding per query; models with a cheaper bulk path
  /// (a frozen cache, a single gather) should override.
  virtual Tensor EmbeddingsFor(
      std::span<const std::pair<NodeId, RelationId>> queries) const;

  /// Link score for (u, v) under r. Default: dot of the two embeddings
  /// (monotone in sigmoid, so threshold-free metrics are unaffected).
  virtual double Score(NodeId u, NodeId v, RelationId r) const;

  /// Materializes the frozen table e*_{v,r} for one relation as a
  /// num_nodes x d tensor (row v = Embedding(v, r)) — the export hook the
  /// serve/ checkpoint writer builds on. Rows are produced in fixed-size
  /// chunks through EmbeddingsFor, chunks run across `num_threads` workers
  /// (0 defers to HYBRIDGNN_THREADS), and every chunk lands in its own row
  /// range, so the result is independent of the thread count.
  Tensor ExportRelationTable(size_t num_nodes, RelationId r,
                             size_t num_threads = 0) const;

  /// Batched link scoring: element i is Score(queries[i]). The default
  /// fetches both endpoints through EmbeddingsFor and takes row dot
  /// products — the batched equivalent of the default Score, so cached
  /// models pay one gather instead of N virtual calls + N small-tensor
  /// allocations. Models that override Score with a non-dot decoder must
  /// override this too (R-GCN's DistMult does).
  virtual std::vector<double> ScoreMany(
      std::span<const EdgeTriple> queries) const;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_EVAL_EMBEDDING_MODEL_H_
