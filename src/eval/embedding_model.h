#ifndef HYBRIDGNN_EVAL_EMBEDDING_MODEL_H_
#define HYBRIDGNN_EVAL_EMBEDDING_MODEL_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"
#include "tensor/tensor.h"

namespace hybridgnn {

/// Common interface every model in this repo implements — HybridGNN and all
/// nine baselines. A model is fit on a *training* graph and then asked for
/// relationship-specific node embeddings; the evaluator scores candidate
/// links with sigmoid(dot(e(u|r), e(v|r))).
///
/// Relation-blind models (DeepWalk, GCN, ...) simply ignore `r`.
class EmbeddingModel {
 public:
  virtual ~EmbeddingModel() = default;

  /// Model name for reports ("HybridGNN", "GATNE", ...).
  virtual std::string name() const = 0;

  /// Trains on `train_graph`. Must be called before Embedding/Score.
  virtual Status Fit(const MultiplexHeteroGraph& train_graph) = 0;

  /// Relationship-specific embedding e*_{v,r} as a 1 x d row.
  virtual Tensor Embedding(NodeId v, RelationId r) const = 0;

  /// Link score for (u, v) under r. Default: dot of the two embeddings
  /// (monotone in sigmoid, so threshold-free metrics are unaffected).
  virtual double Score(NodeId u, NodeId v, RelationId r) const;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_EVAL_EMBEDDING_MODEL_H_
