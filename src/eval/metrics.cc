#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hybridgnn {

namespace {

/// (score, is_positive) pairs sorted by descending score.
std::vector<std::pair<double, bool>> Ranked(
    const std::vector<double>& pos_scores,
    const std::vector<double>& neg_scores) {
  std::vector<std::pair<double, bool>> all;
  all.reserve(pos_scores.size() + neg_scores.size());
  for (double s : pos_scores) all.emplace_back(s, true);
  for (double s : neg_scores) all.emplace_back(s, false);
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;  // deterministic tie-break
  });
  return all;
}

}  // namespace

double RocAuc(const std::vector<double>& pos_scores,
              const std::vector<double>& neg_scores) {
  HYBRIDGNN_CHECK(!pos_scores.empty() && !neg_scores.empty())
      << "RocAuc needs both classes";
  // Rank-sum with midranks for ties.
  std::vector<std::pair<double, bool>> all = Ranked(pos_scores, neg_scores);
  std::reverse(all.begin(), all.end());  // ascending
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < all.size()) {
    size_t j = i;
    while (j < all.size() && all[j].first == all[i].first) ++j;
    const double midrank = 0.5 * static_cast<double>(i + 1 + j);  // 1-based
    for (size_t k = i; k < j; ++k) {
      if (all[k].second) rank_sum_pos += midrank;
    }
    i = j;
  }
  const double np = static_cast<double>(pos_scores.size());
  const double nn = static_cast<double>(neg_scores.size());
  return (rank_sum_pos - np * (np + 1.0) / 2.0) / (np * nn);
}

double PrAuc(const std::vector<double>& pos_scores,
             const std::vector<double>& neg_scores) {
  HYBRIDGNN_CHECK(!pos_scores.empty()) << "PrAuc needs positives";
  std::vector<std::pair<double, bool>> all = Ranked(pos_scores, neg_scores);
  // Average precision: sum over positives of precision at their rank.
  double ap = 0.0;
  size_t tp = 0;
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].second) {
      ++tp;
      ap += static_cast<double>(tp) / static_cast<double>(i + 1);
    }
  }
  return ap / static_cast<double>(pos_scores.size());
}

double BestF1(const std::vector<double>& pos_scores,
              const std::vector<double>& neg_scores) {
  HYBRIDGNN_CHECK(!pos_scores.empty()) << "BestF1 needs positives";
  std::vector<std::pair<double, bool>> all = Ranked(pos_scores, neg_scores);
  const double total_pos = static_cast<double>(pos_scores.size());
  double best = 0.0;
  size_t tp = 0;
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].second) ++tp;
    // Threshold just below all[i].first: predictions = i+1 positives.
    if (i + 1 < all.size() && all[i + 1].first == all[i].first) continue;
    const double precision = static_cast<double>(tp) /
                             static_cast<double>(i + 1);
    const double recall = static_cast<double>(tp) / total_pos;
    if (precision + recall > 0) {
      best = std::max(best, 2.0 * precision * recall / (precision + recall));
    }
  }
  return best;
}

ThresholdMetrics MetricsAtThreshold(const std::vector<double>& pos_scores,
                                    const std::vector<double>& neg_scores,
                                    double threshold) {
  size_t tp = 0, fn = 0, fp = 0, tn = 0;
  for (double s : pos_scores) (s >= threshold ? tp : fn)++;
  for (double s : neg_scores) (s >= threshold ? fp : tn)++;
  ThresholdMetrics m;
  if (tp + fp > 0) m.precision = static_cast<double>(tp) / (tp + fp);
  if (tp + fn > 0) m.recall = static_cast<double>(tp) / (tp + fn);
  if (m.precision + m.recall > 0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  const size_t total = tp + fn + fp + tn;
  if (total > 0) m.accuracy = static_cast<double>(tp + tn) / total;
  return m;
}

double PrecisionAtK(const std::vector<bool>& ranked_hits, size_t k) {
  HYBRIDGNN_CHECK(k > 0);
  size_t hits = 0;
  const size_t upto = std::min(k, ranked_hits.size());
  for (size_t i = 0; i < upto; ++i) {
    if (ranked_hits[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double HitRatioAtK(const std::vector<bool>& ranked_hits, size_t k,
                   size_t num_relevant) {
  if (num_relevant == 0) return 0.0;
  size_t hits = 0;
  const size_t upto = std::min(k, ranked_hits.size());
  for (size_t i = 0; i < upto; ++i) {
    if (ranked_hits[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(num_relevant);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double SampleStdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

}  // namespace hybridgnn
