#include "eval/stats_test.h"

#include <cmath>

#include "common/logging.h"
#include "eval/metrics.h"

namespace hybridgnn {

namespace {

double LogGamma(double x) { return std::lgamma(x); }

/// Lentz's continued fraction for the incomplete beta function.
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-12;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTPValue(double t, double df) {
  if (df <= 0.0) return 1.0;
  const double x = df / (df + t * t);
  // Two-sided: P(|T| > |t|) = I_x(df/2, 1/2).
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b) {
  TTestResult r;
  if (a.size() < 2 || b.size() < 2) return r;
  const double ma = Mean(a), mb = Mean(b);
  const double sa = SampleStdDev(a), sb = SampleStdDev(b);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double va = sa * sa / na;
  const double vb = sb * sb / nb;
  const double denom = std::sqrt(va + vb);
  if (denom < 1e-15) {
    r.t_statistic = ma == mb ? 0.0 : (ma > mb ? 1e9 : -1e9);
    r.degrees_of_freedom = na + nb - 2.0;
    r.p_value = ma == mb ? 1.0 : 0.0;
    return r;
  }
  r.t_statistic = (ma - mb) / denom;
  r.degrees_of_freedom =
      (va + vb) * (va + vb) /
      (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  r.p_value = StudentTPValue(r.t_statistic, r.degrees_of_freedom);
  return r;
}

TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b) {
  TTestResult r;
  HYBRIDGNN_CHECK(a.size() == b.size()) << "paired t-test needs equal sizes";
  if (a.size() < 2) return r;
  std::vector<double> diff(a.size());
  for (size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  const double md = Mean(diff);
  const double sd = SampleStdDev(diff);
  const double n = static_cast<double>(diff.size());
  if (sd < 1e-15) {
    r.t_statistic = md == 0.0 ? 0.0 : (md > 0.0 ? 1e9 : -1e9);
    r.degrees_of_freedom = n - 1.0;
    r.p_value = md == 0.0 ? 1.0 : 0.0;
    return r;
  }
  r.t_statistic = md / (sd / std::sqrt(n));
  r.degrees_of_freedom = n - 1.0;
  r.p_value = StudentTPValue(r.t_statistic, r.degrees_of_freedom);
  return r;
}

}  // namespace hybridgnn
