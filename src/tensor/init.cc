#include "tensor/init.h"

#include <cmath>

namespace hybridgnn {

void XavierUniform(Tensor& t, Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(t.rows() + t.cols()));
  UniformInit(t, rng, -a, a);
}

void UniformInit(Tensor& t, Rng& rng, float lo, float hi) {
  float* p = t.data();
  for (size_t i = 0; i < t.size(); ++i) p[i] = rng.UniformFloat(lo, hi);
}

void NormalInit(Tensor& t, Rng& rng, float mean, float stddev) {
  float* p = t.data();
  for (size_t i = 0; i < t.size(); ++i) {
    p[i] = static_cast<float>(rng.Normal(mean, stddev));
  }
}

void EmbeddingInit(Tensor& t, Rng& rng) {
  const float a = 0.5f / static_cast<float>(t.cols());
  UniformInit(t, rng, -a, a);
}

}  // namespace hybridgnn
