#ifndef HYBRIDGNN_TENSOR_TENSOR_OPS_H_
#define HYBRIDGNN_TENSOR_TENSOR_OPS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace hybridgnn {

/// Raw (non-differentiable) tensor math. The autograd layer composes these.

/// C = A * B. A is [m,k], B is [k,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
/// C = A^T * B. A is [k,m], B is [k,n] -> [m,n].
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// C = A * B^T. A is [m,k], B is [n,k] -> [m,n].
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

/// Elementwise sum / difference / product (shapes must match).
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);

/// Adds row vector `bias` (1 x n) to every row of `a` ([m,n]).
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);

/// alpha * a.
Tensor Scale(const Tensor& a, float alpha);

/// Transpose.
Tensor Transpose(const Tensor& a);

/// Elementwise activations.
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
/// Elementwise natural log (inputs clamped to >= 1e-12).
Tensor Log(const Tensor& a);
Tensor Exp(const Tensor& a);

/// Row-wise softmax of an [m,n] matrix (numerically stabilized).
Tensor SoftmaxRows(const Tensor& a);

/// Row-wise dot product: a and b are [m,n] -> [m,1].
Tensor RowwiseDot(const Tensor& a, const Tensor& b);

/// Mean over rows: [m,n] -> [1,n].
Tensor MeanRows(const Tensor& a);
/// Sum over rows: [m,n] -> [1,n].
Tensor SumRows(const Tensor& a);

/// Gathers rows `indices` of `table` into a new [k, n] tensor. The span
/// overload lets callers reuse index scratch buffers.
Tensor GatherRows(const Tensor& table, std::span<const int32_t> indices);
Tensor GatherRows(const Tensor& table, const std::vector<int32_t>& indices);

/// Vertically stacks matrices with equal column counts.
Tensor ConcatRows(const std::vector<Tensor>& parts);
/// Horizontally concatenates matrices with equal row counts.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Numerically stable elementwise log(sigmoid(x)): min(x,0) - log1p(e^-|x|).
Tensor LogSigmoid(const Tensor& a);

/// ---- Destination-passing variants ----
///
/// Each `XInto(args..., dst)` computes exactly what `X(args...)` returns —
/// same loops, same summation order, bit-identical floats — but writes into
/// a caller-owned, already-shaped `dst` instead of allocating. They are what
/// the plan executor (src/plan) replays into its pre-planned step buffers so
/// a compiled step performs zero allocations. The elementwise ones
/// (Add/Sub/Mul/Scale/AddRowBroadcast/activations) tolerate `dst` aliasing
/// an input of the same shape — the executor's inplacing pass relies on
/// that; the shape-changing ones (MatMul/Transpose/reductions/gather) do
/// not, and dst must be distinct storage.
void MatMulInto(const Tensor& a, const Tensor& b, Tensor* dst);
void AddInto(const Tensor& a, const Tensor& b, Tensor* dst);
void SubInto(const Tensor& a, const Tensor& b, Tensor* dst);
void MulInto(const Tensor& a, const Tensor& b, Tensor* dst);
void AddRowBroadcastInto(const Tensor& a, const Tensor& bias, Tensor* dst);
void ScaleInto(const Tensor& a, float alpha, Tensor* dst);
void TransposeInto(const Tensor& a, Tensor* dst);
void SigmoidInto(const Tensor& a, Tensor* dst);
void TanhInto(const Tensor& a, Tensor* dst);
void ReluInto(const Tensor& a, Tensor* dst);
void LogSigmoidInto(const Tensor& a, Tensor* dst);
void SoftmaxRowsInto(const Tensor& a, Tensor* dst);
void RowwiseDotInto(const Tensor& a, const Tensor& b, Tensor* dst);
void MeanRowsInto(const Tensor& a, Tensor* dst);
void SumRowsInto(const Tensor& a, Tensor* dst);
void GatherRowsInto(const Tensor& table, std::span<const int32_t> indices,
                    Tensor* dst);

/// L2-normalizes each row in place (rows with tiny norm are left unchanged).
void L2NormalizeRowsInPlace(Tensor& a);

/// Cosine similarity between two equal-length row vectors (1 x n).
float CosineSimilarity(const Tensor& a, const Tensor& b);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_TENSOR_TENSOR_OPS_H_
