#ifndef HYBRIDGNN_TENSOR_INIT_H_
#define HYBRIDGNN_TENSOR_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace hybridgnn {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)),
/// fan_in = rows, fan_out = cols.
void XavierUniform(Tensor& t, Rng& rng);

/// U(lo, hi).
void UniformInit(Tensor& t, Rng& rng, float lo, float hi);

/// N(mean, stddev).
void NormalInit(Tensor& t, Rng& rng, float mean, float stddev);

/// Classic word2vec-style embedding init: U(-0.5/dim, 0.5/dim).
void EmbeddingInit(Tensor& t, Rng& rng);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_TENSOR_INIT_H_
