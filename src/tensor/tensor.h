#ifndef HYBRIDGNN_TENSOR_TENSOR_H_
#define HYBRIDGNN_TENSOR_TENSOR_H_

#include <cstddef>
#include <string>
#include <vector>

namespace hybridgnn {

/// Dense row-major float32 matrix. Vectors are represented as 1xN or Nx1.
/// This is the only numeric container in the library; all models (HybridGNN
/// and baselines) compute on it. Copyable and movable.
class Tensor {
 public:
  /// Empty 0x0 tensor.
  Tensor() : rows_(0), cols_(0) {}
  /// Zero-initialized rows x cols tensor.
  Tensor(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}
  /// Takes ownership of `data`, which must have rows*cols elements.
  Tensor(size_t rows, size_t cols, std::vector<float> data);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  static Tensor Zeros(size_t rows, size_t cols) { return Tensor(rows, cols); }
  static Tensor Full(size_t rows, size_t cols, float value);
  static Tensor Ones(size_t rows, size_t cols) {
    return Full(rows, cols, 1.0f);
  }
  /// Identity matrix of size n.
  static Tensor Eye(size_t n);
  /// 1 x values.size() row vector.
  static Tensor Row(std::vector<float> values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  float& operator()(size_t r, size_t c) { return At(r, c); }
  float operator()(size_t r, size_t c) const { return At(r, c); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const float* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  /// Sets every element to `value`.
  void Fill(float value);
  /// Sets every element to zero (keeps shape).
  void Zero() { Fill(0.0f); }

  /// this += other (shapes must match).
  void AddInPlace(const Tensor& other);
  /// this += alpha * other (shapes must match).
  void Axpy(float alpha, const Tensor& other);
  /// this *= alpha.
  void ScaleInPlace(float alpha);

  /// Returns a copy of row r as a 1 x cols tensor.
  Tensor CopyRow(size_t r) const;

  /// Sum of all elements.
  double Sum() const;
  /// Squared Frobenius norm.
  double SquaredNorm() const;
  /// Largest absolute element.
  float AbsMax() const;

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// "Tensor(3x4)" plus a few leading values; for debugging/logging.
  std::string ShapeString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_TENSOR_TENSOR_H_
