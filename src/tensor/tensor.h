#ifndef HYBRIDGNN_TENSOR_TENSOR_H_
#define HYBRIDGNN_TENSOR_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tensor/pool.h"

namespace hybridgnn {

/// Dense row-major float32 matrix. Vectors are represented as 1xN or Nx1.
/// This is the only numeric container in the library; all models (HybridGNN
/// and baselines) compute on it. Copyable and movable.
///
/// Backing storage comes from the thread-local TensorPool (tensor/pool.h):
/// small and medium buffers are recycled through size-bucketed free lists so
/// the training hot loop reaches a zero-allocation steady state, while large
/// buffers (embedding tables, caches) are exact-sized heap allocations.
/// `Uninit` skips the zero fill for outputs that are fully overwritten.
class Tensor {
 public:
  /// Empty 0x0 tensor.
  Tensor() noexcept = default;
  /// Zero-initialized rows x cols tensor.
  Tensor(size_t rows, size_t cols);
  /// Copies `data`, which must have rows*cols elements.
  Tensor(size_t rows, size_t cols, std::vector<float> data);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept
      : rows_(other.rows_),
        cols_(other.cols_),
        data_(other.data_),
        cap_class_(other.cap_class_) {
    other.rows_ = other.cols_ = 0;
    other.data_ = nullptr;
    other.cap_class_ = pool::kUnpooledClass;
  }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      FreeBuffer();
      rows_ = other.rows_;
      cols_ = other.cols_;
      data_ = other.data_;
      cap_class_ = other.cap_class_;
      other.rows_ = other.cols_ = 0;
      other.data_ = nullptr;
      other.cap_class_ = pool::kUnpooledClass;
    }
    return *this;
  }
  ~Tensor() { FreeBuffer(); }

  static Tensor Zeros(size_t rows, size_t cols) { return Tensor(rows, cols); }
  /// Allocates without zero-filling. The contents are unspecified; only use
  /// when every element is written before being read.
  static Tensor Uninit(size_t rows, size_t cols) {
    return Tensor(rows, cols, UninitTag{});
  }
  static Tensor Full(size_t rows, size_t cols, float value);
  static Tensor Ones(size_t rows, size_t cols) {
    return Full(rows, cols, 1.0f);
  }
  /// Identity matrix of size n.
  static Tensor Eye(size_t n);
  /// 1 x values.size() row vector.
  static Tensor Row(std::vector<float> values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  float& operator()(size_t r, size_t c) { return At(r, c); }
  float operator()(size_t r, size_t c) const { return At(r, c); }

  float* data() { return data_; }
  const float* data() const { return data_; }
  float* RowPtr(size_t r) { return data_ + r * cols_; }
  const float* RowPtr(size_t r) const { return data_ + r * cols_; }

  /// Sets every element to `value`.
  void Fill(float value);
  /// Sets every element to zero (keeps shape).
  void Zero();

  /// this += other (shapes must match).
  void AddInPlace(const Tensor& other);
  /// this += alpha * other (shapes must match).
  void Axpy(float alpha, const Tensor& other);
  /// this *= alpha.
  void ScaleInPlace(float alpha);

  /// Returns a copy of row r as a 1 x cols tensor.
  Tensor CopyRow(size_t r) const;

  /// Sum of all elements.
  double Sum() const;
  /// Squared Frobenius norm.
  double SquaredNorm() const;
  /// Largest absolute element.
  float AbsMax() const;

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// "Tensor(3x4)" plus a few leading values; for debugging/logging.
  std::string ShapeString() const;

 private:
  struct UninitTag {};
  Tensor(size_t rows, size_t cols, UninitTag);

  void FreeBuffer() {
    if (data_ != nullptr) {
      pool::Release(data_, cap_class_);
      data_ = nullptr;
    }
  }

  size_t rows_ = 0;
  size_t cols_ = 0;
  float* data_ = nullptr;
  uint8_t cap_class_ = pool::kUnpooledClass;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_TENSOR_TENSOR_H_
