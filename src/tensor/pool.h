#ifndef HYBRIDGNN_TENSOR_POOL_H_
#define HYBRIDGNN_TENSOR_POOL_H_

#include <cstddef>
#include <cstdint>

namespace hybridgnn::pool {

/// Size-bucketed, thread-local recycling pool for Tensor backing buffers.
///
/// Every Tensor allocation below the pooling threshold is rounded up to a
/// power-of-two capacity class and served from the calling thread's
/// free list when possible; Tensor destruction pushes the buffer back. The
/// pool is lock-free by construction (strictly thread-local state), so hot
/// training loops acquire and release buffers without synchronization, and a
/// warm pool makes steady-state minibatch steps allocation-free.
///
/// Buffers may migrate between threads: a Tensor acquired on a worker and
/// destroyed on the main thread releases into the main thread's pool. That
/// is safe (the memory came from the global heap) and self-balancing for the
/// fork/join batch pattern used in training.
///
/// Oversized buffers (> kMaxPooledElems) bypass the pool entirely and are
/// exact-sized, so large long-lived tables (embeddings, caches) never pay
/// the power-of-two rounding overhead.

/// Capacity-class sentinel for buffers that did not come from the pool.
inline constexpr uint8_t kUnpooledClass = 0xFF;

/// Largest element count served from the pool (4 MiB of floats).
inline constexpr size_t kMaxPooledElems = size_t{1} << 20;

/// Returns a buffer with capacity for at least `n` floats. `*cap_class`
/// receives the pool class (or kUnpooledClass) and must be passed back to
/// Release(). The contents are unspecified; callers that need zeros must
/// clear it. Returns nullptr when n == 0.
float* Acquire(size_t n, uint8_t* cap_class);

/// Returns a buffer obtained from Acquire(). Pooled buffers go back to the
/// calling thread's free list (or the heap once the per-thread cache is
/// full); unpooled buffers are freed directly. Safe during thread/process
/// teardown: once the thread's pool has been destroyed, buffers fall
/// through to the heap.
void Release(float* p, uint8_t cap_class);

/// Whether acquisitions on this thread currently use the pool. On by
/// default; the HYBRIDGNN_TENSOR_POOL=0 environment variable disables it
/// process-wide, and PoolScope overrides it per thread.
bool Enabled();

/// RAII override of Enabled() for the current thread. Used by differential
/// tests and benchmarks to compare pooled against plain-heap execution.
class PoolScope {
 public:
  explicit PoolScope(bool enabled);
  ~PoolScope();
  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  bool prev_;
};

/// Cumulative pool statistics (process-wide, all threads).
struct PoolStats {
  uint64_t hits = 0;        // acquisitions served from a free list
  uint64_t misses = 0;      // pooled-class acquisitions that hit the heap
  uint64_t miss_bytes = 0;  // bytes fetched from the heap on misses
};
PoolStats Stats();

/// Bytes fetched from the heap for pooled-class buffers so far. A flat
/// curve across training steps means the pool has reached steady state.
uint64_t MissBytes();

}  // namespace hybridgnn::pool

#endif  // HYBRIDGNN_TENSOR_POOL_H_
