#ifndef HYBRIDGNN_TENSOR_AUTOGRAD_H_
#define HYBRIDGNN_TENSOR_AUTOGRAD_H_

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace hybridgnn::ag {

/// Reverse-mode automatic differentiation over Tensor.
///
/// A computation is built dynamically: every op returns a `Var` (shared node)
/// that remembers its parents and how to push gradients back to them.
/// `Backward(root)` seeds d(root)=1 (root must be 1x1) and propagates in
/// reverse topological order. Gradients accumulate across calls until
/// `ZeroGrad` is invoked, matching the familiar PyTorch contract.
///
/// Two allocation regimes exist for graph structure:
///
/// - Heap mode (no active TapeScope): each op node is a `make_shared<Node>`
///   owning its parents, and its backward closure lives on the heap. This is
///   the safe default for setup code and anything that lets a Var escape.
/// - Tape mode (inside a TapeScope): nodes, parent arrays, and backward
///   closures are bump-allocated from the current thread's Tape arena, and
///   `Var` handles alias the tape's anchor instead of owning a per-node
///   control block. Leaving the scope rewinds the arena (destroying the
///   nodes and recycling their tensor buffers through the TensorPool)
///   without returning memory to the OS, so a warm steady-state training
///   step performs zero graph-structure allocations. Vars produced under a
///   TapeScope are invalidated when the scope ends and MUST NOT outlive it
///   (the outermost scope CHECK-fails if any handle is still alive).
///
/// `Param` always allocates on the heap: parameters outlive every tape.

class Node;
using Var = std::shared_ptr<Node>;

/// Op identity exposed to plan tracing (src/plan). Every typed op wrapper in
/// autograd.cc (and the segment ops in nn/sparse.cc) annotates the node it
/// creates with one of these kinds; a node created through raw MakeOp with no
/// annotation surfaces as kOpaque and poisons any active trace, forcing the
/// caller back to eager execution for that graph.
enum class OpKind : uint8_t {
  kConstant,
  kParam,
  kMatMul,
  kAdd,
  kSub,
  kMul,
  kAddRowBroadcast,
  kScale,
  kTranspose,
  kSigmoid,
  kTanh,
  kRelu,
  kLogSigmoid,
  kSoftmaxRows,
  kRowwiseDot,
  kMeanRows,
  kSumRows,
  kMeanAll,
  kSumAll,
  kConcatRows,
  kConcatCols,
  kSliceRows,
  kGatherRows,
  kBceWithLogits,
  kSegmentSum,
  kSegmentMean,
  kSegmentMax,
  kGatherRowsSegmented,
  kEwChain,  // plan-internal fused elementwise chain; never recorded
  kOpaque,
};

const char* OpKindName(OpKind kind);

/// Scalar / array attributes attached to an op annotation. Spans reference
/// the op's own stabilized storage (tape arrays or node-owned vectors) and
/// are only valid for the duration of the OnOp call; sinks that need them
/// later must copy.
struct OpAttrs {
  float alpha = 0.0f;               // Scale
  size_t start = 0;                 // SliceRows
  std::span<const int32_t> indices;   // GatherRows / GatherRowsSegmented
  std::span<const size_t> indptr;     // segment ops
  std::span<const float> floats;      // BceWithLogits targets
};

/// Observer for op construction on the current thread, installed by the plan
/// recorder. OnNodeCreated fires for every node MakeOp/Constant builds (so a
/// sink can detect un-annotated raw MakeOp calls); OnOp fires from the typed
/// wrapper right after, identifying the op. See src/plan/recorder.h.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnNodeCreated(Node* node) = 0;
  virtual void OnOp(OpKind kind, const Var& result,
                    std::span<const Var> parents, const OpAttrs& attrs) = 0;
  /// The tape this sink is recording, if any. TapeScope's destructor refuses
  /// to rewind a tape that is still being recorded.
  virtual const class Tape* tape() const { return nullptr; }
};

namespace detail {
/// The thread's installed trace sink (nullptr almost always). Exposed as a
/// thread_local so the per-op tracing hooks below compile to a single TLS
/// load + branch when tracing is off.
extern thread_local TraceSink* t_trace_sink;

inline bool Tracing() { return t_trace_sink != nullptr; }

inline void TraceNodeCreated(Node* node) {
  if (t_trace_sink != nullptr) t_trace_sink->OnNodeCreated(node);
}

inline void TraceOp(OpKind kind, const Var& result,
                    std::span<const Var> parents, const OpAttrs& attrs = {}) {
  t_trace_sink->OnOp(kind, result, parents, attrs);
}
}  // namespace detail

/// Installs `sink` as the thread's trace sink and returns the previous one
/// (restore it when done). Passing nullptr disables tracing.
TraceSink* SetTraceSink(TraceSink* sink);
TraceSink* CurrentTraceSink();

/// Type-erased backward closure: a plain function pointer plus a context
/// object that lives either on the tape arena or on the heap (owned by the
/// node). Replaces std::function to keep op construction allocation-free in
/// tape mode.
using BackwardInvoke = void (*)(void* ctx, Node& self);

class Node {
 public:
  Node(Tensor value, bool requires_grad)
      : value(std::move(value)), requires_grad(requires_grad) {}
  ~Node() {
    if (ctx_destroy_ != nullptr) ctx_destroy_(backward_ctx_);
  }
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  Tensor value;
  Tensor grad;  // Lazily allocated to value's shape on first accumulation.
  bool requires_grad;
  bool on_tape = false;   // allocated from a Tape arena
  uint32_t num_parents = 0;
  // Epoch stamp for Backward's topological sort: a node is "visited" when
  // its mark equals the current traversal epoch, replacing the per-call
  // unordered_set. Only op nodes (which are always thread-private) are ever
  // stamped; shared leaves are not traversed, so there is no cross-thread
  // write in data-parallel training.
  uint64_t visit_mark = 0;

  bool has_backward() const { return backward_invoke_ != nullptr; }
  Node* parent(size_t i) const {
    return parents_ != nullptr ? parents_[i] : keepalive_[i].get();
  }

  /// grad += g, allocating grad on first use.
  void AccumulateGrad(const Tensor& g);
  /// The dense tensor gradient contributions for this node land in: the
  /// per-thread sink slot when a GradSinkScope is active and this is a
  /// trainable leaf (same diversion rule as AccumulateGrad), otherwise the
  /// node's own grad — zero-materialized to value's shape on first use.
  /// For sparse backward ops (segmented scatters) that accumulate touched
  /// rows in place instead of building a dense per-call scratch gradient.
  Tensor& GradAccumulator();
  /// Clears the gradient (keeps allocation if shape already set).
  void ZeroGrad();

  void InvokeBackward() { backward_invoke_(backward_ctx_, *this); }

 private:
  friend class Tape;
  template <typename F>
  friend Var MakeOp(Tensor value, std::span<const Var> parents, F&& backward);

  BackwardInvoke backward_invoke_ = nullptr;
  void* backward_ctx_ = nullptr;
  void (*ctx_destroy_)(void*) = nullptr;  // heap mode: frees backward_ctx_
  Node** parents_ = nullptr;              // tape mode: arena-resident array
  std::vector<Var> keepalive_;            // heap mode: owns the parents
};

/// Per-thread bump arena for autograd graph structure (nodes, parent
/// arrays, backward closures). Memory is carved from geometrically grown
/// blocks; `Rewind` runs pending destructors and resets the bump pointer
/// without freeing blocks, so arenas reach a fixed footprint after the
/// first few minibatches. Use through TapeScope; Tape itself is not
/// thread-safe and must only be touched by its owning thread.
class Tape {
 public:
  Tape();
  ~Tape();
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// The tape installed by the innermost TapeScope on this thread, or
  /// nullptr when outside any scope (heap mode).
  static Tape* Current();

  /// Raw arena memory; alignment must be a power of two <= 64.
  void* Allocate(size_t bytes, size_t align);

  /// Constructs T in the arena, registering its destructor for Rewind when
  /// it is not trivially destructible.
  template <typename T, typename... Args>
  T* Create(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    T* obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back(DtorEntry{
          [](void* p) { static_cast<T*>(p)->~T(); }, obj});
    }
    return obj;
  }

  /// Arena array of a trivially-destructible element type.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Holds a shared reference until the enclosing scope rewinds; used to
  /// keep external (heap) parents such as Params alive for the tape's ops.
  void Retain(const Var& v) { retained_.push_back(v); }

  /// Wraps an arena node in a Var that aliases this tape's anchor — no
  /// control-block allocation, but the handle dies with the scope.
  Var MakeVar(Node* node) { return Var(anchor_, node); }

  size_t bytes_used() const;
  size_t bytes_reserved() const { return bytes_reserved_; }

  /// Number of live Vars aliasing this tape's anchor (excludes the tape's
  /// own reference). The plan recorder uses this to prove no traced Var
  /// escaped past finalization.
  size_t live_handles() const {
    return static_cast<size_t>(anchor_.use_count()) - 1;
  }

  /// Process-wide bytes currently reserved by all tape arenas. A flat curve
  /// across steps means every thread's arena has reached steady state.
  static uint64_t TotalReservedBytes();

 private:
  friend class TapeScope;

  struct DtorEntry {
    void (*fn)(void*);
    void* obj;
  };
  struct Block {
    char* ptr;
    size_t size;
  };
  struct Mark {
    size_t block_idx;
    size_t block_off;
    size_t dtor_count;
    size_t retained_count;
  };

  Mark Position() const {
    return Mark{cur_block_, cur_off_, dtors_.size(), retained_.size()};
  }
  /// Runs destructors registered after `mark` (newest first) and resets the
  /// bump pointer; blocks stay allocated for reuse.
  void Rewind(const Mark& mark);

  void AddBlock(size_t min_size);

  std::vector<Block> blocks_;
  size_t cur_block_ = 0;
  size_t cur_off_ = 0;
  size_t bytes_reserved_ = 0;
  std::vector<DtorEntry> dtors_;
  std::vector<Var> retained_;
  std::shared_ptr<char> anchor_;
};

/// RAII scope that makes the calling thread's Tape the active arena for all
/// ops built inside it. Nests: an inner scope rewinds only its own
/// allocations. Declare the scope BEFORE any Var it should cover, so the
/// Vars are destroyed first when the block exits:
///
///   {
///     ag::TapeScope scope;            // must outlive the Vars below
///     ag::Var loss = BuildGraph(...);
///     ag::Backward(loss);
///     optimizer.Step();
///   }                                  // loss dies, then the arena rewinds
class TapeScope {
 public:
  TapeScope();
  ~TapeScope();
  TapeScope(const TapeScope&) = delete;
  TapeScope& operator=(const TapeScope&) = delete;

 private:
  Tape* tape_;
  Tape* prev_current_;
  Tape::Mark mark_;
};

/// RAII scope that redirects *leaf-parameter* gradient accumulation on the
/// current thread into a private map keyed by Node pointer, instead of the
/// node's own `grad` field. Interior op nodes are unaffected (they are
/// built per-thread, so their grads never race); only shared trainable
/// leaves (requires_grad set, no backward fn) are redirected.
///
/// This is what makes data-parallel minibatch training safe: each worker
/// runs Backward on its own subgraph under a GradSinkScope, and the main
/// thread then reduces the per-worker sinks into the real `grad` fields
/// before the optimizer step. Nested scopes restore the previous sink on
/// destruction. Composes with TapeScope: sink slot tensors belong to the
/// sink map, not the tape, so they survive scope rewinds and can be reused
/// (zeroed, not destroyed) across minibatches.
class GradSinkScope {
 public:
  using Sink = std::unordered_map<Node*, Tensor>;
  explicit GradSinkScope(Sink* sink);
  ~GradSinkScope();
  GradSinkScope(const GradSinkScope&) = delete;
  GradSinkScope& operator=(const GradSinkScope&) = delete;

 private:
  Sink* prev_;
};

/// Creates a non-trainable node (no gradient tracked unless a trainable
/// ancestor is attached downstream). Arena-allocated under a TapeScope.
Var Constant(Tensor value);
/// Creates a trainable leaf (requires_grad = true). Always heap-allocated;
/// parameters outlive tapes.
Var Param(Tensor value);

/// Builds an op node from `value`, its parents, and a backward callable
/// `void(Node&)`. If no parent needs gradients the node is a plain constant
/// (backward dropped). Under a TapeScope the node, parent array, and
/// closure all live on the arena; otherwise they live on the heap, owned by
/// the returned Var. Backward callables should read their parents via
/// `n.parent(i)` (raw pointers) rather than capturing Vars.
template <typename F>
Var MakeOp(Tensor value, std::span<const Var> parents, F&& backward) {
  using Fn = std::decay_t<F>;
  bool req = false;
  for (const Var& p : parents) req |= p->requires_grad;
  Tape* tape = Tape::Current();
  if (tape == nullptr) {
    auto node = std::make_shared<Node>(std::move(value), req);
    if (req) {
      node->keepalive_.assign(parents.begin(), parents.end());
      node->num_parents = static_cast<uint32_t>(parents.size());
      Fn* ctx = new Fn(std::forward<F>(backward));
      node->backward_ctx_ = ctx;
      node->backward_invoke_ = [](void* c, Node& n) {
        (*static_cast<Fn*>(c))(n);
      };
      node->ctx_destroy_ = [](void* c) { delete static_cast<Fn*>(c); };
    }
    detail::TraceNodeCreated(node.get());
    return node;
  }
  Node* node = tape->Create<Node>(std::move(value), req);
  node->on_tape = true;
  if (req) {
    Node** arr = tape->AllocateArray<Node*>(parents.size());
    for (size_t i = 0; i < parents.size(); ++i) {
      arr[i] = parents[i].get();
      if (!parents[i]->on_tape) tape->Retain(parents[i]);
    }
    node->parents_ = arr;
    node->num_parents = static_cast<uint32_t>(parents.size());
    Fn* ctx = tape->Create<Fn>(std::forward<F>(backward));
    node->backward_ctx_ = ctx;
    node->backward_invoke_ = [](void* c, Node& n) {
      (*static_cast<Fn*>(c))(n);
    };
  }
  detail::TraceNodeCreated(node);
  return tape->MakeVar(node);
}

template <typename F>
Var MakeOp(Tensor value, std::initializer_list<Var> parents, F&& backward) {
  return MakeOp(std::move(value),
                std::span<const Var>(parents.begin(), parents.size()),
                std::forward<F>(backward));
}

/// Runs backpropagation from `root`, which must be a 1x1 scalar. Reuses
/// per-thread scratch (traversal stack, topological order, visit epochs) so
/// steady-state calls allocate nothing.
void Backward(const Var& root);

// ----- Differentiable ops (shapes follow tensor_ops.h) -----
Var MatMul(const Var& a, const Var& b);
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
Var AddRowBroadcast(const Var& a, const Var& bias);
Var Scale(const Var& a, float alpha);
Var Neg(const Var& a);
Var Transpose(const Var& a);
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Relu(const Var& a);
/// Numerically stable log(sigmoid(x)).
Var LogSigmoid(const Var& a);
Var SoftmaxRows(const Var& a);
Var RowwiseDot(const Var& a, const Var& b);
Var MeanRows(const Var& a);
Var SumRows(const Var& a);
/// Mean of all elements -> 1x1.
Var MeanAll(const Var& a);
/// Sum of all elements -> 1x1.
Var SumAll(const Var& a);
/// The initializer_list overloads let braced call sites concatenate without
/// materializing a temporary std::vector (hot under a TapeScope).
Var ConcatRows(std::span<const Var> parts);
Var ConcatRows(const std::vector<Var>& parts);
Var ConcatRows(std::initializer_list<Var> parts);
Var ConcatCols(std::span<const Var> parts);
Var ConcatCols(const std::vector<Var>& parts);
Var ConcatCols(std::initializer_list<Var> parts);
/// Rows [start, start+count) of `a`.
Var SliceRows(const Var& a, size_t start, size_t count);
/// Gathers rows of a trainable table; backward scatters (accumulating
/// duplicates). `indices` entries must be valid row ids of `table`. The
/// span overload copies the indices into the active tape arena (or an
/// owned vector in heap mode), so callers can pass reused scratch.
Var GatherRows(const Var& table, std::span<const int32_t> indices);
Var GatherRows(const Var& table, std::vector<int32_t> indices);

// ----- Losses -----
/// Mean binary cross-entropy with logits. `logits` is [m,1]; `targets` has m
/// entries in {0,1} (soft labels allowed).
Var BceWithLogits(const Var& logits, const std::vector<float>& targets);

/// Skip-gram negative-sampling loss:
///   -mean(log sigmoid(pos)) - mean(log sigmoid(-neg))
/// `pos`/`neg` are [p,1] and [q,1] score columns. Either may be absent
/// (pass nullptr) when a batch has no such samples.
Var SgnsLoss(const Var& pos, const Var& neg);

}  // namespace hybridgnn::ag

#endif  // HYBRIDGNN_TENSOR_AUTOGRAD_H_
