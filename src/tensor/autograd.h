#ifndef HYBRIDGNN_TENSOR_AUTOGRAD_H_
#define HYBRIDGNN_TENSOR_AUTOGRAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace hybridgnn::ag {

/// Reverse-mode automatic differentiation over Tensor.
///
/// A computation is built dynamically: every op returns a `Var` (shared node)
/// that remembers its parents and how to push gradients back to them.
/// `Backward(root)` seeds d(root)=1 (root must be 1x1) and propagates in
/// reverse topological order. Gradients accumulate across calls until
/// `ZeroGrad` is invoked, matching the familiar PyTorch contract.

class Node;
using Var = std::shared_ptr<Node>;

class Node {
 public:
  Node(Tensor value, bool requires_grad)
      : value(std::move(value)), requires_grad(requires_grad) {}

  Tensor value;
  Tensor grad;  // Lazily allocated to value's shape on first accumulation.
  bool requires_grad;
  std::vector<Var> parents;
  // Pushes this->grad into parents' grads. Empty for leaves/constants.
  std::function<void(Node&)> backward_fn;

  /// grad += g, allocating grad on first use.
  void AccumulateGrad(const Tensor& g);
  /// Clears the gradient (keeps allocation if shape already set).
  void ZeroGrad();
};

/// RAII scope that redirects *leaf-parameter* gradient accumulation on the
/// current thread into a private map keyed by Node pointer, instead of the
/// node's own `grad` field. Interior op nodes are unaffected (they are
/// built per-thread, so their grads never race); only shared trainable
/// leaves (requires_grad set, no backward_fn) are redirected.
///
/// This is what makes data-parallel minibatch training safe: each worker
/// runs Backward on its own subgraph under a GradSinkScope, and the main
/// thread then reduces the per-worker sinks into the real `grad` fields
/// before the optimizer step. Nested scopes restore the previous sink on
/// destruction.
class GradSinkScope {
 public:
  using Sink = std::unordered_map<Node*, Tensor>;
  explicit GradSinkScope(Sink* sink);
  ~GradSinkScope();
  GradSinkScope(const GradSinkScope&) = delete;
  GradSinkScope& operator=(const GradSinkScope&) = delete;

 private:
  Sink* prev_;
};

/// Creates a non-trainable node (no gradient tracked unless a trainable
/// ancestor is attached downstream).
Var Constant(Tensor value);
/// Creates a trainable leaf (requires_grad = true).
Var Param(Tensor value);

/// Runs backpropagation from `root`, which must be a 1x1 scalar.
void Backward(const Var& root);

// ----- Differentiable ops (shapes follow tensor_ops.h) -----
Var MatMul(const Var& a, const Var& b);
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
Var AddRowBroadcast(const Var& a, const Var& bias);
Var Scale(const Var& a, float alpha);
Var Neg(const Var& a);
Var Transpose(const Var& a);
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Relu(const Var& a);
/// Numerically stable log(sigmoid(x)).
Var LogSigmoid(const Var& a);
Var SoftmaxRows(const Var& a);
Var RowwiseDot(const Var& a, const Var& b);
Var MeanRows(const Var& a);
Var SumRows(const Var& a);
/// Mean of all elements -> 1x1.
Var MeanAll(const Var& a);
/// Sum of all elements -> 1x1.
Var SumAll(const Var& a);
Var ConcatRows(const std::vector<Var>& parts);
Var ConcatCols(const std::vector<Var>& parts);
/// Rows [start, start+count) of `a`.
Var SliceRows(const Var& a, size_t start, size_t count);
/// Gathers rows of a trainable table; backward scatters (accumulating
/// duplicates). `indices` entries must be valid row ids of `table`.
Var GatherRows(const Var& table, std::vector<int32_t> indices);

// ----- Losses -----
/// Mean binary cross-entropy with logits. `logits` is [m,1]; `targets` has m
/// entries in {0,1} (soft labels allowed).
Var BceWithLogits(const Var& logits, const std::vector<float>& targets);

/// Skip-gram negative-sampling loss:
///   -mean(log sigmoid(pos)) - mean(log sigmoid(-neg))
/// `pos`/`neg` are [p,1] and [q,1] score columns. Either may be absent
/// (pass nullptr) when a batch has no such samples.
Var SgnsLoss(const Var& pos, const Var& neg);

}  // namespace hybridgnn::ag

#endif  // HYBRIDGNN_TENSOR_AUTOGRAD_H_
