#include "tensor/autograd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "tensor/tensor_ops.h"

namespace hybridgnn::ag {

namespace {
thread_local GradSinkScope::Sink* g_grad_sink = nullptr;
}  // namespace

GradSinkScope::GradSinkScope(Sink* sink) : prev_(g_grad_sink) {
  g_grad_sink = sink;
}

GradSinkScope::~GradSinkScope() { g_grad_sink = prev_; }

void Node::AccumulateGrad(const Tensor& g) {
  if (g_grad_sink != nullptr && requires_grad && !backward_fn) {
    // Shared trainable leaf under a sink scope: divert to the per-thread
    // buffer so concurrent Backward calls never touch the shared `grad`.
    Tensor& slot = (*g_grad_sink)[this];
    if (slot.empty()) slot = Tensor(value.rows(), value.cols());
    HYBRIDGNN_CHECK(slot.SameShape(g))
        << "gradient shape mismatch: " << slot.ShapeString() << " vs "
        << g.ShapeString();
    slot.AddInPlace(g);
    return;
  }
  if (grad.empty()) {
    grad = Tensor(value.rows(), value.cols());
  }
  HYBRIDGNN_CHECK(grad.SameShape(g))
      << "gradient shape mismatch: " << grad.ShapeString() << " vs "
      << g.ShapeString();
  grad.AddInPlace(g);
}

void Node::ZeroGrad() {
  if (!grad.empty()) grad.Zero();
}

Var Constant(Tensor value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/false);
}

Var Param(Tensor value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/true);
}

namespace {

bool AnyRequiresGrad(const std::vector<Var>& parents) {
  for (const auto& p : parents) {
    if (p->requires_grad) return true;
  }
  return false;
}

/// Builds an op node: value, parents, and backward closure. If no parent
/// needs gradients the node is a plain constant (backward skipped).
Var MakeOp(Tensor value, std::vector<Var> parents,
           std::function<void(Node&)> backward) {
  bool req = AnyRequiresGrad(parents);
  auto node = std::make_shared<Node>(std::move(value), req);
  if (req) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward);
  }
  return node;
}

void TopoSort(const Var& root, std::vector<Node*>& order) {
  // Iterative post-order DFS over parents.
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Var& root) {
  HYBRIDGNN_CHECK(root->value.rows() == 1 && root->value.cols() == 1)
      << "Backward root must be scalar, got " << root->value.ShapeString();
  if (!root->requires_grad) return;
  std::vector<Node*> order;
  TopoSort(root, order);
  root->AccumulateGrad(Tensor::Ones(1, 1));
  // `order` is post-order (leaves first); walk it backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && !node->grad.empty()) {
      node->backward_fn(*node);
    }
  }
}

Var MatMul(const Var& a, const Var& b) {
  Tensor out = hybridgnn::MatMul(a->value, b->value);
  return MakeOp(std::move(out), {a, b}, [a, b](Node& n) {
    if (a->requires_grad) a->AccumulateGrad(MatMulTransB(n.grad, b->value));
    if (b->requires_grad) b->AccumulateGrad(MatMulTransA(a->value, n.grad));
  });
}

Var Add(const Var& a, const Var& b) {
  return MakeOp(hybridgnn::Add(a->value, b->value), {a, b}, [a, b](Node& n) {
    if (a->requires_grad) a->AccumulateGrad(n.grad);
    if (b->requires_grad) b->AccumulateGrad(n.grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  return MakeOp(hybridgnn::Sub(a->value, b->value), {a, b}, [a, b](Node& n) {
    if (a->requires_grad) a->AccumulateGrad(n.grad);
    if (b->requires_grad) b->AccumulateGrad(hybridgnn::Scale(n.grad, -1.0f));
  });
}

Var Mul(const Var& a, const Var& b) {
  return MakeOp(hybridgnn::Mul(a->value, b->value), {a, b}, [a, b](Node& n) {
    if (a->requires_grad) a->AccumulateGrad(hybridgnn::Mul(n.grad, b->value));
    if (b->requires_grad) b->AccumulateGrad(hybridgnn::Mul(n.grad, a->value));
  });
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  return MakeOp(hybridgnn::AddRowBroadcast(a->value, bias->value), {a, bias},
                [a, bias](Node& n) {
                  if (a->requires_grad) a->AccumulateGrad(n.grad);
                  if (bias->requires_grad) {
                    bias->AccumulateGrad(hybridgnn::SumRows(n.grad));
                  }
                });
}

Var Scale(const Var& a, float alpha) {
  return MakeOp(hybridgnn::Scale(a->value, alpha), {a}, [a, alpha](Node& n) {
    if (a->requires_grad) a->AccumulateGrad(hybridgnn::Scale(n.grad, alpha));
  });
}

Var Neg(const Var& a) { return Scale(a, -1.0f); }

Var Transpose(const Var& a) {
  return MakeOp(hybridgnn::Transpose(a->value), {a}, [a](Node& n) {
    if (a->requires_grad) a->AccumulateGrad(hybridgnn::Transpose(n.grad));
  });
}

Var Sigmoid(const Var& a) {
  Tensor s = hybridgnn::Sigmoid(a->value);
  return MakeOp(s, {a}, [a](Node& n) {
    if (!a->requires_grad) return;
    Tensor da(n.grad.rows(), n.grad.cols());
    const float* g = n.grad.data();
    const float* sv = n.value.data();
    float* d = da.data();
    for (size_t i = 0; i < da.size(); ++i) d[i] = g[i] * sv[i] * (1.0f - sv[i]);
    a->AccumulateGrad(da);
  });
}

Var Tanh(const Var& a) {
  Tensor t = hybridgnn::Tanh(a->value);
  return MakeOp(t, {a}, [a](Node& n) {
    if (!a->requires_grad) return;
    Tensor da(n.grad.rows(), n.grad.cols());
    const float* g = n.grad.data();
    const float* tv = n.value.data();
    float* d = da.data();
    for (size_t i = 0; i < da.size(); ++i) d[i] = g[i] * (1.0f - tv[i] * tv[i]);
    a->AccumulateGrad(da);
  });
}

Var Relu(const Var& a) {
  return MakeOp(hybridgnn::Relu(a->value), {a}, [a](Node& n) {
    if (!a->requires_grad) return;
    Tensor da(n.grad.rows(), n.grad.cols());
    const float* g = n.grad.data();
    const float* x = a->value.data();
    float* d = da.data();
    for (size_t i = 0; i < da.size(); ++i) d[i] = x[i] > 0.0f ? g[i] : 0.0f;
    a->AccumulateGrad(da);
  });
}

Var LogSigmoid(const Var& a) {
  Tensor out(a->value.rows(), a->value.cols());
  const float* x = a->value.data();
  float* o = out.data();
  for (size_t i = 0; i < out.size(); ++i) {
    // log sigmoid(x) = min(x,0) - log1p(exp(-|x|))
    const float v = x[i];
    o[i] = std::min(v, 0.0f) - std::log1p(std::exp(-std::abs(v)));
  }
  return MakeOp(std::move(out), {a}, [a](Node& n) {
    if (!a->requires_grad) return;
    Tensor da(n.grad.rows(), n.grad.cols());
    const float* g = n.grad.data();
    const float* x = a->value.data();
    float* d = da.data();
    for (size_t i = 0; i < da.size(); ++i) {
      // d/dx log sigmoid(x) = sigmoid(-x)
      d[i] = g[i] / (1.0f + std::exp(x[i]));
    }
    a->AccumulateGrad(da);
  });
}

Var SoftmaxRows(const Var& a) {
  Tensor s = hybridgnn::SoftmaxRows(a->value);
  return MakeOp(s, {a}, [a](Node& n) {
    if (!a->requires_grad) return;
    // da_ij = s_ij * (g_ij - sum_k g_ik s_ik)
    Tensor da(n.grad.rows(), n.grad.cols());
    for (size_t i = 0; i < n.grad.rows(); ++i) {
      const float* g = n.grad.RowPtr(i);
      const float* s = n.value.RowPtr(i);
      float dot = 0.0f;
      for (size_t j = 0; j < n.grad.cols(); ++j) dot += g[j] * s[j];
      float* d = da.RowPtr(i);
      for (size_t j = 0; j < n.grad.cols(); ++j) d[j] = s[j] * (g[j] - dot);
    }
    a->AccumulateGrad(da);
  });
}

Var RowwiseDot(const Var& a, const Var& b) {
  return MakeOp(hybridgnn::RowwiseDot(a->value, b->value), {a, b},
                [a, b](Node& n) {
                  auto scatter = [&n](const Var& dst, const Var& other) {
                    Tensor d(dst->value.rows(), dst->value.cols());
                    for (size_t i = 0; i < d.rows(); ++i) {
                      const float gi = n.grad.At(i, 0);
                      const float* o = other->value.RowPtr(i);
                      float* dr = d.RowPtr(i);
                      for (size_t j = 0; j < d.cols(); ++j) dr[j] = gi * o[j];
                    }
                    dst->AccumulateGrad(d);
                  };
                  if (a->requires_grad) scatter(a, b);
                  if (b->requires_grad) scatter(b, a);
                });
}

Var MeanRows(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a->value.rows());
  return MakeOp(hybridgnn::MeanRows(a->value), {a}, [a, inv](Node& n) {
    if (!a->requires_grad) return;
    Tensor da(a->value.rows(), a->value.cols());
    const float* g = n.grad.RowPtr(0);
    for (size_t i = 0; i < da.rows(); ++i) {
      float* d = da.RowPtr(i);
      for (size_t j = 0; j < da.cols(); ++j) d[j] = g[j] * inv;
    }
    a->AccumulateGrad(da);
  });
}

Var SumRows(const Var& a) {
  return MakeOp(hybridgnn::SumRows(a->value), {a}, [a](Node& n) {
    if (!a->requires_grad) return;
    Tensor da(a->value.rows(), a->value.cols());
    const float* g = n.grad.RowPtr(0);
    for (size_t i = 0; i < da.rows(); ++i) {
      float* d = da.RowPtr(i);
      for (size_t j = 0; j < da.cols(); ++j) d[j] = g[j];
    }
    a->AccumulateGrad(da);
  });
}

Var MeanAll(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a->value.size());
  Tensor out(1, 1);
  out.At(0, 0) = static_cast<float>(a->value.Sum()) * inv;
  return MakeOp(std::move(out), {a}, [a, inv](Node& n) {
    if (!a->requires_grad) return;
    Tensor da = Tensor::Full(a->value.rows(), a->value.cols(),
                             n.grad.At(0, 0) * inv);
    a->AccumulateGrad(da);
  });
}

Var SumAll(const Var& a) {
  Tensor out(1, 1);
  out.At(0, 0) = static_cast<float>(a->value.Sum());
  return MakeOp(std::move(out), {a}, [a](Node& n) {
    if (!a->requires_grad) return;
    Tensor da = Tensor::Full(a->value.rows(), a->value.cols(),
                             n.grad.At(0, 0));
    a->AccumulateGrad(da);
  });
}

Var ConcatRows(const std::vector<Var>& parts) {
  HYBRIDGNN_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const auto& p : parts) values.push_back(p->value);
  Tensor out = hybridgnn::ConcatRows(values);
  std::vector<Var> parents(parts.begin(), parts.end());
  return MakeOp(std::move(out), parents, [parts](Node& n) {
    size_t at = 0;
    for (const auto& p : parts) {
      const size_t r = p->value.rows();
      if (p->requires_grad) {
        Tensor slice(r, p->value.cols());
        std::copy(n.grad.RowPtr(at), n.grad.RowPtr(at) + slice.size(),
                  slice.data());
        p->AccumulateGrad(slice);
      }
      at += r;
    }
  });
}

Var ConcatCols(const std::vector<Var>& parts) {
  HYBRIDGNN_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const auto& p : parts) values.push_back(p->value);
  Tensor out = hybridgnn::ConcatCols(values);
  std::vector<Var> parents(parts.begin(), parts.end());
  return MakeOp(std::move(out), parents, [parts](Node& n) {
    size_t at = 0;
    for (const auto& p : parts) {
      const size_t c = p->value.cols();
      if (p->requires_grad) {
        Tensor slice(p->value.rows(), c);
        for (size_t i = 0; i < slice.rows(); ++i) {
          const float* src = n.grad.RowPtr(i) + at;
          std::copy(src, src + c, slice.RowPtr(i));
        }
        p->AccumulateGrad(slice);
      }
      at += c;
    }
  });
}

Var SliceRows(const Var& a, size_t start, size_t count) {
  HYBRIDGNN_CHECK(start + count <= a->value.rows())
      << "SliceRows out of range";
  Tensor out(count, a->value.cols());
  std::copy(a->value.RowPtr(start), a->value.RowPtr(start) + out.size(),
            out.data());
  return MakeOp(std::move(out), {a}, [a, start](Node& n) {
    if (!a->requires_grad) return;
    Tensor da(a->value.rows(), a->value.cols());
    std::copy(n.grad.data(), n.grad.data() + n.grad.size(),
              da.RowPtr(start));
    a->AccumulateGrad(da);
  });
}

Var GatherRows(const Var& table, std::vector<int32_t> indices) {
  Tensor out = hybridgnn::GatherRows(table->value, indices);
  return MakeOp(std::move(out), {table},
                [table, indices = std::move(indices)](Node& n) {
                  if (!table->requires_grad) return;
                  Tensor dt(table->value.rows(), table->value.cols());
                  for (size_t i = 0; i < indices.size(); ++i) {
                    const float* g = n.grad.RowPtr(i);
                    float* d = dt.RowPtr(static_cast<size_t>(indices[i]));
                    for (size_t j = 0; j < dt.cols(); ++j) d[j] += g[j];
                  }
                  table->AccumulateGrad(dt);
                });
}

Var BceWithLogits(const Var& logits, const std::vector<float>& targets) {
  HYBRIDGNN_CHECK(logits->value.cols() == 1 &&
                  logits->value.rows() == targets.size())
      << "BceWithLogits expects [m,1] logits matching targets";
  const size_t m = targets.size();
  double loss = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const float x = logits->value.At(i, 0);
    const float y = targets[i];
    // Stable: max(x,0) - x*y + log(1+exp(-|x|))
    loss += std::max(x, 0.0f) - x * y + std::log1p(std::exp(-std::abs(x)));
  }
  Tensor out(1, 1);
  out.At(0, 0) = static_cast<float>(loss / static_cast<double>(m));
  return MakeOp(std::move(out), {logits}, [logits, targets](Node& n) {
    if (!logits->requires_grad) return;
    const float scale = n.grad.At(0, 0) / static_cast<float>(targets.size());
    Tensor d(targets.size(), 1);
    for (size_t i = 0; i < targets.size(); ++i) {
      const float x = logits->value.At(i, 0);
      const float s = 1.0f / (1.0f + std::exp(-x));
      d.At(i, 0) = scale * (s - targets[i]);
    }
    logits->AccumulateGrad(d);
  });
}

Var SgnsLoss(const Var& pos, const Var& neg) {
  HYBRIDGNN_CHECK(pos != nullptr || neg != nullptr)
      << "SgnsLoss needs at least one of pos/neg";
  Var total;
  if (pos != nullptr) {
    total = Neg(MeanAll(LogSigmoid(pos)));
  }
  if (neg != nullptr) {
    Var neg_term = Neg(MeanAll(LogSigmoid(Neg(neg))));
    total = total == nullptr ? neg_term : Add(total, neg_term);
  }
  return total;
}

}  // namespace hybridgnn::ag
