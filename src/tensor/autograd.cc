#include "tensor/autograd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <new>

#include "common/logging.h"
#include "obs/metrics.h"
#include "tensor/tensor_ops.h"

namespace hybridgnn::ag {

namespace {
thread_local GradSinkScope::Sink* g_grad_sink = nullptr;
thread_local Tape* g_current_tape = nullptr;

// Process-wide bytes reserved by live tape arenas (blocks are only freed
// when a thread's tape dies with the thread).
std::atomic<uint64_t> g_tape_reserved_bytes{0};

constexpr size_t kTapeBlockSize = size_t{256} << 10;  // 256 KiB

/// The calling thread's arena, created on first use and reused by every
/// TapeScope on the thread for its whole lifetime — this is what makes
/// steady-state epochs allocation-free even though scopes come and go.
Tape& ThreadLocalTape() {
  static thread_local Tape tape;
  return tape;
}

/// Bridges the typed op wrappers below to TraceOp: builds the parent span
/// only when a sink is installed (callers guard with detail::Tracing()).
inline void TraceOpIl(OpKind kind, const Var& result,
                      std::initializer_list<Var> parents,
                      const OpAttrs& attrs = {}) {
  detail::TraceOp(kind, result,
                  std::span<const Var>(parents.begin(), parents.size()),
                  attrs);
}

}  // namespace

// ----- Trace sink plumbing -----

namespace detail {
thread_local TraceSink* t_trace_sink = nullptr;
}  // namespace detail

TraceSink* SetTraceSink(TraceSink* sink) {
  TraceSink* prev = detail::t_trace_sink;
  detail::t_trace_sink = sink;
  return prev;
}

TraceSink* CurrentTraceSink() { return detail::t_trace_sink; }

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kConstant: return "Constant";
    case OpKind::kParam: return "Param";
    case OpKind::kMatMul: return "MatMul";
    case OpKind::kAdd: return "Add";
    case OpKind::kSub: return "Sub";
    case OpKind::kMul: return "Mul";
    case OpKind::kAddRowBroadcast: return "AddRowBroadcast";
    case OpKind::kScale: return "Scale";
    case OpKind::kTranspose: return "Transpose";
    case OpKind::kSigmoid: return "Sigmoid";
    case OpKind::kTanh: return "Tanh";
    case OpKind::kRelu: return "Relu";
    case OpKind::kLogSigmoid: return "LogSigmoid";
    case OpKind::kSoftmaxRows: return "SoftmaxRows";
    case OpKind::kRowwiseDot: return "RowwiseDot";
    case OpKind::kMeanRows: return "MeanRows";
    case OpKind::kSumRows: return "SumRows";
    case OpKind::kMeanAll: return "MeanAll";
    case OpKind::kSumAll: return "SumAll";
    case OpKind::kConcatRows: return "ConcatRows";
    case OpKind::kConcatCols: return "ConcatCols";
    case OpKind::kSliceRows: return "SliceRows";
    case OpKind::kGatherRows: return "GatherRows";
    case OpKind::kBceWithLogits: return "BceWithLogits";
    case OpKind::kSegmentSum: return "SegmentSum";
    case OpKind::kSegmentMean: return "SegmentMean";
    case OpKind::kSegmentMax: return "SegmentMax";
    case OpKind::kGatherRowsSegmented: return "GatherRowsSegmented";
    case OpKind::kEwChain: return "EwChain";
    case OpKind::kOpaque: return "Opaque";
  }
  return "?";
}

// ----- Tape -----

Tape::Tape() : anchor_(std::make_shared<char>(0)) {}

Tape::~Tape() {
  Rewind(Mark{0, 0, 0, 0});
  for (const Block& b : blocks_) {
    ::operator delete(b.ptr, std::align_val_t{64});
  }
  g_tape_reserved_bytes.fetch_sub(bytes_reserved_,
                                  std::memory_order_relaxed);
}

Tape* Tape::Current() { return g_current_tape; }

void Tape::AddBlock(size_t min_size) {
  size_t size = blocks_.empty() ? kTapeBlockSize : blocks_.back().size * 2;
  size = std::min<size_t>(size, size_t{8} << 20);
  size = std::max(size, min_size);
  char* ptr = static_cast<char*>(::operator new(size, std::align_val_t{64}));
  blocks_.push_back(Block{ptr, size});
  bytes_reserved_ += size;
  g_tape_reserved_bytes.fetch_add(size, std::memory_order_relaxed);
  static obs::Counter& arena_bytes =
      obs::GlobalRegistry().GetCounter("tensor/arena_bytes");
  arena_bytes.Add(size);
}

void* Tape::Allocate(size_t bytes, size_t align) {
  HYBRIDGNN_CHECK(align <= 64 && (align & (align - 1)) == 0)
      << "unsupported arena alignment " << align;
  if (bytes == 0) bytes = 1;
  while (true) {
    if (cur_block_ < blocks_.size()) {
      Block& b = blocks_[cur_block_];
      const size_t off = (cur_off_ + align - 1) & ~(align - 1);
      if (off + bytes <= b.size) {
        cur_off_ = off + bytes;
        return b.ptr + off;
      }
      // Current block exhausted: move to the next (possibly pre-existing
      // from an earlier high-water mark) block.
      if (cur_block_ + 1 < blocks_.size()) {
        ++cur_block_;
        cur_off_ = 0;
        continue;
      }
    }
    AddBlock(bytes);
    cur_block_ = blocks_.size() - 1;
    cur_off_ = 0;
  }
}

size_t Tape::bytes_used() const {
  size_t used = cur_off_;
  for (size_t i = 0; i < cur_block_ && i < blocks_.size(); ++i) {
    used += blocks_[i].size;
  }
  return used;
}

uint64_t Tape::TotalReservedBytes() {
  return g_tape_reserved_bytes.load(std::memory_order_relaxed);
}

void Tape::Rewind(const Mark& mark) {
  // Newest-first: objects may reference older ones (a closure reading its
  // node's parents), so tear down in reverse construction order.
  for (size_t i = dtors_.size(); i > mark.dtor_count; --i) {
    const DtorEntry& e = dtors_[i - 1];
    e.fn(e.obj);
  }
  dtors_.resize(mark.dtor_count);
  retained_.resize(mark.retained_count);
  cur_block_ = mark.block_idx;
  cur_off_ = mark.block_off;
}

// ----- TapeScope -----

TapeScope::TapeScope()
    : tape_(&ThreadLocalTape()),
      prev_current_(g_current_tape),
      mark_(tape_->Position()) {
  g_current_tape = tape_;
}

TapeScope::~TapeScope() {
  // A plan recording holds raw Node* into this tape; rewinding underneath
  // it would leave the recorder tracing freed memory. The recorder must
  // Finalize (or abandon) before the scope that covers the trace exits.
  HYBRIDGNN_CHECK(detail::t_trace_sink == nullptr ||
                  detail::t_trace_sink->tape() != tape_)
      << "TapeScope destroyed while a plan recording is active on its tape; "
         "finalize or abandon the recording first";
  tape_->Rewind(mark_);
  g_current_tape = prev_current_;
  if (prev_current_ == nullptr) {
    // Outermost scope: every Var handed out by this tape aliased anchor_;
    // any survivor would now dangle into rewound arena memory. Fail loudly
    // instead of corrupting silently.
    HYBRIDGNN_CHECK(tape_->anchor_.use_count() == 1)
        << "a tape-allocated ag::Var outlived its TapeScope";
  }
}

// ----- GradSinkScope -----

GradSinkScope::GradSinkScope(Sink* sink) : prev_(g_grad_sink) {
  g_grad_sink = sink;
}

GradSinkScope::~GradSinkScope() { g_grad_sink = prev_; }

// ----- Node -----

void Node::AccumulateGrad(const Tensor& g) {
  if (g_grad_sink != nullptr && requires_grad && !has_backward()) {
    // Shared trainable leaf under a sink scope: divert to the per-thread
    // buffer so concurrent Backward calls never touch the shared `grad`.
    Tensor& slot = (*g_grad_sink)[this];
    if (slot.empty()) slot = Tensor(value.rows(), value.cols());
    HYBRIDGNN_CHECK(slot.SameShape(g))
        << "gradient shape mismatch: " << slot.ShapeString() << " vs "
        << g.ShapeString();
    slot.AddInPlace(g);
    return;
  }
  if (grad.empty()) {
    // First accumulation: copy instead of zero-fill + add.
    grad = g;
    return;
  }
  HYBRIDGNN_CHECK(grad.SameShape(g))
      << "gradient shape mismatch: " << grad.ShapeString() << " vs "
      << g.ShapeString();
  grad.AddInPlace(g);
}

void Node::ZeroGrad() {
  if (!grad.empty()) grad.Zero();
}

Tensor& Node::GradAccumulator() {
  if (g_grad_sink != nullptr && requires_grad && !has_backward()) {
    Tensor& slot = (*g_grad_sink)[this];
    if (slot.empty()) slot = Tensor(value.rows(), value.cols());
    return slot;
  }
  if (grad.empty()) grad = Tensor(value.rows(), value.cols());
  return grad;
}

Var Constant(Tensor value) {
  Var out;
  if (Tape* tape = Tape::Current()) {
    Node* node = tape->Create<Node>(std::move(value), /*requires_grad=*/false);
    node->on_tape = true;
    detail::TraceNodeCreated(node);
    out = tape->MakeVar(node);
  } else {
    out = std::make_shared<Node>(std::move(value), /*requires_grad=*/false);
    detail::TraceNodeCreated(out.get());
  }
  if (detail::Tracing()) TraceOpIl(OpKind::kConstant, out, {});
  return out;
}

Var Param(Tensor value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/true);
}

// ----- Backward -----

namespace {

/// Per-thread traversal scratch: reused across Backward calls so the topo
/// sort performs no allocations once warm. The epoch counter versions the
/// visit marks stamped on (thread-private) op nodes.
struct BackwardScratch {
  std::vector<Node*> order;
  std::vector<std::pair<Node*, uint32_t>> stack;
  uint64_t epoch = 0;
};

BackwardScratch& Scratch() {
  static thread_local BackwardScratch scratch;
  return scratch;
}

}  // namespace

void Backward(const Var& root) {
  HYBRIDGNN_CHECK(root->value.rows() == 1 && root->value.cols() == 1)
      << "Backward root must be scalar, got " << root->value.ShapeString();
  if (!root->requires_grad) return;
  BackwardScratch& s = Scratch();
  s.order.clear();
  const uint64_t epoch = ++s.epoch;
  if (root->has_backward()) {
    // Iterative post-order DFS over parents. Only op nodes enter the order:
    // leaves have no backward fn to run (their grads are filled by their
    // consumers), and skipping them keeps the visit marks free of
    // cross-thread writes on shared parameters.
    s.stack.clear();
    s.stack.emplace_back(root.get(), 0);
    root->visit_mark = epoch;
    while (!s.stack.empty()) {
      auto& [node, next_child] = s.stack.back();
      if (next_child < node->num_parents) {
        Node* child = node->parent(next_child);
        ++next_child;
        if (child->has_backward() && child->visit_mark != epoch) {
          child->visit_mark = epoch;
          s.stack.emplace_back(child, 0);
        }
      } else {
        s.order.push_back(node);
        s.stack.pop_back();
      }
    }
  }
  root->AccumulateGrad(Tensor::Ones(1, 1));
  // `order` is post-order (inputs first); walk it backwards.
  for (auto it = s.order.rbegin(); it != s.order.rend(); ++it) {
    Node* node = *it;
    if (!node->grad.empty()) {
      node->InvokeBackward();
    }
  }
}

// ----- Ops -----
//
// Backward closures read their operands through n.parent(i) instead of
// capturing Vars: ownership is handled by the node (heap mode) or the tape
// (arena mode), and captureless or small trivially-destructible closures
// cost nothing to place in the arena.

Var MatMul(const Var& a, const Var& b) {
  Tensor out = hybridgnn::MatMul(a->value, b->value);
  Var r = MakeOp(std::move(out), {a, b}, [](Node& n) {
    Node* a = n.parent(0);
    Node* b = n.parent(1);
    if (a->requires_grad) a->AccumulateGrad(MatMulTransB(n.grad, b->value));
    if (b->requires_grad) b->AccumulateGrad(MatMulTransA(a->value, n.grad));
  });
  if (detail::Tracing()) TraceOpIl(OpKind::kMatMul, r, {a, b});
  return r;
}

Var Add(const Var& a, const Var& b) {
  Var r = MakeOp(hybridgnn::Add(a->value, b->value), {a, b}, [](Node& n) {
    Node* a = n.parent(0);
    Node* b = n.parent(1);
    if (a->requires_grad) a->AccumulateGrad(n.grad);
    if (b->requires_grad) b->AccumulateGrad(n.grad);
  });
  if (detail::Tracing()) TraceOpIl(OpKind::kAdd, r, {a, b});
  return r;
}

Var Sub(const Var& a, const Var& b) {
  Var r = MakeOp(hybridgnn::Sub(a->value, b->value), {a, b}, [](Node& n) {
    Node* a = n.parent(0);
    Node* b = n.parent(1);
    if (a->requires_grad) a->AccumulateGrad(n.grad);
    if (b->requires_grad) b->AccumulateGrad(hybridgnn::Scale(n.grad, -1.0f));
  });
  if (detail::Tracing()) TraceOpIl(OpKind::kSub, r, {a, b});
  return r;
}

Var Mul(const Var& a, const Var& b) {
  Var r = MakeOp(hybridgnn::Mul(a->value, b->value), {a, b}, [](Node& n) {
    Node* a = n.parent(0);
    Node* b = n.parent(1);
    if (a->requires_grad) {
      a->AccumulateGrad(hybridgnn::Mul(n.grad, b->value));
    }
    if (b->requires_grad) {
      b->AccumulateGrad(hybridgnn::Mul(n.grad, a->value));
    }
  });
  if (detail::Tracing()) TraceOpIl(OpKind::kMul, r, {a, b});
  return r;
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  Var r = MakeOp(hybridgnn::AddRowBroadcast(a->value, bias->value), {a, bias},
                 [](Node& n) {
                   Node* a = n.parent(0);
                   Node* bias = n.parent(1);
                   if (a->requires_grad) a->AccumulateGrad(n.grad);
                   if (bias->requires_grad) {
                     bias->AccumulateGrad(hybridgnn::SumRows(n.grad));
                   }
                 });
  if (detail::Tracing()) TraceOpIl(OpKind::kAddRowBroadcast, r, {a, bias});
  return r;
}

Var Scale(const Var& a, float alpha) {
  Var r = MakeOp(hybridgnn::Scale(a->value, alpha), {a}, [alpha](Node& n) {
    Node* a = n.parent(0);
    if (a->requires_grad) a->AccumulateGrad(hybridgnn::Scale(n.grad, alpha));
  });
  if (detail::Tracing()) {
    OpAttrs attrs;
    attrs.alpha = alpha;
    TraceOpIl(OpKind::kScale, r, {a}, attrs);
  }
  return r;
}

Var Neg(const Var& a) { return Scale(a, -1.0f); }

Var Transpose(const Var& a) {
  Var r = MakeOp(hybridgnn::Transpose(a->value), {a}, [](Node& n) {
    Node* a = n.parent(0);
    if (a->requires_grad) a->AccumulateGrad(hybridgnn::Transpose(n.grad));
  });
  if (detail::Tracing()) TraceOpIl(OpKind::kTranspose, r, {a});
  return r;
}

Var Sigmoid(const Var& a) {
  Tensor s = hybridgnn::Sigmoid(a->value);
  Var r = MakeOp(std::move(s), {a}, [](Node& n) {
    Node* a = n.parent(0);
    if (!a->requires_grad) return;
    Tensor da = Tensor::Uninit(n.grad.rows(), n.grad.cols());
    const float* g = n.grad.data();
    const float* sv = n.value.data();
    float* d = da.data();
    for (size_t i = 0; i < da.size(); ++i) d[i] = g[i] * sv[i] * (1.0f - sv[i]);
    a->AccumulateGrad(da);
  });
  if (detail::Tracing()) TraceOpIl(OpKind::kSigmoid, r, {a});
  return r;
}

Var Tanh(const Var& a) {
  Tensor t = hybridgnn::Tanh(a->value);
  Var r = MakeOp(std::move(t), {a}, [](Node& n) {
    Node* a = n.parent(0);
    if (!a->requires_grad) return;
    Tensor da = Tensor::Uninit(n.grad.rows(), n.grad.cols());
    const float* g = n.grad.data();
    const float* tv = n.value.data();
    float* d = da.data();
    for (size_t i = 0; i < da.size(); ++i) d[i] = g[i] * (1.0f - tv[i] * tv[i]);
    a->AccumulateGrad(da);
  });
  if (detail::Tracing()) TraceOpIl(OpKind::kTanh, r, {a});
  return r;
}

Var Relu(const Var& a) {
  Var r = MakeOp(hybridgnn::Relu(a->value), {a}, [](Node& n) {
    Node* a = n.parent(0);
    if (!a->requires_grad) return;
    Tensor da = Tensor::Uninit(n.grad.rows(), n.grad.cols());
    const float* g = n.grad.data();
    const float* x = a->value.data();
    float* d = da.data();
    for (size_t i = 0; i < da.size(); ++i) d[i] = x[i] > 0.0f ? g[i] : 0.0f;
    a->AccumulateGrad(da);
  });
  if (detail::Tracing()) TraceOpIl(OpKind::kRelu, r, {a});
  return r;
}

Var LogSigmoid(const Var& a) {
  Tensor out = hybridgnn::LogSigmoid(a->value);
  Var r = MakeOp(std::move(out), {a}, [](Node& n) {
    Node* a = n.parent(0);
    if (!a->requires_grad) return;
    Tensor da = Tensor::Uninit(n.grad.rows(), n.grad.cols());
    const float* g = n.grad.data();
    const float* x = a->value.data();
    float* d = da.data();
    for (size_t i = 0; i < da.size(); ++i) {
      // d/dx log sigmoid(x) = sigmoid(-x)
      d[i] = g[i] / (1.0f + std::exp(x[i]));
    }
    a->AccumulateGrad(da);
  });
  if (detail::Tracing()) TraceOpIl(OpKind::kLogSigmoid, r, {a});
  return r;
}

Var SoftmaxRows(const Var& a) {
  Tensor s = hybridgnn::SoftmaxRows(a->value);
  Var r = MakeOp(std::move(s), {a}, [](Node& n) {
    Node* a = n.parent(0);
    if (!a->requires_grad) return;
    // da_ij = s_ij * (g_ij - sum_k g_ik s_ik)
    Tensor da = Tensor::Uninit(n.grad.rows(), n.grad.cols());
    for (size_t i = 0; i < n.grad.rows(); ++i) {
      const float* g = n.grad.RowPtr(i);
      const float* s = n.value.RowPtr(i);
      float dot = 0.0f;
      for (size_t j = 0; j < n.grad.cols(); ++j) dot += g[j] * s[j];
      float* d = da.RowPtr(i);
      for (size_t j = 0; j < n.grad.cols(); ++j) d[j] = s[j] * (g[j] - dot);
    }
    a->AccumulateGrad(da);
  });
  if (detail::Tracing()) TraceOpIl(OpKind::kSoftmaxRows, r, {a});
  return r;
}

Var RowwiseDot(const Var& a, const Var& b) {
  Var r = MakeOp(hybridgnn::RowwiseDot(a->value, b->value), {a, b},
                 [](Node& n) {
                  auto scatter = [&n](Node* dst, Node* other) {
                    Tensor d = Tensor::Uninit(dst->value.rows(),
                                              dst->value.cols());
                    for (size_t i = 0; i < d.rows(); ++i) {
                      const float gi = n.grad.At(i, 0);
                      const float* o = other->value.RowPtr(i);
                      float* dr = d.RowPtr(i);
                      for (size_t j = 0; j < d.cols(); ++j) dr[j] = gi * o[j];
                    }
                    dst->AccumulateGrad(d);
                  };
                  Node* a = n.parent(0);
                  Node* b = n.parent(1);
                  if (a->requires_grad) scatter(a, b);
                  if (b->requires_grad) scatter(b, a);
                 });
  if (detail::Tracing()) TraceOpIl(OpKind::kRowwiseDot, r, {a, b});
  return r;
}

Var MeanRows(const Var& a) {
  Var r = MakeOp(hybridgnn::MeanRows(a->value), {a}, [](Node& n) {
    Node* a = n.parent(0);
    if (!a->requires_grad) return;
    const float inv = 1.0f / static_cast<float>(a->value.rows());
    Tensor da = Tensor::Uninit(a->value.rows(), a->value.cols());
    const float* g = n.grad.RowPtr(0);
    for (size_t i = 0; i < da.rows(); ++i) {
      float* d = da.RowPtr(i);
      for (size_t j = 0; j < da.cols(); ++j) d[j] = g[j] * inv;
    }
    a->AccumulateGrad(da);
  });
  if (detail::Tracing()) TraceOpIl(OpKind::kMeanRows, r, {a});
  return r;
}

Var SumRows(const Var& a) {
  Var r = MakeOp(hybridgnn::SumRows(a->value), {a}, [](Node& n) {
    Node* a = n.parent(0);
    if (!a->requires_grad) return;
    Tensor da = Tensor::Uninit(a->value.rows(), a->value.cols());
    const float* g = n.grad.RowPtr(0);
    for (size_t i = 0; i < da.rows(); ++i) {
      float* d = da.RowPtr(i);
      for (size_t j = 0; j < da.cols(); ++j) d[j] = g[j];
    }
    a->AccumulateGrad(da);
  });
  if (detail::Tracing()) TraceOpIl(OpKind::kSumRows, r, {a});
  return r;
}

Var MeanAll(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a->value.size());
  Tensor out(1, 1);
  out.At(0, 0) = static_cast<float>(a->value.Sum()) * inv;
  Var r = MakeOp(std::move(out), {a}, [inv](Node& n) {
    Node* a = n.parent(0);
    if (!a->requires_grad) return;
    Tensor da = Tensor::Full(a->value.rows(), a->value.cols(),
                             n.grad.At(0, 0) * inv);
    a->AccumulateGrad(da);
  });
  if (detail::Tracing()) TraceOpIl(OpKind::kMeanAll, r, {a});
  return r;
}

Var SumAll(const Var& a) {
  Tensor out(1, 1);
  out.At(0, 0) = static_cast<float>(a->value.Sum());
  Var r = MakeOp(std::move(out), {a}, [](Node& n) {
    Node* a = n.parent(0);
    if (!a->requires_grad) return;
    Tensor da = Tensor::Full(a->value.rows(), a->value.cols(),
                             n.grad.At(0, 0));
    a->AccumulateGrad(da);
  });
  if (detail::Tracing()) TraceOpIl(OpKind::kSumAll, r, {a});
  return r;
}

Var ConcatRows(std::span<const Var> parts) {
  HYBRIDGNN_CHECK(!parts.empty()) << "ConcatRows of empty list";
  const size_t cols = parts[0]->value.cols();
  size_t rows = 0;
  for (const auto& p : parts) {
    HYBRIDGNN_CHECK(p->value.cols() == cols) << "ConcatRows column mismatch";
    rows += p->value.rows();
  }
  Tensor out = Tensor::Uninit(rows, cols);
  size_t at = 0;
  for (const auto& p : parts) {
    std::copy(p->value.data(), p->value.data() + p->value.size(),
              out.RowPtr(at));
    at += p->value.rows();
  }
  Var res = MakeOp(std::move(out), parts, [](Node& n) {
    size_t at = 0;
    for (size_t i = 0; i < n.num_parents; ++i) {
      Node* p = n.parent(i);
      const size_t r = p->value.rows();
      if (p->requires_grad) {
        Tensor slice = Tensor::Uninit(r, p->value.cols());
        std::copy(n.grad.RowPtr(at), n.grad.RowPtr(at) + slice.size(),
                  slice.data());
        p->AccumulateGrad(slice);
      }
      at += r;
    }
  });
  if (detail::Tracing()) detail::TraceOp(OpKind::kConcatRows, res, parts);
  return res;
}

Var ConcatCols(std::span<const Var> parts) {
  HYBRIDGNN_CHECK(!parts.empty()) << "ConcatCols of empty list";
  const size_t rows = parts[0]->value.rows();
  size_t cols = 0;
  for (const auto& p : parts) {
    HYBRIDGNN_CHECK(p->value.rows() == rows) << "ConcatCols row mismatch";
    cols += p->value.cols();
  }
  Tensor out = Tensor::Uninit(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    size_t at = 0;
    for (const auto& p : parts) {
      const float* src = p->value.RowPtr(i);
      std::copy(src, src + p->value.cols(), out.RowPtr(i) + at);
      at += p->value.cols();
    }
  }
  Var res = MakeOp(std::move(out), parts, [](Node& n) {
    size_t at = 0;
    for (size_t i = 0; i < n.num_parents; ++i) {
      Node* p = n.parent(i);
      const size_t c = p->value.cols();
      if (p->requires_grad) {
        Tensor slice = Tensor::Uninit(p->value.rows(), c);
        for (size_t r = 0; r < slice.rows(); ++r) {
          const float* src = n.grad.RowPtr(r) + at;
          std::copy(src, src + c, slice.RowPtr(r));
        }
        p->AccumulateGrad(slice);
      }
      at += c;
    }
  });
  if (detail::Tracing()) detail::TraceOp(OpKind::kConcatCols, res, parts);
  return res;
}

Var ConcatRows(const std::vector<Var>& parts) {
  return ConcatRows(std::span<const Var>(parts));
}

Var ConcatRows(std::initializer_list<Var> parts) {
  return ConcatRows(std::span<const Var>(parts.begin(), parts.size()));
}

Var ConcatCols(const std::vector<Var>& parts) {
  return ConcatCols(std::span<const Var>(parts));
}

Var ConcatCols(std::initializer_list<Var> parts) {
  return ConcatCols(std::span<const Var>(parts.begin(), parts.size()));
}

Var SliceRows(const Var& a, size_t start, size_t count) {
  HYBRIDGNN_CHECK(start + count <= a->value.rows())
      << "SliceRows out of range";
  Tensor out = Tensor::Uninit(count, a->value.cols());
  std::copy(a->value.RowPtr(start), a->value.RowPtr(start) + out.size(),
            out.data());
  Var r = MakeOp(std::move(out), {a}, [start](Node& n) {
    Node* a = n.parent(0);
    if (!a->requires_grad) return;
    // Zero-initialized: only the sliced rows carry gradient.
    Tensor da(a->value.rows(), a->value.cols());
    std::copy(n.grad.data(), n.grad.data() + n.grad.size(),
              da.RowPtr(start));
    a->AccumulateGrad(da);
  });
  if (detail::Tracing()) {
    OpAttrs attrs;
    attrs.start = start;
    TraceOpIl(OpKind::kSliceRows, r, {a}, attrs);
  }
  return r;
}

namespace {

void ScatterGatherGrad(Node& n, const int32_t* indices, size_t count) {
  Node* table = n.parent(0);
  if (!table->requires_grad) return;
  // Zero-initialized: the scatter accumulates into touched rows only.
  Tensor dt(table->value.rows(), table->value.cols());
  for (size_t i = 0; i < count; ++i) {
    const float* g = n.grad.RowPtr(i);
    float* d = dt.RowPtr(static_cast<size_t>(indices[i]));
    for (size_t j = 0; j < dt.cols(); ++j) d[j] += g[j];
  }
  table->AccumulateGrad(dt);
}

}  // namespace

Var GatherRows(const Var& table, std::span<const int32_t> indices) {
  Tensor out = hybridgnn::GatherRows(table->value, indices);
  Var r;
  if (Tape* tape = Tape::Current()) {
    // Copy the indices into the arena so the caller can reuse its scratch.
    int32_t* stable = tape->AllocateArray<int32_t>(indices.size());
    std::memcpy(stable, indices.data(), indices.size() * sizeof(int32_t));
    r = MakeOp(std::move(out), {table},
               [stable, count = indices.size()](Node& n) {
                 ScatterGatherGrad(n, stable, count);
               });
  } else {
    r = MakeOp(std::move(out), {table},
               [own = std::vector<int32_t>(indices.begin(),
                                           indices.end())](Node& n) {
                 ScatterGatherGrad(n, own.data(), own.size());
               });
  }
  if (detail::Tracing()) {
    OpAttrs attrs;
    attrs.indices = indices;
    TraceOpIl(OpKind::kGatherRows, r, {table}, attrs);
  }
  return r;
}

Var GatherRows(const Var& table, std::vector<int32_t> indices) {
  return GatherRows(table, std::span<const int32_t>(indices));
}

Var BceWithLogits(const Var& logits, const std::vector<float>& targets) {
  HYBRIDGNN_CHECK(logits->value.cols() == 1 &&
                  logits->value.rows() == targets.size())
      << "BceWithLogits expects [m,1] logits matching targets";
  const size_t m = targets.size();
  double loss = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const float x = logits->value.At(i, 0);
    const float y = targets[i];
    // Stable: max(x,0) - x*y + log(1+exp(-|x|))
    loss += std::max(x, 0.0f) - x * y + std::log1p(std::exp(-std::abs(x)));
  }
  Tensor out(1, 1);
  out.At(0, 0) = static_cast<float>(loss / static_cast<double>(m));
  auto backward = [](Node& n, const float* tgt, size_t count) {
    Node* logits = n.parent(0);
    if (!logits->requires_grad) return;
    const float scale = n.grad.At(0, 0) / static_cast<float>(count);
    Tensor d = Tensor::Uninit(count, 1);
    for (size_t i = 0; i < count; ++i) {
      const float x = logits->value.At(i, 0);
      const float s = 1.0f / (1.0f + std::exp(-x));
      d.At(i, 0) = scale * (s - tgt[i]);
    }
    logits->AccumulateGrad(d);
  };
  Var r;
  if (Tape* tape = Tape::Current()) {
    float* stable = tape->AllocateArray<float>(m);
    std::memcpy(stable, targets.data(), m * sizeof(float));
    r = MakeOp(std::move(out), {logits},
               [backward, stable, m](Node& n) { backward(n, stable, m); });
  } else {
    r = MakeOp(std::move(out), {logits},
               [backward, own = targets](Node& n) {
                 backward(n, own.data(), own.size());
               });
  }
  if (detail::Tracing()) {
    OpAttrs attrs;
    attrs.floats = targets;
    TraceOpIl(OpKind::kBceWithLogits, r, {logits}, attrs);
  }
  return r;
}

Var SgnsLoss(const Var& pos, const Var& neg) {
  HYBRIDGNN_CHECK(pos != nullptr || neg != nullptr)
      << "SgnsLoss needs at least one of pos/neg";
  Var total;
  if (pos != nullptr) {
    total = Neg(MeanAll(LogSigmoid(pos)));
  }
  if (neg != nullptr) {
    Var neg_term = Neg(MeanAll(LogSigmoid(Neg(neg))));
    total = total == nullptr ? neg_term : Add(total, neg_term);
  }
  return total;
}

}  // namespace hybridgnn::ag
