#include "tensor/pool.h"

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/env.h"
#include "obs/metrics.h"

namespace hybridgnn::pool {

namespace {

// Smallest pooled class: 2^3 = 8 floats. Anything smaller rounds up.
constexpr uint8_t kMinClass = 3;
constexpr uint8_t kMaxClass = 20;  // 2^20 floats == kMaxPooledElems
constexpr size_t kNumClasses = kMaxClass + 1;

// Process-wide stats. Relaxed atomics: these are monotone event counts.
std::atomic<uint64_t> g_hits{0};
std::atomic<uint64_t> g_misses{0};
std::atomic<uint64_t> g_miss_bytes{0};

bool GlobalEnabled() {
  static const bool enabled = GetEnvInt("HYBRIDGNN_TENSOR_POOL", 1) != 0;
  return enabled;
}

size_t MaxPooledBytesPerThread() {
  static const size_t cap = static_cast<size_t>(
      GetEnvInt("HYBRIDGNN_TENSOR_POOL_MB", 128)) << 20;
  return cap;
}

float* HeapAlloc(size_t elems) {
  // Tensor buffers are allocated through aligned operator new so that the
  // micro_autograd benchmark's allocation-counting overrides see every
  // heap-backed tensor, pooled-class or not.
  return static_cast<float*>(
      ::operator new(elems * sizeof(float), std::align_val_t{64}));
}

void HeapFree(float* p) { ::operator delete(p, std::align_val_t{64}); }

uint8_t ClassFor(size_t n) {
  uint8_t cls = kMinClass;
  while ((size_t{1} << cls) < n) ++cls;
  return cls;
}

struct BufferPool {
  std::vector<float*> free_lists[kNumClasses];
  size_t pooled_bytes = 0;
};

// The raw pointer mirror is trivially destructible, so it can be read after
// the owning PoolTls has been torn down at thread exit: releases that happen
// during static destruction (e.g. a global Tensor dying after this thread's
// pool) see nullptr and fall through to the heap instead of touching a dead
// free list.
thread_local BufferPool* t_pool = nullptr;

struct PoolTls {
  BufferPool pool;
  PoolTls() { t_pool = &pool; }
  ~PoolTls() {
    t_pool = nullptr;
    for (auto& list : pool.free_lists) {
      for (float* p : list) HeapFree(p);
    }
  }
};

BufferPool* ThreadPool() {
  static thread_local PoolTls tls;
  return t_pool;
}

// -1 = inherit global, 0 = force off, 1 = force on (per thread).
thread_local int t_enabled_override = -1;

void CountHit() {
  static obs::Counter& hits =
      obs::GlobalRegistry().GetCounter("tensor/pool_hit");
  hits.Add(1);
  g_hits.fetch_add(1, std::memory_order_relaxed);
}

void CountMiss(size_t bytes) {
  static obs::Counter& misses =
      obs::GlobalRegistry().GetCounter("tensor/pool_miss");
  misses.Add(1);
  g_misses.fetch_add(1, std::memory_order_relaxed);
  g_miss_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

}  // namespace

bool Enabled() {
  if (t_enabled_override >= 0) return t_enabled_override != 0;
  return GlobalEnabled();
}

PoolScope::PoolScope(bool enabled) : prev_(Enabled()) {
  t_enabled_override = enabled ? 1 : 0;
}

PoolScope::~PoolScope() { t_enabled_override = prev_ ? 1 : 0; }

float* Acquire(size_t n, uint8_t* cap_class) {
  if (n == 0) {
    *cap_class = kUnpooledClass;
    return nullptr;
  }
  if (n > kMaxPooledElems || !Enabled()) {
    *cap_class = kUnpooledClass;
    return HeapAlloc(n);
  }
  const uint8_t cls = ClassFor(n);
  const size_t elems = size_t{1} << cls;
  BufferPool* pool = ThreadPool();
  if (pool != nullptr && !pool->free_lists[cls].empty()) {
    float* p = pool->free_lists[cls].back();
    pool->free_lists[cls].pop_back();
    pool->pooled_bytes -= elems * sizeof(float);
    CountHit();
    *cap_class = cls;
    return p;
  }
  CountMiss(elems * sizeof(float));
  *cap_class = cls;
  return HeapAlloc(elems);
}

void Release(float* p, uint8_t cap_class) {
  if (p == nullptr) return;
  if (cap_class != kUnpooledClass) {
    const size_t bytes = (size_t{1} << cap_class) * sizeof(float);
    BufferPool* pool = t_pool;  // no lazy init on the release path
    if (pool != nullptr &&
        pool->pooled_bytes + bytes <= MaxPooledBytesPerThread()) {
      pool->free_lists[cap_class].push_back(p);
      pool->pooled_bytes += bytes;
      return;
    }
  }
  HeapFree(p);
}

PoolStats Stats() {
  PoolStats s;
  s.hits = g_hits.load(std::memory_order_relaxed);
  s.misses = g_misses.load(std::memory_order_relaxed);
  s.miss_bytes = g_miss_bytes.load(std::memory_order_relaxed);
  return s;
}

uint64_t MissBytes() { return g_miss_bytes.load(std::memory_order_relaxed); }

}  // namespace hybridgnn::pool
