#include "tensor/tensor.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "kernels/kernels.h"

namespace hybridgnn {

Tensor::Tensor(size_t rows, size_t cols, UninitTag) : rows_(rows), cols_(cols) {
  data_ = pool::Acquire(rows * cols, &cap_class_);
}

Tensor::Tensor(size_t rows, size_t cols) : Tensor(rows, cols, UninitTag{}) {
  if (data_ != nullptr) std::memset(data_, 0, size() * sizeof(float));
}

Tensor::Tensor(size_t rows, size_t cols, std::vector<float> data)
    : Tensor(rows, cols, UninitTag{}) {
  HYBRIDGNN_CHECK(data.size() == rows * cols)
      << "Tensor data size " << data.size() << " != " << rows << "x" << cols;
  if (data_ != nullptr) {
    std::memcpy(data_, data.data(), size() * sizeof(float));
  }
}

Tensor::Tensor(const Tensor& other) : Tensor(other.rows_, other.cols_,
                                             UninitTag{}) {
  if (data_ != nullptr) {
    std::memcpy(data_, other.data_, size() * sizeof(float));
  }
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  // Reuse the existing buffer when the element count matches: parameter
  // restores and cached-row writes then copy in place instead of cycling
  // buffers through the pool.
  if (size() == other.size() && data_ != nullptr) {
    rows_ = other.rows_;
    cols_ = other.cols_;
    std::memcpy(data_, other.data_, size() * sizeof(float));
    return *this;
  }
  FreeBuffer();
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = pool::Acquire(size(), &cap_class_);
  if (data_ != nullptr) {
    std::memcpy(data_, other.data_, size() * sizeof(float));
  }
  return *this;
}

Tensor Tensor::Full(size_t rows, size_t cols, float value) {
  Tensor t = Uninit(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Eye(size_t n) {
  Tensor t(n, n);
  for (size_t i = 0; i < n; ++i) t.At(i, i) = 1.0f;
  return t;
}

Tensor Tensor::Row(std::vector<float> values) {
  size_t n = values.size();
  return Tensor(1, n, std::move(values));
}

void Tensor::Fill(float value) {
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) data_[i] = value;
}

void Tensor::Zero() {
  if (data_ != nullptr) std::memset(data_, 0, size() * sizeof(float));
}

void Tensor::AddInPlace(const Tensor& other) {
  HYBRIDGNN_CHECK(SameShape(other)) << "AddInPlace shape mismatch";
  kernels::Axpy(1.0f, other.data_, data_, size());
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  HYBRIDGNN_CHECK(SameShape(other)) << "Axpy shape mismatch";
  kernels::Axpy(alpha, other.data_, data_, size());
}

void Tensor::ScaleInPlace(float alpha) {
  kernels::Scale(alpha, data_, size());
}

Tensor Tensor::CopyRow(size_t r) const {
  HYBRIDGNN_CHECK(r < rows_);
  Tensor out = Uninit(1, cols_);
  std::memcpy(out.data(), RowPtr(r), cols_ * sizeof(float));
  return out;
}

double Tensor::Sum() const {
  double s = 0.0;
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) s += data_[i];
  return s;
}

double Tensor::SquaredNorm() const {
  if (empty()) return 0.0;
  double s = 0.0;
  kernels::ScoreBlock(data_, data_, 1, size(), &s);
  return s;
}

float Tensor::AbsMax() const {
  float m = 0.0f;
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) m = std::max(m, std::abs(data_[i]));
  return m;
}

std::string Tensor::ShapeString() const {
  return StrFormat("Tensor(%zux%zu)", rows_, cols_);
}

}  // namespace hybridgnn
