#include "tensor/tensor.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "kernels/kernels.h"

namespace hybridgnn {

Tensor::Tensor(size_t rows, size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  HYBRIDGNN_CHECK(data_.size() == rows * cols)
      << "Tensor data size " << data_.size() << " != " << rows << "x" << cols;
}

Tensor Tensor::Full(size_t rows, size_t cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Eye(size_t n) {
  Tensor t(n, n);
  for (size_t i = 0; i < n; ++i) t.At(i, i) = 1.0f;
  return t;
}

Tensor Tensor::Row(std::vector<float> values) {
  size_t n = values.size();
  return Tensor(1, n, std::move(values));
}

void Tensor::Fill(float value) {
  for (auto& v : data_) v = value;
}

void Tensor::AddInPlace(const Tensor& other) {
  HYBRIDGNN_CHECK(SameShape(other)) << "AddInPlace shape mismatch";
  kernels::Axpy(1.0f, other.data_.data(), data_.data(), data_.size());
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  HYBRIDGNN_CHECK(SameShape(other)) << "Axpy shape mismatch";
  kernels::Axpy(alpha, other.data_.data(), data_.data(), data_.size());
}

void Tensor::ScaleInPlace(float alpha) {
  kernels::Scale(alpha, data_.data(), data_.size());
}

Tensor Tensor::CopyRow(size_t r) const {
  HYBRIDGNN_CHECK(r < rows_);
  Tensor out(1, cols_);
  for (size_t c = 0; c < cols_; ++c) out.At(0, c) = At(r, c);
  return out;
}

double Tensor::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::SquaredNorm() const {
  if (data_.empty()) return 0.0;
  double s = 0.0;
  kernels::ScoreBlock(data_.data(), data_.data(), 1, data_.size(), &s);
  return s;
}

float Tensor::AbsMax() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::string Tensor::ShapeString() const {
  return StrFormat("Tensor(%zux%zu)", rows_, cols_);
}

}  // namespace hybridgnn
