#ifndef HYBRIDGNN_TENSOR_OPTIMIZER_H_
#define HYBRIDGNN_TENSOR_OPTIMIZER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/autograd.h"

namespace hybridgnn {

/// First-order optimizer over autograd parameters. Parameters are registered
/// once; `Step()` consumes their accumulated gradients and `ZeroGrad()`
/// clears them for the next iteration.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registers a trainable parameter; ignored if already registered.
  void AddParameter(const ag::Var& param);
  /// Registers a batch of parameters.
  void AddParameters(const std::vector<ag::Var>& params);

  /// Applies one update using current gradients.
  virtual void Step() = 0;

  /// Zeroes all registered parameters' gradients.
  void ZeroGrad();

  size_t num_parameters() const { return params_.size(); }

 protected:
  std::vector<ag::Var> params_;
};

/// Plain stochastic gradient descent with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float weight_decay = 0.0f)
      : lr_(lr), weight_decay_(weight_decay) {}

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float weight_decay_;
};

/// Adam (Kingma & Ba, 2015) with bias correction; the paper trains with Adam.
class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float epsilon = 1e-8f, float weight_decay = 0.0f)
      : lr_(lr),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon),
        weight_decay_(weight_decay) {}

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  struct State {
    Tensor m;
    Tensor v;
  };

  float lr_;
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  int64_t t_ = 0;
  std::unordered_map<const ag::Node*, State> state_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_TENSOR_OPTIMIZER_H_
