#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "kernels/kernels.h"

namespace hybridgnn {

namespace {

// Accumulates A*B into a pre-zeroed `c`. ikj loop order: unit-stride axpy
// over both B and C rows. The zero skip both saves work on sparse-ish
// activations and keeps results bit-stable when a row is untouched.
void MatMulAccum(const Tensor& a, const Tensor& b, Tensor& c) {
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    float* crow = c.RowPtr(i);
    const float* arow = a.RowPtr(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      kernels::Axpy(av, b.RowPtr(p), crow, n);
    }
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  HYBRIDGNN_CHECK(a.cols() == b.rows())
      << "MatMul " << a.ShapeString() << " x " << b.ShapeString();
  Tensor c(a.rows(), b.cols());
  MatMulAccum(a, b, c);
  return c;
}

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* dst) {
  HYBRIDGNN_CHECK(a.cols() == b.rows())
      << "MatMul " << a.ShapeString() << " x " << b.ShapeString();
  HYBRIDGNN_CHECK(dst->rows() == a.rows() && dst->cols() == b.cols())
      << "MatMulInto dst " << dst->ShapeString();
  dst->Zero();
  MatMulAccum(a, b, *dst);
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  HYBRIDGNN_CHECK(a.rows() == b.rows())
      << "MatMulTransA " << a.ShapeString() << " x " << b.ShapeString();
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  Tensor c(m, n);
  for (size_t p = 0; p < k; ++p) {
    const float* arow = a.RowPtr(p);
    const float* brow = b.RowPtr(p);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      kernels::Axpy(av, brow, c.RowPtr(i), n);
    }
  }
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  HYBRIDGNN_CHECK(a.cols() == b.cols())
      << "MatMulTransB " << a.ShapeString() << " x " << b.ShapeString();
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  Tensor c = Tensor::Uninit(m, n);
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.RowPtr(i);
    float* crow = c.RowPtr(i);
    for (size_t j = 0; j < n; ++j) {
      crow[j] = kernels::Dot(arow, b.RowPtr(j), k);
    }
  }
  return c;
}

namespace {

// The Into flavors tolerate dst aliasing an input: every loop reads its
// operands at index i strictly before writing dst at i.
template <typename F>
void ZipInto(const Tensor& a, const Tensor& b, Tensor* dst, F f,
             const char* what) {
  HYBRIDGNN_CHECK(a.SameShape(b)) << what << " shape mismatch: "
                                  << a.ShapeString() << " vs "
                                  << b.ShapeString();
  HYBRIDGNN_CHECK(dst->SameShape(a)) << what << "Into dst shape";
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = dst->data();
  for (size_t i = 0; i < a.size(); ++i) pc[i] = f(pa[i], pb[i]);
}

template <typename F>
Tensor Zip(const Tensor& a, const Tensor& b, F f, const char* what) {
  HYBRIDGNN_CHECK(a.SameShape(b)) << what << " shape mismatch: "
                                  << a.ShapeString() << " vs "
                                  << b.ShapeString();
  Tensor c = Tensor::Uninit(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (size_t i = 0; i < a.size(); ++i) pc[i] = f(pa[i], pb[i]);
  return c;
}

template <typename F>
void MapInto(const Tensor& a, Tensor* dst, F f) {
  HYBRIDGNN_CHECK(dst->SameShape(a)) << "MapInto dst shape";
  const float* pa = a.data();
  float* pc = dst->data();
  for (size_t i = 0; i < a.size(); ++i) pc[i] = f(pa[i]);
}

template <typename F>
Tensor Map(const Tensor& a, F f) {
  Tensor c = Tensor::Uninit(a.rows(), a.cols());
  const float* pa = a.data();
  float* pc = c.data();
  for (size_t i = 0; i < a.size(); ++i) pc[i] = f(pa[i]);
  return c;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x + y; }, "Add");
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x - y; }, "Sub");
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x * y; }, "Mul");
}

void AddInto(const Tensor& a, const Tensor& b, Tensor* dst) {
  ZipInto(a, b, dst, [](float x, float y) { return x + y; }, "Add");
}

void SubInto(const Tensor& a, const Tensor& b, Tensor* dst) {
  ZipInto(a, b, dst, [](float x, float y) { return x - y; }, "Sub");
}

void MulInto(const Tensor& a, const Tensor& b, Tensor* dst) {
  ZipInto(a, b, dst, [](float x, float y) { return x * y; }, "Mul");
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  HYBRIDGNN_CHECK(bias.rows() == 1 && bias.cols() == a.cols())
      << "AddRowBroadcast bias " << bias.ShapeString() << " vs "
      << a.ShapeString();
  Tensor c = a;
  for (size_t i = 0; i < a.rows(); ++i) {
    kernels::Axpy(1.0f, bias.RowPtr(0), c.RowPtr(i), a.cols());
  }
  return c;
}

void AddRowBroadcastInto(const Tensor& a, const Tensor& bias, Tensor* dst) {
  HYBRIDGNN_CHECK(bias.rows() == 1 && bias.cols() == a.cols())
      << "AddRowBroadcast bias " << bias.ShapeString() << " vs "
      << a.ShapeString();
  HYBRIDGNN_CHECK(dst->SameShape(a)) << "AddRowBroadcastInto dst shape";
  if (dst->data() != a.data()) {
    std::copy(a.data(), a.data() + a.size(), dst->data());
  }
  for (size_t i = 0; i < a.rows(); ++i) {
    kernels::Axpy(1.0f, bias.RowPtr(0), dst->RowPtr(i), a.cols());
  }
}

Tensor Scale(const Tensor& a, float alpha) {
  Tensor c = a;
  kernels::Scale(alpha, c.data(), c.size());
  return c;
}

void ScaleInto(const Tensor& a, float alpha, Tensor* dst) {
  HYBRIDGNN_CHECK(dst->SameShape(a)) << "ScaleInto dst shape";
  if (dst->data() != a.data()) {
    std::copy(a.data(), a.data() + a.size(), dst->data());
  }
  kernels::Scale(alpha, dst->data(), dst->size());
}

Tensor Transpose(const Tensor& a) {
  Tensor c = Tensor::Uninit(a.cols(), a.rows());
  TransposeInto(a, &c);
  return c;
}

void TransposeInto(const Tensor& a, Tensor* dst) {
  HYBRIDGNN_CHECK(dst->rows() == a.cols() && dst->cols() == a.rows())
      << "TransposeInto dst " << dst->ShapeString();
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) dst->At(j, i) = a.At(i, j);
  }
}

Tensor Sigmoid(const Tensor& a) {
  return Map(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor Tanh(const Tensor& a) {
  return Map(a, [](float x) { return std::tanh(x); });
}

Tensor Relu(const Tensor& a) {
  return Map(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

void SigmoidInto(const Tensor& a, Tensor* dst) {
  MapInto(a, dst, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

void TanhInto(const Tensor& a, Tensor* dst) {
  MapInto(a, dst, [](float x) { return std::tanh(x); });
}

void ReluInto(const Tensor& a, Tensor* dst) {
  MapInto(a, dst, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor LogSigmoid(const Tensor& a) {
  return Map(a, [](float x) {
    return std::min(x, 0.0f) - std::log1p(std::exp(-std::abs(x)));
  });
}

void LogSigmoidInto(const Tensor& a, Tensor* dst) {
  MapInto(a, dst, [](float x) {
    return std::min(x, 0.0f) - std::log1p(std::exp(-std::abs(x)));
  });
}

Tensor Log(const Tensor& a) {
  return Map(a, [](float x) { return std::log(std::max(x, 1e-12f)); });
}

Tensor Exp(const Tensor& a) {
  return Map(a, [](float x) { return std::exp(x); });
}

Tensor SoftmaxRows(const Tensor& a) {
  Tensor c = Tensor::Uninit(a.rows(), a.cols());
  SoftmaxRowsInto(a, &c);
  return c;
}

void SoftmaxRowsInto(const Tensor& a, Tensor* dst) {
  HYBRIDGNN_CHECK(dst->SameShape(a)) << "SoftmaxRowsInto dst shape";
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.RowPtr(i);
    float* crow = dst->RowPtr(i);
    float mx = arow[0];
    for (size_t j = 1; j < a.cols(); ++j) mx = std::max(mx, arow[j]);
    float sum = 0.0f;
    for (size_t j = 0; j < a.cols(); ++j) {
      crow[j] = std::exp(arow[j] - mx);
      sum += crow[j];
    }
    const float inv = 1.0f / sum;
    for (size_t j = 0; j < a.cols(); ++j) crow[j] *= inv;
  }
}

Tensor RowwiseDot(const Tensor& a, const Tensor& b) {
  HYBRIDGNN_CHECK(a.SameShape(b)) << "RowwiseDot shape mismatch";
  Tensor c = Tensor::Uninit(a.rows(), 1);
  RowwiseDotInto(a, b, &c);
  return c;
}

void RowwiseDotInto(const Tensor& a, const Tensor& b, Tensor* dst) {
  HYBRIDGNN_CHECK(a.SameShape(b)) << "RowwiseDot shape mismatch";
  HYBRIDGNN_CHECK(dst->rows() == a.rows() && dst->cols() == 1)
      << "RowwiseDotInto dst " << dst->ShapeString();
  for (size_t i = 0; i < a.rows(); ++i) {
    dst->At(i, 0) = kernels::Dot(a.RowPtr(i), b.RowPtr(i), a.cols());
  }
}

Tensor MeanRows(const Tensor& a) {
  HYBRIDGNN_CHECK(a.rows() > 0) << "MeanRows of empty tensor";
  Tensor c = SumRows(a);
  c.ScaleInPlace(1.0f / static_cast<float>(a.rows()));
  return c;
}

void MeanRowsInto(const Tensor& a, Tensor* dst) {
  HYBRIDGNN_CHECK(a.rows() > 0) << "MeanRows of empty tensor";
  SumRowsInto(a, dst);
  dst->ScaleInPlace(1.0f / static_cast<float>(a.rows()));
}

Tensor SumRows(const Tensor& a) {
  // The dense reduction behind HybridGNN mean-aggregation; kept as a
  // row-at-a-time axpy so the summation order (and therefore the result)
  // matches the pre-kernel-layer loop on every backend.
  Tensor c(1, a.cols());
  float* crow = c.RowPtr(0);
  for (size_t i = 0; i < a.rows(); ++i) {
    kernels::Axpy(1.0f, a.RowPtr(i), crow, a.cols());
  }
  return c;
}

void SumRowsInto(const Tensor& a, Tensor* dst) {
  HYBRIDGNN_CHECK(dst->rows() == 1 && dst->cols() == a.cols())
      << "SumRowsInto dst " << dst->ShapeString();
  dst->Zero();
  float* crow = dst->RowPtr(0);
  for (size_t i = 0; i < a.rows(); ++i) {
    kernels::Axpy(1.0f, a.RowPtr(i), crow, a.cols());
  }
}

Tensor GatherRows(const Tensor& table, std::span<const int32_t> indices) {
  Tensor c = Tensor::Uninit(indices.size(), table.cols());
  GatherRowsInto(table, indices, &c);
  return c;
}

void GatherRowsInto(const Tensor& table, std::span<const int32_t> indices,
                    Tensor* dst) {
  HYBRIDGNN_CHECK(dst->rows() == indices.size() &&
                  dst->cols() == table.cols())
      << "GatherRowsInto dst " << dst->ShapeString();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int32_t r = indices[i];
    HYBRIDGNN_CHECK(r >= 0 && static_cast<size_t>(r) < table.rows())
        << "GatherRows index " << r << " out of range " << table.rows();
    const float* src = table.RowPtr(static_cast<size_t>(r));
    float* d = dst->RowPtr(i);
    std::copy(src, src + table.cols(), d);
  }
}

Tensor GatherRows(const Tensor& table, const std::vector<int32_t>& indices) {
  return GatherRows(table, std::span<const int32_t>(indices));
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  HYBRIDGNN_CHECK(!parts.empty()) << "ConcatRows of empty list";
  const size_t cols = parts[0].cols();
  size_t rows = 0;
  for (const auto& p : parts) {
    HYBRIDGNN_CHECK(p.cols() == cols) << "ConcatRows column mismatch";
    rows += p.rows();
  }
  Tensor c = Tensor::Uninit(rows, cols);
  size_t at = 0;
  for (const auto& p : parts) {
    std::copy(p.data(), p.data() + p.size(), c.RowPtr(at));
    at += p.rows();
  }
  return c;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  HYBRIDGNN_CHECK(!parts.empty()) << "ConcatCols of empty list";
  const size_t rows = parts[0].rows();
  size_t cols = 0;
  for (const auto& p : parts) {
    HYBRIDGNN_CHECK(p.rows() == rows) << "ConcatCols row mismatch";
    cols += p.cols();
  }
  Tensor c = Tensor::Uninit(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    size_t at = 0;
    for (const auto& p : parts) {
      const float* src = p.RowPtr(i);
      std::copy(src, src + p.cols(), c.RowPtr(i) + at);
      at += p.cols();
    }
  }
  return c;
}

void L2NormalizeRowsInPlace(Tensor& a) {
  for (size_t i = 0; i < a.rows(); ++i) {
    float* row = a.RowPtr(i);
    double s = 0.0;
    kernels::ScoreBlock(row, row, 1, a.cols(), &s);
    if (s < 1e-24) continue;
    const float inv = static_cast<float>(1.0 / std::sqrt(s));
    kernels::Scale(inv, row, a.cols());
  }
}

float CosineSimilarity(const Tensor& a, const Tensor& b) {
  HYBRIDGNN_CHECK(a.rows() == 1 && b.rows() == 1 && a.cols() == b.cols())
      << "CosineSimilarity expects equal-length row vectors";
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t j = 0; j < a.cols(); ++j) {
    dot += static_cast<double>(a.At(0, j)) * b.At(0, j);
    na += static_cast<double>(a.At(0, j)) * a.At(0, j);
    nb += static_cast<double>(b.At(0, j)) * b.At(0, j);
  }
  if (na < 1e-24 || nb < 1e-24) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

}  // namespace hybridgnn
