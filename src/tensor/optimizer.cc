#include "tensor/optimizer.h"

#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace hybridgnn {

void Optimizer::AddParameter(const ag::Var& param) {
  HYBRIDGNN_CHECK(param != nullptr && param->requires_grad)
      << "optimizer parameters must be trainable";
  for (const auto& p : params_) {
    if (p.get() == param.get()) return;
  }
  params_.push_back(param);
}

void Optimizer::AddParameters(const std::vector<ag::Var>& params) {
  for (const auto& p : params) AddParameter(p);
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p->ZeroGrad();
}

void Sgd::Step() {
  for (auto& p : params_) {
    if (p->grad.empty()) continue;
    if (weight_decay_ > 0.0f) {
      p->grad.Axpy(weight_decay_, p->value);
    }
    p->value.Axpy(-lr_, p->grad);
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const float alpha = lr_ * std::sqrt(bc2) / bc1;
  for (auto& p : params_) {
    if (p->grad.empty()) continue;
    State& st = state_[p.get()];
    if (st.m.empty()) {
      st.m = Tensor(p->value.rows(), p->value.cols());
      st.v = Tensor(p->value.rows(), p->value.cols());
    }
    const size_t cols = p->value.cols();
    // Lazy row updates: embedding tables receive gradients on a handful of
    // rows per step; rows whose gradient is entirely zero are skipped (their
    // moments are not decayed — the standard sparse-Adam approximation).
    for (size_t r = 0; r < p->value.rows(); ++r) {
      float* g = p->grad.RowPtr(r);
      bool any = weight_decay_ > 0.0f;
      if (!any) {
        for (size_t j = 0; j < cols; ++j) {
          if (g[j] != 0.0f) {
            any = true;
            break;
          }
        }
      }
      if (!any) continue;
      float* val = p->value.RowPtr(r);
      float* m = st.m.RowPtr(r);
      float* v = st.v.RowPtr(r);
      for (size_t j = 0; j < cols; ++j) {
        float gj = g[j];
        if (weight_decay_ > 0.0f) gj += weight_decay_ * val[j];
        m[j] = beta1_ * m[j] + (1.0f - beta1_) * gj;
        v[j] = beta2_ * v[j] + (1.0f - beta2_) * gj * gj;
        val[j] -= alpha * m[j] / (std::sqrt(v[j]) + epsilon_);
      }
    }
  }
}

}  // namespace hybridgnn
