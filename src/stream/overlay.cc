#include "stream/overlay.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace hybridgnn {

DynamicGraphOverlay::DynamicGraphOverlay(const MultiplexHeteroGraph* base)
    : base_(base), delta_adj_(base->num_relations()) {}

StatusOr<DynamicGraphOverlay::ApplyResult> DynamicGraphOverlay::Apply(
    std::span<const GraphDelta> batch) {
  HYBRIDGNN_RETURN_IF_ERROR(ValidateDeltas(batch, num_nodes(),
                                           num_relations(),
                                           num_node_types()));
  ApplyResult result;
  for (const GraphDelta& d : batch) {
    if (d.kind == DeltaKind::kAddNode) {
      const NodeId id = static_cast<NodeId>(num_nodes());
      added_types_.push_back(d.node_type);
      ++result.nodes_added;
      result.touched.push_back(id);
      continue;
    }
    NodeId src = d.src;
    NodeId dst = d.dst;
    if (src > dst) std::swap(src, dst);
    if (HasEdge(src, dst, d.rel)) {
      ++result.duplicates_ignored;
      continue;
    }
    auto& adj = delta_adj_[d.rel];
    auto insert_sorted = [](std::vector<NodeId>& nbrs, NodeId u) {
      nbrs.insert(std::upper_bound(nbrs.begin(), nbrs.end(), u), u);
    };
    insert_sorted(adj[src], dst);
    insert_sorted(adj[dst], src);
    delta_edges_.push_back(EdgeTriple{src, dst, d.rel});
    result.new_edges.push_back(EdgeTriple{src, dst, d.rel});
    ++result.edges_added;
    result.touched.push_back(src);
    result.touched.push_back(dst);
  }
  std::sort(result.touched.begin(), result.touched.end());
  result.touched.erase(
      std::unique(result.touched.begin(), result.touched.end()),
      result.touched.end());
  obs::GlobalRegistry()
      .GetCounter("stream/deltas_applied")
      .Add(result.edges_added + result.nodes_added);
  obs::GlobalRegistry()
      .GetCounter("stream/duplicates_ignored")
      .Add(result.duplicates_ignored);
  return result;
}

std::span<const NodeId> DynamicGraphOverlay::DeltaNeighbors(
    NodeId v, RelationId r) const {
  const auto& adj = delta_adj_[r];
  auto it = adj.find(v);
  if (it == adj.end()) return {};
  return {it->second.data(), it->second.size()};
}

DynamicGraphOverlay::NeighborView DynamicGraphOverlay::Neighbors(
    NodeId v, RelationId r) const {
  NeighborView view;
  if (v < base_->num_nodes()) view.base = base_->Neighbors(v, r);
  view.delta = DeltaNeighbors(v, r);
  return view;
}

size_t DynamicGraphOverlay::Degree(NodeId v, RelationId r) const {
  size_t d = DeltaNeighbors(v, r).size();
  if (v < base_->num_nodes()) d += base_->Degree(v, r);
  return d;
}

size_t DynamicGraphOverlay::TotalDegree(NodeId v) const {
  size_t d = 0;
  for (RelationId r = 0; r < num_relations(); ++r) d += Degree(v, r);
  return d;
}

std::span<const RelationId> DynamicGraphOverlay::ActiveRelations(
    NodeId v, std::vector<RelationId>& scratch) const {
  scratch.clear();
  if (v < base_->num_nodes()) {
    // Base actives are already computed; extend with delta-only relations.
    auto actives = base_->ActiveRelations(v);
    scratch.assign(actives.begin(), actives.end());
    for (RelationId r = 0; r < num_relations(); ++r) {
      if (!DeltaNeighbors(v, r).empty() &&
          !std::binary_search(scratch.begin(), scratch.end(), r)) {
        scratch.insert(
            std::upper_bound(scratch.begin(), scratch.end(), r), r);
      }
    }
  } else {
    for (RelationId r = 0; r < num_relations(); ++r) {
      if (!DeltaNeighbors(v, r).empty()) scratch.push_back(r);
    }
  }
  return {scratch.data(), scratch.size()};
}

bool DynamicGraphOverlay::HasEdge(NodeId src, NodeId dst,
                                  RelationId rel) const {
  if (rel >= num_relations() || src >= num_nodes() || dst >= num_nodes()) {
    return false;
  }
  if (base_->HasEdge(src, dst, rel)) return true;
  auto delta = DeltaNeighbors(src, rel);
  return std::binary_search(delta.begin(), delta.end(), dst);
}

StatusOr<MultiplexHeteroGraph> DynamicGraphOverlay::Compact() const {
  GraphBuilder builder;
  for (NodeTypeId t = 0; t < base_->num_node_types(); ++t) {
    HYBRIDGNN_ASSIGN_OR_RETURN(NodeTypeId unused,
                               builder.AddNodeType(base_->node_type_name(t)));
    (void)unused;
  }
  for (RelationId r = 0; r < base_->num_relations(); ++r) {
    HYBRIDGNN_ASSIGN_OR_RETURN(RelationId unused,
                               builder.AddRelation(base_->relation_name(r)));
    (void)unused;
  }
  for (NodeId v = 0; v < num_nodes(); ++v) {
    HYBRIDGNN_ASSIGN_OR_RETURN(NodeId unused, builder.AddNode(node_type(v)));
    (void)unused;
  }
  for (const EdgeTriple& e : base_->edges()) {
    HYBRIDGNN_RETURN_IF_ERROR(builder.AddEdge(e.src, e.dst, e.rel));
  }
  for (const EdgeTriple& e : delta_edges_) {
    HYBRIDGNN_RETURN_IF_ERROR(builder.AddEdge(e.src, e.dst, e.rel));
  }
  return builder.Build();
}

}  // namespace hybridgnn
