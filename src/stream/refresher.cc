#include "stream/refresher.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "graph/frontier.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "tensor/autograd.h"

namespace hybridgnn {

IncrementalRefresher::IncrementalRefresher(DynamicGraphOverlay* overlay,
                                           LiveEmbeddingStore* live,
                                           RefreshOptions options)
    : overlay_(overlay),
      live_(live),
      options_(options),
      rng_(options.seed) {}

std::vector<NodeId> IncrementalRefresher::DirtyFrontier(
    std::span<const NodeId> touched, size_t k_hops) const {
  std::vector<NodeId> dirty(touched.begin(), touched.end());
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  std::vector<NodeId> frontier = dirty;
  for (size_t hop = 0; hop < k_hops && !frontier.empty(); ++hop) {
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      for (RelationId r = 0; r < overlay_->num_relations(); ++r) {
        overlay_->Neighbors(v, r).ForEach([&](NodeId u) {
          if (!std::binary_search(dirty.begin(), dirty.end(), u)) {
            next.push_back(u);
          }
        });
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    // Merge the new hop into the sorted dirty set; `next` only holds nodes
    // absent from `dirty`, so a two-way merge stays duplicate-free.
    std::vector<NodeId> merged;
    merged.reserve(dirty.size() + next.size());
    std::merge(dirty.begin(), dirty.end(), next.begin(), next.end(),
               std::back_inserter(merged));
    dirty = std::move(merged);
    frontier = std::move(next);
  }
  return dirty;
}

void IncrementalRefresher::InitFreshRow(RelationId r, NodeId v) {
  float* row = live_->MutableRow(r, v);
  if (row == nullptr) return;
  const size_t dim = live_->dim();
  const float bound = 0.5f / static_cast<float>(dim);
  for (size_t j = 0; j < dim; ++j) {
    row[j] = rng_.UniformFloat(-bound, bound);
  }
}

std::vector<SkipGramPair> IncrementalRefresher::HarvestDirtyPairs(
    std::span<const NodeId> dirty, std::span<const EdgeTriple> new_edges) {
  std::vector<SkipGramPair> pairs;
  std::vector<NodeId> walk;
  std::vector<RelationId> scratch;
  for (NodeId root : dirty) {
    for (RelationId r : overlay_->ActiveRelations(root, scratch)) {
      for (size_t w = 0; w < options_.walks_per_dirty_node; ++w) {
        walk.clear();
        walk.push_back(root);
        NodeId cur = root;
        for (size_t step = 1; step < options_.walk_length; ++step) {
          const size_t degree = overlay_->Degree(cur, r);
          if (degree == 0) break;
          const auto nbrs = overlay_->Neighbors(cur, r);
          cur = nbrs[static_cast<size_t>(rng_.UniformUint64(degree))];
          walk.push_back(cur);
        }
        HarvestPairs(walk, options_.window, r, pairs);
      }
    }
  }
  // Direct first-order pairs for the streamed edges themselves: walks mix
  // 1..window-hop proximity, but the freshness contract is about the new
  // interactions, so they get an explicit up-weight (both directions).
  for (const EdgeTriple& e : new_edges) {
    for (size_t c = 0; c < options_.direct_edge_copies; ++c) {
      pairs.push_back(SkipGramPair{e.src, e.dst, e.rel});
      pairs.push_back(SkipGramPair{e.dst, e.src, e.rel});
    }
  }
  return pairs;
}

size_t IncrementalRefresher::TrainPairs(std::vector<SkipGramPair>& pairs,
                                        std::span<const NodeId> dirty) {
  const size_t dim = live_->dim();
  size_t trained = 0;
  // Group by relation so each minibatch reads/writes one staging table.
  std::sort(pairs.begin(), pairs.end(),
            [](const SkipGramPair& a, const SkipGramPair& b) {
              return a.rel < b.rel;
            });
  std::vector<NodeId> centers, contexts, negatives, neg_pool;
  for (size_t round = 0; round < options_.sgd_rounds; ++round) {
    size_t group_begin = 0;
    while (group_begin < pairs.size()) {
      const RelationId rel = pairs[group_begin].rel;
      size_t group_end = group_begin;
      while (group_end < pairs.size() && pairs[group_end].rel == rel) {
        ++group_end;
      }
      if (rel >= live_->num_relations() || live_->NumRows(rel) == 0) {
        group_begin = group_end;
        continue;
      }
      // Negatives come from the dirty set, not the whole table: they take
      // gradient too (symmetric SGNS — frozen negatives make attraction
      // saturate while repulsion does not, which under popularity skew
      // shoves dirty rows out of the very cone their streamed partners
      // occupy), and drawing them from dirty nodes keeps the write set
      // bounded to the refresh region.
      neg_pool.clear();
      for (NodeId v : dirty) {
        if (live_->Row(rel, v) != nullptr) neg_pool.push_back(v);
      }
      const size_t negs_per_pair =
          neg_pool.empty() ? 0 : options_.num_negatives;
      for (size_t batch_begin = group_begin; batch_begin < group_end;
           batch_begin += options_.minibatch) {
        const size_t batch_end =
            std::min(batch_begin + options_.minibatch, group_end);
        centers.clear();
        contexts.clear();
        negatives.clear();
        for (size_t i = batch_begin; i < batch_end; ++i) {
          const SkipGramPair& p = pairs[i];
          if (live_->Row(rel, p.center) == nullptr ||
              live_->Row(rel, p.context) == nullptr) {
            continue;  // endpoint outside this relation's table
          }
          centers.push_back(p.center);
          contexts.push_back(p.context);
          for (size_t k = 0; k < negs_per_pair; ++k) {
            const size_t pick =
                static_cast<size_t>(rng_.UniformUint64(neg_pool.size()));
            negatives.push_back(neg_pool[pick]);
          }
        }
        const size_t m = centers.size();
        if (m == 0) continue;
        const size_t q = m * negs_per_pair;

        // Gather the touched rows into minibatch tensors, differentiate the
        // SGNS objective on the arena tape, and scatter -lr * grad straight
        // back into staging. Centers appear twice (against contexts and
        // against negatives), so their update is the sum of both grads.
        Tensor c_val(m, dim), x_val(m, dim), cr_val(q, dim), n_val(q, dim);
        for (size_t i = 0; i < m; ++i) {
          const float* c_row = live_->Row(rel, centers[i]);
          const float* x_row = live_->Row(rel, contexts[i]);
          std::memcpy(c_val.data() + i * dim, c_row, dim * sizeof(float));
          std::memcpy(x_val.data() + i * dim, x_row, dim * sizeof(float));
          for (size_t k = 0; k < negs_per_pair; ++k) {
            const size_t j = i * negs_per_pair + k;
            const float* n_row = live_->Row(rel, negatives[j]);
            std::memcpy(cr_val.data() + j * dim, c_row, dim * sizeof(float));
            std::memcpy(n_val.data() + j * dim, n_row, dim * sizeof(float));
          }
        }
        {
          ag::TapeScope scope;
          ag::Var c = ag::Param(std::move(c_val));
          ag::Var x = ag::Param(std::move(x_val));
          ag::Var cr = q > 0 ? ag::Param(std::move(cr_val)) : ag::Var();
          ag::Var n = q > 0 ? ag::Param(std::move(n_val)) : ag::Var();
          ag::Var loss = ag::SgnsLoss(
              ag::RowwiseDot(c, x),
              q > 0 ? ag::RowwiseDot(cr, n) : ag::Var());
          ag::Backward(loss);
          // SgnsLoss means over its rows, which would shrink the step by the
          // minibatch size; un-normalize so each sample takes a per-sample
          // step and learning_rate means the same thing for every minibatch
          // setting. The negative side is scaled by m (not q): a pair's k
          // negatives share one unit of repulsion, balancing its one unit of
          // attraction.
          const float lr_pos = options_.learning_rate * static_cast<float>(m);
          const float lr_neg = options_.learning_rate * static_cast<float>(m);
          auto scatter = [&](const Tensor& grad, size_t row, float lr,
                             RelationId r, NodeId node) {
            float* dst = live_->MutableRow(r, node);
            const float* g = grad.data() + row * dim;
            for (size_t j2 = 0; j2 < dim; ++j2) dst[j2] -= lr * g[j2];
          };
          for (size_t i = 0; i < m; ++i) {
            scatter(c->grad, i, lr_pos, rel, centers[i]);
            scatter(x->grad, i, lr_pos, rel, contexts[i]);
          }
          for (size_t j = 0; j < q; ++j) {
            scatter(cr->grad, j, lr_neg, rel, centers[j / negs_per_pair]);
            scatter(n->grad, j, lr_neg, rel, negatives[j]);
          }
        }
        trained += m;
      }
      group_begin = group_end;
    }
  }
  return trained;
}

void IncrementalRefresher::SmoothDirtyRows(std::span<const NodeId> dirty) {
  if (options_.smoothing_alpha <= 0.0f) return;
  const size_t dim = live_->dim();
  const float alpha = options_.smoothing_alpha;
  MinibatchFrontier frontier;
  std::vector<float> gathered;
  std::vector<NodeId> rows;  // dirty nodes with a row AND >= 1 embedded nbr
  std::vector<float> means;
  for (RelationId r = 0; r < live_->num_relations(); ++r) {
    frontier.Clear();
    gathered.clear();
    rows.clear();
    for (NodeId v : dirty) {
      if (live_->Row(r, v) == nullptr) continue;
      size_t added = 0;
      overlay_->Neighbors(v, r).ForEach([&](NodeId u) {
        const float* u_row = live_->Row(r, u);
        if (u_row == nullptr) return;
        gathered.insert(gathered.end(), u_row, u_row + dim);
        frontier.indices.push_back(
            static_cast<int32_t>(frontier.indices.size()));
        ++added;
      });
      if (added == 0) continue;  // nothing gathered: no segment to close
      frontier.CloseSegment();
      rows.push_back(v);
    }
    if (rows.empty()) continue;
    means.assign(rows.size() * dim, 0.0f);
    kernels::SegmentMean(gathered.data(), dim, frontier.indptr.data(),
                         rows.size(), means.data());
    for (size_t s = 0; s < rows.size(); ++s) {
      float* dst = live_->MutableRow(r, rows[s]);
      const float* mean = means.data() + s * dim;
      for (size_t j = 0; j < dim; ++j) {
        dst[j] = (1.0f - alpha) * dst[j] + alpha * mean[j];
      }
    }
  }
}

StatusOr<IngestStats> IncrementalRefresher::IngestBatch(
    std::span<const GraphDelta> batch) {
  obs::ScopedTimer timer(obs::Stage("stream/ingest_latency"));
  HYBRIDGNN_ASSIGN_OR_RETURN(DynamicGraphOverlay::ApplyResult applied,
                             overlay_->Apply(batch));

  // Rows for streamed-in nodes and edge endpoints that the checkpoint never
  // covered, so they become trainable and servable.
  for (const EdgeTriple& e : applied.new_edges) {
    HYBRIDGNN_ASSIGN_OR_RETURN(LiveEmbeddingStore::EnsureResult src_row,
                               live_->EnsureRow(e.rel, e.src));
    HYBRIDGNN_ASSIGN_OR_RETURN(LiveEmbeddingStore::EnsureResult dst_row,
                               live_->EnsureRow(e.rel, e.dst));
    if (src_row.appended) InitFreshRow(e.rel, e.src);
    if (dst_row.appended) InitFreshRow(e.rel, e.dst);
  }

  std::vector<NodeId> dirty = DirtyFrontier(applied.touched, options_.k_hops);
  std::vector<SkipGramPair> pairs =
      HarvestDirtyPairs(dirty, applied.new_edges);
  const size_t trained = TrainPairs(pairs, dirty);
  SmoothDirtyRows(dirty);
  HYBRIDGNN_RETURN_IF_ERROR(live_->Publish(overlay_));

  IngestStats stats;
  stats.edges_added = applied.edges_added;
  stats.nodes_added = applied.nodes_added;
  stats.duplicates_ignored = applied.duplicates_ignored;
  stats.dirty_nodes = dirty.size();
  stats.pairs_trained = trained;
  stats.published_version = live_->version();
  stats.elapsed_ms = timer.ElapsedMs();

  auto& registry = obs::GlobalRegistry();
  registry.GetGauge("stream/dirty_nodes")
      .Set(static_cast<double>(dirty.size()));
  // Freshness bound of this batch: wall time from first delta applied to
  // the refreshed snapshot being live.
  registry.GetGauge("stream/refresh_lag").Set(stats.elapsed_ms);
  return stats;
}

}  // namespace hybridgnn
