#ifndef HYBRIDGNN_STREAM_OVERLAY_H_
#define HYBRIDGNN_STREAM_OVERLAY_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "graph/graph.h"
#include "stream/delta_log.h"

namespace hybridgnn {

/// Mutable delta layer over an immutable MultiplexHeteroGraph: the base CSR
/// stays frozen (every offline consumer keeps reading it untouched) while
/// streamed edges and nodes accumulate in per-relation delta adjacency
/// maps. Reads mirror the graph's API — Neighbors() / Degree() /
/// ActiveRelations() / HasEdge() — with the one structural difference that
/// Neighbors() returns a two-span view (base CSR run + sorted delta run)
/// instead of a single span, since the union cannot be contiguous.
///
/// The overlay is the ingest side of the streaming bridge: a single writer
/// thread Apply()s delta batches; readers (the IncrementalRefresher, walk
/// regeneration) run on the same thread or after synchronization. It is NOT
/// internally synchronized — concurrent serving reads go through the
/// immutable snapshots published by LiveEmbeddingStore, never through the
/// overlay.
///
/// Periodic Compact() folds base + deltas into a fresh CSR so delta maps
/// never grow unboundedly; callers re-anchor the overlay on the compacted
/// graph via the constructor.
class DynamicGraphOverlay {
 public:
  /// `base` must outlive the overlay.
  explicit DynamicGraphOverlay(const MultiplexHeteroGraph* base);

  /// Outcome of applying one delta batch.
  struct ApplyResult {
    size_t edges_added = 0;
    size_t nodes_added = 0;
    /// Edges already present in base or overlay: ignored, counted. Streams
    /// routinely replay interactions; duplicates are not errors here (use
    /// GraphBuilder's strict mode for offline loads that must be exact).
    size_t duplicates_ignored = 0;
    /// Deduplicated endpoints of newly added edges plus new node ids — the
    /// seed set for the dirty-frontier computation.
    std::vector<NodeId> touched;
    /// The applied (non-duplicate) edges, canonical src <= dst.
    std::vector<EdgeTriple> new_edges;
  };

  /// Validates and applies a batch. On error nothing is applied (the batch
  /// is validated up front against the overlay's current id spaces).
  StatusOr<ApplyResult> Apply(std::span<const GraphDelta> batch);

  // --- read API (mirrors MultiplexHeteroGraph) ---

  size_t num_nodes() const { return base_->num_nodes() + added_types_.size(); }
  size_t num_base_nodes() const { return base_->num_nodes(); }
  size_t num_relations() const { return base_->num_relations(); }
  size_t num_node_types() const { return base_->num_node_types(); }
  /// Unique undirected edges: base plus applied deltas.
  size_t num_edges() const { return base_->num_edges() + delta_edges_.size(); }
  size_t num_delta_edges() const { return delta_edges_.size(); }

  NodeTypeId node_type(NodeId v) const {
    return v < base_->num_nodes() ? base_->node_type(v)
                                  : added_types_[v - base_->num_nodes()];
  }

  /// Concatenated neighbor view: the base CSR run followed by the sorted
  /// delta run. Both runs are individually sorted, so membership tests can
  /// binary-search each side.
  struct NeighborView {
    std::span<const NodeId> base;
    std::span<const NodeId> delta;

    size_t size() const { return base.size() + delta.size(); }
    bool empty() const { return base.empty() && delta.empty(); }
    NodeId operator[](size_t i) const {
      return i < base.size() ? base[i] : delta[i - base.size()];
    }
    template <typename Fn>
    void ForEach(Fn&& fn) const {
      for (NodeId u : base) fn(u);
      for (NodeId u : delta) fn(u);
    }
  };

  NeighborView Neighbors(NodeId v, RelationId r) const;
  size_t Degree(NodeId v, RelationId r) const;
  size_t TotalDegree(NodeId v) const;

  /// Relations under which `v` has at least one (base or delta) neighbor.
  /// `scratch` backs the returned span and is clobbered.
  std::span<const RelationId> ActiveRelations(
      NodeId v, std::vector<RelationId>& scratch) const;

  bool HasEdge(NodeId src, NodeId dst, RelationId rel) const;

  /// All applied delta edges in application order (canonical src <= dst).
  const std::vector<EdgeTriple>& delta_edges() const { return delta_edges_; }
  /// Node types of nodes added on top of the base graph (id = base nodes +
  /// index).
  const std::vector<NodeTypeId>& added_node_types() const {
    return added_types_;
  }

  const MultiplexHeteroGraph& base() const { return *base_; }

  /// Rebuilds base + deltas into a fresh immutable CSR graph. The overlay
  /// itself is unchanged; the caller owns the result and typically
  /// constructs a new overlay on it, dropping this one.
  StatusOr<MultiplexHeteroGraph> Compact() const;

 private:
  /// Sorted delta neighbor list of (v, r), or empty.
  std::span<const NodeId> DeltaNeighbors(NodeId v, RelationId r) const;

  const MultiplexHeteroGraph* base_;
  /// Per relation: node -> sorted extra neighbors (both directions stored).
  std::vector<std::unordered_map<NodeId, std::vector<NodeId>>> delta_adj_;
  std::vector<NodeTypeId> added_types_;
  std::vector<EdgeTriple> delta_edges_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_STREAM_OVERLAY_H_
