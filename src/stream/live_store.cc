#include "stream/live_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace hybridgnn {

StatusOr<std::unique_ptr<LiveEmbeddingStore>> LiveEmbeddingStore::Create(
    const EmbeddingStore& initial, const MultiplexHeteroGraph* graph,
    TopKOptions options) {
  if (initial.num_relations() == 0 || initial.dim() == 0) {
    return Status::InvalidArgument(
        "live store needs a non-empty embedding store to seed from");
  }
  std::unique_ptr<LiveEmbeddingStore> live(new LiveEmbeddingStore());
  live->model_name_ = initial.model_name();
  live->dim_ = initial.dim();
  live->num_nodes_ = initial.num_nodes();
  live->graph_ = graph;
  live->options_ = options;
  live->staging_.resize(initial.num_relations());
  for (RelationId r = 0; r < initial.num_relations(); ++r) {
    StagingTable& t = live->staging_[r];
    t.name = initial.relation_name(r);
    auto rows = initial.RowNodes(r);
    t.row_to_node.assign(rows.begin(), rows.end());
    t.node_to_row.assign(live->num_nodes_, EmbeddingStore::kNoRow);
    for (size_t i = 0; i < t.row_to_node.size(); ++i) {
      t.node_to_row[t.row_to_node[i]] = static_cast<uint32_t>(i);
    }
    auto data = initial.Table(r);
    t.data.assign(data.begin(), data.end());
  }
  HYBRIDGNN_RETURN_IF_ERROR(live->Publish(nullptr));
  return live;
}

float* LiveEmbeddingStore::MutableRow(RelationId r, NodeId v) {
  if (r >= staging_.size()) return nullptr;
  const uint32_t row = RowOf(r, v);
  if (row == EmbeddingStore::kNoRow) return nullptr;
  // Handing out a mutable pointer taints the row for the next publish's
  // norm carry-forward, whether or not the caller ends up writing.
  staging_[r].touched_rows.push_back(row);
  return staging_[r].data.data() + static_cast<size_t>(row) * dim_;
}

const float* LiveEmbeddingStore::Row(RelationId r, NodeId v) const {
  if (r >= staging_.size()) return nullptr;
  const uint32_t row = RowOf(r, v);
  if (row == EmbeddingStore::kNoRow) return nullptr;
  return staging_[r].data.data() + static_cast<size_t>(row) * dim_;
}

StatusOr<LiveEmbeddingStore::EnsureResult> LiveEmbeddingStore::EnsureRow(
    RelationId r, NodeId v) {
  if (r >= staging_.size()) {
    return Status::InvalidArgument("unknown relation id " + std::to_string(r));
  }
  if (v >= num_nodes_) num_nodes_ = static_cast<size_t>(v) + 1;
  StagingTable& t = staging_[r];
  if (v >= t.node_to_row.size()) {
    t.node_to_row.resize(num_nodes_, EmbeddingStore::kNoRow);
  }
  if (t.node_to_row[v] != EmbeddingStore::kNoRow) {
    return EnsureResult{t.node_to_row[v], false};
  }
  const uint32_t row = static_cast<uint32_t>(t.row_to_node.size());
  t.row_to_node.push_back(v);
  t.node_to_row[v] = row;
  t.data.resize(t.data.size() + dim_, 0.0f);
  t.touched_rows.push_back(row);
  return EnsureResult{row, true};
}

Status LiveEmbeddingStore::Publish(const DynamicGraphOverlay* overlay) {
  // Freeze staging into table copies. A fresh Version is always built from
  // scratch — reusing a retired back buffer gated on use_count() would need
  // the writer to observe the readers' release ordering, which a relaxed
  // refcount read does not give us; one memcpy per publish buys a swap that
  // is provably race-free (and TSan-clean) instead.
  std::vector<EmbeddingStore::TableInit> tables;
  tables.reserve(staging_.size());
  for (const StagingTable& t : staging_) {
    EmbeddingStore::TableInit init;
    init.name = t.name;
    init.row_to_node = t.row_to_node;
    Tensor data(t.row_to_node.size(), dim_);
    std::memcpy(data.data(), t.data.data(), t.data.size() * sizeof(float));
    init.data = std::move(data);
    tables.push_back(std::move(init));
  }
  HYBRIDGNN_ASSIGN_OR_RETURN(
      EmbeddingStore store,
      EmbeddingStore::FromTables(model_name_, num_nodes_, std::move(tables)));
  auto version = std::make_shared<Version>(next_sequence_, std::move(store));
  version->filter = std::make_unique<DeltaEdgeFilter>(staging_.size());
  if (overlay != nullptr) {
    size_t dropped = 0;
    for (const EdgeTriple& e : overlay->delta_edges()) {
      if (!version->filter->AddEdge(e.src, e.dst, e.rel)) ++dropped;
    }
    if (dropped > 0) {
      obs::GlobalRegistry()
          .GetCounter("stream/filter_edges_dropped")
          .Add(static_cast<double>(dropped));
    }
  }
  // Carry the outgoing snapshot's cosine norms and ANN indexes into the new
  // recommender, recomputing / re-linking only the rows the writer touched
  // since the last publish. Holding `prev` (the shared_ptr) keeps the
  // borrowed norms and indexes alive through construction; the first
  // publish has nothing to carry.
  std::shared_ptr<const Version> prev = Acquire();
  std::vector<std::vector<uint32_t>> dirty;
  NormCarryover carryover;
  const NormCarryover* carry_arg = nullptr;
  const bool wants_carry = options_.cosine || ResolveAnnEnabled(options_.ann);
  if (wants_carry && prev != nullptr && prev->recommender != nullptr) {
    dirty.reserve(staging_.size());
    for (StagingTable& t : staging_) {
      std::sort(t.touched_rows.begin(), t.touched_rows.end());
      t.touched_rows.erase(
          std::unique(t.touched_rows.begin(), t.touched_rows.end()),
          t.touched_rows.end());
      dirty.push_back(std::move(t.touched_rows));
      t.touched_rows.clear();
    }
    carryover.prev_norms = &prev->recommender->row_norms();
    carryover.dirty_rows = &dirty;
    carryover.prev_ann = &prev->recommender->ann_indexes();
    carry_arg = &carryover;
  } else {
    for (StagingTable& t : staging_) t.touched_rows.clear();
  }
  version->recommender = std::make_unique<TopKRecommender>(
      &version->store, graph_, options_, version->filter.get(), carry_arg);
  {
    std::lock_guard<std::mutex> lock(mu_);
    front_ = std::move(version);  // old snapshot retires with its last reader
  }
  ++next_sequence_;
  obs::GlobalRegistry().GetCounter("stream/publishes").Add(1);
  obs::GlobalRegistry()
      .GetGauge("stream/store_version")
      .Set(static_cast<double>(next_sequence_ - 1));
  return Status::OK();
}

std::shared_ptr<const LiveEmbeddingStore::Version> LiveEmbeddingStore::Acquire()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return front_;
}

RecommenderSource::Pinned LiveEmbeddingStore::AcquireRecommender() const {
  auto version = Acquire();
  Pinned pinned;
  pinned.recommender = version->recommender.get();
  pinned.version = version->sequence;
  pinned.pin = std::move(version);
  return pinned;
}

std::vector<StatusOr<std::vector<Recommendation>>>
LiveEmbeddingStore::RecommendBatch(std::span<const TopKQuery> queries,
                                   ThreadPool* pool) const {
  auto version = Acquire();
  return version->recommender->RecommendBatch(queries, pool);
}

uint64_t LiveEmbeddingStore::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return front_ == nullptr ? 0 : front_->sequence;
}

RelationId LiveEmbeddingStore::FindRelation(const std::string& name) const {
  for (RelationId r = 0; r < staging_.size(); ++r) {
    if (staging_[r].name == name) return r;
  }
  return kInvalidRelation;
}

}  // namespace hybridgnn
