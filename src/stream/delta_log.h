#ifndef HYBRIDGNN_STREAM_DELTA_LOG_H_
#define HYBRIDGNN_STREAM_DELTA_LOG_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace hybridgnn {

/// One timestamped mutation of a multiplex heterogeneous graph. The stream
/// subsystem's unit of ingest: production interaction logs arrive as an
/// append-only sequence of these, ordered by timestamp.
enum class DeltaKind : uint8_t {
  /// A new node of `node_type`. Its id is assigned densely after the
  /// current node-id space; `src` optionally carries the expected id
  /// (kInvalidNode = unchecked) so replays can detect drift.
  kAddNode = 1,
  /// A new undirected edge (src, dst) under relation `rel`.
  kAddEdge = 2,
};

struct GraphDelta {
  DeltaKind kind = DeltaKind::kAddEdge;
  /// Event time in arbitrary monotone units (the ingest pipeline only
  /// compares them; benches use microseconds).
  uint64_t timestamp = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  RelationId rel = kInvalidRelation;
  NodeTypeId node_type = kInvalidNodeType;

  static GraphDelta AddEdge(NodeId src, NodeId dst, RelationId rel,
                            uint64_t ts = 0) {
    GraphDelta d;
    d.kind = DeltaKind::kAddEdge;
    d.timestamp = ts;
    d.src = src;
    d.dst = dst;
    d.rel = rel;
    return d;
  }
  static GraphDelta AddNode(NodeTypeId type, uint64_t ts = 0,
                            NodeId expected_id = kInvalidNode) {
    GraphDelta d;
    d.kind = DeltaKind::kAddNode;
    d.timestamp = ts;
    d.src = expected_id;
    d.node_type = type;
    return d;
  }

  bool operator==(const GraphDelta& o) const {
    return kind == o.kind && timestamp == o.timestamp && src == o.src &&
           dst == o.dst && rel == o.rel && node_type == o.node_type;
  }
};

/// The `.hgd` (HybridGnn Delta) binary append log, version 1.
///
/// Layout (native byte order, tagged so a foreign-endian reader rejects the
/// file cleanly — the same scheme as the `.hgc` checkpoint):
///
///   [ 8-byte header ]
///     0  u8[4]  magic "HGD1"
///     4  u16    endian tag 0xFEFF
///     6  u16    format version (kDeltaLogVersion)
///   [ records, 20 bytes each, appended in arrival order ]
///     0  u8     kind (DeltaKind)
///     1  u8     reserved (0)
///     2  u16    relation id (kAddEdge) or node type id (kAddNode)
///     4  u32    src (kAddEdge) or expected node id (kAddNode)
///     8  u32    dst (kAddEdge) or 0xFFFFFFFF (kAddNode)
///     12 u32    timestamp low 32 bits   (split keeps the record 4-byte
///     16 u32    timestamp high 32 bits   aligned and exactly 20 bytes)
///
/// Fixed-size records make truncation detectable without checksums: a file
/// whose record region is not a multiple of 20 bytes was cut mid-append.
inline constexpr char kDeltaLogMagic[4] = {'H', 'G', 'D', '1'};
inline constexpr uint16_t kDeltaLogEndianTag = 0xFEFF;
inline constexpr uint16_t kDeltaLogVersion = 1;
inline constexpr size_t kDeltaLogHeaderBytes = 8;
inline constexpr size_t kDeltaLogRecordBytes = 20;

/// Appending binary writer. Open() creates the file with a fresh header, or
/// validates the header of an existing log and positions at its end.
/// Single-writer; not thread-safe.
class DeltaLogWriter {
 public:
  DeltaLogWriter() = default;
  ~DeltaLogWriter();
  DeltaLogWriter(const DeltaLogWriter&) = delete;
  DeltaLogWriter& operator=(const DeltaLogWriter&) = delete;

  Status Open(const std::string& path);
  Status Append(const GraphDelta& delta);
  Status Flush();
  void Close();
  bool is_open() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Loads a binary `.hgd` log. Every integrity violation — short header, bad
/// magic, foreign endianness, version skew, truncated trailing record,
/// unknown record kind — comes back as a non-OK Status.
StatusOr<std::vector<GraphDelta>> LoadDeltaLogBinary(const std::string& path);

/// Writes all `deltas` as a fresh binary log (truncating `path`).
Status SaveDeltaLogBinary(std::span<const GraphDelta> deltas,
                          const std::string& path);

/// Text form of the same stream, for hand-written fixtures and demo inputs.
/// Line-oriented, '#' comments allowed; names resolve against `base`:
///   add-node <timestamp> <type-name>
///   add-edge <timestamp> <src> <dst> <relation-name>
StatusOr<std::vector<GraphDelta>> LoadDeltaLogText(
    const std::string& path, const MultiplexHeteroGraph& base);

/// Writes `deltas` in the text format (relation/type ids rendered as names
/// from `base`). Fails on ids outside `base`'s schema.
Status SaveDeltaLogText(std::span<const GraphDelta> deltas,
                        const MultiplexHeteroGraph& base,
                        const std::string& path);

/// Loads either format: binary when the file starts with the `.hgd` magic,
/// text otherwise.
StatusOr<std::vector<GraphDelta>> LoadDeltaLog(
    const std::string& path, const MultiplexHeteroGraph& base);

/// Structural validation of a delta sequence against a graph's id spaces:
/// relations/types must exist, edge endpoints must be in range (counting
/// nodes added by earlier kAddNode deltas in the same sequence), self-loops
/// are rejected, and kAddNode expected ids must match when present. The
/// first violation is returned with its record index.
Status ValidateDeltas(std::span<const GraphDelta> deltas, size_t num_nodes,
                      size_t num_relations, size_t num_node_types);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_STREAM_DELTA_LOG_H_
