#include "stream/delta_log.h"

#include <cstring>
#include <fstream>

#include "common/string_util.h"

namespace hybridgnn {

namespace {

struct RecordBytes {
  uint8_t kind;
  uint8_t reserved;
  uint16_t rel_or_type;
  uint32_t src;
  uint32_t dst;
  // The 64-bit timestamp is split so the record stays 4-byte aligned and
  // exactly 20 bytes — a whole uint64_t would pad the struct to 24.
  uint32_t ts_lo;
  uint32_t ts_hi;
};
static_assert(sizeof(RecordBytes) == kDeltaLogRecordBytes,
              "delta record layout must stay 20 bytes");

RecordBytes Encode(const GraphDelta& d) {
  RecordBytes r{};
  r.kind = static_cast<uint8_t>(d.kind);
  r.reserved = 0;
  if (d.kind == DeltaKind::kAddNode) {
    r.rel_or_type = d.node_type;
    r.src = d.src;
    r.dst = kInvalidNode;
  } else {
    r.rel_or_type = d.rel;
    r.src = d.src;
    r.dst = d.dst;
  }
  r.ts_lo = static_cast<uint32_t>(d.timestamp & 0xFFFFFFFFu);
  r.ts_hi = static_cast<uint32_t>(d.timestamp >> 32);
  return r;
}

StatusOr<GraphDelta> Decode(const RecordBytes& r, size_t index) {
  GraphDelta d;
  switch (r.kind) {
    case static_cast<uint8_t>(DeltaKind::kAddNode):
      d.kind = DeltaKind::kAddNode;
      d.node_type = static_cast<NodeTypeId>(r.rel_or_type);
      d.src = r.src;
      break;
    case static_cast<uint8_t>(DeltaKind::kAddEdge):
      d.kind = DeltaKind::kAddEdge;
      d.rel = static_cast<RelationId>(r.rel_or_type);
      d.src = r.src;
      d.dst = r.dst;
      break;
    default:
      return Status::IoError(
          StrFormat("delta record %zu: unknown kind %u", index,
                    static_cast<unsigned>(r.kind)));
  }
  d.timestamp = (static_cast<uint64_t>(r.ts_hi) << 32) | r.ts_lo;
  return d;
}

struct HeaderBytes {
  char magic[4];
  uint16_t endian;
  uint16_t version;
};
static_assert(sizeof(HeaderBytes) == kDeltaLogHeaderBytes);

HeaderBytes MakeHeader() {
  HeaderBytes h{};
  std::memcpy(h.magic, kDeltaLogMagic, 4);
  h.endian = kDeltaLogEndianTag;
  h.version = kDeltaLogVersion;
  return h;
}

Status CheckHeader(const HeaderBytes& h, const std::string& path) {
  if (std::memcmp(h.magic, kDeltaLogMagic, 4) != 0) {
    return Status::IoError("not a delta log (bad magic): " + path);
  }
  if (h.endian != kDeltaLogEndianTag) {
    return Status::IoError("delta log written on foreign-endian host: " +
                              path);
  }
  if (h.version != kDeltaLogVersion) {
    return Status::IoError(
        StrFormat("delta log version %u unsupported (want %u): %s",
                  static_cast<unsigned>(h.version),
                  static_cast<unsigned>(kDeltaLogVersion), path.c_str()));
  }
  return Status::OK();
}

}  // namespace

DeltaLogWriter::~DeltaLogWriter() { Close(); }

Status DeltaLogWriter::Open(const std::string& path) {
  Close();
  // Append mode creates the file when absent; an existing log must carry a
  // valid header so we never silently append records to a foreign file.
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  bool fresh = true;
  if (probe != nullptr) {
    HeaderBytes h{};
    const size_t got = std::fread(&h, 1, sizeof(h), probe);
    std::fseek(probe, 0, SEEK_END);
    const long size = std::ftell(probe);
    std::fclose(probe);
    if (size > 0) {
      if (got != sizeof(h)) {
        return Status::IoError("delta log shorter than its header: " +
                                  path);
      }
      HYBRIDGNN_RETURN_IF_ERROR(CheckHeader(h, path));
      if ((static_cast<size_t>(size) - kDeltaLogHeaderBytes) %
              kDeltaLogRecordBytes !=
          0) {
        return Status::IoError(
            "delta log truncated mid-record; refusing to append: " + path);
      }
      fresh = false;
    }
  }
  file_ = std::fopen(path.c_str(), fresh ? "wb" : "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot open delta log for append: " + path);
  }
  path_ = path;
  if (fresh) {
    const HeaderBytes h = MakeHeader();
    if (std::fwrite(&h, 1, sizeof(h), file_) != sizeof(h)) {
      Close();
      return Status::IoError("cannot write delta log header: " + path);
    }
  }
  return Status::OK();
}

Status DeltaLogWriter::Append(const GraphDelta& delta) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("delta log writer is not open");
  }
  const RecordBytes r = Encode(delta);
  if (std::fwrite(&r, 1, sizeof(r), file_) != sizeof(r)) {
    return Status::IoError("delta log append failed: " + path_);
  }
  return Status::OK();
}

Status DeltaLogWriter::Flush() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("delta log writer is not open");
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("delta log flush failed: " + path_);
  }
  return Status::OK();
}

void DeltaLogWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

StatusOr<std::vector<GraphDelta>> LoadDeltaLogBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open delta log: " + path);
  HeaderBytes h{};
  if (!in.read(reinterpret_cast<char*>(&h), sizeof(h))) {
    return Status::IoError("delta log shorter than its header: " + path);
  }
  HYBRIDGNN_RETURN_IF_ERROR(CheckHeader(h, path));
  std::vector<GraphDelta> deltas;
  RecordBytes r{};
  size_t index = 0;
  while (in.read(reinterpret_cast<char*>(&r), sizeof(r))) {
    HYBRIDGNN_ASSIGN_OR_RETURN(GraphDelta d, Decode(r, index));
    deltas.push_back(d);
    ++index;
  }
  if (in.gcount() != 0) {
    return Status::IoError(
        StrFormat("delta log truncated mid-record after %zu records "
                  "(%zu stray bytes): %s",
                  index, static_cast<size_t>(in.gcount()), path.c_str()));
  }
  return deltas;
}

Status SaveDeltaLogBinary(std::span<const GraphDelta> deltas,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  const HeaderBytes h = MakeHeader();
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  for (const GraphDelta& d : deltas) {
    const RecordBytes r = Encode(d);
    out.write(reinterpret_cast<const char*>(&r), sizeof(r));
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<std::vector<GraphDelta>> LoadDeltaLogText(
    const std::string& path, const MultiplexHeteroGraph& base) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open delta log: " + path);
  std::vector<GraphDelta> deltas;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view text = StripWhitespace(line);
    if (text.empty() || text[0] == '#') continue;
    std::vector<std::string> fields = Split(std::string(text), ' ');
    auto fail = [&](const std::string& why) -> Status {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: %s", path.c_str(), lineno, why.c_str()));
    };
    if (fields[0] == "add-node") {
      if (fields.size() != 3) {
        return fail("add-node needs <timestamp> <type-name>");
      }
      HYBRIDGNN_ASSIGN_OR_RETURN(int64_t ts, ParseInt64(fields[1]));
      const NodeTypeId type = base.FindNodeType(fields[2]);
      if (type == kInvalidNodeType) {
        return fail("unknown node type: " + fields[2]);
      }
      deltas.push_back(
          GraphDelta::AddNode(type, static_cast<uint64_t>(ts)));
    } else if (fields[0] == "add-edge") {
      if (fields.size() != 5) {
        return fail("add-edge needs <timestamp> <src> <dst> <relation-name>");
      }
      HYBRIDGNN_ASSIGN_OR_RETURN(int64_t ts, ParseInt64(fields[1]));
      HYBRIDGNN_ASSIGN_OR_RETURN(int64_t src, ParseInt64(fields[2]));
      HYBRIDGNN_ASSIGN_OR_RETURN(int64_t dst, ParseInt64(fields[3]));
      if (src < 0 || dst < 0) return fail("node ids must be non-negative");
      RelationId rel = base.FindRelation(fields[4]);
      if (rel == kInvalidRelation) {
        return fail("unknown relation: " + fields[4]);
      }
      deltas.push_back(GraphDelta::AddEdge(static_cast<NodeId>(src),
                                           static_cast<NodeId>(dst), rel,
                                           static_cast<uint64_t>(ts)));
    } else {
      return fail("unknown record kind: " + fields[0]);
    }
  }
  return deltas;
}

Status SaveDeltaLogText(std::span<const GraphDelta> deltas,
                        const MultiplexHeteroGraph& base,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "# hybridgnn graph delta log v1\n";
  for (size_t i = 0; i < deltas.size(); ++i) {
    const GraphDelta& d = deltas[i];
    if (d.kind == DeltaKind::kAddNode) {
      if (d.node_type >= base.num_node_types()) {
        return Status::InvalidArgument(
            StrFormat("delta %zu: node type %u outside base schema", i,
                      static_cast<unsigned>(d.node_type)));
      }
      out << "add-node " << d.timestamp << ' '
          << base.node_type_name(d.node_type) << '\n';
    } else {
      if (d.rel >= base.num_relations()) {
        return Status::InvalidArgument(
            StrFormat("delta %zu: relation %u outside base schema", i,
                      static_cast<unsigned>(d.rel)));
      }
      out << "add-edge " << d.timestamp << ' ' << d.src << ' ' << d.dst << ' '
          << base.relation_name(d.rel) << '\n';
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<std::vector<GraphDelta>> LoadDeltaLog(
    const std::string& path, const MultiplexHeteroGraph& base) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) return Status::IoError("cannot open delta log: " + path);
  char magic[4] = {0, 0, 0, 0};
  probe.read(magic, 4);
  probe.close();
  if (std::memcmp(magic, kDeltaLogMagic, 4) == 0) {
    return LoadDeltaLogBinary(path);
  }
  return LoadDeltaLogText(path, base);
}

Status ValidateDeltas(std::span<const GraphDelta> deltas, size_t num_nodes,
                      size_t num_relations, size_t num_node_types) {
  size_t nodes = num_nodes;
  for (size_t i = 0; i < deltas.size(); ++i) {
    const GraphDelta& d = deltas[i];
    if (d.kind == DeltaKind::kAddNode) {
      if (d.node_type >= num_node_types) {
        return Status::InvalidArgument(
            StrFormat("delta %zu: node type %u out of range (types=%zu)", i,
                      static_cast<unsigned>(d.node_type), num_node_types));
      }
      if (d.src != kInvalidNode && d.src != nodes) {
        return Status::InvalidArgument(
            StrFormat("delta %zu: add-node expects id %u but next id is %zu",
                      i, d.src, nodes));
      }
      ++nodes;
    } else if (d.kind == DeltaKind::kAddEdge) {
      if (d.rel >= num_relations) {
        return Status::InvalidArgument(
            StrFormat("delta %zu: relation %u out of range (relations=%zu)",
                      i, static_cast<unsigned>(d.rel), num_relations));
      }
      if (d.src >= nodes || d.dst >= nodes) {
        return Status::InvalidArgument(
            StrFormat("delta %zu: edge endpoint out of range: %u-%u "
                      "(nodes=%zu)",
                      i, d.src, d.dst, nodes));
      }
      if (d.src == d.dst) {
        return Status::InvalidArgument(
            StrFormat("delta %zu: self-loop on node %u", i, d.src));
      }
    } else {
      return Status::InvalidArgument(
          StrFormat("delta %zu: unknown kind %u", i,
                    static_cast<unsigned>(d.kind)));
    }
  }
  return Status::OK();
}

}  // namespace hybridgnn
