#ifndef HYBRIDGNN_STREAM_LIVE_STORE_H_
#define HYBRIDGNN_STREAM_LIVE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "graph/types.h"
#include "serve/embedding_store.h"
#include "serve/topk.h"
#include "stream/overlay.h"

namespace hybridgnn {

/// Double-buffered bridge between the incremental refresher (single writer)
/// and the serving path (many readers): the writer mutates a private
/// staging copy of the embedding tables row by row, then Publish() freezes
/// staging into an immutable Version — EmbeddingStore + delta-edge filter +
/// TopKRecommender, rebuilt together so the filter set always matches the
/// swapped tables — and swaps it in as the front snapshot under a
/// pointer-sized critical section.
///
/// Readers Acquire() a shared_ptr snapshot and keep scoring against it for
/// as long as they like; a snapshot retires RCU-style when its last reader
/// drops the reference (shared_ptr refcount is the epoch counter), so
/// serving never blocks on ingest and ingest never waits for readers.
///
/// Thread contract: exactly one writer thread calls MutableRow / EnsureRow /
/// Publish; any number of threads call Acquire / RecommendBatch / version.
///
/// Implements RecommenderSource so a RecommendService constructed on the
/// live store pins one published Version per micro-batch.
class LiveEmbeddingStore : public RecommenderSource {
 public:
  /// One immutable published snapshot.
  struct Version {
    Version(uint64_t sequence, EmbeddingStore store)
        : sequence(sequence), store(std::move(store)) {}

    uint64_t sequence = 0;
    EmbeddingStore store;
    /// Streamed edges at publish time, applied as recommendation
    /// exclusions on top of the base graph's neighbor filter.
    std::unique_ptr<DeltaEdgeFilter> filter;
    std::unique_ptr<TopKRecommender> recommender;
  };

  /// Seeds staging (and the first published Version) from `initial`.
  /// `graph` (optional) is the offline training graph used for candidate
  /// typing / neighbor exclusion; it must outlive the live store.
  static StatusOr<std::unique_ptr<LiveEmbeddingStore>> Create(
      const EmbeddingStore& initial, const MultiplexHeteroGraph* graph,
      TopKOptions options);

  LiveEmbeddingStore(const LiveEmbeddingStore&) = delete;
  LiveEmbeddingStore& operator=(const LiveEmbeddingStore&) = delete;

  // --- writer side (single thread) ---

  /// Mutable staging row of node `v` under relation `r`, or nullptr when
  /// the table has no row for `v`. Changes become visible at Publish().
  float* MutableRow(RelationId r, NodeId v);

  /// Staging row of (v, r) for reading, or nullptr.
  const float* Row(RelationId r, NodeId v) const;

  /// Outcome of EnsureRow: the row index, and whether the call appended it
  /// (vs. the node already having one).
  struct EnsureResult {
    uint32_t row = 0;
    bool appended = false;
  };

  /// Row of (v, r), appending a zero row when absent (how streamed-in new
  /// nodes become servable). `appended` lets callers distinguish a fresh
  /// zero row from a pre-existing (possibly trained) one.
  StatusOr<EnsureResult> EnsureRow(RelationId r, NodeId v);

  /// Freezes staging into a new Version and swaps it in as the front
  /// snapshot. `overlay` (optional) supplies the delta edges for the
  /// exclusion-filter rebuild. Cost is one copy of the staging tables; the
  /// swap itself is a pointer exchange, so in-flight readers are never
  /// stalled and keep their acquired snapshot until they drop it.
  ///
  /// In cosine mode the new recommender's row norms are carried forward
  /// from the outgoing snapshot for every row the writer did not touch
  /// since the last publish (MutableRow / EnsureRow track the touched set),
  /// so norm maintenance costs O(touched * dim) instead of O(rows * dim).
  Status Publish(const DynamicGraphOverlay* overlay);

  // --- reader side (any thread) ---

  /// Current front snapshot. The returned pointer (and everything hanging
  /// off it) stays valid until released, regardless of later publishes.
  std::shared_ptr<const Version> Acquire() const;

  /// RecommenderSource: the front snapshot's recommender, pinned by the
  /// snapshot itself.
  Pinned AcquireRecommender() const override;

  /// Convenience: batch retrieval against the current front snapshot (one
  /// consistent version for the whole batch).
  std::vector<StatusOr<std::vector<Recommendation>>> RecommendBatch(
      std::span<const TopKQuery> queries, ThreadPool* pool = nullptr) const;

  /// Sequence number of the front snapshot (starts at 1, +1 per publish).
  uint64_t version() const;

  // --- shape accessors (staging view; writer thread or quiescent) ---
  size_t dim() const { return dim_; }
  size_t num_relations() const { return staging_.size(); }
  size_t num_nodes() const { return num_nodes_; }
  const std::string& relation_name(RelationId r) const {
    return staging_[r].name;
  }
  RelationId FindRelation(const std::string& name) const;
  size_t NumRows(RelationId r) const { return staging_[r].row_to_node.size(); }
  NodeId RowNode(RelationId r, size_t row) const {
    return staging_[r].row_to_node[row];
  }
  uint32_t RowOf(RelationId r, NodeId v) const {
    const auto& idx = staging_[r].node_to_row;
    return v < idx.size() ? idx[v] : EmbeddingStore::kNoRow;
  }

 private:
  struct StagingTable {
    std::string name;
    std::vector<NodeId> row_to_node;
    std::vector<uint32_t> node_to_row;  // node -> row or kNoRow
    std::vector<float> data;            // rows * dim
    /// Rows handed out via MutableRow (or appended) since the last
    /// publish: unsorted, possibly with duplicates; sorted + deduped into
    /// the NormCarryover dirty list at Publish, then cleared.
    std::vector<uint32_t> touched_rows;
  };

  LiveEmbeddingStore() = default;

  std::string model_name_;
  size_t dim_ = 0;
  size_t num_nodes_ = 0;  // id space: grows with EnsureRow on unseen nodes
  const MultiplexHeteroGraph* graph_ = nullptr;
  TopKOptions options_;
  std::vector<StagingTable> staging_;

  uint64_t next_sequence_ = 1;
  mutable std::mutex mu_;  // guards front_ only (pointer copy / swap)
  std::shared_ptr<const Version> front_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_STREAM_LIVE_STORE_H_
