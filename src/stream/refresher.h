#ifndef HYBRIDGNN_STREAM_REFRESHER_H_
#define HYBRIDGNN_STREAM_REFRESHER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "sampling/corpus.h"
#include "stream/delta_log.h"
#include "stream/live_store.h"
#include "stream/overlay.h"

namespace hybridgnn {

/// Knobs for one incremental refresh. Defaults are tuned for freshness over
/// polish: a few short walks per dirty node, a couple of SGD rounds — enough
/// to pull the endpoints of streamed edges together without re-touching the
/// rest of the table.
struct RefreshOptions {
  /// Dirty-frontier depth: touched nodes plus their <= k_hops-hop
  /// neighborhoods get their walks regenerated. 0 refreshes only the
  /// touched nodes themselves.
  size_t k_hops = 1;
  /// Walk regeneration budget per dirty root (per active relation).
  size_t walks_per_dirty_node = 4;
  size_t walk_length = 6;
  size_t window = 2;
  /// Copies of each newly streamed edge injected as direct (src, dst)
  /// skip-gram pairs — the first-order signal that makes a refreshed store
  /// score the new interactions above noise.
  size_t direct_edge_copies = 4;
  /// Negatives per pair, drawn from (and updated within) the dirty set.
  /// Defaults to 0 — attraction-only refresh. The live table is seeded from
  /// a checkpoint of *final* embeddings, so center and context share one
  /// table; tied-weight SGNS repulsion pushes served vectors around the
  /// geometry directly (word2vec avoids this with a separate output table)
  /// and in a bounded few-round refresh it reliably costs more ranking
  /// quality on the streamed edges than it buys in contrast. Collapse —
  /// the failure negatives exist to prevent — needs epochs this refresh
  /// never runs.
  size_t num_negatives = 0;
  /// Epochs over the regenerated pair set.
  size_t sgd_rounds = 2;
  /// Pairs per tape-backed SGNS minibatch.
  size_t minibatch = 256;
  float learning_rate = 0.05f;
  /// Optional post-SGNS smoothing: each dirty row is blended toward the
  /// mean of its (embedded) neighbors, new_row = (1-a)*row + a*mean. 0
  /// disables the pass.
  float smoothing_alpha = 0.0f;
  uint64_t seed = 1;
};

/// Outcome of one IngestBatch.
struct IngestStats {
  size_t edges_added = 0;
  size_t nodes_added = 0;
  size_t duplicates_ignored = 0;
  size_t dirty_nodes = 0;
  size_t pairs_trained = 0;
  uint64_t published_version = 0;
  double elapsed_ms = 0.0;
};

/// The online bridge's compute stage: applies delta batches to a
/// DynamicGraphOverlay, localizes the damage (dirty frontier = touched
/// nodes + K-hop neighborhoods), regenerates short walks from dirty roots
/// only, replays bounded SGNS updates against the LiveEmbeddingStore's
/// staging tables on the arena tape, and publishes a fresh snapshot.
/// Everything outside the dirty region keeps its bits; cost scales with the
/// delta, not the graph.
///
/// Single-threaded by contract (one ingest thread owns the overlay, the
/// refresher, and the live store's writer side); serving reads go through
/// the live store's published snapshots and never touch this class.
class IncrementalRefresher {
 public:
  /// `overlay` and `live` must outlive the refresher; the refresher is the
  /// sole writer of both.
  IncrementalRefresher(DynamicGraphOverlay* overlay, LiveEmbeddingStore* live,
                       RefreshOptions options);

  /// Applies `batch` to the overlay, refreshes the dirty region, and
  /// publishes a new store version. Errors leave the overlay unchanged
  /// (batch validation happens before any mutation).
  StatusOr<IngestStats> IngestBatch(std::span<const GraphDelta> batch);

  /// The dirty frontier of a touched set: `touched` plus every node within
  /// `k_hops` hops (over all relations, base + delta edges). Sorted,
  /// deduplicated. Exposed for tests and for callers that want to refresh
  /// without applying (e.g. after Compact()).
  std::vector<NodeId> DirtyFrontier(std::span<const NodeId> touched,
                                    size_t k_hops) const;

  /// Re-anchors the refresher after the caller swapped the overlay (the
  /// Compact() dance builds a new graph + overlay and re-points here).
  void Reanchor(DynamicGraphOverlay* overlay) { overlay_ = overlay; }

  const RefreshOptions& options() const { return options_; }

 private:
  /// Regenerates walk pairs from the dirty roots and the new edges.
  std::vector<SkipGramPair> HarvestDirtyPairs(
      std::span<const NodeId> dirty, std::span<const EdgeTriple> new_edges);

  /// Runs `sgd_rounds` of minibatched SGNS over `pairs` against staging
  /// rows; negatives are drawn from (and updated within) the dirty set so
  /// the write set stays bounded. Returns pairs actually trained (pairs
  /// whose endpoints have rows).
  size_t TrainPairs(std::vector<SkipGramPair>& pairs,
                    std::span<const NodeId> dirty);

  /// Blends each dirty row toward its neighborhood mean (smoothing_alpha).
  void SmoothDirtyRows(std::span<const NodeId> dirty);

  /// Rows freshly appended by EnsureRow get a small deterministic random
  /// init so their context gradients are non-degenerate; pre-existing rows
  /// (trained or deliberately zeroed) are never touched.
  void InitFreshRow(RelationId r, NodeId v);

  DynamicGraphOverlay* overlay_;
  LiveEmbeddingStore* live_;
  RefreshOptions options_;
  Rng rng_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_STREAM_REFRESHER_H_
