#include "graph/graph_io.h"

#include <fstream>
#include <unordered_map>

#include "common/string_util.h"

namespace hybridgnn {

Status SaveGraph(const MultiplexHeteroGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "# hybridgnn multiplex heterogeneous graph v1\n";
  out << "node_types";
  for (NodeTypeId t = 0; t < g.num_node_types(); ++t) {
    out << ' ' << g.node_type_name(t);
  }
  out << '\n';
  out << "relations";
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    out << ' ' << g.relation_name(r);
  }
  out << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out << "node " << v << ' ' << g.node_type_name(g.node_type(v)) << '\n';
  }
  for (const auto& e : g.edges()) {
    out << "edge " << e.src << ' ' << e.dst << ' ' << g.relation_name(e.rel)
        << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<MultiplexHeteroGraph> LoadGraph(const std::string& path,
                                         LoadStrictness strictness) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  GraphBuilder builder;
  builder.set_reject_duplicates(strictness == LoadStrictness::kStrict);
  std::unordered_map<std::string, NodeTypeId> type_by_name;
  std::unordered_map<std::string, RelationId> rel_by_name;
  NodeId expected_node = 0;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view text = StripWhitespace(line);
    if (text.empty() || text[0] == '#') continue;
    std::vector<std::string> fields = Split(std::string(text), ' ');
    const std::string& kind = fields[0];
    auto fail = [&](const std::string& why) -> Status {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: %s", path.c_str(), lineno, why.c_str()));
    };
    if (kind == "node_types") {
      if (fields.size() < 2) return fail("node_types needs >= 1 name");
      for (size_t i = 1; i < fields.size(); ++i) {
        HYBRIDGNN_ASSIGN_OR_RETURN(NodeTypeId t,
                                   builder.AddNodeType(fields[i]));
        type_by_name[fields[i]] = t;
      }
    } else if (kind == "relations") {
      if (fields.size() < 2) return fail("relations needs >= 1 name");
      for (size_t i = 1; i < fields.size(); ++i) {
        HYBRIDGNN_ASSIGN_OR_RETURN(RelationId r,
                                   builder.AddRelation(fields[i]));
        rel_by_name[fields[i]] = r;
      }
    } else if (kind == "node") {
      if (fields.size() != 3) return fail("node needs <id> <type>");
      HYBRIDGNN_ASSIGN_OR_RETURN(int64_t id, ParseInt64(fields[1]));
      if (static_cast<NodeId>(id) != expected_node) {
        return fail(
            StrFormat("node ids must be dense; expected %u", expected_node));
      }
      auto it = type_by_name.find(fields[2]);
      if (it == type_by_name.end()) {
        return fail("unknown node type: " + fields[2]);
      }
      HYBRIDGNN_ASSIGN_OR_RETURN(NodeId added, builder.AddNode(it->second));
      (void)added;
      ++expected_node;
    } else if (kind == "edge") {
      if (fields.size() != 4) return fail("edge needs <src> <dst> <rel>");
      HYBRIDGNN_ASSIGN_OR_RETURN(int64_t src, ParseInt64(fields[1]));
      HYBRIDGNN_ASSIGN_OR_RETURN(int64_t dst, ParseInt64(fields[2]));
      auto it = rel_by_name.find(fields[3]);
      if (it == rel_by_name.end()) {
        return fail("unknown relation: " + fields[3]);
      }
      Status added_edge = builder.AddEdge(
          static_cast<NodeId>(src), static_cast<NodeId>(dst), it->second);
      if (!added_edge.ok()) {
        // Keep the builder's code (AlreadyExists for strict-mode dupes),
        // prefix the file position.
        return Status(added_edge.code(),
                      StrFormat("%s:%zu: %s", path.c_str(), lineno,
                                added_edge.message().c_str()));
      }
    } else {
      return fail("unknown record kind: " + kind);
    }
  }
  return builder.Build();
}

}  // namespace hybridgnn
