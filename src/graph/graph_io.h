#ifndef HYBRIDGNN_GRAPH_GRAPH_IO_H_
#define HYBRIDGNN_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/statusor.h"
#include "graph/graph.h"

namespace hybridgnn {

/// Text serialization of a multiplex heterogeneous graph.
///
/// Format (line-oriented, '#' comments allowed):
///   node_types <name>...
///   relations <name>...
///   node <id> <type_name>          (ids must be dense, ascending from 0)
///   edge <src> <dst> <relation_name>
Status SaveGraph(const MultiplexHeteroGraph& g, const std::string& path);

/// Load-time strictness. kLenient (the historical behavior) lets Build()
/// silently collapse exact duplicate edge lines; kStrict rejects them with
/// AlreadyExists, pinpointing the offending line — use it for inputs that
/// are supposed to be exact exports (a doubled line there means the file
/// was corrupted or concatenated).
enum class LoadStrictness { kLenient, kStrict };

/// Loads a graph saved by SaveGraph.
StatusOr<MultiplexHeteroGraph> LoadGraph(
    const std::string& path,
    LoadStrictness strictness = LoadStrictness::kLenient);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_GRAPH_GRAPH_IO_H_
