#include "graph/graph.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace hybridgnn {

StatusOr<NodeTypeId> GraphBuilder::AddNodeType(const std::string& name) {
  for (const auto& existing : type_names_) {
    if (existing == name) {
      return Status::AlreadyExists("node type exists: " + name);
    }
  }
  if (type_names_.size() >= kInvalidNodeType) {
    return Status::OutOfRange("too many node types");
  }
  type_names_.push_back(name);
  return static_cast<NodeTypeId>(type_names_.size() - 1);
}

StatusOr<RelationId> GraphBuilder::AddRelation(const std::string& name) {
  for (const auto& existing : relation_names_) {
    if (existing == name) {
      return Status::AlreadyExists("relation exists: " + name);
    }
  }
  if (relation_names_.size() >= kInvalidRelation) {
    return Status::OutOfRange("too many relations");
  }
  relation_names_.push_back(name);
  return static_cast<RelationId>(relation_names_.size() - 1);
}

StatusOr<NodeId> GraphBuilder::AddNode(NodeTypeId type) {
  if (type >= type_names_.size()) {
    return Status::InvalidArgument(
        StrFormat("unknown node type %u", static_cast<unsigned>(type)));
  }
  node_types_.push_back(type);
  return static_cast<NodeId>(node_types_.size() - 1);
}

StatusOr<NodeId> GraphBuilder::AddNodes(NodeTypeId type, size_t count) {
  if (type >= type_names_.size()) {
    return Status::InvalidArgument(
        StrFormat("unknown node type %u", static_cast<unsigned>(type)));
  }
  if (count == 0) return Status::InvalidArgument("AddNodes count must be > 0");
  NodeId first = static_cast<NodeId>(node_types_.size());
  node_types_.insert(node_types_.end(), count, type);
  return first;
}

GraphBuilder& GraphBuilder::set_reject_duplicates(bool enabled) {
  if (enabled && !reject_duplicates_) {
    // Index whatever was added before strict mode was switched on.
    edge_keys_.reserve(edges_.size());
    for (const EdgeTriple& e : edges_) {
      edge_keys_.insert(EdgeKey{
          (static_cast<uint64_t>(e.src) << 32) | e.dst, e.rel});
    }
  }
  if (!enabled) edge_keys_.clear();
  reject_duplicates_ = enabled;
  return *this;
}

Status GraphBuilder::AddEdge(NodeId src, NodeId dst, RelationId rel) {
  if (src >= node_types_.size() || dst >= node_types_.size()) {
    return Status::InvalidArgument(
        StrFormat("edge endpoint out of range: %u-%u (nodes=%zu)", src, dst,
                  node_types_.size()));
  }
  if (rel >= relation_names_.size()) {
    return Status::InvalidArgument(
        StrFormat("unknown relation %u", static_cast<unsigned>(rel)));
  }
  if (src == dst) {
    return Status::InvalidArgument(StrFormat("self-loop on node %u", src));
  }
  if (src > dst) std::swap(src, dst);
  if (reject_duplicates_) {
    const EdgeKey key{(static_cast<uint64_t>(src) << 32) | dst, rel};
    if (!edge_keys_.insert(key).second) {
      return Status::AlreadyExists(
          StrFormat("duplicate edge %u-%u under relation '%s'", src, dst,
                    relation_names_[rel].c_str()));
    }
  }
  edges_.push_back(EdgeTriple{src, dst, rel});
  return Status::OK();
}

StatusOr<MultiplexHeteroGraph> GraphBuilder::Build() const {
  if (type_names_.empty()) {
    return Status::FailedPrecondition("no node types registered");
  }
  if (relation_names_.empty()) {
    return Status::FailedPrecondition("no relations registered");
  }
  MultiplexHeteroGraph g;
  g.type_names_ = type_names_;
  g.relation_names_ = relation_names_;
  g.node_types_ = node_types_;

  const size_t n = node_types_.size();
  const size_t num_rel = relation_names_.size();

  g.nodes_by_type_.assign(type_names_.size(), {});
  for (NodeId v = 0; v < n; ++v) {
    g.nodes_by_type_[node_types_[v]].push_back(v);
  }

  // Deduplicate edges (same src,dst,rel triple listed twice).
  std::vector<EdgeTriple> edges = edges_;
  std::sort(edges.begin(), edges.end(),
            [](const EdgeTriple& a, const EdgeTriple& b) {
              if (a.rel != b.rel) return a.rel < b.rel;
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  g.edges_ = edges;

  g.edges_by_relation_.assign(num_rel, {});
  for (const auto& e : edges) g.edges_by_relation_[e.rel].push_back(e);

  // Per-relation CSR (both directions).
  g.offsets_.assign(num_rel, std::vector<size_t>(n + 1, 0));
  g.adjacency_.assign(num_rel, {});
  for (RelationId r = 0; r < num_rel; ++r) {
    auto& offs = g.offsets_[r];
    for (const auto& e : g.edges_by_relation_[r]) {
      ++offs[e.src + 1];
      ++offs[e.dst + 1];
    }
    for (size_t i = 0; i < n; ++i) offs[i + 1] += offs[i];
    auto& adj = g.adjacency_[r];
    adj.resize(offs[n]);
    std::vector<size_t> cursor(offs.begin(), offs.end() - 1);
    for (const auto& e : g.edges_by_relation_[r]) {
      adj[cursor[e.src]++] = e.dst;
      adj[cursor[e.dst]++] = e.src;
    }
    // Sorted adjacency enables O(log d) HasEdge.
    for (NodeId v = 0; v < n; ++v) {
      std::sort(adj.begin() + offs[v], adj.begin() + offs[v + 1]);
    }
  }

  // Active-relation index.
  g.active_rel_offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    size_t cnt = 0;
    for (RelationId r = 0; r < num_rel; ++r) {
      if (g.offsets_[r][v + 1] > g.offsets_[r][v]) ++cnt;
    }
    g.active_rel_offsets_[v + 1] = g.active_rel_offsets_[v] + cnt;
  }
  g.active_rels_.resize(g.active_rel_offsets_[n]);
  for (NodeId v = 0; v < n; ++v) {
    size_t at = g.active_rel_offsets_[v];
    for (RelationId r = 0; r < num_rel; ++r) {
      if (g.offsets_[r][v + 1] > g.offsets_[r][v]) g.active_rels_[at++] = r;
    }
  }
  return g;
}

NodeTypeId MultiplexHeteroGraph::FindNodeType(const std::string& name) const {
  for (size_t i = 0; i < type_names_.size(); ++i) {
    if (type_names_[i] == name) return static_cast<NodeTypeId>(i);
  }
  return kInvalidNodeType;
}

RelationId MultiplexHeteroGraph::FindRelation(const std::string& name) const {
  for (size_t i = 0; i < relation_names_.size(); ++i) {
    if (relation_names_[i] == name) return static_cast<RelationId>(i);
  }
  return kInvalidRelation;
}

size_t MultiplexHeteroGraph::TotalDegree(NodeId v) const {
  size_t d = 0;
  for (RelationId r = 0; r < num_relations(); ++r) d += Degree(v, r);
  return d;
}

bool MultiplexHeteroGraph::HasEdge(NodeId src, NodeId dst,
                                   RelationId rel) const {
  if (rel >= num_relations() || src >= num_nodes() || dst >= num_nodes()) {
    return false;
  }
  auto nbrs = Neighbors(src, rel);
  return std::binary_search(nbrs.begin(), nbrs.end(), dst);
}

StatusOr<MultiplexHeteroGraph> MultiplexHeteroGraph::ExtractRelationSubset(
    const std::vector<RelationId>& keep) const {
  if (keep.empty()) {
    return Status::InvalidArgument("relation subset must be non-empty");
  }
  GraphBuilder builder;
  for (const auto& t : type_names_) {
    HYBRIDGNN_ASSIGN_OR_RETURN(NodeTypeId unused, builder.AddNodeType(t));
    (void)unused;
  }
  for (RelationId r : keep) {
    if (r >= num_relations()) {
      return Status::InvalidArgument(
          StrFormat("relation %u out of range", static_cast<unsigned>(r)));
    }
    HYBRIDGNN_ASSIGN_OR_RETURN(RelationId unused,
                               builder.AddRelation(relation_names_[r]));
    (void)unused;
  }
  for (NodeId v = 0; v < num_nodes(); ++v) {
    HYBRIDGNN_ASSIGN_OR_RETURN(NodeId unused,
                               builder.AddNode(node_types_[v]));
    (void)unused;
  }
  for (size_t i = 0; i < keep.size(); ++i) {
    for (const auto& e : edges_by_relation_[keep[i]]) {
      HYBRIDGNN_RETURN_IF_ERROR(
          builder.AddEdge(e.src, e.dst, static_cast<RelationId>(i)));
    }
  }
  return builder.Build();
}

MultiplexHeteroGraph MultiplexHeteroGraph::MergeRelations(
    const std::string& merged_name) const {
  GraphBuilder builder;
  for (const auto& t : type_names_) {
    HYBRIDGNN_CHECK(builder.AddNodeType(t).ok());
  }
  HYBRIDGNN_CHECK(builder.AddRelation(merged_name).ok());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    HYBRIDGNN_CHECK(builder.AddNode(node_types_[v]).ok());
  }
  for (const auto& e : edges_) {
    HYBRIDGNN_CHECK_OK(builder.AddEdge(e.src, e.dst, 0));
  }
  auto built = builder.Build();
  HYBRIDGNN_CHECK(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

}  // namespace hybridgnn
