#ifndef HYBRIDGNN_GRAPH_GRAPH_H_
#define HYBRIDGNN_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/statusor.h"
#include "graph/types.h"

namespace hybridgnn {

class MultiplexHeteroGraph;

/// Incremental constructor for MultiplexHeteroGraph. Register node types and
/// relations first, then nodes, then edges; `Build()` freezes everything into
/// immutable per-relation CSR adjacency.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Registers a node type; returns its id. Duplicate names are an error
  /// surfaced at Build() time via AddNodeType's StatusOr.
  StatusOr<NodeTypeId> AddNodeType(const std::string& name);
  /// Registers an edge type (relationship); returns its id.
  StatusOr<RelationId> AddRelation(const std::string& name);

  /// Adds one node of `type`; returns its dense id.
  StatusOr<NodeId> AddNode(NodeTypeId type);
  /// Adds `count` nodes of `type`; returns the first id (ids are contiguous).
  StatusOr<NodeId> AddNodes(NodeTypeId type, size_t count);

  /// Adds an undirected edge (src, dst) under `rel`. Self-loops are always
  /// rejected; parallel edges under *different* relations are the whole
  /// point of multiplexity and are allowed. Exact duplicate triples are
  /// silently collapsed by Build() unless set_reject_duplicates(true) made
  /// them an AlreadyExists error here.
  Status AddEdge(NodeId src, NodeId dst, RelationId rel);

  /// Strict-ingest mode: when enabled, AddEdge returns AlreadyExists for an
  /// exact (src, dst, rel) duplicate instead of deferring to Build()'s
  /// silent dedup. Turn on for loaders that must detect corrupt or doubled
  /// input (see LoadGraph's strict option); leave off for generators that
  /// legitimately emit repeats. Enabling mid-build indexes the edges added
  /// so far.
  GraphBuilder& set_reject_duplicates(bool enabled);
  bool reject_duplicates() const { return reject_duplicates_; }

  size_t num_nodes() const { return node_types_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Freezes the graph. The builder can be reused afterwards (it keeps its
  /// state), which simplifies constructing graph families in tests.
  StatusOr<MultiplexHeteroGraph> Build() const;

 private:
  /// Exact-match key for the duplicate index: canonical endpoints packed
  /// into 64 bits plus the relation, so lookups never false-positive.
  struct EdgeKey {
    uint64_t endpoints;  // src << 32 | dst, src <= dst
    RelationId rel;
    bool operator==(const EdgeKey& o) const {
      return endpoints == o.endpoints && rel == o.rel;
    }
  };
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey& k) const {
      uint64_t h = k.endpoints ^ (static_cast<uint64_t>(k.rel) << 1);
      h ^= h >> 33;
      h *= 0xFF51AFD7ED558CCDULL;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };

  std::vector<std::string> type_names_;
  std::vector<std::string> relation_names_;
  std::vector<NodeTypeId> node_types_;  // node id -> type
  std::vector<EdgeTriple> edges_;       // canonical src <= dst
  bool reject_duplicates_ = false;
  std::unordered_set<EdgeKey, EdgeKeyHash> edge_keys_;  // strict mode only
};

/// Immutable multiplex heterogeneous network (Definition 2 in the paper):
/// node types O, relationships R, and for every relationship a CSR adjacency
/// over the shared node set. Multiple relationships may connect the same node
/// pair. All edges are undirected.
class MultiplexHeteroGraph {
 public:
  MultiplexHeteroGraph() = default;

  size_t num_nodes() const { return node_types_.size(); }
  /// Number of unique undirected (src,dst,rel) triples.
  size_t num_edges() const { return edges_.size(); }
  size_t num_node_types() const { return type_names_.size(); }
  size_t num_relations() const { return relation_names_.size(); }

  NodeTypeId node_type(NodeId v) const { return node_types_[v]; }
  const std::string& node_type_name(NodeTypeId t) const {
    return type_names_[t];
  }
  const std::string& relation_name(RelationId r) const {
    return relation_names_[r];
  }
  /// Id of a node type by name, or kInvalidNodeType.
  NodeTypeId FindNodeType(const std::string& name) const;
  /// Id of a relation by name, or kInvalidRelation.
  RelationId FindRelation(const std::string& name) const;

  /// All node ids of type `t` (the paper's kappa(v) when t = phi(v)).
  const std::vector<NodeId>& NodesOfType(NodeTypeId t) const {
    return nodes_by_type_[t];
  }

  /// Neighbors of `v` under relation `r` (N_r(v) in the paper).
  std::span<const NodeId> Neighbors(NodeId v, RelationId r) const {
    const auto& offs = offsets_[r];
    return {adjacency_[r].data() + offs[v], offs[v + 1] - offs[v]};
  }

  /// Degree of `v` under `r`.
  size_t Degree(NodeId v, RelationId r) const {
    return offsets_[r][v + 1] - offsets_[r][v];
  }

  /// Degree summed over all relations.
  size_t TotalDegree(NodeId v) const;

  /// Relations under which `v` has at least one neighbor — the support of
  /// the first phase of randomized inter-relationship exploration (Eq. 1).
  std::span<const RelationId> ActiveRelations(NodeId v) const {
    const auto& offs = active_rel_offsets_;
    return {active_rels_.data() + offs[v], offs[v + 1] - offs[v]};
  }

  /// True if (src, dst) are connected under `rel` (binary search, O(log d)).
  bool HasEdge(NodeId src, NodeId dst, RelationId rel) const;

  /// Unique undirected edges of relation `r` (canonical src <= dst).
  const std::vector<EdgeTriple>& EdgesOfRelation(RelationId r) const {
    return edges_by_relation_[r];
  }
  /// All unique undirected edges.
  const std::vector<EdgeTriple>& edges() const { return edges_; }

  /// Builds the relationship-specific multigraph g_{r in keep}: same nodes,
  /// only edges whose relation appears in `keep` (order defines the new
  /// relation ids). Used for the Table VI inter-relationship uplift study.
  StatusOr<MultiplexHeteroGraph> ExtractRelationSubset(
      const std::vector<RelationId>& keep) const;

  /// Builds the graph that merges every relation into a single one,
  /// discarding edge heterogeneity (what relation-blind baselines see).
  /// Duplicate node pairs across relations collapse to one edge.
  MultiplexHeteroGraph MergeRelations(const std::string& merged_name) const;

 private:
  friend class GraphBuilder;
  // Test-only backdoor (defined in tests): desyncs internal tables to
  // exercise defensive paths that Build() can never produce.
  friend struct GraphTestPeer;

  std::vector<std::string> type_names_;
  std::vector<std::string> relation_names_;
  std::vector<NodeTypeId> node_types_;
  std::vector<std::vector<NodeId>> nodes_by_type_;

  // Per-relation CSR: offsets_[r] has num_nodes+1 entries into adjacency_[r].
  std::vector<std::vector<size_t>> offsets_;
  std::vector<std::vector<NodeId>> adjacency_;

  // Flattened per-node list of relations with non-empty neighborhoods.
  std::vector<size_t> active_rel_offsets_;
  std::vector<RelationId> active_rels_;

  std::vector<EdgeTriple> edges_;
  std::vector<std::vector<EdgeTriple>> edges_by_relation_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_GRAPH_GRAPH_H_
