#include "graph/metapath.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"

namespace hybridgnn {

MetapathScheme::MetapathScheme(std::vector<NodeTypeId> node_types,
                               std::vector<RelationId> relations)
    : node_types_(std::move(node_types)), relations_(std::move(relations)) {
  HYBRIDGNN_CHECK(node_types_.size() == relations_.size() + 1)
      << "metapath scheme needs n+1 node types for n relations";
  HYBRIDGNN_CHECK(!relations_.empty()) << "metapath scheme needs >= 1 hop";
}

bool MetapathScheme::IsIntraRelationship() const {
  return std::all_of(relations_.begin(), relations_.end(),
                     [this](RelationId r) { return r == relations_[0]; });
}

Status MetapathScheme::Validate(const MultiplexHeteroGraph& g) const {
  for (NodeTypeId t : node_types_) {
    if (t >= g.num_node_types()) {
      return Status::InvalidArgument(
          StrFormat("scheme references unknown node type %u",
                    static_cast<unsigned>(t)));
    }
  }
  for (RelationId r : relations_) {
    if (r >= g.num_relations()) {
      return Status::InvalidArgument(StrFormat(
          "scheme references unknown relation %u", static_cast<unsigned>(r)));
    }
  }
  return Status::OK();
}

std::string MetapathScheme::ToString(const MultiplexHeteroGraph& g) const {
  std::string out = g.node_type_name(node_types_[0]);
  for (size_t i = 0; i < relations_.size(); ++i) {
    out += " -" + g.relation_name(relations_[i]) + "-> ";
    out += g.node_type_name(node_types_[i + 1]);
  }
  return out;
}

StatusOr<MetapathScheme> MetapathScheme::ParseIntra(
    const MultiplexHeteroGraph& g, const std::string& pattern,
    RelationId rel) {
  if (rel >= g.num_relations()) {
    return Status::InvalidArgument("unknown relation id");
  }
  std::vector<std::string> tokens = Split(pattern, '-');
  if (tokens.size() < 2) {
    return Status::InvalidArgument("metapath pattern needs >= 2 node types: " +
                                   pattern);
  }
  std::vector<NodeTypeId> types;
  for (const auto& tok : tokens) {
    std::string name(StripWhitespace(tok));
    NodeTypeId t = g.FindNodeType(name);
    if (t == kInvalidNodeType && name.size() == 1) {
      // Single-letter shorthand: match the first type whose name starts
      // with the letter (case-insensitive), e.g. "U" -> "user".
      for (NodeTypeId cand = 0; cand < g.num_node_types(); ++cand) {
        const std::string& full = g.node_type_name(cand);
        if (!full.empty() &&
            std::tolower(full[0]) == std::tolower(name[0])) {
          t = cand;
          break;
        }
      }
    }
    if (t == kInvalidNodeType) {
      return Status::NotFound("node type not found: " + name);
    }
    types.push_back(t);
  }
  std::vector<RelationId> rels(types.size() - 1, rel);
  return MetapathScheme(std::move(types), std::move(rels));
}

std::vector<MetapathScheme> DefaultSchemes(const MultiplexHeteroGraph& g,
                                           size_t max_schemes_per_relation) {
  std::vector<MetapathScheme> out;
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    // Collect type pairs connected under r.
    std::set<std::pair<NodeTypeId, NodeTypeId>> pairs;
    for (const auto& e : g.EdgesOfRelation(r)) {
      pairs.emplace(g.node_type(e.src), g.node_type(e.dst));
      pairs.emplace(g.node_type(e.dst), g.node_type(e.src));
    }
    size_t added = 0;
    for (const auto& [a, b] : pairs) {
      if (added >= max_schemes_per_relation) break;
      out.emplace_back(std::vector<NodeTypeId>{a, b, a},
                       std::vector<RelationId>{r, r});
      ++added;
    }
  }
  return out;
}

std::vector<const MetapathScheme*> SchemesForNode(
    const std::vector<MetapathScheme>& all, const MultiplexHeteroGraph& g,
    NodeId v, RelationId r) {
  std::vector<const MetapathScheme*> out;
  const NodeTypeId t = g.node_type(v);
  for (const auto& s : all) {
    if (s.source_type() == t && s.IsIntraRelationship() &&
        s.relation() == r) {
      out.push_back(&s);
    }
  }
  return out;
}

}  // namespace hybridgnn
